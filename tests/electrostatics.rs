//! Tests of the real-space PME electrostatic path (paper §2.1) through
//! every layer: reference engines, the functional datapath, and the
//! cycle-level chip.

use fasda::arith::interp::TableConfig;
use fasda::cluster::{Cluster, ClusterConfig};
use fasda::core::config::ChipConfig;
use fasda::core::functional::FunctionalChip;
use fasda::core::geometry::ChipGeometry;
use fasda::core::timed::TimedChip;
use fasda::md::element::{Element, PairTable};
use fasda::md::engine::{CellListEngine, DirectEngine, ForceEngine};
use fasda::md::ewald::EwaldParams;
use fasda::md::space::SimulationSpace;
use fasda::md::system::ParticleSystem;
use fasda::md::units::UnitSystem;
use fasda::md::workload::{Placement, WorkloadSpec};

fn salt_system(space: SimulationSpace, per_cell: u32, seed: u64) -> ParticleSystem {
    let mut sys = WorkloadSpec {
        space,
        per_cell,
        placement: Placement::JitteredLattice { jitter: 0.05 },
        temperature_k: 400.0,
        seed,
        element: Element::NaPlus,
    }
    .generate();
    for i in 0..sys.len() {
        if i % 2 == 1 {
            sys.element[i] = Element::ClMinus;
        }
    }
    sys
}

#[test]
fn reference_engines_agree_with_charges() {
    let params = EwaldParams::standard(UnitSystem::PAPER);
    let table = PairTable::new(UnitSystem::PAPER);
    let mut a = salt_system(SimulationSpace::cubic(3), 8, 51);
    let mut b = a.clone();
    let pe1 = DirectEngine::new(table.clone())
        .with_electrostatics(params)
        .compute_forces(&mut a);
    let pe2 = CellListEngine::new(table)
        .with_electrostatics(params)
        .compute_forces(&mut b);
    assert!((pe1 - pe2).abs() < 1e-9 * pe1.abs().max(1.0));
    for i in 0..a.len() {
        assert!((a.force[i] - b.force[i]).max_abs() < 1e-9);
    }
    // the real-space-only term omits the (negative) reciprocal and self
    // contributions, so its sign is configuration-dependent; just check
    // the charges changed the energy relative to the neutral LJ system.
    let mut neutral = a.clone();
    for e in &mut neutral.element {
        *e = Element::Na;
    }
    let pe_neutral = DirectEngine::new(PairTable::new(UnitSystem::PAPER))
        .compute_forces(&mut neutral);
    assert!((pe1 - pe_neutral).abs() > 1.0, "charges must shift the energy");
}

#[test]
fn functional_chip_matches_reference_with_charges() {
    let params = EwaldParams::standard(UnitSystem::PAPER);
    let table = PairTable::new(UnitSystem::PAPER);
    let mut sys = salt_system(SimulationSpace::cubic(3), 8, 52);
    let mut chip = FunctionalChip::load_with(&sys, TableConfig::PAPER, 2.0, Some(params));
    chip.evaluate_forces();
    let snap = chip.snapshot();
    CellListEngine::new(table)
        .with_electrostatics(params)
        .compute_forces(&mut sys);
    for i in 0..sys.len() {
        let want = sys.force[i];
        let got = snap.force[i];
        let tol = want.max_abs().max(0.5) * 1e-2;
        assert!(
            (got - want).max_abs() < tol,
            "ion {i}: got {got:?}, want {want:?}"
        );
    }
}

#[test]
fn timed_chip_carries_electrostatics() {
    let params = EwaldParams::standard(UnitSystem::PAPER);
    let sys = salt_system(SimulationSpace::cubic(3), 6, 53);
    let mut cfg = ChipConfig::baseline();
    cfg.electrostatics = Some(params);
    let mut chip = TimedChip::new(
        cfg,
        ChipGeometry::single_chip(sys.space),
        UnitSystem::PAPER,
        2.0,
    );
    assert!(chip.datapath().has_electrostatics());
    chip.load(&sys);
    chip.run_timestep();
    let mut got = sys.clone();
    chip.store_into(&mut got);

    // one functional step is the oracle
    let mut func = FunctionalChip::load_with(&sys, TableConfig::PAPER, 2.0, Some(params));
    func.step();
    let want = func.snapshot();
    for i in 0..sys.len() {
        let d = sys.space.min_image(got.pos[i], want.pos[i]).max_abs();
        assert!(d < 1e-6, "ion {i} off by {d} cells");
    }
}

#[test]
fn cluster_carries_electrostatics() {
    let params = EwaldParams::standard(UnitSystem::PAPER);
    let sys = salt_system(SimulationSpace::cubic(6), 2, 54);
    let mut chip_cfg = ChipConfig::baseline();
    chip_cfg.electrostatics = Some(params);
    let cfg = ClusterConfig::paper(chip_cfg, (3, 3, 3));
    let mut cluster = Cluster::new(cfg, &sys);
    cluster.run(1);
    let mut got = sys.clone();
    cluster.store_into(&mut got);

    let mut func = FunctionalChip::load_with(&sys, TableConfig::PAPER, 2.0, Some(params));
    func.step();
    let want = func.snapshot();
    for i in 0..sys.len() {
        let d = sys.space.min_image(got.pos[i], want.pos[i]).max_abs();
        assert!(d < 1e-5, "ion {i} off by {d} cells across the cluster");
    }
}

#[test]
fn neutral_system_unaffected_by_electrostatic_path() {
    // enabling the path must not perturb the paper's neutral dataset
    let params = EwaldParams::standard(UnitSystem::PAPER);
    let sys = WorkloadSpec::paper(SimulationSpace::cubic(3), 55).generate();
    let mut with = FunctionalChip::load_with(&sys, TableConfig::PAPER, 2.0, Some(params));
    let mut without = FunctionalChip::load(&sys, TableConfig::PAPER, 2.0);
    with.evaluate_forces();
    without.evaluate_forces();
    let a = with.snapshot();
    let b = without.snapshot();
    for i in 0..sys.len() {
        assert_eq!(a.force[i], b.force[i], "neutral forces must be identical");
    }
}
