//! Workspace-level end-to-end tests spanning every crate: workload
//! generation → PDB → distributed cycle-level simulation → physics
//! validation against the double-precision reference.

use fasda::arith::interp::TableConfig;
use fasda::baseline::ThreadedCpuEngine;
use fasda::cluster::{Cluster, ClusterConfig};
use fasda::core::config::ChipConfig;
use fasda::core::functional::FunctionalChip;
use fasda::md::element::{Element, PairTable};
use fasda::md::engine::{CellListEngine, ForceEngine};
use fasda::md::integrator::Integrator;
use fasda::md::observables::{kinetic_energy, relative_error, temperature};
use fasda::md::pdb::{from_pdb, to_pdb};
use fasda::md::space::SimulationSpace;
use fasda::md::units::UnitSystem;
use fasda::md::workload::{Placement, WorkloadSpec};

fn small_workload(seed: u64) -> fasda::md::system::ParticleSystem {
    WorkloadSpec {
        space: SimulationSpace::cubic(6),
        per_cell: 3,
        placement: Placement::JitteredLattice { jitter: 0.05 },
        temperature_k: 150.0,
        seed,
        element: Element::Na,
    }
    .generate()
}

/// The full pipeline: generate → serialize → reload → simulate on the
/// 8-FPGA cluster → compare forces with the f64 reference.
#[test]
fn pdb_to_cluster_to_reference() {
    let sys = small_workload(1001);
    let text = to_pdb(&sys);
    let mut reloaded = from_pdb(&text, UnitSystem::PAPER).expect("pdb parse");
    assert_eq!(reloaded.len(), sys.len());
    reloaded.vel.copy_from_slice(&sys.vel);

    let cfg = ClusterConfig::paper(ChipConfig::baseline(), (3, 3, 3));
    let mut cluster = Cluster::new(cfg, &reloaded);
    cluster.run(1);
    let mut got = reloaded.clone();
    cluster.store_into(&mut got);

    // reference step from the same (PDB-quantized) initial condition
    let mut want = reloaded.clone();
    let mut eng = CellListEngine::new(PairTable::new(UnitSystem::PAPER));
    eng.step(&mut want, &Integrator::PAPER);

    let mut worst = 0.0f64;
    for i in 0..got.len() {
        worst = worst.max(want.space.min_image(got.pos[i], want.pos[i]).max_abs());
    }
    // accelerator arithmetic (fixed point + f32 + tables) vs f64: small
    // per-step deviation
    assert!(worst < 1e-4, "one-step deviation {worst} cells");
}

/// Energy is consistent between the FASDA arithmetic and the reference
/// over a multi-step run (the Fig. 19 property at test scale).
#[test]
fn energy_consistency_fasda_vs_reference() {
    let sys = WorkloadSpec::paper(SimulationSpace::cubic(3), 1002).generate();
    let table = PairTable::new(UnitSystem::PAPER);
    let mut chip = FunctionalChip::load(&sys, TableConfig::PAPER, 2.0);
    let mut ref_sys = sys.clone();
    let mut ref_eng = CellListEngine::new(table.clone());
    let mut meas = CellListEngine::new(table);
    for _ in 0..50 {
        chip.step();
        ref_eng.step(&mut ref_sys, &Integrator::PAPER);
    }
    let mut snap = chip.snapshot();
    let e_f = meas.compute_forces(&mut snap) + kinetic_energy(&snap);
    let e_r = meas.compute_forces(&mut ref_sys.clone()) + kinetic_energy(&ref_sys);
    let err = relative_error(e_f, e_r);
    assert!(err < 1e-3, "energy error {err} exceeds the paper's bound");
}

/// All four force engines (direct, cell list, threaded CPU, FASDA
/// functional) agree on the same configuration.
#[test]
fn four_engines_agree() {
    let sys = small_workload(1003);
    let table = PairTable::new(UnitSystem::PAPER);

    let mut direct = sys.clone();
    fasda::md::engine::DirectEngine::new(table.clone()).compute_forces(&mut direct);

    let mut cell = sys.clone();
    CellListEngine::new(table.clone()).compute_forces(&mut cell);

    let mut cpu = sys.clone();
    ThreadedCpuEngine::new(table.clone(), 2).compute_forces(&mut cpu);

    let mut chip = FunctionalChip::load(&sys, TableConfig::PAPER, 2.0);
    chip.evaluate_forces();
    let fasda_snap = chip.snapshot();

    for i in 0..sys.len() {
        assert!((direct.force[i] - cell.force[i]).max_abs() < 1e-9);
        assert!((direct.force[i] - cpu.force[i]).max_abs() < 1e-9);
        let tol = direct.force[i].max_abs().max(0.05) * 1e-2;
        assert!(
            (direct.force[i] - fasda_snap.force[i]).max_abs() < tol,
            "FASDA force deviates at {i}"
        );
    }
}

/// Long-run stability: the functional accelerator conserves particle
/// count, momentum, and keeps temperature physical over hundreds of
/// steps.
#[test]
fn functional_long_run_stability() {
    let sys = WorkloadSpec::paper(SimulationSpace::cubic(3), 1004).generate();
    let n = sys.len();
    let t0 = temperature(&sys);
    let mut chip = FunctionalChip::load(&sys, TableConfig::PAPER, 2.0);
    for _ in 0..300 {
        chip.step();
    }
    let snap = chip.snapshot();
    assert_eq!(snap.len(), n);
    assert!(snap.validate().is_ok());
    assert!(snap.momentum().max_abs() < 1e-2, "momentum drifted");
    // The dense 64-per-cell start carries ~2.7 kcal/mol/particle of
    // excess LJ energy that thermalizes (ΔT ≈ +900-1300 K) — the hot
    // fluid the paper's dataset equilibrates into. Stability means the
    // temperature settles there rather than diverging.
    let t = temperature(&snap);
    assert!(
        t > 0.5 * t0 && t < t0 + 2_000.0,
        "temperature left physical range: {t0} K → {t} K"
    );
}

/// Determinism: identical seeds and configurations produce bit-identical
/// cluster trajectories.
#[test]
fn cluster_runs_are_deterministic() {
    let sys = small_workload(1005);
    let run = |sys: &fasda::md::system::ParticleSystem| {
        let cfg = ClusterConfig::paper(ChipConfig::baseline(), (3, 3, 3));
        let mut cluster = Cluster::new(cfg, sys);
        let report = cluster.run(2);
        let mut out = sys.clone();
        cluster.store_into(&mut out);
        (report.total_cycles, out)
    };
    let (c1, s1) = run(&sys);
    let (c2, s2) = run(&sys);
    assert_eq!(c1, c2, "cycle counts must be deterministic");
    assert_eq!(s1.pos, s2.pos, "trajectories must be bit-identical");
    assert_eq!(s1.vel, s2.vel);
}
