//! Property-based tests spanning crates: random spaces, partitions, and
//! workloads through the full accelerator stack.

use fasda::arith::interp::TableConfig;
use fasda::cluster::{Cluster, ClusterConfig};
use fasda::core::config::{ChipConfig, DesignVariant};
use fasda::core::functional::FunctionalChip;
use fasda::core::geometry::{ChipCoord, ChipGeometry};
use fasda::md::element::Element;
use fasda::md::space::{CellCoord, SimulationSpace};
use fasda::md::units::UnitSystem;
use fasda::md::workload::{Placement, WorkloadSpec};
use proptest::prelude::*;

fn arb_partition() -> impl Strategy<Value = (SimulationSpace, (u32, u32, u32))> {
    // spaces that divide into at-most-64-cell blocks with ≥ 2 chips
    prop_oneof![
        Just((SimulationSpace::cubic(6), (3u32, 3u32, 3u32))),
        Just((SimulationSpace::new(6, 3, 3), (3, 3, 3))),
        Just((SimulationSpace::new(6, 6, 3), (3, 3, 3))),
        Just((SimulationSpace::cubic(4), (2, 2, 2))),
        Just((SimulationSpace::new(4, 4, 8), (2, 2, 2))),
        Just((SimulationSpace::new(8, 4, 4), (4, 2, 2))),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Every partition's chips tile the space exactly: each global cell
    /// is owned by exactly one chip, and all half-shell destinations
    /// resolve.
    #[test]
    fn partitions_tile_the_space((space, block) in arb_partition()) {
        let probe = ChipGeometry::new(space, block, ChipCoord::new(0, 0, 0));
        let grid = probe.grid();
        let mut owners = vec![0u32; space.num_cells()];
        for x in 0..grid.0 {
            for y in 0..grid.1 {
                for z in 0..grid.2 {
                    let geo = ChipGeometry::new(space, block, ChipCoord::new(x, y, z));
                    for cbb in 0..geo.num_cbbs() as u16 {
                        let g = geo.cbb_gcell(cbb);
                        owners[space.cell_id(g) as usize] += 1;
                        // destinations resolve on their owner chips
                        for d in geo.halfshell_dests(cbb) {
                            let peer = ChipGeometry::new(space, block, d.chip);
                            prop_assert_eq!(peer.cbb_of_gcell(d.gcell), Some(d.cbb));
                        }
                    }
                }
            }
        }
        prop_assert!(owners.iter().all(|&c| c == 1), "cells not tiled exactly once");
    }

    /// A cluster step equals a functional step on random partitions and
    /// seeds (distribution must not change the physics).
    #[test]
    fn cluster_step_equals_functional((space, block) in arb_partition(), seed in 0u64..100) {
        let sys = WorkloadSpec {
            space,
            per_cell: 2,
            placement: Placement::JitteredLattice { jitter: 0.08 },
            temperature_k: 120.0,
            seed,
            element: Element::Na,
        }
        .generate();
        let mut func = FunctionalChip::load(&sys, TableConfig::PAPER, 2.0);
        func.step();
        let want = func.snapshot();

        let cfg = ClusterConfig::paper(ChipConfig::baseline(), block);
        let mut cluster = Cluster::new(cfg, &sys);
        cluster.run(1);
        let mut got = sys.clone();
        cluster.store_into(&mut got);

        prop_assert_eq!(cluster.num_particles(), sys.len());
        for i in 0..sys.len() {
            let d = space.min_image(got.pos[i], want.pos[i]).max_abs();
            prop_assert!(d < 1e-5, "particle {} off by {} cells", i, d);
        }
    }

    /// RCID conversion is consistent with the functional pairing: for
    /// any two neighbouring cells, converting src→dst and dst→src gives
    /// mirrored RCIDs.
    #[test]
    fn rcid_mirror_symmetry(
        (space, block) in arb_partition(),
        sx in 0i32..8, sy in 0i32..8, sz in 0i32..8,
        ox in -1i32..2, oy in -1i32..2, oz in -1i32..2,
    ) {
        let geo = ChipGeometry::new(space, block, ChipCoord::new(0, 0, 0));
        let src = space.wrap_coord(CellCoord::new(sx, sy, sz));
        let dst = space.wrap_coord(src.offset((ox, oy, oz)));
        let ab = geo.rcid(src, dst);
        let ba = geo.rcid(dst, src);
        prop_assert_eq!(ab.0 + ba.0, 4);
        prop_assert_eq!(ab.1 + ba.1, 4);
        prop_assert_eq!(ab.2 + ba.2, 4);
    }
}

/// Variant choice changes timing, never physics — checked at the
/// cluster level (subsumes the single-chip version).
#[test]
fn variants_cluster_physics_identical() {
    let sys = WorkloadSpec {
        space: SimulationSpace::cubic(4),
        per_cell: 4,
        placement: Placement::JitteredLattice { jitter: 0.06 },
        temperature_k: 120.0,
        seed: 77,
        element: Element::Na,
    }
    .generate();
    let run = |v: DesignVariant| {
        let cfg = ClusterConfig::paper(ChipConfig::variant(v), (2, 2, 2));
        let mut cl = Cluster::new(cfg, &sys);
        cl.run(1);
        let mut out = sys.clone();
        cl.store_into(&mut out);
        out
    };
    let a = run(DesignVariant::A);
    let c = run(DesignVariant::C);
    for i in 0..sys.len() {
        let d = sys.space.min_image(a.pos[i], c.pos[i]).max_abs();
        assert!(d < 1e-6, "variant changed physics at {i}: {d}");
    }
    let _ = UnitSystem::PAPER;
}
