//! # FASDA — an FPGA-aided, scalable, distributed accelerator for
//! range-limited molecular dynamics
//!
//! A cycle-level, fully-distributed reproduction of the SC '23 FASDA
//! system in Rust. One umbrella crate re-exports the workspace:
//!
//! * [`arith`] — fixed-point positions and `r^-α` interpolation tables;
//! * [`md`] — MD physics: LJ forces, periodic cell space, integrators,
//!   double-precision reference engines, workload generation;
//! * [`sim`] — cycle-simulation substrate (FIFOs, pipelines, activity
//!   counters);
//! * [`core`] — the FASDA chip: CBB / SPE / SCBB architecture in both a
//!   functional (bit-faithful arithmetic) and a timed (cycle-level) model;
//! * [`net`] — 512-bit packets, encapsulation chains, topologies, the
//!   chained synchronization protocol;
//! * [`cluster`] — the multi-FPGA system gluing chips, packetizers, and
//!   synchronization into one driven simulation;
//! * [`baseline`] — the CPU (measured) and GPU (calibrated model)
//!   comparison systems of the paper's evaluation;
//! * [`trace`] — the cycle-level flight recorder: structured per-node
//!   events, stall attribution, Chrome-trace/metrics JSON export.
//!
//! ## Quickstart
//!
//! ```
//! use fasda::md::space::SimulationSpace;
//! use fasda::md::workload::WorkloadSpec;
//! use fasda::core::config::ChipConfig;
//! use fasda::core::geometry::ChipGeometry;
//! use fasda::core::timed::TimedChip;
//! use fasda::md::units::UnitSystem;
//!
//! // the paper's workload: 64 sodium atoms per cell, Rc = 8.5 Å cells
//! let space = SimulationSpace::cubic(3);
//! let mut sys = WorkloadSpec::paper(space, 42).generate();
//! sys.id.len();
//!
//! // one FASDA FPGA covering the space, cycle-level
//! let mut chip = TimedChip::new(
//!     ChipConfig::baseline(),
//!     ChipGeometry::single_chip(space),
//!     UnitSystem::PAPER,
//!     2.0,
//! );
//! chip.load(&sys);
//! let report = chip.run_timestep();
//! let rate = chip.config().hw.us_per_day(report.total_cycles() as f64, 2.0);
//! assert!(rate > 0.5, "simulation rate {rate} µs/day");
//! ```
//!
//! See `examples/` for runnable scenarios and `crates/bench/src/bin/`
//! for the harnesses regenerating every table and figure of the paper.

pub use fasda_arith as arith;
pub use fasda_baseline as baseline;
pub use fasda_cluster as cluster;
pub use fasda_core as core;
pub use fasda_md as md;
pub use fasda_net as net;
pub use fasda_sim as sim;
pub use fasda_trace as trace;
