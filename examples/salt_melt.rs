//! Molten-salt scenario: the full range-limited force — LJ **plus** the
//! real-space PME electrostatic term (paper §2.1) — on a charged system.
//!
//! A 50/50 Na⁺/Cl⁻ melt is equilibrated with a Berendsen thermostat on
//! the f64 reference engine, then handed to the FASDA accelerator
//! arithmetic (fixed-point filter + interpolated LJ + interpolated Ewald
//! kernels through the *same* pipeline) for production steps. The
//! charge-ordering signature — unlike-ion g(r) peaking before like-ion
//! g(r) — validates that the electrostatic path does real physics.
//!
//! Run with: `cargo run --release --example salt_melt`

use fasda::arith::interp::TableConfig;
use fasda::core::functional::FunctionalChip;
use fasda::md::element::{Element, PairTable};
use fasda::md::engine::{CellListEngine, ForceEngine};
use fasda::md::ewald::EwaldParams;
use fasda::md::integrator::Integrator;
use fasda::md::observables::{kinetic_energy, radial_distribution, temperature};
use fasda::md::space::SimulationSpace;
use fasda::md::thermostat::Thermostat;
use fasda::md::units::UnitSystem;
use fasda::md::workload::{Placement, WorkloadSpec};

fn main() {
    // 1. Build a 50/50 Na+/Cl- melt (alternating lattice sites so the
    //    initial configuration is charge-ordered, like rock salt).
    let space = SimulationSpace::cubic(3);
    let mut sys = WorkloadSpec {
        space,
        per_cell: 27,
        placement: Placement::JitteredLattice { jitter: 0.03 },
        temperature_k: 1100.0, // molten NaCl
        seed: 4242,
        element: Element::NaPlus,
    }
    .generate();
    for i in 0..sys.len() {
        if i % 2 == 1 {
            sys.element[i] = Element::ClMinus;
        }
    }
    let n_na = sys.element.iter().filter(|e| **e == Element::NaPlus).count();
    println!(
        "molten salt: {} ions ({} Na+, {} Cl-) at ~1100 K in a {:.1} Å box",
        sys.len(),
        n_na,
        sys.len() - n_na,
        8.5 * space.dx as f64
    );

    let params = EwaldParams::standard(UnitSystem::PAPER);
    let table = PairTable::new(UnitSystem::PAPER);

    // 2. Equilibrate on the reference engine with a thermostat.
    let mut eng = CellListEngine::new(table.clone()).with_electrostatics(params);
    let integ = Integrator::PAPER;
    let thermo = Thermostat::Berendsen {
        target_k: 1100.0,
        tau_fs: 100.0,
    };
    for _ in 0..300 {
        eng.step(&mut sys, &integ);
        thermo.apply(&mut sys, integ.dt_fs);
    }
    println!("equilibrated at T = {:.0} K", temperature(&sys));

    // 3. Production on the FASDA arithmetic (LJ + Ewald through the same
    //    interpolated pipeline).
    let mut chip = FunctionalChip::load_with(&sys, TableConfig::PAPER, 2.0, Some(params));
    assert!(chip.datapath().has_electrostatics());
    let mut meas = CellListEngine::new(table).with_electrostatics(params);
    let e0 = {
        let mut s = chip.snapshot();
        meas.compute_forces(&mut s) + kinetic_energy(&s)
    };
    for _ in 0..200 {
        chip.step();
    }
    let snap = chip.snapshot();
    let e1 = meas.compute_forces(&mut snap.clone()) + kinetic_energy(&snap);
    println!(
        "FASDA production: 200 steps, energy {e0:.1} → {e1:.1} kcal/mol ({:+.2e} relative)",
        (e1 - e0) / e0.abs()
    );

    // 4. Charge ordering: unlike-ion neighbours come first.
    let g_unlike = radial_distribution(&snap, 1.0, 20, Some((Element::NaPlus, Element::ClMinus)));
    let g_like = radial_distribution(&snap, 1.0, 20, Some((Element::NaPlus, Element::NaPlus)));
    let peak = |g: &[(f64, f64)]| {
        g.iter()
            .cloned()
            .max_by(|a, b| a.1.total_cmp(&b.1))
            .unwrap_or((0.0, 0.0))
    };
    let (r_unlike, g_u) = peak(&g_unlike);
    let (r_like, g_l) = peak(&g_like);
    println!("\nradial distribution (r in Å):");
    println!("  Na+–Cl- first peak: g = {g_u:.2} at r = {:.2} Å", r_unlike * 8.5);
    println!("  Na+–Na+ first peak: g = {g_l:.2} at r = {:.2} Å", r_like * 8.5);
    if r_unlike < r_like {
        println!("  → charge ordering preserved (unlike ions closest), as in real NaCl");
    } else {
        println!("  → WARNING: charge ordering not observed");
    }
}
