//! Quickstart: simulate the paper's workload on one FASDA chip.
//!
//! Builds the 3×3×3-cell sodium system (64 atoms per cell, Rc = 8.5 Å,
//! dt = 2 fs), runs a few timesteps on the cycle-level chip model, and
//! prints the simulation rate, component utilization, and an energy
//! check against the double-precision reference.
//!
//! Run with: `cargo run --release --example quickstart`

use fasda::core::config::ChipConfig;
use fasda::core::geometry::ChipGeometry;
use fasda::core::timed::TimedChip;
use fasda::md::element::PairTable;
use fasda::md::engine::{CellListEngine, ForceEngine};
use fasda::md::observables::kinetic_energy;
use fasda::md::space::SimulationSpace;
use fasda::md::units::UnitSystem;
use fasda::md::workload::WorkloadSpec;

fn main() {
    // 1. The paper's dataset: 64 randomly-placed neutral sodium atoms in
    //    every 8.5 Å cell (§5.1).
    let space = SimulationSpace::cubic(3);
    let sys = WorkloadSpec::paper(space, 2023).generate();
    println!(
        "workload: {} Na atoms in {} cells ({}³ × 8.5 Å box)",
        sys.len(),
        space.num_cells(),
        space.dx
    );

    // 2. One FASDA FPGA: a Cell Building Block per cell, 6 filters per
    //    force pipeline, 200 MHz.
    let cfg = ChipConfig::baseline();
    let mut chip = TimedChip::new(
        cfg,
        ChipGeometry::single_chip(space),
        UnitSystem::PAPER,
        2.0,
    );
    chip.load(&sys);

    // 3. Run timesteps, watching the cycle counts.
    println!("\nstep   force-cycles   MU-cycles   valid-pairs    µs/day");
    let mut last_total = 0;
    for step in 1..=5 {
        let r = chip.run_timestep();
        last_total = r.total_cycles();
        println!(
            "{step:>4}{:>15}{:>12}{:>14}{:>10.2}",
            r.force_cycles,
            r.mu_cycles,
            r.valid_pairs,
            cfg.hw.us_per_day(last_total as f64, 2.0)
        );
    }

    // 4. Utilization of the key components (paper Fig. 17 regime).
    let r = chip.run_timestep();
    println!("\ncomponent utilization (hardware / time):");
    for name in ["PR", "FR", "Filter", "PE", "MU"] {
        println!(
            "  {name:<8}{:>6.1}% /{:>6.1}%",
            100.0 * r.stats.hardware_util(name, last_total),
            100.0 * r.stats.time_util(name, last_total)
        );
    }

    // 5. Energy sanity check against the f64 reference engine.
    let mut snap = sys.clone();
    chip.store_into(&mut snap);
    let mut eng = CellListEngine::new(PairTable::new(UnitSystem::PAPER));
    let pe = eng.compute_forces(&mut snap.clone());
    let ke = kinetic_energy(&snap);
    println!("\nafter 6 steps: PE = {pe:.2} kcal/mol, KE = {ke:.2} kcal/mol");
    println!("total energy: {:.2} kcal/mol", pe + ke);
}
