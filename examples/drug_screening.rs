//! Drug-lead screening scenario: long-timescale throughput estimation.
//!
//! The paper's motivation is drug discovery: "conducting long-timescale
//! simulations of small molecules ... with the resulting prospect of
//! significantly reducing lead evaluation time" (§1). This example
//! estimates, for a small solvated-ligand-sized system (~4K atoms of
//! mixed species), how long one microsecond of simulated time takes on
//!
//! * an 8-FPGA FASDA cluster (cycle-level simulation, strong-scaling
//!   variant C),
//! * the best single GPU (calibrated analytic model), and
//! * the multithreaded CPU engine (measured on this host).
//!
//! Run with: `cargo run --release --example drug_screening`

use fasda::baseline::{GpuKind, GpuModel, ThreadedCpuEngine};
use fasda::cluster::{Cluster, ClusterConfig};
use fasda::core::config::{ChipConfig, DesignVariant};
use fasda::md::element::{Element, PairTable};
use fasda::md::integrator::Integrator;
use fasda::md::space::SimulationSpace;
use fasda::md::units::UnitSystem;
use fasda::md::workload::{Placement, WorkloadSpec};

const DT_FS: f64 = 2.0;
const TARGET_US: f64 = 1.0; // one microsecond of biology

fn days_for_target(us_per_day: f64) -> f64 {
    TARGET_US / us_per_day
}

fn main() {
    // A 4x4x4-cell box (34 Å)³ holding a small-molecule-sized mixed
    // system: mostly "solvent-like" oxygens with carbon/sodium solutes.
    let space = SimulationSpace::cubic(4);
    let mut sys = WorkloadSpec {
        space,
        per_cell: 64,
        placement: Placement::JitteredLattice { jitter: 0.04 },
        temperature_k: 300.0,
        seed: 7,
        element: Element::O,
    }
    .generate();
    // sprinkle a "ligand": carbons + a couple of ions
    for i in 0..sys.len() {
        if i % 97 == 0 {
            sys.element[i] = Element::C;
        }
        if i % 211 == 0 {
            sys.element[i] = Element::Na;
        }
    }
    println!(
        "lead-evaluation system: {} atoms ({} C, {} Na, rest O) in a {:.1} Å box",
        sys.len(),
        sys.element.iter().filter(|e| **e == Element::C).count(),
        sys.element.iter().filter(|e| **e == Element::Na).count(),
        8.5 * space.dx as f64
    );
    println!("target: {TARGET_US} µs of simulated dynamics\n");

    // --- FASDA: 8 FPGAs, strong-scaling variant C --------------------
    let cfg = ClusterConfig::paper(ChipConfig::variant(DesignVariant::C), (2, 2, 2));
    let mut cluster = Cluster::new(cfg, &sys);
    let report = cluster.run(3);
    let fasda_rate = report.us_per_day();
    println!(
        "FASDA 8-FPGA (2-SPE,3-PE): {:.2} µs/day → {:.1} days per µs",
        fasda_rate,
        days_for_target(fasda_rate)
    );

    // --- GPU model ----------------------------------------------------
    let gpu = GpuModel::new(GpuKind::A100, 1);
    let gpu_rate = gpu.us_per_day(sys.len(), DT_FS);
    println!(
        "1x A100 (model): {:.2} µs/day → {:.1} days per µs",
        gpu_rate,
        days_for_target(gpu_rate)
    );
    println!("    {}", gpu.describe());

    // --- CPU measured --------------------------------------------------
    let threads = std::thread::available_parallelism().map(|c| c.get()).unwrap_or(1);
    let eng = ThreadedCpuEngine::new(PairTable::new(UnitSystem::PAPER), threads);
    let secs = eng.measure(&mut sys.clone(), &Integrator::PAPER, 2);
    let cpu_rate = UnitSystem::us_per_day(DT_FS, secs);
    println!(
        "CPU x{threads} (measured): {:.3} µs/day → {:.0} days per µs",
        cpu_rate,
        days_for_target(cpu_rate)
    );

    println!(
        "\nspeedup of FASDA over the best GPU: {:.2}x — \"significantly reducing\n\
         lead evaluation time\" (paper headline: 4.67x)",
        fasda_rate / gpu_rate
    );
}
