//! Cluster scaling study: sweep node counts, design variants, and
//! synchronization modes through the public API.
//!
//! Demonstrates FASDA's "plugable components": the same workload runs on
//! 2/4/8 FPGAs, with the CBB→SPE→SCBB strong-scaling variants, and with
//! chained vs bulk synchronization — printing the rates and the
//! communication profile of each configuration.
//!
//! Run with: `cargo run --release --example cluster_scaling`

use fasda::cluster::{Cluster, ClusterConfig};
use fasda::core::config::{ChipConfig, DesignVariant};
use fasda::md::space::SimulationSpace;
use fasda::md::workload::WorkloadSpec;
use fasda::net::sync::SyncMode;

fn main() {
    let steps = 2;

    println!("FASDA cluster scaling study (cycle-level simulation)\n");

    // --- weak scaling: grow the box with the node count ---------------
    println!("weak scaling (variant A, 3x3x3 cells per FPGA):");
    println!("{:<12}{:>8}{:>12}{:>14}{:>14}", "space", "FPGAs", "µs/day", "pos Gbps", "frc Gbps");
    for (space, block) in [
        (SimulationSpace::new(6, 3, 3), (3u32, 3u32, 3u32)),
        (SimulationSpace::new(6, 6, 3), (3, 3, 3)),
        (SimulationSpace::cubic(6), (3, 3, 3)),
    ] {
        let sys = WorkloadSpec::paper(space, 99).generate();
        let cfg = ClusterConfig::paper(ChipConfig::variant(DesignVariant::A), block);
        let mut cluster = Cluster::new(cfg, &sys);
        let nodes = cluster.num_nodes();
        let r = cluster.run(steps);
        println!(
            "{:<12}{:>8}{:>12.2}{:>14.2}{:>14.2}",
            format!("{}x{}x{}", space.dx, space.dy, space.dz),
            nodes,
            r.us_per_day(),
            r.pos_gbps_per_node(),
            r.frc_gbps_per_node()
        );
    }

    // --- strong scaling: same box, stronger chips ----------------------
    println!("\nstrong scaling (4x4x4 cells on 8 FPGAs):");
    println!("{:<16}{:>12}{:>16}", "variant", "µs/day", "vs variant A");
    let sys = WorkloadSpec::paper(SimulationSpace::cubic(4), 99).generate();
    let mut base = 0.0;
    for v in [DesignVariant::A, DesignVariant::B, DesignVariant::C] {
        let cfg = ClusterConfig::paper(ChipConfig::variant(v), (2, 2, 2));
        let r = Cluster::new(cfg, &sys).run(steps);
        let rate = r.us_per_day();
        if v == DesignVariant::A {
            base = rate;
        }
        println!("{:<16}{:>12.2}{:>15.2}x", v.label(), rate, rate / base);
    }

    // --- synchronization modes ----------------------------------------
    println!("\nsynchronization (6x6x6 on 8 FPGAs, variant A):");
    println!("{:<34}{:>14}", "mode", "cycles/step");
    let sys = WorkloadSpec::paper(SimulationSpace::cubic(6), 99).generate();
    for (label, mode) in [
        ("chained (paper §4.4)", SyncMode::Chained),
        ("bulk barrier via central FPGA", SyncMode::Bulk { latency: 2_000 }),
        ("bulk barrier via host (~1 ms)", SyncMode::Bulk { latency: 200_000 }),
    ] {
        let mut cfg = ClusterConfig::paper(ChipConfig::baseline(), (3, 3, 3));
        cfg.sync = mode;
        let r = Cluster::new(cfg, &sys).run(steps);
        println!("{label:<34}{:>14.0}", r.cycles_per_step());
    }
}
