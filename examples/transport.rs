//! Transport properties from a FASDA trajectory: self-diffusion of the
//! sodium fluid via mean-squared displacement.
//!
//! Long-timescale observables are why MD acceleration matters; this
//! example extracts one from the accelerator's own arithmetic. The dense
//! sodium workload is thermalized, run on the functional FASDA model,
//! and the MSD of unwrapped coordinates is fitted to the Einstein
//! relation `MSD = 6·D·t`. An XYZ trajectory is written alongside for
//! visualization.
//!
//! Run with: `cargo run --release --example transport`

use fasda::arith::interp::TableConfig;
use fasda::core::functional::FunctionalChip;
use fasda::md::element::PairTable;
use fasda::md::engine::{CellListEngine, ForceEngine};
use fasda::md::integrator::Integrator;
use fasda::md::observables::temperature;
use fasda::md::space::SimulationSpace;
use fasda::md::thermostat::Thermostat;
use fasda::md::trajectory::{to_xyz_frame, Unwrapper};
use fasda::md::units::UnitSystem;
use fasda::md::workload::WorkloadSpec;

fn main() -> std::io::Result<()> {
    let space = SimulationSpace::cubic(3);
    let mut sys = WorkloadSpec::paper(space, 77).generate();
    println!("{} Na atoms, equilibrating toward 800 K (hot sodium fluid)...", sys.len());

    // Equilibrate with a thermostat on the reference engine.
    let mut eng = CellListEngine::new(PairTable::new(UnitSystem::PAPER));
    let integ = Integrator::PAPER;
    let thermo = Thermostat::Berendsen {
        target_k: 800.0,
        tau_fs: 200.0,
    };
    for _ in 0..400 {
        eng.step(&mut sys, &integ);
        thermo.apply(&mut sys, integ.dt_fs);
    }
    println!("equilibrated: T = {:.0} K", temperature(&sys));

    // Production on FASDA arithmetic, sampling MSD every 20 steps.
    let mut chip = FunctionalChip::load(&sys, TableConfig::PAPER, 2.0);
    let mut tracker = Unwrapper::new(&chip.snapshot());
    let dir = std::env::temp_dir().join("fasda_transport");
    std::fs::create_dir_all(&dir)?;
    let mut xyz = String::new();

    println!("\n   t (ps)      MSD (Å²)     D (1e-5 cm²/s)");
    let (steps, sample) = (600u64, 20u64);
    for s in 1..=steps {
        chip.step();
        if s % sample == 0 {
            let snap = chip.snapshot();
            tracker.update(&snap);
            let t_fs = s as f64 * 2.0;
            let msd_a2 = tracker.msd() * 8.5 * 8.5;
            // D in cell²/fs → cm²/s: (8.5e-8 cm)² / 1e-15 s
            let d = tracker.diffusion(t_fs) * (8.5e-8f64).powi(2) / 1.0e-15;
            if s % (sample * 5) == 0 {
                println!("{:>9.3}{:>14.2}{:>16.2}", t_fs / 1000.0, msd_a2, d * 1e5);
            }
            xyz.push_str(&to_xyz_frame(&snap, &format!("t = {t_fs} fs")));
        }
    }
    let path = dir.join("sodium_trajectory.xyz");
    std::fs::write(&path, xyz)?;
    println!(
        "\nwrote {}-frame XYZ trajectory to {}",
        steps / sample,
        path.display()
    );
    println!("(hot dense Na: expect D of order 1e-5..1e-4 cm²/s, liquid-metal regime)");
    Ok(())
}
