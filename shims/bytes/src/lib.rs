//! Offline stand-in for the `bytes` crate.
//!
//! Provides `BytesMut` (a thin `Vec<u8>` wrapper), `BufMut` (big-endian
//! writers) and `Buf` (big-endian readers over `&[u8]`) — the exact
//! subset the wire codecs in `fasda-net` and `fasda-cluster` use.
//! Semantics match the real crate for this subset: all multi-byte
//! accessors are big-endian, and `Buf` readers advance the slice.

use std::ops::{Deref, DerefMut};

/// Growable byte buffer (stand-in for `bytes::BytesMut`).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BytesMut {
    inner: Vec<u8>,
}

impl BytesMut {
    pub fn new() -> Self {
        BytesMut { inner: Vec::new() }
    }

    pub fn with_capacity(capacity: usize) -> Self {
        BytesMut {
            inner: Vec::with_capacity(capacity),
        }
    }

    pub fn len(&self) -> usize {
        self.inner.len()
    }

    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    pub fn resize(&mut self, new_len: usize, value: u8) {
        self.inner.resize(new_len, value);
    }

    pub fn clear(&mut self) {
        self.inner.clear();
    }

    pub fn extend_from_slice(&mut self, src: &[u8]) {
        self.inner.extend_from_slice(src);
    }

    pub fn to_vec(&self) -> Vec<u8> {
        self.inner.clone()
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.inner
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.inner
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.inner
    }
}

impl From<Vec<u8>> for BytesMut {
    fn from(v: Vec<u8>) -> Self {
        BytesMut { inner: v }
    }
}

macro_rules! put_impl {
    ($($name:ident: $t:ty),* $(,)?) => {$(
        fn $name(&mut self, v: $t) {
            self.put_slice(&v.to_be_bytes());
        }
    )*};
}

/// Big-endian writer (stand-in for `bytes::BufMut`).
pub trait BufMut {
    fn put_slice(&mut self, src: &[u8]);

    put_impl! {
        put_u8: u8, put_i8: i8,
        put_u16: u16, put_i16: i16,
        put_u32: u32, put_i32: i32,
        put_u64: u64, put_i64: i64,
        put_f32: f32, put_f64: f64,
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.inner.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

macro_rules! get_impl {
    ($($name:ident: $t:ty),* $(,)?) => {$(
        fn $name(&mut self) -> $t {
            let mut raw = [0u8; std::mem::size_of::<$t>()];
            self.copy_to_slice(&mut raw);
            <$t>::from_be_bytes(raw)
        }
    )*};
}

/// Big-endian reader (stand-in for `bytes::Buf`).
pub trait Buf {
    fn remaining(&self) -> usize;
    /// Copy `dst.len()` bytes out, advancing the cursor. Panics if
    /// fewer than `dst.len()` bytes remain (as the real crate does).
    fn copy_to_slice(&mut self, dst: &mut [u8]);

    get_impl! {
        get_u8: u8, get_i8: i8,
        get_u16: u16, get_i16: i16,
        get_u32: u32, get_i32: i32,
        get_u64: u64, get_i64: i64,
        get_f32: f32, get_f64: f64,
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.len() >= dst.len(), "buffer underflow");
        let (head, tail) = self.split_at(dst.len());
        dst.copy_from_slice(head);
        *self = tail;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_widths() {
        let mut buf = BytesMut::with_capacity(64);
        buf.put_u8(0xAB);
        buf.put_i8(-5);
        buf.put_u16(0xBEEF);
        buf.put_u32(0xDEAD_BEEF);
        buf.put_i32(-123_456);
        buf.put_u64(0x0123_4567_89AB_CDEF);
        buf.put_f32(3.5);
        buf.put_f64(-2.25);
        let mut rd: &[u8] = &buf;
        assert_eq!(rd.get_u8(), 0xAB);
        assert_eq!(rd.get_i8(), -5);
        assert_eq!(rd.get_u16(), 0xBEEF);
        assert_eq!(rd.get_u32(), 0xDEAD_BEEF);
        assert_eq!(rd.get_i32(), -123_456);
        assert_eq!(rd.get_u64(), 0x0123_4567_89AB_CDEF);
        assert_eq!(rd.get_f32(), 3.5);
        assert_eq!(rd.get_f64(), -2.25);
        assert_eq!(rd.remaining(), 0);
    }

    #[test]
    fn big_endian_layout() {
        let mut buf = BytesMut::new();
        buf.put_u16(0x0102);
        assert_eq!(&buf[..], &[0x01, 0x02]);
    }
}
