//! Offline stand-in for the `rayon` crate.
//!
//! Implements the subset the workspace uses — `ThreadPoolBuilder` /
//! `ThreadPool::install`, `into_par_iter().map(..).collect()` over
//! `Range<usize>`, and `par_iter_mut().for_each(..)` over slices — on a
//! persistent worker pool. Work is split into **contiguous index chunks**
//! and results are concatenated in chunk order, so `map/collect` output is
//! identical to the serial order regardless of thread count, matching the
//! determinism guarantee of real rayon's indexed parallel iterators.
//!
//! Parallel operations engage only inside `ThreadPool::install`; outside a
//! pool (or when nested inside a pool worker) they degrade to serial
//! execution on the calling thread, which keeps nested parallelism
//! deadlock-free.

mod pool;

pub mod iter;

pub use pool::{current_num_threads, ThreadPool, ThreadPoolBuildError, ThreadPoolBuilder};

pub mod prelude {
    pub use crate::iter::{FromParallelIterator, IntoParallelIterator, IntoParallelRefMutIterator};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn map_collect_matches_serial_order() {
        let pool = crate::ThreadPoolBuilder::new()
            .num_threads(4)
            .build()
            .unwrap();
        let par: Vec<u64> = pool.install(|| {
            (0..10_000usize)
                .into_par_iter()
                .map(|i| (i as u64).wrapping_mul(0x9E37_79B9) ^ 0xABCD)
                .collect()
        });
        let ser: Vec<u64> = (0..10_000usize)
            .map(|i| (i as u64).wrapping_mul(0x9E37_79B9) ^ 0xABCD)
            .collect();
        assert_eq!(par, ser);
    }

    #[test]
    fn for_each_mut_touches_every_element_once() {
        let pool = crate::ThreadPoolBuilder::new()
            .num_threads(3)
            .build()
            .unwrap();
        let mut data = vec![0u32; 4096];
        pool.install(|| data.par_iter_mut().for_each(|x| *x += 1));
        assert!(data.iter().all(|&x| x == 1));
    }

    #[test]
    fn serial_fallback_outside_install() {
        let v: Vec<usize> = (0..100usize).into_par_iter().map(|i| i * 2).collect();
        assert_eq!(v[99], 198);
    }

    #[test]
    fn panics_propagate() {
        let pool = crate::ThreadPoolBuilder::new()
            .num_threads(2)
            .build()
            .unwrap();
        let res = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.install(|| {
                (0..64usize).into_par_iter().for_each(|i| {
                    if i == 33 {
                        panic!("boom");
                    }
                });
            })
        }));
        assert!(res.is_err());
    }
}
