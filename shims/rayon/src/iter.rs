//! Deterministic chunked parallel iterators (the subset of rayon's
//! iterator zoo the workspace uses).

use crate::pool::{self, ScopedJob};
use std::ops::Range;

/// Conversion into a parallel iterator (`rayon::iter::IntoParallelIterator`).
pub trait IntoParallelIterator {
    type Iter;
    fn into_par_iter(self) -> Self::Iter;
}

impl IntoParallelIterator for Range<usize> {
    type Iter = ParRange;
    fn into_par_iter(self) -> ParRange {
        ParRange { range: self }
    }
}

/// Parallel iterator over a `Range<usize>`.
pub struct ParRange {
    range: Range<usize>,
}

impl ParRange {
    pub fn map<R, F>(self, f: F) -> ParRangeMap<F>
    where
        F: Fn(usize) -> R + Sync,
        R: Send,
    {
        ParRangeMap {
            range: self.range,
            f,
        }
    }

    pub fn for_each<F>(self, f: F)
    where
        F: Fn(usize) + Sync,
    {
        match pool::parallelism(self.range.len()) {
            None => self.range.for_each(f),
            Some(reg) => {
                let f = &f;
                let jobs: Vec<ScopedJob<'_>> = pool::chunk_ranges(self.range, reg.threads)
                    .into_iter()
                    .map(|r| Box::new(move || r.for_each(f)) as ScopedJob<'_>)
                    .collect();
                reg.scope(jobs);
            }
        }
    }
}

/// `map` stage over a parallel range.
pub struct ParRangeMap<F> {
    range: Range<usize>,
    f: F,
}

impl<F> ParRangeMap<F> {
    /// Collect mapped items **in index order** (bit-identical to the
    /// serial result, independent of thread count).
    pub fn collect<R, C>(self) -> C
    where
        F: Fn(usize) -> R + Sync,
        R: Send,
        C: FromParallelIterator<R>,
    {
        let n = self.range.len();
        let items = match pool::parallelism(n) {
            None => self.range.map(&self.f).collect(),
            Some(reg) => {
                let f = &self.f;
                let ranges = pool::chunk_ranges(self.range, reg.threads);
                let mut slots: Vec<Option<Vec<R>>> = ranges.iter().map(|_| None).collect();
                let jobs: Vec<ScopedJob<'_>> = slots
                    .iter_mut()
                    .zip(ranges)
                    .map(|(slot, r)| {
                        Box::new(move || *slot = Some(r.map(f).collect())) as ScopedJob<'_>
                    })
                    .collect();
                reg.scope(jobs);
                let mut out = Vec::with_capacity(n);
                for slot in slots {
                    out.extend(slot.expect("pool chunk completed"));
                }
                out
            }
        };
        C::from_ordered_vec(items)
    }
}

/// Sink for ordered parallel collection (`rayon::iter::FromParallelIterator`).
pub trait FromParallelIterator<T> {
    fn from_ordered_vec(items: Vec<T>) -> Self;
}

impl<T> FromParallelIterator<T> for Vec<T> {
    fn from_ordered_vec(items: Vec<T>) -> Self {
        items
    }
}

/// `par_iter_mut` (`rayon::iter::IntoParallelRefMutIterator`).
pub trait IntoParallelRefMutIterator<'data> {
    type Iter;
    fn par_iter_mut(&'data mut self) -> Self::Iter;
}

impl<'data, T: Send + 'data> IntoParallelRefMutIterator<'data> for [T] {
    type Iter = ParSliceMut<'data, T>;
    fn par_iter_mut(&'data mut self) -> ParSliceMut<'data, T> {
        ParSliceMut { slice: self }
    }
}

impl<'data, T: Send + 'data> IntoParallelRefMutIterator<'data> for Vec<T> {
    type Iter = ParSliceMut<'data, T>;
    fn par_iter_mut(&'data mut self) -> ParSliceMut<'data, T> {
        ParSliceMut { slice: self }
    }
}

/// Parallel iterator over `&mut [T]`.
pub struct ParSliceMut<'data, T> {
    slice: &'data mut [T],
}

impl<'data, T: Send> ParSliceMut<'data, T> {
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(&mut T) + Sync,
    {
        let n = self.slice.len();
        match pool::parallelism(n) {
            None => self.slice.iter_mut().for_each(&f),
            Some(reg) => {
                let f = &f;
                let chunk = n.div_ceil((reg.threads * 2).clamp(1, n));
                let jobs: Vec<ScopedJob<'_>> = self
                    .slice
                    .chunks_mut(chunk)
                    .map(|ch| Box::new(move || ch.iter_mut().for_each(f)) as ScopedJob<'_>)
                    .collect();
                reg.scope(jobs);
            }
        }
    }
}
