//! Persistent worker pool with scoped (borrowing) job execution.

use std::cell::{Cell, RefCell};
use std::collections::VecDeque;
use std::fmt;
use std::ops::Range;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};

/// A queued unit of work (already wrapped to be `'static` and
/// panic-catching by [`Registry::scope`]).
type Job = Box<dyn FnOnce() + Send>;

/// A borrowed job handed to [`Registry::scope`]; may reference the
/// caller's stack frame.
pub(crate) type ScopedJob<'scope> = Box<dyn FnOnce() + Send + 'scope>;

struct Shared {
    queue: VecDeque<Job>,
    shutdown: bool,
}

pub(crate) struct Registry {
    shared: Mutex<Shared>,
    work_cv: Condvar,
    pub(crate) threads: usize,
}

thread_local! {
    /// Pool made current by `ThreadPool::install` on this thread.
    static CURRENT: RefCell<Option<Arc<Registry>>> = const { RefCell::new(None) };
    /// True on pool worker threads: nested parallel ops run serially.
    static IN_WORKER: Cell<bool> = const { Cell::new(false) };
}

impl Registry {
    fn with_workers(threads: usize) -> Arc<Registry> {
        let reg = Arc::new(Registry {
            shared: Mutex::new(Shared {
                queue: VecDeque::new(),
                shutdown: false,
            }),
            work_cv: Condvar::new(),
            threads,
        });
        for i in 0..threads {
            let r = Arc::clone(&reg);
            std::thread::Builder::new()
                .name(format!("fasda-pool-{i}"))
                .spawn(move || r.worker_loop())
                .expect("spawn pool worker");
        }
        reg
    }

    fn worker_loop(&self) {
        IN_WORKER.with(|w| w.set(true));
        loop {
            let job = {
                let mut sh = self.shared.lock().unwrap();
                loop {
                    if let Some(j) = sh.queue.pop_front() {
                        break Some(j);
                    }
                    if sh.shutdown {
                        break None;
                    }
                    sh = self.work_cv.wait(sh).unwrap();
                }
            };
            match job {
                Some(j) => j(), // panics are caught inside the scope wrapper
                None => return,
            }
        }
    }

    /// Run every job to completion, using the pool workers plus the
    /// calling thread. Jobs may borrow from the caller's stack: this
    /// function does not return until all of them have finished (or one
    /// has panicked, in which case the panic is re-raised here after the
    /// rest complete).
    pub(crate) fn scope<'scope>(&self, jobs: Vec<ScopedJob<'scope>>) {
        let n = jobs.len();
        if n == 0 {
            return;
        }
        let done = Arc::new((Mutex::new(0usize), Condvar::new()));
        let panicked = Arc::new(AtomicBool::new(false));
        {
            let mut sh = self.shared.lock().unwrap();
            for job in jobs {
                // SAFETY: this function blocks until `done` has counted
                // every job, so any borrow inside `job` strictly outlives
                // its execution; extending the lifetime to 'static never
                // lets a job observe a dead reference.
                let job: Box<dyn FnOnce() + Send + 'static> =
                    unsafe { std::mem::transmute::<ScopedJob<'scope>, ScopedJob<'static>>(job) };
                let done = Arc::clone(&done);
                let panicked = Arc::clone(&panicked);
                sh.queue.push_back(Box::new(move || {
                    if catch_unwind(AssertUnwindSafe(job)).is_err() {
                        panicked.store(true, Ordering::SeqCst);
                    }
                    let (count, cv) = &*done;
                    *count.lock().unwrap() += 1;
                    cv.notify_all();
                }));
            }
        }
        self.work_cv.notify_all();
        // Help drain the queue from the calling thread.
        loop {
            let job = self.shared.lock().unwrap().queue.pop_front();
            match job {
                Some(j) => j(),
                None => break,
            }
        }
        let (count, cv) = &*done;
        let mut finished = count.lock().unwrap();
        while *finished < n {
            finished = cv.wait(finished).unwrap();
        }
        drop(finished);
        if panicked.load(Ordering::SeqCst) {
            panic!("a parallel pool job panicked");
        }
    }
}

/// Registry to use for a parallel operation over `n` items, or `None`
/// when the operation should run serially (no installed pool, nested
/// inside a worker, single-threaded pool, or trivially small input).
pub(crate) fn parallelism(n: usize) -> Option<Arc<Registry>> {
    if n < 2 || IN_WORKER.with(|w| w.get()) {
        return None;
    }
    CURRENT.with(|c| c.borrow().clone()).filter(|r| r.threads > 1)
}

/// Split `range` into at most `2 * threads` contiguous chunks, in order.
pub(crate) fn chunk_ranges(range: Range<usize>, threads: usize) -> Vec<Range<usize>> {
    let n = range.len();
    let chunks = (threads * 2).clamp(1, n.max(1));
    let size = n.div_ceil(chunks);
    let mut out = Vec::with_capacity(chunks);
    let mut lo = range.start;
    while lo < range.end {
        let hi = (lo + size).min(range.end);
        out.push(lo..hi);
        lo = hi;
    }
    out
}

/// Threads available to parallel ops on this thread right now.
pub fn current_num_threads() -> usize {
    if IN_WORKER.with(|w| w.get()) {
        return 1;
    }
    CURRENT
        .with(|c| c.borrow().as_ref().map(|r| r.threads))
        .unwrap_or(1)
}

/// Builder mirroring `rayon::ThreadPoolBuilder`.
#[derive(Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

/// Error type mirroring `rayon::ThreadPoolBuildError` (construction
/// cannot actually fail in this shim).
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

impl ThreadPoolBuilder {
    pub fn new() -> Self {
        ThreadPoolBuilder { num_threads: 0 }
    }

    /// 0 (the default) means "one thread per available core".
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let threads = if self.num_threads == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            self.num_threads
        };
        Ok(ThreadPool {
            registry: Registry::with_workers(threads),
        })
    }
}

/// Worker pool mirroring `rayon::ThreadPool`.
pub struct ThreadPool {
    registry: Arc<Registry>,
}

impl ThreadPool {
    /// Run `op` with this pool current: parallel iterators inside it
    /// fan out over the pool's workers.
    pub fn install<OP, R>(&self, op: OP) -> R
    where
        OP: FnOnce() -> R + Send,
        R: Send,
    {
        struct Restore(Option<Arc<Registry>>);
        impl Drop for Restore {
            fn drop(&mut self) {
                let prev = self.0.take();
                CURRENT.with(|c| *c.borrow_mut() = prev);
            }
        }
        let prev = CURRENT.with(|c| c.borrow_mut().replace(Arc::clone(&self.registry)));
        let _restore = Restore(prev);
        op()
    }

    pub fn current_num_threads(&self) -> usize {
        self.registry.threads
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        let mut sh = self.registry.shared.lock().unwrap();
        sh.shutdown = true;
        drop(sh);
        self.registry.work_cv.notify_all();
    }
}
