//! Offline stand-in for the `rand` crate.
//!
//! Implements exactly the subset the workspace uses: `SmallRng`
//! (seedable from a `u64`), `Rng::gen::<f64>()`, and
//! `Rng::gen_range` over float ranges and integer ranges. The
//! generator is splitmix64 — high-quality enough for workload
//! jitter, and fully deterministic for a given seed, which is all
//! the simulator requires. Stream values differ from the real
//! `rand::rngs::SmallRng` (xoshiro), which only affects which
//! concrete random workload a seed denotes, not any invariant.

use std::ops::{Range, RangeInclusive};

/// Seed a generator from a `u64` (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Uniform sampling over the full domain of a type.
pub trait Standard: Sized {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1)
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for u64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// A range a value can be drawn from (subset of `rand::distributions::uniform::SampleRange`).
pub trait SampleRange {
    type Output;
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> Self::Output;
}

impl SampleRange for Range<f64> {
    type Output = f64;
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty gen_range");
        let u = f64::sample(rng);
        self.start + u * (self.end - self.start)
    }
}

impl SampleRange for RangeInclusive<f64> {
    type Output = f64;
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty gen_range");
        // 2^53 grid points in [lo, hi]
        let u = (rng.next_u64() >> 11) as f64 * (1.0 / ((1u64 << 53) - 1) as f64);
        lo + u * (hi - lo)
    }
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty gen_range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty gen_range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Subset of `rand::Rng`.
pub trait Rng {
    fn next_u64(&mut self) -> u64;

    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    fn gen_range<S: SampleRange>(&mut self, range: S) -> S::Output
    where
        Self: Sized,
    {
        range.sample_from(self)
    }
}

pub mod rngs {
    /// Small, fast, deterministic RNG (splitmix64 core).
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        state: u64,
    }

    impl crate::SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            SmallRng { state: seed }
        }
    }

    impl crate::Rng for SmallRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_in_bounds() {
        let mut r = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let f = r.gen_range(1e-12..1.0);
            assert!((1e-12..1.0).contains(&f));
            let g = r.gen_range(-0.25f64..=0.25);
            assert!((-0.25..=0.25).contains(&g));
            let i = r.gen_range(3u32..6);
            assert!((3..6).contains(&i));
            let u: f64 = r.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }
}
