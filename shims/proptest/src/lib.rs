//! Offline stand-in for the `proptest` crate.
//!
//! Re-implements the strategy subset the workspace's property tests use:
//! range strategies over ints/floats, tuples, `Just`, `prop_oneof!`,
//! `prop_map`, `any::<T>()`, `proptest::collection::vec`, and the
//! `proptest!` / `prop_assert!` macros. Sampling is plain deterministic
//! pseudo-random generation (seeded per test from the test's path), with
//! no shrinking — a failing case panics with the values printable via the
//! assertion message. The strategy API is sampling-only: `Strategy::sample`
//! draws one value.

use std::marker::PhantomData;
use std::ops::Range;
use std::rc::Rc;

/// Deterministic test RNG (splitmix64).
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed deterministically from a test's fully-qualified name.
    pub fn from_name(name: &str) -> Self {
        // FNV-1a over the name, then a splitmix scramble.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        TestRng { state: h }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform in `[0, n)`; `n` must be non-zero.
    pub fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }
}

/// A value generator (sampling-only stand-in for `proptest::strategy::Strategy`).
pub trait Strategy {
    type Value;

    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { base: self, f }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }
}

/// `prop_map` adapter.
pub struct Map<S, F> {
    base: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.base.sample(rng))
    }
}

/// Type-erased strategy (stand-in for `proptest::strategy::BoxedStrategy`).
pub struct BoxedStrategy<T>(Rc<dyn Strategy<Value = T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        self.0.sample(rng)
    }
}

/// Uniform choice among alternatives (backs `prop_oneof!`).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.options.len() as u64) as usize;
        self.options[i].sample(rng)
    }
}

/// Always-this-value strategy.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
    )*};
}

int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn sample(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + (rng.next_f64() as f32) * (self.end - self.start)
    }
}

macro_rules! tuple_strategy {
    ($( ($($s:ident / $i:tt),+) )*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$i.sample(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A/0)
    (A/0, B/1)
    (A/0, B/1, C/2)
    (A/0, B/1, C/2, D/3)
    (A/0, B/1, C/2, D/3, E/4)
    (A/0, B/1, C/2, D/3, E/4, F/5)
}

/// Full-domain sampling, mirroring `proptest::arbitrary::any`.
pub fn any<T: ArbitraryValue>() -> Any<T> {
    Any(PhantomData)
}

pub struct Any<T>(PhantomData<T>);

pub trait ArbitraryValue {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl ArbitraryValue for u64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64()
    }
}

impl ArbitraryValue for u32 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl ArbitraryValue for u8 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        (rng.next_u64() >> 56) as u8
    }
}

impl ArbitraryValue for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl<T: ArbitraryValue> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// `proptest::collection::vec`: a Vec whose length is drawn from
    /// `size` and whose elements are drawn from `elem`.
    pub fn vec<S: Strategy>(elem: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty vec size range");
        VecStrategy { elem, size }
    }

    pub struct VecStrategy<S> {
        elem: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start + rng.below(span) as usize;
            (0..len).map(|_| self.elem.sample(rng)).collect()
        }
    }
}

/// Per-suite configuration (`cases` only).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_oneof, proptest, BoxedStrategy, Just,
        ProptestConfig, Strategy, TestRng, Union,
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

#[macro_export]
macro_rules! prop_oneof {
    ( $( $arm:expr ),+ $(,)? ) => {
        $crate::Union::new(vec![ $( $crate::Strategy::boxed($arm) ),+ ])
    };
}

/// The `proptest!` block: each contained `fn name(arg in strategy, ...)`
/// becomes a test running `cases` sampled iterations.
#[macro_export]
macro_rules! proptest {
    ( #![proptest_config($cfg:expr)] $($rest:tt)* ) => {
        $crate::__proptest_impl!{ ($cfg) $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_impl!{ (<$crate::ProptestConfig as ::core::default::Default>::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident ( $( $pat:pat in $strat:expr ),+ $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            let mut __rng = $crate::TestRng::from_name(concat!(
                module_path!(), "::", stringify!($name)
            ));
            for __case in 0..__cfg.cases {
                $( let $pat = $crate::Strategy::sample(&($strat), &mut __rng); )+
                $body
            }
        }
        $crate::__proptest_impl!{ ($cfg) $($rest)* }
    };
}
