//! Offline stand-in for `serde`.
//!
//! Provides the `Serialize`/`Deserialize` trait names and re-exports the
//! no-op derive macros so `use serde::{Deserialize, Serialize}` and
//! `#[derive(Serialize, Deserialize)]` compile without registry access.
//! No code in the workspace relies on actual serde (de)serialization —
//! all wire formats are hand-rolled.

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait standing in for `serde::Serialize`.
pub trait Serialize {}

/// Marker trait standing in for `serde::Deserialize`.
pub trait Deserialize<'de> {}
