//! Offline stand-in for `serde_derive`.
//!
//! The workspace uses `#[derive(Serialize, Deserialize)]` purely as a
//! forward-compatibility marker — nothing in the tree serializes through
//! serde (wire formats are hand-rolled in `fasda-net`/`fasda-cluster`).
//! The build environment has no registry access, so these derives expand
//! to an empty token stream instead of pulling in the real crate.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
