//! `fasda` — command-line driver mirroring the paper artifact's flow.
//!
//! The artifact configures a build with `./compile.sh 222 444` (2×2×2
//! cells per FPGA, 4×4×4 total) and runs it with
//! `python run.py <scheduler> <dump_group> <num_iterations>`. This CLI
//! reproduces both steps against the cycle-level simulator:
//!
//! ```text
//! fasda run --per-fpga 222 --total 444 --steps 10 [--variant A|B|C]
//!           [--sync chained|bulk] [--dump-group N] [--per-cell 64]
//! fasda generate --total 444 --out system.pdb [--per-cell 64]
//! fasda info --per-fpga 222 --total 444 [--variant C]
//! ```

use fasda_cluster::ckpt::{
    latest_checkpoint, load_checkpoint, resume_latest, run_with_checkpoints, run_with_recovery,
    CheckpointConfig, RecoveryPolicy, RunAccumulator,
};
use fasda_cluster::{
    chrome_trace, coordinator_main_net, emit_final, final_totals_json, shard_ranges, stall_json,
    state_dump, trace_summary_json_with, worker_main_net, Cluster, ClusterConfig,
    ClusterRunReport, EngineConfig, FaultPlan, HostController, Json, ObsLive, ObsSinkConfig,
    RelConfig, ShardNet, ShardOpts, StallLedger, Trace, TraceConfig, TraceLevel,
};
use fasda_core::config::{ChipConfig, DesignVariant};
use fasda_core::geometry::{ChipCoord, ChipGeometry};
use fasda_core::resources::{estimate, ALVEO_U280};
use fasda_md::pdb::to_pdb;
use fasda_md::space::SimulationSpace;
use fasda_md::workload::WorkloadSpec;
use fasda_net::sync::SyncMode;
use fasda_svc::server::{bench_recovery_costs, policy_interval};
use fasda_svc::{Client, JobSpec, Listen, Server, ServerConfig};
use std::process::ExitCode;

/// Parse the artifact's `222`-style dimension triple.
fn parse_dims(s: &str) -> Result<(u32, u32, u32), String> {
    let digits: Vec<u32> = s
        .chars()
        .map(|c| c.to_digit(10).ok_or_else(|| format!("bad dims '{s}'")))
        .collect::<Result<_, _>>()?;
    match digits.as_slice() {
        [x, y, z] => Ok((*x, *y, *z)),
        _ => Err(format!(
            "dims must be three digits like the artifact's '222'/'444', got '{s}'"
        )),
    }
}

struct Opts {
    args: Vec<String>,
}

impl Opts {
    fn get(&self, key: &str) -> Option<&str> {
        self.args
            .iter()
            .position(|a| a == key)
            .and_then(|i| self.args.get(i + 1))
            .map(String::as_str)
    }

    fn get_or<'a>(&'a self, key: &str, default: &'a str) -> &'a str {
        self.get(key).unwrap_or(default)
    }

    fn has(&self, key: &str) -> bool {
        self.args.iter().any(|a| a == key)
    }

    /// Every value of a repeatable flag, in order.
    fn get_all(&self, key: &str) -> Vec<&str> {
        self.args
            .iter()
            .enumerate()
            .filter(|(_, a)| *a == key)
            .filter_map(|(i, _)| self.args.get(i + 1))
            .map(String::as_str)
            .collect()
    }
}

/// `--serial` / `--threads N` → engine configuration. The default is
/// [`EngineConfig::auto`], which probes the host: multi-core machines
/// get the full parallel engine, single-core ones skip the thread pool
/// (whose coordination overhead costs more than it buys there) but keep
/// idle fast-forward. Every choice yields a bit-identical run, only
/// wall-clock time differs.
fn engine(opts: &Opts) -> Result<EngineConfig, String> {
    let mut e = if opts.has("--serial") {
        EngineConfig::serial()
    } else {
        let mut e = EngineConfig::auto();
        if let Some(t) = opts.get("--threads") {
            e = e.with_threads(t.parse().map_err(|_| "bad --threads")?);
        }
        e
    };
    e = e.with_trace(trace_config(opts)?);
    e = e.with_heartbeat_every(obs_opts(opts)?.every);
    Ok(e)
}

/// Live-telemetry options (see DESIGN.md §12). `--heartbeat-out` /
/// `--prom-out` without an explicit `--heartbeat-every` default to a
/// beat per step; `--obs-out` writes the engine-invariant final totals
/// document after the run.
struct ObsOpts {
    /// Heartbeat cadence in completed steps (0 = off).
    every: u64,
    sinks: ObsSinkConfig,
    obs_out: Option<String>,
}

impl ObsOpts {
    /// Whether any obs surface was requested — gates the optional
    /// metrics sections so obs-free runs stay byte-identical to
    /// pre-telemetry output.
    fn armed(&self) -> bool {
        self.every > 0 || self.obs_out.is_some()
    }
}

fn obs_opts(opts: &Opts) -> Result<ObsOpts, String> {
    let sinks = ObsSinkConfig {
        heartbeat_out: opts.get("--heartbeat-out").map(std::path::PathBuf::from),
        prom_out: opts.get("--prom-out").map(std::path::PathBuf::from),
    };
    let every = match opts.get("--heartbeat-every") {
        Some(n) => {
            let n: u64 = n.parse().map_err(|_| "bad --heartbeat-every")?;
            if n == 0 {
                return Err("--heartbeat-every must be >= 1 (omit the flag to disable)".into());
            }
            n
        }
        None if sinks.any() => 1,
        None => 0,
    };
    Ok(ObsOpts { every, sinks, obs_out: opts.get("--obs-out").map(String::from) })
}

/// Whether any obs flag is present — used before [`ObsOpts`] parsing to
/// pick the implied trace level (heartbeat stall breakdowns and the
/// final totals need the live ledger, i.e. at least `sync` tracing).
fn obs_flags_present(opts: &Opts) -> bool {
    ["--heartbeat-every", "--heartbeat-out", "--prom-out", "--obs-out"]
        .iter()
        .any(|f| opts.has(f))
}

/// Fold per-segment stall ledgers into whole-run totals (checkpointed
/// and sharded runs produce one trace per segment).
fn folded_stalls(traces: &[Trace], nodes: usize) -> Option<StallLedger> {
    if traces.is_empty() {
        return None;
    }
    let mut folded = StallLedger::new(nodes);
    for t in traces {
        folded.absorb(&t.stalls);
    }
    Some(folded)
}

/// Post-run obs surfaces: append the `final` record to the heartbeat
/// stream, refresh the scrape file, and write the `--obs-out` totals
/// document. All three derive from [`final_totals_json`] — a pure
/// function of the (engine- and shard-invariant) report and ledger, so
/// the artifacts byte-match across engines and shard counts.
fn finish_obs(
    obs: &ObsOpts,
    report: &ClusterRunReport,
    stalls: Option<&StallLedger>,
) -> Result<(), String> {
    if !obs.armed() {
        return Ok(());
    }
    emit_final(&obs.sinks, report, stalls).map_err(|e| e.to_string())?;
    if let Some(out) = &obs.obs_out {
        std::fs::write(out, final_totals_json(report, stalls).pretty())
            .map_err(|e| e.to_string())?;
        println!("wrote final live-metrics totals to {out}");
    }
    Ok(())
}

/// `--trace-level off|sync|full` → flight-recorder configuration. When
/// the level is not given explicitly, asking for a trace output file
/// implies the `sync` tier (phases, handshakes, stall attribution);
/// `--metrics-out` alone keeps the recorder off — the run section of
/// the metrics document needs no events.
fn trace_config(opts: &Opts) -> Result<TraceConfig, String> {
    let level = match opts.get("--trace-level") {
        Some("off") => TraceLevel::Off,
        Some("sync") => TraceLevel::Sync,
        Some("full") => TraceLevel::Full,
        Some(other) => return Err(format!("unknown trace level '{other}'")),
        None if opts.get("--trace-out").is_some() => TraceLevel::Sync,
        None if obs_flags_present(opts) => TraceLevel::Sync,
        None => TraceLevel::Off,
    };
    Ok(TraceConfig {
        level,
        ..TraceConfig::full()
    })
}

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  fasda run --per-fpga 222 --total 444 [--steps N] [--variant A|B|C]\n\
         \x20           [--sync chained|bulk] [--dump-group N] [--per-cell 64] [--seed S]\n\
         \x20           [--threads N] [--serial] [--shards S] [--shard-dir DIR]\n\
         \x20           [--fault-plan SPEC] [--drop-rate P] [--fault-seed S] [--unreliable]\n\
         \x20           [--checkpoint-every N --checkpoint-dir DIR] [--checkpoint-keep K]\n\
         \x20           [--resume FILE|latest] [--recover N] [--dump-state FILE]\n\
         \x20           [--trace-out run.trace.json] [--metrics-out run.metrics.json]\n\
         \x20           [--trace-level off|sync|full]\n\
         \x20           [--heartbeat-every N] [--heartbeat-out beats.jsonl]\n\
         \x20           [--prom-out scrape.prom] [--obs-out totals.json]\n\
         \x20 fasda generate --total 444 --out system.pdb [--per-cell 64] [--seed S]\n\
         \x20 fasda info --per-fpga 222 --total 444 [--variant A|B|C]\n\
         \x20 fasda ckpt policy --step-ms T --failure-rate L\n\
         \x20           [--save-ms S --restore-ms R | --bench BENCH_engine.json]\n\
         \x20           [--interval K]\n\
         \x20 fasda serve [--dir DIR] [--listen unix:PATH|tcp:HOST:PORT] [--workers N]\n\
         \x20           [--default-ckpt-every N | --policy-bench BENCH.json\n\
         \x20            --step-ms T --failure-rate L]\n\
         \x20           [--tenant NAME:WEIGHT[:MAX]]... [--max-restarts N]\n\
         \x20 fasda job submit --connect ADDR [--spec FILE.json | --name S --tenant T\n\
         \x20           --priority P --total 633 --per-fpga 333 --per-cell 64 --seed S\n\
         \x20           --steps N --fault-plan SPEC --unreliable --ckpt-every N\n\
         \x20           --dump-state FILE] [--wait [--timeout SECS]]\n\
         \x20 fasda job status|cancel|logs|migrate|wait --connect ADDR [--id N]\n\
         \x20 fasda job metrics|shutdown --connect ADDR\n\
         \n\
         fault-plan grammar: drop=P,corrupt=P,dup=P,delay=P:MAX,seed=N,\n\
         \x20                   kill=CHAN:SRC->DST:N,crash=NODE@STEP (repeatable),\n\
         \x20                   burst=P_ENTER:P_EXIT:P_DROP,\n\
         \x20                   flap=CHAN:SRC->DST:@STEP+DURATION,\n\
         \x20                   partition=NODESET|NODESET:@STEP+DURATION\n\
         (NODESET is '/'-separated nodes or half-open ranges, e.g. 0/2..5;\n\
         \x20faults enable the reliable-delivery layer unless --unreliable is given;\n\
         \x20a crash aborts the run — recover with --resume latest, which strips the\n\
         \x20crash directives, or let --recover N restart automatically up to N times,\n\
         \x20stripping exactly the directive that fired each time)\n\
         \n\
         --shards S partitions the nodes across S worker processes exchanging\n\
         boundary traffic over Unix-domain sockets; the run is bit-identical to a\n\
         single process. --worker I --shard-dir DIR is the internal re-invocation\n\
         the coordinator spawns — not for direct use.\n\
         \n\
         live telemetry: --heartbeat-out streams one JSONL progress record every\n\
         --heartbeat-every N steps (default 1 when a sink is given); --prom-out\n\
         keeps a Prometheus text-format scrape file current; --obs-out writes the\n\
         engine- and shard-invariant final totals document. Sharded runs emit\n\
         fleet heartbeats naming the lagging shard. Any obs flag implies\n\
         --trace-level sync (the stall breakdown reads the live ledger)."
    );
    ExitCode::from(2)
}

/// `--fault-plan` / `--drop-rate` / `--fault-seed` → the seeded link-fault
/// schedule injected at the switch boundary. Any faults turn the
/// reliable-delivery layer (acks + retransmission) on, because chained
/// sync deadlocks on a lost marker otherwise; `--unreliable` opts back
/// out to study that failure mode.
fn fault_plan(opts: &Opts) -> Result<Option<FaultPlan>, String> {
    let mut plan = match opts.get("--fault-plan") {
        Some(spec) => Some(FaultPlan::parse(spec)?),
        None => None,
    };
    if let Some(p) = opts.get("--drop-rate") {
        let p: f64 = p.parse().map_err(|_| "bad --drop-rate")?;
        if !(0.0..1.0).contains(&p) {
            return Err(format!("--drop-rate {p} out of [0,1)"));
        }
        plan = Some(plan.unwrap_or_else(FaultPlan::none).with_rate(|r| r.drop = p));
    }
    if let Some(s) = opts.get("--fault-seed") {
        let s: u64 = s.parse().map_err(|_| "bad --fault-seed")?;
        plan = Some(plan.unwrap_or_else(FaultPlan::none).with_seed(s));
    }
    Ok(plan)
}

fn variant(opts: &Opts) -> Result<DesignVariant, String> {
    match opts.get_or("--variant", "A") {
        "A" | "a" => Ok(DesignVariant::A),
        "B" | "b" => Ok(DesignVariant::B),
        "C" | "c" => Ok(DesignVariant::C),
        other => Err(format!("unknown variant '{other}'")),
    }
}

fn workload(opts: &Opts) -> Result<(SimulationSpace, fasda_md::system::ParticleSystem), String> {
    let total = parse_dims(opts.get("--total").ok_or("--total required")?)?;
    let space = SimulationSpace::new(total.0, total.1, total.2);
    let per_cell: u32 = opts
        .get_or("--per-cell", "64")
        .parse()
        .map_err(|_| "bad --per-cell")?;
    let seed: u64 = opts.get_or("--seed", "64205").parse().map_err(|_| "bad --seed")?;
    let spec = WorkloadSpec {
        per_cell,
        ..WorkloadSpec::paper(space, seed)
    };
    Ok((space, spec.generate()))
}

/// `--checkpoint-every` / `--checkpoint-dir` / `--checkpoint-keep` → the
/// periodic snapshot schedule. Both of the first two are required to
/// turn checkpointing on.
fn checkpoint_config(opts: &Opts) -> Result<Option<CheckpointConfig>, String> {
    match (opts.get("--checkpoint-every"), opts.get("--checkpoint-dir")) {
        (Some(n), Some(dir)) => {
            let every: u64 = n.parse().map_err(|_| "bad --checkpoint-every")?;
            if every == 0 {
                return Err("--checkpoint-every must be >= 1".into());
            }
            let keep: usize = opts
                .get_or("--checkpoint-keep", "3")
                .parse()
                .map_err(|_| "bad --checkpoint-keep")?;
            Ok(Some(CheckpointConfig::new(every, dir).with_keep(keep)))
        }
        (None, None) => Ok(None),
        _ => Err("--checkpoint-every and --checkpoint-dir must be given together".into()),
    }
}

// Deterministic final-state dump (`--dump-state`): shared with the job
// service so a migrated job's dump and a direct run's dump are the same
// byte stream. See `fasda_cluster::state_dump`.

/// The checkpoint/resume run path: drives the cluster in segments via
/// `run_with_checkpoints` instead of the host controller. Selected only
/// when a checkpoint or resume flag is present, so plain runs keep the
/// exact pre-checkpointing code path.
#[allow(clippy::too_many_arguments)]
fn run_checkpointed(
    opts: &Opts,
    cfg: ClusterConfig,
    sys: &fasda_md::system::ParticleSystem,
    steps: u64,
    eng: &EngineConfig,
    ckpt: Option<CheckpointConfig>,
    resume: Option<&str>,
) -> Result<(), String> {
    let mut cluster = Cluster::new(cfg, sys);
    println!("{} FPGA node(s) configured; running...", cluster.num_nodes());
    let acc = match resume {
        None => RunAccumulator::new(),
        Some("latest") => {
            let dir = ckpt
                .as_ref()
                .map(|c| c.dir.clone())
                .ok_or("--resume latest needs --checkpoint-dir")?;
            match resume_latest(&mut cluster, &dir).map_err(|e| e.to_string())? {
                Some((path, acc)) => {
                    println!("resumed from {} (step {})", path.display(), acc.steps_done);
                    acc
                }
                None => {
                    println!("no checkpoint in {}; starting from step 0", dir.display());
                    RunAccumulator::new()
                }
            }
        }
        Some(path) => {
            let acc = load_checkpoint(&mut cluster, std::path::Path::new(path))
                .map_err(|e| e.to_string())?;
            println!("resumed from {path} (step {})", acc.steps_done);
            acc
        }
    };
    let obs = obs_opts(opts)?;
    if obs.every > 0 && obs.sinks.any() {
        let live = ObsLive::new(obs.every, &obs.sinks).map_err(|e| e.to_string())?;
        cluster.attach_obs(Box::new(live));
    }
    let run = run_with_checkpoints(
        &mut cluster,
        steps,
        2_000_000_000,
        eng,
        ckpt.as_ref(),
        acc,
    )
    .map_err(|e| e.to_string())?;
    let folded = folded_stalls(&run.traces, cluster.num_nodes());
    finish_obs(&obs, &run.report, folded.as_ref())?;

    println!(
        "\nsimulation rate: {:.2} µs/day ({:.0} cycles/step at 200 MHz)",
        run.report.us_per_day(),
        run.report.cycles_per_step()
    );
    if !run.checkpoints.is_empty() {
        println!(
            "wrote {} checkpoint(s), latest {}",
            run.checkpoints.len(),
            run.checkpoints.last().expect("non-empty").display()
        );
    }
    if run.report.faults_injected > 0 {
        println!("faults injected: {}", run.report.faults_injected);
    }
    if let Some(rel) = &run.report.reliability {
        println!(
            "reliable delivery: {} retransmits, {} acks, {} duplicates dropped, {} corrupt dropped",
            rel.retransmits, rel.acks_sent, rel.duplicates_dropped, rel.corrupt_dropped
        );
    }
    if let Some(out) = opts.get("--trace-out") {
        let trace = run
            .traces
            .last()
            .ok_or("--trace-out needs tracing on (drop --trace-level off)")?;
        std::fs::write(out, chrome_trace(trace)).map_err(|e| e.to_string())?;
        println!("wrote final-segment trace to {out} (earlier segments are not retained)");
    }
    if let Some(out) = opts.get("--metrics-out") {
        let nodes = cluster.num_nodes() as u64;
        let mut doc = Json::obj().field("run", run.report.metrics_json());
        if let Some(trace) = run.traces.last() {
            doc = doc
                .field("stalls", stall_json(&trace.stalls))
                .field("trace", trace_summary_json_with(trace, &[(0, 0, nodes)]));
        }
        if obs.armed() {
            doc = doc.field("obs", final_totals_json(&run.report, folded.as_ref()));
        }
        std::fs::write(out, doc.build().pretty()).map_err(|e| e.to_string())?;
        println!("wrote metrics to {out}");
    }
    if let Some(out) = opts.get("--dump-state") {
        std::fs::write(out, state_dump(&cluster, sys)).map_err(|e| e.to_string())?;
        println!("wrote state dump to {out}");
    }
    Ok(())
}

/// The `--recover N` run path: [`run_with_recovery`] builds (and after
/// each failure rebuilds) the cluster itself, stripping exactly the
/// fault directive that fired before resuming from the newest
/// checkpoint — so this path owns no resume flags, only the checkpoint
/// schedule, which it requires.
fn run_recovering(
    opts: &Opts,
    cfg: ClusterConfig,
    sys: &fasda_md::system::ParticleSystem,
    steps: u64,
    eng: &EngineConfig,
    ckpt: CheckpointConfig,
    max_restarts: u32,
) -> Result<(), String> {
    println!("recovery armed: up to {max_restarts} automatic restart(s)");
    let rec = run_with_recovery(
        sys,
        &cfg,
        steps,
        2_000_000_000,
        eng,
        &ckpt,
        &RecoveryPolicy::new(max_restarts),
    )
    .map_err(|e| e.to_string())?;
    for line in &rec.restarts {
        println!("recovered: {line}");
    }
    if rec.restarts.is_empty() {
        println!("no failure fired; the run completed on the first attempt");
    }
    println!(
        "\nsimulation rate: {:.2} µs/day ({:.0} cycles/step at 200 MHz)",
        rec.run.report.us_per_day(),
        rec.run.report.cycles_per_step()
    );
    if rec.run.report.faults_injected > 0 {
        println!("faults injected: {}", rec.run.report.faults_injected);
    }
    if let Some(out) = opts.get("--metrics-out") {
        let doc = Json::obj()
            .field("run", rec.run.report.metrics_json())
            .field(
                "restarts",
                Json::Arr(rec.restarts.iter().map(|s| Json::Str(s.clone())).collect()),
            );
        std::fs::write(out, doc.build().pretty()).map_err(|e| e.to_string())?;
        println!("wrote metrics to {out}");
    }
    if let Some(out) = opts.get("--dump-state") {
        std::fs::write(out, state_dump(&rec.cluster, sys)).map_err(|e| e.to_string())?;
        println!("wrote state dump to {out}");
    }
    Ok(())
}

/// The `--shards S` run path: spawn S worker processes (re-invoking our
/// own argv with `--worker I --shard-dir DIR` appended), drive the
/// global step barrier over the control socket, and fold their reports,
/// traces, and checkpoints into the same artifacts a one-process run
/// writes.
fn run_sharded_cli(
    opts: &Opts,
    cfg: ClusterConfig,
    sys: &fasda_md::system::ParticleSystem,
    steps: u64,
    shards: usize,
    ckpt: Option<CheckpointConfig>,
    resume: Option<&str>,
) -> Result<(), String> {
    let resume_path = match resume {
        None => None,
        Some("latest") => {
            let dir = ckpt
                .as_ref()
                .map(|c| c.dir.clone())
                .ok_or("--resume latest needs --checkpoint-dir")?;
            match latest_checkpoint(&dir).map_err(|e| e.to_string())? {
                Some(path) => {
                    println!("resuming from {}", path.display());
                    Some(path)
                }
                None => {
                    println!("no checkpoint in {}; starting from step 0", dir.display());
                    None
                }
            }
        }
        Some(path) => Some(std::path::PathBuf::from(path)),
    };
    // Rendezvous carrier: `--shard-listen ADDR` puts the control socket
    // and worker mesh on TCP (cross-host capable; loopback in CI), the
    // default stays Unix sockets in `--shard-dir`.
    let net = match opts.get("--shard-listen") {
        Some(addr) => ShardNet::Tcp(addr.to_string()),
        None => ShardNet::Unix(match opts.get("--shard-dir") {
            Some(d) => std::path::PathBuf::from(d),
            None => std::env::temp_dir().join(format!("fasda-shard-{}", std::process::id())),
        }),
    };
    // Workers rebuild config and workload by replaying this exact argv.
    let mut worker_argv = vec!["run".to_string()];
    worker_argv.extend(opts.args.iter().cloned());

    match &net {
        ShardNet::Unix(dir) => println!(
            "sharding across {shards} worker process(es); rendezvous in {}",
            dir.display()
        ),
        ShardNet::Tcp(addr) => {
            println!("sharding across {shards} worker process(es); listening on tcp {addr}")
        }
    }
    let obs = obs_opts(opts)?;
    let run = coordinator_main_net(
        &cfg,
        sys,
        steps,
        shards,
        ShardOpts {
            budget: 2_000_000_000,
            ckpt,
            resume: resume_path,
            obs: (obs.every > 0 && obs.sinks.any()).then(|| obs.sinks.clone()),
            tcp: false,
        },
        &net,
        &worker_argv,
    )
    .map_err(|e| e.to_string())?;
    let nodes = run.replica.num_nodes();
    let folded = folded_stalls(&run.traces, nodes);
    finish_obs(&obs, &run.report, folded.as_ref())?;
    // Shard provenance for the trace summary: which worker owned which
    // node span.
    let prov: Vec<(u32, u64, u64)> = shard_ranges(nodes, shards)
        .iter()
        .enumerate()
        .map(|(i, r)| (i as u32, r.start as u64, r.end as u64))
        .collect();

    println!(
        "\nsimulation rate: {:.2} µs/day ({:.0} cycles/step at 200 MHz)",
        run.report.us_per_day(),
        run.report.cycles_per_step()
    );
    if !run.checkpoints.is_empty() {
        println!(
            "wrote {} checkpoint(s), latest {}",
            run.checkpoints.len(),
            run.checkpoints.last().expect("non-empty").display()
        );
    }
    if run.report.faults_injected > 0 {
        println!("faults injected: {}", run.report.faults_injected);
    }
    if let Some(rel) = &run.report.reliability {
        println!(
            "reliable delivery: {} retransmits, {} acks, {} duplicates dropped, {} corrupt dropped",
            rel.retransmits, rel.acks_sent, rel.duplicates_dropped, rel.corrupt_dropped
        );
    }
    if let Some(out) = opts.get("--trace-out") {
        let trace = run
            .traces
            .last()
            .ok_or("--trace-out needs tracing on (drop --trace-level off)")?;
        std::fs::write(out, chrome_trace(trace)).map_err(|e| e.to_string())?;
        println!("wrote final-segment trace to {out} (earlier segments are not retained)");
    }
    if let Some(out) = opts.get("--metrics-out") {
        let mut doc = Json::obj().field("run", run.report.metrics_json());
        if let Some(trace) = run.traces.last() {
            doc = doc
                .field("stalls", stall_json(&trace.stalls))
                .field("trace", trace_summary_json_with(trace, &prov));
        }
        if obs.armed() {
            doc = doc.field("obs", final_totals_json(&run.report, folded.as_ref()));
        }
        std::fs::write(out, doc.build().pretty()).map_err(|e| e.to_string())?;
        println!("wrote metrics to {out}");
    }
    if let Some(out) = opts.get("--dump-state") {
        std::fs::write(out, state_dump(&run.replica, sys)).map_err(|e| e.to_string())?;
        println!("wrote state dump to {out}");
    }
    Ok(())
}

fn cmd_run(opts: &Opts) -> Result<(), String> {
    let per_fpga = parse_dims(opts.get("--per-fpga").ok_or("--per-fpga required")?)?;
    let (space, sys) = workload(opts)?;
    let steps: u64 = opts.get_or("--steps", "5").parse().map_err(|_| "bad --steps")?;
    let v = variant(opts)?;
    let mut cfg = ClusterConfig::paper(ChipConfig::variant(v), per_fpga);
    cfg.sync = match opts.get_or("--sync", "chained") {
        "chained" => SyncMode::Chained,
        "bulk" => SyncMode::Bulk { latency: 2_000 },
        other => return Err(format!("unknown sync mode '{other}'")),
    };
    if let Some(plan) = fault_plan(opts)? {
        cfg = cfg.with_faults(plan);
        if !opts.has("--unreliable") {
            cfg = cfg.with_reliability(RelConfig::DEFAULT);
        }
    }
    // A resumed run must not re-fire the crash directive that killed the
    // original process.
    let resume = opts.get("--resume");
    if resume.is_some() {
        if let Some(plan) = &cfg.faults {
            cfg.faults = Some(plan.without_crash());
        }
    }

    // Shard-worker mode: this process was spawned by a `--shards`
    // coordinator re-invoking its own argv. Rendezvous and serve — all
    // output belongs to the coordinator.
    if let Some(w) = opts.get("--worker") {
        let index: usize = w.parse().map_err(|_| "bad --worker")?;
        let shards: usize = opts
            .get("--shards")
            .ok_or("--worker needs --shards")?
            .parse()
            .map_err(|_| "bad --shards")?;
        let net = match opts.get("--shard-connect") {
            Some(addr) => ShardNet::Tcp(addr.to_string()),
            None => ShardNet::Unix(
                opts.get("--shard-dir")
                    .ok_or("--worker needs --shard-dir or --shard-connect")?
                    .into(),
            ),
        };
        let eng = engine(opts)?;
        return worker_main_net(&cfg, &sys, &eng, index, shards, &net).map_err(|e| e.to_string());
    }

    println!(
        "FASDA: {}x{}x{} cells ({} atoms) on {}x{}x{} cells/FPGA, variant {} ({}), {} steps",
        space.dx,
        space.dy,
        space.dz,
        sys.len(),
        per_fpga.0,
        per_fpga.1,
        per_fpga.2,
        match v {
            DesignVariant::A => "A",
            DesignVariant::B => "B",
            DesignVariant::C => "C",
        },
        v.label(),
        steps
    );

    let eng = engine(opts)?;
    let ckpt = checkpoint_config(opts)?;
    if let Some(n) = opts.get("--recover") {
        let n: u32 = n.parse().map_err(|_| "bad --recover")?;
        if opts.get("--shards").is_some() {
            return Err("--recover drives a single-process run (each restart rebuilds the cluster in-process)".into());
        }
        if resume.is_some() {
            return Err("--recover and --resume are exclusive (recovery resumes by itself)".into());
        }
        let ckpt = ckpt.ok_or("--recover needs --checkpoint-every and --checkpoint-dir")?;
        return run_recovering(opts, cfg, &sys, steps, &eng, ckpt, n);
    }
    if let Some(s) = opts.get("--shards") {
        let shards: usize = s.parse().map_err(|_| "bad --shards")?;
        return run_sharded_cli(opts, cfg, &sys, steps, shards, ckpt, resume);
    }
    if ckpt.is_some() || resume.is_some() {
        return run_checkpointed(opts, cfg, &sys, steps, &eng, ckpt, resume);
    }
    let mut cluster = Cluster::new(cfg, &sys);
    println!("{} FPGA node(s) configured; running...", cluster.num_nodes());
    let obs = obs_opts(opts)?;
    if obs.every > 0 && obs.sinks.any() {
        let live = ObsLive::new(obs.every, &obs.sinks).map_err(|e| e.to_string())?;
        cluster.attach_obs(Box::new(live));
    }
    let mut host = HostController::new(cluster);
    let run = host
        .run_iterations_with(steps, &eng)
        .map_err(|e| e.to_string())?;

    println!("\nAXI-Lite result registers (per node):");
    println!(
        "{:<6}{:>16}{:>14}{:>12}{:>12}{:>12}{:>12}",
        "node",
        "operation_cyc",
        "PE_cyc",
        "out_pos",
        "out_frc",
        "in_pos",
        "in_frc"
    );
    for (n, regs) in run.regs.iter().enumerate() {
        println!(
            "{:<6}{:>16}{:>14}{:>12}{:>12}{:>12}{:>12}",
            n,
            regs.operation_cycle_cnt,
            regs.PE_cycle_cnt,
            regs.out_traffic_packets_pos,
            regs.out_traffic_packets_frc,
            regs.in_traffic_packets_pos,
            regs.in_traffic_packets_frc
        );
    }
    println!(
        "\nsimulation rate: {:.2} µs/day ({:.0} cycles/step at 200 MHz)",
        run.report.us_per_day(),
        run.report.cycles_per_step()
    );
    println!(
        "bandwidth demand: pos {:.2} Gbps, frc {:.2} Gbps per node",
        run.report.pos_gbps_per_node(),
        run.report.frc_gbps_per_node()
    );
    if run.report.faults_injected > 0 {
        println!("faults injected: {}", run.report.faults_injected);
    }
    if let Some(rel) = &run.report.reliability {
        println!(
            "reliable delivery: {} retransmits, {} acks, {} duplicates dropped, {} corrupt dropped",
            rel.retransmits, rel.acks_sent, rel.duplicates_dropped, rel.corrupt_dropped
        );
    }

    let trace = host.take_trace();
    finish_obs(&obs, &run.report, trace.as_ref().map(|t| &t.stalls))?;
    if let Some(out) = opts.get("--trace-out") {
        let trace = trace
            .as_ref()
            .ok_or("--trace-out needs tracing on (drop --trace-level off)")?;
        std::fs::write(out, chrome_trace(trace)).map_err(|e| e.to_string())?;
        let events: u64 = trace.nodes.iter().map(|n| n.events.len() as u64).sum();
        println!("wrote {events} trace events to {out} (load at https://ui.perfetto.dev)");
    }
    if let Some(out) = opts.get("--metrics-out") {
        let nodes = host.cluster().num_nodes() as u64;
        let mut doc = Json::obj().field("run", run.report.metrics_json());
        if let Some(trace) = &trace {
            doc = doc
                .field("stalls", stall_json(&trace.stalls))
                .field("trace", trace_summary_json_with(trace, &[(0, 0, nodes)]));
        }
        if obs.armed() {
            doc = doc.field(
                "obs",
                final_totals_json(&run.report, trace.as_ref().map(|t| &t.stalls)),
            );
        }
        std::fs::write(out, doc.build().pretty()).map_err(|e| e.to_string())?;
        println!("wrote metrics to {out}");
    }

    if let Some(g) = opts.get("--dump-group") {
        let node: usize = g.parse().map_err(|_| "bad --dump-group")?;
        let dump = host.dump_group(node);
        println!("\ndump of node {node} ({} particles):", dump.len());
        for (id, elem, pos, vel) in dump.iter().take(16) {
            println!(
                "  id {id:>6} {:<3} pos [{:+.4} {:+.4} {:+.4}] vel [{:+.2e} {:+.2e} {:+.2e}]",
                elem.symbol(),
                pos[0],
                pos[1],
                pos[2],
                vel[0],
                vel[1],
                vel[2]
            );
        }
        if dump.len() > 16 {
            println!("  ... {} more", dump.len() - 16);
        }
    }
    if let Some(out) = opts.get("--dump-state") {
        std::fs::write(out, state_dump(host.cluster(), &sys)).map_err(|e| e.to_string())?;
        println!("wrote state dump to {out}");
    }
    Ok(())
}

fn cmd_generate(opts: &Opts) -> Result<(), String> {
    let (_, sys) = workload(opts)?;
    let out = opts.get("--out").ok_or("--out required")?;
    std::fs::write(out, to_pdb(&sys)).map_err(|e| e.to_string())?;
    println!("wrote {} atoms to {out}", sys.len());
    Ok(())
}

fn cmd_info(opts: &Opts) -> Result<(), String> {
    let per_fpga = parse_dims(opts.get("--per-fpga").ok_or("--per-fpga required")?)?;
    let total = parse_dims(opts.get("--total").ok_or("--total required")?)?;
    let space = SimulationSpace::new(total.0, total.1, total.2);
    let v = variant(opts)?;
    let geo = ChipGeometry::new(space, per_fpga, ChipCoord::new(0, 0, 0));
    let cfg = ChipConfig::variant(v);
    println!(
        "configuration: {} FPGAs, {} CBBs each, {} PEs/CBB ({} filters), {} peers/node",
        geo.num_chips(),
        geo.num_cbbs(),
        cfg.pes_per_cbb(),
        cfg.filters_per_cbb(),
        geo.send_chips().len(),
    );
    let pct = estimate(&cfg, &geo).percent_of(ALVEO_U280);
    println!(
        "estimated per-FPGA resources (Alveo U280): LUT {:.0}%  FF {:.0}%  BRAM {:.0}%  URAM {:.0}%  DSP {:.0}%",
        pct.lut, pct.ff, pct.bram, pct.uram, pct.dsp
    );
    Ok(())
}

/// `fasda ckpt policy` — the data-loss / availability calculator:
/// Young–Daly checkpoint-interval optimization over measured costs.
/// `--save-ms` / `--restore-ms` may come from flags or from the mean of
/// the `recovery` sweep a `chaosbench --recovery` run merged into the
/// benchmark document (`--bench`).
fn cmd_ckpt_policy(opts: &Opts) -> Result<(), String> {
    use fasda_cluster::ckpt::policy::PolicyInput;
    let step_cost: f64 = opts
        .get("--step-ms")
        .ok_or("--step-ms required (wall-clock cost of one simulated step)")?
        .parse()
        .map_err(|_| "bad --step-ms")?;
    let failure_rate: f64 = opts
        .get("--failure-rate")
        .ok_or("--failure-rate required (failures per simulated step)")?
        .parse()
        .map_err(|_| "bad --failure-rate")?;
    let bench = match opts.get("--bench") {
        None => None,
        Some(path) => {
            let (save, restore, rows) = bench_recovery_costs(path)?;
            println!("measured costs: mean over {rows} recovery sweep row(s) in {path}");
            Some((save, restore))
        }
    };
    let cost = |flag: &str, measured: Option<f64>| -> Result<f64, String> {
        match opts.get(flag) {
            Some(v) => v.parse().map_err(|_| format!("bad {flag}")),
            None => measured.ok_or_else(|| {
                format!("{flag} required (or --bench pointing at a recovery sweep)")
            }),
        }
    };
    let save_cost = cost("--save-ms", bench.as_ref().and_then(|b| b.0))?;
    let restore_cost = cost("--restore-ms", bench.as_ref().and_then(|b| b.1))?;
    if !step_cost.is_finite() || step_cost <= 0.0 || failure_rate < 0.0 || save_cost < 0.0 || restore_cost < 0.0 {
        return Err("costs must be non-negative, with --step-ms > 0".into());
    }
    let input = PolicyInput { save_cost, restore_cost, step_cost, failure_rate };

    println!(
        "inputs: save {save_cost:.3} ms, restore {restore_cost:.3} ms, step {step_cost:.3} ms, \
         failure rate {failure_rate:e}/step"
    );
    let ystar = input.young_daly_interval();
    if ystar.is_infinite() {
        println!("failure rate 0: never checkpoint (any interval only adds save overhead)");
        return Ok(());
    }
    println!("Young-Daly optimum: sqrt(2*save/(rate*step)) = {ystar:.1} steps\n");
    println!(
        "{:>10} {:>12} {:>12} {:>12} {:>13}",
        "interval", "save-ovhd", "loss/fail", "rework-ovhd", "availability"
    );
    let best = input.optimize();
    let mut ks = vec![
        (best.interval_steps / 4).max(1),
        (best.interval_steps / 2).max(1),
        best.interval_steps,
        best.interval_steps * 2,
        best.interval_steps * 4,
    ];
    if let Some(k) = opts.get("--interval") {
        ks.push(k.parse().map_err(|_| "bad --interval")?);
    }
    ks.sort_unstable();
    ks.dedup();
    for k in ks {
        let f = input.forecast(k);
        let mark = if f.interval_steps == best.interval_steps { "  <- optimal" } else { "" };
        println!(
            "{:>10} {:>11.2}% {:>10.1} st {:>11.2}% {:>12.4}{mark}",
            f.interval_steps,
            f.save_overhead * 100.0,
            f.expected_loss_steps,
            f.rework_overhead * 100.0,
            f.availability
        );
    }
    Ok(())
}

/// `--connect` / `--listen` address syntax: `tcp:HOST:PORT` selects the
/// TCP carrier, anything else (optionally prefixed `unix:`) is a
/// Unix-domain socket path.
fn parse_endpoint(spec: &str) -> Listen {
    if let Some(addr) = spec.strip_prefix("tcp:") {
        Listen::Tcp(addr.to_string())
    } else {
        Listen::Unix(spec.strip_prefix("unix:").unwrap_or(spec).into())
    }
}

/// `fasda serve` — the multi-tenant job daemon (see DESIGN.md §14).
/// Runs until a client sends `shutdown`; running jobs drain at their
/// next segment boundary and are journaled as requeued, so a restarted
/// server resumes them from their newest on-disk checkpoints.
fn cmd_serve(opts: &Opts) -> Result<(), String> {
    let dir = std::path::PathBuf::from(opts.get_or("--dir", "fasda-svc"));
    let mut cfg = ServerConfig::at(&dir);
    if let Some(l) = opts.get("--listen") {
        cfg.listen = parse_endpoint(l);
    }
    if let Some(w) = opts.get("--workers") {
        cfg.workers = w.parse().map_err(|_| "bad --workers")?;
    }
    if let Some(m) = opts.get("--max-restarts") {
        cfg.max_restarts = m.parse().map_err(|_| "bad --max-restarts")?;
    }
    for clause in opts.get_all("--tenant") {
        cfg.tenants.parse_clause(clause)?;
    }
    // The default checkpoint cadence: explicit flag, or the Young–Daly
    // optimum computed from measured recovery costs (`fasda ckpt policy`
    // with --bench, folded into the server).
    cfg.default_ckpt_every = match (opts.get("--default-ckpt-every"), opts.get("--policy-bench")) {
        (Some(n), None) => {
            let n: u64 = n.parse().map_err(|_| "bad --default-ckpt-every")?;
            if n == 0 {
                return Err("--default-ckpt-every must be >= 1".into());
            }
            n
        }
        (None, Some(bench)) => {
            let step_ms: f64 = opts
                .get("--step-ms")
                .ok_or("--policy-bench needs --step-ms (wall-clock cost of one step)")?
                .parse()
                .map_err(|_| "bad --step-ms")?;
            let failure_rate: f64 = opts
                .get("--failure-rate")
                .ok_or("--policy-bench needs --failure-rate (failures per step)")?
                .parse()
                .map_err(|_| "bad --failure-rate")?;
            let (save, restore, rows) = bench_recovery_costs(bench)?;
            let save = save.ok_or("no serialize_ms in the recovery sweep")?;
            let restore = restore.ok_or("no restore_ms in the recovery sweep")?;
            let every = policy_interval(step_ms, failure_rate, save, restore)?;
            println!(
                "policy cadence: checkpoint every {every} step(s) \
                 (Young-Daly over {rows} sweep row(s): save {save:.3} ms, restore {restore:.3} ms)"
            );
            every
        }
        (None, None) => cfg.default_ckpt_every,
        (Some(_), Some(_)) => {
            return Err("--default-ckpt-every and --policy-bench are exclusive".into())
        }
    };
    let workers = cfg.workers;
    let handle = Server::start(cfg).map_err(|e| e.to_string())?;
    match handle.addr() {
        Listen::Unix(path) => println!(
            "fasda-svc: {workers} worker(s), control socket {}",
            path.display()
        ),
        Listen::Tcp(addr) => println!("fasda-svc: {workers} worker(s), listening on tcp {addr}"),
    }
    println!("serving until a client sends shutdown (fasda job shutdown --connect ...)");
    handle.join();
    println!("fasda-svc: shut down cleanly");
    Ok(())
}

/// Build a [`JobSpec`] from `fasda job submit` flags (or `--spec FILE`
/// with a JSON document, with flags layered on top is NOT supported —
/// the file is the spec).
fn job_spec(opts: &Opts) -> Result<JobSpec, String> {
    if let Some(path) = opts.get("--spec") {
        let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
        let doc = Json::parse(&text).map_err(|e| format!("{path}: {e}"))?;
        return JobSpec::from_json(&doc);
    }
    let d = JobSpec::default();
    let spec = JobSpec {
        name: opts.get_or("--name", "").to_string(),
        tenant: opts.get_or("--tenant", &d.tenant).to_string(),
        priority: opts
            .get_or("--priority", "0")
            .parse()
            .map_err(|_| "bad --priority")?,
        total: opts.get_or("--total", &d.total).to_string(),
        per_fpga: opts.get_or("--per-fpga", &d.per_fpga).to_string(),
        per_cell: opts
            .get("--per-cell")
            .map(|v| v.parse().map_err(|_| "bad --per-cell"))
            .transpose()?
            .unwrap_or(d.per_cell),
        seed: opts
            .get("--seed")
            .map(|v| v.parse().map_err(|_| "bad --seed"))
            .transpose()?
            .unwrap_or(d.seed),
        steps: opts
            .get("--steps")
            .map(|v| v.parse().map_err(|_| "bad --steps"))
            .transpose()?
            .unwrap_or(d.steps),
        fault_plan: opts.get("--fault-plan").map(String::from),
        unreliable: opts.has("--unreliable"),
        ckpt_every: opts
            .get("--ckpt-every")
            .map(|v| v.parse().map_err(|_| "bad --ckpt-every"))
            .transpose()?
            .unwrap_or(0),
        dump_state: opts.get("--dump-state").map(String::from),
    };
    // Round-trip through JSON so flag-built specs hit exactly the
    // validation a submitted document does.
    JobSpec::from_json(&spec.to_json())
}

fn job_id(opts: &Opts) -> Result<u64, String> {
    opts.get("--id")
        .ok_or("--id required")?
        .parse()
        .map_err(|_| "bad --id".into())
}

/// `fasda job <verb>` — the service client.
fn cmd_job(opts: &Opts) -> Result<(), String> {
    let verb = opts
        .args
        .first()
        .map(String::as_str)
        .ok_or("job needs a verb: submit|status|cancel|logs|migrate|wait|metrics|shutdown")?;
    let addr = parse_endpoint(opts.get("--connect").ok_or("--connect required")?);
    let mut client = Client::connect(&addr)?;
    match verb {
        "submit" => {
            let spec = job_spec(opts)?;
            let id = client.submit(&spec).map_err(|e| e.to_string())?;
            println!("submitted job {id}");
            if opts.has("--wait") {
                let status = client
                    .wait(id, wait_timeout(opts)?)
                    .map_err(|e| e.to_string())?;
                println!("{}", status.pretty());
            }
        }
        "status" => match opts.get("--id") {
            Some(_) => {
                let doc = client.status(job_id(opts)?).map_err(|e| e.to_string())?;
                println!("{}", doc.pretty());
            }
            None => {
                for doc in client.status_all().map_err(|e| e.to_string())? {
                    println!("{}", doc.compact());
                }
            }
        },
        "cancel" => {
            client.cancel(job_id(opts)?).map_err(|e| e.to_string())?;
            println!("cancel requested");
        }
        "logs" => {
            for line in client.logs(job_id(opts)?).map_err(|e| e.to_string())? {
                println!("{line}");
            }
        }
        "migrate" => {
            client.migrate(job_id(opts)?).map_err(|e| e.to_string())?;
            println!("migration requested (drains at the next segment boundary)");
        }
        "wait" => {
            let status = client
                .wait(job_id(opts)?, wait_timeout(opts)?)
                .map_err(|e| e.to_string())?;
            println!("{}", status.pretty());
        }
        "metrics" => {
            let doc = client.metrics().map_err(|e| e.to_string())?;
            println!("{}", doc.pretty());
        }
        "shutdown" => {
            client.shutdown().map_err(|e| e.to_string())?;
            println!("shutdown requested (running jobs drain and journal as requeued)");
        }
        other => return Err(format!("unknown job verb '{other}'")),
    }
    Ok(())
}

fn wait_timeout(opts: &Opts) -> Result<std::time::Duration, String> {
    let secs: u64 = opts
        .get_or("--timeout", "3600")
        .parse()
        .map_err(|_| "bad --timeout")?;
    Ok(std::time::Duration::from_secs(secs))
}

fn cmd_ckpt(opts: &Opts) -> Result<(), String> {
    match opts.args.first().map(String::as_str) {
        Some("policy") => cmd_ckpt_policy(opts),
        Some(other) => Err(format!("unknown ckpt subcommand '{other}' (try 'policy')")),
        None => Err("ckpt needs a subcommand (try 'policy')".into()),
    }
}

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        return usage();
    }
    let cmd = args.remove(0);
    let opts = Opts { args };
    let result = match cmd.as_str() {
        "run" => cmd_run(&opts),
        "generate" => cmd_generate(&opts),
        "info" => cmd_info(&opts),
        "ckpt" => cmd_ckpt(&opts),
        "serve" => cmd_serve(&opts),
        "job" => cmd_job(&opts),
        _ => return usage(),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::parse_dims;

    #[test]
    fn artifact_dim_syntax() {
        assert_eq!(parse_dims("222"), Ok((2, 2, 2)));
        assert_eq!(parse_dims("444"), Ok((4, 4, 4)));
        assert_eq!(parse_dims("633"), Ok((6, 3, 3)));
        assert!(parse_dims("22").is_err());
        assert!(parse_dims("2222").is_err());
        assert!(parse_dims("2x2").is_err());
    }
}
