//! # fasda-arith
//!
//! Bespoke arithmetic substrate for the FASDA accelerator model.
//!
//! FPGAs earn their MD performance partly through *flexible and bespoke
//! arithmetic* (paper §1): positions are stored as **fixed-point offsets
//! inside a cell** so that the hundreds of pair filters are cheap integer
//! subtract/multiply/compare circuits, while the expensive `r^-14` / `r^-8`
//! force terms are evaluated with a **section/bin linear interpolation
//! table** indexed directly by the exponent and mantissa bits of `r²`
//! (paper Eqs. 8–10, Fig. 7).
//!
//! This crate implements both, bit-faithfully enough that the functional
//! FASDA model reproduces the paper's energy-conservation behaviour
//! (Fig. 19) when compared against an `f64` reference:
//!
//! * [`fixed::Fix`] — a `Q5.26` signed fixed-point scalar. With the cutoff
//!   radius normalized to 1 cell (paper §3.4), concatenating the relative
//!   cell ID (RCID ∈ {1,2,3}) with the in-cell fraction yields coordinates
//!   in `[1,4)`, and filter distances in `(-3,3)`; squared distances stay
//!   below 27. All comfortably inside `Q5.26`.
//! * [`float_bits`] — section/bin index extraction from the raw bits of an
//!   `f32` (Eqs. 9–10).
//! * [`interp`] — construction and evaluation of the per-section,
//!   per-bin linear coefficient tables for arbitrary negative powers
//!   `r^-α` (α = 14, 8 for force; 12, 6 for potential-energy validation).

pub mod fixed;
pub mod float_bits;
pub mod interp;

pub use fixed::{Fix, FixVec3};
pub use float_bits::{section_bin, SectionBin};
pub use interp::{InterpError, InterpTable, LjForceTable, LjPotentialTable, TableConfig};
