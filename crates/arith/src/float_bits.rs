//! Section/bin index extraction from `f32` bit fields (paper Eqs. 9–10).
//!
//! The interpolation scheme divides the domain of `r²` into `n_s` sections
//! "based on the exponent bits of `r²`", each split into `n_b` regular bins
//! "based on the mantissa bits of `r²`":
//!
//! ```text
//! s = ⌊log₂(r²)⌋ + n_s                        (Eq. 9)
//! b = ⌊(2^(n_s − s) · r² − 1) · n_b⌋           (Eq. 10)
//! ```
//!
//! With the cutoff radius normalized to 1 (§3.4), valid pair distances give
//! `r² ∈ (0, 1)`, so `⌊log₂ r²⌋ ∈ {-1, -2, …}` and sections `s = n_s - 1,
//! n_s - 2, …` count down toward the excluded small-`r` region (Fig. 7).
//! On hardware both indices are raw bit slices of the IEEE-754 word; we do
//! exactly that here.

/// A decoded `(section, bin)` pair, or the two out-of-range conditions.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SectionBin {
    /// `r²` falls inside the covered domain: use `table[section][bin]`.
    In { section: u32, bin: u32 },
    /// `r²` is below the smallest covered section — the non-physical
    /// high-energy region excluded in Fig. 7.
    BelowRange,
    /// `r²` is at or above the cutoff (`r² ≥ Rc² = 1`): pair contributes
    /// no force (it should have been dropped by the filter).
    AboveRange,
}

/// Extract the section and bin indices of `r2` for a table with
/// `n_sections` sections and `2^log2_bins` bins per section.
///
/// `r2` must be a positive, finite, normal `f32`; the force datapath
/// guarantees this because the filter excludes `r² = 0` (a particle is
/// never paired with itself) and the fixed-point grid cannot produce
/// subnormals above the excluded region.
#[inline]
pub fn section_bin(r2: f32, n_sections: u32, log2_bins: u32) -> SectionBin {
    debug_assert!(r2 > 0.0 && r2.is_finite(), "r2 must be positive finite");
    let bits = r2.to_bits();
    let exp = ((bits >> 23) & 0xff) as i32 - 127; // unbiased exponent = ⌊log₂ r²⌋
    let section = exp + n_sections as i32; // Eq. 9
    if section < 0 {
        return SectionBin::BelowRange;
    }
    if section >= n_sections as i32 {
        return SectionBin::AboveRange;
    }
    // Eq. 10: the top `log2_bins` mantissa bits are ⌊(m − 1)·n_b⌋ for
    // mantissa m ∈ [1, 2).
    let bin = (bits >> (23 - log2_bins)) & ((1u32 << log2_bins) - 1);
    SectionBin::In {
        section: section as u32,
        bin,
    }
}

/// Branchless flattened `(section << log2_bins) | bin` index for an `r²`
/// already proven inside the covered domain `[2^-n_sections, 1)` — the
/// guarantee the fixed-point filter provides. Pure bit-slicing of the
/// IEEE-754 word, no range branches: the hot fused filter→force kernel
/// uses this so the table fetch never mispredicts, while the scalar
/// [`section_bin`] keeps the checked decode as the oracle.
///
/// Produces exactly `section << log2_bins | bin` of the
/// [`SectionBin::In`] arm of [`section_bin`] for every in-domain value
/// (debug-asserted).
#[inline]
pub fn fused_index(r2: f32, n_sections: u32, log2_bins: u32) -> u32 {
    let bits = r2.to_bits();
    // Unbiased exponent + n_sections = Eq. 9's section, guaranteed in
    // [0, n_sections) by the filter; wrapping arithmetic on the raw
    // field is safe because the guarantee makes it non-negative.
    let section = (((bits >> 23) & 0xff) as i32 - 127 + n_sections as i32) as u32;
    let bin = (bits >> (23 - log2_bins)) & ((1u32 << log2_bins) - 1);
    let idx = (section << log2_bins) | bin;
    debug_assert_eq!(
        match section_bin(r2, n_sections, log2_bins) {
            SectionBin::In { section, bin } => Some((section << log2_bins) | bin),
            _ => None,
        },
        Some(idx),
        "fused_index called with out-of-domain r2={r2}"
    );
    idx
}

/// Lower edge of a `(section, bin)` cell in `r²` space.
#[inline]
pub fn bin_lower_edge(section: u32, bin: u32, n_sections: u32, log2_bins: u32) -> f64 {
    let exp = section as i32 - n_sections as i32;
    let base = (exp as f64).exp2();
    let n_b = (1u64 << log2_bins) as f64;
    base * (1.0 + bin as f64 / n_b)
}

/// Upper edge of a `(section, bin)` cell in `r²` space.
#[inline]
pub fn bin_upper_edge(section: u32, bin: u32, n_sections: u32, log2_bins: u32) -> f64 {
    bin_lower_edge(section, bin + 1, n_sections, log2_bins)
}

#[cfg(test)]
mod tests {
    use super::*;

    const NS: u32 = 14;
    const LB: u32 = 8; // 256 bins

    #[test]
    fn last_section_covers_half_to_one() {
        // r² ∈ [0.5, 1) is the top section, s = n_s - 1
        for r2 in [0.5f32, 0.6, 0.75, 0.999_999] {
            match section_bin(r2, NS, LB) {
                SectionBin::In { section, .. } => assert_eq!(section, NS - 1, "r2={r2}"),
                other => panic!("r2={r2}: {other:?}"),
            }
        }
    }

    #[test]
    fn at_cutoff_is_above_range() {
        assert_eq!(section_bin(1.0, NS, LB), SectionBin::AboveRange);
        assert_eq!(section_bin(2.5, NS, LB), SectionBin::AboveRange);
    }

    #[test]
    fn below_smallest_section_is_below_range() {
        let tiny = (2.0f32).powi(-(NS as i32) - 1);
        assert_eq!(section_bin(tiny, NS, LB), SectionBin::BelowRange);
        // Exactly at the lower domain edge is in range (section 0).
        let edge = (2.0f32).powi(-(NS as i32));
        assert_eq!(
            section_bin(edge, NS, LB),
            SectionBin::In { section: 0, bin: 0 }
        );
    }

    #[test]
    fn bin_index_matches_formula() {
        // pick r² = 0.5 * (1 + 37.5/256) → section NS-1, bin 37
        let m = 1.0 + 37.5 / 256.0;
        let r2 = 0.5f32 * m as f32;
        match section_bin(r2, NS, LB) {
            SectionBin::In { section, bin } => {
                assert_eq!(section, NS - 1);
                assert_eq!(bin, 37);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn edges_bracket_value() {
        for &r2 in &[0.013f32, 0.11, 0.51, 0.97, 0.25001] {
            if let SectionBin::In { section, bin } = section_bin(r2, NS, LB) {
                let lo = bin_lower_edge(section, bin, NS, LB);
                let hi = bin_upper_edge(section, bin, NS, LB);
                assert!(
                    lo <= r2 as f64 && (r2 as f64) < hi,
                    "r2={r2} not in [{lo},{hi})"
                );
            } else {
                panic!("expected in-range");
            }
        }
    }

    #[test]
    fn fused_index_matches_checked_decode() {
        // Sweep the whole covered domain [2^-NS, 1): every in-range value
        // must produce the identical flattened index by both decoders.
        let mut r2 = (2.0f32).powi(-(NS as i32));
        while r2 < 1.0 {
            match section_bin(r2, NS, LB) {
                SectionBin::In { section, bin } => {
                    assert_eq!(fused_index(r2, NS, LB), (section << LB) | bin, "r2={r2}");
                }
                other => panic!("r2={r2} should be in range: {other:?}"),
            }
            // Step by ~1/3 bin so every section/bin cell is visited.
            r2 *= 1.0 + 1.0 / (3.0 * (1u32 << LB) as f32);
        }
        // Both domain edges exactly.
        let lo = (2.0f32).powi(-(NS as i32));
        assert_eq!(fused_index(lo, NS, LB), 0);
        let below_one = f32::from_bits(1.0f32.to_bits() - 1);
        assert_eq!(
            fused_index(below_one, NS, LB),
            ((NS - 1) << LB) | ((1 << LB) - 1)
        );
    }

    #[test]
    fn section_matches_floor_log2() {
        for &r2 in &[0.9f32, 0.5, 0.49999, 0.26, 0.25, 0.1, 1.0e-3, 7.0e-5] {
            if let SectionBin::In { section, .. } = section_bin(r2, NS, LB) {
                let expect = (r2 as f64).log2().floor() as i32 + NS as i32;
                assert_eq!(section as i32, expect, "r2={r2}");
            }
        }
    }
}
