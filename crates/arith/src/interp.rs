//! Linear interpolation tables for `r^-α` (paper §3.4, Eq. 8, Fig. 7).
//!
//! Instead of computing the `r⁻¹⁴` and `r⁻⁸` force terms directly, FASDA
//! evaluates
//!
//! ```text
//! r^-α = a_α(s, b) · r² + b_α(s, b)            (Eq. 8)
//! ```
//!
//! where `(s, b)` are the section/bin indices extracted from the bits of
//! `r²` (see [`crate::float_bits`]). The coefficients make the interpolant
//! exact at every bin edge, so the error inside a bin is the classic
//! second-derivative bound and shrinks quadratically with the bin count —
//! the knob exposed to users as [`TableConfig`] and swept by the
//! `ablate_interp` harness.
//!
//! A further benefit noted by the paper is generality: "different force
//! models \[can\] be implemented with trivial modification" — any smooth
//! `f(r²)` can be tabulated via [`InterpTable::build_fn`].

use crate::float_bits::{bin_lower_edge, bin_upper_edge, section_bin, SectionBin};
use serde::{Deserialize, Serialize};

/// Table geometry: how the `r² ∈ [2^-n_sections, 1)` domain is cut up.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct TableConfig {
    /// Number of exponent sections (`n_s` in Eq. 9). The covered domain is
    /// `r² ∈ [2^-n_sections, 1)`; smaller `r²` is the excluded non-physical
    /// region of Fig. 7.
    pub n_sections: u32,
    /// Log₂ of the bins per section (`n_b = 2^log2_bins`, Eq. 10).
    pub log2_bins: u32,
}

impl TableConfig {
    /// The configuration used throughout the paper-scale experiments:
    /// 14 sections × 256 bins. 14 sections put the excluded region at
    /// `r² < 2⁻¹⁴` (`r < 0.0078` cells ≈ 0.066 Å at 8.5 Å cells), safely
    /// below any physical pair distance, while 256 bins keep the worst
    /// relative force error near 1e-4 (the second-derivative bound
    /// `(α/2)(α/2+1)/8 · n_b⁻²` for `α = 14`).
    pub const PAPER: TableConfig = TableConfig {
        n_sections: 14,
        log2_bins: 8,
    };

    /// Bins per section.
    #[inline]
    pub fn bins(&self) -> u32 {
        1 << self.log2_bins
    }

    /// Total number of `(a, b)` coefficient pairs.
    #[inline]
    pub fn entries(&self) -> usize {
        (self.n_sections * self.bins()) as usize
    }

    /// Lower edge of the covered `r²` domain.
    #[inline]
    pub fn domain_min(&self) -> f64 {
        (-(self.n_sections as f64)).exp2()
    }

    /// BRAM footprint of one table in bits (two `f32` words per entry),
    /// used by the resource model.
    #[inline]
    pub fn storage_bits(&self) -> u64 {
        self.entries() as u64 * 64
    }
}

impl Default for TableConfig {
    fn default() -> Self {
        TableConfig::PAPER
    }
}

/// Evaluation failures — only reachable when the caller bypasses the
/// pair filter.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum InterpError {
    /// `r²` in the excluded non-physical region (`r² < 2^-n_sections`).
    BelowRange,
    /// `r²` at or beyond the cutoff (`r² ≥ 1`).
    AboveRange,
}

impl core::fmt::Display for InterpError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            InterpError::BelowRange => write!(f, "r² below interpolation domain (excluded region)"),
            InterpError::AboveRange => write!(f, "r² at or beyond cutoff"),
        }
    }
}

impl std::error::Error for InterpError {}

/// One interpolation table: `(a, b)` coefficient pairs per `(section, bin)`.
///
/// Note on domain depth: the coefficients are stored as `f32`, so tables
/// for steep kernels overflow once sections reach into the region where
/// `f(r²)` exceeds `f32::MAX` (for `r⁻¹⁴` that happens around
/// `r² = 2⁻¹⁷`). This is the hardware-level motivation for the excluded
/// small-`r` region of Fig. 7.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct InterpTable {
    cfg: TableConfig,
    /// Flat `[section * bins + bin] → (a, b)`, stored as the `f32` words a
    /// BRAM would hold.
    coeffs: Vec<(f32, f32)>,
}

impl InterpTable {
    /// Build a table for `f(r²)` with coefficients exact at bin edges.
    /// Coefficient arithmetic is done in `f64` then rounded to the `f32`
    /// words the hardware stores.
    pub fn build_fn(cfg: TableConfig, f: impl Fn(f64) -> f64) -> Self {
        let bins = cfg.bins();
        let mut coeffs = Vec::with_capacity(cfg.entries());
        for s in 0..cfg.n_sections {
            for b in 0..bins {
                let x0 = bin_lower_edge(s, b, cfg.n_sections, cfg.log2_bins);
                let x1 = bin_upper_edge(s, b, cfg.n_sections, cfg.log2_bins);
                let y0 = f(x0);
                let y1 = f(x1);
                let a = (y1 - y0) / (x1 - x0);
                let c = y0 - a * x0;
                coeffs.push((a as f32, c as f32));
            }
        }
        InterpTable { cfg, coeffs }
    }

    /// Build a table for `r^-alpha` as a function of `r²`
    /// (i.e. `f(x) = x^(-alpha/2)`).
    pub fn build_r_pow(cfg: TableConfig, alpha: u32) -> Self {
        let half = alpha as f64 / 2.0;
        Self::build_fn(cfg, move |x| x.powf(-half))
    }

    /// Table geometry.
    #[inline]
    pub fn config(&self) -> TableConfig {
        self.cfg
    }

    /// The raw `(a, b)` coefficient words, flat `[section * bins + bin]`
    /// order — the exact BRAM contents. Exposed so downstream models can
    /// re-pack tables that share one index (e.g. interleave the `r⁻¹⁴`
    /// and `r⁻⁸` words into a single fetch) without changing a bit of
    /// the arithmetic.
    #[inline]
    pub fn coeffs(&self) -> &[(f32, f32)] {
        &self.coeffs
    }

    /// Evaluate at `r²`, reporting out-of-domain inputs.
    #[inline]
    pub fn eval(&self, r2: f32) -> Result<f32, InterpError> {
        match section_bin(r2, self.cfg.n_sections, self.cfg.log2_bins) {
            SectionBin::In { section, bin } => {
                let (a, b) = self.coeffs[(section * self.cfg.bins() + bin) as usize];
                Ok(a * r2 + b)
            }
            SectionBin::BelowRange => Err(InterpError::BelowRange),
            SectionBin::AboveRange => Err(InterpError::AboveRange),
        }
    }

    /// Hot-path evaluation: the upstream filter guarantees
    /// `r² ∈ [2^-n_s, 1)`, so out-of-range is a datapath bug. Returns 0 for
    /// out-of-range in release (a dropped pair, matching the hardware's
    /// discard of unfiltered flits) and panics in debug.
    #[inline]
    pub fn eval_filtered(&self, r2: f32) -> f32 {
        match self.eval(r2) {
            Ok(v) => v,
            Err(e) => {
                debug_assert!(false, "unfiltered r²={r2} reached force pipeline: {e}");
                0.0
            }
        }
    }

    /// Maximum relative error against `exact` over `samples` log-uniform
    /// points of the covered domain. Used by tests and the interpolation
    /// ablation harness.
    pub fn max_rel_error(&self, exact: impl Fn(f64) -> f64, samples: usize) -> f64 {
        let lo = self.cfg.domain_min().ln();
        let hi = 0.0f64; // ln(1.0)
        let mut worst: f64 = 0.0;
        for i in 0..samples {
            // stay strictly inside the domain
            let t = (i as f64 + 0.5) / samples as f64;
            let x = (lo + t * (hi - lo)).exp();
            let approx = self.eval(x as f32).expect("in-domain sample") as f64;
            let truth = exact(x);
            worst = worst.max(((approx - truth) / truth).abs());
        }
        worst
    }
}

/// The force-pipeline pair of tables: `r⁻¹⁴` and `r⁻⁸` (Eq. 2 terms).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct LjForceTable {
    /// `r⁻¹⁴` table (the repulsive `48(σ/r)¹⁴` term).
    pub r14: InterpTable,
    /// `r⁻⁸` table (the attractive `24(σ/r)⁸` term).
    pub r8: InterpTable,
}

impl LjForceTable {
    /// Build both force tables with one geometry.
    pub fn new(cfg: TableConfig) -> Self {
        LjForceTable {
            r14: InterpTable::build_r_pow(cfg, 14),
            r8: InterpTable::build_r_pow(cfg, 8),
        }
    }

    /// Evaluate `(r⁻¹⁴, r⁻⁸)` for a filtered pair.
    #[inline]
    pub fn eval(&self, r2: f32) -> (f32, f32) {
        (self.r14.eval_filtered(r2), self.r8.eval_filtered(r2))
    }

    /// Table geometry.
    #[inline]
    pub fn config(&self) -> TableConfig {
        self.r14.config()
    }
}

/// Potential-energy tables `r⁻¹²`/`r⁻⁶`, used by the energy-conservation
/// validation path (Fig. 19); the production force path never reads these.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct LjPotentialTable {
    /// `r⁻¹²` table.
    pub r12: InterpTable,
    /// `r⁻⁶` table.
    pub r6: InterpTable,
}

impl LjPotentialTable {
    /// Build both potential tables with one geometry.
    pub fn new(cfg: TableConfig) -> Self {
        LjPotentialTable {
            r12: InterpTable::build_r_pow(cfg, 12),
            r6: InterpTable::build_r_pow(cfg, 6),
        }
    }

    /// Evaluate `(r⁻¹², r⁻⁶)` for a filtered pair.
    #[inline]
    pub fn eval(&self, r2: f32) -> (f32, f32) {
        (self.r12.eval_filtered(r2), self.r6.eval_filtered(r2))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_at_bin_edges() {
        let cfg = TableConfig {
            n_sections: 6,
            log2_bins: 4,
        };
        let t = InterpTable::build_r_pow(cfg, 8);
        for s in 0..cfg.n_sections {
            for b in 0..cfg.bins() {
                let x0 = bin_lower_edge(s, b, cfg.n_sections, cfg.log2_bins);
                let got = t.eval(x0 as f32).unwrap() as f64;
                let want = x0.powf(-4.0);
                assert!(
                    ((got - want) / want).abs() < 1e-5,
                    "s={s} b={b}: {got} vs {want}"
                );
            }
        }
    }

    #[test]
    fn paper_config_accuracy() {
        let t = InterpTable::build_r_pow(TableConfig::PAPER, 14);
        let err = t.max_rel_error(|x| x.powf(-7.0), 20_000);
        assert!(err < 2e-4, "r^-14 worst rel error {err}");
        let t8 = InterpTable::build_r_pow(TableConfig::PAPER, 8);
        let err8 = t8.max_rel_error(|x| x.powf(-4.0), 20_000);
        assert!(err8 < 1e-4, "r^-8 worst rel error {err8}");
    }

    #[test]
    fn error_shrinks_quadratically_with_bins() {
        let exact = |x: f64| x.powf(-7.0);
        let coarse = InterpTable::build_r_pow(
            TableConfig {
                n_sections: 10,
                log2_bins: 4,
            },
            14,
        )
        .max_rel_error(exact, 10_000);
        let fine = InterpTable::build_r_pow(
            TableConfig {
                n_sections: 10,
                log2_bins: 6,
            },
            14,
        )
        .max_rel_error(exact, 10_000);
        // 4x more bins → ~16x less error; allow slack for f32 rounding.
        assert!(
            fine < coarse / 8.0,
            "coarse={coarse:.3e} fine={fine:.3e}: error not shrinking quadratically"
        );
    }

    #[test]
    fn out_of_range_reported() {
        let t = InterpTable::build_r_pow(TableConfig::PAPER, 8);
        assert_eq!(t.eval(1.0), Err(InterpError::AboveRange));
        assert_eq!(t.eval(1.0e-7), Err(InterpError::BelowRange));
    }

    #[test]
    fn force_table_pair() {
        let ft = LjForceTable::new(TableConfig::PAPER);
        let r2 = 0.51f32;
        let (r14, r8) = ft.eval(r2);
        let want14 = (r2 as f64).powf(-7.0);
        let want8 = (r2 as f64).powf(-4.0);
        assert!(((r14 as f64 - want14) / want14).abs() < 1e-4);
        assert!(((r8 as f64 - want8) / want8).abs() < 1e-4);
    }

    #[test]
    fn potential_table_pair() {
        let pt = LjPotentialTable::new(TableConfig::PAPER);
        let r2 = 0.77f32;
        let (r12, r6) = pt.eval(r2);
        assert!(((r12 as f64) - (r2 as f64).powf(-6.0)).abs() / (r2 as f64).powf(-6.0) < 1e-4);
        assert!(((r6 as f64) - (r2 as f64).powf(-3.0)).abs() / (r2 as f64).powf(-3.0) < 1e-4);
    }

    #[test]
    fn generic_force_model_builds() {
        // "different force models with trivial modification": tabulate a
        // screened-coulomb-like kernel and verify accuracy.
        let cfg = TableConfig::PAPER;
        let f = |x: f64| (-x.sqrt()).exp() / x;
        let t = InterpTable::build_fn(cfg, f);
        let err = t.max_rel_error(f, 10_000);
        assert!(err < 1e-4, "screened kernel error {err}");
    }
}
