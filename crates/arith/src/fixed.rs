//! `Q5.26` signed fixed-point arithmetic.
//!
//! The paper stores raw particle positions as fixed-point offsets inside a
//! cell (§3.1: the Position Cache "stores fixed-point positions representing
//! position offsets in a cell") and concatenates the relative cell ID with
//! the fraction so that inter-cell distances are obtained *by direct
//! subtraction* (§4.2). The motivation is hardware cost: filters "can number
//! in the hundreds in this design", and integer subtract/multiply/compare is
//! far cheaper than floating point on FPGA fabric.
//!
//! We model that representation with [`Fix`], an `i32` holding a `Q5.26`
//! value: 1 sign bit, 5 integer bits, 26 fraction bits. The numeric ranges
//! involved are:
//!
//! * in-cell offsets: `[0, 1)`
//! * RCID-concatenated coordinates: `[1, 4)` (RCID ∈ {1,2,3}, §4.2)
//! * coordinate differences: `(-3, 3)`
//! * squared distances `dx²+dy²+dz²`: `[0, 27)`
//!
//! `Q5.26` covers `[-32, 32)` with a resolution of `2⁻²⁶ ≈ 1.5e-8` cells
//! (≈ 1.3e-7 Å at the paper's 8.5 Å cell edge), matching the precision class
//! of the RTL design.

use serde::{Deserialize, Serialize};

/// Number of fraction bits in the fixed-point representation.
pub const FRAC_BITS: u32 = 26;
/// Scale factor `2^FRAC_BITS`.
pub const SCALE: i64 = 1 << FRAC_BITS;

/// A `Q5.26` signed fixed-point scalar stored in an `i32`.
///
/// Construction from floats truncates toward negative infinity (as a raw
/// bit-slice register would); arithmetic wraps on overflow in release mode
/// exactly like the RTL would, but the documented operating ranges above
/// never overflow and debug builds assert on it.
#[derive(Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Fix(pub i32);

impl Fix {
    /// Zero.
    pub const ZERO: Fix = Fix(0);
    /// One cell edge (= the cutoff radius, paper §3.4 sets `Rc = 1`).
    pub const ONE: Fix = Fix(1 << FRAC_BITS);

    /// Smallest positive increment (`2⁻²⁶` cells).
    pub const EPSILON: Fix = Fix(1);

    /// Construct from raw `Q5.26` bits.
    #[inline]
    pub const fn from_bits(bits: i32) -> Self {
        Fix(bits)
    }

    /// Raw `Q5.26` bits.
    #[inline]
    pub const fn to_bits(self) -> i32 {
        self.0
    }

    /// Convert from `f64`, truncating to the fixed-point grid
    /// (round-to-nearest, matching a quantizing register load).
    #[inline]
    pub fn from_f64(v: f64) -> Self {
        debug_assert!(
            (-32.0..32.0).contains(&v),
            "fixed-point overflow: {v} outside Q5.26 range"
        );
        Fix((v * SCALE as f64).round() as i32)
    }

    /// Convert from `f32`.
    #[inline]
    pub fn from_f32(v: f32) -> Self {
        Self::from_f64(v as f64)
    }

    /// Convert to `f64` (exact — every `Q5.26` value is representable).
    #[inline]
    pub fn to_f64(self) -> f64 {
        self.0 as f64 / SCALE as f64
    }

    /// Convert to `f32`. This is the "fixed-to-float conversion" the RCID
    /// scheme simplifies (§4.2: starting RCIDs at 1 keeps the leading one
    /// easy to locate); with ≤ 5 integer bits the nearest-`f32` rounding
    /// here loses at most 2 ulp relative to the fixed value.
    #[inline]
    pub fn to_f32(self) -> f32 {
        self.0 as f32 / SCALE as f32
    }

    /// Fixed-point multiplication through a 64-bit intermediate, truncating
    /// the low fraction bits exactly as a DSP-slice multiplier with an
    /// output shift would. (Deliberately a named method, not `impl Mul`:
    /// truncation makes it non-associative with the scale, and the
    /// explicit name marks every DSP multiply in the datapath.)
    #[inline]
    #[allow(clippy::should_implement_trait)]
    pub fn mul(self, rhs: Fix) -> Fix {
        let wide = (self.0 as i64) * (rhs.0 as i64);
        Fix((wide >> FRAC_BITS) as i32)
    }

    /// Square of the value (`self·self`).
    #[inline]
    pub fn sq(self) -> Fix {
        self.mul(self)
    }

    /// Absolute value.
    #[inline]
    pub fn abs(self) -> Fix {
        Fix(self.0.abs())
    }

    /// Saturating addition (used only by defensive paths; the modelled
    /// datapath ranges never saturate).
    #[inline]
    pub fn saturating_add(self, rhs: Fix) -> Fix {
        Fix(self.0.saturating_add(rhs.0))
    }

    /// True if the value lies in `[0, 1)` — a valid in-cell offset.
    #[inline]
    pub fn is_cell_offset(self) -> bool {
        self.0 >= 0 && self.0 < SCALE as i32
    }

    /// Wrap into `[0, 1)` by adding/subtracting whole cells. Used by the
    /// motion-update path when a particle steps across a cell boundary.
    /// Returns `(wrapped, cells_moved)` with `cells_moved ∈ {-2..2}` for
    /// any physical timestep.
    #[inline]
    pub fn wrap_cell(self) -> (Fix, i32) {
        let mut bits = self.0;
        let mut moved = 0;
        while bits < 0 {
            bits += SCALE as i32;
            moved -= 1;
        }
        while bits >= SCALE as i32 {
            bits -= SCALE as i32;
            moved += 1;
        }
        (Fix(bits), moved)
    }
}

impl core::ops::Add for Fix {
    type Output = Fix;
    #[inline]
    fn add(self, rhs: Fix) -> Fix {
        debug_assert!(
            self.0.checked_add(rhs.0).is_some(),
            "fixed-point add overflow"
        );
        Fix(self.0.wrapping_add(rhs.0))
    }
}

impl core::ops::Sub for Fix {
    type Output = Fix;
    #[inline]
    fn sub(self, rhs: Fix) -> Fix {
        debug_assert!(
            self.0.checked_sub(rhs.0).is_some(),
            "fixed-point sub overflow"
        );
        Fix(self.0.wrapping_sub(rhs.0))
    }
}

impl core::ops::Neg for Fix {
    type Output = Fix;
    #[inline]
    fn neg(self) -> Fix {
        Fix(-self.0)
    }
}

impl core::ops::AddAssign for Fix {
    #[inline]
    fn add_assign(&mut self, rhs: Fix) {
        *self = *self + rhs;
    }
}

impl core::ops::SubAssign for Fix {
    #[inline]
    fn sub_assign(&mut self, rhs: Fix) {
        *self = *self - rhs;
    }
}

impl core::fmt::Debug for Fix {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "Fix({:.8})", self.to_f64())
    }
}

impl core::fmt::Display for Fix {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{:.8}", self.to_f64())
    }
}

/// A 3-vector of fixed-point scalars: the register format flowing through
/// position rings, filters, and the front of the force pipeline.
#[derive(Clone, Copy, Default, PartialEq, Eq, Debug, Hash, Serialize, Deserialize)]
pub struct FixVec3 {
    pub x: Fix,
    pub y: Fix,
    pub z: Fix,
}

impl FixVec3 {
    /// Zero vector.
    pub const ZERO: FixVec3 = FixVec3 {
        x: Fix::ZERO,
        y: Fix::ZERO,
        z: Fix::ZERO,
    };

    /// Construct from components.
    #[inline]
    pub const fn new(x: Fix, y: Fix, z: Fix) -> Self {
        FixVec3 { x, y, z }
    }

    /// Construct by quantizing an `f64` triple.
    #[inline]
    pub fn from_f64(x: f64, y: f64, z: f64) -> Self {
        FixVec3::new(Fix::from_f64(x), Fix::from_f64(y), Fix::from_f64(z))
    }

    /// Componentwise difference — the filter's "direct subtraction" (§4.2).
    #[inline]
    pub fn delta(self, rhs: FixVec3) -> FixVec3 {
        FixVec3::new(self.x - rhs.x, self.y - rhs.y, self.z - rhs.z)
    }

    /// Squared Euclidean norm in fixed point (`Q5.26`; max 27 < 32).
    #[inline]
    pub fn norm_sq(self) -> Fix {
        self.x.sq() + self.y.sq() + self.z.sq()
    }

    /// Convert to an `f64` triple.
    #[inline]
    pub fn to_f64(self) -> [f64; 3] {
        [self.x.to_f64(), self.y.to_f64(), self.z.to_f64()]
    }

    /// Convert to an `f32` triple (the fixed-to-float stage feeding the
    /// floating-point force pipeline).
    #[inline]
    pub fn to_f32(self) -> [f32; 3] {
        [self.x.to_f32(), self.y.to_f32(), self.z.to_f32()]
    }
}

/// Number of fraction bits in the force-accumulator representation.
pub const ACC_FRAC_BITS: u32 = 28;
/// Scale factor `2^ACC_FRAC_BITS`.
pub const ACC_SCALE: i64 = 1 << ACC_FRAC_BITS;

/// A `Q35.28` signed fixed-point force accumulator stored in an `i64`
/// — the FC-bank register format.
///
/// The force pipeline computes each pair contribution in floating
/// point, but the *accumulation* into the Force Caches is fixed-point,
/// as in Anton-class MD machines: integer addition is associative, so
/// the accumulated total is bit-identical no matter what order
/// contributions arrive in. That is what lets the cluster guarantee
/// bit-identical results even when retransmissions, fabric back
/// pressure, or fault-induced delays reorder packet arrivals between
/// nodes. Quantization is symmetric in sign (`quantize(-f) ==
/// -quantize(f)`), so a third-law pair whose two halves arrive as exact
/// negations cancels to literal zero.
///
/// `2⁻²⁸` resolution is finer than an f32 mantissa for any contribution
/// of magnitude ≥ `2⁻⁴`; the `±2³⁵` range is far beyond any physical
/// per-particle force total in this workload class. Overflow wraps in
/// release mode exactly like the RTL adder would; debug builds assert.
#[derive(Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub struct FixAcc(pub i64);

impl FixAcc {
    /// Zero.
    pub const ZERO: FixAcc = FixAcc(0);

    /// Quantize one floating-point force contribution onto the
    /// accumulator grid (round-to-nearest; symmetric in sign, so a
    /// third-law pair quantizes to an exact cancellation).
    #[inline]
    pub fn from_f32(v: f32) -> Self {
        FixAcc((v as f64 * ACC_SCALE as f64).round() as i64)
    }

    /// Accumulated value as `f32` (the fixed-to-float stage feeding the
    /// motion-update pipeline).
    #[inline]
    pub fn to_f32(self) -> f32 {
        (self.0 as f64 / ACC_SCALE as f64) as f32
    }

    /// Accumulated value as `f64`.
    #[inline]
    pub fn to_f64(self) -> f64 {
        self.0 as f64 / ACC_SCALE as f64
    }
}

impl core::ops::Add for FixAcc {
    type Output = FixAcc;
    #[inline]
    fn add(self, rhs: FixAcc) -> FixAcc {
        FixAcc(self.0.wrapping_add(rhs.0))
    }
}

impl core::ops::AddAssign for FixAcc {
    #[inline]
    fn add_assign(&mut self, rhs: FixAcc) {
        debug_assert!(self.0.checked_add(rhs.0).is_some(), "FC accumulator overflow");
        self.0 = self.0.wrapping_add(rhs.0);
    }
}

impl fasda_ckpt::Persist for Fix {
    fn save(&self, w: &mut fasda_ckpt::Writer) {
        w.put_i32(self.0);
    }
    fn load(r: &mut fasda_ckpt::Reader<'_>) -> Result<Self, fasda_ckpt::CkptError> {
        Ok(Fix(r.get_i32()?))
    }
}

impl fasda_ckpt::Persist for FixVec3 {
    fn save(&self, w: &mut fasda_ckpt::Writer) {
        w.put_i32(self.x.0);
        w.put_i32(self.y.0);
        w.put_i32(self.z.0);
    }
    fn load(r: &mut fasda_ckpt::Reader<'_>) -> Result<Self, fasda_ckpt::CkptError> {
        Ok(FixVec3 {
            x: Fix(r.get_i32()?),
            y: Fix(r.get_i32()?),
            z: Fix(r.get_i32()?),
        })
    }
}

impl fasda_ckpt::Persist for FixAcc {
    fn save(&self, w: &mut fasda_ckpt::Writer) {
        w.put_i64(self.0);
    }
    fn load(r: &mut fasda_ckpt::Reader<'_>) -> Result<Self, fasda_ckpt::CkptError> {
        Ok(FixAcc(r.get_i64()?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_has_expected_bits() {
        assert_eq!(Fix::ONE.to_bits(), 1 << FRAC_BITS);
        assert_eq!(Fix::ONE.to_f64(), 1.0);
    }

    #[test]
    fn roundtrip_exact_on_grid() {
        for bits in [0i32, 1, -1, 12345, -99999, (1 << 30) - 1] {
            let f = Fix::from_bits(bits);
            assert_eq!(Fix::from_f64(f.to_f64()), f);
        }
    }

    #[test]
    fn from_f64_rounds_to_nearest() {
        let v = 0.1;
        let f = Fix::from_f64(v);
        assert!((f.to_f64() - v).abs() <= 0.5 / SCALE as f64);
    }

    #[test]
    fn add_sub_neg() {
        let a = Fix::from_f64(1.25);
        let b = Fix::from_f64(0.75);
        assert_eq!((a + b).to_f64(), 2.0);
        assert_eq!((a - b).to_f64(), 0.5);
        assert_eq!((-a).to_f64(), -1.25);
    }

    #[test]
    fn mul_truncates_toward_zero_positive() {
        let a = Fix::from_f64(1.5);
        let b = Fix::from_f64(2.0);
        assert_eq!(a.mul(b).to_f64(), 3.0);
        // smallest values: eps * eps truncates to zero
        assert_eq!(Fix::EPSILON.mul(Fix::EPSILON), Fix::ZERO);
    }

    #[test]
    fn square_distance_range() {
        // worst case concat-coordinate difference is just under 3 per axis
        let d = Fix::from_f64(2.999_999);
        let r2 = d.sq() + d.sq() + d.sq();
        assert!(r2.to_f64() < 27.0);
        assert!(r2.to_f64() > 26.9);
    }

    #[test]
    fn wrap_cell_positive_and_negative() {
        let (w, m) = Fix::from_f64(1.25).wrap_cell();
        assert_eq!(m, 1);
        assert!((w.to_f64() - 0.25).abs() < 1e-7);
        let (w, m) = Fix::from_f64(-0.25).wrap_cell();
        assert_eq!(m, -1);
        assert!((w.to_f64() - 0.75).abs() < 1e-7);
        let (w, m) = Fix::from_f64(0.5).wrap_cell();
        assert_eq!(m, 0);
        assert_eq!(w.to_f64(), 0.5);
    }

    #[test]
    fn is_cell_offset() {
        assert!(Fix::from_f64(0.0).is_cell_offset());
        assert!(Fix::from_f64(0.999).is_cell_offset());
        assert!(!Fix::ONE.is_cell_offset());
        assert!(!Fix::from_f64(-0.001).is_cell_offset());
    }

    #[test]
    fn vec3_delta_and_norm() {
        let a = FixVec3::from_f64(2.0, 2.0, 2.0);
        let b = FixVec3::from_f64(1.0, 1.5, 2.5);
        let d = a.delta(b);
        assert_eq!(d.to_f64(), [1.0, 0.5, -0.5]);
        assert!((d.norm_sq().to_f64() - 1.5).abs() < 1e-7);
    }

    #[test]
    fn to_f32_matches_f64_within_ulp() {
        let f = Fix::from_f64(std::f64::consts::PI);
        assert!((f.to_f32() as f64 - f.to_f64()).abs() < 1e-6);
    }

    #[test]
    fn acc_sum_is_order_independent() {
        let contributions = [1.5f32, -0.25, 3.0e-4, -7.125, 0.6180339, 42.0, -1e-6];
        let forward = contributions
            .iter()
            .fold(FixAcc::ZERO, |a, &c| a + FixAcc::from_f32(c));
        let reverse = contributions
            .iter()
            .rev()
            .fold(FixAcc::ZERO, |a, &c| a + FixAcc::from_f32(c));
        assert_eq!(forward, reverse);
        assert!((forward.to_f64() - contributions.iter().map(|&c| c as f64).sum::<f64>()).abs() < 1e-6);
    }

    #[test]
    fn acc_third_law_pairs_cancel_exactly() {
        for v in [0.1f32, 1.0e-7, 123.456, 3.0e5] {
            assert_eq!(FixAcc::from_f32(v) + FixAcc::from_f32(-v), FixAcc::ZERO);
        }
    }

    #[test]
    fn acc_resolution_beats_f32_mantissa_above_sixteenth() {
        let v = 0.0625f32 + f32::EPSILON;
        let q = FixAcc::from_f32(v);
        assert!((q.to_f64() - v as f64).abs() <= 0.5 / ACC_SCALE as f64);
    }
}
