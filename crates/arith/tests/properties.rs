//! Property-based tests for the arithmetic substrate.

use fasda_arith::fixed::{Fix, FixVec3, FRAC_BITS, SCALE};
use fasda_arith::float_bits::{bin_lower_edge, bin_upper_edge, section_bin, SectionBin};
use fasda_arith::interp::{InterpTable, TableConfig};
use proptest::prelude::*;

proptest! {
    /// Every on-grid f64 round-trips exactly through Fix.
    #[test]
    fn fix_roundtrip_on_grid(bits in -(1i32 << 30)..(1i32 << 30)) {
        let f = Fix::from_bits(bits);
        prop_assert_eq!(Fix::from_f64(f.to_f64()), f);
    }

    /// Quantization error is at most half an LSB.
    #[test]
    fn fix_quantization_error_bounded(v in -31.9f64..31.9) {
        let f = Fix::from_f64(v);
        prop_assert!((f.to_f64() - v).abs() <= 0.5 / SCALE as f64 + 1e-15);
    }

    /// Addition matches f64 addition exactly for on-grid operands in range.
    #[test]
    fn fix_add_exact(a in -1_000_000_000i32..1_000_000_000, b in -1_000_000_000i32..1_000_000_000) {
        let fa = Fix::from_bits(a);
        let fb = Fix::from_bits(b);
        prop_assert_eq!((fa + fb).to_f64(), fa.to_f64() + fb.to_f64());
    }

    /// Fixed multiply is within one LSB of the real product (truncation).
    #[test]
    fn fix_mul_truncation_bound(a in -3.0f64..3.0, b in -3.0f64..3.0) {
        let fa = Fix::from_f64(a);
        let fb = Fix::from_f64(b);
        let got = fa.mul(fb).to_f64();
        let want = fa.to_f64() * fb.to_f64();
        prop_assert!((got - want).abs() <= 1.0 / SCALE as f64,
            "{got} vs {want}");
    }

    /// wrap_cell always lands in [0,1) and preserves the value modulo 1.
    #[test]
    fn wrap_cell_invariants(v in -7.9f64..7.9) {
        let f = Fix::from_f64(v);
        let (w, moved) = f.wrap_cell();
        prop_assert!(w.is_cell_offset());
        let reconstructed = w.to_f64() + moved as f64;
        prop_assert!((reconstructed - f.to_f64()).abs() < 1e-12);
    }

    /// Squared norm of a delta is non-negative and matches f64 within
    /// a few LSBs (3 truncated squares).
    #[test]
    fn norm_sq_close_to_f64(
        ax in 1.0f64..3.999, ay in 1.0f64..3.999, az in 1.0f64..3.999,
        bx in 1.0f64..3.999, by in 1.0f64..3.999, bz in 1.0f64..3.999,
    ) {
        let a = FixVec3::from_f64(ax, ay, az);
        let b = FixVec3::from_f64(bx, by, bz);
        let d = a.delta(b);
        let r2 = d.norm_sq();
        prop_assert!(r2.to_bits() >= 0);
        let [dx, dy, dz] = d.to_f64();
        let want = dx * dx + dy * dy + dz * dz;
        prop_assert!((r2.to_f64() - want).abs() <= 3.0 / SCALE as f64);
    }

    /// section_bin always brackets its input between the bin edges.
    #[test]
    fn section_bin_brackets(r2 in 1.0e-4f32..0.999_999) {
        const NS: u32 = 14;
        const LB: u32 = 8;
        match section_bin(r2, NS, LB) {
            SectionBin::In { section, bin } => {
                let lo = bin_lower_edge(section, bin, NS, LB);
                let hi = bin_upper_edge(section, bin, NS, LB);
                prop_assert!(lo <= r2 as f64 && (r2 as f64) < hi);
            }
            SectionBin::BelowRange => {
                prop_assert!((r2 as f64) < (2.0f64).powi(-(NS as i32)));
            }
            SectionBin::AboveRange => prop_assert!(false, "r2 < 1 cannot be above range"),
        }
    }

    /// Interpolated r^-8 is within the theoretical error bound everywhere.
    #[test]
    fn interp_r8_error_bound(r2 in 0.01f32..0.999) {
        let t = InterpTable::build_r_pow(TableConfig::PAPER, 8);
        let got = t.eval(r2).unwrap() as f64;
        let want = (r2 as f64).powf(-4.0);
        // bound: f''(x) x² / (8 n_b²) relative = 4*5/8/256² ≈ 3.8e-5, plus f32 slack
        prop_assert!(((got - want) / want).abs() < 1.0e-4);
    }

    /// The interpolant of a decreasing function never undershoots the true
    /// value by more than the bound (chords of convex functions lie above).
    #[test]
    fn interp_convex_overestimates(r2 in 0.01f32..0.999) {
        let t = InterpTable::build_r_pow(TableConfig::PAPER, 14);
        let got = t.eval(r2).unwrap() as f64;
        let want = (r2 as f64).powf(-7.0);
        // chord above curve: got >= want (modulo f32 rounding of coefficients)
        prop_assert!(got >= want * (1.0 - 2.0e-6), "{got} < {want}");
    }
}

#[test]
fn frac_bits_documented() {
    assert_eq!(FRAC_BITS, 26);
}
