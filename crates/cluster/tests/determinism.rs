//! Engine determinism regression: every engine configuration — idle
//! fast-forward, rayon compute phase, SoA batch kernels, force-phase
//! burst stepping, and their combination — must produce reports and
//! particle state bit-identical to the serial reference loop, for both
//! synchronization modes.

use fasda_cluster::{Cluster, ClusterConfig, ClusterError, ClusterRunReport, EngineConfig};
use fasda_core::config::ChipConfig;
use fasda_md::element::Element;
use fasda_md::space::SimulationSpace;
use fasda_md::system::ParticleSystem;
use fasda_md::workload::{Placement, WorkloadSpec};
use fasda_net::sync::SyncMode;

fn workload(seed: u64) -> ParticleSystem {
    WorkloadSpec {
        space: SimulationSpace::cubic(6),
        per_cell: 3,
        placement: Placement::JitteredLattice { jitter: 0.05 },
        temperature_k: 150.0,
        seed,
        element: Element::Na,
    }
    .generate()
}

/// 2×2×2 nodes: a 6³-cell space split into 3×3×3-cell blocks.
fn cfg(sync: SyncMode) -> ClusterConfig {
    let mut cfg = ClusterConfig::paper(ChipConfig::baseline(), (3, 3, 3));
    cfg.sync = sync;
    cfg
}

/// Run 3 steps on a fresh 2×2×2-node cluster under `engine`, returning
/// the report and the gathered particle state.
fn run(sync: SyncMode, engine: &EngineConfig) -> (ClusterRunReport, ParticleSystem) {
    let sys = workload(31);
    let mut cluster = Cluster::new(cfg(sync), &sys);
    assert_eq!(cluster.num_nodes(), 8);
    let report = cluster
        .try_run_with(3, 2_000_000_000, engine)
        .expect("run converges");
    let mut out = sys.clone();
    cluster.store_into(&mut out);
    (report, out)
}

fn assert_identical(sync: SyncMode) {
    let (want_report, want_sys) = run(sync, &EngineConfig::serial());

    let engines = [
        ("fast-forward", EngineConfig::serial().with_fast_forward(true)),
        ("parallel", EngineConfig::serial().with_threads(4)),
        ("soa", EngineConfig::serial().with_soa(true)),
        (
            "soa+burst",
            EngineConfig::serial()
                .with_soa(true)
                .with_burst(true)
                .with_fast_path(true),
        ),
        ("burst-only", EngineConfig::serial().with_burst(true)),
        // The full optimized engine: threads + fast-forward + fast path +
        // SoA kernels + burst stepping, all on by default.
        ("parallel+ff", EngineConfig::parallel().with_threads(4)),
    ];
    for (name, engine) in engines {
        let (report, sys) = run(sync, &engine);
        assert_eq!(report, want_report, "{name} engine report drifted ({sync:?})");
        assert_eq!(sys.pos, want_sys.pos, "{name} engine positions drifted ({sync:?})");
        assert_eq!(sys.vel, want_sys.vel, "{name} engine velocities drifted ({sync:?})");
    }
}

#[test]
fn engines_bit_identical_chained_sync() {
    assert_identical(SyncMode::Chained);
}

#[test]
fn engines_bit_identical_bulk_sync() {
    assert_identical(SyncMode::Bulk { latency: 2_000 });
}

#[test]
fn burst_refusals_carry_a_named_reason() {
    // Burst windows cannot open on these workloads (every ring-kind
    // scan ends in a chip-boundary event, so quiet chips are finished
    // chips); what the engine owes instead is an accounting of *why*.
    // Every refusal must land in exactly one named reason bucket.
    let sys = workload(31);
    let mut cluster = Cluster::new(cfg(SyncMode::Chained), &sys);
    cluster
        .try_run_with(3, 2_000_000_000, &EngineConfig::parallel())
        .expect("run converges");
    assert!(cluster.burst_refused > 0, "burst was never even attempted");
    assert_eq!(
        cluster.burst_refused,
        cluster.burst_refused_interface + cluster.burst_refused_idle + cluster.burst_refused_small,
        "refusal reasons must partition the refusal count"
    );
}

#[test]
fn fast_forward_preserves_straggler_stalls() {
    // Stall injection exercises the stall-expiry event path.
    let sys = workload(33);
    let mut c = cfg(SyncMode::Chained);
    c.straggler = Some((3, 400));

    let mut reference = Cluster::new(c.clone(), &sys);
    let want = reference.try_run(2, 2_000_000_000).expect("reference");

    let mut ff = Cluster::new(c.clone(), &sys);
    let engine = EngineConfig::serial().with_fast_forward(true);
    let got = ff.try_run_with(2, 2_000_000_000, &engine).expect("ff run");

    assert_eq!(got, want, "fast-forward drifted under a straggler");

    // Burst stepping interacts with stall expiry (`stalls -= W`): the
    // full optimized engine must agree too.
    let mut full = Cluster::new(c, &sys);
    let got = full
        .try_run_with(2, 2_000_000_000, &EngineConfig::parallel())
        .expect("optimized run");
    assert_eq!(got, want, "optimized engine drifted under a straggler");
}

#[test]
fn fast_forward_reports_packet_loss_deadlock() {
    // A lossy fabric deadlocks chained sync; fast-forward proves no
    // event can ever arrive and reports the deadlock immediately instead
    // of spinning to the cycle budget.
    let sys = workload(34);
    let mut c = cfg(SyncMode::Chained);
    c.loss = Some((0.2, 7));
    let mut cluster = Cluster::new(c, &sys);
    let engine = EngineConfig::serial().with_fast_forward(true);
    let err = cluster
        .try_run_with(3, 300_000, &engine)
        .expect_err("loss must stall the cluster");
    assert!(err.packets_lost() > 0, "stall without loss?");
    assert!(
        matches!(err, ClusterError::Deadlock(_)),
        "fast-forward should prove the deadlock: {err}"
    );
    assert!(err.at_cycle() <= 300_000, "detected within the budget");
}
