//! Deterministic chaos harness (the headline test of the fault-injected
//! hyper-ring): under any seeded finite fault schedule — drops, corrupt
//! frames, duplicates, delays, targeted marker kills — a cluster with
//! the reliable-delivery layer enabled must
//!
//! 1. complete the run (retransmission converges),
//! 2. produce final positions, velocities, and per-particle force
//!    accumulators **bit-identical** to the fault-free run, and
//! 3. emit **byte-identical** per-node traces and stall ledgers on the
//!    serial oracle and the full optimized engine, with the stall
//!    ledger still accounting every force cycle exactly.
//!
//! Without the reliability layer, a killed `last` marker must be
//! reported as a detected deadlock, not an infinite spin (§4.4's
//! failure mode).

mod harness;

use fasda_cluster::{
    Cluster, ClusterError, EngineConfig, FaultChannel, FaultPlan, MarkerKill, StallCause, Trace,
    TraceConfig,
};
use fasda_md::system::ParticleSystem;
use harness::{config, workload, ForceBits};

const STEPS: u64 = 3;

/// The three seeded plans the acceptance gate names: pure loss, loss
/// plus reordering hazards (delay/duplicate/corrupt), and targeted
/// marker kills on two different channels.
fn plans() -> Vec<(&'static str, FaultPlan)> {
    vec![
        ("drop-only", FaultPlan::drop_only(0.05, 0xC0FFEE)),
        (
            "drop+reorder",
            FaultPlan::none().with_seed(0xBEEF).with_rate(|r| {
                r.drop = 0.03;
                r.corrupt = 0.02;
                r.duplicate = 0.03;
                r.delay = 0.05;
                r.delay_max = 700;
            }),
        ),
        (
            "marker-kill",
            FaultPlan::none()
                .with_seed(0xFA5DA)
                .with_kill(MarkerKill {
                    channel: FaultChannel::Pos,
                    src: 0,
                    dst: 1,
                    nth: 1,
                })
                .with_kill(MarkerKill {
                    channel: FaultChannel::Frc,
                    src: 3,
                    dst: 2,
                    nth: 1,
                }),
        ),
    ]
}

struct RunOut {
    report: fasda_cluster::ClusterRunReport,
    sys: ParticleSystem,
    forces: ForceBits,
    trace: Option<Trace>,
}

fn run(plan: Option<FaultPlan>, reliable: bool, engine: &EngineConfig) -> RunOut {
    let sys = workload();
    let mut cluster = Cluster::new(config(plan, reliable), &sys);
    assert_eq!(cluster.num_nodes(), 8);
    let report = cluster
        .try_run_with(STEPS, harness::BUDGET, engine)
        .expect("chaos run converges");
    let (out, forces) = harness::final_state(&cluster, &sys);
    RunOut {
        report,
        sys: out,
        forces,
        trace: cluster.take_trace(),
    }
}

#[test]
fn chaos_runs_bit_identical_to_fault_free() {
    let baseline = run(None, false, &EngineConfig::serial());
    for (name, plan) in plans() {
        let chaotic = run(Some(plan), true, &EngineConfig::serial());
        assert!(
            chaotic.report.faults_injected > 0,
            "{name}: plan injected nothing"
        );
        let rel = chaotic.report.reliability.expect("reliability layer on");
        assert!(
            rel.retransmits > 0,
            "{name}: faults but no retransmissions?"
        );
        assert_eq!(
            chaotic.sys.pos, baseline.sys.pos,
            "{name}: final positions drifted under faults"
        );
        assert_eq!(
            chaotic.sys.vel, baseline.sys.vel,
            "{name}: final velocities drifted under faults"
        );
        assert_eq!(
            chaotic.forces, baseline.forces,
            "{name}: final force accumulators drifted under faults"
        );
        assert_eq!(
            chaotic.report.steps, STEPS,
            "{name}: run did not complete every step"
        );
    }
}

#[test]
fn chaos_traces_engine_invariant() {
    // Same plan, serial oracle vs the full optimized engine (threads +
    // fast-forward + fast path + burst): reports equal, event streams
    // and stall ledgers byte-identical. Faults are decided in the serial
    // network phase, so the schedule itself is engine-invariant.
    let full = TraceConfig::full();
    for (name, plan) in plans() {
        let serial = run(
            Some(plan.clone()),
            true,
            &EngineConfig::serial().with_trace(full),
        );
        let opt = run(
            Some(plan),
            true,
            &EngineConfig::parallel().with_threads(4).with_trace(full),
        );
        assert_eq!(opt.report, serial.report, "{name}: report drifted");
        let (want, got) = (
            serial.trace.expect("tracing on"),
            opt.trace.expect("tracing on"),
        );
        assert_eq!(got.nodes.len(), want.nodes.len());
        for (node, (g, w)) in got.nodes.iter().zip(want.nodes.iter()).enumerate() {
            assert_eq!(g.dropped, 0, "{name} node {node} dropped events");
            assert_eq!(
                g.events, w.events,
                "{name} node {node}: event stream drifted across engines"
            );
        }
        assert_eq!(
            got.stalls, want.stalls,
            "{name}: stall ledger drifted across engines"
        );
    }
}

#[test]
fn chaos_ledger_accounts_every_force_cycle() {
    // productive + Σ stalls == force_cycles must hold *exactly* with
    // faults injected and the reliability layer retransmitting, and the
    // new retransmit / wait-ack stall classes must actually show up.
    let (_, plan) = plans().remove(1); // drop+reorder: the richest plan
    let out = run(
        Some(plan),
        true,
        &EngineConfig::parallel()
            .with_threads(4)
            .with_trace(TraceConfig::full()),
    );
    let trace = out.trace.expect("tracing on");
    assert!(!out.report.records.is_empty());
    for r in &out.report.records {
        let s = trace
            .stalls
            .step(r.node, r.step)
            .unwrap_or_else(|| panic!("no ledger entry for node {} step {}", r.node, r.step));
        assert_eq!(
            s.total(),
            r.force_cycles,
            "node {} step {}: ledger {:?} vs force_cycles {}",
            r.node,
            r.step,
            s,
            r.force_cycles
        );
    }
    let attributed: u64 = (0..trace.stalls.num_nodes())
        .map(|n| {
            let t = trace.stalls.node_total(n);
            t.of(StallCause::Retransmit) + t.of(StallCause::WaitAck)
        })
        .sum();
    assert!(
        attributed > 0,
        "faulted run attributed no retransmit/wait-ack stall cycles"
    );
}

#[test]
fn lost_marker_without_reliability_deadlocks() {
    // Satellite: with the reliability layer *off*, one killed last-force
    // marker starves chained sync forever. The driver must detect the
    // quiescent no-progress state and return a deadlock error naming the
    // starving nodes — on the serial scan path and the fast-forward
    // prover alike.
    let plan = FaultPlan::none().with_seed(5).with_kill(MarkerKill {
        channel: FaultChannel::Frc,
        src: 0,
        dst: 1,
        nth: 1,
    });
    for engine in [
        EngineConfig::serial(),
        EngineConfig::serial().with_fast_forward(true),
    ] {
        let sys = workload();
        let mut cluster = Cluster::new(config(Some(plan.clone()), false), &sys);
        let err = cluster
            .try_run_with(STEPS, harness::BUDGET, &engine)
            .expect_err("killed marker must deadlock without reliability");
        match &err {
            ClusterError::Deadlock(d) => {
                assert!(!d.starving.is_empty(), "no starving node recorded");
                assert!(d.packets_lost > 0, "kill not accounted as a lost packet");
                let msg = err.to_string();
                assert!(msg.contains("deadlock"), "message: {msg}");
                assert!(msg.contains("node"), "message names no node: {msg}");
                assert!(msg.contains("step"), "message names no step: {msg}");
            }
            other => panic!("expected a deadlock, got: {other}"),
        }
        assert!(
            err.at_cycle() < 2_000_000_000,
            "deadlock not detected before the budget"
        );
    }
}
