//! Flight-recorder determinism: every engine configuration must emit
//! **byte-identical per-node event streams and stall ledgers**, because
//! events are stamped in global cluster cycles and attribution reads
//! only engine-invariant state. Engine-level events (burst windows,
//! fast-forward jumps) live in a separate stream and are deliberately
//! excluded from the comparison — they describe how the simulator ran,
//! not what the simulated machine did.

use fasda_cluster::{
    chrome_trace, Cluster, ClusterConfig, EngineConfig, Trace, TraceConfig, TraceLevel,
};
use fasda_core::config::ChipConfig;
use fasda_md::element::Element;
use fasda_md::space::SimulationSpace;
use fasda_md::system::ParticleSystem;
use fasda_md::workload::{Placement, WorkloadSpec};
use fasda_net::sync::SyncMode;
use fasda_trace::{EventKind, Json};

const STEPS: u64 = 3;

fn workload() -> ParticleSystem {
    WorkloadSpec {
        space: SimulationSpace::cubic(6),
        per_cell: 3,
        placement: Placement::JitteredLattice { jitter: 0.05 },
        temperature_k: 150.0,
        seed: 31,
        element: Element::Na,
    }
    .generate()
}

fn cfg(sync: SyncMode) -> ClusterConfig {
    let mut cfg = ClusterConfig::paper(ChipConfig::baseline(), (3, 3, 3));
    cfg.sync = sync;
    cfg
}

/// Run the 8-node workload under `engine`, returning the report and the
/// drained trace.
fn run(
    sync: SyncMode,
    engine: &EngineConfig,
) -> (fasda_cluster::ClusterRunReport, Option<Trace>) {
    let sys = workload();
    let mut cluster = Cluster::new(cfg(sync), &sys);
    assert_eq!(cluster.num_nodes(), 8);
    let report = cluster
        .try_run_with(STEPS, 2_000_000_000, engine)
        .expect("run converges");
    let trace = cluster.take_trace();
    (report, trace)
}

fn assert_streams_identical(sync: SyncMode) {
    let full = TraceConfig::full();
    let (want_report, _) = run(sync, &EngineConfig::serial());
    let (report, oracle) = run(sync, &EngineConfig::serial().with_trace(full));
    let oracle = oracle.expect("tracing enabled");
    assert_eq!(report, want_report, "tracing perturbed the serial run");

    let engines = [
        (
            "parallel",
            EngineConfig::serial().with_threads(4).with_trace(full),
        ),
        (
            "parallel+ff",
            EngineConfig::serial()
                .with_threads(4)
                .with_fast_forward(true)
                .with_trace(full),
        ),
        (
            "optimized(burst)",
            EngineConfig::parallel().with_threads(4).with_trace(full),
        ),
    ];
    for (name, engine) in engines {
        let (report, trace) = run(sync, &engine);
        let trace = trace.expect("tracing enabled");
        assert_eq!(report, want_report, "{name} report drifted ({sync:?})");
        assert_eq!(
            trace.nodes.len(),
            oracle.nodes.len(),
            "{name} node count ({sync:?})"
        );
        for (node, (got, want)) in trace.nodes.iter().zip(oracle.nodes.iter()).enumerate() {
            assert_eq!(got.dropped, 0, "{name} node {node} dropped events");
            assert_eq!(
                got.events, want.events,
                "{name} node {node} event stream drifted ({sync:?})"
            );
        }
        assert_eq!(
            trace.stalls, oracle.stalls,
            "{name} stall ledger drifted ({sync:?})"
        );
    }
}

#[test]
fn traced_engines_byte_identical_chained() {
    assert_streams_identical(SyncMode::Chained);
}

#[test]
fn traced_engines_byte_identical_bulk() {
    assert_streams_identical(SyncMode::Bulk { latency: 2_000 });
}

#[test]
fn sync_level_is_full_minus_chatty_events() {
    // The Sync tier must be exactly the Full stream with the high-volume
    // event classes (per-cycle PE activity, packet traffic) filtered out.
    let (_, full) = run(
        SyncMode::Chained,
        &EngineConfig::serial().with_trace(TraceConfig::full()),
    );
    let (_, sync) = run(
        SyncMode::Chained,
        &EngineConfig::serial().with_trace(TraceConfig::sync()),
    );
    let (full, sync) = (full.unwrap(), sync.unwrap());
    assert_eq!(full.level, Some(TraceLevel::Full));
    assert_eq!(sync.level, Some(TraceLevel::Sync));
    let mut saw_chatty = false;
    for (node, (f, s)) in full.nodes.iter().zip(sync.nodes.iter()).enumerate() {
        let filtered: Vec<_> = f
            .events
            .iter()
            .filter(|e| {
                !matches!(
                    e.kind,
                    EventKind::PeActivity { .. }
                        | EventKind::PacketSent { .. }
                        | EventKind::PacketDelivered { .. }
                        | EventKind::AckSent { .. }
                )
            })
            .copied()
            .collect();
        if filtered.len() != f.events.len() {
            saw_chatty = true;
        }
        assert_eq!(s.events, filtered, "node {node} sync-tier mismatch");
    }
    assert!(saw_chatty, "full trace recorded no chatty events at all?");
    // Attribution is level-independent.
    assert_eq!(full.stalls, sync.stalls);
}

#[test]
fn faulted_run_keeps_tier_contract_and_ledger_exact() {
    // Under an injected fault schedule with the reliability layer on:
    // the fault events (drop/corrupt/duplicate/delay) and retransmits
    // are Sync-tier, AckSent is Full-only chatty, and the attribution
    // invariant still holds exactly on both tiers.
    use fasda_cluster::{FaultPlan, RelConfig};
    let plan = FaultPlan::none().with_seed(0x7E57).with_rate(|r| {
        r.drop = 0.04;
        r.duplicate = 0.02;
        r.delay = 0.04;
        r.delay_max = 500;
    });
    let sys = workload();
    let mk = |level: TraceConfig| {
        let cfg = cfg(SyncMode::Chained)
            .with_faults(plan.clone())
            .with_reliability(RelConfig::new(2_048, 16_384));
        let mut cluster = Cluster::new(cfg, &sys);
        let report = cluster
            .try_run_with(STEPS, 2_000_000_000, &EngineConfig::serial().with_trace(level))
            .expect("faulted run converges");
        (report, cluster.take_trace().expect("tracing on"))
    };
    let (report, full) = mk(TraceConfig::full());
    let (_, sync) = mk(TraceConfig::sync());
    assert!(report.faults_injected > 0, "plan injected nothing");
    let mut saw_fault_event = false;
    let mut saw_ack = false;
    for (node, (f, s)) in full.nodes.iter().zip(sync.nodes.iter()).enumerate() {
        let filtered: Vec<_> = f
            .events
            .iter()
            .filter(|e| {
                !matches!(
                    e.kind,
                    EventKind::PeActivity { .. }
                        | EventKind::PacketSent { .. }
                        | EventKind::PacketDelivered { .. }
                        | EventKind::AckSent { .. }
                )
            })
            .copied()
            .collect();
        saw_fault_event |= filtered.iter().any(|e| {
            matches!(
                e.kind,
                EventKind::FaultDrop { .. }
                    | EventKind::FaultDuplicate { .. }
                    | EventKind::FaultDelay { .. }
                    | EventKind::Retransmit { .. }
            )
        });
        saw_ack |= f
            .events
            .iter()
            .any(|e| matches!(e.kind, EventKind::AckSent { .. }));
        assert_eq!(s.events, filtered, "node {node} sync-tier mismatch under faults");
    }
    assert!(saw_fault_event, "no fault/retransmit events recorded at Sync tier");
    assert!(saw_ack, "no AckSent events recorded at Full tier");
    assert_eq!(full.stalls, sync.stalls, "attribution is level-dependent");
    for r in &report.records {
        let s = full
            .stalls
            .step(r.node, r.step)
            .unwrap_or_else(|| panic!("no ledger entry for node {} step {}", r.node, r.step));
        assert_eq!(
            s.total(),
            r.force_cycles,
            "node {} step {}: faulted ledger drifted from force_cycles",
            r.node,
            r.step
        );
    }
}

#[test]
fn stall_ledger_accounts_every_force_cycle() {
    // productive + Σ stall causes == force_cycles, exactly, for every
    // (node, step) record — including under an injected straggler.
    let sys = workload();
    let mut c = cfg(SyncMode::Chained);
    c.straggler = Some((3, 400));
    let mut cluster = Cluster::new(c, &sys);
    let engine = EngineConfig::parallel()
        .with_threads(4)
        .with_trace(TraceConfig::full());
    let report = cluster
        .try_run_with(STEPS, 2_000_000_000, &engine)
        .expect("run converges");
    let trace = cluster.take_trace().expect("tracing enabled");
    assert!(!report.records.is_empty());
    for r in &report.records {
        let s = trace
            .stalls
            .step(r.node, r.step)
            .unwrap_or_else(|| panic!("no ledger entry for node {} step {}", r.node, r.step));
        assert_eq!(
            s.total(),
            r.force_cycles,
            "node {} step {}: ledger {:?} vs force_cycles {}",
            r.node,
            r.step,
            s,
            r.force_cycles
        );
    }
    // The straggler's injected stall must be attributed as such.
    let injected: u64 = (0..trace.stalls.num_nodes())
        .map(|n| trace.stalls.node_total(n).of(fasda_cluster::StallCause::Injected))
        .sum();
    assert!(injected >= 400, "straggler stall under-attributed: {injected}");
}

#[test]
fn chrome_export_round_trips() {
    let (_, trace) = run(
        SyncMode::Chained,
        &EngineConfig::parallel().with_threads(4).with_trace(TraceConfig::full()),
    );
    let trace = trace.unwrap();
    let rendered = chrome_trace(&trace);
    let doc = Json::parse(&rendered).expect("chrome trace parses");
    let events = doc.get("traceEvents").map(Json::items).expect("traceEvents");
    assert!(!events.is_empty());
    // Every event carries the mandatory chrome fields; every node has a
    // Force-phase span pair.
    let mut force_begins = std::collections::BTreeSet::new();
    for e in events {
        let ph = e.get("ph").and_then(Json::as_str).expect("ph");
        assert!(e.get("pid").is_some(), "missing pid");
        if ph != "M" {
            assert!(e.get("ts").is_some(), "missing ts on {ph}");
        }
        if ph == "B" && e.get("name").and_then(Json::as_str) == Some("force") {
            force_begins.insert(e.get("pid").and_then(Json::as_i64).unwrap());
        }
    }
    assert_eq!(force_begins.len(), 8, "every node opens a force span");
    // Round-trip: parse → render → parse gives the same document.
    let again = Json::parse(&doc.pretty()).expect("re-parse");
    assert_eq!(again, doc);
}
