//! The unified recovery matrix (the tentpole acceptance gate): across
//! {serial, rayon, 2-shard} × {Gilbert–Elliott burst loss, link flap,
//! partition-with-heal, two staggered crashes with rolling resume},
//! the final positions, velocities, and raw force-accumulator bank
//! bits must be **bit-identical** to the fault-free reference run.
//!
//! Two recovery regimes are proven:
//!
//! * **healing** — with the reliability layer on, burst/flap/partition
//!   windows only delay traffic: retransmission timers outlive every
//!   window, so the run completes without intervention;
//! * **rolling resume** — crashes (and, with reliability off,
//!   partition-induced deadlocks) abort the run; [`run_with_recovery`]
//!   (or the equivalent manual loop around [`run_sharded`]) restarts
//!   from the newest consistent checkpoint with the fired directive
//!   stripped and replays to completion.

mod harness;

use fasda_cluster::ckpt::{newest_consistent, CheckpointConfig, RecoveryPolicy};
use fasda_cluster::{
    run_sharded, run_with_recovery, Cluster, ClusterError, EngineConfig, FaultChannel, FaultPlan,
    LinkFlap, ShardError, ShardOpts,
};
use harness::{assert_state_eq, config, final_state, workload, BUDGET};
use std::path::PathBuf;

const STEPS: u64 = 6;
const EVERY: u64 = 2;

/// Suite-namespaced scratch directory.
fn tmpdir(tag: &str) -> PathBuf {
    harness::tmpdir(&format!("recovery-{tag}"))
}

/// Fault-free serial reference state every matrix cell must reproduce.
fn reference() -> (fasda_md::system::ParticleSystem, harness::ForceBits) {
    let sys = workload();
    let mut cluster = Cluster::new(config(None, false), &sys);
    cluster
        .try_run_with(STEPS, BUDGET, &EngineConfig::serial())
        .expect("fault-free reference completes");
    final_state(&cluster, &sys)
}

/// The correlated-failure window scenarios the reliability layer must
/// absorb without a restart.
fn healing_scenarios() -> Vec<(&'static str, FaultPlan)> {
    vec![
        (
            "burst",
            FaultPlan::none().with_seed(0xB0257).with_burst(0.05, 0.3, 0.9),
        ),
        (
            "flap",
            FaultPlan::none().with_seed(0xF1A9).with_flap(LinkFlap {
                channel: FaultChannel::Pos,
                src: 0,
                dst: 1,
                step: 1,
                duration: 4_000,
            }),
        ),
        (
            "partition-heal",
            FaultPlan::none()
                .with_seed(0x9A27)
                .with_partition(vec![0, 1, 2, 3], vec![4, 5, 6, 7], 1, 6_000),
        ),
    ]
}

// -------------------------------------------------------------------------
// Healing regime: burst / flap / partition+heal × engine × shards
// -------------------------------------------------------------------------

#[test]
fn correlated_windows_heal_bit_identical_across_engines_and_shards() {
    let sys = workload();
    let want = reference();
    for (name, plan) in healing_scenarios() {
        let cfg = config(Some(plan), true);

        let mut serial = Cluster::new(cfg.clone(), &sys);
        let report = serial
            .try_run_with(STEPS, BUDGET, &EngineConfig::serial())
            .unwrap_or_else(|e| panic!("{name} serial: healing run failed: {e}"));
        assert!(report.faults_injected > 0, "{name}: plan injected nothing");
        assert!(
            report.reliability.expect("reliability on").retransmits > 0,
            "{name}: faults but no retransmissions?"
        );
        assert_state_eq(&final_state(&serial, &sys), &want, &format!("{name} serial"));

        let mut rayon = Cluster::new(cfg.clone(), &sys);
        rayon
            .try_run_with(STEPS, BUDGET, &EngineConfig::parallel().with_threads(2))
            .unwrap_or_else(|e| panic!("{name} rayon: healing run failed: {e}"));
        assert_state_eq(&final_state(&rayon, &sys), &want, &format!("{name} rayon"));

        let run = run_sharded(
            &cfg,
            &sys,
            STEPS,
            &EngineConfig::serial(),
            2,
            ShardOpts { budget: BUDGET, ckpt: None, resume: None, obs: None, ..Default::default() },
        )
        .unwrap_or_else(|e| panic!("{name} x2: sharded healing run failed: {e}"));
        assert_state_eq(&final_state(&run.replica, &sys), &want, &format!("{name} x2"));
    }
}

// -------------------------------------------------------------------------
// Rolling resume: two staggered crashes, serial and rayon
// -------------------------------------------------------------------------

#[test]
fn staggered_crashes_roll_forward_bit_identical() {
    let sys = workload();
    let want = reference();
    let plan = FaultPlan::none().with_crash(2, 3).with_crash(5, 5);
    for (ename, engine) in [
        ("serial", EngineConfig::serial()),
        ("rayon", EngineConfig::parallel().with_threads(2)),
    ] {
        let dir = tmpdir(&format!("stagger-{ename}"));
        let ck = CheckpointConfig::new(EVERY, &dir).with_keep(0);
        let rec = run_with_recovery(
            &sys,
            &config(Some(plan.clone()), false),
            STEPS,
            BUDGET,
            &engine,
            &ck,
            &RecoveryPolicy::default(),
        )
        .unwrap_or_else(|e| panic!("{ename}: rolling recovery failed: {e}"));

        // Each staggered crash takes exactly one restart, in fire order.
        assert_eq!(rec.restarts.len(), 2, "{ename}: restarts: {:?}", rec.restarts);
        assert!(
            rec.restarts[0].contains("node 2") && rec.restarts[0].contains("step 3"),
            "{ename}: first restart line: {}",
            rec.restarts[0]
        );
        assert!(
            rec.restarts[1].contains("node 5") && rec.restarts[1].contains("step 5"),
            "{ename}: second restart line: {}",
            rec.restarts[1]
        );
        assert_eq!(rec.run.report.steps, STEPS, "{ename}: run did not reach the end");
        assert_state_eq(
            &final_state(&rec.cluster, &sys),
            &want,
            &format!("staggered crashes {ename}"),
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}

// -------------------------------------------------------------------------
// Rolling resume: unreliable partition deadlock, diagnosed and lifted
// -------------------------------------------------------------------------

#[test]
fn unreliable_partition_deadlock_is_diagnosed_and_recovered() {
    // With the reliability layer *off*, a partition starves cross-half
    // traffic permanently (nothing retransmits after the heal). The
    // driver must diagnose the deadlock *as the partition* — naming it
    // in grammar spelling — and recovery must lift the windows and
    // replay from the pre-onset checkpoint to the bit-exact answer.
    let sys = workload();
    let want = reference();
    let plan = FaultPlan::none()
        .with_seed(0x9A27)
        .with_partition(vec![0, 1, 2, 3], vec![4, 5, 6, 7], 1, 9_000);
    let dir = tmpdir("partition-unreliable");
    let ck = CheckpointConfig::new(EVERY, &dir).with_keep(0);
    let rec = run_with_recovery(
        &sys,
        &config(Some(plan), false),
        STEPS,
        BUDGET,
        &EngineConfig::serial(),
        &ck,
        &RecoveryPolicy::default(),
    )
    .expect("partition deadlock must be recoverable");
    assert_eq!(rec.restarts.len(), 1, "restarts: {:?}", rec.restarts);
    assert!(
        rec.restarts[0].contains("partition 0/1/2/3|4/5/6/7"),
        "diagnosis must name the partition: {}",
        rec.restarts[0]
    );
    assert_state_eq(&final_state(&rec.cluster, &sys), &want, "partition deadlock recovery");
    let _ = std::fs::remove_dir_all(&dir);
}

// -------------------------------------------------------------------------
// Rolling resume: staggered crashes on the 2-shard engine
// -------------------------------------------------------------------------

#[test]
fn sharded_staggered_crashes_roll_forward_from_newest_consistent() {
    // The shard leg of the crash column: `run_sharded` surfaces the
    // injected crash, the driver loop strips the fired directive and
    // resumes from the newest *consistent* checkpoint (the shard
    // coordinator writes one merged stream, so consistency is over the
    // single directory — the API still proves the restore point
    // predates the damage).
    let sys = workload();
    let want = reference();
    let dir = tmpdir("shard-roll");
    let ck = CheckpointConfig::new(EVERY, &dir).with_keep(0);
    let engine = EngineConfig::serial();

    let mut plan = Some(FaultPlan::none().with_crash(1, 3).with_crash(6, 5));
    let mut resume: Option<PathBuf> = None;
    let mut restarts = 0u32;
    let run = loop {
        let cfg = config(
            plan.clone().filter(|p| !p.is_none() || !p.crashes.is_empty()),
            false,
        );
        match run_sharded(
            &cfg,
            &sys,
            STEPS,
            &engine,
            2,
            ShardOpts {
                budget: BUDGET,
                ckpt: Some(ck.clone()),
                resume: resume.clone(),
                obs: None,
                ..Default::default()
            },
        ) {
            Ok(run) => break run,
            Err(ShardError::Cluster(ClusterError::Crashed(c))) => {
                restarts += 1;
                assert!(restarts <= 4, "rolling resume did not converge");
                plan = plan.map(|p| p.without_crash_at(c.node as u32, c.step));
                let (step, paths) = newest_consistent(std::slice::from_ref(&dir))
                    .expect("list checkpoints")
                    .expect("a checkpoint survives the crash");
                assert!(step < c.step, "restore point (step {step}) must predate the crash");
                resume = Some(paths[0].clone());
            }
            Err(other) => panic!("expected an injected crash, got: {other}"),
        }
    };
    assert_eq!(restarts, 2, "each staggered crash takes its own restart");
    assert_eq!(run.report.steps, STEPS);
    assert_state_eq(&final_state(&run.replica, &sys), &want, "sharded rolling resume");
    let _ = std::fs::remove_dir_all(&dir);
}
