//! Cluster integration: a multi-FPGA run must compute exactly the same
//! physics as the single-chip functional model, while the chained
//! synchronization protocol terminates and lets fast nodes race ahead.

use fasda_arith::interp::TableConfig;
use fasda_cluster::{Cluster, ClusterConfig};
use fasda_core::config::{ChipConfig, DesignVariant};
use fasda_core::functional::FunctionalChip;
use fasda_md::element::Element;
use fasda_md::space::SimulationSpace;
use fasda_md::system::ParticleSystem;
use fasda_md::workload::{Placement, WorkloadSpec};
use fasda_net::sync::SyncMode;

fn workload(d: u32, per_cell: u32, seed: u64) -> ParticleSystem {
    WorkloadSpec {
        space: SimulationSpace::cubic(d),
        per_cell,
        placement: Placement::JitteredLattice { jitter: 0.05 },
        temperature_k: 150.0,
        seed,
        element: Element::Na,
    }
    .generate()
}

#[test]
fn eight_chip_run_matches_functional() {
    let sys = workload(6, 3, 21);
    let cfg = ClusterConfig::paper(ChipConfig::baseline(), (3, 3, 3));
    let mut cluster = Cluster::new(cfg, &sys);
    assert_eq!(cluster.num_nodes(), 8);
    assert_eq!(cluster.num_particles(), sys.len());

    let mut func = FunctionalChip::load(&sys, TableConfig::PAPER, 2.0);
    let steps = 3;
    for _ in 0..steps {
        func.step();
    }
    let want = func.snapshot();

    let report = cluster.run(steps);
    assert_eq!(report.steps, steps);
    let mut got = sys.clone();
    cluster.store_into(&mut got);

    assert_eq!(cluster.num_particles(), sys.len(), "no particle lost");
    let mut worst = 0.0f64;
    for i in 0..sys.len() {
        let d = sys.space.min_image(got.pos[i], want.pos[i]).max_abs();
        worst = worst.max(d);
    }
    assert!(
        worst < 1e-5,
        "cluster diverged from functional by {worst} cells over {steps} steps"
    );
}

#[test]
fn cluster_reports_sane_timing_and_traffic() {
    let sys = workload(6, 4, 22);
    let cfg = ClusterConfig::paper(ChipConfig::baseline(), (3, 3, 3));
    let mut cluster = Cluster::new(cfg, &sys);
    let report = cluster.run(2);
    assert!(report.total_cycles > 0);
    assert!(report.cycles_per_step() > 100.0);
    assert!(report.us_per_day() > 0.0);
    // remote traffic must exist: positions and forces both ports
    assert!(report.pos_packets > 0, "no position packets?");
    assert!(report.frc_packets > 0, "no force packets?");
    // bandwidth demand far below 100 Gbps line rate (Fig. 18 A)
    assert!(report.pos_gbps_per_node() < 100.0);
    assert!(report.frc_gbps_per_node() < report.pos_gbps_per_node() * 2.0 + 100.0);
    // per-node records: one per node per step
    assert_eq!(report.records.len(), 8 * 2);
}

#[test]
fn two_chip_partition_works() {
    // the paper's 2-FPGA configuration: 6x3x3 cells, 3x3x3 per chip
    let sys = WorkloadSpec {
        space: SimulationSpace::new(6, 3, 3),
        per_cell: 3,
        placement: Placement::JitteredLattice { jitter: 0.05 },
        temperature_k: 150.0,
        seed: 23,
        element: Element::Na,
    }
    .generate();
    let cfg = ClusterConfig::paper(ChipConfig::baseline(), (3, 3, 3));
    let mut cluster = Cluster::new(cfg, &sys);
    assert_eq!(cluster.num_nodes(), 2);
    let mut func = FunctionalChip::load(&sys, TableConfig::PAPER, 2.0);
    func.step();
    let want = func.snapshot();
    cluster.run(1);
    let mut got = sys.clone();
    cluster.store_into(&mut got);
    let mut worst = 0.0f64;
    for i in 0..sys.len() {
        worst = worst.max(sys.space.min_image(got.pos[i], want.pos[i]).max_abs());
    }
    assert!(worst < 1e-5, "2-chip divergence {worst}");
}

#[test]
fn bulk_sync_is_slower_than_chained() {
    let sys = workload(6, 3, 24);
    let chained = {
        let cfg = ClusterConfig::paper(ChipConfig::baseline(), (3, 3, 3));
        Cluster::new(cfg, &sys).run(2)
    };
    let bulk = {
        let mut cfg = ClusterConfig::paper(ChipConfig::baseline(), (3, 3, 3));
        cfg.sync = SyncMode::Bulk { latency: 2_000 };
        Cluster::new(cfg, &sys).run(2)
    };
    assert!(
        bulk.total_cycles > chained.total_cycles,
        "bulk {} should exceed chained {}",
        bulk.total_cycles,
        chained.total_cycles
    );
}

#[test]
fn straggler_lets_other_nodes_race_ahead() {
    let sys = workload(6, 3, 25);
    let mut cfg = ClusterConfig::paper(ChipConfig::baseline(), (3, 3, 3));
    cfg.straggler = Some((0, 3_000));
    let report = Cluster::new(cfg, &sys).run(2);
    // chained sync: completion times within a step spread out
    assert!(
        report.avg_completion_spread() > 0.0,
        "expected nonzero completion spread under a straggler"
    );
}

#[test]
fn strong_scaling_variant_c_beats_a_on_cluster() {
    let sys = workload(4, 16, 26);
    let a = Cluster::new(
        ClusterConfig::paper(ChipConfig::variant(DesignVariant::A), (2, 2, 2)),
        &sys,
    )
    .run(1);
    let c = Cluster::new(
        ClusterConfig::paper(ChipConfig::variant(DesignVariant::C), (2, 2, 2)),
        &sys,
    )
    .run(1);
    assert!(
        c.total_cycles < a.total_cycles,
        "variant C ({}) should beat A ({})",
        c.total_cycles,
        a.total_cycles
    );
}

#[test]
fn migration_across_chips_preserves_particles() {
    // hot system → guaranteed migrations, including across chip borders
    let sys = WorkloadSpec {
        space: SimulationSpace::cubic(6),
        per_cell: 4,
        placement: Placement::JitteredLattice { jitter: 0.1 },
        temperature_k: 600.0,
        seed: 27,
        element: Element::Na,
    }
    .generate();
    let n = sys.len();
    let cfg = ClusterConfig::paper(ChipConfig::baseline(), (3, 3, 3));
    let mut cluster = Cluster::new(cfg, &sys);
    cluster.run(5);
    assert_eq!(cluster.num_particles(), n, "particles conserved");
    let mut got = sys.clone();
    cluster.store_into(&mut got);
    assert!(got.validate().is_ok());
}

#[test]
fn packet_loss_stalls_chained_sync() {
    // UDP has no retransmission: a lost data or marker packet starves
    // the chained synchronization. try_run reports the stall instead of
    // hanging — the failure mode the paper's cooldown counters prevent.
    let sys = workload(6, 3, 28);
    let mut cfg = ClusterConfig::paper(ChipConfig::baseline(), (3, 3, 3));
    cfg.loss = Some((0.2, 7));
    let mut cluster = Cluster::new(cfg, &sys);
    match cluster.try_run(3, 300_000) {
        Err(stall) => {
            assert!(stall.packets_lost() > 0, "loss must have occurred");
        }
        Ok(r) => panic!(
            "20% packet loss should stall the cluster, but it finished in {} cycles",
            r.total_cycles
        ),
    }
}

#[test]
fn zero_loss_try_run_equals_run() {
    let sys = workload(6, 3, 29);
    let cfg = ClusterConfig::paper(ChipConfig::baseline(), (3, 3, 3));
    let a = Cluster::new(cfg.clone(), &sys).run(2);
    let b = Cluster::new(cfg, &sys)
        .try_run(2, u64::MAX / 2)
        .expect("lossless run converges");
    assert_eq!(a.total_cycles, b.total_cycles);
}
