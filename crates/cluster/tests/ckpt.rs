//! Checkpoint/restore and crash-recovery acceptance tests.
//!
//! The contract under test (DESIGN.md §9): restoring a checkpoint into a
//! freshly built cluster reproduces the snapshotted state *exactly* —
//! re-snapshotting yields the same bytes — and a run killed mid-step by
//! a `crash=NODE@STEP` directive, recovered from its latest checkpoint,
//! reaches final positions, velocities, force accumulators, per-step
//! records, and per-node trace streams bit-identical to the
//! uninterrupted oracle with the same segmentation. This must hold on
//! the serial reference and the optimized parallel engine, with and
//! without a lossy fault schedule under the reliability layer. Corrupt
//! or truncated checkpoint files must fail with a typed error naming the
//! bad section — never a panic, never a silent partial restore.

mod harness;

use fasda_cluster::ckpt::{
    resume_latest, run_with_checkpoints, CheckpointConfig, CheckpointedRun, CkptRunError,
    RunAccumulator,
};
use fasda_cluster::{
    Cluster, ClusterConfig, ClusterError, EngineConfig, FaultPlan, RelConfig, TraceConfig,
};
use fasda_ckpt::{CkptError, Container, ContainerWriter};
use fasda_md::system::ParticleSystem;
use fasda_sim::rng::XorShift64Star;
use harness::{config, final_state, workload, BUDGET};

const STEPS: u64 = 6;
const EVERY: u64 = 2;

/// Suite-namespaced scratch directory.
fn tmpdir(tag: &str) -> std::path::PathBuf {
    harness::tmpdir(&format!("ckpt-{tag}"))
}

/// Per-node event streams of every segment trace, flattened in segment
/// order (the engine stream and stall ledger are compared separately by
/// the chaos tests; the per-node record is the deterministic artifact).
fn node_streams(run: &CheckpointedRun) -> Vec<Vec<fasda_trace::TraceEvent>> {
    run.traces
        .iter()
        .map(|t| t.nodes.iter().flat_map(|n| n.events.clone()).collect())
        .collect()
}

// -------------------------------------------------------------------------
// Snapshot identity
// -------------------------------------------------------------------------

#[test]
fn restore_then_resnapshot_is_byte_identical() {
    let sys = workload();
    let cfg = config(None, false);
    let mut a = Cluster::new(cfg.clone(), &sys);
    a.try_run_with(STEPS, BUDGET, &EngineConfig::serial()).expect("run");

    let mut cw = ContainerWriter::new();
    a.snapshot_into(&mut cw);
    let bytes = cw.finish();

    let mut b = Cluster::new(cfg, &sys);
    let container = Container::parse(&bytes).expect("parse own snapshot");
    b.restore_from(&container).expect("restore into fresh cluster");

    let mut cw2 = ContainerWriter::new();
    b.snapshot_into(&mut cw2);
    assert_eq!(
        bytes,
        cw2.finish(),
        "snapshot -> restore -> snapshot must be the identity on bytes"
    );
}

#[test]
fn restored_cluster_continues_bit_identical() {
    // Run 2 segments, snapshot, run 1 more on the original; separately
    // restore the snapshot into a fresh cluster and run the same final
    // segment: both must land on identical particle state.
    let sys = workload();
    let cfg = config(None, false);
    let engine = EngineConfig::serial();

    let mut a = Cluster::new(cfg.clone(), &sys);
    a.try_run_with(2 * EVERY, BUDGET, &engine).expect("prefix");
    let mut cw = ContainerWriter::new();
    a.snapshot_into(&mut cw);
    let bytes = cw.finish();
    a.try_run_with(STEPS, BUDGET, &engine).expect("suffix on original");
    let want = final_state(&a, &sys);

    let mut b = Cluster::new(cfg, &sys);
    b.restore_from(&Container::parse(&bytes).expect("parse")).expect("restore");
    assert_eq!(b.current_step(), 2 * EVERY);
    b.try_run_with(STEPS, BUDGET, &engine).expect("suffix on restored");
    let got = final_state(&b, &sys);

    assert_eq!(got.0.pos, want.0.pos, "positions diverged after restore");
    assert_eq!(got.0.vel, want.0.vel, "velocities diverged after restore");
    assert_eq!(got.1, want.1, "force accumulators diverged after restore");
}

// -------------------------------------------------------------------------
// Crash + recovery vs the uninterrupted oracle
// -------------------------------------------------------------------------

struct Scenario {
    name: &'static str,
    faults: Option<FaultPlan>,
    reliable: bool,
    engine: EngineConfig,
}

fn scenarios() -> Vec<Scenario> {
    let full = TraceConfig::full();
    vec![
        Scenario {
            name: "clean-serial",
            faults: None,
            reliable: false,
            engine: EngineConfig::serial().with_trace(full),
        },
        Scenario {
            name: "clean-parallel",
            faults: None,
            reliable: false,
            engine: EngineConfig::parallel().with_threads(4).with_trace(full),
        },
        Scenario {
            name: "lossy-serial",
            faults: Some(FaultPlan::drop_only(0.05, 0xC0FFEE)),
            reliable: true,
            engine: EngineConfig::serial().with_trace(full),
        },
        Scenario {
            name: "lossy-parallel",
            faults: Some(FaultPlan::drop_only(0.05, 0xC0FFEE)),
            reliable: true,
            engine: EngineConfig::parallel().with_threads(4).with_trace(full),
        },
    ]
}

#[test]
fn crash_recovery_matches_uninterrupted_oracle() {
    // Crash node 1 while it is executing step 5 (the final segment);
    // recovery restores the step-4 checkpoint and re-runs to the end.
    const CRASH_NODE: u32 = 1;
    const CRASH_STEP: u64 = 5;
    let sys = workload();

    for sc in scenarios() {
        // Uninterrupted oracle with the same segmentation.
        let dir_oracle = tmpdir(&format!("{}-oracle", sc.name));
        let ck_oracle = CheckpointConfig::new(EVERY, &dir_oracle).with_keep(0);
        let mut oracle = Cluster::new(config(sc.faults.clone(), sc.reliable), &sys);
        let oracle_run = run_with_checkpoints(
            &mut oracle,
            STEPS,
            BUDGET,
            &sc.engine,
            Some(&ck_oracle),
            RunAccumulator::new(),
        )
        .expect("oracle run completes");
        let oracle_state = final_state(&oracle, &sys);
        assert_eq!(oracle_run.traces.len() as u64, STEPS / EVERY);

        // Crashing run: same plan plus the crash directive.
        let crash_plan = sc
            .faults
            .clone()
            .unwrap_or_else(FaultPlan::none)
            .with_crash(CRASH_NODE, CRASH_STEP);
        let dir = tmpdir(sc.name);
        let ck = CheckpointConfig::new(EVERY, &dir).with_keep(0);
        let mut crashy = Cluster::new(config(Some(crash_plan.clone()), sc.reliable), &sys);
        let err = run_with_checkpoints(
            &mut crashy,
            STEPS,
            BUDGET,
            &sc.engine,
            Some(&ck),
            RunAccumulator::new(),
        )
        .expect_err("crash directive must abort the run");
        match err {
            CkptRunError::Run(ClusterError::Crashed(c)) => {
                assert_eq!(c.node, CRASH_NODE as usize, "{}: wrong crash node", sc.name);
                assert_eq!(c.step, CRASH_STEP, "{}: wrong crash step", sc.name);
                assert!(
                    c.to_string().contains("crashed"),
                    "{}: crash error should say so",
                    sc.name
                );
            }
            other => panic!("{}: expected injected crash, got {other}", sc.name),
        }

        // Recovery: rebuild from config *without* the crash directive,
        // restore the newest checkpoint, run the remaining segments.
        let mut recovered = Cluster::new(
            config(Some(crash_plan.without_crash()), sc.reliable),
            &sys,
        );
        let (_path, acc) = resume_latest(&mut recovered, &dir)
            .expect("resume parses")
            .expect("a checkpoint exists");
        assert_eq!(acc.steps_done, 4, "{}: crash fired past the step-4 checkpoint", sc.name);
        let resumed = run_with_checkpoints(
            &mut recovered,
            STEPS,
            BUDGET,
            &sc.engine,
            Some(&ck),
            acc,
        )
        .expect("recovered run completes");
        let recovered_state = final_state(&recovered, &sys);

        assert_eq!(
            resumed.report, oracle_run.report,
            "{}: whole-run report drifted after recovery",
            sc.name
        );
        assert_eq!(
            recovered_state.0.pos, oracle_state.0.pos,
            "{}: final positions drifted after recovery",
            sc.name
        );
        assert_eq!(
            recovered_state.0.vel, oracle_state.0.vel,
            "{}: final velocities drifted after recovery",
            sc.name
        );
        assert_eq!(
            recovered_state.1, oracle_state.1,
            "{}: final force accumulators drifted after recovery",
            sc.name
        );

        // Suffix-aligned traces: the resumed process re-ran only the
        // final segment; its per-node streams must equal the oracle's
        // last segment streams byte for byte.
        let oracle_streams = node_streams(&oracle_run);
        let resumed_streams = node_streams(&resumed);
        assert!(!resumed_streams.is_empty(), "{}: tracing was on", sc.name);
        let skip = oracle_streams.len() - resumed_streams.len();
        assert_eq!(
            resumed_streams,
            oracle_streams[skip..].to_vec(),
            "{}: resumed trace streams not suffix-aligned with oracle",
            sc.name
        );

        let _ = std::fs::remove_dir_all(&dir);
        let _ = std::fs::remove_dir_all(&dir_oracle);
    }
}

// -------------------------------------------------------------------------
// Retention, atomicity, and file discovery
// -------------------------------------------------------------------------

#[test]
fn retention_keeps_only_newest_checkpoints() {
    let sys = workload();
    let dir = tmpdir("retention");
    let ck = CheckpointConfig::new(EVERY, &dir).with_keep(2);
    let mut cluster = Cluster::new(config(None, false), &sys);
    run_with_checkpoints(
        &mut cluster,
        STEPS,
        BUDGET,
        &EngineConfig::serial(),
        Some(&ck),
        RunAccumulator::new(),
    )
    .expect("run completes");

    let kept = fasda_ckpt::list_checkpoints(&dir).expect("list");
    assert_eq!(
        kept.iter().map(|(s, _)| *s).collect::<Vec<_>>(),
        vec![4, 6],
        "retention must keep the two newest boundaries"
    );
    // Atomic writes leave no temp droppings behind.
    for entry in std::fs::read_dir(&dir).expect("read dir") {
        let name = entry.expect("entry").file_name();
        let name = name.to_string_lossy();
        assert!(
            name.ends_with(".fckp"),
            "unexpected non-checkpoint file {name:?} (non-atomic write?)"
        );
    }
    let latest = fasda_ckpt::latest_checkpoint(&dir).expect("latest").expect("some");
    assert_eq!(fasda_ckpt::checkpoint_step(&latest), Some(6));
    let _ = std::fs::remove_dir_all(&dir);
}

// -------------------------------------------------------------------------
// Corruption: typed errors, never panics, never partial silent restores
// -------------------------------------------------------------------------

fn snapshot_bytes() -> (Vec<u8>, ParticleSystem, ClusterConfig) {
    let sys = workload();
    let cfg = config(None, false);
    let mut cluster = Cluster::new(cfg.clone(), &sys);
    cluster
        .try_run_with(EVERY, BUDGET, &EngineConfig::serial())
        .expect("run");
    let mut cw = ContainerWriter::new();
    cluster.snapshot_into(&mut cw);
    (cw.finish(), sys, cfg)
}

#[test]
fn corrupted_section_fails_with_named_crc_mismatch() {
    let (mut bytes, _sys, _cfg) = snapshot_bytes();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x40;
    match Container::parse(&bytes) {
        Err(CkptError::CrcMismatch { section, .. }) => {
            assert!(!section.is_empty(), "CRC error must name the section");
        }
        other => panic!("expected CrcMismatch, got {other:?}"),
    }
}

#[test]
fn truncated_snapshot_fails_cleanly() {
    let (bytes, _sys, _cfg) = snapshot_bytes();
    for cut in [3, 7, bytes.len() / 3, bytes.len() - 5] {
        match Container::parse(&bytes[..cut]) {
            Err(CkptError::Truncated { .. }) | Err(CkptError::BadMagic) => {}
            other => panic!("truncation at {cut} must fail cleanly, got {other:?}"),
        }
    }
}

#[test]
fn wrong_magic_and_version_are_rejected() {
    let (mut bytes, _sys, _cfg) = snapshot_bytes();
    let mut nonsense = bytes.clone();
    nonsense[..4].copy_from_slice(b"NOPE");
    assert!(matches!(Container::parse(&nonsense), Err(CkptError::BadMagic)));

    bytes[4..8].copy_from_slice(&999u32.to_le_bytes());
    assert!(matches!(
        Container::parse(&bytes),
        Err(CkptError::BadVersion { found: 999, .. })
    ));
}

#[test]
fn config_mismatch_names_the_field() {
    let (bytes, sys, cfg) = snapshot_bytes();
    let container = Container::parse(&bytes).expect("parse");

    let mut straggler = Cluster::new(
        ClusterConfig {
            straggler: Some((0, 50)),
            ..cfg.clone()
        },
        &sys,
    );
    match straggler.restore_from(&container) {
        Err(CkptError::ConfigMismatch { field }) => assert_eq!(field, "straggler"),
        other => panic!("expected ConfigMismatch, got {other:?}"),
    }

    let mut rel = Cluster::new(
        ClusterConfig {
            reliability: Some(RelConfig::new(2_048, 16_384)),
            ..cfg
        },
        &sys,
    );
    match rel.restore_from(&container) {
        Err(CkptError::ConfigMismatch { field }) => assert_eq!(field, "reliability"),
        other => panic!("expected ConfigMismatch, got {other:?}"),
    }
}

#[test]
fn bitflip_fuzz_never_panics() {
    // Seeded xorshift64* fuzz (shared PRNG from fasda-sim): random bit
    // flips anywhere in the container must yield either a clean parse
    // (flip landed in dead padding — impossible here, but allowed) or a
    // typed error; restore of any surviving parse must never panic.
    let (bytes, sys, cfg) = snapshot_bytes();
    let mut rng = XorShift64Star::new(0x000F_A5DA_C4A5);
    for _ in 0..128 {
        let mut mutated = bytes.clone();
        let flips = 1 + rng.next_below(4) as usize;
        for _ in 0..flips {
            let at = rng.next_below(mutated.len() as u64) as usize;
            mutated[at] ^= 1 << rng.next_below(8);
        }
        if let Ok(container) = Container::parse(&mutated) {
            let mut cluster = Cluster::new(cfg.clone(), &sys);
            let _ = cluster.restore_from(&container);
        }
    }
}
