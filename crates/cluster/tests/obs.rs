//! Live-telemetry acceptance (DESIGN.md §12): the final metrics totals
//! are an *identity artifact* — a pure function of the engine- and
//! shard-invariant run report and stall ledger, so serial, rayon, and
//! sharded runs must produce byte-identical totals documents, clean or
//! under a 5% drop schedule. Heartbeat streams are a progress view:
//! well-formed JSONL with monotonic steps and non-decreasing counters,
//! a parseable Prometheus scrape file, and — in sharded runs — fleet
//! records naming the lagging shard.

mod harness;

use fasda_cluster::{
    emit_final, final_totals_json, measured_from, model_input, run_sharded, Cluster, EngineConfig,
    FaultPlan, ObsLive, ObsSinkConfig, ShardOpts, TraceConfig,
};
use fasda_trace::Json;
use harness::{config, fold, parse_jsonl, workload, BUDGET};
use std::path::PathBuf;

const STEPS: u64 = 4;

/// Suite-namespaced scratch directory.
fn tmpdir(tag: &str) -> PathBuf {
    harness::tmpdir(&format!("obs-{tag}"))
}

// -------------------------------------------------------------------------
// Final totals: bit-identical across engines and shard counts
// -------------------------------------------------------------------------

#[test]
fn final_totals_identical_across_engines_and_shards() {
    let sys = workload();
    let full = TraceConfig::full();
    for (name, faults, reliable) in [
        ("clean", None, false),
        ("lossy", Some(FaultPlan::drop_only(0.05, 0xC0FFEE)), true),
    ] {
        let cfg = config(faults, reliable);

        // Serial oracle defines the expected totals document.
        let mut oracle = Cluster::new(cfg.clone(), &sys);
        let report = oracle
            .try_run_with(STEPS, BUDGET, &EngineConfig::serial().with_trace(full))
            .expect("oracle completes");
        let trace = oracle.take_trace().expect("tracing was on");
        let want = final_totals_json(&report, Some(&trace.stalls)).pretty();

        // Rayon engine (burst on — totals must still match: the report
        // and the ledger are engine-invariant even when the engine
        // trace stream is not).
        let mut par = Cluster::new(cfg.clone(), &sys);
        let r = par
            .try_run_with(
                STEPS,
                BUDGET,
                &EngineConfig::parallel().with_threads(2).with_trace(full),
            )
            .expect("parallel run completes");
        let t = par.take_trace().expect("tracing was on");
        assert_eq!(
            final_totals_json(&r, Some(&t.stalls)).pretty(),
            want,
            "{name}: rayon totals drifted from serial oracle"
        );

        // Two socket-connected shard workers.
        let run = run_sharded(
            &cfg,
            &sys,
            STEPS,
            &EngineConfig::serial().with_trace(full),
            2,
            ShardOpts { budget: BUDGET, ckpt: None, resume: None, obs: None, ..Default::default() },
        )
        .expect("sharded run completes");
        let nodes = run.replica.num_nodes();
        let folded = fold(&run.traces, nodes);
        assert_eq!(
            final_totals_json(&run.report, Some(&folded)).pretty(),
            want,
            "{name}: sharded totals drifted from serial oracle"
        );
    }
}

// -------------------------------------------------------------------------
// Heartbeat stream: JSONL shape, monotonicity, prom scrape, final record
// -------------------------------------------------------------------------

#[test]
fn heartbeat_stream_is_wellformed_and_final_matches_totals() {
    let sys = workload();
    let dir = tmpdir("beats");
    let sinks = ObsSinkConfig {
        heartbeat_out: Some(dir.join("beats.jsonl")),
        prom_out: Some(dir.join("scrape.prom")),
    };

    let mut cluster = Cluster::new(config(None, false), &sys);
    cluster.attach_obs(Box::new(ObsLive::new(1, &sinks).expect("sinks open")));
    let report = cluster
        .try_run_with(STEPS, BUDGET, &EngineConfig::serial().with_trace(TraceConfig::full()))
        .expect("run completes");
    let obs = cluster.take_obs().expect("sampler still attached");
    assert!(obs.beats() >= STEPS - 1, "cadence 1 must beat (almost) every step");
    let trace = cluster.take_trace().expect("tracing was on");
    emit_final(&sinks, &report, Some(&trace.stalls)).expect("final record");

    let records = parse_jsonl(&sinks.heartbeat_out.clone().unwrap());
    assert!(records.len() >= 2, "beats + final expected");
    let mut last_step = 0;
    let mut last_cycles = 0;
    for rec in &records[..records.len() - 1] {
        assert_eq!(rec.get("type").unwrap().as_str(), Some("beat"));
        let step = rec.get("step").unwrap().as_i64().unwrap();
        assert!(step >= last_step, "steps must be monotonic");
        last_step = step;
        let counters = rec.get("counters").unwrap();
        let cycles = counters.get("cycles").unwrap().as_i64().unwrap();
        assert!(cycles >= last_cycles, "cycle counter must not decrease");
        last_cycles = cycles;
        // The progress gauges ride along on every beat.
        let gauges = rec.get("gauges").unwrap();
        for g in ["wall_s", "steps_per_s", "eta_s", "progress"] {
            assert!(gauges.get(g).is_some(), "missing gauge {g}");
        }
    }

    // The trailing record is the final-totals identity artifact: its
    // counters equal the pure-function totals document exactly.
    let fin = records.last().unwrap();
    assert_eq!(fin.get("type").unwrap().as_str(), Some("final"));
    let want = final_totals_json(&report, Some(&trace.stalls));
    assert_eq!(fin.get("counters"), want.get("counters"), "final record drifted");
    assert_eq!(fin.get("hists"), want.get("hists"));

    // Prometheus text format: every line is a comment or `name value`,
    // names carry the fasda prefix, values parse as floats.
    let prom = std::fs::read_to_string(sinks.prom_out.clone().unwrap()).expect("scrape file");
    let mut samples = 0;
    for line in prom.lines().filter(|l| !l.is_empty()) {
        if line.starts_with("# TYPE ") || line.starts_with("# HELP ") {
            continue;
        }
        let (name, value) = line.rsplit_once(' ').expect("sample line");
        assert!(name.starts_with("fasda_"), "unprefixed metric {name}");
        value.parse::<f64>().unwrap_or_else(|_| panic!("bad value in {line:?}"));
        samples += 1;
    }
    assert!(samples > 0, "scrape file has no samples");
    let _ = std::fs::remove_dir_all(&dir);
}

// -------------------------------------------------------------------------
// Fleet heartbeats from a sharded run
// -------------------------------------------------------------------------

#[test]
fn sharded_run_emits_fleet_beats_naming_lagging_shard() {
    let sys = workload();
    let dir = tmpdir("fleet");
    let sinks = ObsSinkConfig {
        heartbeat_out: Some(dir.join("fleet.jsonl")),
        prom_out: Some(dir.join("fleet.prom")),
    };

    let run = run_sharded(
        &config(None, false),
        &sys,
        STEPS,
        &EngineConfig::serial()
            .with_trace(TraceConfig::full())
            .with_heartbeat_every(1),
        2,
        ShardOpts { budget: BUDGET, ckpt: None, resume: None, obs: Some(sinks.clone()), ..Default::default() },
    )
    .expect("sharded run completes");
    assert_eq!(run.report.steps, STEPS);

    let records = parse_jsonl(&sinks.heartbeat_out.clone().unwrap());
    assert!(!records.is_empty(), "fleet heartbeats expected");
    let mut last_beat = 0;
    for rec in &records {
        assert_eq!(rec.get("type").unwrap().as_str(), Some("fleet"));
        let beat = rec.get("beat").unwrap().as_i64().unwrap();
        assert!(beat > last_beat, "beat counter must increase");
        last_beat = beat;
        assert!(rec.get("lag_steps").unwrap().as_i64().unwrap() >= 0);
        let lagging = rec.get("lagging_shard").unwrap().as_i64().unwrap();
        assert!((0..2).contains(&lagging), "lagging shard out of range");
        let shards = rec.get("shards").unwrap().items();
        assert_eq!(shards.len(), 2, "one sample per shard");
        for (i, s) in shards.iter().enumerate() {
            assert_eq!(s.get("shard").unwrap().as_i64(), Some(i as i64));
            assert!(s.get("nodes").unwrap().as_str().unwrap().contains(".."));
            assert!(s.get("min_step").unwrap().as_i64().is_some());
        }
    }

    // The fleet scrape file exists and exposes per-shard progress.
    let prom = std::fs::read_to_string(sinks.prom_out.clone().unwrap()).expect("scrape file");
    assert!(prom.contains("fasda_fleet_shard_min_step_total{shard=\"0\"}"));
    assert!(prom.contains("fasda_fleet_shard_min_step_total{shard=\"1\"}"));
    let _ = std::fs::remove_dir_all(&dir);
}

// -------------------------------------------------------------------------
// Heartbeat continuity across a partition-with-heal window
// -------------------------------------------------------------------------

#[test]
fn heartbeats_stay_continuous_across_partition_heal() {
    // The in-run sampler beats on step boundaries, so a partition window
    // stretches *cycles* (retransmission storms on the severed links)
    // but must never open a gap in the beat stream: with cadence 1 no
    // two consecutive beats — nor start-of-run to first beat, nor last
    // beat to end-of-run — may be more than 2× the cadence apart.
    let every = 1u64;
    let limit = 2 * every;
    let sys = workload();
    let dir = tmpdir("continuity");
    let sinks = ObsSinkConfig {
        heartbeat_out: Some(dir.join("beats.jsonl")),
        prom_out: None,
    };

    // Halves sever at step 1 and heal mid-run; reliability on, so the
    // retransmit timers outlive the window and the run completes.
    let plan = FaultPlan::none()
        .with_seed(0x0B5)
        .with_partition(vec![0, 1, 2, 3], vec![4, 5, 6, 7], 1, 6_000);
    let mut cluster = Cluster::new(config(Some(plan), true), &sys);
    cluster.attach_obs(Box::new(ObsLive::new(every, &sinks).expect("sinks open")));
    let report = cluster
        .try_run_with(STEPS, BUDGET, &EngineConfig::serial())
        .expect("partitioned run heals and completes");
    assert!(report.faults_injected > 0, "partition window injected nothing");

    let seen: Vec<u64> = parse_jsonl(&sinks.heartbeat_out.clone().unwrap())
        .iter()
        .filter(|rec| rec.get("type").unwrap().as_str() == Some("beat"))
        .map(|rec| rec.get("step").unwrap().as_i64().unwrap() as u64)
        .collect();
    assert!(!seen.is_empty(), "no heartbeats emitted");
    let mut max_gap = seen[0]; // start-of-run to first beat
    for w in seen.windows(2) {
        max_gap = max_gap.max(w[1] - w[0]);
    }
    max_gap = max_gap.max(STEPS - seen.last().unwrap()); // last beat to end
    assert!(
        max_gap <= limit,
        "heartbeat gap of {max_gap} steps across the partition window exceeds {limit} (2x cadence)"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

// -------------------------------------------------------------------------
// §5 model plumbing end to end (gating lives in enginebench)
// -------------------------------------------------------------------------

#[test]
fn model_divergence_computes_from_a_real_run() {
    let sys = workload();
    let cfg = config(None, false);
    let mut cluster = Cluster::new(cfg.clone(), &sys);
    let report = cluster
        .try_run_with(STEPS, BUDGET, &EngineConfig::serial().with_trace(TraceConfig::full()))
        .expect("run completes");
    let trace = cluster.take_trace().expect("tracing was on");

    let input = model_input(&cfg, (6, 6, 6), sys.len() as f64 / 216.0);
    let pred = fasda_obs::model::predict(&input);
    let meas = measured_from(&report, Some(&trace.stalls));
    let div = fasda_obs::model::Divergence::compare(&pred, &meas);
    assert!(div.cycles_rel.is_finite());
    assert!(div.occupancy_abs.is_finite());
    assert!(meas.occupancy > 0.0 && meas.occupancy <= 1.0);
    // The report round-trips through the JSON emitter.
    let doc = fasda_obs::model::modelcheck_json(&pred, &meas, &fasda_obs::model::Gate::default());
    assert_eq!(Json::parse(&doc.pretty()).unwrap(), doc);
}
