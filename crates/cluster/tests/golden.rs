//! Golden checkpoint fixtures: containers written at the current
//! `FORMAT_VERSION` are committed under `tests/golden/` and every
//! future build must (a) parse them — magic, version, and per-section
//! CRCs — (b) resume from the committed bytes to the bit-exact final
//! state, and (c) keep producing byte-identical containers for the
//! same step boundary while the version number stays put. A deliberate
//! format change must bump [`fasda_ckpt::FORMAT_VERSION`] and
//! regenerate with `FASDA_REGEN_GOLDEN=1 cargo test -p fasda-cluster
//! --test golden`.

mod harness;

use fasda_ckpt::{Container, FORMAT_VERSION};
use fasda_cluster::ckpt::{
    load_checkpoint, run_with_checkpoints, CheckpointConfig, RunAccumulator,
};
use fasda_cluster::{Cluster, EngineConfig};
use fasda_md::system::ParticleSystem;
use harness::{assert_state_eq, config, final_state, workload, ForceBits, BUDGET};
use std::path::PathBuf;

const STEPS: u64 = 6;
const EVERY: u64 = 2;
/// Committed mid-run boundaries: one right after the first segment, one
/// deep enough that a resume still has work left to replay.
const GOLDEN_STEPS: [u64; 2] = [2, 4];

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden")
}

fn golden_path(step: u64) -> PathBuf {
    golden_dir().join(format!("ckpt-{step:010}.fckp"))
}

/// Run the reference segmentation with the current writer: the bytes it
/// produces at each golden boundary, plus the final state every resume
/// must reproduce.
#[allow(clippy::type_complexity)]
fn current() -> (Vec<(u64, Vec<u8>)>, (ParticleSystem, ForceBits)) {
    let sys = workload();
    let dir = harness::tmpdir("golden-regen");
    let ck = CheckpointConfig::new(EVERY, &dir).with_keep(0);
    let mut cluster = Cluster::new(config(None, false), &sys);
    let run = run_with_checkpoints(
        &mut cluster,
        STEPS,
        BUDGET,
        &EngineConfig::serial(),
        Some(&ck),
        RunAccumulator::new(),
    )
    .expect("reference run completes");
    let bytes = GOLDEN_STEPS
        .map(|step| {
            let path = run
                .checkpoints
                .iter()
                .find(|p| fasda_ckpt::checkpoint_step(p) == Some(step))
                .unwrap_or_else(|| panic!("no checkpoint written at step {step}"));
            (step, std::fs::read(path).expect("read fresh checkpoint"))
        })
        .to_vec();
    let state = final_state(&cluster, &sys);
    let _ = std::fs::remove_dir_all(&dir);
    (bytes, state)
}

#[test]
fn golden_checkpoints_parse_resume_and_stay_byte_stable() {
    let (fresh, want) = current();
    if std::env::var("FASDA_REGEN_GOLDEN").is_ok() {
        std::fs::create_dir_all(golden_dir()).expect("create golden dir");
        for (step, bytes) in &fresh {
            std::fs::write(golden_path(*step), bytes).expect("write fixture");
            eprintln!("regenerated {}", golden_path(*step).display());
        }
    }

    for (step, bytes_now) in &fresh {
        let path = golden_path(*step);
        let golden = std::fs::read(&path).unwrap_or_else(|e| {
            panic!(
                "missing committed fixture {} ({e}); regenerate with FASDA_REGEN_GOLDEN=1",
                path.display()
            )
        });

        // (a) The current parser accepts the committed container end to
        // end (magic, version, every section CRC).
        let container = Container::parse(&golden)
            .unwrap_or_else(|e| panic!("committed fixture step {step} no longer parses: {e}"));
        assert!(container.section_names().count() > 0, "fixture has no sections");
        assert_eq!(
            FORMAT_VERSION, 1,
            "FORMAT_VERSION bumped: regenerate the fixtures and keep a read path for version 1"
        );

        // (b) A fresh cluster restores from the committed bytes and
        // replays to the bit-exact final state.
        let sys = workload();
        let mut cluster = Cluster::new(config(None, false), &sys);
        let acc = load_checkpoint(&mut cluster, &path)
            .unwrap_or_else(|e| panic!("committed fixture step {step} no longer restores: {e}"));
        assert_eq!(acc.steps_done, *step, "fixture carries the wrong step");
        run_with_checkpoints(
            &mut cluster,
            STEPS,
            BUDGET,
            &EngineConfig::serial(),
            None,
            acc,
        )
        .expect("resumed run completes");
        assert_state_eq(
            &final_state(&cluster, &sys),
            &want,
            &format!("resume from committed step-{step} fixture"),
        );

        // (c) Byte stability: at an unchanged FORMAT_VERSION the writer
        // must keep producing exactly the committed bytes.
        assert_eq!(
            bytes_now, &golden,
            "writer output for step {step} drifted from the committed version-1 fixture; \
             either restore compatibility or bump FORMAT_VERSION and regenerate"
        );
    }
}
