//! Shared test-support for the cluster integration suites (`chaos`,
//! `ckpt`, `shard`, `obs`, `recovery_matrix`): the one workload, cluster
//! configuration, scratch-directory, and bit-exact final-state shape
//! they all assert against. Keeping these here means every suite proves
//! its property over the *same* 8-node paper configuration, and a
//! change to the reference setup is a one-line diff.
//!
//! Each suite compiles this module independently (`mod harness;`), so
//! helpers unused by one suite are expected.
#![allow(dead_code)]

use fasda_cluster::{Cluster, ClusterConfig, FaultPlan, RelConfig, StallLedger, Trace};
use fasda_core::config::ChipConfig;
use fasda_md::element::Element;
use fasda_md::space::SimulationSpace;
use fasda_md::system::ParticleSystem;
use fasda_md::workload::{Placement, WorkloadSpec};
use fasda_trace::Json;
use std::path::PathBuf;

/// Cycle budget generous enough that only a genuine deadlock exhausts it.
pub const BUDGET: u64 = 2_000_000_000;

/// The shared 8-node workload: 6³ cells, 3 Na/cell, jittered lattice.
pub fn workload() -> ParticleSystem {
    WorkloadSpec {
        space: SimulationSpace::cubic(6),
        per_cell: 3,
        placement: Placement::JitteredLattice { jitter: 0.05 },
        temperature_k: 150.0,
        seed: 47,
        element: Element::Na,
    }
    .generate()
}

/// 2×2×2 nodes: the 6³-cell space split into 3×3×3-cell blocks.
pub fn config(faults: Option<FaultPlan>, reliable: bool) -> ClusterConfig {
    let mut cfg = ClusterConfig::paper(ChipConfig::baseline(), (3, 3, 3));
    if let Some(p) = faults {
        cfg = cfg.with_faults(p);
    }
    if reliable {
        cfg = cfg.with_reliability(RelConfig::new(2_048, 16_384));
    }
    cfg
}

/// Fresh scratch directory under the system temp dir, unique per pid and
/// tag (suites namespace their tags, e.g. `"ckpt-retention"`).
pub fn tmpdir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("fasda-test-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).expect("create scratch dir");
    d
}

/// Raw fixed-point force-accumulator bank bits keyed by stable particle
/// ID, sorted by ID.
pub type ForceBits = Vec<(u32, [i64; 3])>;

/// Bit-exact final state: positions, velocities, and the FC-bank bits.
/// Two runs are bit-identical iff these compare equal.
pub fn final_state(cluster: &Cluster, sys: &ParticleSystem) -> (ParticleSystem, ForceBits) {
    let mut out = sys.clone();
    cluster.store_into(&mut out);
    let mut forces = Vec::new();
    for chip in &cluster.chips {
        for cbb in &chip.cbbs {
            for i in 0..cbb.len() {
                forces.push((cbb.id[i], cbb.force[i].map(|f| f.0)));
            }
        }
    }
    forces.sort_by_key(|e| e.0);
    (out, forces)
}

/// Assert two [`final_state`] captures are bit-identical, naming the
/// scenario and which plane drifted.
pub fn assert_state_eq(
    got: &(ParticleSystem, ForceBits),
    want: &(ParticleSystem, ForceBits),
    ctx: &str,
) {
    assert_eq!(got.0.pos, want.0.pos, "{ctx}: final positions drifted");
    assert_eq!(got.0.vel, want.0.vel, "{ctx}: final velocities drifted");
    assert_eq!(got.1, want.1, "{ctx}: final force-accumulator bits drifted");
}

/// Fold per-segment stall ledgers into whole-run totals.
pub fn fold(traces: &[Trace], nodes: usize) -> StallLedger {
    let mut folded = StallLedger::new(nodes);
    for t in traces {
        folded.absorb(&t.stalls);
    }
    folded
}

/// Parse a JSONL stream, panicking with the offending line on error.
pub fn parse_jsonl(path: &PathBuf) -> Vec<Json> {
    std::fs::read_to_string(path)
        .expect("read JSONL stream")
        .lines()
        .map(|l| Json::parse(l).unwrap_or_else(|e| panic!("bad JSONL line {l:?}: {e}")))
        .collect()
}
