//! Sharded-engine acceptance: the multi-worker socket protocol must be
//! bit-identical to the in-process oracle.
//!
//! The contract under test (DESIGN.md §11): partitioning the cluster's
//! nodes across S workers — each running the existing engine over its
//! own shard and exchanging boundary flits, markers, and barrier votes
//! over real Unix-domain sockets — produces final positions,
//! velocities, raw force-accumulator bank bits, the folded whole-run
//! report, the merged per-segment traces, *and the checkpoint files
//! themselves* byte-for-byte equal to a single-process run. This must
//! hold for 2 and 4 shards, serial and multi-threaded local engines,
//! under a 5% packet-drop fault schedule with the reliability layer,
//! with an injected straggler driving fast-forward horizon agreement,
//! and across a crash + `--resume` on a *different* shard count.

mod harness;

use fasda_cluster::ckpt::{run_with_checkpoints, CheckpointConfig, RunAccumulator};
use fasda_cluster::{
    run_sharded, shard_ranges, validate_sharding, Cluster, ClusterError, EngineConfig, FaultPlan,
    ShardError, ShardOpts, Trace, TraceConfig,
};
use fasda_net::sync::SyncMode;
use harness::{config, final_state, workload, BUDGET};
use std::path::PathBuf;

const STEPS: u64 = 6;
const EVERY: u64 = 2;

/// Suite-namespaced scratch directory.
fn tmpdir(tag: &str) -> PathBuf {
    harness::tmpdir(&format!("shard-{tag}"))
}

/// `Trace` doesn't derive `PartialEq` (the engine stream is normally
/// engine-specific), but in a sharded run the workers pin `burst=false`
/// and the references below do the same — so every field must match.
fn assert_traces_equal(got: &[Trace], want: &[Trace], ctx: &str) {
    assert_eq!(got.len(), want.len(), "{ctx}: segment count");
    for (i, (g, w)) in got.iter().zip(want.iter()).enumerate() {
        assert_eq!(g.level, w.level, "{ctx}: segment {i} capture level");
        assert_eq!(g.nodes, w.nodes, "{ctx}: segment {i} per-node streams");
        assert_eq!(g.engine, w.engine, "{ctx}: segment {i} engine stream");
        assert_eq!(g.stalls, w.stalls, "{ctx}: segment {i} stall ledger");
    }
}

fn checkpoint_bytes(paths: &[PathBuf]) -> Vec<(Option<u64>, Vec<u8>)> {
    let mut out: Vec<_> = paths
        .iter()
        .map(|p| (fasda_ckpt::checkpoint_step(p), std::fs::read(p).expect("read checkpoint")))
        .collect();
    out.sort_by_key(|(s, _)| *s);
    out
}

// -------------------------------------------------------------------------
// Partitioning and unsupported-mode rejection
// -------------------------------------------------------------------------

#[test]
fn shard_ranges_cover_all_nodes_contiguously() {
    for (nodes, shards) in [(8, 1), (8, 2), (8, 4), (8, 8), (7, 3), (9, 4)] {
        let ranges = shard_ranges(nodes, shards);
        assert_eq!(ranges.len(), shards, "{nodes}/{shards}");
        assert_eq!(ranges[0].start, 0);
        assert_eq!(ranges[shards - 1].end, nodes);
        for w in ranges.windows(2) {
            assert_eq!(w[0].end, w[1].start, "ranges must be contiguous");
        }
        let sizes: Vec<usize> = ranges.iter().map(|r| r.len()).collect();
        let (min, max) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
        assert!(max - min <= 1, "near-even split, got {sizes:?}");
    }
}

#[test]
fn validate_rejects_unsupported_configs() {
    let ok = config(None, false);
    assert!(validate_sharding(&ok, 2, 8).is_ok());
    assert!(matches!(validate_sharding(&ok, 0, 8), Err(ShardError::Unsupported(_))));
    assert!(matches!(validate_sharding(&ok, 9, 8), Err(ShardError::Unsupported(_))));

    let mut bulk = config(None, false);
    bulk.sync = SyncMode::Bulk { latency: 2_000 };
    assert!(matches!(validate_sharding(&bulk, 2, 8), Err(ShardError::Unsupported(_))));

    let mut lossy = config(None, false);
    lossy.loss = Some((0.05, 7));
    assert!(matches!(validate_sharding(&lossy, 2, 8), Err(ShardError::Unsupported(_))));
}

// -------------------------------------------------------------------------
// Bit-identity vs the in-process oracle
// -------------------------------------------------------------------------

struct Scenario {
    name: &'static str,
    faults: Option<FaultPlan>,
    reliable: bool,
    straggler: Option<(usize, u64)>,
    engine: EngineConfig,
}

/// Local engines run with `burst=false` (the sharded workers force it
/// off; the references here match so even the engine trace stream is
/// comparable). Everything else — threads, SoA, fast-forward — varies.
fn scenarios() -> Vec<Scenario> {
    let full = TraceConfig::full();
    vec![
        Scenario {
            name: "clean-serial",
            faults: None,
            reliable: false,
            straggler: None,
            engine: EngineConfig::serial().with_trace(full),
        },
        Scenario {
            name: "clean-parallel",
            faults: None,
            reliable: false,
            straggler: None,
            engine: EngineConfig::parallel().with_threads(2).with_burst(false).with_trace(full),
        },
        Scenario {
            name: "lossy-serial",
            faults: Some(FaultPlan::drop_only(0.05, 0xC0FFEE)),
            reliable: true,
            straggler: None,
            engine: EngineConfig::serial().with_trace(full),
        },
        Scenario {
            name: "lossy-parallel",
            faults: Some(FaultPlan::drop_only(0.05, 0xC0FFEE)),
            reliable: true,
            straggler: None,
            engine: EngineConfig::parallel().with_threads(2).with_burst(false).with_trace(full),
        },
        // Fig. 16 straggler ablation: node 3 stalls 400 cycles per force
        // phase, the others fast-forward — the horizon-agreement frames
        // must land every worker on the same jump target every time.
        Scenario {
            name: "straggler-ff",
            faults: None,
            reliable: false,
            straggler: Some((3, 400)),
            engine: EngineConfig::serial().with_fast_forward(true).with_trace(full),
        },
    ]
}

#[test]
fn sharded_runs_match_oracle_bit_for_bit() {
    let sys = workload();
    for sc in scenarios() {
        let mut cfg = config(sc.faults.clone(), sc.reliable);
        cfg.straggler = sc.straggler;

        // In-process oracle with the same checkpoint segmentation.
        let dir_oracle = tmpdir(&format!("{}-oracle", sc.name));
        let ck_oracle = CheckpointConfig::new(EVERY, &dir_oracle).with_keep(0);
        let mut oracle = Cluster::new(cfg.clone(), &sys);
        let oracle_run = run_with_checkpoints(
            &mut oracle,
            STEPS,
            BUDGET,
            &sc.engine,
            Some(&ck_oracle),
            RunAccumulator::new(),
        )
        .expect("oracle completes");
        let oracle_state = final_state(&oracle, &sys);
        let oracle_ckpts = checkpoint_bytes(&oracle_run.checkpoints);

        for shards in [2usize, 4] {
            let ctx = format!("{} x{shards}", sc.name);
            let dir = tmpdir(&format!("{}-s{shards}", sc.name));
            let ck = CheckpointConfig::new(EVERY, &dir).with_keep(0);
            let run = run_sharded(
                &cfg,
                &sys,
                STEPS,
                &sc.engine,
                shards,
                ShardOpts { budget: BUDGET, ckpt: Some(ck), resume: None, obs: None, ..Default::default() },
            )
            .unwrap_or_else(|e| panic!("{ctx}: sharded run failed: {e}"));

            assert_eq!(run.report, oracle_run.report, "{ctx}: folded report drifted");
            let state = final_state(&run.replica, &sys);
            assert_eq!(state.0.pos, oracle_state.0.pos, "{ctx}: positions drifted");
            assert_eq!(state.0.vel, oracle_state.0.vel, "{ctx}: velocities drifted");
            assert_eq!(state.1, oracle_state.1, "{ctx}: force-bank bits drifted");
            assert_traces_equal(&run.traces, &oracle_run.traces, &ctx);
            assert_eq!(
                checkpoint_bytes(&run.checkpoints),
                oracle_ckpts,
                "{ctx}: checkpoint files not byte-identical"
            );

            let _ = std::fs::remove_dir_all(&dir);
        }
        let _ = std::fs::remove_dir_all(&dir_oracle);
    }
}

/// Satellite gate: the same protocol over loopback TCP ([`TcpLink`]
/// carries every control and mesh frame) is byte-identical to the
/// Unix-socket and in-process paths — the carrier cannot leak into the
/// simulation. One clean and one lossy scenario keep the matrix cheap;
/// the full scenario sweep above already covers the protocol itself.
#[test]
fn sharded_over_loopback_tcp_matches_oracle_bit_for_bit() {
    let sys = workload();
    for (name, faults, reliable) in [
        ("tcp-clean", None, false),
        ("tcp-lossy", Some(FaultPlan::drop_only(0.05, 0xC0FFEE)), true),
    ] {
        let cfg = config(faults, reliable);
        let engine = EngineConfig::serial().with_trace(TraceConfig::full());

        let dir_oracle = tmpdir(&format!("{name}-oracle"));
        let ck_oracle = CheckpointConfig::new(EVERY, &dir_oracle).with_keep(0);
        let mut oracle = Cluster::new(cfg.clone(), &sys);
        let oracle_run = run_with_checkpoints(
            &mut oracle,
            STEPS,
            BUDGET,
            &engine,
            Some(&ck_oracle),
            RunAccumulator::new(),
        )
        .expect("oracle completes");
        let oracle_state = final_state(&oracle, &sys);
        let oracle_ckpts = checkpoint_bytes(&oracle_run.checkpoints);

        let dir = tmpdir(&format!("{name}-tcp"));
        let ck = CheckpointConfig::new(EVERY, &dir).with_keep(0);
        let run = run_sharded(
            &cfg,
            &sys,
            STEPS,
            &engine,
            2,
            ShardOpts { budget: BUDGET, ckpt: Some(ck), resume: None, obs: None, tcp: true },
        )
        .unwrap_or_else(|e| panic!("{name}: TCP sharded run failed: {e}"));

        assert_eq!(run.report, oracle_run.report, "{name}: folded report drifted");
        let state = final_state(&run.replica, &sys);
        assert_eq!(state.0.pos, oracle_state.0.pos, "{name}: positions drifted");
        assert_eq!(state.0.vel, oracle_state.0.vel, "{name}: velocities drifted");
        assert_eq!(state.1, oracle_state.1, "{name}: force-bank bits drifted");
        assert_traces_equal(&run.traces, &oracle_run.traces, name);
        assert_eq!(
            checkpoint_bytes(&run.checkpoints),
            oracle_ckpts,
            "{name}: checkpoint files not byte-identical"
        );

        let _ = std::fs::remove_dir_all(&dir);
        let _ = std::fs::remove_dir_all(&dir_oracle);
    }
}

/// A burst-enabled single-process run legitimately produces a different
/// *engine* trace stream, but the report and physics are
/// engine-invariant — the sharded run must still match them.
#[test]
fn sharded_matches_burst_oracle_report_and_state() {
    let sys = workload();
    let cfg = config(None, false);
    let mut oracle = Cluster::new(cfg.clone(), &sys);
    let want = oracle
        .try_run_with(STEPS, BUDGET, &EngineConfig::parallel().with_threads(2))
        .expect("burst oracle completes");
    let want_state = final_state(&oracle, &sys);

    let run = run_sharded(
        &cfg,
        &sys,
        STEPS,
        &EngineConfig::parallel().with_threads(2),
        2,
        ShardOpts::default(),
    )
    .expect("sharded run completes");
    assert_eq!(run.report, want, "report drifted vs burst oracle");
    let state = final_state(&run.replica, &sys);
    assert_eq!(state.0.pos, want_state.0.pos);
    assert_eq!(state.0.vel, want_state.0.vel);
    assert_eq!(state.1, want_state.1);
}

// -------------------------------------------------------------------------
// Crash + resume on a different shard count
// -------------------------------------------------------------------------

#[test]
fn crash_then_resume_on_different_shard_count_matches_oracle() {
    const CRASH_NODE: u32 = 1;
    const CRASH_STEP: u64 = 5;
    let sys = workload();
    let engine = EngineConfig::serial().with_trace(TraceConfig::full());

    // Uninterrupted oracle with the same segmentation.
    let dir_oracle = tmpdir("resume-oracle");
    let ck_oracle = CheckpointConfig::new(EVERY, &dir_oracle).with_keep(0);
    let mut oracle = Cluster::new(config(None, false), &sys);
    let oracle_run = run_with_checkpoints(
        &mut oracle,
        STEPS,
        BUDGET,
        &engine,
        Some(&ck_oracle),
        RunAccumulator::new(),
    )
    .expect("oracle completes");
    let oracle_state = final_state(&oracle, &sys);

    // Crashing sharded run on 2 workers: node 1 dies in step 5, past
    // the step-4 checkpoint.
    let crash_plan = FaultPlan::none().with_crash(CRASH_NODE, CRASH_STEP);
    let dir = tmpdir("resume-crash");
    let ck = CheckpointConfig::new(EVERY, &dir).with_keep(0);
    let err = run_sharded(
        &config(Some(crash_plan.clone()), false),
        &sys,
        STEPS,
        &engine,
        2,
        ShardOpts { budget: BUDGET, ckpt: Some(ck.clone()), resume: None, obs: None, ..Default::default() },
    )
    .expect_err("crash directive must abort the sharded run");
    match err {
        ShardError::Cluster(ClusterError::Crashed(c)) => {
            assert_eq!(c.node, CRASH_NODE as usize, "wrong crash node");
            assert_eq!(c.step, CRASH_STEP, "wrong crash step");
        }
        other => panic!("expected injected crash, got {other}"),
    }

    // Resume from the newest checkpoint on a *different* shard count (4
    // workers), with the crash directive stripped.
    let latest = fasda_ckpt::latest_checkpoint(&dir)
        .expect("list checkpoints")
        .expect("a checkpoint exists");
    assert_eq!(fasda_ckpt::checkpoint_step(&latest), Some(4));
    let resumed = run_sharded(
        &config(Some(crash_plan.without_crash()), false),
        &sys,
        STEPS,
        &engine,
        4,
        ShardOpts { budget: BUDGET, ckpt: Some(ck), resume: Some(latest), obs: None, ..Default::default() },
    )
    .expect("resumed sharded run completes");

    assert_eq!(resumed.report, oracle_run.report, "whole-run report drifted after resume");
    let state = final_state(&resumed.replica, &sys);
    assert_eq!(state.0.pos, oracle_state.0.pos, "positions drifted after resume");
    assert_eq!(state.0.vel, oracle_state.0.vel, "velocities drifted after resume");
    assert_eq!(state.1, oracle_state.1, "force accumulators drifted after resume");

    // The re-run final segment's merged trace equals the oracle's last
    // segment trace.
    let last = resumed.traces.last().expect("tracing was on");
    let want_last = oracle_run.traces.last().expect("oracle traced");
    assert_eq!(last.nodes, want_last.nodes, "resumed final-segment trace drifted");
    assert_eq!(last.stalls, want_last.stalls, "resumed final-segment stalls drifted");

    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_dir_all(&dir_oracle);
}
