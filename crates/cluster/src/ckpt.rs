//! Deterministic checkpoint/restore and crash recovery for cluster runs.
//!
//! A run with checkpointing enabled is driven as a sequence of
//! *segments* of `every` timesteps: after each segment the cluster is
//! quiescent (every node `Done`, no flit in any ring, queue, packetizer
//! or fabric), its full microarchitectural state is serialized through
//! [`Cluster::snapshot_into`] into a versioned, CRC-framed `fckp`
//! container ([`fasda_ckpt`]), written atomically (write to a temp file,
//! then rename), and old checkpoints beyond the retention bound are
//! pruned. A crashed run — whether a real process death or the fault
//! plan's `crash=NODE@STEP` directive — recovers by rebuilding the
//! cluster from the same configuration and particle system, restoring
//! the latest checkpoint, and re-running the remaining segments; the
//! recovered run's final particle state, per-step records, merged
//! statistics, and per-node trace streams are **bit-identical** to an
//! uninterrupted run with the same segmentation (see `DESIGN.md` §9 for
//! the argument).
//!
//! Segmentation itself is observable (each segment re-arms every node at
//! a common cycle, like a fresh run), so the recovery oracle is the
//! *checkpointed* uninterrupted run, not the monolithic one. Physics is
//! unaffected either way — force accumulation is fixed-point and
//! order-invariant — only the cycle accounting differs.

use crate::driver::{sections, Cluster, ClusterError, EngineConfig};
use crate::report::{ClusterRunReport, NodeStepReport, RelSummary};
use fasda_ckpt::{
    checkpoint_path, prune_checkpoints, write_atomic, CkptError, Container, ContainerWriter,
    Persist, Reader, Writer,
};
pub use fasda_ckpt::latest_checkpoint;
pub use fasda_ckpt::policy;
use fasda_core::timed::TrafficCounters;
use fasda_sim::StatSet;
use fasda_trace::{Trace, TraceLevel};
use std::path::{Path, PathBuf};

/// Where and how often to checkpoint a run.
#[derive(Clone, Debug)]
pub struct CheckpointConfig {
    /// Checkpoint every `every` timesteps (also the segment length).
    pub every: u64,
    /// Directory for `ckpt-*.fckp` files (created on first write).
    pub dir: PathBuf,
    /// Keep the newest `keep` checkpoints; `0` keeps all.
    pub keep: usize,
}

impl CheckpointConfig {
    /// Checkpoint to `dir` every `every` steps, keeping the last 3.
    pub fn new(every: u64, dir: impl Into<PathBuf>) -> Self {
        CheckpointConfig {
            every: every.max(1),
            dir: dir.into(),
            keep: 3,
        }
    }

    /// Override the retention bound (`0` = keep all).
    pub fn with_keep(mut self, keep: usize) -> Self {
        self.keep = keep;
        self
    }
}

/// Cross-segment run aggregation. Lives *inside* each checkpoint (the
/// `runner` section) so a resumed run can report over the whole
/// trajectory, not just its own segments.
///
/// Per-segment quantities (records, merged stats, traffic, cycles) are
/// summed as segments complete. Fabric packet/bit counters, fault
/// tallies and reliability counters are cumulative *inside* the cluster
/// state (they survive snapshot/restore), so the latest segment's report
/// already carries their run totals — those fields are overwritten, not
/// summed.
#[derive(Clone, Debug, Default)]
pub struct RunAccumulator {
    /// Steps completed so far (absolute; segment targets are derived
    /// from this).
    pub steps_done: u64,
    /// Wall-clock cycles summed over completed segments.
    pub total_cycles: u64,
    /// Per-node per-step records of all completed segments, in
    /// completion order.
    pub records: Vec<NodeStepReport>,
    /// Cluster-merged utilization counters, accumulated across segments.
    pub stats: StatSet,
    /// Per-node traffic counters, accumulated across segments.
    pub per_node_traffic: Vec<TrafficCounters>,
    /// Cumulative fabric/fault/reliability scalars from the most recent
    /// segment report.
    pub pos_packets: u64,
    /// See [`RunAccumulator::pos_packets`].
    pub frc_packets: u64,
    /// See [`RunAccumulator::pos_packets`].
    pub pos_bits: u64,
    /// See [`RunAccumulator::pos_packets`].
    pub frc_bits: u64,
    /// Fabric clock of the run.
    pub clock_hz: f64,
    /// Timestep in femtoseconds.
    pub dt_fs: f64,
    /// Node count.
    pub nodes: usize,
    /// Faults injected so far (cumulative).
    pub faults_injected: u64,
    /// Reliability counters (cumulative), when the layer is on.
    pub reliability: Option<RelSummary>,
}

impl RunAccumulator {
    /// Fresh accumulator for a run starting at step 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fold one completed segment's report in. `report.steps` is the
    /// absolute step target the segment ran to.
    pub fn fold(&mut self, report: &ClusterRunReport) {
        self.steps_done = report.steps;
        self.total_cycles += report.total_cycles;
        self.records.extend_from_slice(&report.records);
        self.stats.accumulate_from(&report.stats);
        if self.per_node_traffic.is_empty() {
            self.per_node_traffic = report.per_node_traffic.clone();
        } else {
            for (mine, theirs) in self
                .per_node_traffic
                .iter_mut()
                .zip(report.per_node_traffic.iter())
            {
                mine.merge_from(theirs);
            }
        }
        self.pos_packets = report.pos_packets;
        self.frc_packets = report.frc_packets;
        self.pos_bits = report.pos_bits;
        self.frc_bits = report.frc_bits;
        self.clock_hz = report.clock_hz;
        self.dt_fs = report.dt_fs;
        self.nodes = report.nodes;
        self.faults_injected = report.faults_injected;
        self.reliability = report.reliability;
    }

    /// The whole-run report over every folded segment.
    pub fn into_report(self) -> ClusterRunReport {
        ClusterRunReport {
            steps: self.steps_done,
            total_cycles: self.total_cycles,
            records: self.records,
            stats: self.stats,
            per_node_traffic: self.per_node_traffic,
            pos_packets: self.pos_packets,
            frc_packets: self.frc_packets,
            pos_bits: self.pos_bits,
            frc_bits: self.frc_bits,
            clock_hz: self.clock_hz,
            dt_fs: self.dt_fs,
            nodes: self.nodes,
            faults_injected: self.faults_injected,
            reliability: self.reliability,
        }
    }
}

impl Persist for RunAccumulator {
    fn save(&self, w: &mut Writer) {
        w.put_u64(self.steps_done);
        w.put_u64(self.total_cycles);
        self.records.save(w);
        self.stats.save(w);
        self.per_node_traffic.save(w);
        w.put_u64(self.pos_packets);
        w.put_u64(self.frc_packets);
        w.put_u64(self.pos_bits);
        w.put_u64(self.frc_bits);
        w.put_f64(self.clock_hz);
        w.put_f64(self.dt_fs);
        w.put_usize(self.nodes);
        w.put_u64(self.faults_injected);
        self.reliability.save(w);
    }

    fn load(r: &mut Reader<'_>) -> Result<Self, CkptError> {
        Ok(RunAccumulator {
            steps_done: r.get_u64()?,
            total_cycles: r.get_u64()?,
            records: Persist::load(r)?,
            stats: Persist::load(r)?,
            per_node_traffic: Persist::load(r)?,
            pos_packets: r.get_u64()?,
            frc_packets: r.get_u64()?,
            pos_bits: r.get_u64()?,
            frc_bits: r.get_u64()?,
            clock_hz: r.get_f64()?,
            dt_fs: r.get_f64()?,
            nodes: r.get_usize()?,
            faults_injected: r.get_u64()?,
            reliability: Persist::load(r)?,
        })
    }
}

/// Serialize the quiescent cluster + accumulator into checkpoint
/// container bytes **in memory** — the drain half of a live migration.
/// The bytes are exactly what [`save_checkpoint`] would write to disk,
/// so a drained job handed to another worker resumes from the same
/// snapshot an on-disk recovery would.
pub fn drain_to_container(cluster: &Cluster, acc: &RunAccumulator) -> Vec<u8> {
    let mut cw = ContainerWriter::new();
    cluster.snapshot_into(&mut cw);
    let mut w = Writer::new();
    acc.save(&mut w);
    cw.push(sections::RUNNER, w);
    cw.finish()
}

/// Restore `cluster` (freshly built over the same configuration and
/// particle system) from in-memory container bytes — the resume half of
/// a live migration. Returns the accumulator of the completed segments.
pub fn resume_from_container(
    cluster: &mut Cluster,
    bytes: &[u8],
) -> Result<RunAccumulator, CkptError> {
    let container = Container::parse(bytes)?;
    cluster.restore_from(&container)?;
    RunAccumulator::load(&mut container.reader(sections::RUNNER)?)
}

/// Serialize the cluster + accumulator into a checkpoint file named
/// after the current step, atomically, then prune to the retention
/// bound. Returns the path written.
pub fn save_checkpoint(
    cluster: &Cluster,
    acc: &RunAccumulator,
    cfg: &CheckpointConfig,
) -> Result<PathBuf, CkptError> {
    let bytes = drain_to_container(cluster, acc);
    std::fs::create_dir_all(&cfg.dir)?;
    let path = checkpoint_path(&cfg.dir, cluster.current_step());
    write_atomic(&path, &bytes)?;
    if cfg.keep > 0 {
        prune_checkpoints(&cfg.dir, cfg.keep)?;
    }
    Ok(path)
}

/// Restore `cluster` (freshly built over the same configuration and
/// particle system) from a checkpoint file; returns the accumulator of
/// the completed segments. On any error the cluster may be partially
/// overwritten and must be rebuilt before retrying.
pub fn load_checkpoint(cluster: &mut Cluster, path: &Path) -> Result<RunAccumulator, CkptError> {
    let bytes = std::fs::read(path)?;
    let container = Container::parse(&bytes)?;
    cluster.restore_from(&container)?;
    RunAccumulator::load(&mut container.reader(sections::RUNNER)?)
}

/// [`load_checkpoint`] from the newest checkpoint in `dir`; `Ok(None)`
/// when the directory holds no checkpoint (the caller starts from
/// step 0).
pub fn resume_latest(
    cluster: &mut Cluster,
    dir: &Path,
) -> Result<Option<(PathBuf, RunAccumulator)>, CkptError> {
    match latest_checkpoint(dir)? {
        None => Ok(None),
        Some(path) => {
            let acc = load_checkpoint(cluster, &path)?;
            Ok(Some((path, acc)))
        }
    }
}

/// Why a checkpointed run did not complete.
#[derive(Debug)]
pub enum CkptRunError {
    /// The simulation itself failed (stall, deadlock, injected crash).
    Run(ClusterError),
    /// A checkpoint could not be written.
    Ckpt(CkptError),
}

impl std::fmt::Display for CkptRunError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CkptRunError::Run(e) => e.fmt(f),
            CkptRunError::Ckpt(e) => e.fmt(f),
        }
    }
}

impl std::error::Error for CkptRunError {}

impl From<ClusterError> for CkptRunError {
    fn from(e: ClusterError) -> Self {
        CkptRunError::Run(e)
    }
}

impl From<CkptError> for CkptRunError {
    fn from(e: CkptError) -> Self {
        CkptRunError::Ckpt(e)
    }
}

/// A completed checkpointed (or resumed) run.
#[derive(Debug)]
pub struct CheckpointedRun {
    /// Whole-run report (all segments, including pre-resume ones).
    pub report: ClusterRunReport,
    /// One flight-recorder trace per segment run *in this process*
    /// (empty when tracing is off). A resumed run's traces align with
    /// the suffix of the uninterrupted run's segment traces.
    pub traces: Vec<Trace>,
    /// Checkpoint files written, oldest first (retention may have
    /// deleted early ones by the time the run finishes).
    pub checkpoints: Vec<PathBuf>,
}

/// A scheduler's verdict after each completed segment of a controlled
/// run ([`run_with_checkpoints_ctl`]). Decisions are only taken at
/// quiescent segment boundaries, which is what makes drain (and thus
/// live migration) bit-exact: the state handed off is a checkpoint, not
/// an arbitrary mid-step machine state.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SegmentControl {
    /// Keep running the next segment.
    Continue,
    /// Stop here and hand back the quiescent state as in-memory
    /// container bytes (for migration to another worker).
    Drain,
    /// Stop here and discard the run (user cancellation). Any
    /// checkpoints already written stay on disk.
    Cancel,
}

/// Progress snapshot passed to the control callback after each segment.
#[derive(Clone, Debug)]
pub struct SegmentStatus {
    /// Absolute steps completed so far (including pre-resume segments).
    pub steps_done: u64,
    /// The run's total step target.
    pub steps_total: u64,
    /// Wall-clock cycles accumulated over the whole run so far.
    pub total_cycles: u64,
    /// Checkpoint written at this boundary, when checkpointing is on.
    pub checkpoint: Option<PathBuf>,
}

/// How a controlled run ([`run_with_checkpoints_ctl`]) ended.
#[derive(Debug)]
pub enum CkptRunOutcome {
    /// Ran to the step target.
    Completed(CheckpointedRun),
    /// Drained at a segment boundary: `run` reports the segments
    /// completed here, `container` is the quiescent state
    /// ([`drain_to_container`] bytes) to resume elsewhere via
    /// [`resume_from_container`].
    Drained {
        /// Partial run over the segments completed before the drain.
        run: CheckpointedRun,
        /// Quiescent checkpoint-container bytes at the drain boundary.
        container: Vec<u8>,
    },
    /// Cancelled at a segment boundary; the partial run is reported for
    /// accounting but the job is over.
    Cancelled(CheckpointedRun),
}

/// Drive `cluster` to `steps` total timesteps in checkpoint-sized
/// segments, snapshotting after each one. `acc` carries the progress of
/// any previously completed segments (from [`load_checkpoint`]); pass
/// [`RunAccumulator::new`] for a fresh run. With `ckpt: None` the run is
/// a single segment and nothing is written — the driver adds no
/// per-cycle work either way, so disabled checkpointing is free.
///
/// `cycle_budget` bounds the cycles *this call* may simulate across all
/// its segments.
pub fn run_with_checkpoints(
    cluster: &mut Cluster,
    steps: u64,
    cycle_budget: u64,
    engine: &EngineConfig,
    ckpt: Option<&CheckpointConfig>,
    acc: RunAccumulator,
) -> Result<CheckpointedRun, CkptRunError> {
    match run_with_checkpoints_ctl(cluster, steps, cycle_budget, engine, ckpt, acc, &mut |_| {
        SegmentControl::Continue
    })? {
        CkptRunOutcome::Completed(run) => Ok(run),
        // A Continue-only controller can neither drain nor cancel.
        CkptRunOutcome::Drained { .. } | CkptRunOutcome::Cancelled(_) => {
            unreachable!("uncontrolled run cannot drain or cancel")
        }
    }
}

/// [`run_with_checkpoints`] with a per-segment control hook: after every
/// segment (and its checkpoint write) `ctl` is consulted, and the run
/// continues, drains to in-memory container bytes, or cancels. This is
/// the job-facing run API the service layer schedules on — cancellation
/// and live migration both act here, never mid-segment.
pub fn run_with_checkpoints_ctl(
    cluster: &mut Cluster,
    steps: u64,
    cycle_budget: u64,
    engine: &EngineConfig,
    ckpt: Option<&CheckpointConfig>,
    mut acc: RunAccumulator,
    ctl: &mut dyn FnMut(&SegmentStatus) -> SegmentControl,
) -> Result<CkptRunOutcome, CkptRunError> {
    assert!(
        acc.steps_done <= steps,
        "accumulator is already past the requested step count"
    );
    let every = match ckpt {
        Some(c) => c.every,
        None => steps.saturating_sub(acc.steps_done).max(1),
    };
    let start_cycle = cluster.cycle;
    let mut traces = Vec::new();
    let mut checkpoints = Vec::new();
    while acc.steps_done < steps {
        let target = (acc.steps_done + every).min(steps);
        let spent = cluster.cycle - start_cycle;
        let report = cluster.try_run_with(target, cycle_budget.saturating_sub(spent), engine)?;
        if engine.trace.level != TraceLevel::Off {
            if let Some(t) = cluster.take_trace() {
                traces.push(t);
            }
        }
        acc.fold(&report);
        let mut written = None;
        if let Some(c) = ckpt {
            let path = save_checkpoint(cluster, &acc, c)?;
            checkpoints.push(path.clone());
            written = Some(path);
        }
        if acc.steps_done >= steps {
            break;
        }
        let status = SegmentStatus {
            steps_done: acc.steps_done,
            steps_total: steps,
            total_cycles: acc.total_cycles,
            checkpoint: written,
        };
        match ctl(&status) {
            SegmentControl::Continue => {}
            SegmentControl::Drain => {
                let container = drain_to_container(cluster, &acc);
                return Ok(CkptRunOutcome::Drained {
                    run: CheckpointedRun {
                        report: acc.into_report(),
                        traces,
                        checkpoints,
                    },
                    container,
                });
            }
            SegmentControl::Cancel => {
                return Ok(CkptRunOutcome::Cancelled(CheckpointedRun {
                    report: acc.into_report(),
                    traces,
                    checkpoints,
                }));
            }
        }
    }
    Ok(CkptRunOutcome::Completed(CheckpointedRun {
        report: acc.into_report(),
        traces,
        checkpoints,
    }))
}

/// Bounds for [`run_with_recovery`]'s restart loop.
#[derive(Clone, Debug)]
pub struct RecoveryPolicy {
    /// Give up (returning the last failure) after this many restarts.
    pub max_restarts: u32,
}

impl RecoveryPolicy {
    /// Allow up to `max_restarts` automatic restarts.
    pub fn new(max_restarts: u32) -> Self {
        RecoveryPolicy { max_restarts }
    }
}

impl Default for RecoveryPolicy {
    fn default() -> Self {
        RecoveryPolicy::new(4)
    }
}

/// A run that [`run_with_recovery`] drove to completion, possibly
/// through one or more restarts.
pub struct RecoveredRun {
    /// The completed run (whole-trajectory report, as if uninterrupted).
    pub run: CheckpointedRun,
    /// The final machine state, for `store_into`.
    pub cluster: Cluster,
    /// One human-readable line per restart taken, oldest first — empty
    /// when the run survived on the first attempt.
    pub restarts: Vec<String>,
}

/// Drive a run to completion through injected crashes and
/// partition-induced deadlocks: a rolling-recovery loop around
/// [`run_with_checkpoints`].
///
/// Each attempt builds a fresh [`Cluster`] over `sys` (crashed clusters
/// are poisoned and cannot be re-armed) and resumes from the newest
/// checkpoint in `ckpt.dir` — or replays from step 0 when the failure
/// beat the first checkpoint to disk. Checkpoints are only written at
/// quiescent segment boundaries, so the newest one always predates the
/// failure's damage.
///
/// What each failure teaches the next attempt:
/// * an injected **crash** strips exactly that `crash=NODE@STEP`
///   directive ([`FaultPlan::without_crash_at`]) — later staggered
///   crashes still fire, each recovered in its own restart;
/// * a **deadlock diagnosed as an outage** (the fault layer latched a
///   flap/partition before traffic starved) strips every window
///   directive ([`FaultPlan::without_windows`]) — with the partition
///   lifted the replay completes; an *organic* deadlock (no outage
///   fired) is not recoverable and is returned as the error.
///
/// The recovered run's final state is bit-identical to an uninterrupted
/// run with the same segmentation: every attempt replays from a
/// quiescent snapshot under the same physics, and the stripped
/// directives only ever removed traffic that reliability (or the replay
/// itself) re-delivers. The fault-plan fingerprint in each checkpoint
/// covers only the recovery-invariant core, so a stripped-plan resume
/// never trips `ConfigMismatch`.
pub fn run_with_recovery(
    sys: &fasda_md::system::ParticleSystem,
    cfg: &crate::driver::ClusterConfig,
    steps: u64,
    cycle_budget: u64,
    engine: &EngineConfig,
    ckpt: &CheckpointConfig,
    policy: &RecoveryPolicy,
) -> Result<RecoveredRun, CkptRunError> {
    let mut plan = cfg.faults.clone();
    let mut restarts: Vec<String> = Vec::new();
    loop {
        let mut run_cfg = cfg.clone();
        run_cfg.faults = plan
            .clone()
            .filter(|p| !p.is_none() || !p.crashes.is_empty());
        let mut cluster = Cluster::new(run_cfg, sys);
        let acc = if restarts.is_empty() {
            RunAccumulator::new()
        } else {
            match resume_latest(&mut cluster, &ckpt.dir)? {
                Some((_, acc)) => acc,
                None => RunAccumulator::new(),
            }
        };
        match run_with_checkpoints(&mut cluster, steps, cycle_budget, engine, Some(ckpt), acc) {
            Ok(run) => {
                return Ok(RecoveredRun {
                    run,
                    cluster,
                    restarts,
                })
            }
            Err(CkptRunError::Run(err)) if (restarts.len() as u32) < policy.max_restarts => {
                match err {
                    ClusterError::Crashed(c) => {
                        plan = plan.map(|p| p.without_crash_at(c.node as u32, c.step));
                        restarts.push(format!(
                            "crash: node {} at step {} (cycle {}); resuming from latest checkpoint",
                            c.node, c.step, c.at_cycle
                        ));
                    }
                    ClusterError::Deadlock(d) if !d.outages.is_empty() => {
                        plan = plan.map(|p| p.without_windows());
                        restarts.push(format!(
                            "outage deadlock at cycle {} [{}]; windows lifted, resuming from latest checkpoint",
                            d.at_cycle,
                            d.outages.join(", ")
                        ));
                    }
                    other => return Err(other.into()),
                }
            }
            Err(e) => return Err(e),
        }
    }
}

/// The newest checkpoint step present in **every** directory — the
/// rolling-recovery restore point for a deployment whose per-worker
/// checkpoint directories hold mixed-age tails (a worker that died
/// early stops writing; retention prunes the survivors' old files).
/// Returns the step and one path per directory, in input order;
/// `Ok(None)` when no common step survives (or any directory is empty
/// or missing).
pub fn newest_consistent(dirs: &[PathBuf]) -> Result<Option<(u64, Vec<PathBuf>)>, CkptError> {
    let mut sets: Vec<std::collections::BTreeMap<u64, PathBuf>> = Vec::with_capacity(dirs.len());
    for d in dirs {
        if !d.is_dir() {
            return Ok(None);
        }
        sets.push(fasda_ckpt::list_checkpoints(d)?.into_iter().collect());
    }
    let Some(first) = sets.first() else {
        return Ok(None);
    };
    for &step in first.keys().rev() {
        if sets.iter().all(|s| s.contains_key(&step)) {
            let paths = sets.iter().map(|s| s[&step].clone()).collect();
            return Ok(Some((step, paths)));
        }
    }
    Ok(None)
}
