//! Sharded multi-process cycle engine (DESIGN.md §11).
//!
//! Partitions the simulated hyper-ring nodes into `S` contiguous shards,
//! each owned by a **worker** running the ordinary [`Cluster`] engine
//! over its slice, and reproduces the in-process oracle bit for bit:
//! same particle state, same flight-recorder streams, same folded
//! report, same checkpoint files.
//!
//! ## Why this is exact, not approximate
//!
//! The oracle's cycle loop is already two-phase: a compute phase in
//! which every chip ticks against frozen state, then serial exchange /
//! network / delivery sweeps. Cross-node influence flows **only**
//! through the switch fabrics and inboxes, and every message generated
//! at cycle `T` is due no earlier than `T + 2` (≥1 cycle of port
//! serialization plus the store-and-forward hop, observed next
//! delivery sweep). A worker can therefore run the whole cycle `T`
//! locally and admit *remote* traffic after the fact, as long as
//! admission replays the oracle's global order. That order is
//! `(stage, src)` — stage 0 for fresh sends, 1 for retransmissions, 2
//! for acks, each phase walking nodes in ascending order — which is
//! exactly how [`Cluster::admit_wire_events`] sorts the concatenated
//! per-shard buffers. Destination-port contention clocks and inbox
//! sequence numbers come out identical, so everything downstream does
//! too.
//!
//! ## Per-cycle frame protocol
//!
//! Workers are fully connected (one [`FrameLink`] per unordered pair;
//! Unix-domain sockets between processes, socketpairs between harness
//! threads). Every global cycle each worker:
//!
//! 1. checks the crash directive (owner only) and, if it fires,
//!    broadcasts a *crash* frame A so every worker fails identically;
//! 2. runs compute → exchange → network locally, then broadcasts frame
//!    **A**: the stage-0/1 wire events its nodes put on the fabric;
//! 3. merges all frames A and admits them, runs the delivery sweep,
//!    then broadcasts frame **B**: stage-2 acks plus the `stepped` /
//!    `delivered` / `done` flags and its packets-lost delta;
//! 4. merges all frames B, admits the acks, combines the flags
//!    (OR / OR / AND) and reconciles the global lost tally;
//! 5. when (and only when) the globally-agreed deadlock or
//!    fast-forward scan fires, broadcasts frame **C**: its local event
//!    horizon; the combined horizon drives an identical jump — or
//!    proves a global deadlock — on every worker.
//!
//! Every branch above is a function of globally-agreed values, so the
//! workers stay in lockstep without a central sequencer; the barrier is
//! the frame exchange itself.
//!
//! ## Coordinator
//!
//! The coordinator never simulates. It drives checkpoint-sized
//! segments ([`run_with_checkpoints`]'s loop verbatim), collects each
//! worker's segment result — records, stats, traffic, trace slices and
//! a full state container — and *splices* the owned slices into its
//! replica [`Cluster`]. Scalar tallies shared across shards (fabric
//! packet/bit/lost counters, fault and ack counts) are reconciled as
//! `base + Σ deltas`; per-link counters travel inside the spliced maps.
//! The replica is then bit-identical to an in-process cluster at the
//! same step boundary, which is what makes quiescent-step checkpoints —
//! and `--resume` across a *different* shard count — work unchanged.

use crate::ckpt::{save_checkpoint, CheckpointConfig, RunAccumulator};
use crate::driver::{
    sections, Cluster, ClusterConfig, ClusterError, ClusterStalled, CrashInjected,
    DeadlockDetected, EngineConfig, ExchangeBuf, NextEvent, NodePhase, WireEvent,
    DEADLOCK_SCAN_INTERVAL, MAX_RUN_CYCLES,
};
use crate::obs::{FleetBeat, FleetObs, ObsDelta, ObsSinkConfig};
use crate::report::{ClusterRunReport, NodeStepReport, RelSummary};
use fasda_obs::model::STALL_CLASSES;
use std::collections::BTreeMap;
use fasda_ckpt::{crc32, CkptError, Container, ContainerWriter, Persist, Reader, Writer};
use fasda_net::sync::SyncMode;
use fasda_net::transport::{FrameLink, LinkError, MemLink, SocketLink, TcpLink};
use fasda_sim::StatSet;
use fasda_trace::{NodeStream, StallLedger, Trace, TraceLevel};
use rayon::{ThreadPool, ThreadPoolBuilder};
use std::ops::Range;
use std::path::PathBuf;
use std::sync::Arc;

use fasda_core::timed::TrafficCounters;
use fasda_md::system::ParticleSystem;

/// Section label stamped on every shard frame (error messages only).
const FRAME: &str = "shard-frame";

// ---------------------------------------------------------------------------
// Errors
// ---------------------------------------------------------------------------

/// Why a sharded run failed.
#[derive(Debug)]
pub enum ShardError {
    /// The simulation itself failed (stall / deadlock / injected crash)
    /// — same vocabulary as the in-process engine.
    Cluster(ClusterError),
    /// Checkpoint or frame (de)serialization failed.
    Ckpt(CkptError),
    /// A shard link failed mid-exchange (worker death, torn frame).
    Link(LinkError),
    /// Socket setup / process spawning failed.
    Io(std::io::Error),
    /// A peer sent a frame the protocol does not allow here.
    Protocol(String),
    /// The configuration cannot be sharded (see [`validate_sharding`]).
    Unsupported(String),
    /// A worker reported a transport-level failure.
    Worker(String),
}

impl std::fmt::Display for ShardError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShardError::Cluster(e) => write!(f, "sharded run failed: {e}"),
            ShardError::Ckpt(e) => write!(f, "shard checkpoint error: {e}"),
            ShardError::Link(e) => write!(f, "shard link error: {e}"),
            ShardError::Io(e) => write!(f, "shard I/O error: {e}"),
            ShardError::Protocol(m) => write!(f, "shard protocol error: {m}"),
            ShardError::Unsupported(m) => write!(f, "sharding unsupported: {m}"),
            ShardError::Worker(m) => write!(f, "shard worker failed: {m}"),
        }
    }
}

impl std::error::Error for ShardError {}

impl From<ClusterError> for ShardError {
    fn from(e: ClusterError) -> Self {
        ShardError::Cluster(e)
    }
}
impl From<CkptError> for ShardError {
    fn from(e: CkptError) -> Self {
        ShardError::Ckpt(e)
    }
}
impl From<LinkError> for ShardError {
    fn from(e: LinkError) -> Self {
        ShardError::Link(e)
    }
}
impl From<std::io::Error> for ShardError {
    fn from(e: std::io::Error) -> Self {
        ShardError::Io(e)
    }
}

// ---------------------------------------------------------------------------
// Partitioning and validation
// ---------------------------------------------------------------------------

/// Contiguous near-even node ranges, one per shard: the first
/// `nodes % shards` shards get one extra node. Contiguity in node-id
/// order is what lets the coordinator fold per-shard record and trace
/// slices by plain concatenation.
pub fn shard_ranges(nodes: usize, shards: usize) -> Vec<Range<usize>> {
    assert!(shards >= 1 && shards <= nodes);
    let base = nodes / shards;
    let extra = nodes % shards;
    let mut ranges = Vec::with_capacity(shards);
    let mut start = 0;
    for s in 0..shards {
        let len = base + usize::from(s < extra);
        ranges.push(start..start + len);
        start += len;
    }
    debug_assert_eq!(start, nodes);
    ranges
}

/// Refuse configurations whose global serial state cannot be
/// partitioned across workers.
pub fn validate_sharding(
    cfg: &ClusterConfig,
    shards: usize,
    nodes: usize,
) -> Result<(), ShardError> {
    if shards == 0 {
        return Err(ShardError::Unsupported("--shards must be at least 1".into()));
    }
    if shards > nodes {
        return Err(ShardError::Unsupported(format!(
            "{shards} shards over {nodes} nodes: every shard must own at least one node"
        )));
    }
    if !matches!(cfg.sync, SyncMode::Chained) {
        return Err(ShardError::Unsupported(
            "bulk synchronization uses a central barrier and cannot be sharded; \
             use chained sync"
                .into(),
        ));
    }
    if cfg.loss.is_some() {
        return Err(ShardError::Unsupported(
            "the legacy fabric loss model draws from one global RNG whose order \
             cannot be partitioned; use --fault-plan 'drop=P,seed=S' instead"
                .into(),
        ));
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Wire codecs
// ---------------------------------------------------------------------------

impl Persist for WireEvent {
    fn save(&self, w: &mut Writer) {
        w.put_u8(self.stage);
        w.put_u32(self.src);
        w.put_u32(self.dst);
        w.put_u64(self.arrive);
        w.put_u64(self.extra);
        self.msg.save(w);
    }
    fn load(r: &mut Reader<'_>) -> Result<Self, CkptError> {
        Ok(WireEvent {
            stage: r.get_u8()?,
            src: r.get_u32()?,
            dst: r.get_u32()?,
            arrive: r.get_u64()?,
            extra: r.get_u64()?,
            msg: Persist::load(r)?,
        })
    }
}

impl Persist for NextEvent {
    fn save(&self, w: &mut Writer) {
        match self {
            NextEvent::Busy => w.put_u8(0),
            NextEvent::At(t) => {
                w.put_u8(1);
                w.put_u64(*t);
            }
            NextEvent::Never => w.put_u8(2),
        }
    }
    fn load(r: &mut Reader<'_>) -> Result<Self, CkptError> {
        match r.get_u8()? {
            0 => Ok(NextEvent::Busy),
            1 => Ok(NextEvent::At(r.get_u64()?)),
            2 => Ok(NextEvent::Never),
            t => Err(r.malformed(format!("invalid horizon tag {t}"))),
        }
    }
}

/// Injected-crash announcement carried in a frame A: every worker
/// returns the identical [`CrashInjected`] the oracle would have.
#[derive(Clone, Copy, Debug)]
struct CrashInfo {
    at_cycle: u64,
    node: u32,
    step: u64,
    /// Global packets-lost tally as of the previous cycle's
    /// reconciliation — the oracle's loop-top value.
    lost: u64,
}

impl Persist for CrashInfo {
    fn save(&self, w: &mut Writer) {
        w.put_u64(self.at_cycle);
        w.put_u32(self.node);
        w.put_u64(self.step);
        w.put_u64(self.lost);
    }
    fn load(r: &mut Reader<'_>) -> Result<Self, CkptError> {
        Ok(CrashInfo {
            at_cycle: r.get_u64()?,
            node: r.get_u32()?,
            step: r.get_u64()?,
            lost: r.get_u64()?,
        })
    }
}

/// Worker↔worker per-cycle frames.
enum MeshFrame {
    /// Frame A: stage-0/1 wire events, or a crash announcement.
    Events {
        crash: Option<CrashInfo>,
        events: Vec<WireEvent>,
    },
    /// Frame B: stage-2 acks plus the cycle's global-progress votes.
    /// `obs` piggybacks the sender's telemetry sample on the cycles
    /// where its shard crosses a heartbeat boundary (None otherwise —
    /// the common case, one byte on the wire).
    Tally {
        events: Vec<WireEvent>,
        stepped: bool,
        delivered: bool,
        done: bool,
        lost_delta: u64,
        obs: Option<ObsDelta>,
    },
    /// Frame C: local event horizon for a deadlock / fast-forward scan.
    Horizon(NextEvent),
    /// Mesh handshake: the connecting worker announces its shard index.
    Id(u32),
}

impl MeshFrame {
    fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new();
        match self {
            MeshFrame::Events { crash, events } => {
                w.put_u8(0);
                crash.save(&mut w);
                events.save(&mut w);
            }
            MeshFrame::Tally { events, stepped, delivered, done, lost_delta, obs } => {
                w.put_u8(1);
                events.save(&mut w);
                w.put_bool(*stepped);
                w.put_bool(*delivered);
                w.put_bool(*done);
                w.put_u64(*lost_delta);
                obs.save(&mut w);
            }
            MeshFrame::Horizon(h) => {
                w.put_u8(2);
                h.save(&mut w);
            }
            MeshFrame::Id(i) => {
                w.put_u8(3);
                w.put_u32(*i);
            }
        }
        w.into_bytes()
    }

    fn decode(bytes: &[u8]) -> Result<Self, CkptError> {
        let mut r = Reader::new(bytes, FRAME);
        match r.get_u8()? {
            0 => Ok(MeshFrame::Events { crash: Persist::load(&mut r)?, events: Persist::load(&mut r)? }),
            1 => Ok(MeshFrame::Tally {
                events: Persist::load(&mut r)?,
                stepped: r.get_bool()?,
                delivered: r.get_bool()?,
                done: r.get_bool()?,
                lost_delta: r.get_u64()?,
                obs: Persist::load(&mut r)?,
            }),
            2 => Ok(MeshFrame::Horizon(Persist::load(&mut r)?)),
            3 => Ok(MeshFrame::Id(r.get_u32()?)),
            t => Err(r.malformed(format!("invalid mesh frame tag {t}"))),
        }
    }
}

/// One flight-recorder trace slice shipped by a worker: its owned node
/// streams, the (globally identical) engine stream, and the stall
/// ledger it attributed.
struct TraceShard {
    level: Option<TraceLevel>,
    nodes: Vec<NodeStream>,
    engine: NodeStream,
    stalls: StallLedger,
}

impl Persist for TraceShard {
    fn save(&self, w: &mut Writer) {
        self.level.save(w);
        self.nodes.save(w);
        self.engine.save(w);
        self.stalls.save(w);
    }
    fn load(r: &mut Reader<'_>) -> Result<Self, CkptError> {
        Ok(TraceShard {
            level: Persist::load(r)?,
            nodes: Persist::load(r)?,
            engine: Persist::load(r)?,
            stalls: Persist::load(r)?,
        })
    }
}

/// A worker's successful segment result: everything the coordinator
/// needs to fold the segment report and splice its replica.
struct SegmentOk {
    end_cycle: u64,
    skipped: u64,
    records: Vec<NodeStepReport>,
    stats: StatSet,
    /// Owned nodes' flit-level traffic counters, node order.
    traffic: Vec<TrafficCounters>,
    /// Cumulative-since-worker-start deltas of the shared scalar
    /// tallies. Admission-side counters (packets, bits) partition by
    /// destination owner; loss counters by source owner — either way
    /// the per-worker deltas sum to the oracle's global tally.
    d_pos_packets: u64,
    d_frc_packets: u64,
    d_pos_bits: u64,
    d_frc_bits: u64,
    d_pos_lost: u64,
    d_frc_lost: u64,
    d_faults: [u64; 5],
    d_acks: u64,
    d_corrupt: u64,
    trace: Option<TraceShard>,
    /// Full state container (`snapshot_into` bytes); the coordinator
    /// splices the owned slices out of it.
    container: Vec<u8>,
}

impl Persist for SegmentOk {
    fn save(&self, w: &mut Writer) {
        w.put_u64(self.end_cycle);
        w.put_u64(self.skipped);
        self.records.save(w);
        self.stats.save(w);
        self.traffic.save(w);
        w.put_u64(self.d_pos_packets);
        w.put_u64(self.d_frc_packets);
        w.put_u64(self.d_pos_bits);
        w.put_u64(self.d_frc_bits);
        w.put_u64(self.d_pos_lost);
        w.put_u64(self.d_frc_lost);
        for d in self.d_faults {
            w.put_u64(d);
        }
        w.put_u64(self.d_acks);
        w.put_u64(self.d_corrupt);
        self.trace.save(w);
        self.container.save(w);
    }
    fn load(r: &mut Reader<'_>) -> Result<Self, CkptError> {
        Ok(SegmentOk {
            end_cycle: r.get_u64()?,
            skipped: r.get_u64()?,
            records: Persist::load(r)?,
            stats: Persist::load(r)?,
            traffic: Persist::load(r)?,
            d_pos_packets: r.get_u64()?,
            d_frc_packets: r.get_u64()?,
            d_pos_bits: r.get_u64()?,
            d_frc_bits: r.get_u64()?,
            d_pos_lost: r.get_u64()?,
            d_frc_lost: r.get_u64()?,
            d_faults: {
                let mut d = [0u64; 5];
                for v in &mut d {
                    *v = r.get_u64()?;
                }
                d
            },
            d_acks: r.get_u64()?,
            d_corrupt: r.get_u64()?,
            trace: Persist::load(r)?,
            container: Persist::load(r)?,
        })
    }
}

/// A worker's failed segment: the owned share of the oracle's error.
/// The coordinator concatenates shares in shard order — which is node
/// order — to rebuild the exact in-process [`ClusterError`].
enum SegmentFail {
    Stalled {
        at_cycle: u64,
        /// Owned nodes' `(step, phase)` in node order.
        nodes: Vec<(u64, String)>,
        lost: u64,
    },
    Deadlock {
        at_cycle: u64,
        /// Owned starving nodes: `(node, step, phase)`.
        starving: Vec<(u64, u64, String)>,
        lost: u64,
        /// Flap/partition directives this worker saw latch — the
        /// coordinator unions the shares into the oracle's diagnosis.
        outages: Vec<String>,
    },
    Crashed {
        at_cycle: u64,
        node: u32,
        step: u64,
        lost: u64,
    },
    /// The worker's mesh links failed (a peer died mid-exchange).
    Link(String),
}

impl Persist for SegmentFail {
    fn save(&self, w: &mut Writer) {
        match self {
            SegmentFail::Stalled { at_cycle, nodes, lost } => {
                w.put_u8(0);
                w.put_u64(*at_cycle);
                w.put_usize(nodes.len());
                for (step, phase) in nodes {
                    w.put_u64(*step);
                    w.put_str(phase);
                }
                w.put_u64(*lost);
            }
            SegmentFail::Deadlock { at_cycle, starving, lost, outages } => {
                w.put_u8(1);
                w.put_u64(*at_cycle);
                w.put_usize(starving.len());
                for (node, step, phase) in starving {
                    w.put_u64(*node);
                    w.put_u64(*step);
                    w.put_str(phase);
                }
                w.put_u64(*lost);
                outages.save(w);
            }
            SegmentFail::Crashed { at_cycle, node, step, lost } => {
                w.put_u8(2);
                w.put_u64(*at_cycle);
                w.put_u32(*node);
                w.put_u64(*step);
                w.put_u64(*lost);
            }
            SegmentFail::Link(msg) => {
                w.put_u8(3);
                w.put_str(msg);
            }
        }
    }
    fn load(r: &mut Reader<'_>) -> Result<Self, CkptError> {
        match r.get_u8()? {
            0 => {
                let at_cycle = r.get_u64()?;
                let n = r.get_len()?;
                let mut nodes = Vec::with_capacity(n);
                for _ in 0..n {
                    nodes.push((r.get_u64()?, r.get_str()?));
                }
                Ok(SegmentFail::Stalled { at_cycle, nodes, lost: r.get_u64()? })
            }
            1 => {
                let at_cycle = r.get_u64()?;
                let n = r.get_len()?;
                let mut starving = Vec::with_capacity(n);
                for _ in 0..n {
                    starving.push((r.get_u64()?, r.get_u64()?, r.get_str()?));
                }
                let lost = r.get_u64()?;
                Ok(SegmentFail::Deadlock { at_cycle, starving, lost, outages: Persist::load(r)? })
            }
            2 => Ok(SegmentFail::Crashed {
                at_cycle: r.get_u64()?,
                node: r.get_u32()?,
                step: r.get_u64()?,
                lost: r.get_u64()?,
            }),
            3 => Ok(SegmentFail::Link(r.get_str()?)),
            t => Err(r.malformed(format!("invalid segment-fail tag {t}"))),
        }
    }
}

/// Coordinator↔worker control frames.
enum CtlFrame {
    /// Worker → coordinator: shard index + config fingerprint + the
    /// address peers can dial this worker's mesh listener at (a Unix
    /// socket path or a TCP `host:port`, matching the rendezvous
    /// carrier).
    Hello { index: u32, meta_crc: u32, mesh_addr: String },
    /// Coordinator → workers: proceed (optionally restoring a
    /// checkpoint first). `peers` is every worker's advertised mesh
    /// address in shard order — the connection table for the full mesh.
    Go { resume: Option<String>, peers: Vec<String> },
    /// Run one segment to the absolute step `target` under `budget`
    /// remaining cycles.
    Run { target: u64, budget: u64 },
    Done(Box<SegmentOk>),
    Fail(SegmentFail),
    Shutdown,
    /// Worker 0 → coordinator: an assembled fleet heartbeat. May arrive
    /// any time between `Run` and the segment result; the coordinator's
    /// collect loop drains them without disturbing the protocol.
    Beat(Box<FleetBeat>),
}

impl CtlFrame {
    fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new();
        match self {
            CtlFrame::Hello { index, meta_crc, mesh_addr } => {
                w.put_u8(0);
                w.put_u32(*index);
                w.put_u32(*meta_crc);
                w.put_str(mesh_addr);
            }
            CtlFrame::Go { resume, peers } => {
                w.put_u8(1);
                resume.save(&mut w);
                peers.save(&mut w);
            }
            CtlFrame::Run { target, budget } => {
                w.put_u8(2);
                w.put_u64(*target);
                w.put_u64(*budget);
            }
            CtlFrame::Done(ok) => {
                w.put_u8(3);
                ok.save(&mut w);
            }
            CtlFrame::Fail(f) => {
                w.put_u8(4);
                f.save(&mut w);
            }
            CtlFrame::Shutdown => w.put_u8(5),
            CtlFrame::Beat(fb) => {
                w.put_u8(6);
                fb.save(&mut w);
            }
        }
        w.into_bytes()
    }

    fn decode(bytes: &[u8]) -> Result<Self, CkptError> {
        let mut r = Reader::new(bytes, FRAME);
        match r.get_u8()? {
            0 => Ok(CtlFrame::Hello {
                index: r.get_u32()?,
                meta_crc: r.get_u32()?,
                mesh_addr: r.get_str()?,
            }),
            1 => Ok(CtlFrame::Go { resume: Persist::load(&mut r)?, peers: Persist::load(&mut r)? }),
            2 => Ok(CtlFrame::Run { target: r.get_u64()?, budget: r.get_u64()? }),
            3 => Ok(CtlFrame::Done(Box::new(Persist::load(&mut r)?))),
            4 => Ok(CtlFrame::Fail(Persist::load(&mut r)?)),
            5 => Ok(CtlFrame::Shutdown),
            6 => Ok(CtlFrame::Beat(Box::new(Persist::load(&mut r)?))),
            t => Err(r.malformed(format!("invalid control frame tag {t}"))),
        }
    }
}

// ---------------------------------------------------------------------------
// Scalar reconciliation
// ---------------------------------------------------------------------------

/// Shared scalar tallies at a known-identical point (worker start /
/// coordinator start): the base the per-worker deltas are measured
/// against. Every worker restores from the same bytes (or starts
/// fresh), so all bases agree.
#[derive(Clone, Copy, Debug, Default)]
struct ScalarBase {
    pos_packets: u64,
    frc_packets: u64,
    pos_bits: u64,
    frc_bits: u64,
    pos_lost: u64,
    frc_lost: u64,
    faults: [u64; 5],
    acks: u64,
    corrupt: u64,
}

impl ScalarBase {
    fn of(cl: &Cluster) -> Self {
        ScalarBase {
            pos_packets: cl.pos_fabric.packets,
            frc_packets: cl.frc_fabric.packets,
            pos_bits: cl.pos_fabric.bits_sent,
            frc_bits: cl.frc_fabric.bits_sent,
            pos_lost: cl.pos_fabric.packets_lost,
            frc_lost: cl.frc_fabric.packets_lost,
            faults: cl.faults.as_ref().map_or([0; 5], |f| f.injected),
            acks: cl.rel.as_ref().map_or(0, |r| r.acks_sent),
            corrupt: cl.rel.as_ref().map_or(0, |r| r.corrupt_dropped),
        }
    }
}

// ---------------------------------------------------------------------------
// Worker
// ---------------------------------------------------------------------------

fn broadcast(mesh: &mut [Box<dyn FrameLink>], frame: &MeshFrame) -> Result<(), LinkError> {
    let payload = frame.encode();
    for link in mesh.iter_mut() {
        link.send_frame(&payload)?;
    }
    Ok(())
}

fn owned_states(cl: &Cluster) -> Vec<(u64, String)> {
    cl.owned_range()
        .map(|n| (cl.state[n].step, format!("{:?}", cl.state[n].phase)))
        .collect()
}

fn owned_starving(cl: &Cluster) -> Vec<(u64, u64, String)> {
    cl.owned_range()
        .filter(|&n| cl.state[n].phase != NodePhase::Done)
        .map(|n| (n as u64, cl.state[n].step, format!("{:?}", cl.state[n].phase)))
        .collect()
}

/// Window directives this worker saw latch on its owned source links —
/// its share of the oracle's partition-vs-deadlock diagnosis.
fn owned_outages(cl: &Cluster) -> Vec<String> {
    cl.faults.as_ref().map(|f| f.fired_outages()).unwrap_or_default()
}

/// Combine per-worker event horizons exactly as the oracle's single
/// full-cluster scan would: any busy chip wins, otherwise the earliest
/// scheduled event, otherwise a proven global deadlock.
fn combine_horizons(horizons: &[NextEvent]) -> NextEvent {
    let mut best: Option<u64> = None;
    for h in horizons {
        match h {
            NextEvent::Busy => return NextEvent::Busy,
            NextEvent::At(t) => best = Some(best.map_or(*t, |b| b.min(*t))),
            NextEvent::Never => {}
        }
    }
    match best {
        Some(t) => NextEvent::At(t),
        None => NextEvent::Never,
    }
}

/// Worker-side heartbeat state. Every worker samples its own shard
/// when its slowest owned node crosses a heartbeat boundary and ships
/// the sample on that cycle's Tally frame; worker 0 additionally folds
/// everyone's samples into [`FleetBeat`]s for the coordinator. All
/// state here is wall-clock-side — the simulated run is untouched, so
/// sharded runs stay bit-identical with heartbeats on or off.
struct ObsShard {
    /// Heartbeat cadence in steps (0 = off).
    every: u64,
    /// This worker's shard index.
    index: u32,
    shards: usize,
    /// Next boundary this shard owes a sample for.
    next_due: u64,
    /// Ledger totals banked from already-completed segments (owned
    /// nodes only) — [`Cluster::arm_run`] resets the live ledger per
    /// segment, so cumulative totals are `banked + live`.
    prod_acc: u64,
    stall_acc: [u64; STALL_CLASSES],
    /// Worker 0 only: boundary → per-shard samples collected so far.
    pending: BTreeMap<u64, Vec<Option<ObsDelta>>>,
    beats: u64,
}

impl ObsShard {
    fn new(every: u64, index: u32, shards: usize) -> Self {
        ObsShard {
            every,
            index,
            shards,
            next_due: every.max(1),
            prod_acc: 0,
            stall_acc: [0; STALL_CLASSES],
            pending: BTreeMap::new(),
            beats: 0,
        }
    }

    /// Owned-node ledger totals of the current segment plus the banked
    /// totals of completed ones.
    fn owned_totals(&self, cl: &Cluster) -> (u64, [u64; STALL_CLASSES]) {
        let mut prod = self.prod_acc;
        let mut stalls = self.stall_acc;
        for node in cl.owned_range() {
            let t = cl.tr_stalls.node_total(node);
            prod += t.productive;
            for (acc, v) in stalls.iter_mut().zip(t.stalled.iter()) {
                *acc += v;
            }
        }
        (prod, stalls)
    }

    /// Retransmissions originated by owned nodes.
    fn owned_retransmits(&self, cl: &Cluster) -> u64 {
        let Some(rel) = &cl.rel else { return 0 };
        cl.owned_range()
            .map(|n| {
                rel.tx[n]
                    .iter()
                    .flat_map(|links| links.values())
                    .map(|s| s.retransmits)
                    .sum::<u64>()
            })
            .sum()
    }

    /// Bank the finishing segment's ledger totals before the segment
    /// result (and the trace, which carries the ledger away) ships.
    fn bank_segment(&mut self, cl: &Cluster) {
        if self.every == 0 {
            return;
        }
        for node in cl.owned_range() {
            let t = cl.tr_stalls.node_total(node);
            self.prod_acc += t.productive;
            for (acc, v) in self.stall_acc.iter_mut().zip(t.stalled.iter()) {
                *acc += v;
            }
        }
    }

    /// Sample this shard if its slowest owned node has crossed the next
    /// heartbeat boundary. At most one boundary fires per cycle; a
    /// shard that somehow skipped past several catches up on the
    /// following cycles.
    fn due(&mut self, cl: &Cluster) -> Option<ObsDelta> {
        if self.every == 0 {
            return None;
        }
        let min_step = cl.owned_range().map(|n| cl.state[n].step).min()?;
        if min_step < self.next_due {
            return None;
        }
        let boundary = self.next_due;
        self.next_due += self.every;
        let (productive, stalls) = self.owned_totals(cl);
        Some(ObsDelta {
            worker: self.index,
            boundary,
            min_step,
            productive,
            stalls,
            retransmits: self.owned_retransmits(cl),
        })
    }

    /// Worker 0: fold one shard's sample; returns the completed fleet
    /// beat once every shard has answered for that boundary.
    fn note(&mut self, d: ObsDelta, cycle: u64) -> Option<FleetBeat> {
        let shards = self.shards;
        let slot = self
            .pending
            .entry(d.boundary)
            .or_insert_with(|| vec![None; shards]);
        if let Some(s) = slot.get_mut(d.worker as usize) {
            *s = Some(d);
        }
        let boundary = *self.pending.iter().find(|(_, v)| v.iter().all(Option::is_some))?.0;
        let workers: Vec<ObsDelta> = self
            .pending
            .remove(&boundary)?
            .into_iter()
            .flatten()
            .collect();
        self.beats += 1;
        Some(FleetBeat { beat: self.beats, boundary, cycle, workers })
    }
}

/// Run one segment of the global cycle loop on this worker's shard —
/// the sharded transliteration of [`Cluster::try_run_with`]'s loop.
/// `lost_total` tracks the reconciled global packets-lost tally across
/// cycles (and segments); `base_lost` is the worker-start baseline.
#[allow(clippy::too_many_arguments)]
fn run_segment(
    cl: &mut Cluster,
    engine: &EngineConfig,
    pool: Option<&ThreadPool>,
    mesh: &mut [Box<dyn FrameLink>],
    ctl: &mut dyn FrameLink,
    obs: &mut ObsShard,
    target: u64,
    budget: u64,
    base_lost: u64,
    lost_total: &mut u64,
) -> Result<(), SegmentFail> {
    let link_err = |e: LinkError| SegmentFail::Link(e.to_string());
    let codec_err = |e: CkptError| SegmentFail::Link(format!("frame decode: {e}"));
    assert!(target > 0);
    let run_start = cl.cycle;
    cl.arm_run(engine);
    let mut idle_streak = 0u64;
    let crashes: Vec<_> = cl
        .cfg
        .faults
        .as_ref()
        .map(|p| p.crashes.clone())
        .unwrap_or_default();
    let owned = cl.owned_range();

    loop {
        // Crash directives, checked at the loop top exactly like the
        // oracle. Only the owner can observe one; it announces the crash
        // in place of its frame A so every worker fails identically.
        // (Peers learn one sub-cycle late — after their local compute —
        // but the divergence is unobservable: no segment result is
        // produced and the error is built from frame-consistent data.)
        // Among concurrently-due directives the lowest node fires,
        // matching the oracle's tie-break.
        let due = crashes
            .iter()
            .filter(|cp| {
                let node = cp.node as usize;
                owned.contains(&node)
                    && cl.state[node].phase == NodePhase::Force
                    && cl.state[node].step == cp.step
                    && cl.cycle > cl.state[node].phase_start
            })
            .min_by_key(|cp| cp.node)
            .copied();
        if let Some(cp) = due {
            let ci = CrashInfo {
                at_cycle: cl.cycle,
                node: cp.node,
                step: cp.step,
                lost: *lost_total,
            };
            broadcast(mesh, &MeshFrame::Events { crash: Some(ci), events: Vec::new() })
                .map_err(link_err)?;
            return Err(SegmentFail::Crashed {
                at_cycle: ci.at_cycle,
                node: ci.node,
                step: ci.step,
                lost: ci.lost,
            });
        }

        // Local cycle: compute → exchange → network, all on owned nodes.
        let stepped_local = cl.compute_phase(pool);
        if cl.tracing {
            cl.attribute_cycle();
        }
        cl.exchange_actions(target);
        cl.network_cycle();

        // Frame A: stage-0/1 events out, everyone's in, merge, admit.
        let my_events = cl.take_wire_events();
        broadcast(mesh, &MeshFrame::Events { crash: None, events: my_events.clone() })
            .map_err(link_err)?;
        let mut merged = my_events;
        for link in mesh.iter_mut() {
            match MeshFrame::decode(&link.recv_frame().map_err(link_err)?).map_err(codec_err)? {
                MeshFrame::Events { crash: Some(ci), .. } => {
                    return Err(SegmentFail::Crashed {
                        at_cycle: ci.at_cycle,
                        node: ci.node,
                        step: ci.step,
                        lost: ci.lost,
                    });
                }
                MeshFrame::Events { crash: None, events } => merged.extend(events),
                _ => return Err(SegmentFail::Link("expected events frame".into())),
            }
        }
        cl.admit_wire_events(merged);

        // Delivery sweep, then frame B: acks + global-progress votes
        // (+ this shard's telemetry sample when a heartbeat is due).
        let delivered_local = cl.deliver_due();
        let my_acks = cl.take_wire_events();
        let done_local = cl.owned_done(target);
        let lost_local = cl.pos_fabric.packets_lost + cl.frc_fabric.packets_lost;
        let my_delta = lost_local - base_lost;
        let my_obs = obs.due(cl);
        broadcast(
            mesh,
            &MeshFrame::Tally {
                events: my_acks.clone(),
                stepped: stepped_local,
                delivered: delivered_local,
                done: done_local,
                lost_delta: my_delta,
                obs: my_obs.clone(),
            },
        )
        .map_err(link_err)?;
        let mut stepped = stepped_local;
        let mut delivered = delivered_local;
        let mut done_global = done_local;
        let mut lost_sum = my_delta;
        let mut merged2 = my_acks;
        let mut samples: Vec<ObsDelta> = my_obs.into_iter().collect();
        for link in mesh.iter_mut() {
            match MeshFrame::decode(&link.recv_frame().map_err(link_err)?).map_err(codec_err)? {
                MeshFrame::Tally {
                    events,
                    stepped: s,
                    delivered: d,
                    done: dn,
                    lost_delta,
                    obs: peer_obs,
                } => {
                    merged2.extend(events);
                    stepped |= s;
                    delivered |= d;
                    done_global &= dn;
                    lost_sum += lost_delta;
                    if obs.index == 0 {
                        samples.extend(peer_obs);
                    }
                }
                _ => return Err(SegmentFail::Link("expected tally frame".into())),
            }
        }
        cl.admit_wire_events(merged2);
        *lost_total = base_lost + lost_sum;
        // Worker 0 assembles fleet beats from the collected samples and
        // ships each completed one to the coordinator out of band.
        if obs.index == 0 {
            for d in samples {
                if let Some(fb) = obs.note(d, cl.cycle) {
                    ctl.send_frame(&CtlFrame::Beat(Box::new(fb)).encode())
                        .map_err(link_err)?;
                }
            }
        }

        cl.cycle += 1;
        if cl.cycle - run_start >= budget {
            return Err(SegmentFail::Stalled {
                at_cycle: cl.cycle,
                nodes: owned_states(cl),
                lost: *lost_total,
            });
        }

        // The deadlock / fast-forward scans fire on globally-agreed
        // conditions, so every worker reaches frame C together.
        let mut dl_scan = false;
        if !engine.fast_forward {
            if stepped || delivered {
                idle_streak = 0;
            } else {
                idle_streak += 1;
                if idle_streak.is_multiple_of(DEADLOCK_SCAN_INTERVAL) {
                    dl_scan = true;
                }
            }
        }
        let ff_scan = engine.fast_forward && !stepped && !delivered && !done_global;
        if dl_scan || ff_scan {
            let mine = cl.next_event_cycle();
            broadcast(mesh, &MeshFrame::Horizon(mine)).map_err(link_err)?;
            let mut horizons = vec![mine];
            for link in mesh.iter_mut() {
                match MeshFrame::decode(&link.recv_frame().map_err(link_err)?)
                    .map_err(codec_err)?
                {
                    MeshFrame::Horizon(h) => horizons.push(h),
                    _ => return Err(SegmentFail::Link("expected horizon frame".into())),
                }
            }
            let combined = combine_horizons(&horizons);
            if ff_scan {
                let cap = run_start + budget;
                match combined {
                    NextEvent::Busy => {}
                    NextEvent::At(t) => cl.jump_to(t.min(cap)),
                    NextEvent::Never => {
                        return Err(SegmentFail::Deadlock {
                            at_cycle: cl.cycle,
                            starving: owned_starving(cl),
                            lost: *lost_total,
                            outages: owned_outages(cl),
                        });
                    }
                }
                if cl.cycle >= cap {
                    return Err(SegmentFail::Stalled {
                        at_cycle: cl.cycle,
                        nodes: owned_states(cl),
                        lost: *lost_total,
                    });
                }
            } else if matches!(combined, NextEvent::Never) {
                return Err(SegmentFail::Deadlock {
                    at_cycle: cl.cycle,
                    starving: owned_starving(cl),
                    lost: *lost_total,
                    outages: owned_outages(cl),
                });
            }
        }

        if done_global {
            return Ok(());
        }
    }
}

/// Package a completed segment for the coordinator.
fn segment_ok(cl: &mut Cluster, base: &ScalarBase) -> SegmentOk {
    let owned = cl.owned_range();
    let mut stats = StatSet::new();
    for n in owned.clone() {
        stats.merge_from(&cl.chips[n].report(0, 0).stats);
    }
    let traffic: Vec<TrafficCounters> =
        owned.clone().map(|n| cl.chips[n].traffic.clone()).collect();
    let records = std::mem::take(&mut cl.records);
    let trace = cl.take_trace().map(|t| TraceShard {
        level: t.level,
        nodes: t.nodes[owned.clone()].to_vec(),
        engine: t.engine,
        stalls: t.stalls,
    });
    let mut cw = ContainerWriter::new();
    cl.snapshot_into(&mut cw);
    let faults = cl.faults.as_ref().map_or([0; 5], |f| f.injected);
    SegmentOk {
        end_cycle: cl.cycle,
        skipped: cl.skipped_cycles,
        records,
        stats,
        traffic,
        d_pos_packets: cl.pos_fabric.packets - base.pos_packets,
        d_frc_packets: cl.frc_fabric.packets - base.frc_packets,
        d_pos_bits: cl.pos_fabric.bits_sent - base.pos_bits,
        d_frc_bits: cl.frc_fabric.bits_sent - base.frc_bits,
        d_pos_lost: cl.pos_fabric.packets_lost - base.pos_lost,
        d_frc_lost: cl.frc_fabric.packets_lost - base.frc_lost,
        d_faults: [
            faults[0] - base.faults[0],
            faults[1] - base.faults[1],
            faults[2] - base.faults[2],
            faults[3] - base.faults[3],
            faults[4] - base.faults[4],
        ],
        d_acks: cl.rel.as_ref().map_or(0, |r| r.acks_sent) - base.acks,
        d_corrupt: cl.rel.as_ref().map_or(0, |r| r.corrupt_dropped) - base.corrupt,
        trace,
        container: cw.finish(),
    }
}

/// Worker main loop: obey `Run` / `Shutdown` control frames until the
/// coordinator hangs up. `cl` must already have its `exchange` hook
/// armed with the owned range (and be restored, when resuming).
fn worker_loop(
    mut cl: Cluster,
    engine: &EngineConfig,
    ctl: &mut dyn FrameLink,
    mesh: &mut [Box<dyn FrameLink>],
    index: usize,
    shards: usize,
) -> Result<(), ShardError> {
    // Burst stepping inspects non-owned interface state and is refused
    // in workers; node streams, stall ledgers and state stay identical
    // (burst only changes the engine stream's own event log).
    let mut engine = *engine;
    engine.burst = false;
    let pool = if engine.threads > 1 {
        ThreadPoolBuilder::new().num_threads(engine.threads).build().ok()
    } else {
        None
    };
    let base = ScalarBase::of(&cl);
    let base_lost = base.pos_lost + base.frc_lost;
    let mut lost_total = base_lost;
    let mut obs = ObsShard::new(engine.heartbeat_every, index as u32, shards);
    loop {
        match CtlFrame::decode(&ctl.recv_frame()?).map_err(ShardError::Ckpt)? {
            CtlFrame::Run { target, budget } => {
                let frame = match run_segment(
                    &mut cl,
                    &engine,
                    pool.as_ref(),
                    mesh,
                    ctl,
                    &mut obs,
                    target,
                    budget,
                    base_lost,
                    &mut lost_total,
                ) {
                    Ok(()) => {
                        obs.bank_segment(&cl);
                        CtlFrame::Done(Box::new(segment_ok(&mut cl, &base)))
                    }
                    Err(f) => CtlFrame::Fail(f),
                };
                ctl.send_frame(&frame.encode())?;
            }
            CtlFrame::Shutdown => return Ok(()),
            _ => return Err(ShardError::Protocol("unexpected control frame in worker".into())),
        }
    }
}

// ---------------------------------------------------------------------------
// Coordinator
// ---------------------------------------------------------------------------

/// Splice one worker's owned slice from `scratch` (restored from the
/// worker's container) into `replica`. Everything per-node moves by
/// swap: chips, sync machines, packetizers, inboxes, per-node driver
/// state, fabric port clocks, reliability link maps (which carry the
/// per-link retransmit / duplicate counters) and fault-plan RNG
/// streams keyed by owned sources.
fn adopt_shard(replica: &mut Cluster, scratch: &mut Cluster, owned: Range<usize>) {
    for n in owned.clone() {
        std::mem::swap(&mut replica.chips[n], &mut scratch.chips[n]);
        std::mem::swap(&mut replica.sync[n], &mut scratch.sync[n]);
        std::mem::swap(&mut replica.pos_pz[n], &mut scratch.pos_pz[n]);
        std::mem::swap(&mut replica.frc_pz[n], &mut scratch.frc_pz[n]);
        std::mem::swap(&mut replica.mig_pz[n], &mut scratch.mig_pz[n]);
        std::mem::swap(&mut replica.inbox[n], &mut scratch.inbox[n]);
        replica.state[n] = scratch.state[n].clone();
        replica.stalls[n] = scratch.stalls[n];
        let (tx, rx) = scratch.pos_fabric.port_state(n);
        replica.pos_fabric.set_port_state(n, tx, rx);
        let (tx, rx) = scratch.frc_fabric.port_state(n);
        replica.frc_fabric.set_port_state(n, tx, rx);
        if let (Some(mine), Some(theirs)) = (replica.rel.as_mut(), scratch.rel.as_mut()) {
            std::mem::swap(&mut mine.tx[n], &mut theirs.tx[n]);
            std::mem::swap(&mut mine.rx[n], &mut theirs.rx[n]);
        }
    }
    if let (Some(mine), Some(theirs)) = (replica.faults.as_mut(), scratch.faults.as_ref()) {
        let owns = move |src: u32| owned.contains(&(src as usize));
        mine.adopt_links_from(theirs, owns);
    }
}

/// Overwrite the replica's shard-shared scalar tallies with
/// `base + Σ worker deltas`.
fn reconcile_scalars(replica: &mut Cluster, base: &ScalarBase, oks: &[SegmentOk]) {
    let sum = |f: fn(&SegmentOk) -> u64| oks.iter().map(f).sum::<u64>();
    replica.pos_fabric.packets = base.pos_packets + sum(|o| o.d_pos_packets);
    replica.frc_fabric.packets = base.frc_packets + sum(|o| o.d_frc_packets);
    replica.pos_fabric.bits_sent = base.pos_bits + sum(|o| o.d_pos_bits);
    replica.frc_fabric.bits_sent = base.frc_bits + sum(|o| o.d_frc_bits);
    replica.pos_fabric.packets_lost = base.pos_lost + sum(|o| o.d_pos_lost);
    replica.frc_fabric.packets_lost = base.frc_lost + sum(|o| o.d_frc_lost);
    if let Some(f) = replica.faults.as_mut() {
        for k in 0..5 {
            f.injected[k] = base.faults[k] + oks.iter().map(|o| o.d_faults[k]).sum::<u64>();
        }
    }
    if let Some(r) = replica.rel.as_mut() {
        r.acks_sent = base.acks + sum(|o| o.d_acks);
        r.corrupt_dropped = base.corrupt + sum(|o| o.d_corrupt);
    }
}

/// Fold per-worker segment results into the segment's
/// [`ClusterRunReport`] — field for field what
/// `Cluster::assemble_report` would have produced in-process. Must run
/// *after* [`adopt_shard`] + [`reconcile_scalars`] so the replica's
/// cumulative tallies are current.
fn fold_report(
    replica: &Cluster,
    oks: &mut [SegmentOk],
    target: u64,
    seg_cycles: u64,
) -> ClusterRunReport {
    let mut records = Vec::new();
    for ok in oks.iter_mut() {
        records.append(&mut ok.records);
    }
    // `(wall_end, node)` keys are unique across the run; a stable sort
    // over the shard-order concatenation reproduces the oracle's record
    // order exactly.
    records.sort_by_key(|r| (r.wall_end, r.node));
    let mut stats = StatSet::new();
    for ok in oks.iter() {
        stats.merge_from(&ok.stats);
    }
    let mut per_node_traffic = Vec::with_capacity(replica.num_nodes());
    for ok in oks.iter_mut() {
        per_node_traffic.append(&mut ok.traffic);
    }
    ClusterRunReport {
        steps: target,
        total_cycles: seg_cycles,
        records,
        stats,
        per_node_traffic,
        pos_packets: replica.pos_fabric.packets,
        frc_packets: replica.frc_fabric.packets,
        pos_bits: replica.pos_fabric.bits_sent,
        frc_bits: replica.frc_fabric.bits_sent,
        clock_hz: replica.cfg.chip.hw.clock_hz,
        dt_fs: replica.cfg.dt_fs,
        nodes: replica.num_nodes(),
        faults_injected: replica.faults.as_ref().map_or(0, |f| f.total_injected()),
        reliability: replica.rel.as_ref().map(|r| RelSummary {
            retransmits: r.total_retransmits(),
            acks_sent: r.acks_sent,
            duplicates_dropped: r.total_duplicates(),
            corrupt_dropped: r.corrupt_dropped,
        }),
    }
}

/// Merge per-worker trace shards into the run's [`Trace`]: node
/// streams concatenate in shard order (= node order), the engine
/// stream is identical on every worker (shard 0's is used), stall
/// ledgers fold additively.
fn fold_trace(oks: &mut [SegmentOk], nodes: usize) -> Option<Trace> {
    if oks.iter().all(|o| o.trace.is_none()) {
        return None;
    }
    let mut level = None;
    let mut streams: Vec<NodeStream> = Vec::with_capacity(nodes);
    let mut engine = None;
    let mut stalls = StallLedger::new(nodes);
    for (w, ok) in oks.iter_mut().enumerate() {
        let shard = ok.trace.take()?;
        if w == 0 {
            level = shard.level;
            engine = Some(shard.engine);
        }
        streams.extend(shard.nodes);
        stalls.absorb(&shard.stalls);
    }
    Some(Trace { level, nodes: streams, engine: engine?, stalls })
}

/// Convert the per-worker failure shares into the oracle's error.
fn merge_failures(fails: Vec<SegmentFail>) -> ShardError {
    // An injected crash is announced identically to every worker.
    for f in &fails {
        if let SegmentFail::Crashed { at_cycle, node, step, lost } = f {
            return ShardError::Cluster(
                CrashInjected {
                    at_cycle: *at_cycle,
                    node: *node as usize,
                    step: *step,
                    packets_lost: *lost,
                }
                .into(),
            );
        }
    }
    let mut starving = Vec::new();
    let mut nodes = Vec::new();
    let mut outages = Vec::new();
    let mut at_cycle = 0;
    let mut lost = 0;
    let mut saw_deadlock = false;
    let mut saw_stall = false;
    for f in fails {
        match f {
            SegmentFail::Deadlock { at_cycle: c, starving: s, lost: l, outages: o } => {
                saw_deadlock = true;
                at_cycle = c;
                lost = l;
                starving.extend(
                    s.into_iter().map(|(n, step, ph)| (n as usize, step, ph)),
                );
                outages.extend(o);
            }
            SegmentFail::Stalled { at_cycle: c, nodes: n, lost: l } => {
                saw_stall = true;
                at_cycle = c;
                lost = l;
                nodes.extend(n);
            }
            SegmentFail::Link(msg) => return ShardError::Worker(msg),
            SegmentFail::Crashed { .. } => unreachable!("handled above"),
        }
    }
    if saw_deadlock {
        // Workers report the directives their own links saw latch;
        // the union, deduplicated, is the oracle's diagnosis.
        outages.sort();
        outages.dedup();
        ShardError::Cluster(
            DeadlockDetected { at_cycle, starving, packets_lost: lost, outages }.into(),
        )
    } else if saw_stall {
        ShardError::Cluster(
            ClusterStalled { at_cycle, node_states: nodes, packets_lost: lost }.into(),
        )
    } else {
        ShardError::Worker("workers failed without details".into())
    }
}

/// Drive the workers through checkpoint-sized segments — the sharded
/// mirror of [`run_with_checkpoints`] — splicing each segment's state
/// into `replica` and folding its report into `acc`.
#[allow(clippy::too_many_arguments)]
fn drive(
    ctl: &mut [Box<dyn FrameLink>],
    replica: &mut Cluster,
    scratch: &mut Cluster,
    ranges: &[Range<usize>],
    steps: u64,
    cycle_budget: u64,
    ckpt: Option<&CheckpointConfig>,
    mut acc: RunAccumulator,
    mut fleet: Option<FleetObs>,
) -> Result<(ClusterRunReport, Vec<Trace>, Vec<PathBuf>), ShardError> {
    assert!(acc.steps_done <= steps, "accumulator past the requested step count");
    let every = match ckpt {
        Some(c) => c.every,
        None => steps.saturating_sub(acc.steps_done).max(1),
    };
    let base = ScalarBase::of(replica);
    let start_cycle = replica.cycle;
    let mut traces = Vec::new();
    let mut checkpoints = Vec::new();
    while acc.steps_done < steps {
        let target = (acc.steps_done + every).min(steps);
        let seg_start = replica.cycle;
        let spent = replica.cycle - start_cycle;
        let run = CtlFrame::Run { target, budget: cycle_budget.saturating_sub(spent) };
        let payload = run.encode();
        for link in ctl.iter_mut() {
            link.send_frame(&payload)?;
        }
        let mut oks = Vec::with_capacity(ctl.len());
        let mut fails = Vec::new();
        // Worker 0's link is read first and carries the fleet beats, so
        // heartbeats stream out while the segment is still running.
        for link in ctl.iter_mut() {
            loop {
                match CtlFrame::decode(&link.recv_frame()?)? {
                    CtlFrame::Beat(fb) => {
                        if let Some(f) = fleet.as_mut() {
                            f.on_beat(&fb, ranges, steps);
                        }
                    }
                    CtlFrame::Done(ok) => {
                        oks.push(*ok);
                        break;
                    }
                    CtlFrame::Fail(f) => {
                        fails.push(f);
                        break;
                    }
                    _ => return Err(ShardError::Protocol("expected segment result".into())),
                }
            }
        }
        if !fails.is_empty() {
            shutdown(ctl);
            return Err(merge_failures(fails));
        }
        for (w, ok) in oks.iter().enumerate() {
            let container = Container::parse(&ok.container)?;
            scratch.restore_from(&container)?;
            adopt_shard(replica, scratch, ranges[w].clone());
        }
        replica.cycle = oks[0].end_cycle;
        replica.skipped_cycles = oks[0].skipped;
        reconcile_scalars(replica, &base, &oks);
        let seg_cycles = replica.cycle - seg_start;
        if let Some(t) = fold_trace(&mut oks, replica.num_nodes()) {
            traces.push(t);
        }
        let report = fold_report(replica, &mut oks, target, seg_cycles);
        acc.fold(&report);
        if let Some(c) = ckpt {
            checkpoints.push(save_checkpoint(replica, &acc, c)?);
        }
    }
    shutdown(ctl);
    Ok((acc.into_report(), traces, checkpoints))
}

/// Best-effort shutdown broadcast; link errors are ignored (a worker
/// that died is already gone).
fn shutdown(ctl: &mut [Box<dyn FrameLink>]) {
    let payload = CtlFrame::Shutdown.encode();
    for link in ctl.iter_mut() {
        let _ = link.send_frame(&payload);
    }
}

// ---------------------------------------------------------------------------
// Thread-backed harness (real socket mesh, in-process workers)
// ---------------------------------------------------------------------------

/// Options for a sharded run.
pub struct ShardOpts {
    /// Global cycle budget across all segments.
    pub budget: u64,
    /// Coordinated quiescent-step checkpointing.
    pub ckpt: Option<CheckpointConfig>,
    /// Checkpoint file to restore before running. The shard count need
    /// not match the one that wrote it — checkpoints are full-cluster.
    pub resume: Option<PathBuf>,
    /// Fleet heartbeat sinks on the coordinator (requires
    /// `EngineConfig::heartbeat_every` > 0 for beats to be produced).
    pub obs: Option<ObsSinkConfig>,
    /// Thread harness only: carry the control channel and the worker
    /// mesh over loopback TCP instead of socketpairs, exercising the
    /// cross-host transport hermetically. The bytes on the wire are
    /// identical either way.
    pub tcp: bool,
}

impl Default for ShardOpts {
    fn default() -> Self {
        ShardOpts { budget: MAX_RUN_CYCLES, ckpt: None, resume: None, obs: None, tcp: false }
    }
}

/// A connected loopback-TCP [`TcpLink`] pair (hermetic cross-host
/// transport testing).
fn tcp_pair() -> std::io::Result<(TcpLink, TcpLink)> {
    let listener = std::net::TcpListener::bind("127.0.0.1:0")?;
    let addr = listener.local_addr()?;
    let dial = std::thread::spawn(move || std::net::TcpStream::connect(addr));
    let (accepted, _) = listener.accept()?;
    let dialed = dial
        .join()
        .map_err(|_| std::io::Error::other("tcp dial thread panicked"))??;
    Ok((TcpLink::new(accepted)?, TcpLink::new(dialed)?))
}

/// A completed sharded run.
pub struct ShardedRun {
    /// Whole-run folded report — equal to the in-process oracle's.
    pub report: ClusterRunReport,
    /// One merged trace per segment (tracing on).
    pub traces: Vec<Trace>,
    /// Checkpoints written, oldest first.
    pub checkpoints: Vec<PathBuf>,
    /// The coordinator's replica, spliced to the final state —
    /// bit-identical to an in-process cluster after the same run.
    pub replica: Cluster,
}

impl std::fmt::Debug for ShardedRun {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedRun")
            .field("report", &self.report)
            .field("traces", &self.traces.len())
            .field("checkpoints", &self.checkpoints)
            .finish_non_exhaustive()
    }
}

/// Run `steps` timesteps over `shards` workers backed by harness
/// threads, exchanging frames over real Unix-domain socketpairs. The
/// process-backed path ([`coordinator_main`] / [`worker_main`]) moves
/// identical bytes over named sockets; this entry point exists so
/// tests and benches can run the full protocol hermetically.
pub fn run_sharded(
    cfg: &ClusterConfig,
    sys: &ParticleSystem,
    steps: u64,
    engine: &EngineConfig,
    shards: usize,
    opts: ShardOpts,
) -> Result<ShardedRun, ShardError> {
    let mut replica = Cluster::new(cfg.clone(), sys);
    let n = replica.num_nodes();
    validate_sharding(cfg, shards, n)?;
    let ranges = shard_ranges(n, shards);

    let mut acc = RunAccumulator::new();
    let mut resume_bytes: Option<Arc<Vec<u8>>> = None;
    if let Some(path) = &opts.resume {
        let bytes = std::fs::read(path)?;
        let container = Container::parse(&bytes)?;
        replica.restore_from(&container)?;
        acc = RunAccumulator::load(&mut container.reader(sections::RUNNER)?)?;
        resume_bytes = Some(Arc::new(bytes));
    }

    // Full mesh of socketpairs plus one control channel per worker.
    let mut rows: Vec<Vec<Option<Box<dyn FrameLink>>>> =
        (0..shards).map(|_| (0..shards).map(|_| None).collect()).collect();
    // Indexes two rows at once (i's column j and j's column i), which
    // an iterator rewrite cannot express.
    #[allow(clippy::needless_range_loop)]
    for i in 0..shards {
        for j in i + 1..shards {
            if opts.tcp {
                let (a, b) = tcp_pair()?;
                rows[i][j] = Some(Box::new(a));
                rows[j][i] = Some(Box::new(b));
            } else {
                let (a, b) = SocketLink::pair()?;
                rows[i][j] = Some(Box::new(a));
                rows[j][i] = Some(Box::new(b));
            }
        }
    }
    let mut ctl: Vec<Box<dyn FrameLink>> = Vec::with_capacity(shards);
    let mut handles = Vec::with_capacity(shards);
    for (w, row) in rows.into_iter().enumerate() {
        let theirs: Box<dyn FrameLink> = if opts.tcp {
            let (mine, theirs) = tcp_pair()?;
            ctl.push(Box::new(mine));
            Box::new(theirs)
        } else {
            let (mine, theirs) = MemLink::pair();
            ctl.push(Box::new(mine));
            Box::new(theirs)
        };
        let mut mesh: Vec<Box<dyn FrameLink>> = row.into_iter().flatten().collect();
        let range = ranges[w].clone();
        let cfg = cfg.clone();
        let sys = sys.clone();
        let engine = *engine;
        let resume = resume_bytes.clone();
        handles.push(std::thread::spawn(move || -> Result<(), ShardError> {
            let mut cl = Cluster::new(cfg, &sys);
            if let Some(bytes) = resume {
                let container = Container::parse(&bytes)?;
                cl.restore_from(&container)?;
            }
            cl.exchange = Some(ExchangeBuf { owned: range, stage: 0, events: Vec::new() });
            let mut theirs = theirs;
            worker_loop(cl, &engine, &mut *theirs, &mut mesh, w, shards)
        }));
    }

    let fleet = match &opts.obs {
        Some(sinks) => Some(FleetObs::new(sinks)?),
        None => None,
    };
    let mut scratch = Cluster::new(cfg.clone(), sys);
    let res = drive(
        &mut ctl,
        &mut replica,
        &mut scratch,
        &ranges,
        steps,
        opts.budget,
        opts.ckpt.as_ref(),
        acc,
        fleet,
    );
    drop(ctl); // unblock any worker still waiting on control frames
    for h in handles {
        let _ = h.join();
    }
    let (report, traces, checkpoints) = res?;
    Ok(ShardedRun { report, traces, checkpoints, replica })
}

// ---------------------------------------------------------------------------
// Process-backed coordinator / worker (CLI `--shards` / `--worker`)
// ---------------------------------------------------------------------------

fn ctl_socket(dir: &std::path::Path) -> PathBuf {
    dir.join("ctl.sock")
}

fn peer_socket(dir: &std::path::Path, index: usize) -> PathBuf {
    dir.join(format!("peer-{index}.sock"))
}

fn meta_crc(cl: &Cluster) -> u32 {
    crc32(&cl.meta_writer().into_bytes())
}

/// How shard processes find each other.
#[derive(Clone, Debug)]
pub enum ShardNet {
    /// Same-host rendezvous: Unix-domain sockets in a directory.
    Unix(PathBuf),
    /// Cross-host rendezvous: the coordinator listens on this TCP
    /// address (`host:port`; port 0 binds an ephemeral port) and each
    /// worker connects to it, advertising its own ephemeral mesh
    /// listener in its HELLO. The bytes on every link are identical to
    /// the Unix carrier, so the carrier cannot affect results.
    Tcp(String),
}

/// Either-carrier listener for control and mesh accept loops.
enum Acceptor {
    Unix(std::os::unix::net::UnixListener),
    Tcp(std::net::TcpListener),
}

impl Acceptor {
    fn accept(&self) -> Result<Box<dyn FrameLink>, ShardError> {
        Ok(match self {
            Acceptor::Unix(l) => Box::new(SocketLink::new(l.accept()?.0)?),
            Acceptor::Tcp(l) => Box::new(TcpLink::new(l.accept()?.0)?),
        })
    }
}

/// Dial a peer's advertised mesh address on the matching carrier.
fn dial_mesh(net_is_tcp: bool, addr: &str) -> Result<Box<dyn FrameLink>, ShardError> {
    Ok(if net_is_tcp {
        Box::new(TcpLink::connect(addr)?)
    } else {
        Box::new(SocketLink::new(std::os::unix::net::UnixStream::connect(addr)?)?)
    })
}

/// [`coordinator_main_net`] over the same-host Unix-socket rendezvous.
#[allow(clippy::too_many_arguments)]
pub fn coordinator_main(
    cfg: &ClusterConfig,
    sys: &ParticleSystem,
    steps: u64,
    shards: usize,
    opts: ShardOpts,
    dir: &std::path::Path,
    worker_argv: &[String],
) -> Result<ShardedRun, ShardError> {
    coordinator_main_net(
        cfg,
        sys,
        steps,
        shards,
        opts,
        &ShardNet::Unix(dir.to_path_buf()),
        worker_argv,
    )
}

/// Spawn `shards` worker processes (re-invoking `worker_argv` with
/// `--worker I` plus the rendezvous flag — `--shard-dir DIR` for the
/// Unix carrier, `--shard-connect ADDR` for TCP — appended), handshake
/// them over the control listener, and drive the run. With
/// [`ShardNet::Tcp`] the listen address may use port 0; workers are
/// told the resolved address.
#[allow(clippy::too_many_arguments)]
pub fn coordinator_main_net(
    cfg: &ClusterConfig,
    sys: &ParticleSystem,
    steps: u64,
    shards: usize,
    opts: ShardOpts,
    net: &ShardNet,
    worker_argv: &[String],
) -> Result<ShardedRun, ShardError> {
    let mut replica = Cluster::new(cfg.clone(), sys);
    let n = replica.num_nodes();
    validate_sharding(cfg, shards, n)?;
    let ranges = shard_ranges(n, shards);
    // Bind the control listener and decide the rendezvous args the
    // spawned workers get.
    let (listener, rendezvous_args, unix_dir) = match net {
        ShardNet::Unix(dir) => {
            std::fs::create_dir_all(dir)?;
            let ctl_path = ctl_socket(dir);
            let _ = std::fs::remove_file(&ctl_path);
            for i in 0..shards {
                let _ = std::fs::remove_file(peer_socket(dir, i));
            }
            let l = std::os::unix::net::UnixListener::bind(&ctl_path)?;
            let args = vec!["--shard-dir".to_string(), dir.to_string_lossy().into_owned()];
            (Acceptor::Unix(l), args, Some(dir.clone()))
        }
        ShardNet::Tcp(addr) => {
            let l = std::net::TcpListener::bind(addr.as_str())?;
            let resolved = l.local_addr()?.to_string();
            let args = vec!["--shard-connect".to_string(), resolved];
            (Acceptor::Tcp(l), args, None)
        }
    };

    let exe = std::env::current_exe()?;
    let mut children = Vec::with_capacity(shards);
    for i in 0..shards {
        let child = std::process::Command::new(&exe)
            .args(worker_argv)
            .arg("--worker")
            .arg(i.to_string())
            .args(&rendezvous_args)
            .spawn()?;
        children.push(child);
    }

    let mut run = || -> Result<(ClusterRunReport, Vec<Trace>, Vec<PathBuf>), ShardError> {
        // Collect HELLOs; the fingerprint check catches a worker built
        // from different arguments before any state moves.
        let expect = meta_crc(&replica);
        let mut ctl: Vec<Option<Box<dyn FrameLink>>> = (0..shards).map(|_| None).collect();
        let mut peers: Vec<String> = vec![String::new(); shards];
        for _ in 0..shards {
            let mut link = listener.accept()?;
            match CtlFrame::decode(&link.recv_frame()?)? {
                CtlFrame::Hello { index, meta_crc, mesh_addr } => {
                    if meta_crc != expect {
                        return Err(ShardError::Protocol(format!(
                            "worker {index} config fingerprint mismatch"
                        )));
                    }
                    let slot = ctl.get_mut(index as usize).ok_or_else(|| {
                        ShardError::Protocol(format!("worker index {index} out of range"))
                    })?;
                    if slot.replace(link).is_some() {
                        return Err(ShardError::Protocol(format!(
                            "duplicate worker index {index}"
                        )));
                    }
                    peers[index as usize] = mesh_addr;
                }
                _ => return Err(ShardError::Protocol("expected hello frame".into())),
            }
        }
        let mut ctl: Vec<Box<dyn FrameLink>> = ctl.into_iter().flatten().collect();

        let mut acc = RunAccumulator::new();
        let mut resume_str = None;
        if let Some(path) = &opts.resume {
            let bytes = std::fs::read(path)?;
            let container = Container::parse(&bytes)?;
            replica.restore_from(&container)?;
            acc = RunAccumulator::load(&mut container.reader(sections::RUNNER)?)?;
            resume_str = Some(path.to_string_lossy().into_owned());
        }
        let go = CtlFrame::Go { resume: resume_str, peers }.encode();
        for link in ctl.iter_mut() {
            link.send_frame(&go)?;
        }

        let fleet = match &opts.obs {
            Some(sinks) => Some(FleetObs::new(sinks)?),
            None => None,
        };
        let mut scratch = Cluster::new(cfg.clone(), sys);
        drive(
            &mut ctl,
            &mut replica,
            &mut scratch,
            &ranges,
            steps,
            opts.budget,
            opts.ckpt.as_ref(),
            acc,
            fleet,
        )
    };
    let res = run();
    for mut child in children {
        if res.is_err() {
            let _ = child.kill();
        }
        let _ = child.wait();
    }
    if let Some(dir) = unix_dir {
        let _ = std::fs::remove_file(ctl_socket(&dir));
        for i in 0..shards {
            let _ = std::fs::remove_file(peer_socket(&dir, i));
        }
    }
    let (report, traces, checkpoints) = res?;
    Ok(ShardedRun { report, traces, checkpoints, replica })
}

/// [`worker_main_net`] over the same-host Unix-socket rendezvous.
pub fn worker_main(
    cfg: &ClusterConfig,
    sys: &ParticleSystem,
    engine: &EngineConfig,
    index: usize,
    shards: usize,
    dir: &std::path::Path,
) -> Result<(), ShardError> {
    worker_main_net(cfg, sys, engine, index, shards, &ShardNet::Unix(dir.to_path_buf()))
}

/// Worker-process entry point: rendezvous with the coordinator (a Unix
/// rendezvous directory or a TCP coordinator address), mesh with the
/// other workers, and serve segments until shutdown. The caller must
/// have built `cfg` / `sys` / `engine` from the same arguments as the
/// coordinator (it re-invokes its own argv), which the HELLO
/// fingerprint verifies.
pub fn worker_main_net(
    cfg: &ClusterConfig,
    sys: &ParticleSystem,
    engine: &EngineConfig,
    index: usize,
    shards: usize,
    net: &ShardNet,
) -> Result<(), ShardError> {
    let mut cl = Cluster::new(cfg.clone(), sys);
    let n = cl.num_nodes();
    validate_sharding(cfg, shards, n)?;
    if index >= shards {
        return Err(ShardError::Protocol(format!("worker index {index} out of range")));
    }
    let ranges = shard_ranges(n, shards);

    // Bind the mesh listener before saying hello: our advertised
    // address is live before the coordinator releases anyone with GO.
    let is_tcp = matches!(net, ShardNet::Tcp(_));
    let (listener, my_addr, mut ctl): (Acceptor, String, Box<dyn FrameLink>) = match net {
        ShardNet::Unix(dir) => {
            let my_sock = peer_socket(dir, index);
            let _ = std::fs::remove_file(&my_sock);
            let l = std::os::unix::net::UnixListener::bind(&my_sock)?;
            let stream = std::os::unix::net::UnixStream::connect(ctl_socket(dir))?;
            (
                Acceptor::Unix(l),
                my_sock.to_string_lossy().into_owned(),
                Box::new(SocketLink::new(stream)?),
            )
        }
        ShardNet::Tcp(addr) => {
            // Dial the coordinator first: the local address of that
            // connection is the interface peers can reach us on.
            let stream = std::net::TcpStream::connect(addr.as_str())?;
            let ip = stream.local_addr()?.ip();
            let l = std::net::TcpListener::bind((ip, 0))?;
            let my_addr = l.local_addr()?.to_string();
            (Acceptor::Tcp(l), my_addr, Box::new(TcpLink::new(stream)?))
        }
    };
    ctl.send_frame(
        &CtlFrame::Hello { index: index as u32, meta_crc: meta_crc(&cl), mesh_addr: my_addr }
            .encode(),
    )?;
    let (resume, peers) = match CtlFrame::decode(&ctl.recv_frame()?)? {
        CtlFrame::Go { resume, peers } => (resume, peers),
        _ => return Err(ShardError::Protocol("expected go frame".into())),
    };
    if peers.len() != shards {
        return Err(ShardError::Protocol(format!(
            "go frame lists {} peers for {shards} shards",
            peers.len()
        )));
    }
    if let Some(path) = resume {
        let bytes = std::fs::read(path)?;
        let container = Container::parse(&bytes)?;
        cl.restore_from(&container)?;
    }

    // Mesh: dial lower indices (announcing who we are), accept higher.
    let mut links: Vec<Option<Box<dyn FrameLink>>> = (0..shards).map(|_| None).collect();
    for (peer, slot) in links.iter_mut().enumerate().take(index) {
        let mut link = dial_mesh(is_tcp, &peers[peer])?;
        link.send_frame(&MeshFrame::Id(index as u32).encode())?;
        *slot = Some(link);
    }
    for _ in index + 1..shards {
        let mut link = listener.accept()?;
        let peer = match MeshFrame::decode(&link.recv_frame()?)? {
            MeshFrame::Id(i) => i as usize,
            _ => return Err(ShardError::Protocol("expected id frame".into())),
        };
        if peer <= index || peer >= shards || links[peer].is_some() {
            return Err(ShardError::Protocol(format!("bad mesh peer id {peer}")));
        }
        links[peer] = Some(link);
    }
    let mut mesh: Vec<Box<dyn FrameLink>> = links.into_iter().flatten().collect();

    cl.exchange =
        Some(ExchangeBuf { owned: ranges[index].clone(), stage: 0, events: Vec::new() });
    worker_loop(cl, engine, &mut *ctl, &mut mesh, index, shards)
}
