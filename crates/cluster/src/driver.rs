//! The cluster driver: chips + packetizers + fabric + synchronization.

use crate::report::{ClusterRunReport, NodeStepReport, RelSummary};
use crate::wire::{Cargo, Delivery, NetMsg};
use fasda_core::config::ChipConfig;
use fasda_core::geometry::{ChipCoord, ChipGeometry};
use fasda_core::timed::ring::{FrcFlit, MigFlit, PosFlit};
use fasda_core::timed::{ForceActivity, TimedChip};
use fasda_md::space::SimulationSpace;
use fasda_md::system::ParticleSystem;
use fasda_md::units::UnitSystem;
use fasda_net::encap::Packetizer;
use fasda_net::fault::{CrashPoint, FaultChannel, FaultOutcome, FaultPlan, FaultState};
use fasda_net::packet::PacketKind;
use fasda_net::reliable::{Accept, LinkReceiver, LinkSender, RelConfig};
use fasda_net::switch::SwitchFabric;
use fasda_net::sync::{BulkBarrier, ChainedSync, SyncMode};
use fasda_net::topology::Topology;
use fasda_sim::{MessageQueue, StatSet};
use fasda_trace::{
    ChannelId, EventKind, NodeRecorder, PhaseId, StallCause, StallLedger, Trace, TraceConfig,
    TraceLevel,
};
use rayon::{ThreadPool, ThreadPoolBuilder};
use std::collections::BTreeMap;

/// Safety cap on the global cycle loop.
pub(crate) const MAX_RUN_CYCLES: u64 = 2_000_000_000;

/// Smallest force-phase burst worth taking: below this the burst's
/// eligibility scan costs more than the per-cycle loop it skips.
const MIN_BURST: u64 = 4;

/// Cycles to wait before re-attempting a burst after the first refused
/// window. Doubles on every consecutive refusal (up to
/// [`BURST_RETRY_COOLDOWN_MAX`]) and resets on a successful burst: in
/// dense phases some station is always within a few cycles of ejecting,
/// so windows essentially never open and the eligibility scan would
/// otherwise burn a few percent of the run re-proving that every few
/// cycles.
const BURST_RETRY_COOLDOWN: u64 = 8;

/// Upper bound for the exponential refusal backoff.
const BURST_RETRY_COOLDOWN_MAX: u64 = 1024;

/// Why a burst window failed to open (feeds the named refusal
/// counters on [`Cluster`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum BurstBlock {
    /// A window opened; it may still be refused as too small.
    Open,
    /// Some node's external interface could fire within the window.
    Interface,
    /// No force-phase chip was computing at all.
    Idle,
}

/// Idle-streak length between deadlock scans on engines without
/// fast-forward (which detect deadlock through their own event scan).
/// The scan is O(nodes · peers); every 256 idle cycles it is noise.
pub(crate) const DEADLOCK_SCAN_INTERVAL: u64 = 256;

/// How the cluster's cycle loop is executed. The serial reference path
/// ([`Cluster::try_run`]) and every engine configuration produce
/// bit-identical [`ClusterRunReport`]s; the engine only changes how fast
/// wall-clock time passes (see `DESIGN.md`, "Parallel deterministic cycle
/// engine").
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EngineConfig {
    /// Worker threads for the compute phase. `1` keeps the compute phase
    /// on the caller's thread (no pool is built).
    pub threads: usize,
    /// Skip cycles in which provably nothing can happen (all nodes
    /// quiescent, only in-flight packets / timers remain) by jumping the
    /// global clock to the next scheduled event.
    pub fast_forward: bool,
    /// Enable the chips' fast-path execution: provably bit-identical
    /// shortcuts inside the cycle model (idle-SPE skipping, precomputed
    /// filter-station scans). The serial reference keeps this off so it
    /// stays the plain per-cycle interpretation the optimized engine is
    /// validated against.
    pub fast_path: bool,
    /// Evaluate filter-station scans through the chips' fused SoA kernel
    /// (`HomeSoa` banks + `ForceDatapath::fused_scan_into`) instead of
    /// one virtual comparison per cycle. Bit-identical: the per-cycle
    /// `Pe` state machine still consumes one comparison per architectural
    /// cycle. **On by default** in the optimized engine since the fused
    /// filter→force kernel eliminated the hit-materialization overhead
    /// that used to make the batch path lose on dense workloads (see
    /// `DESIGN.md` §10); the scalar per-comparison walk stays the serial
    /// oracle it is validated against.
    pub soa: bool,
    /// Burst-step the force phase: when every node's external interfaces
    /// are provably quiet for the next W cycles (no deliveries, packet
    /// departures, barrier releases, marker flushes or phase transitions
    /// possible), advance each busy chip W force cycles in one inner loop
    /// without returning to the cluster tick layer — the busy-path
    /// analogue of idle fast-forward. Bit-identical by the window proof
    /// (see `DESIGN.md`).
    pub burst: bool,
    /// Flight-recorder configuration (see `fasda-trace`). Off by
    /// default; with tracing on, every engine configuration emits
    /// byte-identical per-node event streams and stall ledgers, retrieved
    /// with [`Cluster::take_trace`] after the run.
    pub trace: TraceConfig,
    /// Emit a live telemetry heartbeat every N completed steps (0 =
    /// off). The sinks (JSONL stream, Prometheus scrape file) are
    /// runtime attachments — see [`Cluster::attach_obs`] for in-process
    /// runs and `ShardOpts::obs` for sharded ones; this knob only sets
    /// the cadence, so it stays in the `Copy` engine config that shard
    /// workers replay from argv. Heartbeats read the live stall ledger,
    /// so the host enables at least `TraceLevel::Sync` alongside.
    pub heartbeat_every: u64,
}

impl EngineConfig {
    /// The serial reference engine: one thread, every cycle simulated,
    /// plain per-cycle interpretation.
    pub const fn serial() -> Self {
        EngineConfig {
            threads: 1,
            fast_forward: false,
            fast_path: false,
            soa: false,
            burst: false,
            trace: TraceConfig::OFF,
            heartbeat_every: 0,
        }
    }

    /// The optimized engine: parallel compute phase over all available
    /// cores, idle fast-forward, the chips' fast-path execution,
    /// force-phase burst stepping, and the fused SoA scan kernels
    /// (default-on since the fused filter→force kernel wins on dense
    /// workloads; opt out with [`EngineConfig::with_soa`]).
    pub fn parallel() -> Self {
        EngineConfig {
            threads: std::thread::available_parallelism().map_or(1, |n| n.get()),
            fast_forward: true,
            fast_path: true,
            soa: true,
            burst: true,
            trace: TraceConfig::OFF,
            heartbeat_every: 0,
        }
    }

    /// Pick an engine for the host automatically: the full optimized
    /// engine on multi-core machines, and on a single hardware thread the
    /// serial oracle compute path with idle fast-forward kept on (a rayon
    /// pool on one core only adds dispatch overhead, while fast-forward
    /// still wins big on straggler-style idle phases and costs nothing on
    /// dense ones). Used by the CLI when no engine is requested
    /// explicitly.
    pub fn auto() -> Self {
        match std::thread::available_parallelism() {
            Ok(n) if n.get() > 1 => Self::parallel(),
            _ => Self::serial().with_fast_forward(true),
        }
    }

    /// Enable or disable the chips' fast-path execution.
    pub fn with_fast_path(mut self, on: bool) -> Self {
        self.fast_path = on;
        self
    }

    /// Enable or disable the SoA batch-kernel scan path.
    pub fn with_soa(mut self, on: bool) -> Self {
        self.soa = on;
        self
    }

    /// Enable or disable force-phase burst stepping.
    pub fn with_burst(mut self, on: bool) -> Self {
        self.burst = on;
        self
    }

    /// Override the thread count.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Enable or disable idle fast-forward.
    pub fn with_fast_forward(mut self, on: bool) -> Self {
        self.fast_forward = on;
        self
    }

    /// Set the flight-recorder configuration for the run.
    pub fn with_trace(mut self, trace: TraceConfig) -> Self {
        self.trace = trace;
        self
    }

    /// Set the heartbeat cadence (completed steps between live
    /// telemetry snapshots; 0 = off).
    pub fn with_heartbeat_every(mut self, every: u64) -> Self {
        self.heartbeat_every = every;
        self
    }
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self::serial()
    }
}

/// Configuration of a multi-FPGA run.
#[derive(Clone, Debug)]
pub struct ClusterConfig {
    /// Per-chip architecture configuration.
    pub chip: ChipConfig,
    /// Cells per chip along each axis.
    pub block: (u32, u32, u32),
    /// Synchronization strategy (§4.4).
    pub sync: SyncMode,
    /// Inter-node topology (§4.1).
    pub topology: Topology,
    /// Port bandwidth, bits per cycle (paper: 500 = 100 Gbps @ 200 MHz).
    pub bits_per_cycle: f64,
    /// Packet-departure cooldown in cycles (§5.4).
    pub packet_cooldown: u32,
    /// Timestep in femtoseconds.
    pub dt_fs: f64,
    /// Optional straggler injection: `(node, stall_cycles)` delays that
    /// node's force phase every step (ablation for §4.4).
    pub straggler: Option<(usize, u64)>,
    /// Optional packet-loss injection `(probability, seed)` on both
    /// fabrics. UDP has no retransmission, so any loss deadlocks the
    /// chained synchronization — use with [`Cluster::try_run`] to observe
    /// the stall the paper's cooldown counters exist to prevent (§5.4).
    /// Superseded by [`ClusterConfig::faults`], which injects at the
    /// reliable-delivery boundary instead of inside the fabric.
    pub loss: Option<(f64, u64)>,
    /// Optional seeded link-fault schedule (drop / corrupt / duplicate /
    /// delay + targeted marker kills) applied at transmit time in the
    /// serial network phase — deterministic and engine-invariant.
    pub faults: Option<FaultPlan>,
    /// Optional reliable-delivery layer: per-link sequence numbers,
    /// cumulative acks, and timeout retransmission. With it on, chained
    /// sync converges under any finite fault schedule; with it off, a
    /// lost marker deadlocks the run (detected, not spun — see
    /// [`DeadlockDetected`]).
    pub reliability: Option<RelConfig>,
}

impl ClusterConfig {
    /// The paper's testbed setup for a given chip config and block.
    pub fn paper(chip: ChipConfig, block: (u32, u32, u32)) -> Self {
        ClusterConfig {
            chip,
            block,
            sync: SyncMode::Chained,
            topology: Topology::PAPER_SWITCH,
            bits_per_cycle: SwitchFabric::PAPER_BITS_PER_CYCLE,
            packet_cooldown: 2,
            dt_fs: 2.0,
            straggler: None,
            loss: None,
            faults: None,
            reliability: None,
        }
    }

    /// Attach a seeded fault schedule.
    pub fn with_faults(mut self, plan: FaultPlan) -> Self {
        self.faults = Some(plan);
        self
    }

    /// Enable the reliable-delivery layer.
    pub fn with_reliability(mut self, rel: RelConfig) -> Self {
        self.reliability = Some(rel);
        self
    }
}

/// A cluster run that failed to make progress within its cycle budget —
/// e.g. a lost packet starving the chained synchronization.
#[derive(Clone, Debug)]
pub struct ClusterStalled {
    /// Cycle at which the run gave up.
    pub at_cycle: u64,
    /// Per-node `(step, phase)` snapshot at the stall.
    pub node_states: Vec<(u64, String)>,
    /// Packets lost by the fabrics so far.
    pub packets_lost: u64,
}

impl std::fmt::Display for ClusterStalled {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "cluster stalled at cycle {} ({} packets lost); node states: {:?}",
            self.at_cycle, self.packets_lost, self.node_states
        )
    }
}

impl std::error::Error for ClusterStalled {}

/// A provable deadlock: every node quiescent, nothing scheduled on any
/// fabric, inbox, packetizer, barrier, or retransmission timer — the
/// cluster can never make progress again. The classic cause is a lost
/// `last` marker with the reliability layer off (§4.4).
#[derive(Clone, Debug)]
pub struct DeadlockDetected {
    /// Cycle at which the deadlock was proven.
    pub at_cycle: u64,
    /// Nodes still waiting: `(node, step, phase)`.
    pub starving: Vec<(usize, u64, String)>,
    /// Packets lost by the fabrics so far.
    pub packets_lost: u64,
    /// Flap/partition directives that latched before the deadlock —
    /// the diagnosis that separates "a partition starved the cluster"
    /// from an organic lost-marker deadlock. A window that already
    /// healed still appears: its cut traffic may be what starved us.
    pub outages: Vec<String>,
}

impl std::fmt::Display for DeadlockDetected {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "cluster deadlocked at cycle {} ({} packets lost); starving nodes:",
            self.at_cycle, self.packets_lost
        )?;
        for (node, step, phase) in &self.starving {
            write!(f, " node {node} at step {step} in {phase};")?;
        }
        if !self.outages.is_empty() {
            write!(f, " diagnosed outages: {};", self.outages.join(", "))?;
        }
        Ok(())
    }
}

impl std::error::Error for DeadlockDetected {}

/// A scheduled crash fired: the fault plan's `crash=NODE@STEP` directive
/// killed the run while the named node was mid-way through the step's
/// force phase. Unlike a stall or deadlock this is an *injected*
/// failure — the recovery path restores the cluster from its latest
/// checkpoint and re-runs from there (see the `ckpt` module).
#[derive(Clone, Debug)]
pub struct CrashInjected {
    /// Cycle at which the crash fired.
    pub at_cycle: u64,
    /// The node that "died".
    pub node: usize,
    /// Timestep the node was executing.
    pub step: u64,
    /// Packets lost by the fabrics so far.
    pub packets_lost: u64,
}

impl std::fmt::Display for CrashInjected {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "node {} crashed at cycle {} during step {} ({} packets lost); \
             recover by resuming from the latest checkpoint",
            self.node, self.at_cycle, self.step, self.packets_lost
        )
    }
}

impl std::error::Error for CrashInjected {}

/// Why a fallible cluster run did not complete.
#[derive(Clone, Debug)]
pub enum ClusterError {
    /// The cycle budget ran out before all steps finished.
    Stalled(ClusterStalled),
    /// The run can provably never finish (e.g. a lost sync marker with
    /// reliability off).
    Deadlock(DeadlockDetected),
    /// A `crash=NODE@STEP` fault directive killed the run mid-step.
    Crashed(CrashInjected),
}

impl ClusterError {
    /// Packets lost by the fabrics when the run gave up.
    pub fn packets_lost(&self) -> u64 {
        match self {
            ClusterError::Stalled(s) => s.packets_lost,
            ClusterError::Deadlock(d) => d.packets_lost,
            ClusterError::Crashed(c) => c.packets_lost,
        }
    }

    /// Cycle at which the run gave up.
    pub fn at_cycle(&self) -> u64 {
        match self {
            ClusterError::Stalled(s) => s.at_cycle,
            ClusterError::Deadlock(d) => d.at_cycle,
            ClusterError::Crashed(c) => c.at_cycle,
        }
    }
}

impl std::fmt::Display for ClusterError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClusterError::Stalled(s) => s.fmt(f),
            ClusterError::Deadlock(d) => d.fmt(f),
            ClusterError::Crashed(c) => c.fmt(f),
        }
    }
}

impl std::error::Error for ClusterError {}

impl From<CrashInjected> for ClusterError {
    fn from(c: CrashInjected) -> Self {
        ClusterError::Crashed(c)
    }
}

impl From<ClusterStalled> for ClusterError {
    fn from(s: ClusterStalled) -> Self {
        ClusterError::Stalled(s)
    }
}

impl From<DeadlockDetected> for ClusterError {
    fn from(d: DeadlockDetected) -> Self {
        ClusterError::Deadlock(d)
    }
}

/// Per-node execution state.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum NodePhase {
    Force,
    /// Waiting at the bulk barrier before entering MU.
    BarrierBeforeMu,
    Mu,
    /// Waiting at the bulk barrier before the next step's force phase.
    BarrierBeforeForce,
    Done,
}

/// Outcome of the fast-forward scan (see [`Cluster::try_run_with`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum NextEvent {
    /// Some chip still has local work: every cycle matters.
    Busy,
    /// All nodes quiescent; the next state change is at this cycle.
    At(u64),
    /// All nodes quiescent and nothing scheduled: deadlock.
    Never,
}

#[derive(Clone, Debug)]
pub(crate) struct NodeState {
    pub(crate) step: u64,
    pub(crate) phase: NodePhase,
    pub(crate) phase_start: u64,
    pub(crate) force_cycles: u64,
    pub(crate) last_pos_flushed: bool,
    pub(crate) mig_flushed: bool,
    pub(crate) barrier_release: Option<u64>,
}

/// Channel index for the per-node reliability link maps (pos, frc, mig).
#[inline]
pub(crate) fn chan_index(kind: PacketKind) -> usize {
    match kind {
        PacketKind::Position => 0,
        PacketKind::Force => 1,
        PacketKind::Migration => 2,
    }
}

#[inline]
pub(crate) fn chan_of(kind: PacketKind) -> FaultChannel {
    match kind {
        PacketKind::Position => FaultChannel::Pos,
        PacketKind::Force => FaultChannel::Frc,
        PacketKind::Migration => FaultChannel::Mig,
    }
}

#[inline]
pub(crate) fn channel_id(kind: PacketKind) -> ChannelId {
    match kind {
        PacketKind::Position => ChannelId::Pos,
        PacketKind::Force => ChannelId::Frc,
        PacketKind::Migration => ChannelId::Mig,
    }
}

/// Runtime state of the reliable-delivery layer: one
/// [`LinkSender`]/[`LinkReceiver`] pair per *(node, channel, peer)*
/// link, created lazily on first use. All mutations happen in the
/// serial network/delivery phases, so the state (and everything derived
/// from it — stall classes, retransmit deadlines) is engine-invariant.
#[derive(Clone, Debug)]
pub(crate) struct RelState {
    cfg: RelConfig,
    /// `tx[node][channel][peer]` — outbound link senders.
    pub(crate) tx: Vec<[BTreeMap<usize, LinkSender<Delivery>>; 3]>,
    /// `rx[node][channel][peer]` — inbound link receivers.
    pub(crate) rx: Vec<[BTreeMap<usize, LinkReceiver<Delivery>>; 3]>,
    /// Cumulative acks put on the fabric.
    pub(crate) acks_sent: u64,
    /// Corrupted frames discarded at receivers (checksum failures).
    pub(crate) corrupt_dropped: u64,
}

impl RelState {
    fn new(cfg: RelConfig, nodes: usize) -> Self {
        RelState {
            cfg,
            tx: (0..nodes).map(|_| Default::default()).collect(),
            rx: (0..nodes).map(|_| Default::default()).collect(),
            acks_sent: 0,
            corrupt_dropped: 0,
        }
    }

    fn sender(&mut self, node: usize, kind: PacketKind, peer: usize) -> &mut LinkSender<Delivery> {
        let cfg = self.cfg;
        self.tx[node][chan_index(kind)]
            .entry(peer)
            .or_insert_with(|| LinkSender::new(cfg))
    }

    fn receiver(
        &mut self,
        node: usize,
        kind: PacketKind,
        peer: usize,
    ) -> &mut LinkReceiver<Delivery> {
        self.rx[node][chan_index(kind)].entry(peer).or_default()
    }

    /// Earliest retransmission deadline across one node's outbound links.
    fn next_retx_due(&self, node: usize) -> Option<u64> {
        self.tx[node]
            .iter()
            .flat_map(|links| links.values())
            .filter_map(LinkSender::next_retx_due)
            .min()
    }

    /// Whether any of the node's outbound links is actively
    /// retransmitting (head packet has ≥ 1 failed attempt).
    fn retransmitting(&self, node: usize) -> bool {
        self.tx[node]
            .iter()
            .flat_map(|links| links.values())
            .any(LinkSender::retransmitting)
    }

    /// Whether any of the node's outbound links has unacked packets.
    fn inflight(&self, node: usize) -> bool {
        self.tx[node]
            .iter()
            .flat_map(|links| links.values())
            .any(|s| s.inflight() > 0)
    }

    pub(crate) fn total_retransmits(&self) -> u64 {
        self.tx
            .iter()
            .flat_map(|n| n.iter())
            .flat_map(|links| links.values())
            .map(|s| s.retransmits)
            .sum()
    }

    pub(crate) fn total_duplicates(&self) -> u64 {
        self.rx
            .iter()
            .flat_map(|n| n.iter())
            .flat_map(|links| links.values())
            .map(|r| r.duplicates)
            .sum()
    }
}

/// The multi-FPGA FASDA system.
pub struct Cluster {
    pub(crate) cfg: ClusterConfig,
    pub(crate) global: SimulationSpace,
    /// One timed chip per node, indexed in Eq.-7 order over the node
    /// grid.
    pub chips: Vec<TimedChip>,
    pub(crate) node_coord: Vec<ChipCoord>,
    /// Node grid dimensions; node ids are dense in Eq.-7 order, so the
    /// coordinate → node mapping is pure arithmetic (no hash lookup on
    /// the per-cycle path).
    grid: (u32, u32, u32),
    pub(crate) sync: Vec<ChainedSync<usize>>,
    pub(crate) pos_pz: Vec<Packetizer<usize, PosFlit>>,
    pub(crate) frc_pz: Vec<Packetizer<usize, FrcFlit>>,
    pub(crate) mig_pz: Vec<Packetizer<usize, MigFlit>>,
    /// Position-port fabric (positions + migration).
    pub pos_fabric: SwitchFabric,
    /// Force-port fabric.
    pub frc_fabric: SwitchFabric,
    pub(crate) inbox: Vec<MessageQueue<NetMsg>>,
    /// Seeded fault injection (None = clean fabric).
    pub(crate) faults: Option<FaultState>,
    /// Reliable-delivery layer (None = raw UDP semantics).
    pub(crate) rel: Option<RelState>,
    pub(crate) state: Vec<NodeState>,
    pub(crate) stalls: Vec<u64>,
    pub(crate) barrier_mu: BulkBarrier,
    pub(crate) barrier_force: BulkBarrier,
    /// Global wall-clock cycle.
    pub cycle: u64,
    /// Cycles the fast-forward engine jumped over instead of simulating
    /// (always 0 for `fast_forward: false`; cycle counts are unaffected).
    pub skipped_cycles: u64,
    /// Cycles simulated inside force-phase bursts (a subset of the total
    /// — burst cycles are real simulated cycles, just run without the
    /// per-cycle exchange/network walk).
    pub burst_cycles: u64,
    /// Number of bursts that ran.
    pub burst_count: u64,
    /// Burst attempts refused (window below [`MIN_BURST`]); always the
    /// sum of the three named reason counters below.
    ///
    /// On the reference workloads every refusal is `interface` or
    /// `idle` — measured by sampling the window on *every* engine
    /// cycle: each time a chip's rings and SPE queues were observed
    /// fully drained, its stations had already finished too
    /// (completion bound 0). Every ring-kind scan ends with a
    /// chip-boundary event (a force flit or a remote-completion
    /// record), and staggered stations space those events closer than
    /// [`MIN_BURST`], so a quiet-but-busy span never materializes: the
    /// chip boundary stays occupied for exactly as long as the chip
    /// computes. Burst therefore cannot engage on dense (or sparse)
    /// force phases of this model; these counters exist so benchmark
    /// reports say *why* rather than silently printing zeros.
    pub burst_refused: u64,
    /// Refusals because some node's external interface (a delivery,
    /// departure, barrier release, marker flush, ring traffic, or an
    /// imminent boundary ejection) could fire within [`MIN_BURST`].
    pub burst_refused_interface: u64,
    /// Refusals because no force-phase chip was computing at all — the
    /// span is idle and belongs to fast-forward, not burst.
    pub burst_refused_idle: u64,
    /// Refusals because a window opened but was shorter than
    /// [`MIN_BURST`] (the eligibility scan would cost more than the
    /// per-cycle loop it skips).
    pub burst_refused_small: u64,
    /// Monotonic count of node phase transitions. The burst retry
    /// throttle resets its exponential backoff whenever this changes:
    /// a transition (e.g. a node entering its force phase) creates a
    /// fresh burst opportunity that the backoff from the *previous*
    /// phase's refusals must not starve. Not checkpointed — it is a
    /// throttle heuristic, and burst throttling never affects the
    /// simulated state (only which wall-clock path computes it).
    phase_epoch: u64,
    /// Per-node quiescence cache (optimized engines only): `quiet[n]`
    /// means node `n`'s chip was observed locally idle and nothing has
    /// been injected into it since, so its O(CBBs) idle predicates need
    /// not be re-evaluated every cycle. Invalidated on every phase
    /// transition and every fabric delivery into the node.
    quiet: Vec<bool>,
    /// Whether the current run maintains (and may trust) `quiet`.
    use_quiet: bool,
    pub(crate) records: Vec<NodeStepReport>,
    /// Flight-recorder configuration of the current/last run.
    pub(crate) trace_cfg: TraceConfig,
    /// Hot-path gate: `trace_cfg.level != Off` for the current run.
    pub(crate) tracing: bool,
    /// Engine-level event stream (burst windows, fast-forward jumps) —
    /// deliberately separate from the per-node streams, which stay
    /// byte-identical across engines.
    pub(crate) tr_engine: NodeRecorder,
    /// Per-(node, step) force-phase stall attribution.
    pub(crate) tr_stalls: StallLedger,
    /// Which chips ticked in the current compute phase (tracing only);
    /// engine-invariant because a `quiet`-skipped chip is idle and would
    /// not have ticked under the serial reference either.
    ticked: Vec<bool>,
    /// Sharded-engine capture hook. `None` (the default) keeps the
    /// in-process oracle path: sends go straight onto the fabrics and
    /// into destination inboxes. `Some` diverts every wire crossing into
    /// a per-cycle event buffer for the cross-shard merge — see the
    /// `shard` module and `DESIGN.md` §11.
    pub(crate) exchange: Option<ExchangeBuf>,
    /// Live telemetry sampler (see the `obs` module). `None` (the
    /// default) keeps the hot loop at a single `is_some()` branch per
    /// cycle. A runtime attachment like the trace sinks — never
    /// checkpointed, never part of the simulated state.
    pub(crate) obs: Option<Box<crate::obs::ObsLive>>,
}

/// One captured wire crossing: a data frame or ack that left an owned
/// node's port this cycle. `arrive` is the post-serialization arrival
/// cycle at the destination port (source-side state already advanced);
/// the destination shard completes the send with
/// [`SwitchFabric::rx_admit`] during the merge. `extra` carries a fault
/// layer delay applied *after* port admission, exactly as the oracle
/// adds it after `SwitchFabric::send`.
#[derive(Clone, Debug)]
pub(crate) struct WireEvent {
    pub(crate) stage: u8,
    pub(crate) src: u32,
    pub(crate) dst: u32,
    pub(crate) arrive: u64,
    pub(crate) extra: u64,
    pub(crate) msg: NetMsg,
}

/// Per-cycle wire-event capture state for one shard worker.
///
/// `stage` stamps each event with its generation phase — 0 for fresh
/// sends in [`Cluster::network_cycle`], 1 for retransmissions, 2 for
/// acks emitted inside [`Cluster::deliver_due`]. The oracle generates
/// events in (stage, src) order (each phase walks nodes in ascending
/// order), so a stable sort by that key over the concatenated per-shard
/// buffers reproduces the oracle's exact per-inbox admission order —
/// including the destination-port contention trajectory and the inbox
/// sequence numbers that tie-break simultaneous deliveries.
#[derive(Debug)]
pub(crate) struct ExchangeBuf {
    /// Contiguous node range this worker owns.
    pub(crate) owned: std::ops::Range<usize>,
    /// Generation stage stamped onto captured events.
    pub(crate) stage: u8,
    /// Events captured since the last [`Cluster::take_wire_events`].
    pub(crate) events: Vec<WireEvent>,
}

impl Cluster {
    /// Build the cluster over a simulation space and load the particles.
    pub fn new(cfg: ClusterConfig, sys: &ParticleSystem) -> Self {
        let global = sys.space;
        let probe = ChipGeometry::new(global, cfg.block, ChipCoord::new(0, 0, 0));
        let grid = probe.grid();
        let n = probe.num_chips() as usize;
        assert!(n >= 2, "use TimedChip::run_timestep for single-chip runs");

        // Node ids in Eq.-7 order over the chip grid.
        let mut node_coord = Vec::with_capacity(n);
        for x in 0..grid.0 {
            for y in 0..grid.1 {
                for z in 0..grid.2 {
                    node_coord.push(ChipCoord::new(x, y, z));
                }
            }
        }
        // Match Eq. 7: z fastest — the triple loop above already does
        // x-major / z-fastest ordering, so the node id of a coordinate is
        // dense arithmetic.
        let node_of = |c: &ChipCoord| ((c.x * grid.1 + c.y) * grid.2 + c.z) as usize;
        debug_assert!(node_coord.iter().enumerate().all(|(i, c)| node_of(c) == i));

        let mut chips = Vec::with_capacity(n);
        let mut sync = Vec::with_capacity(n);
        let mut pos_pz = Vec::with_capacity(n);
        let mut frc_pz = Vec::with_capacity(n);
        let mut mig_pz = Vec::with_capacity(n);
        for coord in &node_coord {
            let geo = ChipGeometry::new(global, cfg.block, *coord);
            let mut chip = TimedChip::new(cfg.chip, geo, sys.units, cfg.dt_fs);
            chip.load(sys);
            let send: Vec<usize> = chip.send_chips.iter().map(node_of).collect();
            let recv: Vec<usize> = chip.recv_chips.iter().map(node_of).collect();
            let s = ChainedSync::new(send, recv);
            pos_pz.push(Packetizer::new(
                PacketKind::Position,
                s.send_peers.clone(),
                cfg.packet_cooldown,
            ));
            frc_pz.push(Packetizer::new(
                PacketKind::Force,
                s.recv_peers.clone(),
                cfg.packet_cooldown,
            ));
            mig_pz.push(Packetizer::new(
                PacketKind::Migration,
                s.mig_peers.clone(),
                cfg.packet_cooldown,
            ));
            sync.push(s);
            chips.push(chip);
        }

        let total: usize = chips.iter().map(TimedChip::num_particles).sum();
        assert_eq!(total, sys.len(), "every particle must land on some chip");

        let bulk_latency = match cfg.sync {
            SyncMode::Bulk { latency } => latency,
            SyncMode::Chained => 0,
        };

        let pos_fabric = match cfg.loss {
            Some((p, seed)) => {
                SwitchFabric::new(cfg.topology, n, cfg.bits_per_cycle).with_loss(p, seed)
            }
            None => SwitchFabric::new(cfg.topology, n, cfg.bits_per_cycle),
        };
        let frc_fabric = match cfg.loss {
            Some((p, seed)) => SwitchFabric::new(cfg.topology, n, cfg.bits_per_cycle)
                .with_loss(p, seed.wrapping_add(1)),
            None => SwitchFabric::new(cfg.topology, n, cfg.bits_per_cycle),
        };
        let faults = cfg
            .faults
            .clone()
            .filter(|p| !p.is_none())
            .map(FaultState::new);
        let rel = cfg.reliability.map(|rc| RelState::new(rc, n));

        Cluster {
            cfg,
            global,
            chips,
            node_coord,
            grid,
            sync,
            pos_pz,
            frc_pz,
            mig_pz,
            pos_fabric,
            frc_fabric,
            inbox: (0..n).map(|_| MessageQueue::new()).collect(),
            faults,
            rel,
            state: vec![
                NodeState {
                    step: 0,
                    phase: NodePhase::Force,
                    phase_start: 0,
                    force_cycles: 0,
                    last_pos_flushed: false,
                    mig_flushed: false,
                    barrier_release: None,
                };
                n
            ],
            stalls: vec![0; n],
            barrier_mu: BulkBarrier::new(n, bulk_latency),
            barrier_force: BulkBarrier::new(n, bulk_latency),
            cycle: 0,
            skipped_cycles: 0,
            burst_cycles: 0,
            burst_count: 0,
            burst_refused: 0,
            burst_refused_interface: 0,
            burst_refused_idle: 0,
            burst_refused_small: 0,
            phase_epoch: 0,
            quiet: vec![false; n],
            use_quiet: false,
            records: Vec::new(),
            trace_cfg: TraceConfig::OFF,
            tracing: false,
            tr_engine: NodeRecorder::off(),
            tr_stalls: StallLedger::new(n),
            ticked: vec![false; n],
            exchange: None,
            obs: None,
        }
    }

    /// Attach a live telemetry sampler for the next run(s). The sampler
    /// fires on the cadence of [`EngineConfig::heartbeat_every`]; it is
    /// a pure observer — simulated state and reports are unaffected.
    pub fn attach_obs(&mut self, obs: Box<crate::obs::ObsLive>) {
        self.obs = Some(obs);
    }

    /// Detach the live telemetry sampler (e.g. to read its beat count).
    pub fn take_obs(&mut self) -> Option<Box<crate::obs::ObsLive>> {
        self.obs.take()
    }

    /// The node range the current execution context owns: the shard
    /// worker's slice in sharded mode, every node otherwise. All
    /// per-node driver loops iterate this range, which is what lets one
    /// code path serve both the in-process oracle and the shard workers.
    #[inline]
    pub(crate) fn owned_range(&self) -> std::ops::Range<usize> {
        match &self.exchange {
            Some(ex) => ex.owned.clone(),
            None => 0..self.num_nodes(),
        }
    }

    /// Whether every owned node has completed `steps` timesteps.
    pub(crate) fn owned_done(&self, steps: u64) -> bool {
        self.owned_range()
            .all(|n| self.state[n].phase == NodePhase::Done && self.state[n].step >= steps)
    }

    /// Drain the wire events captured since the last call (sharded mode;
    /// empty in oracle mode).
    pub(crate) fn take_wire_events(&mut self) -> Vec<WireEvent> {
        self.exchange
            .as_mut()
            .map_or_else(Vec::new, |ex| std::mem::take(&mut ex.events))
    }

    /// Merge-admit one cycle's wire events (own + every peer shard's):
    /// stable-sort by (stage, src) to reconstruct the oracle's global
    /// generation order, then complete destination-port admission and
    /// inbox insertion for the events whose destination this worker
    /// owns. Events for other shards' nodes are skipped — their owners
    /// admit them from their own copy of the same merged list.
    pub(crate) fn admit_wire_events(&mut self, mut events: Vec<WireEvent>) {
        events.sort_by_key(|e| (e.stage, e.src));
        let owned = self.owned_range();
        for e in events {
            let dst = e.dst as usize;
            if !owned.contains(&dst) {
                continue;
            }
            let kind = match &e.msg {
                NetMsg::Data(d) => d.cargo.kind(),
                NetMsg::Ack { channel, .. } => *channel,
            };
            let at = match kind {
                PacketKind::Force => self.frc_fabric.rx_admit(e.arrive, dst),
                _ => self.pos_fabric.rx_admit(e.arrive, dst),
            };
            self.inbox[dst].send(at + e.extra, e.msg);
        }
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.chips.len()
    }

    /// Node coordinates in the logical torus.
    pub fn node_coord(&self, node: usize) -> ChipCoord {
        self.node_coord[node]
    }

    /// Node id of a chip coordinate (dense Eq.-7 index, inverse of
    /// [`Cluster::node_coord`]).
    #[inline]
    fn node_of(&self, c: ChipCoord) -> usize {
        ((c.x * self.grid.1 + c.y) * self.grid.2 + c.z) as usize
    }

    /// Run `steps` timesteps; returns the run report.
    ///
    /// # Panics
    /// If the cluster fails to converge (see [`Cluster::try_run`] for the
    /// non-panicking variant used in failure-injection studies).
    pub fn run(&mut self, steps: u64) -> ClusterRunReport {
        self.run_with(steps, &EngineConfig::serial())
    }

    /// [`Cluster::run`] under an explicit engine configuration.
    pub fn run_with(&mut self, steps: u64, engine: &EngineConfig) -> ClusterRunReport {
        match self.try_run_with(steps, MAX_RUN_CYCLES, engine) {
            Ok(r) => r,
            Err(e) => panic!("{e}"),
        }
    }

    /// Run `steps` timesteps with an explicit cycle budget; returns
    /// `Err(ClusterError)` instead of panicking when progress stops:
    /// [`ClusterError::Stalled`] when the budget ran out, or
    /// [`ClusterError::Deadlock`] when the driver proves no event can
    /// ever fire again (e.g. a lost sync marker with reliability off).
    pub fn try_run(&mut self, steps: u64, cycle_budget: u64) -> Result<ClusterRunReport, ClusterError> {
        self.try_run_with(steps, cycle_budget, &EngineConfig::serial())
    }

    /// [`Cluster::try_run`] under an explicit engine configuration.
    ///
    /// Every global cycle is split into a *compute phase* — each
    /// non-stalled node's chip ticks one cycle against state frozen at the
    /// cycle start, touching only that chip, so the chips may tick on a
    /// rayon pool in any order — and a serial *exchange phase* that runs
    /// in node order: egress drains, packetizer offers and marker flushes,
    /// sync bookkeeping, barrier arrivals and phase transitions, then the
    /// fabric and delivery sweeps. Because no compute-phase tick observes
    /// another node's same-cycle exchange, the interleaving is equivalent
    /// to the serial reference and results are bit-identical for any
    /// thread count. With `fast_forward`, cycles in which every node is
    /// quiescent are skipped by jumping the clock to the next scheduled
    /// event (delivery, packet departure, barrier release or stall
    /// expiry); cycle counts still include the skipped span.
    pub fn try_run_with(
        &mut self,
        steps: u64,
        cycle_budget: u64,
        engine: &EngineConfig,
    ) -> Result<ClusterRunReport, ClusterError> {
        assert!(steps > 0);
        let run_start = self.cycle;
        let pool = if engine.threads > 1 {
            ThreadPoolBuilder::new().num_threads(engine.threads).build().ok()
        } else {
            None
        };
        self.arm_run(engine);

        // Retry throttle for burst attempts: after a failed window scan
        // (W below the worthwhile threshold) the blocking condition — a
        // filling FIFO, a packet in flight, an imminent barrier — rarely
        // clears within a cycle or two, so don't pay the O(nodes · PEs)
        // scan again immediately. The backoff resets whenever any node
        // transitions phase (`phase_epoch`): windows cluster in the
        // force-phase tail, and a backoff inflated to hundreds of cycles
        // by mid-phase refusals would sleep straight through the next
        // phase's tail.
        let mut burst_cooldown = 0u64;
        let mut burst_backoff = BURST_RETRY_COOLDOWN;
        let mut burst_epoch = self.phase_epoch;
        let mut idle_streak = 0u64;
        // `crash=NODE@STEP` directives: a node "dies" once its force
        // phase for that step is underway. Checked at the cycle-loop top
        // so a run resumed from a checkpoint taken at the step boundary
        // (phase still Done/armed, no force cycle executed yet) does not
        // immediately re-fire; the resume path strips fired directives
        // with `FaultPlan::without_crash`/`without_crash_at` anyway.
        // Several directives may be armed (staggered crashes); if more
        // than one is due on the same cycle, the lowest node fires —
        // the same order the sharded merge resolves concurrent crashes.
        let crashes: Vec<CrashPoint> = self
            .cfg
            .faults
            .as_ref()
            .map(|p| p.crashes.clone())
            .unwrap_or_default();

        while !self.all_done(steps) {
            let fired = crashes
                .iter()
                .filter(|cp| {
                    let node = cp.node as usize;
                    node < self.num_nodes()
                        && self.state[node].phase == NodePhase::Force
                        && self.state[node].step == cp.step
                        && self.cycle > self.state[node].phase_start
                })
                .min_by_key(|cp| cp.node);
            if let Some(cp) = fired {
                return Err(CrashInjected {
                    at_cycle: self.cycle,
                    node: cp.node as usize,
                    step: cp.step,
                    packets_lost: self.pos_fabric.packets_lost + self.frc_fabric.packets_lost,
                }
                .into());
            }
            let stepped = self.compute_phase(pool.as_ref());
            if self.tracing {
                self.attribute_cycle();
            }
            self.exchange_actions(steps);
            self.network_cycle();
            let delivered = self.deliver_due();
            self.cycle += 1;
            if self.obs.is_some() {
                self.obs_beat(steps);
            }
            if self.cycle - run_start >= cycle_budget {
                return Err(self.stalled().into());
            }
            // Deadlock detection for engines without fast-forward (the
            // fast-forward scan below proves deadlock itself): on a long
            // idle streak — no chip ticked, nothing delivered — scan the
            // event horizon; when nothing is scheduled anywhere, the
            // cluster can provably never progress again.
            if !engine.fast_forward {
                if stepped || delivered {
                    idle_streak = 0;
                } else {
                    idle_streak += 1;
                    if idle_streak.is_multiple_of(DEADLOCK_SCAN_INTERVAL)
                        && matches!(self.next_event_cycle(), NextEvent::Never)
                    {
                        return Err(self.deadlocked().into());
                    }
                }
            }
            // Burst stepping: when every node's external interfaces are
            // provably quiet for the next W cycles, advance all busy
            // force-phase chips W cycles in one inner loop. Skipped on
            // delivery cycles (a delivery can enable an exchange action
            // the following cycle) — the same rule the fast-forward scan
            // uses below.
            if engine.burst && !delivered && stepped {
                if self.phase_epoch != burst_epoch {
                    burst_epoch = self.phase_epoch;
                    burst_cooldown = 0;
                    burst_backoff = BURST_RETRY_COOLDOWN;
                }
                if burst_cooldown > 0 {
                    burst_cooldown -= 1;
                } else {
                    let cap = run_start + cycle_budget;
                    if self.try_burst(pool.as_ref(), cap) {
                        burst_backoff = BURST_RETRY_COOLDOWN;
                    } else {
                        burst_cooldown = burst_backoff;
                        burst_backoff = (burst_backoff * 2).min(BURST_RETRY_COOLDOWN_MAX);
                    }
                    if self.cycle >= cap {
                        return Err(self.stalled().into());
                    }
                }
            }
            // Scan for a jump only on cycles that ticked no chip and
            // delivered nothing: a ticked chip is almost certainly still
            // busy next cycle, and a delivery can enable an exchange
            // action one cycle later. Skipping the scan is always safe —
            // it just declines a jump over cycles that would have been
            // no-ops.
            if engine.fast_forward && !stepped && !delivered && !self.all_done(steps) {
                let cap = run_start + cycle_budget;
                match self.next_event_cycle() {
                    NextEvent::Busy => {}
                    NextEvent::At(t) => self.jump_to(t.min(cap)),
                    // Nothing scheduled and nodes still waiting: a true
                    // deadlock (e.g. a lost sync marker) — report it
                    // instead of spinning out the budget.
                    NextEvent::Never => return Err(self.deadlocked().into()),
                }
                if self.cycle >= cap {
                    return Err(self.stalled().into());
                }
            }
        }

        Ok(self.assemble_report(steps, self.cycle - run_start))
    }

    /// Cold path of the per-cycle telemetry hook: hand the cluster to
    /// the attached sampler. Take/put-back so the sampler can read
    /// `&self` without aliasing its own `&mut`.
    #[cold]
    fn obs_beat(&mut self, steps: u64) {
        let Some(mut obs) = self.obs.take() else {
            return;
        };
        obs.maybe_beat(self, steps);
        self.obs = Some(obs);
    }

    /// Run prologue: reset per-run chip statistics and execution flags,
    /// initialize the flight recorder, and arm every owned node's force
    /// phase for its current step. Extracted from
    /// [`Cluster::try_run_with`] so a shard worker — which arms only the
    /// nodes it owns — executes the identical sequence.
    pub(crate) fn arm_run(&mut self, engine: &EngineConfig) {
        let owned = self.owned_range();
        for node in owned.clone() {
            let chip = &mut self.chips[node];
            chip.reset_stats();
            chip.set_fast_path(engine.fast_path);
            chip.set_soa_scan(engine.soa);
            chip.set_trace(engine.trace);
        }
        self.trace_cfg = engine.trace;
        self.tracing = engine.trace.level != TraceLevel::Off;
        self.tr_engine = NodeRecorder::new(engine.trace);
        self.tr_stalls = StallLedger::new(self.num_nodes());
        self.use_quiet = engine.fast_forward || engine.fast_path || engine.burst;
        self.quiet.iter_mut().for_each(|q| *q = false);
        self.records.clear();
        // arm step 0
        for node in owned {
            self.sync[node].begin_step(self.state[node].step);
            self.chips[node].begin_force_phase();
            self.phase_epoch += 1;
            self.state[node].phase = NodePhase::Force;
            self.state[node].phase_start = self.cycle;
            self.state[node].last_pos_flushed = false;
            if let Some((s, d)) = self.cfg.straggler {
                if s == node {
                    self.stalls[node] = d;
                }
            }
            if self.tracing {
                let cycle = self.cycle;
                let step = self.state[node].step;
                let stall = self.stalls[node];
                let tr = self.chips[node].trace_mut();
                tr.push(cycle, EventKind::PhaseBegin { phase: PhaseId::Force, step });
                if stall > 0 {
                    tr.push(cycle, EventKind::StallInjected { cycles: stall });
                }
            }
        }
    }

    /// Exchange phase for every owned node: decrement injected stalls,
    /// drain packetizers and flush sync markers, and fire barrier /
    /// phase transitions. Extracted from the [`Cluster::try_run_with`]
    /// cycle loop for reuse by the shard workers; touches only owned
    /// node state, so shard-local execution is oracle-identical.
    pub(crate) fn exchange_actions(&mut self, steps: u64) {
        for node in self.owned_range() {
            if self.stalls[node] > 0 {
                self.stalls[node] -= 1;
                continue;
            }
            match self.state[node].phase {
                NodePhase::Force => self.force_exchange(node),
                NodePhase::Mu => self.mu_exchange(node, steps),
                NodePhase::BarrierBeforeMu => {
                    if self.state[node].barrier_release.is_some_and(|r| self.cycle >= r) {
                        self.enter_mu(node);
                    }
                }
                NodePhase::BarrierBeforeForce => {
                    if self.state[node].barrier_release.is_some_and(|r| self.cycle >= r) {
                        self.enter_next_force(node);
                    }
                }
                NodePhase::Done => {}
            }
        }
    }

    fn stalled(&self) -> ClusterStalled {
        ClusterStalled {
            at_cycle: self.cycle,
            node_states: self
                .state
                .iter()
                .map(|s| (s.step, format!("{:?}", s.phase)))
                .collect(),
            packets_lost: self.pos_fabric.packets_lost + self.frc_fabric.packets_lost,
        }
    }

    fn deadlocked(&self) -> DeadlockDetected {
        DeadlockDetected {
            at_cycle: self.cycle,
            starving: self
                .state
                .iter()
                .enumerate()
                .filter(|(_, s)| s.phase != NodePhase::Done)
                .map(|(n, s)| (n, s.step, format!("{:?}", s.phase)))
                .collect(),
            packets_lost: self.pos_fabric.packets_lost + self.frc_fabric.packets_lost,
            outages: self
                .faults
                .as_ref()
                .map(|f| f.fired_outages())
                .unwrap_or_default(),
        }
    }

    fn all_done(&self, steps: u64) -> bool {
        self.state.iter().all(|s| s.phase == NodePhase::Done && s.step >= steps)
    }

    // ------------------------------------------------------------------

    /// Compute phase: tick every chip that has local work, each against
    /// its own state only. Fans out over the pool when one is configured;
    /// chip independence makes the result order-invariant. Returns whether
    /// any chip ticked this cycle.
    pub(crate) fn compute_phase(&mut self, pool: Option<&ThreadPool>) -> bool {
        let tracing = self.tracing;
        let now = self.cycle;
        if tracing {
            self.ticked.iter_mut().for_each(|t| *t = false);
        }
        match pool {
            None => {
                let mut stepped = false;
                for node in self.owned_range() {
                    if self.stalls[node] > 0 || (self.use_quiet && self.quiet[node]) {
                        continue;
                    }
                    match self.state[node].phase {
                        NodePhase::Force => {
                            if !self.chips[node].force_phase_local_idle() {
                                if tracing {
                                    self.chips[node].set_trace_now(now);
                                    self.ticked[node] = true;
                                }
                                self.chips[node].step_force_cycle();
                                stepped = true;
                            } else if self.use_quiet {
                                self.quiet[node] = true;
                            }
                        }
                        NodePhase::Mu => {
                            if !self.chips[node].mu_phase_local_idle()
                                || !self.state[node].mig_flushed
                            {
                                if tracing {
                                    self.chips[node].set_trace_now(now);
                                    self.ticked[node] = true;
                                }
                                self.chips[node].step_mu_cycle();
                                stepped = true;
                            } else if self.use_quiet {
                                self.quiet[node] = true;
                            }
                        }
                        _ => {}
                    }
                }
                stepped
            }
            Some(pool) => {
                use rayon::prelude::*;
                let owned = self.owned_range();
                let Cluster { chips, state, stalls, quiet, use_quiet, ticked, .. } = self;
                let mut jobs: Vec<(&mut TimedChip, bool)> = Vec::with_capacity(chips.len());
                for (node, chip) in chips.iter_mut().enumerate() {
                    if !owned.contains(&node) {
                        continue;
                    }
                    if stalls[node] > 0 || (*use_quiet && quiet[node]) {
                        continue;
                    }
                    match state[node].phase {
                        NodePhase::Force => {
                            if !chip.force_phase_local_idle() {
                                if tracing {
                                    chip.set_trace_now(now);
                                    ticked[node] = true;
                                }
                                jobs.push((chip, true));
                            } else if *use_quiet {
                                quiet[node] = true;
                            }
                        }
                        NodePhase::Mu => {
                            if !chip.mu_phase_local_idle() || !state[node].mig_flushed {
                                if tracing {
                                    chip.set_trace_now(now);
                                    ticked[node] = true;
                                }
                                jobs.push((chip, false));
                            } else if *use_quiet {
                                quiet[node] = true;
                            }
                        }
                        _ => {}
                    }
                }
                if !jobs.is_empty() {
                    pool.install(|| {
                        jobs.par_iter_mut().for_each(|(chip, force)| {
                            if *force {
                                chip.step_force_cycle();
                            } else {
                                chip.step_mu_cycle();
                            }
                        });
                    });
                }
                !jobs.is_empty()
            }
        }
    }

    // ------------------------------------------------------------------
    // Stall attribution (tracing only).

    /// Classify one global cycle for every force-phase node: *productive*
    /// when its chip ticked with a busy PE, otherwise one
    /// [`StallCause`]. Runs between the compute and exchange phases so
    /// injected stalls are observed before their per-cycle decrement, and
    /// skips a node's phase-arming cycle (`cycle == phase_start`) so the
    /// per-step totals sum exactly to the node's recorded `force_cycles`.
    pub(crate) fn attribute_cycle(&mut self) {
        for node in self.owned_range() {
            let st = &self.state[node];
            if st.phase != NodePhase::Force || self.cycle <= st.phase_start {
                continue;
            }
            let step = st.step;
            if self.ticked[node] {
                match self.chips[node].force_activity() {
                    ForceActivity::PeBusy => self.tr_stalls.productive(node, step, 1),
                    ForceActivity::OutputBackpressure => {
                        self.tr_stalls
                            .stall(node, step, StallCause::RingBackpressure, 1);
                    }
                    ForceActivity::InputStarved => {
                        self.tr_stalls
                            .stall(node, step, StallCause::FilterStarved, 1);
                    }
                }
            } else {
                let cause = self.classify_idle(node);
                self.tr_stalls.stall(node, step, cause, 1);
            }
        }
    }

    /// Why a force-phase node whose chip did not tick is idle. Checked in
    /// precedence order: an injected stall freezes the node outright; a
    /// completed sync handshake means the phase transition fires on the
    /// next exchange (drained); packets parked in a packetizer are waiting
    /// out the departure cooldown; an outbound link mid-retransmission
    /// (or merely waiting on acks) pins the wait on the reliability
    /// layer; otherwise the node is drained locally and waiting on a
    /// neighbour's markers or data.
    fn classify_idle(&self, node: usize) -> StallCause {
        if self.stalls[node] > 0 {
            return StallCause::Injected;
        }
        if self.sync[node].force_phase_complete() {
            return StallCause::Drained;
        }
        if self.pos_pz[node].pending() > 0 || self.frc_pz[node].pending() > 0 {
            return StallCause::TxCooldown;
        }
        if let Some(rel) = &self.rel {
            if rel.retransmitting(node) {
                return StallCause::Retransmit;
            }
            if rel.inflight(node) {
                return StallCause::WaitAck;
            }
        }
        StallCause::WaitNeighborSync
    }

    /// Burst-window attribution: each bursting chip computes with at
    /// least one busy PE on every window cycle (the window proof
    /// guarantees no station ejection, so an occupied station — created
    /// at the latest by the first cycle's dispatch — persists), and every
    /// other force-phase node's classification inputs are frozen for the
    /// whole window, so its single-cycle cause holds `w` times. `busy` is
    /// ascending (node-order scan).
    fn attribute_burst(&mut self, busy: &[usize], w: u64) {
        for node in self.owned_range() {
            let st = &self.state[node];
            if st.phase != NodePhase::Force {
                continue;
            }
            let step = st.step;
            if busy.binary_search(&node).is_ok() {
                self.tr_stalls.productive(node, step, w);
            } else {
                let cause = self.classify_idle(node);
                self.tr_stalls.stall(node, step, cause, w);
            }
        }
    }

    /// Fast-forward attribution: every node is quiescent across the
    /// jumped span and no event fires inside it, so each force-phase
    /// node's single-cycle cause holds for all `delta` skipped cycles.
    /// Must run before the jump's stall decrement (classification reads
    /// pre-decrement stalls, exactly like the per-cycle path).
    fn attribute_jump(&mut self, delta: u64) {
        for node in self.owned_range() {
            let st = &self.state[node];
            if st.phase != NodePhase::Force {
                continue;
            }
            let step = st.step;
            let cause = self.classify_idle(node);
            self.tr_stalls.stall(node, step, cause, delta);
        }
    }

    /// Drain the flight-recorder capture of the last traced run: per-node
    /// event streams, the engine stream, and the stall ledger. `None`
    /// when the last run was untraced.
    pub fn take_trace(&mut self) -> Option<Trace> {
        if self.trace_cfg.level == TraceLevel::Off {
            return None;
        }
        let nodes = self.chips.iter_mut().map(TimedChip::take_trace).collect();
        let n = self.num_nodes();
        Some(Trace {
            level: Some(self.trace_cfg.level),
            nodes,
            engine: self.tr_engine.take(),
            stalls: std::mem::replace(&mut self.tr_stalls, StallLedger::new(n)),
        })
    }

    /// Force-phase exchange for one node (everything except the chip
    /// tick, which the compute phase already performed).
    fn force_exchange(&mut self, node: usize) {
        let step = self.state[node].step;

        // Drain EX egress into the encapsulation chains.
        for (peer_coord, flit) in self.chips[node].drain_pos_egress() {
            let peer = self.node_of(peer_coord);
            self.pos_pz[node].offer(&peer, flit, step);
        }
        for (peer_coord, flit) in self.chips[node].drain_frc_egress() {
            let peer = self.node_of(peer_coord);
            self.frc_pz[node].offer(&peer, flit, step);
        }

        // Last-position markers: all local positions routed and departed.
        if !self.state[node].last_pos_flushed && self.chips[node].all_positions_departed() {
            for i in 0..self.sync[node].send_peers.len() {
                let p = self.sync[node].send_peers[i];
                self.pos_pz[node].flush_last(&p, step);
                self.sync[node].mark_last_pos_sent(p);
                if self.tracing {
                    let cycle = self.cycle;
                    self.chips[node]
                        .trace_mut()
                        .push(cycle, EventKind::LastPosSent { peer: p as u32 });
                }
            }
            self.state[node].last_pos_flushed = true;
        }

        // Last-force markers, per §4.4: answered only once every position
        // from that peer has been processed and the forces have departed.
        for i in 0..self.sync[node].recv_peers.len() {
            let p = self.sync[node].recv_peers[i];
            if self.sync[node].owes_last_frc(&p) {
                let pc = self.node_coord[p];
                if self.chips[node].outstanding_from(pc) == 0
                    && self.chips[node].frc_drained_to(pc)
                    && self.chips[node].frc_egress_empty()
                {
                    self.frc_pz[node].flush_last(&p, step);
                    self.sync[node].mark_last_frc_sent(p);
                    if self.tracing {
                        let cycle = self.cycle;
                        self.chips[node]
                            .trace_mut()
                            .push(cycle, EventKind::LastFrcSent { peer: p as u32 });
                    }
                }
            }
        }

        // Phase transition. A `quiet` node was already observed locally
        // idle by the compute phase this cycle, so skip the re-check.
        if self.sync[node].force_phase_complete()
            && ((self.use_quiet && self.quiet[node])
                || self.chips[node].force_phase_local_idle())
        {
            self.state[node].force_cycles = self.cycle - self.state[node].phase_start;
            if self.tracing {
                let cycle = self.cycle;
                let cycles = self.state[node].force_cycles;
                self.chips[node].trace_mut().push(
                    cycle,
                    EventKind::PhaseEnd { phase: PhaseId::Force, step, cycles },
                );
            }
            match self.cfg.sync {
                SyncMode::Chained => self.enter_mu(node),
                SyncMode::Bulk { .. } => {
                    self.phase_epoch += 1;
                    self.state[node].phase = NodePhase::BarrierBeforeMu;
                    // Re-base `phase_start` at barrier entry so the wait
                    // duration is reportable (engine-invariant; nothing
                    // else reads it until the next phase re-sets it).
                    self.state[node].phase_start = self.cycle;
                    if self.tracing {
                        let cycle = self.cycle;
                        let tr = self.chips[node].trace_mut();
                        tr.push(
                            cycle,
                            EventKind::PhaseBegin { phase: PhaseId::BarrierMu, step },
                        );
                        tr.push(cycle, EventKind::BarrierArrive { step });
                    }
                    if let Some(release) = self.barrier_mu.arrive(node, self.cycle) {
                        for s in self.state.iter_mut() {
                            if s.phase == NodePhase::BarrierBeforeMu {
                                s.barrier_release = Some(release);
                            }
                        }
                        self.barrier_mu.reset();
                    }
                }
            }
        }
    }

    fn enter_mu(&mut self, node: usize) {
        self.quiet[node] = false;
        if self.tracing {
            let cycle = self.cycle;
            let step = self.state[node].step;
            let waited = cycle - self.state[node].phase_start;
            let from_barrier = self.state[node].phase == NodePhase::BarrierBeforeMu;
            let tr = self.chips[node].trace_mut();
            if from_barrier {
                tr.push(
                    cycle,
                    EventKind::PhaseEnd { phase: PhaseId::BarrierMu, step, cycles: waited },
                );
            }
            tr.push(cycle, EventKind::PhaseBegin { phase: PhaseId::MotionUpdate, step });
        }
        self.chips[node].begin_mu_phase();
        self.phase_epoch += 1;
        self.state[node].phase = NodePhase::Mu;
        self.state[node].phase_start = self.cycle;
        self.state[node].mig_flushed = false;
        self.state[node].barrier_release = None;
    }

    /// Motion-update exchange for one node (chip tick already done in the
    /// compute phase).
    fn mu_exchange(&mut self, node: usize, steps: u64) {
        let step = self.state[node].step;

        for (peer_coord, flit) in self.chips[node].drain_mig_egress() {
            let peer = self.node_of(peer_coord);
            self.mig_pz[node].offer(&peer, flit, step);
        }

        if !self.state[node].mig_flushed && self.chips[node].all_migrants_departed() {
            for i in 0..self.sync[node].mig_peers.len() {
                let p = self.sync[node].mig_peers[i];
                self.mig_pz[node].flush_last(&p, step);
                self.sync[node].mark_last_mig_sent(p);
                if self.tracing {
                    let cycle = self.cycle;
                    self.chips[node]
                        .trace_mut()
                        .push(cycle, EventKind::LastMigSent { peer: p as u32 });
                }
            }
            self.state[node].mig_flushed = true;
        }

        if self.state[node].mig_flushed
            && self.sync[node].mu_phase_complete()
            && ((self.use_quiet && self.quiet[node])
                || self.chips[node].mu_phase_local_idle())
        {
            let mu_cycles = self.cycle - self.state[node].phase_start;
            self.chips[node].end_mu_phase();
            self.records.push(NodeStepReport {
                node,
                step,
                force_cycles: self.state[node].force_cycles,
                mu_cycles,
                wall_end: self.cycle,
            });
            if self.tracing {
                let cycle = self.cycle;
                let tr = self.chips[node].trace_mut();
                tr.push(
                    cycle,
                    EventKind::PhaseEnd {
                        phase: PhaseId::MotionUpdate,
                        step,
                        cycles: mu_cycles,
                    },
                );
                tr.push(cycle, EventKind::StepDone { step });
            }
            self.state[node].step += 1;
            if self.state[node].step >= steps {
                self.phase_epoch += 1;
                self.state[node].phase = NodePhase::Done;
                return;
            }
            match self.cfg.sync {
                SyncMode::Chained => self.enter_next_force(node),
                SyncMode::Bulk { .. } => {
                    self.phase_epoch += 1;
                    self.state[node].phase = NodePhase::BarrierBeforeForce;
                    self.state[node].phase_start = self.cycle;
                    if self.tracing {
                        let cycle = self.cycle;
                        let next = self.state[node].step;
                        let tr = self.chips[node].trace_mut();
                        tr.push(
                            cycle,
                            EventKind::PhaseBegin { phase: PhaseId::BarrierForce, step: next },
                        );
                        tr.push(cycle, EventKind::BarrierArrive { step: next });
                    }
                    if let Some(release) = self.barrier_force.arrive(node, self.cycle) {
                        for s in self.state.iter_mut() {
                            if s.phase == NodePhase::BarrierBeforeForce {
                                s.barrier_release = Some(release);
                            }
                        }
                        self.barrier_force.reset();
                    }
                }
            }
        }
    }

    fn enter_next_force(&mut self, node: usize) {
        let step = self.state[node].step;
        self.quiet[node] = false;
        if self.tracing {
            let cycle = self.cycle;
            let waited = cycle - self.state[node].phase_start;
            if self.state[node].phase == NodePhase::BarrierBeforeForce {
                self.chips[node].trace_mut().push(
                    cycle,
                    EventKind::PhaseEnd { phase: PhaseId::BarrierForce, step, cycles: waited },
                );
            }
        }
        self.sync[node].begin_step(step);
        self.chips[node].begin_force_phase();
        self.phase_epoch += 1;
        self.state[node].phase = NodePhase::Force;
        self.state[node].phase_start = self.cycle;
        self.state[node].last_pos_flushed = false;
        self.state[node].barrier_release = None;
        if let Some((s, d)) = self.cfg.straggler {
            if s == node {
                self.stalls[node] = d;
            }
        }
        if self.tracing {
            let cycle = self.cycle;
            let stall = self.stalls[node];
            let tr = self.chips[node].trace_mut();
            tr.push(cycle, EventKind::PhaseBegin { phase: PhaseId::Force, step });
            if stall > 0 {
                tr.push(cycle, EventKind::StallInjected { cycles: stall });
            }
        }
    }

    // ------------------------------------------------------------------
    // Idle fast-forward.

    /// Decide whether the cluster can fast-forward past `self.cycle`.
    ///
    /// A node blocks the jump (`Busy`) when its chip would tick in the
    /// next compute phase. Otherwise nothing in the cluster changes until
    /// one of the scheduled events fires: an inbox delivery, a packetizer
    /// departure, a barrier release, or a stall expiring. Exchange
    /// actions need no events of their own — they are functions of chip
    /// and sync state, which only change through chip ticks (busy) or
    /// deliveries — and the caller never invokes this scan on a cycle
    /// that delivered something, so every delivery-enabled exchange
    /// action gets its follow-up cycle before any jump is considered.
    pub(crate) fn next_event_cycle(&self) -> NextEvent {
        let mut next: Option<u64> = None;
        let mut note = |c: u64| next = Some(next.map_or(c, |n: u64| n.min(c)));
        for node in self.owned_range() {
            if self.stalls[node] > 0 {
                note(self.cycle + self.stalls[node]);
            } else {
                match self.state[node].phase {
                    NodePhase::Force => {
                        let quiet = self.use_quiet && self.quiet[node];
                        if !quiet && !self.chips[node].force_phase_local_idle() {
                            return NextEvent::Busy;
                        }
                    }
                    NodePhase::Mu => {
                        let quiet = self.use_quiet && self.quiet[node];
                        if !quiet
                            && (!self.chips[node].mu_phase_local_idle()
                                || !self.state[node].mig_flushed)
                        {
                            return NextEvent::Busy;
                        }
                    }
                    NodePhase::BarrierBeforeMu | NodePhase::BarrierBeforeForce => {
                        if let Some(r) = self.state[node].barrier_release {
                            note(r);
                        }
                    }
                    NodePhase::Done => {}
                }
            }
            if let Some(d) = self.inbox[node].next_due() {
                note(d);
            }
            if let Some(d) = self.pos_pz[node].next_departure(self.cycle) {
                note(d);
            }
            if let Some(d) = self.frc_pz[node].next_departure(self.cycle) {
                note(d);
            }
            if let Some(d) = self.mig_pz[node].next_departure(self.cycle) {
                note(d);
            }
            // Retransmission timers are event sources too: with anything
            // unacked there is always a deadline, so `Never` (deadlock)
            // is unreachable while the reliability layer still has work.
            if let Some(rel) = &self.rel {
                if let Some(d) = rel.next_retx_due(node) {
                    note(d);
                }
            }
        }
        match next {
            Some(t) => NextEvent::At(t.max(self.cycle)),
            None => NextEvent::Never,
        }
    }

    /// Jump the global clock to `target`, emulating the only side effect
    /// the skipped cycles would have had: one stall decrement per cycle.
    pub(crate) fn jump_to(&mut self, target: u64) {
        if target <= self.cycle {
            return;
        }
        let delta = target - self.cycle;
        if self.tracing {
            self.tr_engine.push(
                self.cycle,
                EventKind::FastForward { to_cycle: target, skipped: delta },
            );
            self.attribute_jump(delta);
        }
        for s in &mut self.stalls {
            *s = s.saturating_sub(delta);
        }
        self.skipped_cycles += delta;
        self.cycle = target;
    }

    // ------------------------------------------------------------------
    // Force-phase burst stepping.

    /// Conservative window W such that the next W global cycles consist
    /// exclusively of busy force-phase chips ticking their CBB internals:
    /// no inbox delivery, packetizer departure, barrier release, stall
    /// expiry, marker flush, or phase transition can fire before cycle
    /// `self.cycle + W`. `busy` collects the nodes whose chips actually
    /// tick during the window. Returns `(0, Interface)` whenever any
    /// node's upcoming exchange cannot be proven frozen, and
    /// `(0, Idle)` when no force-phase chip is computing at all (the
    /// span is idle and belongs to fast-forward); the reason feeds the
    /// named refusal counters.
    fn burst_window(&self, busy: &mut Vec<usize>) -> (u64, BurstBlock) {
        let mut w = u64::MAX;
        let bound = |w: &mut u64, c: u64| *w = (*w).min(c);
        for node in 0..self.num_nodes() {
            // Scheduled network events bound every node alike.
            if let Some(d) = self.inbox[node].next_due() {
                if d <= self.cycle {
                    return (0, BurstBlock::Interface);
                }
                bound(&mut w, d - self.cycle);
            }
            // Retransmission deadlines fire in the (skipped) network
            // phase, so the window must close before the earliest one.
            if let Some(rel) = &self.rel {
                if let Some(d) = rel.next_retx_due(node) {
                    if d <= self.cycle {
                        return (0, BurstBlock::Interface);
                    }
                    bound(&mut w, d - self.cycle);
                }
            }
            for d in [
                self.pos_pz[node].next_departure(self.cycle),
                self.frc_pz[node].next_departure(self.cycle),
                self.mig_pz[node].next_departure(self.cycle),
            ]
            .into_iter()
            .flatten()
            {
                if d <= self.cycle {
                    return (0, BurstBlock::Interface);
                }
                bound(&mut w, d - self.cycle);
            }
            // A stalled node skips both compute and exchange until its
            // stall expires; `stalls -= W` afterwards reproduces the
            // reference decrement-per-cycle exactly.
            if self.stalls[node] > 0 {
                bound(&mut w, self.stalls[node]);
                continue;
            }
            match self.state[node].phase {
                NodePhase::Done => {}
                NodePhase::BarrierBeforeMu | NodePhase::BarrierBeforeForce => {
                    // An unreleased barrier only changes through another
                    // node's transition (none during the window); a
                    // released one fires at its release cycle.
                    if let Some(r) = self.state[node].barrier_release {
                        if r <= self.cycle {
                            return (0, BurstBlock::Interface);
                        }
                        bound(&mut w, r - self.cycle);
                    }
                }
                NodePhase::Mu => {
                    // Bursting never advances MU work, so an active MU
                    // chip would fall behind: require the node quiescent
                    // and its phase completion still blocked on a marker.
                    if !self.quiet[node] || self.sync[node].mu_phase_complete() {
                        return (0, BurstBlock::Interface);
                    }
                }
                NodePhase::Force => {
                    if self.use_quiet && self.quiet[node] {
                        // Idle chip: no tick; its exchange is frozen
                        // unless the sync already completed (transition
                        // pending next cycle).
                        if self.sync[node].force_phase_complete() {
                            return (0, BurstBlock::Interface);
                        }
                        continue;
                    }
                    let cw = self.chips[node].force_burst_window();
                    if cw == 0 {
                        return (0, BurstBlock::Interface);
                    }
                    // Marker flushes that could fire on an upcoming
                    // exchange (reachable when this node's stall expired
                    // this very cycle, before its exchange ran).
                    if !self.state[node].last_pos_flushed
                        && self.chips[node].all_positions_departed()
                    {
                        return (0, BurstBlock::Interface);
                    }
                    for i in 0..self.sync[node].recv_peers.len() {
                        let p = self.sync[node].recv_peers[i];
                        if self.sync[node].owes_last_frc(&p) {
                            let pc = self.node_coord[p];
                            if self.chips[node].outstanding_from(pc) == 0
                                && self.chips[node].frc_drained_to(pc)
                                && self.chips[node].frc_egress_empty()
                            {
                                return (0, BurstBlock::Interface);
                            }
                        }
                    }
                    if self.sync[node].force_phase_complete()
                        && self.chips[node].force_phase_local_idle()
                    {
                        return (0, BurstBlock::Interface);
                    }
                    bound(&mut w, cw);
                    busy.push(node);
                }
            }
        }
        if busy.is_empty() || w == u64::MAX {
            // Nothing computing: idle spans belong to fast-forward.
            return (0, BurstBlock::Idle);
        }
        (w, BurstBlock::Open)
    }

    /// Attempt one burst. Returns whether a burst (of at least
    /// [`MIN_BURST`] cycles) ran; the caller throttles re-attempts after
    /// a refusal.
    fn try_burst(&mut self, pool: Option<&ThreadPool>, cap: u64) -> bool {
        let mut busy = Vec::new();
        let (scanned, block) = self.burst_window(&mut busy);
        let w = scanned.min(cap - self.cycle);
        if w < MIN_BURST {
            self.burst_refused += 1;
            match block {
                BurstBlock::Interface => self.burst_refused_interface += 1,
                BurstBlock::Idle => self.burst_refused_idle += 1,
                BurstBlock::Open => self.burst_refused_small += 1,
            }
            if self.tracing {
                self.tr_engine
                    .push(self.cycle, EventKind::BurstRefused { window: w });
            }
            return false;
        }
        self.burst_cycles += w;
        self.burst_count += 1;
        if self.tracing {
            self.tr_engine.push(
                self.cycle,
                EventKind::BurstOpen { window: w, busy: busy.len() as u32 },
            );
            self.attribute_burst(&busy, w);
            // Chip-emitted events inside the burst (Full-level PE
            // activity) stamp from the window's first global cycle.
            let now = self.cycle;
            for &node in &busy {
                self.chips[node].set_trace_now(now);
            }
        }
        match pool {
            Some(pool) if busy.len() > 1 => {
                use rayon::prelude::*;
                let mut jobs: Vec<&mut TimedChip> = Vec::with_capacity(busy.len());
                let mut it = self.chips.iter_mut();
                let mut prev = 0;
                for &node in &busy {
                    let chip = it.nth(node - prev).expect("busy node index");
                    prev = node + 1;
                    jobs.push(chip);
                }
                pool.install(|| {
                    jobs.par_iter_mut().for_each(|chip| chip.run_force_burst(w));
                });
            }
            _ => {
                for &node in &busy {
                    self.chips[node].run_force_burst(w);
                }
            }
        }
        for s in &mut self.stalls {
            *s = s.saturating_sub(w);
        }
        self.cycle += w;
        true
    }

    // ------------------------------------------------------------------

    pub(crate) fn network_cycle(&mut self) {
        if let Some(ex) = &mut self.exchange {
            ex.stage = 0;
        }
        for node in self.owned_range() {
            if let Some((peer, pkt)) = self.pos_pz[node].tick(self.cycle) {
                self.note_packet_sent(node, ChannelId::Pos, peer, pkt.payloads.len(), pkt.last);
                self.transmit(
                    node,
                    peer,
                    Delivery {
                        from: node,
                        cargo: Cargo::Pos(pkt.payloads),
                        last: pkt.last,
                        step: pkt.step,
                        seq: 0,
                        corrupt: false,
                    },
                );
            }
            if let Some((peer, pkt)) = self.frc_pz[node].tick(self.cycle) {
                self.note_packet_sent(node, ChannelId::Frc, peer, pkt.payloads.len(), pkt.last);
                self.transmit(
                    node,
                    peer,
                    Delivery {
                        from: node,
                        cargo: Cargo::Frc(pkt.payloads),
                        last: pkt.last,
                        step: pkt.step,
                        seq: 0,
                        corrupt: false,
                    },
                );
            }
            if let Some((peer, pkt)) = self.mig_pz[node].tick(self.cycle) {
                self.note_packet_sent(node, ChannelId::Mig, peer, pkt.payloads.len(), pkt.last);
                self.transmit(
                    node,
                    peer,
                    Delivery {
                        from: node,
                        cargo: Cargo::Mig(pkt.payloads),
                        last: pkt.last,
                        step: pkt.step,
                        seq: 0,
                        corrupt: false,
                    },
                );
            }
        }
        if self.rel.is_some() {
            if let Some(ex) = &mut self.exchange {
                ex.stage = 1;
            }
            self.poll_retransmits();
        }
    }

    /// Launch one fresh frame: assign its per-link sequence number and
    /// buffer it for retransmission (reliability on), then put it on the
    /// fabric through the fault plan.
    fn transmit(&mut self, node: usize, peer: usize, mut d: Delivery) {
        if let Some(rel) = &mut self.rel {
            let kind = d.cargo.kind();
            // The stored copy keeps seq 0; retransmissions are re-tagged
            // from the sequence `poll_retransmit` reports.
            let seq = rel.sender(node, kind, peer).launch(self.cycle, d.clone());
            d.seq = seq;
        }
        self.put_on_wire(node, peer, d);
    }

    /// Apply the fault plan to one frame and schedule its delivery (or
    /// loss) on the channel's fabric. Runs only in the serial network /
    /// delivery phases, so outcomes are engine-invariant.
    fn put_on_wire(&mut self, node: usize, peer: usize, mut d: Delivery) {
        let kind = d.cargo.kind();
        let (step, cycle) = (self.state[node].step, self.cycle);
        let outcome = match &mut self.faults {
            Some(f) => f.on_transmit(chan_of(kind), node as u32, peer as u32, step, cycle, d.last),
            None => FaultOutcome::Deliver,
        };
        let channel = channel_id(kind);
        let to = peer as u32;
        let seq = d.seq;
        if self.exchange.is_some() {
            // Sharded capture: serialize on the owned source port now,
            // defer destination-port admission to the cross-shard merge
            // so every worker admits the same global (stage, src) order
            // the oracle produces. Sharded runs refuse the legacy
            // `ClusterConfig::loss` model (its global RNG draw order
            // cannot be partitioned), so plain tx serialization matches
            // the oracle's `send_lossy` exactly.
            match outcome {
                FaultOutcome::Deliver => {
                    let arrive = self.fabric_tx(kind, node, peer);
                    self.push_wire(node, peer, arrive, 0, NetMsg::Data(d));
                }
                FaultOutcome::Drop | FaultOutcome::Kill => {
                    let kill = outcome == FaultOutcome::Kill;
                    self.fabric_drop(kind, node);
                    self.trace_node_event(node, EventKind::FaultDrop { channel, to, seq, kill });
                }
                FaultOutcome::Corrupt => {
                    let arrive = self.fabric_tx(kind, node, peer);
                    d.corrupt = true;
                    self.push_wire(node, peer, arrive, 0, NetMsg::Data(d));
                    self.trace_node_event(node, EventKind::FaultCorrupt { channel, to, seq });
                }
                FaultOutcome::Duplicate => {
                    let at1 = self.fabric_tx(kind, node, peer);
                    let at2 = self.fabric_tx(kind, node, peer);
                    self.push_wire(node, peer, at1, 0, NetMsg::Data(d.clone()));
                    self.push_wire(node, peer, at2, 0, NetMsg::Data(d));
                    self.trace_node_event(node, EventKind::FaultDuplicate { channel, to, seq });
                }
                FaultOutcome::Delay(extra) => {
                    let arrive = self.fabric_tx(kind, node, peer);
                    self.push_wire(node, peer, arrive, extra, NetMsg::Data(d));
                    self.trace_node_event(node, EventKind::FaultDelay { channel, to, seq, extra });
                }
            }
            return;
        }
        match outcome {
            FaultOutcome::Deliver => {
                // `send_lossy` preserves the legacy `ClusterConfig::loss`
                // model (plain `send` when no loss is configured).
                if let Some(at) = self.fabric_send_lossy(kind, node, peer) {
                    self.inbox[peer].send(at, NetMsg::Data(d));
                }
            }
            FaultOutcome::Drop | FaultOutcome::Kill => {
                let kill = outcome == FaultOutcome::Kill;
                self.fabric_drop(kind, node);
                self.trace_node_event(node, EventKind::FaultDrop { channel, to, seq, kill });
            }
            FaultOutcome::Corrupt => {
                let at = self.fabric_send(kind, node, peer);
                d.corrupt = true;
                self.inbox[peer].send(at, NetMsg::Data(d));
                self.trace_node_event(node, EventKind::FaultCorrupt { channel, to, seq });
            }
            FaultOutcome::Duplicate => {
                let at1 = self.fabric_send(kind, node, peer);
                let at2 = self.fabric_send(kind, node, peer);
                self.inbox[peer].send(at1, NetMsg::Data(d.clone()));
                self.inbox[peer].send(at2, NetMsg::Data(d));
                self.trace_node_event(node, EventKind::FaultDuplicate { channel, to, seq });
            }
            FaultOutcome::Delay(extra) => {
                let at = self.fabric_send(kind, node, peer) + extra;
                self.inbox[peer].send(at, NetMsg::Data(d));
                self.trace_node_event(node, EventKind::FaultDelay { channel, to, seq, extra });
            }
        }
    }

    /// Retransmit every link whose head-of-line timeout expired this
    /// cycle. Deterministic iteration (node, then channel, then peer in
    /// BTreeMap order) keeps fabric port bookkeeping engine-invariant.
    fn poll_retransmits(&mut self) {
        const KINDS: [PacketKind; 3] =
            [PacketKind::Position, PacketKind::Force, PacketKind::Migration];
        for node in self.owned_range() {
            let due = self.rel.as_ref().and_then(|r| r.next_retx_due(node));
            if due.is_none_or(|d| d > self.cycle) {
                continue;
            }
            for kind in KINDS {
                let peers: Vec<usize> = self.rel.as_ref().map_or_else(Vec::new, |r| {
                    r.tx[node][chan_index(kind)].keys().copied().collect()
                });
                for peer in peers {
                    let polled = self
                        .rel
                        .as_mut()
                        .and_then(|r| r.tx[node][chan_index(kind)].get_mut(&peer))
                        .and_then(|s| s.poll_retransmit(self.cycle));
                    if let Some((seq, mut d, attempt)) = polled {
                        d.seq = seq;
                        self.trace_node_event(
                            node,
                            EventKind::Retransmit {
                                channel: channel_id(kind),
                                to: peer as u32,
                                seq,
                                attempt,
                            },
                        );
                        self.put_on_wire(node, peer, d);
                    }
                }
            }
        }
    }

    /// Send a cumulative ack back to `peer` on the channel's fabric. Ack
    /// frames cost a full 512-bit fabric send and pass through the fault
    /// plan like any other frame (a corrupted ack is a lost ack).
    fn send_ack(&mut self, node: usize, kind: PacketKind, peer: usize, seq: u32) {
        if let Some(rel) = &mut self.rel {
            rel.acks_sent += 1;
        }
        if self.tracing && self.chips[node].trace_mut().wants(TraceLevel::Full) {
            let cycle = self.cycle;
            self.chips[node].trace_mut().push(
                cycle,
                EventKind::AckSent { channel: channel_id(kind), to: peer as u32, seq },
            );
        }
        let (step, cycle) = (self.state[node].step, self.cycle);
        let outcome = match &mut self.faults {
            Some(f) => f.on_transmit(chan_of(kind), node as u32, peer as u32, step, cycle, false),
            None => FaultOutcome::Deliver,
        };
        let channel = channel_id(kind);
        let msg = NetMsg::Ack { channel: kind, from: node, seq };
        if self.exchange.is_some() {
            match outcome {
                FaultOutcome::Deliver => {
                    let arrive = self.fabric_tx(kind, node, peer);
                    self.push_wire(node, peer, arrive, 0, msg);
                }
                FaultOutcome::Drop | FaultOutcome::Kill => {
                    self.fabric_drop(kind, node);
                    self.trace_node_event(
                        node,
                        EventKind::FaultDrop { channel, to: peer as u32, seq, kill: false },
                    );
                }
                FaultOutcome::Corrupt => {
                    self.fabric_drop(kind, node);
                    self.trace_node_event(
                        node,
                        EventKind::FaultCorrupt { channel, to: peer as u32, seq },
                    );
                }
                FaultOutcome::Duplicate => {
                    let at1 = self.fabric_tx(kind, node, peer);
                    let at2 = self.fabric_tx(kind, node, peer);
                    self.push_wire(node, peer, at1, 0, msg.clone());
                    self.push_wire(node, peer, at2, 0, msg);
                    self.trace_node_event(
                        node,
                        EventKind::FaultDuplicate { channel, to: peer as u32, seq },
                    );
                }
                FaultOutcome::Delay(extra) => {
                    let arrive = self.fabric_tx(kind, node, peer);
                    self.push_wire(node, peer, arrive, extra, msg);
                    self.trace_node_event(
                        node,
                        EventKind::FaultDelay { channel, to: peer as u32, seq, extra },
                    );
                }
            }
            return;
        }
        match outcome {
            FaultOutcome::Deliver => {
                let at = self.fabric_send(kind, node, peer);
                self.inbox[peer].send(at, msg);
            }
            FaultOutcome::Drop | FaultOutcome::Kill => {
                self.fabric_drop(kind, node);
                self.trace_node_event(
                    node,
                    EventKind::FaultDrop { channel, to: peer as u32, seq, kill: false },
                );
            }
            FaultOutcome::Corrupt => {
                // A corrupted ack frame fails the receiver's checksum —
                // observably a lost ack that still burned the tx port.
                self.fabric_drop(kind, node);
                self.trace_node_event(
                    node,
                    EventKind::FaultCorrupt { channel, to: peer as u32, seq },
                );
            }
            FaultOutcome::Duplicate => {
                let at1 = self.fabric_send(kind, node, peer);
                let at2 = self.fabric_send(kind, node, peer);
                self.inbox[peer].send(at1, msg.clone());
                self.inbox[peer].send(at2, msg);
                self.trace_node_event(
                    node,
                    EventKind::FaultDuplicate { channel, to: peer as u32, seq },
                );
            }
            FaultOutcome::Delay(extra) => {
                let at = self.fabric_send(kind, node, peer) + extra;
                self.inbox[peer].send(at, msg);
                self.trace_node_event(
                    node,
                    EventKind::FaultDelay { channel, to: peer as u32, seq, extra },
                );
            }
        }
    }

    /// The fabric a packet kind travels on: force traffic has its own
    /// QSFP port; positions and migration share the other (§5.4).
    #[inline]
    fn fabric_send(&mut self, kind: PacketKind, src: usize, dst: usize) -> u64 {
        match kind {
            PacketKind::Force => self.frc_fabric.send(self.cycle, src, dst),
            _ => self.pos_fabric.send(self.cycle, src, dst),
        }
    }

    #[inline]
    fn fabric_send_lossy(&mut self, kind: PacketKind, src: usize, dst: usize) -> Option<u64> {
        match kind {
            PacketKind::Force => self.frc_fabric.send_lossy(self.cycle, src, dst),
            _ => self.pos_fabric.send_lossy(self.cycle, src, dst),
        }
    }

    #[inline]
    fn fabric_drop(&mut self, kind: PacketKind, src: usize) {
        match kind {
            PacketKind::Force => self.frc_fabric.drop_at_tx(self.cycle, src),
            _ => self.pos_fabric.drop_at_tx(self.cycle, src),
        }
    }

    /// Source half of a sharded fabric send: burn the tx port and return
    /// the store-and-forward arrival cycle at the destination port. The
    /// destination's owner completes admission in
    /// [`Cluster::admit_wire_events`].
    #[inline]
    fn fabric_tx(&mut self, kind: PacketKind, src: usize, dst: usize) -> u64 {
        match kind {
            PacketKind::Force => self.frc_fabric.tx_serialize(self.cycle, src, dst),
            _ => self.pos_fabric.tx_serialize(self.cycle, src, dst),
        }
    }

    /// Capture one wire crossing into the shard exchange buffer.
    fn push_wire(&mut self, src: usize, dst: usize, arrive: u64, extra: u64, msg: NetMsg) {
        let ex = self.exchange.as_mut().expect("wire capture requires sharded mode");
        ex.events.push(WireEvent {
            stage: ex.stage,
            src: src as u32,
            dst: dst as u32,
            arrive,
            extra,
            msg,
        });
    }

    /// Record a sync-tier event on a node's stream at the current cycle.
    #[inline]
    fn trace_node_event(&mut self, node: usize, ev: EventKind) {
        if self.tracing {
            let cycle = self.cycle;
            self.chips[node].trace_mut().push(cycle, ev);
        }
    }

    /// Record a [`EventKind::PacketSent`] on the sending node (Full level
    /// only — packet traffic is too chatty for the sync tier).
    #[inline]
    fn note_packet_sent(&mut self, node: usize, channel: ChannelId, peer: usize, payloads: usize, last: bool) {
        if !self.tracing || !self.chips[node].trace_mut().wants(TraceLevel::Full) {
            return;
        }
        let cycle = self.cycle;
        self.chips[node].trace_mut().push(
            cycle,
            EventKind::PacketSent {
                channel,
                to: peer as u32,
                payloads: payloads as u32,
                last,
            },
        );
    }

    /// Drain every due delivery into its chip; returns whether anything
    /// was delivered. A delivery can enable an exchange action (a marker
    /// completing a sync phase, a flit re-awakening a chip) that only
    /// executes on the *next* cycle's exchange phase, so the fast-forward
    /// scan must never jump over the cycle that follows a delivery.
    pub(crate) fn deliver_due(&mut self) -> bool {
        if let Some(ex) = &mut self.exchange {
            ex.stage = 2;
        }
        let mut delivered = false;
        for node in self.owned_range() {
            while let Some(msg) = self.inbox[node].pop_due(self.cycle) {
                delivered = true;
                match msg {
                    NetMsg::Ack { channel, from, seq } => {
                        // Acks don't touch chip state: `quiet` stays as-is.
                        if let Some(rel) = &mut self.rel {
                            rel.sender(node, channel, from).on_ack(self.cycle, seq);
                        }
                    }
                    NetMsg::Data(d) => {
                        self.quiet[node] = false;
                        let kind = d.cargo.kind();
                        if self.tracing && self.chips[node].trace_mut().wants(TraceLevel::Full) {
                            let payloads = match &d.cargo {
                                Cargo::Pos(f) => f.len(),
                                Cargo::Frc(f) => f.len(),
                                Cargo::Mig(f) => f.len(),
                            } as u32;
                            let cycle = self.cycle;
                            self.chips[node].trace_mut().push(
                                cycle,
                                EventKind::PacketDelivered {
                                    channel: channel_id(kind),
                                    from: d.from as u32,
                                    payloads,
                                    last: d.last,
                                },
                            );
                        }
                        if d.corrupt {
                            // Failed checksum: the frame burned rx
                            // bandwidth but is discarded unacked, so the
                            // sender's timeout recovers it.
                            if let Some(rel) = &mut self.rel {
                                rel.corrupt_dropped += 1;
                            }
                        } else if self.rel.is_some() {
                            let from = d.from;
                            let seq = d.seq;
                            let accept = self
                                .rel
                                .as_mut()
                                .expect("checked")
                                .receiver(node, kind, from)
                                .accept(seq, d);
                            match accept {
                                Accept::Deliver { payloads, cumulative } => {
                                    for (_, dd) in payloads {
                                        self.ingest(node, dd);
                                    }
                                    self.send_ack(node, kind, from, cumulative);
                                }
                                Accept::Buffered { cumulative }
                                | Accept::Duplicate { cumulative } => {
                                    self.send_ack(node, kind, from, cumulative);
                                }
                            }
                        } else {
                            self.ingest(node, d);
                        }
                    }
                }
            }
        }
        delivered
    }

    /// Hand one in-order data frame to the destination chip and advance
    /// the chained-sync tracker on its `last` marker.
    fn ingest(&mut self, node: usize, d: Delivery) {
        let kind = d.cargo.kind();
        match d.cargo {
            Cargo::Pos(flits) => {
                for f in flits {
                    self.chips[node].ingest_remote_pos(f);
                }
            }
            Cargo::Frc(flits) => {
                for f in flits {
                    self.chips[node].ingest_remote_frc(f);
                }
            }
            Cargo::Mig(flits) => {
                for f in flits {
                    self.chips[node].ingest_remote_mig(f);
                }
            }
        }
        if d.last {
            self.sync[node].on_marker(kind, d.from, d.step);
            if self.tracing {
                let cycle = self.cycle;
                self.chips[node].trace_mut().push(
                    cycle,
                    EventKind::MarkerRecv {
                        channel: channel_id(kind),
                        from: d.from as u32,
                        step: d.step,
                    },
                );
            }
        }
    }

    // ------------------------------------------------------------------

    /// Gather particle state from all chips into `sys`.
    pub fn store_into(&self, sys: &mut ParticleSystem) {
        assert_eq!(sys.space, self.global);
        for chip in &self.chips {
            chip.store_into(sys);
        }
    }

    /// Total particles across chips.
    pub fn num_particles(&self) -> usize {
        self.chips.iter().map(TimedChip::num_particles).sum()
    }

    /// The unit system in use.
    pub fn units(&self) -> UnitSystem {
        self.chips[0].units()
    }

    fn assemble_report(&mut self, steps: u64, total_cycles: u64) -> ClusterRunReport {
        // Merge per-chip utilization counters into a cluster-wide set.
        let mut stats = StatSet::new();
        for chip in &self.chips {
            stats.merge_from(&chip.report(0, 0).stats);
        }
        let per_node_traffic: Vec<_> = self.chips.iter().map(|c| c.traffic.clone()).collect();

        ClusterRunReport {
            steps,
            total_cycles,
            records: std::mem::take(&mut self.records),
            stats,
            per_node_traffic,
            pos_packets: self.pos_fabric.packets,
            frc_packets: self.frc_fabric.packets,
            pos_bits: self.pos_fabric.bits_sent,
            frc_bits: self.frc_fabric.bits_sent,
            clock_hz: self.cfg.chip.hw.clock_hz,
            dt_fs: self.cfg.dt_fs,
            nodes: self.num_nodes(),
            faults_injected: self.faults.as_ref().map_or(0, |f| f.total_injected()),
            reliability: self.rel.as_ref().map(|r| RelSummary {
                retransmits: r.total_retransmits(),
                acks_sent: r.acks_sent,
                duplicates_dropped: r.total_duplicates(),
                corrupt_dropped: r.corrupt_dropped,
            }),
        }
    }
}

// ---------------------------------------------------------------------------
// Checkpointing (paper-level crash recovery; the `ckpt` module drives the
// file format, retention and segmented re-execution).
// ---------------------------------------------------------------------------

impl fasda_ckpt::Persist for NodePhase {
    fn save(&self, w: &mut fasda_ckpt::Writer) {
        w.put_u8(match self {
            NodePhase::Force => 0,
            NodePhase::BarrierBeforeMu => 1,
            NodePhase::Mu => 2,
            NodePhase::BarrierBeforeForce => 3,
            NodePhase::Done => 4,
        });
    }
    fn load(r: &mut fasda_ckpt::Reader<'_>) -> Result<Self, fasda_ckpt::CkptError> {
        match r.get_u8()? {
            0 => Ok(NodePhase::Force),
            1 => Ok(NodePhase::BarrierBeforeMu),
            2 => Ok(NodePhase::Mu),
            3 => Ok(NodePhase::BarrierBeforeForce),
            4 => Ok(NodePhase::Done),
            t => Err(r.malformed(format!("invalid node phase tag {t}"))),
        }
    }
}

impl fasda_ckpt::Persist for NodeState {
    fn save(&self, w: &mut fasda_ckpt::Writer) {
        w.put_u64(self.step);
        self.phase.save(w);
        w.put_u64(self.phase_start);
        w.put_u64(self.force_cycles);
        w.put_bool(self.last_pos_flushed);
        w.put_bool(self.mig_flushed);
        self.barrier_release.save(w);
    }
    fn load(r: &mut fasda_ckpt::Reader<'_>) -> Result<Self, fasda_ckpt::CkptError> {
        Ok(NodeState {
            step: r.get_u64()?,
            phase: fasda_ckpt::Persist::load(r)?,
            phase_start: r.get_u64()?,
            force_cycles: r.get_u64()?,
            last_pos_flushed: r.get_bool()?,
            mig_flushed: r.get_bool()?,
            barrier_release: fasda_ckpt::Persist::load(r)?,
        })
    }
}

/// Checkpointing: `cfg` is configuration; the per-link sender/receiver
/// maps (sequence numbers, unacked in-flight frames, retransmission
/// deadlines, dedup cursors) and the cumulative counters are state.
impl fasda_ckpt::Snapshot for RelState {
    fn snapshot(&self, w: &mut fasda_ckpt::Writer) {
        use fasda_ckpt::Persist;
        w.put_usize(self.tx.len());
        for node in &self.tx {
            for links in node {
                links.save(w);
            }
        }
        for node in &self.rx {
            for links in node {
                links.save(w);
            }
        }
        w.put_u64(self.acks_sent);
        w.put_u64(self.corrupt_dropped);
    }

    fn restore(&mut self, r: &mut fasda_ckpt::Reader<'_>) -> Result<(), fasda_ckpt::CkptError> {
        use fasda_ckpt::Persist;
        let nodes = r.get_usize()?;
        if nodes != self.tx.len() {
            return Err(r.malformed(format!(
                "reliability node count mismatch: snapshot has {nodes}, cluster has {}",
                self.tx.len()
            )));
        }
        for node in 0..nodes {
            for chan in 0..3 {
                self.tx[node][chan] = Persist::load(r)?;
            }
        }
        for node in 0..nodes {
            for chan in 0..3 {
                self.rx[node][chan] = Persist::load(r)?;
            }
        }
        self.acks_sent = r.get_u64()?;
        self.corrupt_dropped = r.get_u64()?;
        Ok(())
    }
}

/// Section names of a cluster checkpoint container.
pub mod sections {
    /// Configuration fingerprint (guards against restoring into a
    /// differently-shaped cluster).
    pub const META: &str = "meta";
    /// Driver-level state: clock, per-node phase machines, sync.
    pub const DRIVER: &str = "driver";
    /// Per-chip microarchitectural state.
    pub const CHIPS: &str = "chips";
    /// Network state: packetizers, fabrics, inboxes, faults, reliability.
    pub const NET: &str = "net";
    /// Run-accumulator state (records and merged stats of completed
    /// segments) — written by `ckpt::save_checkpoint`.
    pub const RUNNER: &str = "runner";
}

impl Cluster {
    /// Fingerprint of everything that must match between the snapshotting
    /// and the restoring cluster. Stored as per-field digests so a
    /// mismatch can name the offending field. The fault plan is
    /// fingerprinted **without** any crash directive (and dropped
    /// entirely when it carries no traffic faults): the resumed run
    /// strips the crash so it does not re-fire, and that must not read
    /// as a config change.
    pub(crate) fn meta_writer(&self) -> fasda_ckpt::Writer {
        use fasda_ckpt::crc32;
        let mut w = fasda_ckpt::Writer::new();
        let dbg = |s: String| crc32(s.as_bytes());
        w.put_u32(dbg(format!("{:?}", self.cfg.chip)));
        w.put_u32(self.cfg.block.0);
        w.put_u32(self.cfg.block.1);
        w.put_u32(self.cfg.block.2);
        w.put_u32(dbg(format!("{:?}", self.cfg.sync)));
        w.put_u32(dbg(format!("{:?}", self.cfg.topology)));
        w.put_f64(self.cfg.bits_per_cycle);
        w.put_u32(self.cfg.packet_cooldown);
        w.put_f64(self.cfg.dt_fs);
        w.put_u32(dbg(format!("{:?}", self.cfg.straggler)));
        w.put_u32(dbg(format!("{:?}", self.cfg.loss)));
        // Fingerprint the recovery-invariant core of the plan: resumed
        // runs strip crash directives (and, after a partition-diagnosed
        // deadlock, flap/partition windows), and a stripped plan must
        // still open the checkpoints its faulty ancestor wrote.
        let faults = self
            .cfg
            .faults
            .as_ref()
            .map(|p| p.without_outages())
            .filter(|p| !p.is_none());
        w.put_u32(dbg(format!("{faults:?}")));
        w.put_u32(dbg(format!("{:?}", self.cfg.reliability)));
        w.put_u32(dbg(format!("{:?}", self.global)));
        w.put_usize(self.num_nodes());
        w.put_usize(self.num_particles());
        w
    }

    fn check_meta(&self, r: &mut fasda_ckpt::Reader<'_>) -> Result<(), fasda_ckpt::CkptError> {
        let mine = self.meta_writer().into_bytes();
        let mut me = fasda_ckpt::Reader::new(&mine, sections::META);
        const FIELDS: [&str; 16] = [
            "chip",
            "block.x",
            "block.y",
            "block.z",
            "sync",
            "topology",
            "bits_per_cycle",
            "packet_cooldown",
            "dt_fs",
            "straggler",
            "loss",
            "faults",
            "reliability",
            "space",
            "nodes",
            "particles",
        ];
        for field in FIELDS {
            let (stored, expected): (u64, u64) = match field {
                "block.x" | "block.y" | "block.z" | "chip" | "sync" | "topology"
                | "packet_cooldown" | "straggler" | "loss" | "faults" | "reliability"
                | "space" => (r.get_u32()? as u64, me.get_u32().expect("meta shape") as u64),
                "bits_per_cycle" | "dt_fs" => {
                    (r.get_f64()?.to_bits(), me.get_f64().expect("meta shape").to_bits())
                }
                _ => (r.get_usize()? as u64, me.get_usize().expect("meta shape") as u64),
            };
            if stored != expected {
                return Err(fasda_ckpt::CkptError::ConfigMismatch {
                    field: field.to_string(),
                });
            }
        }
        Ok(())
    }

    /// Lowest in-flight step across nodes; at a step boundary (all nodes
    /// `Done`) this is the number of completed steps — the step index a
    /// checkpoint taken here is filed under.
    pub fn current_step(&self) -> u64 {
        self.state.iter().map(|s| s.step).min().unwrap_or(0)
    }

    /// Serialize the full microarchitectural state into `cw` as the
    /// `meta`/`driver`/`chips`/`net` sections of a checkpoint container.
    ///
    /// Only *inter-segment* state is captured: everything the run-start
    /// arm loop of [`Cluster::try_run_with`] rebuilds (utilization
    /// counters, traffic tallies, trace recorders, quiescence caches,
    /// phase-local broadcast schedules) is deliberately excluded, which
    /// is what keeps snapshots small and resume bit-identical — see
    /// `DESIGN.md` §9.
    pub fn snapshot_into(&self, cw: &mut fasda_ckpt::ContainerWriter) {
        use fasda_ckpt::{Persist, Snapshot};
        cw.push(sections::META, self.meta_writer());

        let mut w = fasda_ckpt::Writer::new();
        w.put_u64(self.cycle);
        w.put_u64(self.skipped_cycles);
        w.put_u64(self.burst_cycles);
        w.put_u64(self.burst_count);
        w.put_u64(self.burst_refused);
        w.put_u64(self.burst_refused_interface);
        w.put_u64(self.burst_refused_idle);
        w.put_u64(self.burst_refused_small);
        self.state.save(&mut w);
        self.stalls.save(&mut w);
        fasda_ckpt::snapshot_slice(&self.sync, &mut w);
        self.barrier_mu.snapshot(&mut w);
        self.barrier_force.snapshot(&mut w);
        cw.push(sections::DRIVER, w);

        let mut w = fasda_ckpt::Writer::new();
        w.put_usize(self.chips.len());
        for chip in &self.chips {
            chip.snapshot(&mut w);
        }
        cw.push(sections::CHIPS, w);

        let mut w = fasda_ckpt::Writer::new();
        fasda_ckpt::snapshot_slice(&self.pos_pz, &mut w);
        fasda_ckpt::snapshot_slice(&self.frc_pz, &mut w);
        fasda_ckpt::snapshot_slice(&self.mig_pz, &mut w);
        self.pos_fabric.snapshot(&mut w);
        self.frc_fabric.snapshot(&mut w);
        self.inbox.save(&mut w);
        w.put_bool(self.faults.is_some());
        if let Some(f) = &self.faults {
            f.snapshot(&mut w);
        }
        w.put_bool(self.rel.is_some());
        if let Some(rel) = &self.rel {
            rel.snapshot(&mut w);
        }
        cw.push(sections::NET, w);
    }

    /// Restore the cluster from a parsed checkpoint container. The
    /// receiver must be a freshly built cluster over the *same*
    /// configuration and particle system (enforced through the `meta`
    /// fingerprint — a mismatch returns
    /// [`fasda_ckpt::CkptError::ConfigMismatch`] naming the field).
    /// On error the cluster may be partially overwritten and must be
    /// discarded; no method of this type panics on corrupt input.
    pub fn restore_from(&mut self, c: &fasda_ckpt::Container<'_>) -> Result<(), fasda_ckpt::CkptError> {
        use fasda_ckpt::{Persist, Snapshot};
        self.check_meta(&mut c.reader(sections::META)?)?;

        let r = &mut c.reader(sections::DRIVER)?;
        self.cycle = r.get_u64()?;
        self.skipped_cycles = r.get_u64()?;
        self.burst_cycles = r.get_u64()?;
        self.burst_count = r.get_u64()?;
        self.burst_refused = r.get_u64()?;
        self.burst_refused_interface = r.get_u64()?;
        self.burst_refused_idle = r.get_u64()?;
        self.burst_refused_small = r.get_u64()?;
        let state: Vec<NodeState> = Persist::load(r)?;
        if state.len() != self.state.len() {
            return Err(r.malformed(format!(
                "node count mismatch: snapshot has {}, cluster has {}",
                state.len(),
                self.state.len()
            )));
        }
        self.state = state;
        let stalls: Vec<u64> = Persist::load(r)?;
        if stalls.len() != self.stalls.len() {
            return Err(r.malformed("stall vector length mismatch"));
        }
        self.stalls = stalls;
        fasda_ckpt::restore_slice(&mut self.sync, r)?;
        self.barrier_mu.restore(r)?;
        self.barrier_force.restore(r)?;

        let r = &mut c.reader(sections::CHIPS)?;
        let n = r.get_usize()?;
        if n != self.chips.len() {
            return Err(r.malformed(format!(
                "chip count mismatch: snapshot has {n}, cluster has {}",
                self.chips.len()
            )));
        }
        for chip in &mut self.chips {
            chip.restore(r)?;
        }

        let r = &mut c.reader(sections::NET)?;
        fasda_ckpt::restore_slice(&mut self.pos_pz, r)?;
        fasda_ckpt::restore_slice(&mut self.frc_pz, r)?;
        fasda_ckpt::restore_slice(&mut self.mig_pz, r)?;
        self.pos_fabric.restore(r)?;
        self.frc_fabric.restore(r)?;
        let inbox: Vec<fasda_sim::MessageQueue<NetMsg>> = Persist::load(r)?;
        if inbox.len() != self.inbox.len() {
            return Err(r.malformed("inbox count mismatch"));
        }
        self.inbox = inbox;
        let had_faults = r.get_bool()?;
        match (&mut self.faults, had_faults) {
            (Some(f), true) => f.restore(r)?,
            (None, false) => {}
            // Recovery tolerance: a run resumed with a stripped plan may
            // have no traffic faults left at all (the ancestor's plan
            // was outage-only), yet the snapshot carries the ancestor's
            // fault layer. Adopt it into an empty-plan fault state so
            // the injected tallies and link streams survive the splice;
            // with no directives in the plan the restored latches and
            // streams are inert.
            (None, true) => {
                let mut f = FaultState::new(FaultPlan::none());
                f.restore(r)?;
                self.faults = Some(f);
            }
            (Some(_), false) => {
                return Err(r.malformed(
                    "snapshot has no fault layer but the cluster expects one",
                ))
            }
        }
        let had_rel = r.get_bool()?;
        match (&mut self.rel, had_rel) {
            (Some(rel), true) => rel.restore(r)?,
            (None, false) => {}
            _ => {
                return Err(r.malformed(
                    "reliability-layer presence disagrees between snapshot and cluster",
                ))
            }
        }
        Ok(())
    }
}

/// Deterministic final-state dump for recovery and migration diffs: one
/// line per particle with the raw IEEE-754 bits of position/velocity and
/// the raw fixed-point force-accumulator bank bits, keyed by stable ID.
/// Two runs are bit-identical iff their dumps are byte-identical — the
/// CLI's `--dump-state`, the job service's completion dump, and every
/// recovery gate in CI all compare exactly this string.
pub fn state_dump(cluster: &Cluster, sys: &ParticleSystem) -> String {
    let mut out = sys.clone();
    cluster.store_into(&mut out);
    let mut forces = Vec::new();
    for chip in &cluster.chips {
        for cbb in &chip.cbbs {
            for i in 0..cbb.len() {
                forces.push((cbb.id[i], cbb.force[i].map(|f| f.0)));
            }
        }
    }
    forces.sort_by_key(|e| e.0);
    let mut s = String::with_capacity(forces.len() * 120);
    for (id, frc) in forces {
        let p = out.pos[id as usize];
        let v = out.vel[id as usize];
        s.push_str(&format!(
            "{id} {:016x} {:016x} {:016x} {:016x} {:016x} {:016x} {:016x} {:016x} {:016x}\n",
            p.x.to_bits(),
            p.y.to_bits(),
            p.z.to_bits(),
            v.x.to_bits(),
            v.y.to_bits(),
            v.z.to_bits(),
            frc[0] as u64,
            frc[1] as u64,
            frc[2] as u64,
        ));
    }
    s
}
