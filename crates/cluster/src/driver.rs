//! The cluster driver: chips + packetizers + fabric + synchronization.

use crate::report::{ClusterRunReport, NodeStepReport};
use crate::wire::{Cargo, Delivery};
use fasda_core::config::ChipConfig;
use fasda_core::geometry::{ChipCoord, ChipGeometry};
use fasda_core::timed::ring::{FrcFlit, MigFlit, PosFlit};
use fasda_core::timed::TimedChip;
use fasda_md::space::SimulationSpace;
use fasda_md::system::ParticleSystem;
use fasda_md::units::UnitSystem;
use fasda_net::encap::Packetizer;
use fasda_net::packet::PacketKind;
use fasda_net::switch::SwitchFabric;
use fasda_net::sync::{BulkBarrier, ChainedSync, SyncMode};
use fasda_net::topology::Topology;
use fasda_sim::{MessageQueue, StatSet};
use std::collections::HashMap;

/// Safety cap on the global cycle loop.
const MAX_RUN_CYCLES: u64 = 2_000_000_000;

/// Configuration of a multi-FPGA run.
#[derive(Clone, Copy, Debug)]
pub struct ClusterConfig {
    /// Per-chip architecture configuration.
    pub chip: ChipConfig,
    /// Cells per chip along each axis.
    pub block: (u32, u32, u32),
    /// Synchronization strategy (§4.4).
    pub sync: SyncMode,
    /// Inter-node topology (§4.1).
    pub topology: Topology,
    /// Port bandwidth, bits per cycle (paper: 500 = 100 Gbps @ 200 MHz).
    pub bits_per_cycle: f64,
    /// Packet-departure cooldown in cycles (§5.4).
    pub packet_cooldown: u32,
    /// Timestep in femtoseconds.
    pub dt_fs: f64,
    /// Optional straggler injection: `(node, stall_cycles)` delays that
    /// node's force phase every step (ablation for §4.4).
    pub straggler: Option<(usize, u64)>,
    /// Optional packet-loss injection `(probability, seed)` on both
    /// fabrics. UDP has no retransmission, so any loss deadlocks the
    /// chained synchronization — use with [`Cluster::try_run`] to observe
    /// the stall the paper's cooldown counters exist to prevent (§5.4).
    pub loss: Option<(f64, u64)>,
}

impl ClusterConfig {
    /// The paper's testbed setup for a given chip config and block.
    pub fn paper(chip: ChipConfig, block: (u32, u32, u32)) -> Self {
        ClusterConfig {
            chip,
            block,
            sync: SyncMode::Chained,
            topology: Topology::PAPER_SWITCH,
            bits_per_cycle: SwitchFabric::PAPER_BITS_PER_CYCLE,
            packet_cooldown: 2,
            dt_fs: 2.0,
            straggler: None,
            loss: None,
        }
    }
}

/// A cluster run that failed to make progress within its cycle budget —
/// e.g. a lost packet starving the chained synchronization.
#[derive(Clone, Debug)]
pub struct ClusterStalled {
    /// Cycle at which the run gave up.
    pub at_cycle: u64,
    /// Per-node `(step, phase)` snapshot at the stall.
    pub node_states: Vec<(u64, String)>,
    /// Packets lost by the fabrics so far.
    pub packets_lost: u64,
}

impl std::fmt::Display for ClusterStalled {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "cluster stalled at cycle {} ({} packets lost); node states: {:?}",
            self.at_cycle, self.packets_lost, self.node_states
        )
    }
}

impl std::error::Error for ClusterStalled {}

/// Per-node execution state.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum NodePhase {
    Force,
    /// Waiting at the bulk barrier before entering MU.
    BarrierBeforeMu,
    Mu,
    /// Waiting at the bulk barrier before the next step's force phase.
    BarrierBeforeForce,
    Done,
}

#[derive(Clone, Debug)]
struct NodeState {
    step: u64,
    phase: NodePhase,
    phase_start: u64,
    force_cycles: u64,
    last_pos_flushed: bool,
    mig_flushed: bool,
    barrier_release: Option<u64>,
}

/// The multi-FPGA FASDA system.
pub struct Cluster {
    cfg: ClusterConfig,
    global: SimulationSpace,
    /// One timed chip per node, indexed in Eq.-7 order over the node
    /// grid.
    pub chips: Vec<TimedChip>,
    node_coord: Vec<ChipCoord>,
    coord_to_node: HashMap<ChipCoord, usize>,
    sync: Vec<ChainedSync<usize>>,
    pos_pz: Vec<Packetizer<usize, PosFlit>>,
    frc_pz: Vec<Packetizer<usize, FrcFlit>>,
    mig_pz: Vec<Packetizer<usize, MigFlit>>,
    /// Position-port fabric (positions + migration).
    pub pos_fabric: SwitchFabric,
    /// Force-port fabric.
    pub frc_fabric: SwitchFabric,
    inbox: Vec<MessageQueue<Delivery>>,
    state: Vec<NodeState>,
    stalls: Vec<u64>,
    barrier_mu: BulkBarrier,
    barrier_force: BulkBarrier,
    /// Global wall-clock cycle.
    pub cycle: u64,
    records: Vec<NodeStepReport>,
}

impl Cluster {
    /// Build the cluster over a simulation space and load the particles.
    pub fn new(cfg: ClusterConfig, sys: &ParticleSystem) -> Self {
        let global = sys.space;
        let probe = ChipGeometry::new(global, cfg.block, ChipCoord::new(0, 0, 0));
        let grid = probe.grid();
        let n = probe.num_chips() as usize;
        assert!(n >= 2, "use TimedChip::run_timestep for single-chip runs");

        // Node ids in Eq.-7 order over the chip grid.
        let mut node_coord = Vec::with_capacity(n);
        for x in 0..grid.0 {
            for y in 0..grid.1 {
                for z in 0..grid.2 {
                    node_coord.push(ChipCoord::new(x, y, z));
                }
            }
        }
        // Match Eq. 7: z fastest — the triple loop above already does
        // x-major / z-fastest ordering.
        let coord_to_node: HashMap<ChipCoord, usize> = node_coord
            .iter()
            .enumerate()
            .map(|(i, c)| (*c, i))
            .collect();

        let mut chips = Vec::with_capacity(n);
        let mut sync = Vec::with_capacity(n);
        let mut pos_pz = Vec::with_capacity(n);
        let mut frc_pz = Vec::with_capacity(n);
        let mut mig_pz = Vec::with_capacity(n);
        for coord in &node_coord {
            let geo = ChipGeometry::new(global, cfg.block, *coord);
            let mut chip = TimedChip::new(cfg.chip, geo, sys.units, cfg.dt_fs);
            chip.load(sys);
            let send: Vec<usize> = chip.send_chips.iter().map(|c| coord_to_node[c]).collect();
            let recv: Vec<usize> = chip.recv_chips.iter().map(|c| coord_to_node[c]).collect();
            let s = ChainedSync::new(send, recv);
            pos_pz.push(Packetizer::new(
                PacketKind::Position,
                s.send_peers.clone(),
                cfg.packet_cooldown,
            ));
            frc_pz.push(Packetizer::new(
                PacketKind::Force,
                s.recv_peers.clone(),
                cfg.packet_cooldown,
            ));
            mig_pz.push(Packetizer::new(
                PacketKind::Migration,
                s.mig_peers.clone(),
                cfg.packet_cooldown,
            ));
            sync.push(s);
            chips.push(chip);
        }

        let total: usize = chips.iter().map(TimedChip::num_particles).sum();
        assert_eq!(total, sys.len(), "every particle must land on some chip");

        let bulk_latency = match cfg.sync {
            SyncMode::Bulk { latency } => latency,
            SyncMode::Chained => 0,
        };

        Cluster {
            cfg,
            global,
            chips,
            node_coord,
            coord_to_node,
            sync,
            pos_pz,
            frc_pz,
            mig_pz,
            pos_fabric: match cfg.loss {
                Some((p, seed)) => {
                    SwitchFabric::new(cfg.topology, n, cfg.bits_per_cycle).with_loss(p, seed)
                }
                None => SwitchFabric::new(cfg.topology, n, cfg.bits_per_cycle),
            },
            frc_fabric: match cfg.loss {
                Some((p, seed)) => SwitchFabric::new(cfg.topology, n, cfg.bits_per_cycle)
                    .with_loss(p, seed.wrapping_add(1)),
                None => SwitchFabric::new(cfg.topology, n, cfg.bits_per_cycle),
            },
            inbox: (0..n).map(|_| MessageQueue::new()).collect(),
            state: vec![
                NodeState {
                    step: 0,
                    phase: NodePhase::Force,
                    phase_start: 0,
                    force_cycles: 0,
                    last_pos_flushed: false,
                    mig_flushed: false,
                    barrier_release: None,
                };
                n
            ],
            stalls: vec![0; n],
            barrier_mu: BulkBarrier::new(n, bulk_latency),
            barrier_force: BulkBarrier::new(n, bulk_latency),
            cycle: 0,
            records: Vec::new(),
        }
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.chips.len()
    }

    /// Node coordinates in the logical torus.
    pub fn node_coord(&self, node: usize) -> ChipCoord {
        self.node_coord[node]
    }

    /// Run `steps` timesteps; returns the run report.
    ///
    /// # Panics
    /// If the cluster fails to converge (see [`Cluster::try_run`] for the
    /// non-panicking variant used in failure-injection studies).
    pub fn run(&mut self, steps: u64) -> ClusterRunReport {
        match self.try_run(steps, MAX_RUN_CYCLES) {
            Ok(r) => r,
            Err(e) => panic!("{e}"),
        }
    }

    /// Run `steps` timesteps with an explicit cycle budget; returns
    /// `Err(ClusterStalled)` instead of panicking when progress stops —
    /// the observable consequence of, e.g., injected packet loss starving
    /// the chained synchronization.
    pub fn try_run(&mut self, steps: u64, cycle_budget: u64) -> Result<ClusterRunReport, ClusterStalled> {
        assert!(steps > 0);
        let run_start = self.cycle;
        for chip in &mut self.chips {
            chip.reset_stats();
        }
        self.records.clear();
        // arm step 0
        for node in 0..self.num_nodes() {
            self.sync[node].begin_step(self.state[node].step);
            self.chips[node].begin_force_phase();
            self.state[node].phase = NodePhase::Force;
            self.state[node].phase_start = self.cycle;
            self.state[node].last_pos_flushed = false;
            if let Some((s, d)) = self.cfg.straggler {
                if s == node {
                    self.stalls[node] = d;
                }
            }
        }

        while !self.all_done(steps) {
            for node in 0..self.num_nodes() {
                if self.stalls[node] > 0 {
                    self.stalls[node] -= 1;
                    continue;
                }
                match self.state[node].phase {
                    NodePhase::Force => self.force_cycle(node, steps),
                    NodePhase::Mu => self.mu_cycle(node, steps),
                    NodePhase::BarrierBeforeMu => {
                        if self.state[node].barrier_release.is_some_and(|r| self.cycle >= r) {
                            self.enter_mu(node);
                        }
                    }
                    NodePhase::BarrierBeforeForce => {
                        if self.state[node].barrier_release.is_some_and(|r| self.cycle >= r) {
                            self.enter_next_force(node);
                        }
                    }
                    NodePhase::Done => {}
                }
            }
            self.network_cycle();
            self.deliver_due();
            self.cycle += 1;
            if self.cycle - run_start >= cycle_budget {
                return Err(ClusterStalled {
                    at_cycle: self.cycle,
                    node_states: self
                        .state
                        .iter()
                        .map(|s| (s.step, format!("{:?}", s.phase)))
                        .collect(),
                    packets_lost: self.pos_fabric.packets_lost + self.frc_fabric.packets_lost,
                });
            }
        }

        Ok(self.assemble_report(steps, self.cycle - run_start))
    }

    fn all_done(&self, steps: u64) -> bool {
        self.state.iter().all(|s| s.phase == NodePhase::Done && s.step >= steps)
    }

    // ------------------------------------------------------------------

    fn force_cycle(&mut self, node: usize, _steps: u64) {
        let step = self.state[node].step;
        if !self.chips[node].force_phase_local_idle() {
            self.chips[node].step_force_cycle();
        }

        // Drain EX egress into the encapsulation chains.
        for (peer_coord, flit) in self.chips[node].drain_pos_egress() {
            let peer = self.coord_to_node[&peer_coord];
            self.pos_pz[node].offer(&peer, flit, step);
        }
        for (peer_coord, flit) in self.chips[node].drain_frc_egress() {
            let peer = self.coord_to_node[&peer_coord];
            self.frc_pz[node].offer(&peer, flit, step);
        }

        // Last-position markers: all local positions routed and departed.
        if !self.state[node].last_pos_flushed && self.chips[node].all_positions_departed() {
            let peers = self.sync[node].send_peers.clone();
            for p in peers {
                self.pos_pz[node].flush_last(&p, step);
                self.sync[node].mark_last_pos_sent(p);
            }
            self.state[node].last_pos_flushed = true;
        }

        // Last-force markers, per §4.4: answered only once every position
        // from that peer has been processed and the forces have departed.
        let recv_peers = self.sync[node].recv_peers.clone();
        for p in recv_peers {
            if self.sync[node].owes_last_frc(&p) {
                let pc = self.node_coord[p];
                if self.chips[node].outstanding_from(pc) == 0
                    && self.chips[node].frc_drained_to(pc)
                    && self.chips[node].frc_egress_empty()
                {
                    self.frc_pz[node].flush_last(&p, step);
                    self.sync[node].mark_last_frc_sent(p);
                }
            }
        }

        // Phase transition.
        if self.sync[node].force_phase_complete() && self.chips[node].force_phase_local_idle() {
            self.state[node].force_cycles = self.cycle - self.state[node].phase_start;
            match self.cfg.sync {
                SyncMode::Chained => self.enter_mu(node),
                SyncMode::Bulk { .. } => {
                    self.state[node].phase = NodePhase::BarrierBeforeMu;
                    if let Some(release) = self.barrier_mu.arrive(node, self.cycle) {
                        for s in self.state.iter_mut() {
                            if s.phase == NodePhase::BarrierBeforeMu {
                                s.barrier_release = Some(release);
                            }
                        }
                        self.barrier_mu.reset();
                    }
                }
            }
        }
    }

    fn enter_mu(&mut self, node: usize) {
        self.chips[node].begin_mu_phase();
        self.state[node].phase = NodePhase::Mu;
        self.state[node].phase_start = self.cycle;
        self.state[node].mig_flushed = false;
        self.state[node].barrier_release = None;
    }

    fn mu_cycle(&mut self, node: usize, steps: u64) {
        let step = self.state[node].step;
        if !self.chips[node].mu_phase_local_idle() || !self.state[node].mig_flushed {
            self.chips[node].step_mu_cycle();
        }

        for (peer_coord, flit) in self.chips[node].drain_mig_egress() {
            let peer = self.coord_to_node[&peer_coord];
            self.mig_pz[node].offer(&peer, flit, step);
        }

        if !self.state[node].mig_flushed && self.chips[node].all_migrants_departed() {
            let peers = self.sync[node].mig_peers.clone();
            for p in peers {
                self.mig_pz[node].flush_last(&p, step);
                self.sync[node].mark_last_mig_sent(p);
            }
            self.state[node].mig_flushed = true;
        }

        if self.state[node].mig_flushed
            && self.sync[node].mu_phase_complete()
            && self.chips[node].mu_phase_local_idle()
        {
            let mu_cycles = self.cycle - self.state[node].phase_start;
            self.chips[node].end_mu_phase();
            self.records.push(NodeStepReport {
                node,
                step,
                force_cycles: self.state[node].force_cycles,
                mu_cycles,
                wall_end: self.cycle,
            });
            self.state[node].step += 1;
            if self.state[node].step >= steps {
                self.state[node].phase = NodePhase::Done;
                return;
            }
            match self.cfg.sync {
                SyncMode::Chained => self.enter_next_force(node),
                SyncMode::Bulk { .. } => {
                    self.state[node].phase = NodePhase::BarrierBeforeForce;
                    if let Some(release) = self.barrier_force.arrive(node, self.cycle) {
                        for s in self.state.iter_mut() {
                            if s.phase == NodePhase::BarrierBeforeForce {
                                s.barrier_release = Some(release);
                            }
                        }
                        self.barrier_force.reset();
                    }
                }
            }
        }
    }

    fn enter_next_force(&mut self, node: usize) {
        let step = self.state[node].step;
        self.sync[node].begin_step(step);
        self.chips[node].begin_force_phase();
        self.state[node].phase = NodePhase::Force;
        self.state[node].phase_start = self.cycle;
        self.state[node].last_pos_flushed = false;
        self.state[node].barrier_release = None;
        if let Some((s, d)) = self.cfg.straggler {
            if s == node {
                self.stalls[node] = d;
            }
        }
    }

    // ------------------------------------------------------------------

    fn network_cycle(&mut self) {
        for node in 0..self.num_nodes() {
            if let Some((peer, pkt)) = self.pos_pz[node].tick(self.cycle) {
                if let Some(at) = self.pos_fabric.send_lossy(self.cycle, node, peer) {
                    self.inbox[peer].send(
                        at,
                        Delivery {
                            from: node,
                            cargo: Cargo::Pos(pkt.payloads),
                            last: pkt.last,
                            step: pkt.step,
                        },
                    );
                }
            }
            if let Some((peer, pkt)) = self.frc_pz[node].tick(self.cycle) {
                if let Some(at) = self.frc_fabric.send_lossy(self.cycle, node, peer) {
                    self.inbox[peer].send(
                        at,
                        Delivery {
                            from: node,
                            cargo: Cargo::Frc(pkt.payloads),
                            last: pkt.last,
                            step: pkt.step,
                        },
                    );
                }
            }
            if let Some((peer, pkt)) = self.mig_pz[node].tick(self.cycle) {
                if let Some(at) = self.pos_fabric.send_lossy(self.cycle, node, peer) {
                    self.inbox[peer].send(
                        at,
                        Delivery {
                            from: node,
                            cargo: Cargo::Mig(pkt.payloads),
                            last: pkt.last,
                            step: pkt.step,
                        },
                    );
                }
            }
        }
    }

    fn deliver_due(&mut self) {
        for node in 0..self.num_nodes() {
            while let Some(d) = self.inbox[node].pop_due(self.cycle) {
                let kind = d.cargo.kind();
                match d.cargo {
                    Cargo::Pos(flits) => {
                        for f in flits {
                            self.chips[node].ingest_remote_pos(f);
                        }
                    }
                    Cargo::Frc(flits) => {
                        for f in flits {
                            self.chips[node].ingest_remote_frc(f);
                        }
                    }
                    Cargo::Mig(flits) => {
                        for f in flits {
                            self.chips[node].ingest_remote_mig(f);
                        }
                    }
                }
                if d.last {
                    self.sync[node].on_marker(kind, d.from, d.step);
                }
            }
        }
    }

    // ------------------------------------------------------------------

    /// Gather particle state from all chips into `sys`.
    pub fn store_into(&self, sys: &mut ParticleSystem) {
        assert_eq!(sys.space, self.global);
        for chip in &self.chips {
            chip.store_into(sys);
        }
    }

    /// Total particles across chips.
    pub fn num_particles(&self) -> usize {
        self.chips.iter().map(TimedChip::num_particles).sum()
    }

    /// The unit system in use.
    pub fn units(&self) -> UnitSystem {
        self.chips[0].units()
    }

    fn assemble_report(&mut self, steps: u64, total_cycles: u64) -> ClusterRunReport {
        // Merge per-chip utilization counters into a cluster-wide set.
        let mut stats = StatSet::new();
        for chip in &self.chips {
            stats.merge_from(&chip.report(0, 0).stats);
        }
        let per_node_traffic: Vec<_> = self.chips.iter().map(|c| c.traffic.clone()).collect();

        ClusterRunReport {
            steps,
            total_cycles,
            records: std::mem::take(&mut self.records),
            stats,
            per_node_traffic,
            pos_packets: self.pos_fabric.packets,
            frc_packets: self.frc_fabric.packets,
            pos_bits: self.pos_fabric.bits_sent,
            frc_bits: self.frc_fabric.bits_sent,
            clock_hz: self.cfg.chip.hw.clock_hz,
            dt_fs: self.cfg.dt_fs,
            nodes: self.num_nodes(),
        }
    }
}
