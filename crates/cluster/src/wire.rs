//! Wire encodings of the core flits (the "headers that contain particle
//! identification information" of Fig. 11) and the inter-node delivery
//! record.

use bytes::{Buf, BufMut};
use fasda_arith::fixed::{Fix, FixVec3};
use fasda_core::geometry::ChipCoord;
use fasda_core::timed::ring::{FrcFlit, MigFlit, PosFlit};
use fasda_md::element::Element;
use fasda_md::space::CellCoord;
use fasda_net::packet::{PacketKind, WirePayload};

fn put_chip(buf: &mut bytes::BytesMut, c: ChipCoord) {
    buf.put_u8(c.x as u8);
    buf.put_u8(c.y as u8);
    buf.put_u8(c.z as u8);
}

fn get_chip(buf: &mut &[u8]) -> ChipCoord {
    ChipCoord::new(buf.get_u8() as u32, buf.get_u8() as u32, buf.get_u8() as u32)
}

fn put_cell(buf: &mut bytes::BytesMut, c: CellCoord) {
    buf.put_i8(c.x as i8);
    buf.put_i8(c.y as i8);
    buf.put_i8(c.z as i8);
}

fn get_cell(buf: &mut &[u8]) -> CellCoord {
    CellCoord::new(
        buf.get_i8() as i32,
        buf.get_i8() as i32,
        buf.get_i8() as i32,
    )
}

/// Newtype carrying a [`PosFlit`] across the wire (orphan-rule shim).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct WirePos(pub PosFlit);

/// Newtype carrying a [`FrcFlit`] across the wire.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct WireFrc(pub FrcFlit);

/// Newtype carrying a [`MigFlit`] across the wire.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct WireMig(pub MigFlit);

impl WirePayload for WirePos {
    // chip(3) + cbb(2) + slot(2) + elem(1) + cell(3) + pos(3×4) ≈ 23 B;
    // the RTL packs tighter (fixed-point slices), we keep byte alignment.
    const WIRE_BYTES: usize = 23;

    fn encode(&self, buf: &mut bytes::BytesMut) {
        put_chip(buf, self.0.owner_chip);
        buf.put_u16(self.0.owner_cbb);
        buf.put_u16(self.0.slot);
        buf.put_u8(self.0.elem.index() as u8);
        put_cell(buf, self.0.src_gcell);
        buf.put_i32(self.0.offset.x.to_bits());
        buf.put_i32(self.0.offset.y.to_bits());
        buf.put_i32(self.0.offset.z.to_bits());
    }

    fn decode(buf: &mut &[u8]) -> Option<Self> {
        if buf.len() < Self::WIRE_BYTES {
            return None;
        }
        let owner_chip = get_chip(buf);
        let owner_cbb = buf.get_u16();
        let slot = buf.get_u16();
        let elem = Element::from_index(buf.get_u8() as usize)?;
        let src_gcell = get_cell(buf);
        let offset = FixVec3::new(
            Fix::from_bits(buf.get_i32()),
            Fix::from_bits(buf.get_i32()),
            Fix::from_bits(buf.get_i32()),
        );
        Some(WirePos(PosFlit {
            owner_chip,
            owner_cbb,
            slot,
            elem,
            offset,
            src_gcell,
            local_mask: 0,
            remote_mask: 0,
        }))
    }
}

impl WirePayload for WireFrc {
    const WIRE_BYTES: usize = 19;

    fn encode(&self, buf: &mut bytes::BytesMut) {
        put_chip(buf, self.0.owner_chip);
        buf.put_u16(self.0.owner_cbb);
        buf.put_u16(self.0.slot);
        for k in 0..3 {
            buf.put_f32(self.0.force[k]);
        }
    }

    fn decode(buf: &mut &[u8]) -> Option<Self> {
        if buf.len() < Self::WIRE_BYTES {
            return None;
        }
        let owner_chip = get_chip(buf);
        let owner_cbb = buf.get_u16();
        let slot = buf.get_u16();
        let force = [buf.get_f32(), buf.get_f32(), buf.get_f32()];
        Some(WireFrc(FrcFlit {
            owner_chip,
            owner_cbb,
            slot,
            force,
        }))
    }
}

impl WirePayload for WireMig {
    const WIRE_BYTES: usize = 32;

    fn encode(&self, buf: &mut bytes::BytesMut) {
        put_cell(buf, self.0.dest_gcell);
        buf.put_u32(self.0.id);
        buf.put_u8(self.0.elem.index() as u8);
        buf.put_i32(self.0.offset.x.to_bits());
        buf.put_i32(self.0.offset.y.to_bits());
        buf.put_i32(self.0.offset.z.to_bits());
        for k in 0..3 {
            buf.put_f32(self.0.vel[k]);
        }
    }

    fn decode(buf: &mut &[u8]) -> Option<Self> {
        if buf.len() < Self::WIRE_BYTES {
            return None;
        }
        let dest_gcell = get_cell(buf);
        let id = buf.get_u32();
        let elem = Element::from_index(buf.get_u8() as usize)?;
        let offset = FixVec3::new(
            Fix::from_bits(buf.get_i32()),
            Fix::from_bits(buf.get_i32()),
            Fix::from_bits(buf.get_i32()),
        );
        let vel = [buf.get_f32(), buf.get_f32(), buf.get_f32()];
        Some(WireMig(MigFlit {
            dest_gcell,
            id,
            elem,
            offset,
            vel,
        }))
    }
}

/// The payload of one in-flight inter-node packet.
#[derive(Clone, Debug)]
pub enum Cargo {
    /// Position broadcast traffic.
    Pos(Vec<PosFlit>),
    /// Returning neighbour forces.
    Frc(Vec<FrcFlit>),
    /// Migrating particles.
    Mig(Vec<MigFlit>),
}

impl Cargo {
    /// The packet kind this cargo travels as.
    pub fn kind(&self) -> PacketKind {
        match self {
            Cargo::Pos(_) => PacketKind::Position,
            Cargo::Frc(_) => PacketKind::Force,
            Cargo::Mig(_) => PacketKind::Migration,
        }
    }
}

/// One delivered packet: origin node, cargo, and the sync metadata.
#[derive(Clone, Debug)]
pub struct Delivery {
    /// Sending node index.
    pub from: usize,
    /// Payloads.
    pub cargo: Cargo,
    /// In-band last marker.
    pub last: bool,
    /// Timestep the packet belongs to.
    pub step: u64,
    /// Per-link sequence number (0 when the reliability layer is off).
    pub seq: u32,
    /// True when the fault plan corrupted the frame in flight: the
    /// receiver burns rx bandwidth on it, fails the checksum, and
    /// discards it without acking.
    pub corrupt: bool,
}

/// One message on the inter-node fabric: data or a cumulative ack.
#[derive(Clone, Debug)]
pub enum NetMsg {
    /// A data packet (possibly corrupted in flight).
    Data(Delivery),
    /// A cumulative acknowledgement: everything ≤ `seq` on the
    /// (channel, from → receiver) link has been received in order.
    Ack {
        /// Traffic class being acknowledged.
        channel: PacketKind,
        /// The acking node (the original data receiver).
        from: usize,
        /// Highest in-order sequence received.
        seq: u32,
    },
}

impl fasda_ckpt::Persist for Cargo {
    fn save(&self, w: &mut fasda_ckpt::Writer) {
        match self {
            Cargo::Pos(v) => {
                w.put_u8(0);
                v.save(w);
            }
            Cargo::Frc(v) => {
                w.put_u8(1);
                v.save(w);
            }
            Cargo::Mig(v) => {
                w.put_u8(2);
                v.save(w);
            }
        }
    }
    fn load(r: &mut fasda_ckpt::Reader<'_>) -> Result<Self, fasda_ckpt::CkptError> {
        match r.get_u8()? {
            0 => Ok(Cargo::Pos(fasda_ckpt::Persist::load(r)?)),
            1 => Ok(Cargo::Frc(fasda_ckpt::Persist::load(r)?)),
            2 => Ok(Cargo::Mig(fasda_ckpt::Persist::load(r)?)),
            t => Err(r.malformed(format!("invalid cargo tag {t}"))),
        }
    }
}

impl fasda_ckpt::Persist for Delivery {
    fn save(&self, w: &mut fasda_ckpt::Writer) {
        w.put_usize(self.from);
        self.cargo.save(w);
        w.put_bool(self.last);
        w.put_u64(self.step);
        w.put_u32(self.seq);
        w.put_bool(self.corrupt);
    }
    fn load(r: &mut fasda_ckpt::Reader<'_>) -> Result<Self, fasda_ckpt::CkptError> {
        Ok(Delivery {
            from: r.get_usize()?,
            cargo: fasda_ckpt::Persist::load(r)?,
            last: r.get_bool()?,
            step: r.get_u64()?,
            seq: r.get_u32()?,
            corrupt: r.get_bool()?,
        })
    }
}

impl fasda_ckpt::Persist for NetMsg {
    fn save(&self, w: &mut fasda_ckpt::Writer) {
        match self {
            NetMsg::Data(d) => {
                w.put_u8(0);
                d.save(w);
            }
            NetMsg::Ack { channel, from, seq } => {
                w.put_u8(1);
                channel.save(w);
                w.put_usize(*from);
                w.put_u32(*seq);
            }
        }
    }
    fn load(r: &mut fasda_ckpt::Reader<'_>) -> Result<Self, fasda_ckpt::CkptError> {
        match r.get_u8()? {
            0 => Ok(NetMsg::Data(fasda_ckpt::Persist::load(r)?)),
            1 => Ok(NetMsg::Ack {
                channel: fasda_ckpt::Persist::load(r)?,
                from: r.get_usize()?,
                seq: r.get_u32()?,
            }),
            t => Err(r.malformed(format!("invalid net message tag {t}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fasda_net::packet::Packet;

    #[test]
    fn pos_flit_roundtrip_through_packet_bytes() {
        let f = PosFlit {
            owner_chip: ChipCoord::new(1, 0, 1),
            owner_cbb: 7,
            slot: 42,
            elem: Element::Na,
            offset: FixVec3::from_f64(0.25, 0.5, 0.875),
            src_gcell: CellCoord::new(5, 2, 0),
            local_mask: 0xdead, // not serialized: recomputed at arrival
            remote_mask: 0x3,
        };
        let pkt = Packet::data(PacketKind::Position, vec![WirePos(f), WirePos(f)], 9);
        let back: Packet<WirePos> = Packet::from_bytes(&pkt.to_bytes()).expect("parse");
        assert_eq!(back.payloads.len(), 2);
        let g = back.payloads[0].0;
        assert_eq!(g.owner_chip, f.owner_chip);
        assert_eq!(g.owner_cbb, 7);
        assert_eq!(g.slot, 42);
        assert_eq!(g.offset, f.offset);
        assert_eq!(g.src_gcell, f.src_gcell);
        assert_eq!(g.local_mask, 0, "masks are link-local, not serialized");
    }

    #[test]
    fn frc_flit_roundtrip() {
        let f = FrcFlit {
            owner_chip: ChipCoord::new(0, 1, 1),
            owner_cbb: 3,
            slot: 11,
            force: [1.5, -2.25, 0.125],
        };
        let pkt = Packet::data(PacketKind::Force, vec![WireFrc(f)], 0);
        let back: Packet<WireFrc> = Packet::from_bytes(&pkt.to_bytes()).expect("parse");
        assert_eq!(back.payloads[0].0, f);
    }

    #[test]
    fn mig_flit_roundtrip() {
        let m = MigFlit {
            dest_gcell: CellCoord::new(3, 3, 1),
            id: 123_456,
            elem: Element::Ar,
            offset: FixVec3::from_f64(0.1, 0.9, 0.5),
            vel: [0.001, -0.002, 0.0],
        };
        let pkt = Packet::data(PacketKind::Migration, vec![WireMig(m)], 5);
        let back: Packet<WireMig> = Packet::from_bytes(&pkt.to_bytes()).expect("parse");
        assert_eq!(back.payloads[0].0, m);
    }

    #[test]
    fn four_pos_flits_fit_in_512_bits_with_header() {
        // 16 header bytes + 4×23 payload bytes = 108... the paper's RTL
        // packs fixed-point slices; our byte-aligned encoding needs two
        // beats for four positions. We still account one 512-bit packet
        // per 4 payloads, matching the artifact's packet counters.
        const { assert!(WirePos::WIRE_BYTES * 4 + fasda_net::packet::HEADER_BYTES <= 2 * 64) }
    }
}
