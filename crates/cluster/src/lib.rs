//! # fasda-cluster
//!
//! The distributed multi-FPGA FASDA system (paper §4).
//!
//! [`Cluster`] instantiates one [`fasda_core::TimedChip`] per FPGA node
//! over a partition of the simulation space, connects their EX-node
//! queues through [`fasda_net`] packetizers and a switch fabric, and
//! drives the whole system cycle by cycle. Nodes progress through their
//! force-evaluation and motion-update phases **independently**, gated
//! only by the chained-synchronization handshakes with their immediate
//! neighbours (§4.4) — a fast node races ahead into the next timestep
//! while a slow one finishes, which is exactly the behaviour the
//! straggler ablation measures. A bulk-synchronous mode replaces the
//! chained handshake with a central barrier for comparison.

pub mod ckpt;
pub mod driver;
pub mod host;
pub mod obs;
pub mod report;
pub mod shard;
pub mod wire;

pub use ckpt::{
    drain_to_container, latest_checkpoint, load_checkpoint, newest_consistent, resume_from_container,
    resume_latest, run_with_checkpoints, run_with_checkpoints_ctl, run_with_recovery,
    save_checkpoint, CheckpointConfig, CheckpointedRun, CkptRunError, CkptRunOutcome, RecoveredRun,
    RecoveryPolicy, RunAccumulator, SegmentControl, SegmentStatus,
};
pub use driver::{
    state_dump, Cluster, ClusterConfig, ClusterError, ClusterStalled, CrashInjected,
    DeadlockDetected, EngineConfig,
};
pub use fasda_net::fault::CrashPoint;
pub use fasda_net::fault::{BurstModel, FaultChannel, FaultPlan, LinkFaults, LinkFlap, MarkerKill, Partition};
pub use fasda_net::reliable::RelConfig;
pub use report::RelSummary;
pub use host::{HostController, HostRun};
pub use obs::{
    emit_final, final_registry, final_totals_json, measured_from, model_input, FleetBeat,
    FleetObs, ObsDelta, ObsLive, ObsSinkConfig,
};
pub use report::{ClusterRunReport, NodeStepReport};
pub use shard::{
    coordinator_main, coordinator_main_net, run_sharded, shard_ranges, validate_sharding,
    worker_main, worker_main_net, ShardError, ShardNet, ShardOpts, ShardedRun,
};

// Re-export the flight-recorder vocabulary so downstream users can
// configure tracing and consume traces without a direct `fasda-trace`
// dependency.
pub use fasda_trace::{
    chrome_trace, provenance_json, stall_json, trace_summary_json, trace_summary_json_with,
    Json, StallCause, StallLedger, Trace, TraceConfig, TraceLevel,
};
