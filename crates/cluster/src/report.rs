//! Cluster run reports: timing, utilization, and traffic — the raw
//! material for Figs. 16–18.

use fasda_core::timed::TrafficCounters;
use fasda_md::units::UnitSystem;
use fasda_sim::StatSet;
use fasda_trace::Json;

/// One node's record for one completed timestep.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct NodeStepReport {
    /// Node index.
    pub node: usize,
    /// Timestep index.
    pub step: u64,
    /// Force-phase duration in global cycles (includes waits on
    /// neighbours — this is the node's wall time in the phase).
    pub force_cycles: u64,
    /// Motion-update phase duration in global cycles.
    pub mu_cycles: u64,
    /// Global cycle at which the node finished the step.
    pub wall_end: u64,
}

/// Reliability-layer counters for one run (present only when the
/// retransmission layer was enabled).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RelSummary {
    /// Frames re-sent after a head-of-line timeout.
    pub retransmits: u64,
    /// Cumulative acks put on the fabric.
    pub acks_sent: u64,
    /// Frames discarded by the receiver's dedup window.
    pub duplicates_dropped: u64,
    /// Frames discarded for failing the checksum (fault-corrupted).
    pub corrupt_dropped: u64,
}

/// Aggregate report for a multi-step cluster run.
#[derive(Clone, Debug, PartialEq)]
pub struct ClusterRunReport {
    /// Steps executed.
    pub steps: u64,
    /// Wall-clock cycles for the whole run (all nodes done).
    pub total_cycles: u64,
    /// Per-node per-step records.
    pub records: Vec<NodeStepReport>,
    /// Cluster-merged component utilization counters.
    pub stats: StatSet,
    /// Per-node flit-level traffic counters.
    pub per_node_traffic: Vec<TrafficCounters>,
    /// Packets carried by the position port fabric (positions +
    /// migration).
    pub pos_packets: u64,
    /// Packets carried by the force port fabric.
    pub frc_packets: u64,
    /// Bits carried by the position port fabric.
    pub pos_bits: u64,
    /// Bits carried by the force port fabric.
    pub frc_bits: u64,
    /// Fabric clock.
    pub clock_hz: f64,
    /// Timestep, femtoseconds.
    pub dt_fs: f64,
    /// Node count.
    pub nodes: usize,
    /// Faults the plan injected (0 when no fault plan was active).
    pub faults_injected: u64,
    /// Reliability-layer counters, when the layer was on.
    pub reliability: Option<RelSummary>,
}

impl ClusterRunReport {
    /// Average wall-clock cycles per timestep.
    pub fn cycles_per_step(&self) -> f64 {
        self.total_cycles as f64 / self.steps as f64
    }

    /// The paper's simulation-rate metric.
    pub fn us_per_day(&self) -> f64 {
        let seconds_per_step = self.cycles_per_step() / self.clock_hz;
        UnitSystem::us_per_day(self.dt_fs, seconds_per_step)
    }

    /// Average per-node position-port bandwidth demand in Gbps
    /// (Fig. 18 A).
    pub fn pos_gbps_per_node(&self) -> f64 {
        self.gbps(self.pos_bits)
    }

    /// Average per-node force-port bandwidth demand in Gbps (Fig. 18 A).
    pub fn frc_gbps_per_node(&self) -> f64 {
        self.gbps(self.frc_bits)
    }

    fn gbps(&self, bits: u64) -> f64 {
        if self.total_cycles == 0 {
            return 0.0;
        }
        let bits_per_cycle_per_node = bits as f64 / self.total_cycles as f64 / self.nodes as f64;
        bits_per_cycle_per_node * self.clock_hz / 1.0e9
    }

    /// Slowest node's average force-phase duration (straggler view).
    pub fn max_force_cycles(&self) -> u64 {
        self.records.iter().map(|r| r.force_cycles).max().unwrap_or(0)
    }

    /// Per-step completion spread: max − min `wall_end` within each step,
    /// averaged over steps. Chained sync keeps this large under a
    /// straggler (fast nodes race ahead); bulk sync forces it to ~0.
    pub fn avg_completion_spread(&self) -> f64 {
        let mut total = 0u64;
        let mut count = 0u64;
        for step in 0..self.steps {
            let ends: Vec<u64> = self
                .records
                .iter()
                .filter(|r| r.step == step)
                .map(|r| r.wall_end)
                .collect();
            if let (Some(&min), Some(&max)) = (ends.iter().min(), ends.iter().max()) {
                total += max - min;
                count += 1;
            }
        }
        if count == 0 {
            0.0
        } else {
            total as f64 / count as f64
        }
    }

    /// Machine-readable metrics document for this run — the shared
    /// "run" section of every metrics JSON the tools emit (the CLI and
    /// benches add their own sections around it).
    pub fn metrics_json(&self) -> Json {
        let mut util = Vec::new();
        for name in self.stats.names() {
            util.push(
                Json::obj()
                    .field("component", name)
                    .field("replicas", Json::uint(self.stats.replicas(name)))
                    .field("work", Json::uint(self.stats.work(name)))
                    .field(
                        "hardware_util",
                        Json::fixed(self.stats.hardware_util(name, self.total_cycles), 6),
                    )
                    .field(
                        "time_util",
                        Json::fixed(self.stats.time_util(name, self.total_cycles), 6),
                    )
                    .build(),
            );
        }
        let steps = self
            .records
            .iter()
            .map(|r| {
                Json::obj()
                    .field("node", r.node)
                    .field("step", Json::uint(r.step))
                    .field("force_cycles", Json::uint(r.force_cycles))
                    .field("mu_cycles", Json::uint(r.mu_cycles))
                    .field("wall_end", Json::uint(r.wall_end))
                    .build()
            })
            .collect::<Vec<_>>();
        Json::obj()
            .field("nodes", self.nodes)
            .field("steps", Json::uint(self.steps))
            .field("total_cycles", Json::uint(self.total_cycles))
            .field("cycles_per_step", Json::fixed(self.cycles_per_step(), 3))
            .field("us_per_day", Json::fixed(self.us_per_day(), 3))
            .field("pos_packets", Json::uint(self.pos_packets))
            .field("frc_packets", Json::uint(self.frc_packets))
            .field("pos_gbps_per_node", Json::fixed(self.pos_gbps_per_node(), 3))
            .field("frc_gbps_per_node", Json::fixed(self.frc_gbps_per_node(), 3))
            .field("max_force_cycles", Json::uint(self.max_force_cycles()))
            .field(
                "avg_completion_spread",
                Json::fixed(self.avg_completion_spread(), 3),
            )
            .field("utilization", Json::Arr(util))
            .field("records", Json::Arr(steps))
            .field("faults_injected", Json::uint(self.faults_injected))
            .field(
                "reliability",
                match &self.reliability {
                    None => Json::Null,
                    Some(r) => Json::obj()
                        .field("retransmits", Json::uint(r.retransmits))
                        .field("acks_sent", Json::uint(r.acks_sent))
                        .field("duplicates_dropped", Json::uint(r.duplicates_dropped))
                        .field("corrupt_dropped", Json::uint(r.corrupt_dropped))
                        .build(),
                },
            )
            .build()
    }
}

impl fasda_ckpt::Persist for NodeStepReport {
    fn save(&self, w: &mut fasda_ckpt::Writer) {
        w.put_usize(self.node);
        w.put_u64(self.step);
        w.put_u64(self.force_cycles);
        w.put_u64(self.mu_cycles);
        w.put_u64(self.wall_end);
    }
    fn load(r: &mut fasda_ckpt::Reader<'_>) -> Result<Self, fasda_ckpt::CkptError> {
        Ok(NodeStepReport {
            node: r.get_usize()?,
            step: r.get_u64()?,
            force_cycles: r.get_u64()?,
            mu_cycles: r.get_u64()?,
            wall_end: r.get_u64()?,
        })
    }
}

impl fasda_ckpt::Persist for RelSummary {
    fn save(&self, w: &mut fasda_ckpt::Writer) {
        w.put_u64(self.retransmits);
        w.put_u64(self.acks_sent);
        w.put_u64(self.duplicates_dropped);
        w.put_u64(self.corrupt_dropped);
    }
    fn load(r: &mut fasda_ckpt::Reader<'_>) -> Result<Self, fasda_ckpt::CkptError> {
        Ok(RelSummary {
            retransmits: r.get_u64()?,
            acks_sent: r.get_u64()?,
            duplicates_dropped: r.get_u64()?,
            corrupt_dropped: r.get_u64()?,
        })
    }
}
