//! Host-side control flow — the artifact's `dask`/`pynq` equivalent.
//!
//! The paper's artifact drives the FPGAs from Python: a dask scheduler
//! fans `run.py <scheduler> <dump_group> <num_iterations>` out to the
//! hosts, each host configures its board over pynq, the boards run
//! independently, and afterwards the hosts read the AXI-Lite result
//! registers and optionally dump one group of cells for inspection.
//! [`HostController`] reproduces that workflow over the simulated
//! cluster: run a number of iterations, read every node's
//! [`AxiLiteRegs`], and dump the particle contents of a chosen cell
//! group.

use crate::driver::{Cluster, ClusterError, EngineConfig};
use crate::report::ClusterRunReport;
use fasda_core::timed::axi::AxiLiteRegs;
use fasda_md::system::ParticleSystem;

/// Result of one host-driven run.
#[derive(Clone, Debug)]
pub struct HostRun {
    /// The cluster-level report (timing, traffic, utilization).
    pub report: ClusterRunReport,
    /// Per-node AXI-Lite register dumps, indexed by node.
    pub regs: Vec<AxiLiteRegs>,
}

impl HostRun {
    /// The artifact's bottom line: convert each node's
    /// `operation_cycle_cnt` to µs/day and report the slowest node
    /// (the simulation rate of the whole machine).
    pub fn machine_rate_us_per_day(&self, dt_fs: f64, clock_hz: f64) -> f64 {
        self.regs
            .iter()
            .map(|r| r.us_per_day(self.report.steps, dt_fs, clock_hz))
            .fold(f64::INFINITY, f64::min)
    }
}

/// Drives a [`Cluster`] the way the artifact's host scripts drive the
/// testbed.
pub struct HostController {
    cluster: Cluster,
}

impl HostController {
    /// Attach to a cluster (the boards are already configured — the
    /// bitstream-loading step of the artifact is `Cluster::new`).
    pub fn new(cluster: Cluster) -> Self {
        HostController { cluster }
    }

    /// Access the underlying cluster.
    pub fn cluster(&self) -> &Cluster {
        &self.cluster
    }

    /// Drain the flight-recorder streams of the last run (if tracing
    /// was enabled via [`EngineConfig::with_trace`]).
    pub fn take_trace(&mut self) -> Option<fasda_trace::Trace> {
        self.cluster.take_trace()
    }

    /// `run.py <num_iterations>`: execute iterations and read back every
    /// node's result registers.
    pub fn run_iterations(&mut self, num_iterations: u64) -> Result<HostRun, ClusterError> {
        self.run_iterations_with(num_iterations, &EngineConfig::serial())
    }

    /// [`HostController::run_iterations`] under an explicit engine
    /// configuration; results are bit-identical across engines.
    pub fn run_iterations_with(
        &mut self,
        num_iterations: u64,
        engine: &EngineConfig,
    ) -> Result<HostRun, ClusterError> {
        let report = self
            .cluster
            .try_run_with(num_iterations, 2_000_000_000, engine)?;
        let regs = (0..self.cluster.num_nodes())
            .map(|n| AxiLiteRegs::read(&self.cluster.chips[n], report.total_cycles))
            .collect();
        Ok(HostRun { report, regs })
    }

    /// `<dump_group>`: dump the particle contents of one node's cells
    /// (stable ID, element, global position, velocity) — the artifact's
    /// demonstration dump.
    pub fn dump_group(&self, node: usize) -> Vec<(u32, fasda_md::element::Element, [f64; 3], [f64; 3])> {
        let chip = &self.cluster.chips[node];
        let mut out = Vec::new();
        for cbb in &chip.cbbs {
            for i in 0..cbb.len() {
                let [ox, oy, oz] = cbb.offset[i].to_f64();
                out.push((
                    cbb.id[i],
                    cbb.elem[i],
                    [
                        cbb.gcell.x as f64 + ox,
                        cbb.gcell.y as f64 + oy,
                        cbb.gcell.z as f64 + oz,
                    ],
                    [
                        cbb.vel[i][0] as f64,
                        cbb.vel[i][1] as f64,
                        cbb.vel[i][2] as f64,
                    ],
                ));
            }
        }
        out.sort_by_key(|e| e.0);
        out
    }

    /// Gather the full particle state (all nodes) into `sys`.
    pub fn gather(&self, sys: &mut ParticleSystem) {
        self.cluster.store_into(sys);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::ClusterConfig;
    use fasda_core::config::ChipConfig;
    use fasda_md::element::Element;
    use fasda_md::space::SimulationSpace;
    use fasda_md::workload::{Placement, WorkloadSpec};

    fn cluster() -> Cluster {
        let sys = WorkloadSpec {
            space: SimulationSpace::cubic(6),
            per_cell: 3,
            placement: Placement::JitteredLattice { jitter: 0.05 },
            temperature_k: 150.0,
            seed: 71,
            element: Element::Na,
        }
        .generate();
        Cluster::new(ClusterConfig::paper(ChipConfig::baseline(), (3, 3, 3)), &sys)
    }

    #[test]
    fn host_run_reads_all_registers() {
        let mut host = HostController::new(cluster());
        let run = host.run_iterations(2).expect("run converges");
        assert_eq!(run.regs.len(), 8);
        for regs in &run.regs {
            assert_eq!(regs.operation_cycle_cnt, run.report.total_cycles);
            assert!(regs.PE_cycle_cnt > 0);
            assert!(regs.out_traffic_packets_pos > 0, "multi-chip must talk");
        }
        let rate = run.machine_rate_us_per_day(2.0, 200.0e6);
        assert!(rate > 0.0 && rate < 1_000.0);
    }

    #[test]
    fn dump_group_returns_owned_particles_sorted() {
        let mut host = HostController::new(cluster());
        host.run_iterations(1).expect("run");
        let total: usize = (0..8).map(|n| host.dump_group(n).len()).sum();
        assert_eq!(total, 6 * 6 * 6 * 3, "every particle in exactly one dump");
        let d = host.dump_group(0);
        assert!(d.windows(2).all(|w| w[0].0 < w[1].0), "sorted by id");
    }
}
