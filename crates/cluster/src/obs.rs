//! Live-telemetry glue: the in-run heartbeat sampler attached to a
//! [`Cluster`], the engine-invariant final-totals builder, and the
//! conversion from [`ClusterConfig`] to the §5 model's input.
//!
//! The split of responsibilities (see `DESIGN.md` §12):
//!
//! * [`ObsLive`] samples the cluster at step boundaries from inside the
//!   cycle loop and writes `beat` records + the Prometheus scrape
//!   file. Beats mix simulated counters with wall-clock gauges — they
//!   are a *progress view*, not an identity artifact.
//! * [`final_registry`] / [`final_totals_json`] are pure functions of
//!   the finished run's [`ClusterRunReport`] and stall ledger — both
//!   bit-identical across engines and shard counts — so the final
//!   totals they produce are too. Every surface that emits final
//!   totals (the `final` heartbeat record, `--obs-out`, the metrics
//!   document's `obs` section) goes through them.
//! * [`model_input`] + [`measured_from`] feed `fasda_obs::model`'s
//!   §5 prediction/divergence machinery from a run.

use crate::driver::{Cluster, ClusterConfig};
use crate::report::ClusterRunReport;
use fasda_ckpt::{CkptError, Persist, Reader, Writer};
use fasda_obs::model::{Measured, ModelInput, STALL_CLASSES};
use fasda_obs::{prom_write, Hist, JsonlSink, Registry};
use fasda_trace::{Json, StallCause, StallLedger};
use std::ops::Range;
use std::path::PathBuf;
use std::time::Instant;

/// Fixed force-phase duration histogram bounds (cycles, inclusive):
/// powers of two so every engine and shard count bins identically.
pub const FORCE_HIST_BOUNDS: [u64; 12] = [
    256, 512, 1024, 2048, 4096, 8192, 16384, 32768, 65536, 131072, 262144, 524288,
];

/// Where heartbeats go. Both sinks optional so `--heartbeat-every`
/// alone still drives the fleet view in sharded runs.
#[derive(Clone, Debug, Default)]
pub struct ObsSinkConfig {
    /// JSONL heartbeat stream path.
    pub heartbeat_out: Option<PathBuf>,
    /// Prometheus text-format scrape file path.
    pub prom_out: Option<PathBuf>,
}

impl ObsSinkConfig {
    /// True when any sink is configured.
    pub fn any(&self) -> bool {
        self.heartbeat_out.is_some() || self.prom_out.is_some()
    }
}

/// In-run heartbeat sampler. Attach with [`Cluster::attach_obs`];
/// the cycle loop calls [`ObsLive::maybe_beat`] behind an
/// `obs.is_some()` gate (the zero-cost-off pattern). Survives
/// checkpoint segment boundaries: the per-segment stall ledger and
/// record buffer resets are detected and re-based, so the heartbeat
/// counters stay monotonic across an entire multi-segment run.
pub struct ObsLive {
    every: u64,
    sink: Option<JsonlSink>,
    prom_path: Option<PathBuf>,
    started: Instant,
    last_wall: Instant,
    last_step: u64,
    last_cycle: u64,
    next_due: u64,
    records_seen: usize,
    /// Finalized ledger totals from segments already torn down.
    stall_acc: [u64; STALL_CLASSES],
    prod_acc: u64,
    /// Last observed ledger totals of the *current* segment.
    stall_seen: [u64; STALL_CLASSES],
    prod_seen: u64,
    beats: u64,
}

impl ObsLive {
    /// Build a sampler firing every `every` completed steps.
    pub fn new(every: u64, sinks: &ObsSinkConfig) -> std::io::Result<Self> {
        let sink = match &sinks.heartbeat_out {
            Some(p) => Some(JsonlSink::create(p)?),
            None => None,
        };
        let now = Instant::now();
        Ok(ObsLive {
            every: every.max(1),
            sink,
            prom_path: sinks.prom_out.clone(),
            started: now,
            last_wall: now,
            last_step: 0,
            last_cycle: 0,
            next_due: every.max(1),
            records_seen: 0,
            stall_acc: [0; STALL_CLASSES],
            prod_acc: 0,
            stall_seen: [0; STALL_CLASSES],
            prod_seen: 0,
            beats: 0,
        })
    }

    /// Beats emitted so far.
    pub fn beats(&self) -> u64 {
        self.beats
    }

    /// Called from the cycle loop (after the cycle increment). The
    /// fast path out is one length comparison: step boundaries only
    /// move when a `NodeStepReport` is pushed.
    pub(crate) fn maybe_beat(&mut self, cl: &Cluster, steps: u64) {
        if cl.records.len() == self.records_seen {
            return;
        }
        if cl.records.len() < self.records_seen {
            // Segment reset (checkpointed run): the record buffer was
            // drained into the previous segment's report.
            self.records_seen = 0;
        }
        self.records_seen = cl.records.len();
        let cur = cl.current_step();
        if cur < self.next_due {
            return;
        }
        self.next_due = cur + self.every;
        self.emit_beat(cl, cur, steps);
    }

    /// Sample the cluster and write one `beat` record + scrape file.
    fn emit_beat(&mut self, cl: &Cluster, cur: u64, steps: u64) {
        self.beats += 1;
        let mut reg = Registry::new(true);
        self.fold_ledger(&cl.tr_stalls);
        fill_live(&mut reg, cl, cur, &self.live_stalls(), self.live_productive());

        // Wall-clock gauges (progress view only; never in totals).
        let now = Instant::now();
        let wall = now.duration_since(self.started).as_secs_f64();
        let dt = now.duration_since(self.last_wall).as_secs_f64().max(1e-9);
        let steps_per_s = (cur - self.last_step) as f64 / dt;
        let cycles_per_s = cl.cycle.saturating_sub(self.last_cycle) as f64 / dt;
        let eta_s = if steps_per_s > 0.0 {
            steps.saturating_sub(cur) as f64 / steps_per_s
        } else {
            0.0
        };
        reg.gauge_set("wall_s", wall);
        reg.gauge_set("steps_per_s", steps_per_s);
        reg.gauge_set("cycles_per_s", cycles_per_s);
        reg.gauge_set("eta_s", eta_s);
        reg.gauge_set("progress", cur as f64 / steps.max(1) as f64);
        self.last_wall = now;
        self.last_step = cur;
        self.last_cycle = cl.cycle;

        let record = beat_record("beat", self.beats, cur, steps, &reg.snapshot_json());
        if let Some(sink) = &mut self.sink {
            let _ = sink.emit(&record);
        }
        if let Some(path) = &self.prom_path {
            let _ = prom_write(&reg, "fasda", path);
        }
    }

    /// Fold the current segment's ledger totals into the reset-tolerant
    /// accumulators.
    fn fold_ledger(&mut self, ledger: &StallLedger) {
        let mut stalls = [0u64; STALL_CLASSES];
        let mut prod = 0u64;
        for node in 0..ledger.num_nodes() {
            let t = ledger.node_total(node);
            for (acc, v) in stalls.iter_mut().zip(t.stalled.iter()) {
                *acc += v;
            }
            prod += t.productive;
        }
        let seen: u64 = self.stall_seen.iter().sum::<u64>() + self.prod_seen;
        let now: u64 = stalls.iter().sum::<u64>() + prod;
        if now < seen {
            // A new segment re-armed the ledger: bank the old totals.
            for (acc, v) in self.stall_acc.iter_mut().zip(self.stall_seen.iter()) {
                *acc += v;
            }
            self.prod_acc += self.prod_seen;
        }
        self.stall_seen = stalls;
        self.prod_seen = prod;
    }

    fn live_stalls(&self) -> [u64; STALL_CLASSES] {
        let mut out = self.stall_acc;
        for (acc, v) in out.iter_mut().zip(self.stall_seen.iter()) {
            *acc += v;
        }
        out
    }

    fn live_productive(&self) -> u64 {
        self.prod_acc + self.prod_seen
    }
}

// ---------------------------------------------------------------------------
// Fleet telemetry (sharded runs)
// ---------------------------------------------------------------------------

/// One shard's compact telemetry sample, piggybacked on a per-cycle
/// Tally mesh frame when the shard's slowest owned node crosses a
/// heartbeat boundary. Totals are cumulative since worker start (owned
/// nodes only), so per-worker samples sum to the fleet view and stay
/// monotonic across checkpoint segments.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ObsDelta {
    /// Shard index of the sampling worker.
    pub worker: u32,
    /// The heartbeat boundary (absolute step, a multiple of the
    /// cadence) this sample answers for.
    pub boundary: u64,
    /// Minimum current step over the worker's owned nodes.
    pub min_step: u64,
    /// Productive force-phase cycles attributed to owned nodes.
    pub productive: u64,
    /// Stall cycles by cause (StallCause index order), owned nodes.
    pub stalls: [u64; STALL_CLASSES],
    /// Retransmissions originated by owned nodes (0 without `--rel`).
    pub retransmits: u64,
}

impl Persist for ObsDelta {
    fn save(&self, w: &mut Writer) {
        w.put_u32(self.worker);
        w.put_u64(self.boundary);
        w.put_u64(self.min_step);
        w.put_u64(self.productive);
        for s in self.stalls {
            w.put_u64(s);
        }
        w.put_u64(self.retransmits);
    }
    fn load(r: &mut Reader<'_>) -> Result<Self, CkptError> {
        Ok(ObsDelta {
            worker: r.get_u32()?,
            boundary: r.get_u64()?,
            min_step: r.get_u64()?,
            productive: r.get_u64()?,
            stalls: {
                let mut s = [0u64; STALL_CLASSES];
                for v in &mut s {
                    *v = r.get_u64()?;
                }
                s
            },
            retransmits: r.get_u64()?,
        })
    }
}

/// A complete fleet heartbeat: every shard's sample for one boundary.
/// Assembled by worker 0 (which sees all Tally frames) and shipped to
/// the coordinator on the control link as a `Beat` frame.
#[derive(Clone, Debug)]
pub struct FleetBeat {
    /// Monotonic beat counter (worker 0's).
    pub beat: u64,
    /// The heartbeat boundary all samples answer for.
    pub boundary: u64,
    /// Worker 0's global cycle when the last sample arrived.
    pub cycle: u64,
    /// One sample per shard, shard order.
    pub workers: Vec<ObsDelta>,
}

impl Persist for FleetBeat {
    fn save(&self, w: &mut Writer) {
        w.put_u64(self.beat);
        w.put_u64(self.boundary);
        w.put_u64(self.cycle);
        self.workers.save(w);
    }
    fn load(r: &mut Reader<'_>) -> Result<Self, CkptError> {
        Ok(FleetBeat {
            beat: r.get_u64()?,
            boundary: r.get_u64()?,
            cycle: r.get_u64()?,
            workers: Persist::load(r)?,
        })
    }
}

/// Coordinator-side fleet heartbeat sink: turns [`FleetBeat`] frames
/// into `fleet` JSONL records (and a Prometheus scrape file) naming the
/// lagging shard. Purely observational — the coordinator never
/// simulates, so this cannot perturb the run.
pub struct FleetObs {
    sink: Option<JsonlSink>,
    prom_path: Option<PathBuf>,
    started: Instant,
    last_wall: Instant,
    last_step: u64,
    beats: u64,
}

impl FleetObs {
    /// Open the configured sinks (truncating an existing JSONL stream).
    pub fn new(sinks: &ObsSinkConfig) -> std::io::Result<Self> {
        let sink = match &sinks.heartbeat_out {
            Some(p) => Some(JsonlSink::create(p)?),
            None => None,
        };
        let now = Instant::now();
        Ok(FleetObs {
            sink,
            prom_path: sinks.prom_out.clone(),
            started: now,
            last_wall: now,
            last_step: 0,
            beats: 0,
        })
    }

    /// Fleet heartbeats emitted so far.
    pub fn beats(&self) -> u64 {
        self.beats
    }

    /// Handle one fleet beat: emit the `fleet` record and refresh the
    /// scrape file. `ranges` are the shard → owned-node ranges (shard
    /// order), `steps` the run's step target.
    pub fn on_beat(&mut self, fb: &FleetBeat, ranges: &[Range<usize>], steps: u64) {
        self.beats += 1;
        let fleet_min = fb.workers.iter().map(|d| d.min_step).min().unwrap_or(0);
        let fleet_max = fb.workers.iter().map(|d| d.min_step).max().unwrap_or(0);
        let lagging = fb
            .workers
            .iter()
            .min_by_key(|d| d.min_step)
            .map(|d| d.worker)
            .unwrap_or(0);

        let now = Instant::now();
        let wall = now.duration_since(self.started).as_secs_f64();
        let dt = now.duration_since(self.last_wall).as_secs_f64().max(1e-9);
        let steps_per_s = fleet_min.saturating_sub(self.last_step) as f64 / dt;
        self.last_wall = now;
        self.last_step = fleet_min;

        let mut reg = Registry::new(true);
        let mut shards = Vec::with_capacity(fb.workers.len());
        for d in &fb.workers {
            let span = ranges
                .get(d.worker as usize)
                .map_or_else(|| "?".into(), |r| format!("{}..{}", r.start, r.end));
            shards.push(
                Json::obj()
                    .field("shard", Json::uint(d.worker as u64))
                    .field("nodes", span)
                    .field("min_step", Json::uint(d.min_step))
                    .field("productive_cycles", Json::uint(d.productive))
                    .field("stall_cycles", Json::uint(d.stalls.iter().sum::<u64>()))
                    .field("retransmits", Json::uint(d.retransmits))
                    .build(),
            );
            reg.counter_set_labeled(
                "shard_min_step",
                "shard",
                &d.worker.to_string(),
                d.min_step,
            );
        }
        let mut fleet_stalls = [0u64; STALL_CLASSES];
        let mut fleet_prod = 0u64;
        for d in &fb.workers {
            for (acc, v) in fleet_stalls.iter_mut().zip(d.stalls.iter()) {
                *acc += v;
            }
            fleet_prod += d.productive;
        }
        set_stalls(&mut reg, &fleet_stalls, fleet_prod);
        reg.counter_set("steps_done", fleet_min);
        reg.counter_set("cycles", fb.cycle);
        reg.gauge_set("wall_s", wall);
        reg.gauge_set("steps_per_s", steps_per_s);
        reg.gauge_set("progress", fleet_min as f64 / steps.max(1) as f64);
        reg.gauge_set("lag_steps", (fleet_max - fleet_min) as f64);

        let record = Json::obj()
            .field("type", "fleet")
            .field("beat", Json::uint(fb.beat))
            .field("step", Json::uint(fleet_min))
            .field("steps", Json::uint(steps))
            .field("cycle", Json::uint(fb.cycle))
            .field("lagging_shard", Json::uint(lagging as u64))
            .field("lag_steps", Json::uint(fleet_max - fleet_min))
            .field("shards", Json::Arr(shards))
            .field("counters", reg.totals_json().get("counters").cloned().unwrap_or(Json::Null))
            .field("gauges", reg.snapshot_json().get("gauges").cloned().unwrap_or(Json::Null))
            .build();
        if let Some(sink) = &mut self.sink {
            let _ = sink.emit(&record);
        }
        if let Some(path) = &self.prom_path {
            let _ = prom_write(&reg, "fasda_fleet", path);
        }
    }
}

/// One heartbeat record: envelope fields + the registry snapshot's
/// `counters`/`hists`/`gauges` sections spliced in.
fn beat_record(kind: &str, beat: u64, step: u64, steps: u64, snapshot: &Json) -> Json {
    let mut rec = Json::obj()
        .field("type", kind)
        .field("beat", Json::uint(beat))
        .field("step", Json::uint(step))
        .field("steps", Json::uint(steps));
    if let Json::Obj(fields) = snapshot {
        for (k, v) in fields {
            rec = rec.field(k, v.clone());
        }
    }
    rec.build()
}

/// Live counters sampled mid-run. Engine-private quantities keep the
/// `engine_` prefix so cross-engine heartbeat diffs can exclude them
/// the same way the metrics gate does.
fn fill_live(
    reg: &mut Registry,
    cl: &Cluster,
    step: u64,
    stalls: &[u64; STALL_CLASSES],
    productive: u64,
) {
    reg.counter_set("steps_done", step);
    reg.counter_set("cycles", cl.cycle);
    reg.counter_set("engine_skipped_cycles", cl.skipped_cycles);
    reg.counter_set("engine_burst_cycles", cl.burst_cycles);
    reg.counter_set("engine_burst_count", cl.burst_count);
    reg.counter_set("pos_packets", cl.pos_fabric.packets);
    reg.counter_set("frc_packets", cl.frc_fabric.packets);
    reg.counter_set(
        "packets_lost",
        cl.pos_fabric.packets_lost + cl.frc_fabric.packets_lost,
    );
    if let Some(rel) = &cl.rel {
        reg.counter_set("retransmits", rel.total_retransmits());
        reg.counter_set("acks_sent", rel.acks_sent);
    }
    reg.counter_set(
        "faults_injected",
        cl.faults.as_ref().map_or(0, |f| f.total_injected()),
    );
    set_stalls(reg, stalls, productive);
}

fn set_stalls(reg: &mut Registry, stalls: &[u64; STALL_CLASSES], productive: u64) {
    for cause in StallCause::ALL {
        reg.counter_set_labeled(
            "stall_cycles",
            "cause",
            cause.label(),
            stalls[cause as usize],
        );
    }
    reg.counter_set("productive_cycles", productive);
}

/// Final totals as a registry — a pure function of the run report and
/// (optionally) the folded stall ledger. Both inputs are bit-identical
/// across {serial, rayon, sharded} runs, so these totals are the
/// identity artifact the CI gates byte-diff. Engine-private counters
/// (burst/fast-forward) are deliberately excluded.
pub fn final_registry(report: &ClusterRunReport, stalls: Option<&StallLedger>) -> Registry {
    let mut reg = Registry::new(true);
    reg.counter_set("nodes", report.nodes as u64);
    reg.counter_set("steps_done", report.steps);
    reg.counter_set("cycles", report.total_cycles);
    reg.counter_set("pos_packets", report.pos_packets);
    reg.counter_set("frc_packets", report.frc_packets);
    reg.counter_set("pos_bits", report.pos_bits);
    reg.counter_set("frc_bits", report.frc_bits);
    reg.counter_set("faults_injected", report.faults_injected);
    if let Some(rel) = &report.reliability {
        reg.counter_set("retransmits", rel.retransmits);
        reg.counter_set("acks_sent", rel.acks_sent);
        reg.counter_set("duplicates_dropped", rel.duplicates_dropped);
        reg.counter_set("corrupt_dropped", rel.corrupt_dropped);
    }
    let mut force_total = 0u64;
    let mut mu_total = 0u64;
    let mut force_hist = Hist::new(&FORCE_HIST_BOUNDS);
    for r in &report.records {
        force_total += r.force_cycles;
        mu_total += r.mu_cycles;
        force_hist.observe(r.force_cycles);
    }
    reg.counter_set("force_cycles", force_total);
    reg.counter_set("mu_cycles", mu_total);
    reg.hist_set("step_force_cycles", force_hist);
    if let Some(ledger) = stalls {
        let mut totals = [0u64; STALL_CLASSES];
        let mut productive = 0u64;
        for node in 0..ledger.num_nodes() {
            let t = ledger.node_total(node);
            for (acc, v) in totals.iter_mut().zip(t.stalled.iter()) {
                *acc += v;
            }
            productive += t.productive;
        }
        set_stalls(&mut reg, &totals, productive);
    }
    reg
}

/// Final totals JSON (see [`final_registry`]).
pub fn final_totals_json(report: &ClusterRunReport, stalls: Option<&StallLedger>) -> Json {
    final_registry(report, stalls).totals_json()
}

/// Append the `final` heartbeat record to an existing JSONL stream and
/// refresh the scrape file with the final registry. Called once by the
/// host after the run completes (the in-run sampler only ever emits
/// `beat` records).
pub fn emit_final(
    sinks: &ObsSinkConfig,
    report: &ClusterRunReport,
    stalls: Option<&StallLedger>,
) -> std::io::Result<()> {
    let reg = final_registry(report, stalls);
    if let Some(path) = &sinks.heartbeat_out {
        let mut sink = JsonlSink::append(path)?;
        let record = beat_record(
            "final",
            0,
            report.steps,
            report.steps,
            &reg.totals_json(),
        );
        sink.emit(&record)?;
    }
    if let Some(path) = &sinks.prom_out {
        prom_write(&reg, "fasda", path)?;
    }
    Ok(())
}

/// Build the §5 model input from a cluster configuration, the global
/// cell-space dimensions, and the mean particles-per-cell of the
/// workload. Pure configuration — nothing measured.
pub fn model_input(cfg: &ClusterConfig, space: (u32, u32, u32), per_cell: f64) -> ModelInput {
    let grid = (
        space.0 / cfg.block.0,
        space.1 / cfg.block.1,
        space.2 / cfg.block.2,
    );
    let nodes = (grid.0 * grid.1 * grid.2) as u64;
    // Mean one-way transit over distinct node pairs.
    let mut lat_sum = 0u64;
    let mut pairs = 0u64;
    for a in 0..nodes as usize {
        for b in 0..nodes as usize {
            if a != b {
                lat_sum += cfg.topology.path_latency(a, b);
                pairs += 1;
            }
        }
    }
    let path_latency = if pairs > 0 {
        lat_sum as f64 / pairs as f64
    } else {
        0.0
    };
    ModelInput {
        grid,
        block: cfg.block,
        per_cell,
        filters_per_pe: cfg.chip.hw.filters_per_pe,
        pes_per_spe: cfg.chip.pes_per_spe,
        spes_per_cbb: cfg.chip.spes_per_cbb,
        force_pipe_latency: cfg.chip.hw.force_pipe_latency,
        mu_latency: cfg.chip.hw.mu_latency,
        bcast_cooldown: cfg.chip.hw.bcast_cooldown,
        cutoff_cells: cfg.chip.cutoff_cells,
        packet_cooldown: cfg.packet_cooldown,
        path_latency,
        straggler_cycles: cfg
            .straggler
            .map_or(0.0, |(_, d)| d as f64 / nodes.max(1) as f64),
    }
}

/// Distill the §5 model's ground truth from a finished run.
pub fn measured_from(report: &ClusterRunReport, stalls: Option<&StallLedger>) -> Measured {
    let recs = report.records.len().max(1) as f64;
    let force_cycles = report.records.iter().map(|r| r.force_cycles).sum::<u64>() as f64 / recs;
    let mu_cycles = report.records.iter().map(|r| r.mu_cycles).sum::<u64>() as f64 / recs;
    let steps = report.steps.max(1) as f64;
    let mut meas = Measured {
        steps: report.steps,
        nodes: report.nodes as u64,
        cycles_per_step: report.cycles_per_step(),
        force_cycles,
        mu_cycles,
        pos_packets_per_step: report.pos_packets as f64 / steps,
        frc_packets_per_step: report.frc_packets as f64 / steps,
        ..Measured::default()
    };
    if let Some(ledger) = stalls {
        let mut totals = [0u64; STALL_CLASSES];
        let mut productive = 0u64;
        for node in 0..ledger.num_nodes() {
            let t = ledger.node_total(node);
            for (acc, v) in totals.iter_mut().zip(t.stalled.iter()) {
                *acc += v;
            }
            productive += t.productive;
        }
        let idle: u64 = totals.iter().sum();
        let attributed = productive + idle;
        if attributed > 0 {
            meas.occupancy = productive as f64 / attributed as f64;
        }
        if idle > 0 {
            for (share, v) in meas.stall_shares.iter_mut().zip(totals.iter()) {
                *share = *v as f64 / idle as f64;
            }
        }
        meas.sync_tail = (totals[StallCause::WaitNeighborSync as usize]
            + totals[StallCause::Drained as usize]) as f64
            / recs;
    }
    meas
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::NodeStepReport;
    use fasda_sim::StatSet;

    fn tiny_report() -> ClusterRunReport {
        ClusterRunReport {
            steps: 2,
            total_cycles: 1000,
            records: vec![
                NodeStepReport { node: 0, step: 0, force_cycles: 400, mu_cycles: 80, wall_end: 480 },
                NodeStepReport { node: 1, step: 0, force_cycles: 420, mu_cycles: 80, wall_end: 500 },
                NodeStepReport { node: 0, step: 1, force_cycles: 410, mu_cycles: 80, wall_end: 990 },
                NodeStepReport { node: 1, step: 1, force_cycles: 400, mu_cycles: 80, wall_end: 1000 },
            ],
            stats: StatSet::new(),
            per_node_traffic: Vec::new(),
            pos_packets: 40,
            frc_packets: 60,
            pos_bits: 40 * 512,
            frc_bits: 60 * 512,
            clock_hz: 200.0e6,
            dt_fs: 2.0,
            nodes: 2,
            faults_injected: 0,
            reliability: None,
        }
    }

    fn tiny_ledger() -> StallLedger {
        let mut l = StallLedger::new(2);
        for node in 0..2 {
            for step in 0..2 {
                l.productive(node, step, 300);
                l.stall(node, step, StallCause::Drained, 80);
                l.stall(node, step, StallCause::WaitNeighborSync, 20);
                l.stall(node, step, StallCause::TxCooldown, 10);
            }
        }
        l
    }

    #[test]
    fn final_totals_are_a_pure_function() {
        let report = tiny_report();
        let ledger = tiny_ledger();
        let a = final_totals_json(&report, Some(&ledger));
        let b = final_totals_json(&report.clone(), Some(&ledger.clone()));
        assert_eq!(a.compact(), b.compact());
        let counters = a.get("counters").unwrap();
        assert_eq!(counters.get("cycles").unwrap().as_i64(), Some(1000));
        assert_eq!(counters.get("force_cycles").unwrap().as_i64(), Some(1630));
        assert_eq!(
            counters
                .get("stall_cycles")
                .unwrap()
                .get("drained")
                .unwrap()
                .as_i64(),
            Some(320)
        );
        assert_eq!(counters.get("productive_cycles").unwrap().as_i64(), Some(1200));
        // Histogram present with the fixed bounds.
        let hist = a.get("hists").unwrap().get("step_force_cycles").unwrap();
        assert_eq!(hist.get("count").unwrap().as_i64(), Some(4));
        // No engine-private counters in the identity artifact.
        assert!(counters.get("engine_burst_cycles").is_none());
    }

    #[test]
    fn measured_distills_report_and_ledger() {
        let m = measured_from(&tiny_report(), Some(&tiny_ledger()));
        assert_eq!(m.cycles_per_step, 500.0);
        assert_eq!(m.force_cycles, 407.5);
        assert_eq!(m.mu_cycles, 80.0);
        assert_eq!(m.pos_packets_per_step, 20.0);
        assert!((m.occupancy - 1200.0 / 1640.0).abs() < 1e-12);
        // drained share: 320 of 440 idle cycles
        assert!((m.stall_shares[StallCause::Drained as usize] - 320.0 / 440.0).abs() < 1e-12);
        assert_eq!(m.sync_tail, 100.0);
    }

    #[test]
    fn model_input_from_config() {
        let cfg = ClusterConfig::paper(fasda_core::config::ChipConfig::baseline(), (1, 1, 2));
        let input = model_input(&cfg, (1, 1, 4), 4.0);
        assert_eq!(input.grid, (1, 1, 2));
        assert_eq!(input.block, (1, 1, 2));
        assert_eq!(input.path_latency, 200.0); // paper switch
        assert_eq!(input.filters_per_pe, 6);
        let pred = fasda_obs::model::predict(&input);
        assert!(pred.cycles_per_step > 0.0);
    }
}
