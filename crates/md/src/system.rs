//! Particle state in structure-of-arrays layout.

use crate::element::Element;
use crate::space::SimulationSpace;
use crate::units::UnitSystem;
use crate::vec3::Vec3;
use serde::{Deserialize, Serialize};

/// All particle state for a simulation, SoA for cache-friendly sweeps.
///
/// Positions are in cell units wrapped into `[0, D)`; velocities in
/// cells/fs; forces in kcal/mol/cell (see [`crate::units`]).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ParticleSystem {
    /// Geometry of the periodic box.
    pub space: SimulationSpace,
    /// Physical unit conversions.
    pub units: UnitSystem,
    /// Stable external particle IDs (preserved across migrations/sorts).
    pub id: Vec<u32>,
    /// Element of each particle.
    pub element: Vec<Element>,
    /// Wrapped positions, cell units.
    pub pos: Vec<Vec3>,
    /// Velocities, cells/fs.
    pub vel: Vec<Vec3>,
    /// Forces from the most recent evaluation, kcal/mol/cell.
    pub force: Vec<Vec3>,
}

impl ParticleSystem {
    /// An empty system over `space`.
    pub fn new(space: SimulationSpace, units: UnitSystem) -> Self {
        ParticleSystem {
            space,
            units,
            id: Vec::new(),
            element: Vec::new(),
            pos: Vec::new(),
            vel: Vec::new(),
            force: Vec::new(),
        }
    }

    /// Number of particles.
    #[inline]
    pub fn len(&self) -> usize {
        self.pos.len()
    }

    /// True when no particles are present.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.pos.is_empty()
    }

    /// Append a particle; position is wrapped into the box. Returns its
    /// index.
    pub fn push(&mut self, element: Element, pos: Vec3, vel: Vec3) -> usize {
        let idx = self.len();
        self.id.push(idx as u32);
        self.element.push(element);
        self.pos.push(self.space.wrap_pos(pos));
        self.vel.push(vel);
        self.force.push(Vec3::ZERO);
        idx
    }

    /// Zero the force accumulators.
    pub fn clear_forces(&mut self) {
        self.force.iter_mut().for_each(|f| *f = Vec3::ZERO);
    }

    /// Total mass-weighted momentum (amu·cells/fs).
    pub fn momentum(&self) -> Vec3 {
        self.vel
            .iter()
            .zip(&self.element)
            .map(|(v, e)| *v * e.mass())
            .sum()
    }

    /// Net force over all particles (should be ~0 by Newton's third law).
    pub fn net_force(&self) -> Vec3 {
        self.force.iter().copied().sum()
    }

    /// Consistency check used by tests and debug assertions: every
    /// position inside the box, arrays same length.
    pub fn validate(&self) -> Result<(), String> {
        let n = self.len();
        if self.id.len() != n
            || self.element.len() != n
            || self.vel.len() != n
            || self.force.len() != n
        {
            return Err("array length mismatch".into());
        }
        let e = self.space.edges();
        for (i, p) in self.pos.iter().enumerate() {
            if !(0.0..e.x).contains(&p.x)
                || !(0.0..e.y).contains(&p.y)
                || !(0.0..e.z).contains(&p.z)
            {
                return Err(format!("particle {i} at {p:?} outside box"));
            }
        }
        let mut ids: Vec<u32> = self.id.clone();
        ids.sort_unstable();
        ids.dedup();
        if ids.len() != n {
            return Err("duplicate particle ids".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sys() -> ParticleSystem {
        ParticleSystem::new(SimulationSpace::cubic(3), UnitSystem::PAPER)
    }

    #[test]
    fn push_wraps_position() {
        let mut s = sys();
        s.push(Element::Na, Vec3::new(-0.25, 3.5, 1.0), Vec3::ZERO);
        assert!((s.pos[0].x - 2.75).abs() < 1e-12);
        assert!((s.pos[0].y - 0.5).abs() < 1e-12);
        assert!(s.validate().is_ok());
    }

    #[test]
    fn momentum_mass_weighted() {
        let mut s = sys();
        s.push(Element::Na, Vec3::ZERO, Vec3::new(1.0, 0.0, 0.0));
        s.push(Element::Ar, Vec3::splat(1.0), Vec3::new(-1.0, 0.0, 0.0));
        let p = s.momentum();
        assert!((p.x - (Element::Na.mass() - Element::Ar.mass())).abs() < 1e-9);
    }

    #[test]
    fn validate_catches_duplicate_ids() {
        let mut s = sys();
        s.push(Element::Na, Vec3::ZERO, Vec3::ZERO);
        s.push(Element::Na, Vec3::splat(0.5), Vec3::ZERO);
        s.id[1] = 0;
        assert!(s.validate().is_err());
    }
}
