//! Reciprocal-space (long-range) Ewald summation — the LR companion.
//!
//! FASDA accelerates the range-limited component; the paper treats the
//! long-range part as "largely independent in terms of data flow" and
//! points to its companion FPGA 3D-FFT systems (§1, refs \[29, 50, 51\]).
//! This module is that companion substrate in software: the k-space sum
//! and self-energy that complete the Ewald decomposition started by
//! [`crate::ewald`]'s real-space term, so the repository can compute
//! *full* periodic electrostatics:
//!
//! ```text
//! E = E_real + E_recip + E_self
//! E_recip = (2π·C/V) Σ_{k≠0} exp(−|k|²/4β²)/|k|² · |S(k)|²
//! S(k)    = Σ_i q_i exp(i k·r_i),   k = 2π(n_x/L_x, n_y/L_y, n_z/L_z)
//! E_self  = −C·β/√π · Σ_i q_i²
//! ```
//!
//! Validated against the NaCl Madelung constant (1.74756…) in the tests
//! — the classic acceptance test for any Ewald implementation.

// Index loops over particles keep the k-space math close to the formulas.
#![allow(clippy::needless_range_loop)]
use crate::ewald::EwaldParams;
use crate::system::ParticleSystem;
use crate::vec3::Vec3;
use serde::{Deserialize, Serialize};

/// Configuration of the k-space sum.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct RecipParams {
    /// Splitting parameter β (1/cell) — must match the real-space term.
    pub beta: f64,
    /// Coulomb constant in kcal·cell/(mol·e²) — must match.
    pub coulomb: f64,
    /// Maximum |n| per axis for k = 2π n/L. The Gaussian factor decays
    /// as exp(−(π n / (β L))²); `kmax ≈ β·L` keeps the truncation error
    /// below ~1e-4.
    pub kmax: i32,
}

impl RecipParams {
    /// Derive k-space parameters from the real-space term for a box of
    /// the given maximum edge (cells).
    pub fn matching(real: EwaldParams, max_edge_cells: f64) -> Self {
        RecipParams {
            beta: real.beta,
            coulomb: real.coulomb,
            kmax: (real.beta * max_edge_cells).ceil() as i32,
        }
    }
}

/// One term of the k-space sum, precomputed.
struct KVector {
    k: Vec3,
    /// `(2π·C/V)·exp(−|k|²/4β²)/|k|²`, the energy prefactor.
    a: f64,
}

/// The reciprocal-space Ewald evaluator for one box shape.
pub struct EwaldRecip {
    params: RecipParams,
    kvecs: Vec<KVector>,
    volume: f64,
}

impl EwaldRecip {
    /// Precompute the k-vector table for a system's box.
    pub fn new(params: RecipParams, sys: &ParticleSystem) -> Self {
        let e = sys.space.edges();
        let volume = e.x * e.y * e.z;
        let two_pi = 2.0 * std::f64::consts::PI;
        let mut kvecs = Vec::new();
        let km = params.kmax;
        for nx in -km..=km {
            for ny in -km..=km {
                for nz in -km..=km {
                    if (nx, ny, nz) == (0, 0, 0) {
                        continue;
                    }
                    let k = Vec3::new(
                        two_pi * nx as f64 / e.x,
                        two_pi * ny as f64 / e.y,
                        two_pi * nz as f64 / e.z,
                    );
                    let k2 = k.norm_sq();
                    let a = two_pi * params.coulomb / volume
                        * (-k2 / (4.0 * params.beta * params.beta)).exp()
                        / k2;
                    // skip negligible shells to keep the table compact
                    if a.abs() > 1e-16 {
                        kvecs.push(KVector { k, a });
                    }
                }
            }
        }
        EwaldRecip {
            params,
            kvecs,
            volume,
        }
    }

    /// Number of retained k-vectors.
    pub fn num_kvectors(&self) -> usize {
        self.kvecs.len()
    }

    /// Box volume (cell³).
    pub fn volume(&self) -> f64 {
        self.volume
    }

    /// Reciprocal-space energy (kcal/mol).
    pub fn energy(&self, sys: &ParticleSystem) -> f64 {
        let mut total = 0.0;
        for kv in &self.kvecs {
            let (mut re, mut im) = (0.0f64, 0.0f64);
            for i in 0..sys.len() {
                let q = sys.element[i].charge();
                if q == 0.0 {
                    continue;
                }
                let phase = kv.k.dot(sys.pos[i]);
                re += q * phase.cos();
                im += q * phase.sin();
            }
            total += kv.a * (re * re + im * im);
        }
        total
    }

    /// Self-energy correction (kcal/mol) — independent of positions.
    pub fn self_energy(&self, sys: &ParticleSystem) -> f64 {
        let q2: f64 = sys.element.iter().map(|e| e.charge() * e.charge()).sum();
        -self.params.coulomb * self.params.beta / std::f64::consts::PI.sqrt() * q2
    }

    /// Add the reciprocal-space forces into `sys.force` and return the
    /// reciprocal energy. `F_i = 2·q_i·Σ_k a·k·[sin(k·r_i)·Re S − cos(k·r_i)·Im S]`.
    pub fn accumulate_forces(&self, sys: &mut ParticleSystem) -> f64 {
        let n = sys.len();
        let mut total = 0.0;
        let mut phases = vec![(0.0f64, 0.0f64); n];
        for kv in &self.kvecs {
            let (mut s_re, mut s_im) = (0.0f64, 0.0f64);
            for i in 0..n {
                let q = sys.element[i].charge();
                let phase = kv.k.dot(sys.pos[i]);
                let (sin, cos) = phase.sin_cos();
                phases[i] = (cos, sin);
                s_re += q * cos;
                s_im += q * sin;
            }
            total += kv.a * (s_re * s_re + s_im * s_im);
            for i in 0..n {
                let q = sys.element[i].charge();
                if q == 0.0 {
                    continue;
                }
                let (cos, sin) = phases[i];
                let scale = 2.0 * kv.a * q * (sin * s_re - cos * s_im);
                sys.force[i] += kv.k * scale;
            }
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::element::{Element, PairTable};
    use crate::engine::{DirectEngine, ForceEngine};
    use crate::space::SimulationSpace;
    use crate::units::UnitSystem;

    /// Rock-salt crystal: ions on a simple-cubic grid of spacing `d`
    /// cells, charge alternating with site parity.
    fn rock_salt(cells: u32, sites_per_cell_axis: u32) -> (ParticleSystem, f64) {
        let space = SimulationSpace::cubic(cells);
        let mut sys = ParticleSystem::new(space, UnitSystem::PAPER);
        let d = 1.0 / sites_per_cell_axis as f64;
        let n_axis = cells * sites_per_cell_axis;
        for ix in 0..n_axis {
            for iy in 0..n_axis {
                for iz in 0..n_axis {
                    let elem = if (ix + iy + iz) % 2 == 0 {
                        Element::NaPlus
                    } else {
                        Element::ClMinus
                    };
                    sys.push(
                        elem,
                        Vec3::new(
                            (ix as f64 + 0.25) * d,
                            (iy as f64 + 0.25) * d,
                            (iz as f64 + 0.25) * d,
                        ),
                        Vec3::ZERO,
                    );
                }
            }
        }
        (sys, d)
    }

    /// The acceptance test: full Ewald energy of rock salt reproduces
    /// the Madelung constant 1.747565.
    #[test]
    fn nacl_madelung_constant() {
        let (mut sys, d) = rock_salt(3, 2); // 216 ions, d = 0.5 cells
        let real_params = EwaldParams::standard(UnitSystem::PAPER);
        // real-space part: Coulomb term only → subtract the LJ part
        let table = PairTable::new(UnitSystem::PAPER);
        let mut lj_plus_real = DirectEngine::new(table.clone()).with_electrostatics(real_params);
        let e_lj_real = lj_plus_real.compute_forces(&mut sys);
        let mut lj_only = DirectEngine::new(table);
        let e_lj = lj_only.compute_forces(&mut sys.clone());
        let e_real = e_lj_real - e_lj;

        let recip = EwaldRecip::new(RecipParams::matching(real_params, 3.0), &sys);
        let e_recip = recip.energy(&sys);
        let e_self = recip.self_energy(&sys);
        let e_total = e_real + e_recip + e_self;

        // Madelung: E_total = -M · C · N / (2d)  (per ion -M·C·q²/(2d)·2/2)
        let n = sys.len() as f64;
        let m = -e_total * 2.0 * d / (real_params.coulomb * n);
        assert!(
            (m - 1.747_565).abs() < 2e-3,
            "Madelung constant {m}, want 1.747565 (E_real={e_real:.1}, E_recip={e_recip:.1}, E_self={e_self:.1})"
        );
    }

    #[test]
    fn recip_energy_translation_invariant() {
        let (sys, _) = rock_salt(3, 2);
        let real = EwaldParams::standard(UnitSystem::PAPER);
        let recip = EwaldRecip::new(RecipParams::matching(real, 3.0), &sys);
        let e0 = recip.energy(&sys);
        let mut shifted = sys.clone();
        for p in &mut shifted.pos {
            *p = shifted.space.wrap_pos(*p + Vec3::new(0.37, 0.11, 0.93));
        }
        let e1 = recip.energy(&shifted);
        assert!(
            ((e0 - e1) / e0).abs() < 1e-9,
            "translation changed E_recip: {e0} vs {e1}"
        );
    }

    #[test]
    fn recip_forces_are_negative_gradient() {
        // finite-difference check on one ion of a small salt
        let (sys, _) = rock_salt(3, 1); // 27 ions... odd parity mismatch is fine for a gradient check
        let real = EwaldParams::standard(UnitSystem::PAPER);
        let recip = EwaldRecip::new(RecipParams::matching(real, 3.0), &sys);
        let mut fsys = sys.clone();
        fsys.clear_forces();
        recip.accumulate_forces(&mut fsys);
        let h = 1e-5;
        for axis in 0..3 {
            let mut plus = sys.clone();
            let mut minus = sys.clone();
            match axis {
                0 => {
                    plus.pos[0].x += h;
                    minus.pos[0].x -= h;
                }
                1 => {
                    plus.pos[0].y += h;
                    minus.pos[0].y -= h;
                }
                _ => {
                    plus.pos[0].z += h;
                    minus.pos[0].z -= h;
                }
            }
            let de = (recip.energy(&plus) - recip.energy(&minus)) / (2.0 * h);
            let f = match axis {
                0 => fsys.force[0].x,
                1 => fsys.force[0].y,
                _ => fsys.force[0].z,
            };
            let want = -de;
            assert!(
                (f - want).abs() < 1e-4 * want.abs().max(1.0),
                "axis {axis}: F={f} vs -dE={want}"
            );
        }
    }

    #[test]
    fn forces_sum_to_zero() {
        let (sys, _) = rock_salt(3, 2);
        let real = EwaldParams::standard(UnitSystem::PAPER);
        let recip = EwaldRecip::new(RecipParams::matching(real, 3.0), &sys);
        let mut fsys = sys.clone();
        fsys.clear_forces();
        let e = recip.accumulate_forces(&mut fsys);
        assert!(e != 0.0, "energy computed");
        assert!(fsys.net_force().max_abs() < 1e-8, "momentum conservation");
    }

    #[test]
    fn neutral_system_has_zero_recip_energy() {
        let space = SimulationSpace::cubic(3);
        let mut sys = ParticleSystem::new(space, UnitSystem::PAPER);
        sys.push(Element::Na, Vec3::splat(0.5), Vec3::ZERO);
        sys.push(Element::Ar, Vec3::splat(1.5), Vec3::ZERO);
        let real = EwaldParams::standard(UnitSystem::PAPER);
        let recip = EwaldRecip::new(RecipParams::matching(real, 3.0), &sys);
        assert_eq!(recip.energy(&sys), 0.0);
        assert_eq!(recip.self_energy(&sys), 0.0);
    }
}
