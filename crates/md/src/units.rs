//! Unit system: cells / femtoseconds / amu / kcal·mol⁻¹.
//!
//! The paper normalizes the cutoff radius to one cell edge (§3.4) so that
//! positions, filter thresholds, and the interpolation-table domain are all
//! expressed in cell units. Physical inputs (the 8.5 Å cutoff, sodium's LJ
//! parameters in Å and kcal/mol, the 2 fs timestep) are converted at the
//! boundary by [`UnitSystem`].

use serde::{Deserialize, Serialize};

/// `(kcal/mol) / (amu·Å)` expressed in `Å/fs²`: the standard MD conversion
/// factor from force to acceleration in the Å/fs/amu/kcal·mol⁻¹ system.
pub const KCALMOL_PER_AMU_ANGSTROM: f64 = 4.184e-4;

/// Boltzmann constant in kcal/mol/K.
pub const BOLTZMANN_KCALMOL: f64 = 1.987204259e-3;

/// Seconds of simulated time per day of wall-clock — the numerator of the
/// paper's µs/day metric.
pub const FEMTOSECONDS_PER_DAY: f64 = 86_400.0e15;

/// Conversion hub between physical units and internal cell units.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct UnitSystem {
    /// Physical edge length of one cell (= the cutoff radius `Rc`) in Å.
    /// The paper's experiments use 8.5 Å (§5.1).
    pub cell_angstrom: f64,
}

impl UnitSystem {
    /// The paper's experimental setup: `Rc` = 8.5 Å.
    pub const PAPER: UnitSystem = UnitSystem { cell_angstrom: 8.5 };

    /// Convert a length from Å to cells.
    #[inline]
    pub fn len_to_cells(&self, angstrom: f64) -> f64 {
        angstrom / self.cell_angstrom
    }

    /// Convert a length from cells to Å.
    #[inline]
    pub fn len_to_angstrom(&self, cells: f64) -> f64 {
        cells * self.cell_angstrom
    }

    /// Acceleration factor: `a [cells/fs²] = acc_factor() · F [kcal/mol/cell] / m [amu]`.
    ///
    /// Derivation: `a[Å/fs²] = 4.184e-4 · F[kcal/mol/Å] / m`; with
    /// `F[kcal/mol/Å] = F[kcal/mol/cell] / L` and `a[cells/fs²] = a[Å/fs²]/L`
    /// this is `4.184e-4 / L²`.
    #[inline]
    pub fn acc_factor(&self) -> f64 {
        KCALMOL_PER_AMU_ANGSTROM / (self.cell_angstrom * self.cell_angstrom)
    }

    /// Kinetic energy: `KE [kcal/mol] = ke_factor() · m [amu] · v² [cells²/fs²]`.
    ///
    /// `KE = ½ m v[Å/fs]² / 4.184e-4`, and `v[Å/fs] = v[cells/fs]·L`.
    #[inline]
    pub fn ke_factor(&self) -> f64 {
        0.5 * self.cell_angstrom * self.cell_angstrom / KCALMOL_PER_AMU_ANGSTROM
    }

    /// Standard deviation of one Maxwell–Boltzmann velocity component at
    /// temperature `t_kelvin` for mass `m_amu`, in cells/fs.
    #[inline]
    pub fn mb_sigma(&self, t_kelvin: f64, m_amu: f64) -> f64 {
        (BOLTZMANN_KCALMOL * t_kelvin / m_amu * KCALMOL_PER_AMU_ANGSTROM).sqrt()
            / self.cell_angstrom
    }

    /// The paper's headline metric: µs of simulated time per wall-clock day,
    /// given the femtosecond timestep and the wall-clock seconds one
    /// timestep takes.
    #[inline]
    pub fn us_per_day(dt_fs: f64, seconds_per_step: f64) -> f64 {
        // fs/day of simulation ÷ 1e9 → µs/day
        dt_fs / seconds_per_step * 86_400.0 / 1.0e9
    }
}

impl Default for UnitSystem {
    fn default() -> Self {
        UnitSystem::PAPER
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn length_roundtrip() {
        let u = UnitSystem::PAPER;
        assert!((u.len_to_angstrom(u.len_to_cells(3.7)) - 3.7).abs() < 1e-12);
        assert_eq!(u.len_to_cells(8.5), 1.0);
    }

    #[test]
    fn acc_factor_consistent_with_angstrom_form() {
        let u = UnitSystem { cell_angstrom: 1.0 };
        assert!((u.acc_factor() - KCALMOL_PER_AMU_ANGSTROM).abs() < 1e-18);
    }

    #[test]
    fn ke_of_thermal_particle_matches_equipartition() {
        // <KE> per particle = (3/2) kB T when components are MB-distributed.
        // Check the factor identity: ke_factor * m * (3 * mb_sigma²) = 1.5 kB T.
        let u = UnitSystem::PAPER;
        let (t, m) = (300.0, 22.989769);
        let sigma = u.mb_sigma(t, m);
        let ke = u.ke_factor() * m * 3.0 * sigma * sigma;
        assert!((ke - 1.5 * BOLTZMANN_KCALMOL * t).abs() < 1e-12);
    }

    #[test]
    fn us_per_day_paper_scale() {
        // 2 fs steps at 10 µs wall each → 2e-9 µs_sim / 1e-5 s = 17.28 µs/day
        let rate = UnitSystem::us_per_day(2.0, 1.0e-5);
        assert!((rate - 17.28).abs() < 1e-9, "{rate}");
    }
}
