//! Periodic cell space and the paper's cell-ID indexing (Eq. 7, Fig. 2).
//!
//! The simulation space is a box of `Dx × Dy × Dz` cubic cells with edge
//! length `Rc = 1` (cell units) and periodic boundary conditions (§2.1).
//! Cells are identified by the paper's Eq. 7:
//!
//! ```text
//! CID = Dy·Dz·x + Dz·y + z
//! ```
//!
//! which orders cells so that data travelling in the positive x/y/z
//! direction reaches its destination sooner on the rings (§3.1).

use crate::vec3::Vec3;
use serde::{Deserialize, Serialize};

/// Linear cell ID per Eq. 7.
pub type CellId = u32;

/// Integer cell coordinates `(x, y, z)` with `0 ≤ x < Dx` etc.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct CellCoord {
    pub x: i32,
    pub y: i32,
    pub z: i32,
}

impl CellCoord {
    /// Construct from components.
    #[inline]
    pub const fn new(x: i32, y: i32, z: i32) -> Self {
        CellCoord { x, y, z }
    }

    /// Componentwise addition (no wrapping — use
    /// [`SimulationSpace::wrap_coord`]).
    #[inline]
    pub fn offset(self, d: (i32, i32, i32)) -> CellCoord {
        CellCoord::new(self.x + d.0, self.y + d.1, self.z + d.2)
    }
}

impl fasda_ckpt::Persist for CellCoord {
    fn save(&self, w: &mut fasda_ckpt::Writer) {
        w.put_i32(self.x);
        w.put_i32(self.y);
        w.put_i32(self.z);
    }
    fn load(r: &mut fasda_ckpt::Reader<'_>) -> Result<Self, fasda_ckpt::CkptError> {
        Ok(CellCoord::new(r.get_i32()?, r.get_i32()?, r.get_i32()?))
    }
}

/// The periodic simulation box measured in cells.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct SimulationSpace {
    /// Cells along x.
    pub dx: u32,
    /// Cells along y.
    pub dy: u32,
    /// Cells along z.
    pub dz: u32,
}

impl SimulationSpace {
    /// Create a `dx × dy × dz`-cell space.
    ///
    /// # Panics
    /// If any dimension is below 3: with fewer than 3 cells per axis a cell
    /// would see the same neighbour through two periodic images and the
    /// half-shell mapping (and the paper's cell-list method generally)
    /// breaks down.
    pub fn new(dx: u32, dy: u32, dz: u32) -> Self {
        assert!(
            dx >= 3 && dy >= 3 && dz >= 3,
            "simulation space must be at least 3 cells per axis (got {dx}x{dy}x{dz})"
        );
        SimulationSpace { dx, dy, dz }
    }

    /// Cubic space helper.
    pub fn cubic(d: u32) -> Self {
        SimulationSpace::new(d, d, d)
    }

    /// Total number of cells.
    #[inline]
    pub fn num_cells(&self) -> usize {
        (self.dx * self.dy * self.dz) as usize
    }

    /// Box edge lengths in cell units.
    #[inline]
    pub fn edges(&self) -> Vec3 {
        Vec3::new(self.dx as f64, self.dy as f64, self.dz as f64)
    }

    /// Eq. 7: `CID = Dy·Dz·x + Dz·y + z`.
    #[inline]
    pub fn cell_id(&self, c: CellCoord) -> CellId {
        debug_assert!(self.contains(c), "coord {c:?} outside {self:?}");
        self.dy * self.dz * c.x as u32 + self.dz * c.y as u32 + c.z as u32
    }

    /// Inverse of Eq. 7.
    #[inline]
    pub fn cell_coord(&self, id: CellId) -> CellCoord {
        let z = id % self.dz;
        let y = (id / self.dz) % self.dy;
        let x = id / (self.dy * self.dz);
        CellCoord::new(x as i32, y as i32, z as i32)
    }

    /// Whether integer coordinates are in range (before wrapping).
    #[inline]
    pub fn contains(&self, c: CellCoord) -> bool {
        (0..self.dx as i32).contains(&c.x)
            && (0..self.dy as i32).contains(&c.y)
            && (0..self.dz as i32).contains(&c.z)
    }

    /// Wrap integer cell coordinates into the box (periodic boundary).
    #[inline]
    pub fn wrap_coord(&self, c: CellCoord) -> CellCoord {
        CellCoord::new(
            c.x.rem_euclid(self.dx as i32),
            c.y.rem_euclid(self.dy as i32),
            c.z.rem_euclid(self.dz as i32),
        )
    }

    /// Wrap a continuous position (cell units) into `[0, D)` per axis.
    #[inline]
    pub fn wrap_pos(&self, p: Vec3) -> Vec3 {
        let e = self.edges();
        Vec3::new(
            p.x.rem_euclid(e.x),
            p.y.rem_euclid(e.y),
            p.z.rem_euclid(e.z),
        )
    }

    /// Cell containing a wrapped position.
    #[inline]
    pub fn cell_of(&self, p: Vec3) -> CellCoord {
        let q = self.wrap_pos(p);
        // wrap_pos guarantees q ∈ [0, D); floor then clamp against the
        // rare q == D from floating rounding at the upper edge.
        CellCoord::new(
            (q.x.floor() as i32).min(self.dx as i32 - 1),
            (q.y.floor() as i32).min(self.dy as i32 - 1),
            (q.z.floor() as i32).min(self.dz as i32 - 1),
        )
    }

    /// Minimum-image displacement `a − b` (cell units), each component
    /// wrapped into `[-D/2, D/2)`.
    ///
    /// Implemented with comparison folding rather than `rem_euclid`: this
    /// is the hottest function of the reference engines (three calls per
    /// candidate pair) and both operands are always box-wrapped, so at
    /// most one fold per axis runs.
    #[inline]
    pub fn min_image(&self, a: Vec3, b: Vec3) -> Vec3 {
        let e = self.edges();
        #[inline]
        fn wrap(mut d: f64, edge: f64) -> f64 {
            let half = edge * 0.5;
            while d >= half {
                d -= edge;
            }
            while d < -half {
                d += edge;
            }
            d
        }
        let d = a - b;
        Vec3::new(wrap(d.x, e.x), wrap(d.y, e.y), wrap(d.z, e.z))
    }

    /// Iterate all cell coordinates in CID order.
    pub fn iter_cells(&self) -> impl Iterator<Item = CellCoord> + '_ {
        (0..self.num_cells() as u32).map(|id| self.cell_coord(id))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eq7_example_from_figure_5() {
        // Figure 5 labels 4 CBBs 0..3; for a Dy=Dz=2 slice the formula is
        // CID = 4x + 2y + z. Spot-check the ordering property instead on 3³.
        let s = SimulationSpace::cubic(3);
        assert_eq!(s.cell_id(CellCoord::new(0, 0, 0)), 0);
        assert_eq!(s.cell_id(CellCoord::new(0, 0, 1)), 1);
        assert_eq!(s.cell_id(CellCoord::new(0, 1, 0)), 3);
        assert_eq!(s.cell_id(CellCoord::new(1, 0, 0)), 9);
        assert_eq!(s.cell_id(CellCoord::new(2, 2, 2)), 26);
    }

    #[test]
    fn cid_roundtrip_all_cells() {
        let s = SimulationSpace::new(4, 6, 3);
        for id in 0..s.num_cells() as u32 {
            assert_eq!(s.cell_id(s.cell_coord(id)), id);
        }
    }

    #[test]
    #[should_panic(expected = "at least 3 cells")]
    fn rejects_degenerate_space() {
        SimulationSpace::new(2, 3, 3);
    }

    #[test]
    fn wrap_coord_negative_and_overflow() {
        let s = SimulationSpace::cubic(3);
        assert_eq!(s.wrap_coord(CellCoord::new(-1, 3, 5)), CellCoord::new(2, 0, 2));
    }

    #[test]
    fn wrap_pos_into_box() {
        let s = SimulationSpace::cubic(4);
        let p = s.wrap_pos(Vec3::new(-0.5, 4.25, 8.0));
        assert!((p.x - 3.5).abs() < 1e-12);
        assert!((p.y - 0.25).abs() < 1e-12);
        assert!(p.z.abs() < 1e-12);
    }

    #[test]
    fn cell_of_matches_floor() {
        let s = SimulationSpace::new(3, 4, 5);
        assert_eq!(s.cell_of(Vec3::new(0.5, 3.9, 4.999)), CellCoord::new(0, 3, 4));
        assert_eq!(s.cell_of(Vec3::new(2.999, 0.0, 5.0)), CellCoord::new(2, 0, 0));
    }

    #[test]
    fn min_image_is_nearest() {
        let s = SimulationSpace::cubic(4);
        let a = Vec3::new(0.1, 0.0, 0.0);
        let b = Vec3::new(3.9, 0.0, 0.0);
        let d = s.min_image(a, b);
        assert!((d.x - 0.2).abs() < 1e-12, "wrapped distance, got {}", d.x);
    }

    #[test]
    fn min_image_antisymmetric() {
        let s = SimulationSpace::new(3, 5, 4);
        let a = Vec3::new(0.3, 4.7, 1.2);
        let b = Vec3::new(2.8, 0.1, 3.9);
        let d1 = s.min_image(a, b);
        let d2 = s.min_image(b, a);
        assert!((d1 + d2).max_abs() < 1e-12);
    }

    #[test]
    fn iter_cells_covers_all_once() {
        let s = SimulationSpace::new(3, 4, 3);
        let ids: Vec<_> = s.iter_cells().map(|c| s.cell_id(c)).collect();
        assert_eq!(ids.len(), s.num_cells());
        let mut sorted = ids.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), s.num_cells());
    }
}
