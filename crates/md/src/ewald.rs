//! Real-space Ewald (PME short-range) electrostatics.
//!
//! The paper's range-limited force has *two* components: "the short range
//! term of the electrostatic force obtained using the Particle Mesh Ewald
//! (PME) method, and the force deduced from the Lennard-Jones potential
//! ... in any case the RL force pipelines are nearly identical" (§2.1).
//! This module supplies the physics of that first component so the
//! accelerator's generic interpolation pipeline can evaluate it with the
//! same machinery it uses for LJ (§3.4: "different force models \[can\] be
//! implemented with trivial modification").
//!
//! Real-space Ewald pair terms for charges `q_i`, `q_j` at distance `r`
//! with splitting parameter `β`:
//!
//! ```text
//! V(r) = C·q_i·q_j · erfc(βr) / r
//! F(r) = C·q_i·q_j · [erfc(βr)/r² + (2β/√π)·exp(−β²r²)/r] · r̂
//! ```
//!
//! `C` is Coulomb's constant, 332.0637 kcal·Å/(mol·e²), converted to cell
//! units. The long-range (reciprocal/mesh) part is out of scope here —
//! exactly as it is for FASDA, which delegates LR to the companion
//! 3D-FFT systems cited in §1.

use crate::units::UnitSystem;
use serde::{Deserialize, Serialize};

/// Coulomb constant in kcal·Å/(mol·e²).
pub const COULOMB_KCAL_A: f64 = 332.063_71;

/// Complementary error function via the Abramowitz & Stegun 7.1.26
/// rational approximation (|ε| ≤ 1.5e-7), adequate against the ~1e-4
/// table-interpolation error of the accelerator datapath.
pub fn erfc(x: f64) -> f64 {
    if x < 0.0 {
        return 2.0 - erfc(-x);
    }
    let t = 1.0 / (1.0 + 0.327_591_1 * x);
    let poly = t
        * (0.254_829_592
            + t * (-0.284_496_736 + t * (1.421_413_741 + t * (-1.453_152_027 + t * 1.061_405_429))));
    poly * (-x * x).exp()
}

/// Real-space Ewald parameters in cell units.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct EwaldParams {
    /// Splitting parameter β in 1/cell. Choosing `β·Rc ≈ 3` makes the
    /// real-space term negligible at the cutoff (erfc(3) ≈ 2.2e-5), the
    /// standard PME setting for a one-cell cutoff.
    pub beta: f64,
    /// Coulomb constant in kcal·cell/(mol·e²) for the active units.
    pub coulomb: f64,
}

impl EwaldParams {
    /// Standard parameters for a unit system: `β = 3/Rc`.
    pub fn standard(units: UnitSystem) -> Self {
        EwaldParams {
            beta: 3.0,
            coulomb: COULOMB_KCAL_A / units.cell_angstrom,
        }
    }

    /// Pair potential (kcal/mol) for unit charges at squared distance
    /// `r2` (cell units); multiply by `q_i·q_j`.
    #[inline]
    pub fn potential_unit(&self, r2: f64) -> f64 {
        let r = r2.sqrt();
        self.coulomb * erfc(self.beta * r) / r
    }

    /// Force scale `s` for unit charges such that `F = q_i·q_j·s·Δr`
    /// (Δr pointing from j to i). Positive s = repulsive for like
    /// charges.
    #[inline]
    pub fn force_scale_unit(&self, r2: f64) -> f64 {
        let r = r2.sqrt();
        let br = self.beta * r;
        let two_over_sqrt_pi = 2.0 / std::f64::consts::PI.sqrt();
        self.coulomb * (erfc(br) / r + two_over_sqrt_pi * self.beta * (-br * br).exp()) / r2
    }

    /// The kernel `g(r²) = force_scale_unit(r²)` as a closure suitable
    /// for [`fasda_arith::interp::InterpTable::build_fn`] — this is the
    /// "trivial modification" that retargets the FASDA force pipeline to
    /// electrostatics.
    pub fn force_kernel(&self) -> impl Fn(f64) -> f64 + '_ {
        move |r2| self.force_scale_unit(r2)
    }

    /// The kernel `V(r²)` for the potential table.
    pub fn potential_kernel(&self) -> impl Fn(f64) -> f64 + '_ {
        move |r2| self.potential_unit(r2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn erfc_known_values() {
        // reference values (A&S tables)
        for (x, want) in [
            (0.0, 1.0),
            (0.5, 0.479_500),
            (1.0, 0.157_299),
            (2.0, 0.004_678),
            (3.0, 2.209e-5),
        ] {
            let got = erfc(x);
            assert!(
                (got - want).abs() < 3e-6,
                "erfc({x}) = {got}, want {want}"
            );
        }
        // symmetry erfc(-x) = 2 - erfc(x)
        assert!((erfc(-1.0) - (2.0 - erfc(1.0))).abs() < 1e-12);
    }

    #[test]
    fn force_is_negative_gradient() {
        let p = EwaldParams::standard(UnitSystem::PAPER);
        for r in [0.2f64, 0.4, 0.6, 0.9] {
            let h = 1e-6;
            let dv =
                (p.potential_unit((r + h) * (r + h)) - p.potential_unit((r - h) * (r - h)))
                    / (2.0 * h);
            let s = p.force_scale_unit(r * r);
            let want = -dv / r;
            // tolerance limited by the A&S erfc approximation (1.5e-7
            // absolute, which is ~1e-3 relative where erfc is tiny)
            assert!(
                ((s - want) / want).abs() < 5e-4,
                "r={r}: {s} vs {want}"
            );
        }
    }

    #[test]
    fn negligible_at_cutoff() {
        let p = EwaldParams::standard(UnitSystem::PAPER);
        // at r = Rc = 1, erfc(3) makes the term ~1e-5 of the bare Coulomb
        let bare = p.coulomb; // 1/r at r=1
        let screened = p.potential_unit(1.0);
        assert!(screened / bare < 1e-4, "screening too weak: {screened}");
    }

    #[test]
    fn like_charges_repel() {
        let p = EwaldParams::standard(UnitSystem::PAPER);
        assert!(p.force_scale_unit(0.25) > 0.0);
    }

    #[test]
    fn kernel_tabulates_accurately() {
        use fasda_arith::interp::{InterpTable, TableConfig};
        let p = EwaldParams::standard(UnitSystem::PAPER);
        let t = InterpTable::build_fn(TableConfig::PAPER, p.force_kernel());
        let err = t.max_rel_error(p.force_kernel(), 10_000);
        assert!(err < 5e-4, "ewald kernel table error {err}");
    }
}
