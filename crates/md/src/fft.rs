//! Complex FFTs, from scratch — the 3D-FFT substrate of the LR
//! companion systems.
//!
//! The paper's long-range counterpart lives in the authors' FPGA 3D-FFT
//! line of work ("Design of 3D FFTs with FPGA Clusters", "HPC on FPGA
//! Clouds: 3D FFTs and Implications for Molecular Dynamics" — §1 refs
//! \[50, 51\]): particle–mesh electrostatics reduces to forward 3D FFT →
//! pointwise influence-function multiply → inverse 3D FFT. This module
//! provides that kernel in software: an iterative radix-2
//! decimation-in-time complex FFT and a 3D transform over a dense grid.

// Index-based loops mirror the textbook butterfly/pencil formulations.
#![allow(clippy::needless_range_loop)]
use crate::vec3::Vec3;

/// A complex number (we avoid external num crates; two f64s suffice).
/// Named methods instead of operator traits keep the butterfly kernels
/// explicit about every flop.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
#[allow(clippy::should_implement_trait)]
pub struct Complex {
    pub re: f64,
    pub im: f64,
}

#[allow(clippy::should_implement_trait)]
impl Complex {
    /// Zero.
    pub const ZERO: Complex = Complex { re: 0.0, im: 0.0 };

    /// Construct.
    #[inline]
    pub const fn new(re: f64, im: f64) -> Self {
        Complex { re, im }
    }

    /// `e^{iθ}`.
    #[inline]
    pub fn cis(theta: f64) -> Self {
        let (s, c) = theta.sin_cos();
        Complex::new(c, s)
    }

    /// Complex multiplication.
    #[inline]
    pub fn mul(self, o: Complex) -> Complex {
        Complex::new(
            self.re * o.re - self.im * o.im,
            self.re * o.im + self.im * o.re,
        )
    }

    /// Addition.
    #[inline]
    pub fn add(self, o: Complex) -> Complex {
        Complex::new(self.re + o.re, self.im + o.im)
    }

    /// Subtraction.
    #[inline]
    pub fn sub(self, o: Complex) -> Complex {
        Complex::new(self.re - o.re, self.im - o.im)
    }

    /// Squared magnitude.
    #[inline]
    pub fn norm_sq(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Scale by a real.
    #[inline]
    pub fn scale(self, s: f64) -> Complex {
        Complex::new(self.re * s, self.im * s)
    }

    /// Complex conjugate.
    #[inline]
    pub fn conj(self) -> Complex {
        Complex::new(self.re, -self.im)
    }
}

/// In-place iterative radix-2 DIT FFT. `inverse` applies the conjugate
/// transform **without** the 1/N normalization (callers normalize once,
/// as mesh codes do).
///
/// # Panics
/// If `data.len()` is not a power of two.
pub fn fft_1d(data: &mut [Complex], inverse: bool) {
    let n = data.len();
    assert!(n.is_power_of_two(), "radix-2 FFT needs power-of-two length");
    if n <= 1 {
        return;
    }
    // bit-reversal permutation
    let bits = n.trailing_zeros();
    for i in 0..n {
        let j = (i as u32).reverse_bits() >> (32 - bits);
        let j = j as usize;
        if i < j {
            data.swap(i, j);
        }
    }
    // butterflies
    let sign = if inverse { 1.0 } else { -1.0 };
    let mut len = 2;
    while len <= n {
        let ang = sign * 2.0 * std::f64::consts::PI / len as f64;
        let wlen = Complex::cis(ang);
        for start in (0..n).step_by(len) {
            let mut w = Complex::new(1.0, 0.0);
            for k in 0..len / 2 {
                let u = data[start + k];
                let v = data[start + k + len / 2].mul(w);
                data[start + k] = u.add(v);
                data[start + k + len / 2] = u.sub(v);
                w = w.mul(wlen);
            }
        }
        len <<= 1;
    }
}

/// A dense complex 3D grid with FFT along each axis.
#[derive(Clone, Debug)]
pub struct Grid3 {
    /// Grid dimensions (each a power of two).
    pub dims: (usize, usize, usize),
    /// Row-major data: index `(x·ny + y)·nz + z`.
    pub data: Vec<Complex>,
}

impl Grid3 {
    /// A zeroed grid.
    pub fn new(nx: usize, ny: usize, nz: usize) -> Self {
        assert!(
            nx.is_power_of_two() && ny.is_power_of_two() && nz.is_power_of_two(),
            "grid dims must be powers of two for the radix-2 FFT"
        );
        Grid3 {
            dims: (nx, ny, nz),
            data: vec![Complex::ZERO; nx * ny * nz],
        }
    }

    /// Linear index.
    #[inline]
    pub fn idx(&self, x: usize, y: usize, z: usize) -> usize {
        (x * self.dims.1 + y) * self.dims.2 + z
    }

    /// Element access.
    #[inline]
    pub fn at(&self, x: usize, y: usize, z: usize) -> Complex {
        self.data[self.idx(x, y, z)]
    }

    /// Mutable element access.
    #[inline]
    pub fn at_mut(&mut self, x: usize, y: usize, z: usize) -> &mut Complex {
        let i = self.idx(x, y, z);
        &mut self.data[i]
    }

    /// Zero all entries.
    pub fn clear(&mut self) {
        self.data.iter_mut().for_each(|c| *c = Complex::ZERO);
    }

    /// Total points.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when empty (never, after construction).
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// In-place 3D FFT (forward or inverse-unnormalized), axis by axis —
    /// the same pencil decomposition the FPGA 3D-FFT systems use.
    pub fn fft(&mut self, inverse: bool) {
        let (nx, ny, nz) = self.dims;
        // z-axis: contiguous pencils
        let mut buf = vec![Complex::ZERO; nx.max(ny).max(nz)];
        for x in 0..nx {
            for y in 0..ny {
                let base = self.idx(x, y, 0);
                fft_1d(&mut self.data[base..base + nz], inverse);
            }
        }
        // y-axis
        for x in 0..nx {
            for z in 0..nz {
                for y in 0..ny {
                    buf[y] = self.at(x, y, z);
                }
                fft_1d(&mut buf[..ny], inverse);
                for y in 0..ny {
                    *self.at_mut(x, y, z) = buf[y];
                }
            }
        }
        // x-axis
        for y in 0..ny {
            for z in 0..nz {
                for x in 0..nx {
                    buf[x] = self.at(x, y, z);
                }
                fft_1d(&mut buf[..nx], inverse);
                for x in 0..nx {
                    *self.at_mut(x, y, z) = buf[x];
                }
            }
        }
    }
}

/// Naive O(N²) DFT, the test oracle.
pub fn dft_reference(data: &[Complex], inverse: bool) -> Vec<Complex> {
    let n = data.len();
    let sign = if inverse { 1.0 } else { -1.0 };
    (0..n)
        .map(|k| {
            let mut acc = Complex::ZERO;
            for (j, &x) in data.iter().enumerate() {
                let theta = sign * 2.0 * std::f64::consts::PI * (k * j) as f64 / n as f64;
                acc = acc.add(x.mul(Complex::cis(theta)));
            }
            acc
        })
        .collect()
}

/// Fractional coordinates helper used by mesh codes: position (cells) →
/// grid coordinate in `[0, n)`.
pub fn to_grid_coord(pos: Vec3, edges: Vec3, dims: (usize, usize, usize)) -> Vec3 {
    Vec3::new(
        pos.x / edges.x * dims.0 as f64,
        pos.y / edges.y * dims.1 as f64,
        pos.z / edges.z * dims.2 as f64,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn signal(n: usize, seed: u64) -> Vec<Complex> {
        // deterministic pseudo-random complex signal
        let mut x = seed | 1;
        (0..n)
            .map(|_| {
                let mut next = || {
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    (x as f64 / u64::MAX as f64) * 2.0 - 1.0
                };
                Complex::new(next(), next())
            })
            .collect()
    }

    #[test]
    fn fft_matches_reference_dft() {
        for n in [2usize, 4, 8, 32, 128] {
            let sig = signal(n, 7);
            let mut fast = sig.clone();
            fft_1d(&mut fast, false);
            let slow = dft_reference(&sig, false);
            for k in 0..n {
                assert!(
                    (fast[k].re - slow[k].re).abs() < 1e-9
                        && (fast[k].im - slow[k].im).abs() < 1e-9,
                    "n={n} bin {k}: {:?} vs {:?}",
                    fast[k],
                    slow[k]
                );
            }
        }
    }

    #[test]
    fn fft_roundtrip_identity() {
        let sig = signal(64, 9);
        let mut data = sig.clone();
        fft_1d(&mut data, false);
        fft_1d(&mut data, true);
        for k in 0..64 {
            let back = data[k].scale(1.0 / 64.0);
            assert!((back.re - sig[k].re).abs() < 1e-12);
            assert!((back.im - sig[k].im).abs() < 1e-12);
        }
    }

    #[test]
    fn parseval_energy_preserved() {
        let sig = signal(256, 11);
        let time: f64 = sig.iter().map(|c| c.norm_sq()).sum();
        let mut f = sig.clone();
        fft_1d(&mut f, false);
        let freq: f64 = f.iter().map(|c| c.norm_sq()).sum::<f64>() / 256.0;
        assert!((time - freq).abs() < 1e-9 * time, "{time} vs {freq}");
    }

    #[test]
    #[should_panic(expected = "power-of-two")]
    fn non_power_of_two_rejected() {
        let mut d = vec![Complex::ZERO; 6];
        fft_1d(&mut d, false);
    }

    #[test]
    fn grid3_single_mode_transforms_to_delta() {
        // a pure plane wave concentrates into one bin
        let (nx, ny, nz) = (8, 8, 8);
        let mut g = Grid3::new(nx, ny, nz);
        let (mx, my, mz) = (2usize, 3usize, 1usize);
        for x in 0..nx {
            for y in 0..ny {
                for z in 0..nz {
                    let theta = 2.0 * std::f64::consts::PI
                        * (mx * x) as f64 / nx as f64
                        + 2.0 * std::f64::consts::PI * (my * y) as f64 / ny as f64
                        + 2.0 * std::f64::consts::PI * (mz * z) as f64 / nz as f64;
                    *g.at_mut(x, y, z) = Complex::cis(theta);
                }
            }
        }
        g.fft(false);
        let total: f64 = g.data.iter().map(|c| c.norm_sq()).sum();
        let peak = g.at(mx, my, mz).norm_sq();
        assert!(
            peak / total > 0.999_999,
            "mode not concentrated: peak {peak}, total {total}"
        );
    }

    #[test]
    fn grid3_roundtrip() {
        let mut g = Grid3::new(4, 8, 4);
        let sig = signal(g.len(), 21);
        g.data.copy_from_slice(&sig);
        g.fft(false);
        g.fft(true);
        let norm = 1.0 / g.len() as f64;
        for (a, b) in g.data.iter().zip(&sig) {
            let back = a.scale(norm);
            assert!((back.re - b.re).abs() < 1e-12);
            assert!((back.im - b.im).abs() < 1e-12);
        }
    }

    #[test]
    fn grid_coord_mapping() {
        let c = to_grid_coord(
            Vec3::new(1.5, 0.0, 2.999),
            Vec3::splat(3.0),
            (16, 16, 16),
        );
        assert_eq!(c.x, 8.0);
        assert_eq!(c.y, 0.0);
        assert!(c.z < 16.0 && c.z > 15.9);
    }
}
