//! Complete periodic electrostatics: RL + LR composed.
//!
//! The paper's system picture (§1–2): the range-limited component (LJ +
//! real-space PME term) runs on FASDA; the long-range component runs on
//! the companion 3D-FFT systems; "the two components are largely
//! independent in terms of data flow and can be treated as two separate
//! tasks". [`FullEwaldEngine`] is that composition in software — the
//! ground truth for charged-system simulations:
//!
//! ```text
//! E = E_LJ + E_real(β) + E_recip(β) + E_self(β)
//! ```
//!
//! The LR part can be the exact k-space sum or the mesh (PME) solver.

use crate::element::PairTable;
use crate::engine::{CellListEngine, ForceEngine};
use crate::ewald::EwaldParams;
use crate::ewald_recip::{EwaldRecip, RecipParams};
use crate::pme::Pme;
use crate::system::ParticleSystem;

/// Which long-range solver backs the engine.
pub enum LongRange {
    /// Exact O(N·K³) k-space sum.
    Exact(EwaldRecip),
    /// FFT-based smooth PME.
    Mesh(Pme),
}

/// RL (cell-list LJ + real-space Ewald) composed with an LR solver.
pub struct FullEwaldEngine {
    rl: CellListEngine,
    lr: LongRange,
    self_energy: f64,
}

impl FullEwaldEngine {
    /// Build with the exact k-space LR solver.
    pub fn exact(table: PairTable, params: EwaldParams, sys: &ParticleSystem) -> Self {
        let max_edge = {
            let e = sys.space.edges();
            e.x.max(e.y).max(e.z)
        };
        let recip = EwaldRecip::new(RecipParams::matching(params, max_edge), sys);
        let self_energy = recip.self_energy(sys);
        FullEwaldEngine {
            rl: CellListEngine::new(table).with_electrostatics(params),
            lr: LongRange::Exact(recip),
            self_energy,
        }
    }

    /// Build with the PME mesh LR solver.
    pub fn mesh(
        table: PairTable,
        params: EwaldParams,
        sys: &ParticleSystem,
        dims: (usize, usize, usize),
    ) -> Self {
        let pme = Pme::new(params, sys, dims);
        let self_energy = pme.self_energy(sys);
        FullEwaldEngine {
            rl: CellListEngine::new(table).with_electrostatics(params),
            lr: LongRange::Mesh(pme),
            self_energy,
        }
    }

    /// The constant self-energy term.
    pub fn self_energy(&self) -> f64 {
        self.self_energy
    }
}

impl ForceEngine for FullEwaldEngine {
    fn compute_forces(&mut self, sys: &mut ParticleSystem) -> f64 {
        let e_rl = self.rl.compute_forces(sys);
        let e_lr = match &mut self.lr {
            LongRange::Exact(recip) => recip.accumulate_forces(sys),
            LongRange::Mesh(pme) => pme.accumulate_forces(sys),
        };
        e_rl + e_lr + self.self_energy
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::element::Element;
    use crate::integrator::Integrator;
    use crate::observables::kinetic_energy_onstep;
    use crate::space::SimulationSpace;
    use crate::units::UnitSystem;
    use crate::workload::{Placement, WorkloadSpec};

    fn salt() -> ParticleSystem {
        let mut sys = WorkloadSpec {
            space: SimulationSpace::cubic(3),
            per_cell: 8,
            placement: Placement::JitteredLattice { jitter: 0.04 },
            temperature_k: 300.0,
            seed: 91,
            element: Element::NaPlus,
        }
        .generate();
        for i in 0..sys.len() {
            if i % 2 == 1 {
                sys.element[i] = Element::ClMinus;
            }
        }
        sys
    }

    #[test]
    fn exact_and_mesh_agree() {
        let sys = salt();
        let table = PairTable::new(UnitSystem::PAPER);
        let params = EwaldParams::standard(UnitSystem::PAPER);
        let mut exact = FullEwaldEngine::exact(table.clone(), params, &sys);
        let mut mesh = FullEwaldEngine::mesh(table, params, &sys, (32, 32, 32));
        let mut s1 = sys.clone();
        let mut s2 = sys.clone();
        let e1 = exact.compute_forces(&mut s1);
        let e2 = mesh.compute_forces(&mut s2);
        assert!(
            ((e1 - e2) / e1).abs() < 5e-3,
            "full energies differ: {e1} vs {e2}"
        );
        let scale = s1.force.iter().map(|f| f.max_abs()).fold(0.0f64, f64::max);
        for i in 0..sys.len() {
            assert!(
                (s1.force[i] - s2.force[i]).max_abs() < 0.03 * scale,
                "ion {i}"
            );
        }
    }

    #[test]
    fn full_electrostatics_nve_conserves_energy() {
        // the real acceptance test: total energy (incl. LR) is stable
        // under leapfrog for a charged melt
        let mut sys = salt();
        let table = PairTable::new(UnitSystem::PAPER);
        let params = EwaldParams::standard(UnitSystem::PAPER);
        let mut eng = FullEwaldEngine::exact(table, params, &sys);
        let integ = Integrator::PAPER;
        // energy probe: PE and the on-step KE must be evaluated on the
        // same snapshot with freshly computed forces
        let probe = |eng: &mut FullEwaldEngine, sys: &ParticleSystem| {
            let mut snap = sys.clone();
            let pe = eng.compute_forces(&mut snap);
            pe + kinetic_energy_onstep(&snap, integ.dt_fs)
        };
        let e0 = probe(&mut eng, &sys);
        let mut worst = 0.0f64;
        for _ in 0..100 {
            eng.step(&mut sys, &integ);
            let e = probe(&mut eng, &sys);
            worst = worst.max(((e - e0) / e0).abs());
        }
        assert!(
            worst < 5e-3,
            "full-Ewald NVE drifted by {worst:.2e} over 100 steps"
        );
    }

    #[test]
    fn neutral_system_reduces_to_lj() {
        let sys = WorkloadSpec::paper(SimulationSpace::cubic(3), 92).generate();
        let table = PairTable::new(UnitSystem::PAPER);
        let params = EwaldParams::standard(UnitSystem::PAPER);
        let mut full = FullEwaldEngine::exact(table.clone(), params, &sys);
        let mut lj = CellListEngine::new(table);
        let mut s1 = sys.clone();
        let mut s2 = sys.clone();
        let e1 = full.compute_forces(&mut s1);
        let e2 = lj.compute_forces(&mut s2);
        assert!((e1 - e2).abs() < 1e-9 * e2.abs().max(1.0));
        assert_eq!(full.self_energy(), 0.0);
    }
}
