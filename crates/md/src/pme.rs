//! Smooth Particle-Mesh Ewald — the FFT-based long-range solver.
//!
//! The k-space sum of [`crate::ewald_recip`] is exact but O(N·K³); the
//! production method — and the one the FPGA 3D-FFT companion systems
//! implement (§1 refs \[50, 51\], MDGRAPE-4A's FPGA offload \[33\]) — is
//! smooth PME (Essmann et al. 1995): spread charges onto a mesh with
//! cardinal B-splines, FFT, multiply by the influence function, and
//! inverse-FFT for the potential mesh.
//!
//! ```text
//! S(m) ≈ b₁(m₁)b₂(m₂)b₃(m₃)·Q̂(m)                (spline-smoothed structure factor)
//! E    = (2πC/V) Σ_{m≠0} exp(−k²/4β²)/k² |S(m)|²
//! F_i  = −q_i Σ_mesh ∇w_i(p) · φ(p),  φ = FFT⁻¹[η·Q̂]
//! ```
//!
//! Accuracy is set by the mesh resolution and spline order (4 here);
//! the tests verify energies and forces against the exact k-space sum.

// Index loops keep the spreading/interpolation stencils close to the
// SPME paper's notation.
#![allow(clippy::needless_range_loop, clippy::type_complexity)]
use crate::ewald::EwaldParams;
use crate::fft::Grid3;
use crate::system::ParticleSystem;
use crate::vec3::Vec3;

/// Spline order (cubic, the standard "smooth" PME choice).
const ORDER: usize = 4;

/// Cardinal B-spline `M_n(u)` with support `[0, n)`, by the standard
/// recursion.
fn m_spline(n: usize, u: f64) -> f64 {
    if u <= 0.0 || u >= n as f64 {
        return 0.0;
    }
    if n == 2 {
        return 1.0 - (u - 1.0).abs();
    }
    let nf = n as f64;
    (u / (nf - 1.0)) * m_spline(n - 1, u) + ((nf - u) / (nf - 1.0)) * m_spline(n - 1, u - 1.0)
}

/// Derivative `M_n'(u) = M_{n−1}(u) − M_{n−1}(u−1)`.
fn m_spline_deriv(n: usize, u: f64) -> f64 {
    m_spline(n - 1, u) - m_spline(n - 1, u - 1.0)
}

/// `|b(m)|²` Euler exponential-spline factor along one axis.
fn b_factor_sq(m: usize, k: usize) -> f64 {
    let theta = 2.0 * std::f64::consts::PI * m as f64 / k as f64;
    let (mut dr, mut di) = (0.0f64, 0.0f64);
    for j in 0..=(ORDER - 2) {
        let w = m_spline(ORDER, (j + 1) as f64);
        dr += w * (theta * j as f64).cos();
        di += w * (theta * j as f64).sin();
    }
    let denom = dr * dr + di * di;
    if denom < 1e-12 {
        0.0 // interpolation blind spot; the influence function zeroes it
    } else {
        1.0 / denom
    }
}

/// The smooth-PME reciprocal-space solver for one box/mesh shape.
pub struct Pme {
    beta: f64,
    coulomb: f64,
    dims: (usize, usize, usize),
    edges: Vec3,
    /// Influence function η(m) with the |b|² factors folded in; index
    /// like the grid.
    influence: Vec<f64>,
    grid: Grid3,
}

impl Pme {
    /// Build the solver: mesh dims must be powers of two; ~2 points per
    /// cell per axis gives ≲0.1% energy error at β = 3/cell.
    pub fn new(real: EwaldParams, sys: &ParticleSystem, dims: (usize, usize, usize)) -> Self {
        let edges = sys.space.edges();
        let volume = edges.x * edges.y * edges.z;
        let grid = Grid3::new(dims.0, dims.1, dims.2);
        let two_pi = 2.0 * std::f64::consts::PI;
        let mut influence = vec![0.0; dims.0 * dims.1 * dims.2];
        for mx in 0..dims.0 {
            // map to signed frequency
            let fx = if mx <= dims.0 / 2 { mx as i64 } else { mx as i64 - dims.0 as i64 };
            for my in 0..dims.1 {
                let fy = if my <= dims.1 / 2 { my as i64 } else { my as i64 - dims.1 as i64 };
                for mz in 0..dims.2 {
                    let fz =
                        if mz <= dims.2 / 2 { mz as i64 } else { mz as i64 - dims.2 as i64 };
                    if (fx, fy, fz) == (0, 0, 0) {
                        continue;
                    }
                    let k = Vec3::new(
                        two_pi * fx as f64 / edges.x,
                        two_pi * fy as f64 / edges.y,
                        two_pi * fz as f64 / edges.z,
                    );
                    let k2 = k.norm_sq();
                    let gauss = (-k2 / (4.0 * real.beta * real.beta)).exp();
                    let b2 = b_factor_sq(mx, dims.0) * b_factor_sq(my, dims.1)
                        * b_factor_sq(mz, dims.2);
                    let idx = (mx * dims.1 + my) * dims.2 + mz;
                    // η(m) = N · 4πC/V · exp(−k²/4β²)/k² · |b|².
                    // The N compensates the 1/N of the normalized inverse
                    // DFT in the circular-convolution theorem, so that
                    // E = ½ΣQφ equals the unnormalized-structure-factor
                    // k-sum (Essmann et al. 1995, Eq. 4.7).
                    influence[idx] = (dims.0 * dims.1 * dims.2) as f64
                        * 4.0
                        * std::f64::consts::PI
                        * real.coulomb
                        / volume
                        * gauss
                        / k2
                        * b2;
                }
            }
        }
        Pme {
            beta: real.beta,
            coulomb: real.coulomb,
            dims,
            edges,
            influence,
            grid,
        }
    }

    /// Self-energy correction (matches the k-space module).
    pub fn self_energy(&self, sys: &ParticleSystem) -> f64 {
        let q2: f64 = sys.element.iter().map(|e| e.charge() * e.charge()).sum();
        -self.coulomb * self.beta / std::f64::consts::PI.sqrt() * q2
    }

    /// Spline weights and base indices for one particle.
    fn spread_stencil(
        &self,
        pos: Vec3,
    ) -> ([usize; ORDER], [usize; ORDER], [usize; ORDER], [[f64; ORDER]; 3], [[f64; ORDER]; 3])
    {
        let (nx, ny, nz) = self.dims;
        let u = Vec3::new(
            pos.x / self.edges.x * nx as f64,
            pos.y / self.edges.y * ny as f64,
            pos.z / self.edges.z * nz as f64,
        );
        let mut ix = [0usize; ORDER];
        let mut iy = [0usize; ORDER];
        let mut iz = [0usize; ORDER];
        let mut w = [[0.0f64; ORDER]; 3];
        let mut dw = [[0.0f64; ORDER]; 3];
        let axes = [(u.x, nx), (u.y, ny), (u.z, nz)];
        for (a, (ua, na)) in axes.iter().enumerate() {
            let fl = ua.floor();
            let frac = ua - fl;
            for j in 0..ORDER {
                let idx = ((fl as i64 - j as i64).rem_euclid(*na as i64)) as usize;
                match a {
                    0 => ix[j] = idx,
                    1 => iy[j] = idx,
                    _ => iz[j] = idx,
                }
                w[a][j] = m_spline(ORDER, frac + j as f64);
                dw[a][j] = m_spline_deriv(ORDER, frac + j as f64);
            }
        }
        (ix, iy, iz, w, dw)
    }

    /// Reciprocal energy only (kcal/mol).
    pub fn energy(&mut self, sys: &ParticleSystem) -> f64 {
        self.solve(sys, None)
    }

    /// Reciprocal energy, accumulating forces into `sys.force`.
    pub fn accumulate_forces(&mut self, sys: &mut ParticleSystem) -> f64 {
        let mut forces = vec![Vec3::ZERO; sys.len()];
        let e = self.solve(sys, Some(&mut forces));
        for i in 0..sys.len() {
            sys.force[i] += forces[i];
        }
        e
    }

    fn solve(&mut self, sys: &ParticleSystem, forces: Option<&mut Vec<Vec3>>) -> f64 {
        // 1. spread charges
        self.grid.clear();
        for i in 0..sys.len() {
            let q = sys.element[i].charge();
            if q == 0.0 {
                continue;
            }
            let (ix, iy, iz, w, _) = self.spread_stencil(sys.pos[i]);
            for jx in 0..ORDER {
                for jy in 0..ORDER {
                    let wxy = q * w[0][jx] * w[1][jy];
                    for jz in 0..ORDER {
                        self.grid.at_mut(ix[jx], iy[jy], iz[jz]).re += wxy * w[2][jz];
                    }
                }
            }
        }
        // 2. forward FFT
        self.grid.fft(false);
        // 3. energy via Parseval + influence; convolve for the potential
        let n_total = self.grid.len() as f64;
        let mut energy = 0.0;
        for (idx, c) in self.grid.data.iter_mut().enumerate() {
            let eta = self.influence[idx];
            energy += 0.5 * eta * c.norm_sq() / n_total;
            *c = c.scale(eta);
        }
        // 4. inverse FFT → potential mesh φ (normalize by N)
        if let Some(out) = forces {
            self.grid.fft(true);
            let norm = 1.0 / n_total;
            for i in 0..sys.len() {
                let q = sys.element[i].charge();
                if q == 0.0 {
                    continue;
                }
                let (ix, iy, iz, w, dw) = self.spread_stencil(sys.pos[i]);
                let mut g = Vec3::ZERO;
                for jx in 0..ORDER {
                    for jy in 0..ORDER {
                        for jz in 0..ORDER {
                            let phi = self.grid.at(ix[jx], iy[jy], iz[jz]).re * norm;
                            g.x += dw[0][jx] * w[1][jy] * w[2][jz] * phi;
                            g.y += w[0][jx] * dw[1][jy] * w[2][jz] * phi;
                            g.z += w[0][jx] * w[1][jy] * dw[2][jz] * phi;
                        }
                    }
                }
                // chain rule: du/dx = K/L per axis; and F = −q∇φ_interp
                let (nx, ny, nz) = self.dims;
                out[i] = Vec3::new(
                    -q * g.x * nx as f64 / self.edges.x,
                    -q * g.y * ny as f64 / self.edges.y,
                    -q * g.z * nz as f64 / self.edges.z,
                );
            }
        }
        energy
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::element::Element;
    use crate::ewald_recip::{EwaldRecip, RecipParams};
    use crate::space::SimulationSpace;
    use crate::units::UnitSystem;

    fn rock_salt() -> ParticleSystem {
        let space = SimulationSpace::cubic(3);
        let mut sys = ParticleSystem::new(space, UnitSystem::PAPER);
        for ix in 0..6u32 {
            for iy in 0..6u32 {
                for iz in 0..6u32 {
                    let elem = if (ix + iy + iz) % 2 == 0 {
                        Element::NaPlus
                    } else {
                        Element::ClMinus
                    };
                    sys.push(
                        elem,
                        Vec3::new(
                            (ix as f64 + 0.3) * 0.5,
                            (iy as f64 + 0.3) * 0.5,
                            (iz as f64 + 0.3) * 0.5,
                        ),
                        Vec3::ZERO,
                    );
                }
            }
        }
        sys
    }

    #[test]
    fn splines_partition_unity() {
        for frac in [0.0f64, 0.1, 0.37, 0.5, 0.99] {
            let s: f64 = (0..ORDER).map(|j| m_spline(ORDER, frac + j as f64)).sum();
            assert!((s - 1.0).abs() < 1e-12, "frac {frac}: sum {s}");
            let d: f64 = (0..ORDER)
                .map(|j| m_spline_deriv(ORDER, frac + j as f64))
                .sum();
            assert!(d.abs() < 1e-12, "derivative weights must sum to 0");
        }
    }

    #[test]
    fn pme_energy_matches_exact_ksum() {
        let sys = rock_salt();
        let real = EwaldParams::standard(UnitSystem::PAPER);
        let exact = EwaldRecip::new(RecipParams::matching(real, 3.0), &sys).energy(&sys);
        let mut pme = Pme::new(real, &sys, (32, 32, 32));
        let approx = pme.energy(&sys);
        let rel = ((approx - exact) / exact).abs();
        assert!(
            rel < 5e-3,
            "PME energy {approx} vs exact {exact} (rel {rel:.2e})"
        );
        assert!(
            (pme.self_energy(&sys)
                - EwaldRecip::new(RecipParams::matching(real, 3.0), &sys).self_energy(&sys))
            .abs()
                < 1e-9
        );
    }

    #[test]
    fn pme_energy_converges_with_mesh() {
        let sys = rock_salt();
        let real = EwaldParams::standard(UnitSystem::PAPER);
        let exact = EwaldRecip::new(RecipParams::matching(real, 3.0), &sys).energy(&sys);
        let e16 = Pme::new(real, &sys, (16, 16, 16)).energy(&sys);
        let e32 = Pme::new(real, &sys, (32, 32, 32)).energy(&sys);
        let err16 = ((e16 - exact) / exact).abs();
        let err32 = ((e32 - exact) / exact).abs();
        assert!(
            err32 < err16 / 4.0,
            "mesh refinement must converge: {err16:.2e} → {err32:.2e}"
        );
    }

    #[test]
    fn pme_forces_match_exact_ksum() {
        // perturb the lattice: a perfect crystal has zero force on every
        // ion by symmetry, which would leave nothing but PME's tiny
        // self-interaction artifact to compare against
        let mut sys = rock_salt();
        let mut rng = 0x1234_5678_9abc_def1u64;
        for p in &mut sys.pos {
            let mut next = || {
                rng ^= rng << 13;
                rng ^= rng >> 7;
                rng ^= rng << 17;
                (rng as f64 / u64::MAX as f64 - 0.5) * 0.1
            };
            *p = sys.space.wrap_pos(*p + Vec3::new(next(), next(), next()));
        }
        let sys = sys;
        let real = EwaldParams::standard(UnitSystem::PAPER);
        let recip = EwaldRecip::new(RecipParams::matching(real, 3.0), &sys);
        let mut exact_sys = sys.clone();
        exact_sys.clear_forces();
        recip.accumulate_forces(&mut exact_sys);

        let mut pme_sys = sys.clone();
        pme_sys.clear_forces();
        Pme::new(real, &sys, (32, 32, 32)).accumulate_forces(&mut pme_sys);

        let scale = exact_sys
            .force
            .iter()
            .map(|f| f.max_abs())
            .fold(0.0f64, f64::max);
        for i in 0..sys.len() {
            let d = (exact_sys.force[i] - pme_sys.force[i]).max_abs();
            assert!(
                d < 0.02 * scale,
                "ion {i}: PME {:?} vs exact {:?}",
                pme_sys.force[i],
                exact_sys.force[i]
            );
        }
        // SPME's interpolated forces do not conserve momentum exactly
        // (a known property of the method — production codes remove the
        // residual net force explicitly); it must merely be small.
        assert!(
            pme_sys.net_force().max_abs() < 0.05 * scale,
            "net PME force {:?} too large vs scale {scale}",
            pme_sys.net_force()
        );
    }

    #[test]
    fn neutral_system_zero_everything() {
        let space = SimulationSpace::cubic(3);
        let mut sys = ParticleSystem::new(space, UnitSystem::PAPER);
        sys.push(Element::Na, Vec3::splat(0.5), Vec3::ZERO);
        let real = EwaldParams::standard(UnitSystem::PAPER);
        let mut pme = Pme::new(real, &sys, (8, 8, 8));
        assert_eq!(pme.energy(&sys), 0.0);
        assert_eq!(pme.self_energy(&sys), 0.0);
    }
}
