//! Double-precision reference engines — the "OpenMM 64-bit" stand-in.
//!
//! Two interchangeable force engines drive the same [`ParticleSystem`]:
//!
//! * [`DirectEngine`] — O(N²) minimum-image sweep. Slow but obviously
//!   correct; the ground truth for small-system tests.
//! * [`CellListEngine`] — O(N·m) half-shell cell-list sweep, the same
//!   pair enumeration the accelerator performs, in `f64`.
//!
//! Both apply the paper's plain truncated (unshifted) LJ cutoff at
//! `r = Rc = 1` cell and exclude nothing else. The Fig. 19 experiment runs
//! [`CellListEngine`] at `f64` against the FASDA functional model's
//! fixed-point/interpolated arithmetic.

use crate::celllist::CellList;
use crate::element::PairTable;
use crate::ewald::EwaldParams;
use crate::integrator::{Integrator, IntegratorKind};
use crate::system::ParticleSystem;
use crate::vec3::Vec3;

/// A force evaluator over a particle system.
pub trait ForceEngine {
    /// Recompute `sys.force` from `sys.pos`, returning the total truncated
    /// LJ potential energy (kcal/mol).
    fn compute_forces(&mut self, sys: &mut ParticleSystem) -> f64;

    /// Advance one timestep with `integ`, returning the potential energy
    /// measured during the (final) force evaluation of the step.
    fn step(&mut self, sys: &mut ParticleSystem, integ: &Integrator) -> f64 {
        match integ.kind {
            IntegratorKind::Leapfrog => {
                let pe = self.compute_forces(sys);
                integ.leapfrog_step(sys);
                pe
            }
            IntegratorKind::VelocityVerlet => {
                // forces assumed current from the previous step's tail eval
                integ.vv_first_half(sys);
                let pe = self.compute_forces(sys);
                integ.vv_second_half(sys);
                pe
            }
        }
    }
}

/// Accumulate one pair interaction (cutoff already checked) into the
/// force arrays, honouring Newton's third law. Returns the pair potential.
/// When `ewald` is set and both charges are nonzero, the real-space PME
/// term is added (paper §2.1: RL = LJ + short-range electrostatics).
#[inline]
fn accumulate_pair(
    sys: &mut ParticleSystem,
    table: &PairTable,
    ewald: Option<&EwaldParams>,
    i: usize,
    j: usize,
    dr: Vec3,
    r2: f64,
) -> f64 {
    let (ei, ej) = (sys.element[i], sys.element[j]);
    let mut s = table.force_scale(ei, ej, r2);
    let mut pe = table.potential(ei, ej, r2);
    if let Some(p) = ewald {
        let qq = ei.charge() * ej.charge();
        if qq != 0.0 {
            s += qq * p.force_scale_unit(r2);
            pe += qq * p.potential_unit(r2);
        }
    }
    let f = dr * s;
    sys.force[i] += f;
    sys.force[j] -= f;
    pe
}

/// O(N²) minimum-image reference engine.
pub struct DirectEngine {
    table: PairTable,
    ewald: Option<EwaldParams>,
    /// Squared cutoff (cell units); 1.0 for the paper's setup.
    pub cutoff_sq: f64,
}

impl DirectEngine {
    /// New engine with the paper's unit cutoff (LJ only).
    pub fn new(table: PairTable) -> Self {
        DirectEngine {
            table,
            ewald: None,
            cutoff_sq: 1.0,
        }
    }

    /// Enable the real-space PME electrostatic term.
    pub fn with_electrostatics(mut self, params: EwaldParams) -> Self {
        self.ewald = Some(params);
        self
    }

    /// Access the coefficient table.
    pub fn table(&self) -> &PairTable {
        &self.table
    }
}

impl ForceEngine for DirectEngine {
    fn compute_forces(&mut self, sys: &mut ParticleSystem) -> f64 {
        sys.clear_forces();
        let n = sys.len();
        let mut pe = 0.0;
        for i in 0..n {
            for j in (i + 1)..n {
                let dr = sys.space.min_image(sys.pos[i], sys.pos[j]);
                let r2 = dr.norm_sq();
                if r2 < self.cutoff_sq {
                    pe += accumulate_pair(sys, &self.table, self.ewald.as_ref(), i, j, dr, r2);
                }
            }
        }
        pe
    }
}

/// O(N·m) half-shell cell-list engine — the same traversal order as the
/// accelerator, in double precision.
pub struct CellListEngine {
    table: PairTable,
    ewald: Option<EwaldParams>,
    cells: Option<CellList>,
    /// Squared cutoff (cell units).
    pub cutoff_sq: f64,
}

impl CellListEngine {
    /// New engine with the paper's unit cutoff (LJ only).
    pub fn new(table: PairTable) -> Self {
        CellListEngine {
            table,
            ewald: None,
            cells: None,
            cutoff_sq: 1.0,
        }
    }

    /// Enable the real-space PME electrostatic term.
    pub fn with_electrostatics(mut self, params: EwaldParams) -> Self {
        self.ewald = Some(params);
        self
    }

    /// Access the coefficient table.
    pub fn table(&self) -> &PairTable {
        &self.table
    }
}

impl ForceEngine for CellListEngine {
    fn compute_forces(&mut self, sys: &mut ParticleSystem) -> f64 {
        sys.clear_forces();
        // Rebuild every step, matching the FPGA flow (§2.2: neighbour
        // lists are recomputed every timestep).
        let cl = match &mut self.cells {
            Some(cl) => {
                cl.rebuild(sys);
                cl
            }
            none => {
                *none = Some(CellList::build(sys));
                none.as_mut().unwrap()
            }
        };

        let mut pe = 0.0;
        // Collect pair hits first to appease the borrow checker without
        // cloning particle data; candidate count is bounded by m·N.
        let mut hits: Vec<(u32, u32, Vec3, f64)> = Vec::new();
        cl.for_each_halfshell_pair(|i, j| {
            let dr = sys
                .space
                .min_image(sys.pos[i as usize], sys.pos[j as usize]);
            let r2 = dr.norm_sq();
            if r2 < self.cutoff_sq {
                hits.push((i, j, dr, r2));
            }
        });
        for (i, j, dr, r2) in hits {
            pe += accumulate_pair(
                sys,
                &self.table,
                self.ewald.as_ref(),
                i as usize,
                j as usize,
                dr,
                r2,
            );
        }
        pe
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::element::Element;
    use crate::space::SimulationSpace;
    use crate::units::UnitSystem;
    use crate::workload::{Placement, WorkloadSpec};

    fn small_system() -> ParticleSystem {
        WorkloadSpec {
            space: SimulationSpace::cubic(3),
            per_cell: 8,
            placement: Placement::JitteredLattice { jitter: 0.08 },
            temperature_k: 100.0,
            seed: 7,
            element: Element::Na,
        }
        .generate()
    }

    #[test]
    fn direct_and_celllist_agree() {
        let mut sys1 = small_system();
        let mut sys2 = sys1.clone();
        let table = PairTable::new(UnitSystem::PAPER);
        let pe1 = DirectEngine::new(table.clone()).compute_forces(&mut sys1);
        let pe2 = CellListEngine::new(table).compute_forces(&mut sys2);
        assert!(
            (pe1 - pe2).abs() < 1e-9 * pe1.abs().max(1.0),
            "pe {pe1} vs {pe2}"
        );
        for i in 0..sys1.len() {
            assert!(
                (sys1.force[i] - sys2.force[i]).max_abs() < 1e-9,
                "force mismatch at {i}: {:?} vs {:?}",
                sys1.force[i],
                sys2.force[i]
            );
        }
    }

    #[test]
    fn newtons_third_law_net_zero() {
        let mut sys = small_system();
        let table = PairTable::new(UnitSystem::PAPER);
        DirectEngine::new(table).compute_forces(&mut sys);
        assert!(sys.net_force().max_abs() < 1e-9);
    }

    #[test]
    fn two_particle_force_direction() {
        let mut sys = ParticleSystem::new(SimulationSpace::cubic(3), UnitSystem::PAPER);
        // closer than rmin → repulsive: force on i points away from j
        sys.push(Element::Na, Vec3::new(1.5, 1.5, 1.5), Vec3::ZERO);
        sys.push(Element::Na, Vec3::new(1.7, 1.5, 1.5), Vec3::ZERO);
        let table = PairTable::new(UnitSystem::PAPER);
        DirectEngine::new(table).compute_forces(&mut sys);
        assert!(sys.force[0].x < 0.0, "particle 0 pushed in -x");
        assert!(sys.force[1].x > 0.0, "particle 1 pushed in +x");
        assert!((sys.force[0] + sys.force[1]).max_abs() < 1e-12);
    }

    #[test]
    fn beyond_cutoff_no_interaction() {
        let mut sys = ParticleSystem::new(SimulationSpace::cubic(4), UnitSystem::PAPER);
        sys.push(Element::Na, Vec3::new(0.5, 0.5, 0.5), Vec3::ZERO);
        sys.push(Element::Na, Vec3::new(2.0, 0.5, 0.5), Vec3::ZERO);
        let table = PairTable::new(UnitSystem::PAPER);
        let pe = DirectEngine::new(table).compute_forces(&mut sys);
        assert_eq!(pe, 0.0);
        assert_eq!(sys.force[0], Vec3::ZERO);
    }

    #[test]
    fn leapfrog_energy_stable_short_run() {
        let mut sys = small_system();
        let table = PairTable::new(UnitSystem::PAPER);
        let mut eng = CellListEngine::new(table);
        let integ = Integrator::PAPER;
        let e0 = {
            let pe = eng.compute_forces(&mut sys);
            pe + crate::observables::kinetic_energy(&sys)
        };
        let mut e_last = e0;
        for _ in 0..200 {
            let pe = eng.step(&mut sys, &integ);
            e_last = pe + crate::observables::kinetic_energy(&sys);
        }
        // truncated LJ + leapfrog: energy bounded within a small fraction
        let scale = e0.abs().max(1.0);
        assert!(
            (e_last - e0).abs() / scale < 0.05,
            "energy drifted: {e0} → {e_last}"
        );
    }
}
