//! Thermostats for equilibration runs.
//!
//! The paper's benchmark runs are NVE (no thermostat — energy
//! conservation is the validation metric, Fig. 19), but preparing an
//! equilibrated system to benchmark *on* requires temperature control.
//! Two standard weak-coupling schemes are provided.

use crate::observables::temperature;
use crate::system::ParticleSystem;
use serde::{Deserialize, Serialize};

/// A velocity-rescaling thermostat.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum Thermostat {
    /// Hard rescale to the target temperature every invocation.
    Rescale {
        /// Target temperature, K.
        target_k: f64,
    },
    /// Berendsen weak coupling: `λ² = 1 + (dt/τ)(T₀/T − 1)`.
    Berendsen {
        /// Target temperature, K.
        target_k: f64,
        /// Coupling time constant, fs.
        tau_fs: f64,
    },
}

impl Thermostat {
    /// Apply one thermostat action after a timestep of `dt_fs`.
    /// Returns the scaling factor used.
    pub fn apply(&self, sys: &mut ParticleSystem, dt_fs: f64) -> f64 {
        let t = temperature(sys);
        if t <= 0.0 {
            return 1.0;
        }
        let lambda = match *self {
            Thermostat::Rescale { target_k } => (target_k / t).sqrt(),
            Thermostat::Berendsen { target_k, tau_fs } => {
                (1.0 + dt_fs / tau_fs * (target_k / t - 1.0)).max(0.0).sqrt()
            }
        };
        for v in &mut sys.vel {
            *v = *v * lambda;
        }
        lambda
    }

    /// Target temperature.
    pub fn target(&self) -> f64 {
        match *self {
            Thermostat::Rescale { target_k } => target_k,
            Thermostat::Berendsen { target_k, .. } => target_k,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::element::Element;
    use crate::space::SimulationSpace;
    use crate::units::UnitSystem;
    use crate::vec3::Vec3;
    use crate::workload::WorkloadSpec;

    fn hot_system() -> ParticleSystem {
        WorkloadSpec {
            temperature_k: 900.0,
            ..WorkloadSpec::paper(SimulationSpace::cubic(3), 5)
        }
        .generate()
    }

    #[test]
    fn rescale_hits_target_exactly() {
        let mut sys = hot_system();
        Thermostat::Rescale { target_k: 300.0 }.apply(&mut sys, 2.0);
        let t = temperature(&sys);
        assert!((t - 300.0).abs() < 1e-9, "T = {t}");
    }

    #[test]
    fn berendsen_moves_toward_target() {
        let mut sys = hot_system();
        let t0 = temperature(&sys);
        let th = Thermostat::Berendsen {
            target_k: 300.0,
            tau_fs: 100.0,
        };
        th.apply(&mut sys, 2.0);
        let t1 = temperature(&sys);
        assert!(t1 < t0, "cooling expected: {t0} → {t1}");
        assert!(t1 > 300.0, "must not overshoot in one step");
        // repeated application converges
        for _ in 0..2_000 {
            th.apply(&mut sys, 2.0);
        }
        let t = temperature(&sys);
        assert!((t - 300.0).abs() < 1.0, "converged T = {t}");
    }

    #[test]
    fn zero_velocity_system_untouched() {
        let mut sys = ParticleSystem::new(SimulationSpace::cubic(3), UnitSystem::PAPER);
        sys.push(Element::Na, Vec3::splat(0.5), Vec3::ZERO);
        let lambda = Thermostat::Rescale { target_k: 300.0 }.apply(&mut sys, 2.0);
        assert_eq!(lambda, 1.0);
        assert_eq!(sys.vel[0], Vec3::ZERO);
    }
}
