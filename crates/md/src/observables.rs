//! Energy, temperature, and momentum observables.

use crate::system::ParticleSystem;
use crate::units::BOLTZMANN_KCALMOL;
use crate::vec3::Vec3;

/// Total kinetic energy, kcal/mol.
pub fn kinetic_energy(sys: &ParticleSystem) -> f64 {
    let k = sys.units.ke_factor();
    sys.vel
        .iter()
        .zip(&sys.element)
        .map(|(v, e)| k * e.mass() * v.norm_sq())
        .sum()
}

/// Instantaneous temperature from equipartition, Kelvin.
/// `T = 2·KE / (3·N·kB)`.
pub fn temperature(sys: &ParticleSystem) -> f64 {
    if sys.is_empty() {
        return 0.0;
    }
    2.0 * kinetic_energy(sys) / (3.0 * sys.len() as f64 * BOLTZMANN_KCALMOL)
}

/// Relative difference `|a - b| / max(|b|, floor)`, the Fig. 19 metric.
pub fn relative_error(a: f64, b: f64) -> f64 {
    (a - b).abs() / b.abs().max(1e-30)
}

/// On-step kinetic energy for a leapfrog-staggered state.
///
/// After a kick-drift step the stored state is positions `x(t)` with
/// velocities half a step behind, `v(t − ½dt)`. Comparing half-step KE
/// against on-step PE injects O(dt) oscillations into the total energy;
/// the standard estimator synchronizes velocities with
/// `v(t) ≈ v(t−½) + a(t)·dt/2` using the forces already present in
/// `sys.force` (which must correspond to the current positions).
pub fn kinetic_energy_onstep(sys: &ParticleSystem, dt_fs: f64) -> f64 {
    let k = sys.units.ke_factor();
    let acc = sys.units.acc_factor();
    sys.vel
        .iter()
        .zip(&sys.element)
        .zip(&sys.force)
        .map(|((v, e), f)| {
            let a = *f * (acc / e.mass());
            let v_on = *v + a * (dt_fs / 2.0);
            k * e.mass() * v_on.norm_sq()
        })
        .sum()
}

/// Radial distribution function g(r) up to `r_max` (cell units) with
/// `bins` bins, optionally restricted to pairs of given elements.
/// O(N²); intended for analysis-sized systems and validation examples.
pub fn radial_distribution(
    sys: &ParticleSystem,
    r_max: f64,
    bins: usize,
    species: Option<(crate::element::Element, crate::element::Element)>,
) -> Vec<(f64, f64)> {
    assert!(bins > 0 && r_max > 0.0);
    let dr = r_max / bins as f64;
    let mut hist = vec![0u64; bins];
    let mut count_a = 0usize;
    let mut count_b = 0usize;
    let select = |e: crate::element::Element, which: usize| -> bool {
        match species {
            None => true,
            Some((a, b)) => e == if which == 0 { a } else { b },
        }
    };
    for i in 0..sys.len() {
        if select(sys.element[i], 0) {
            count_a += 1;
        }
        if select(sys.element[i], 1) {
            count_b += 1;
        }
    }
    for i in 0..sys.len() {
        if !select(sys.element[i], 0) {
            continue;
        }
        for j in 0..sys.len() {
            if i == j || !select(sys.element[j], 1) {
                continue;
            }
            let r = sys.space.min_image(sys.pos[i], sys.pos[j]).norm();
            if r < r_max {
                hist[(r / dr) as usize] += 1;
            }
        }
    }
    let volume = {
        let e: Vec3 = sys.space.edges();
        e.x * e.y * e.z
    };
    let rho_b = count_b as f64 / volume;
    (0..bins)
        .map(|k| {
            let r_lo = k as f64 * dr;
            let r_hi = r_lo + dr;
            let shell = 4.0 / 3.0 * std::f64::consts::PI * (r_hi.powi(3) - r_lo.powi(3));
            let ideal = rho_b * shell * count_a as f64;
            let g = if ideal > 0.0 {
                hist[k] as f64 / ideal
            } else {
                0.0
            };
            (r_lo + dr / 2.0, g)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::element::Element;
    use crate::space::SimulationSpace;
    use crate::units::UnitSystem;
    use crate::vec3::Vec3;

    #[test]
    fn kinetic_energy_of_known_velocity() {
        let mut sys = ParticleSystem::new(SimulationSpace::cubic(3), UnitSystem::PAPER);
        // 1 Å/fs in cell units
        let v = 1.0 / 8.5;
        sys.push(Element::Na, Vec3::splat(0.5), Vec3::new(v, 0.0, 0.0));
        let ke = kinetic_energy(&sys);
        // KE = 0.5·m·(1 Å/fs)²/4.184e-4
        let want = 0.5 * Element::Na.mass() / 4.184e-4;
        assert!((ke - want).abs() / want < 1e-12);
    }

    #[test]
    fn temperature_of_empty_system_is_zero() {
        let sys = ParticleSystem::new(SimulationSpace::cubic(3), UnitSystem::PAPER);
        assert_eq!(temperature(&sys), 0.0);
    }

    #[test]
    fn relative_error_basic() {
        assert!((relative_error(1.01, 1.0) - 0.01).abs() < 1e-12);
        assert_eq!(relative_error(5.0, 0.0), 5.0 / 1e-30);
    }

    #[test]
    fn rdf_of_ideal_gas_is_one() {
        // uniform random-ish fill → g(r) ≈ 1 away from r = 0
        use crate::workload::{Placement, WorkloadSpec};
        let sys = WorkloadSpec {
            space: SimulationSpace::cubic(4),
            per_cell: 8,
            placement: Placement::JitteredLattice { jitter: 0.12 },
            temperature_k: 0.0,
            seed: 9,
            element: Element::Na,
        }
        .generate();
        let g = radial_distribution(&sys, 1.5, 15, None);
        // beyond the first couple of shells the lattice-origin structure
        // washes out; check the average over the tail is near 1
        let tail: f64 = g[8..].iter().map(|(_, v)| v).sum::<f64>() / (g.len() - 8) as f64;
        assert!((tail - 1.0).abs() < 0.25, "tail g(r) = {tail}");
    }

    #[test]
    fn rdf_species_selection() {
        use crate::vec3::Vec3 as V;
        let mut sys = ParticleSystem::new(SimulationSpace::cubic(3), UnitSystem::PAPER);
        sys.push(Element::Na, V::new(0.5, 0.5, 0.5), V::ZERO);
        sys.push(Element::Ar, V::new(0.9, 0.5, 0.5), V::ZERO);
        sys.push(Element::Ar, V::new(1.3, 0.5, 0.5), V::ZERO);
        let g = radial_distribution(&sys, 1.0, 10, Some((Element::Na, Element::Ar)));
        let hits: f64 = g.iter().map(|(_, v)| v).sum();
        assert!(hits > 0.0, "Na-Ar pairs must register");
    }
}
