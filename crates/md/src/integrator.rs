//! Motion-update integrators (paper Eqs. 4–6).
//!
//! The paper's Motion Update unit converts forces into velocity
//! differences and integrates "with Verlet integration" (Fig. 4, Eqs. 4–6).
//! Two discretizations are provided:
//!
//! * [`IntegratorKind::Leapfrog`] — the single-pass kick-then-drift form
//!   the hardware MU implements: it needs only the force just produced by
//!   the evaluation phase, current velocity, and current position, which
//!   is exactly the MU's input set (Fig. 5). This is the integrator used
//!   by both the FASDA functional model and the Fig. 19 reference so that
//!   the energy comparison isolates *arithmetic* differences.
//! * [`IntegratorKind::VelocityVerlet`] — the textbook two-half-kick form
//!   of Eqs. 4–6 for software use.

use crate::element::Element;
use crate::system::ParticleSystem;
use crate::units::UnitSystem;
use crate::vec3::Vec3;
use serde::{Deserialize, Serialize};

/// Which Verlet discretization to use.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum IntegratorKind {
    /// Kick-drift leapfrog: `v += a·dt; x += v·dt` (velocities live at
    /// half steps).
    Leapfrog,
    /// Velocity Verlet: half-kick, drift, (force), half-kick.
    VelocityVerlet,
}

/// Integrator state: timestep and scheme.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct Integrator {
    /// Timestep in femtoseconds (paper: 2 fs).
    pub dt_fs: f64,
    /// Discretization.
    pub kind: IntegratorKind,
}

impl Integrator {
    /// The paper's 2 fs leapfrog setup.
    pub const PAPER: Integrator = Integrator {
        dt_fs: 2.0,
        kind: IntegratorKind::Leapfrog,
    };

    /// Acceleration of one particle from its current force,
    /// cells/fs².
    #[inline]
    pub fn acceleration(units: &UnitSystem, force: Vec3, element: Element) -> Vec3 {
        force * (units.acc_factor() / element.mass())
    }

    /// Leapfrog full step (call after a force evaluation): kick velocities
    /// by `a·dt`, drift positions by `v·dt`, wrap into the box.
    pub fn leapfrog_step(&self, sys: &mut ParticleSystem) {
        let dt = self.dt_fs;
        for i in 0..sys.len() {
            let a = Self::acceleration(&sys.units, sys.force[i], sys.element[i]);
            sys.vel[i] += a * dt;
            sys.pos[i] = sys.space.wrap_pos(sys.pos[i] + sys.vel[i] * dt);
        }
    }

    /// Velocity-Verlet first half: half-kick with current forces, drift.
    pub fn vv_first_half(&self, sys: &mut ParticleSystem) {
        let dt = self.dt_fs;
        for i in 0..sys.len() {
            let a = Self::acceleration(&sys.units, sys.force[i], sys.element[i]);
            sys.vel[i] += a * (dt / 2.0);
            sys.pos[i] = sys.space.wrap_pos(sys.pos[i] + sys.vel[i] * dt);
        }
    }

    /// Velocity-Verlet second half: half-kick with the *new* forces.
    pub fn vv_second_half(&self, sys: &mut ParticleSystem) {
        let dt = self.dt_fs;
        for i in 0..sys.len() {
            let a = Self::acceleration(&sys.units, sys.force[i], sys.element[i]);
            sys.vel[i] += a * (dt / 2.0);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::SimulationSpace;

    fn free_particle_system(v: Vec3) -> ParticleSystem {
        let mut sys = ParticleSystem::new(SimulationSpace::cubic(3), UnitSystem::PAPER);
        sys.push(Element::Na, Vec3::splat(1.5), v);
        sys
    }

    #[test]
    fn free_particle_moves_linearly() {
        let mut sys = free_particle_system(Vec3::new(0.01, 0.0, 0.0));
        let integ = Integrator::PAPER;
        for _ in 0..10 {
            integ.leapfrog_step(&mut sys);
        }
        // 10 steps × 2 fs × 0.01 cells/fs = 0.2 cells
        assert!((sys.pos[0].x - 1.7).abs() < 1e-12);
        assert_eq!(sys.vel[0], Vec3::new(0.01, 0.0, 0.0));
    }

    #[test]
    fn drift_wraps_periodically() {
        let mut sys = free_particle_system(Vec3::new(0.5, 0.0, 0.0));
        Integrator::PAPER.leapfrog_step(&mut sys);
        // 1.5 + 1.0 = 2.5, in box
        assert!((sys.pos[0].x - 2.5).abs() < 1e-12);
        Integrator::PAPER.leapfrog_step(&mut sys);
        // 3.5 wraps to 0.5
        assert!((sys.pos[0].x - 0.5).abs() < 1e-12);
    }

    #[test]
    fn constant_force_kicks_velocity() {
        let mut sys = free_particle_system(Vec3::ZERO);
        sys.force[0] = Vec3::new(1.0, 0.0, 0.0); // kcal/mol/cell
        let integ = Integrator::PAPER;
        integ.leapfrog_step(&mut sys);
        let a = Integrator::acceleration(&sys.units, Vec3::new(1.0, 0.0, 0.0), Element::Na);
        assert!((sys.vel[0].x - a.x * 2.0).abs() < 1e-18);
    }

    #[test]
    fn vv_halves_compose_to_full_kick() {
        let mut sys = free_particle_system(Vec3::ZERO);
        sys.force[0] = Vec3::new(0.5, -0.25, 1.0);
        let integ = Integrator {
            dt_fs: 2.0,
            kind: IntegratorKind::VelocityVerlet,
        };
        integ.vv_first_half(&mut sys);
        // force unchanged between halves (no interactions here)
        integ.vv_second_half(&mut sys);
        let a = Integrator::acceleration(&sys.units, Vec3::new(0.5, -0.25, 1.0), Element::Na);
        assert!(((sys.vel[0] - a * 2.0).max_abs()) < 1e-18);
    }
}
