//! Cell lists and the half-shell neighbour mapping (paper §2.2, Fig. 2).
//!
//! Particles are binned into cubic cells of edge `Rc = 1`. With Newton's
//! third law applied, a home cell's particles need to be paired only with
//! the **13** neighbour cells in the positive direction (the *half-shell
//! method*, \[56\]) plus the home cell's own internal `i < j` pairs; the
//! other 13 neighbours will send *their* particles to the home cell.
//! Every pair inside the 27-cell neighbourhood is therefore evaluated
//! exactly once — an invariant property-tested in `tests/`.

use crate::space::{CellCoord, CellId, SimulationSpace};
use crate::system::ParticleSystem;

/// The 13 positive-direction ("half-shell") neighbour offsets: those
/// `(dx,dy,dz) ∈ {-1,0,1}³` that are lexicographically greater than
/// `(0,0,0)`.
pub const HALF_SHELL_OFFSETS: [(i32, i32, i32); 13] = [
    (0, 0, 1),
    (0, 1, -1),
    (0, 1, 0),
    (0, 1, 1),
    (1, -1, -1),
    (1, -1, 0),
    (1, -1, 1),
    (1, 0, -1),
    (1, 0, 0),
    (1, 0, 1),
    (1, 1, -1),
    (1, 1, 0),
    (1, 1, 1),
];

/// All 26 neighbour offsets.
pub const NEIGHBOR_OFFSETS: [(i32, i32, i32); 26] = [
    (-1, -1, -1),
    (-1, -1, 0),
    (-1, -1, 1),
    (-1, 0, -1),
    (-1, 0, 0),
    (-1, 0, 1),
    (-1, 1, -1),
    (-1, 1, 0),
    (-1, 1, 1),
    (0, -1, -1),
    (0, -1, 0),
    (0, -1, 1),
    (0, 0, -1),
    (0, 0, 1),
    (0, 1, -1),
    (0, 1, 0),
    (0, 1, 1),
    (1, -1, -1),
    (1, -1, 0),
    (1, -1, 1),
    (1, 0, -1),
    (1, 0, 0),
    (1, 0, 1),
    (1, 1, -1),
    (1, 1, 0),
    (1, 1, 1),
];

/// Particle indices binned by cell (the software analogue of the
/// per-cell "distinct memory domains" of §2.2).
#[derive(Clone, Debug)]
pub struct CellList {
    space: SimulationSpace,
    cells: Vec<Vec<u32>>,
}

impl CellList {
    /// Build an empty list for `space`.
    pub fn new(space: SimulationSpace) -> Self {
        CellList {
            space,
            cells: vec![Vec::new(); space.num_cells()],
        }
    }

    /// Build and populate from a system.
    pub fn build(system: &ParticleSystem) -> Self {
        let mut cl = CellList::new(system.space);
        cl.rebuild(system);
        cl
    }

    /// Re-bin all particles. In FPGA implementations of RL the lists are
    /// recomputed every timestep (§2.2); we do the same.
    pub fn rebuild(&mut self, system: &ParticleSystem) {
        for c in &mut self.cells {
            c.clear();
        }
        for (i, p) in system.pos.iter().enumerate() {
            let cid = self.space.cell_id(self.space.cell_of(*p));
            self.cells[cid as usize].push(i as u32);
        }
    }

    /// Particle indices in one cell.
    #[inline]
    pub fn cell(&self, id: CellId) -> &[u32] {
        &self.cells[id as usize]
    }

    /// Number of cells.
    #[inline]
    pub fn num_cells(&self) -> usize {
        self.cells.len()
    }

    /// Total particles across all cells.
    pub fn total(&self) -> usize {
        self.cells.iter().map(Vec::len).sum()
    }

    /// Occupancy of the fullest cell.
    pub fn max_occupancy(&self) -> usize {
        self.cells.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// Visit every candidate pair exactly once using the half-shell
    /// mapping: internal `i < j` pairs of each cell, plus all pairs
    /// between each cell and its 13 positive neighbours. No distance
    /// filtering is applied — that is the caller's (the filter's) job.
    pub fn for_each_halfshell_pair(&self, mut f: impl FnMut(u32, u32)) {
        for home in self.space.iter_cells() {
            let hid = self.space.cell_id(home);
            let hp = &self.cells[hid as usize];
            // home-cell internal pairs
            for (a, &i) in hp.iter().enumerate() {
                for &j in &hp[a + 1..] {
                    f(i, j);
                }
            }
            // half-shell neighbours
            for off in HALF_SHELL_OFFSETS {
                let nb = self.space.wrap_coord(home.offset(off));
                let nid = self.space.cell_id(nb);
                debug_assert_ne!(nid, hid, "D >= 3 guarantees distinct neighbours");
                for &i in hp {
                    for &j in &self.cells[nid as usize] {
                        f(i, j);
                    }
                }
            }
        }
    }

    /// The neighbour cell IDs a home cell's particles must be broadcast
    /// to (its half-shell destinations), in ring-travel order.
    pub fn halfshell_destinations(&self, home: CellCoord) -> Vec<CellId> {
        let mut out = [0 as CellId; 13];
        self.halfshell_destinations_into(home, &mut out);
        out.to_vec()
    }

    /// Allocation-free variant of [`CellList::halfshell_destinations`]:
    /// writes the 13 destination cell IDs into `out` in ring-travel
    /// order.
    pub fn halfshell_destinations_into(&self, home: CellCoord, out: &mut [CellId; 13]) {
        for (slot, &off) in out.iter_mut().zip(HALF_SHELL_OFFSETS.iter()) {
            *slot = self.space.cell_id(self.space.wrap_coord(home.offset(off)));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::element::Element;
    use crate::units::UnitSystem;
    use crate::vec3::Vec3;
    use std::collections::HashSet;

    #[test]
    fn half_shell_is_13_lexicographically_positive() {
        assert_eq!(HALF_SHELL_OFFSETS.len(), 13);
        for &(x, y, z) in &HALF_SHELL_OFFSETS {
            assert!((x, y, z) > (0, 0, 0), "offset ({x},{y},{z}) not positive");
        }
        // half-shell ∪ mirrored half-shell = all 26 neighbours
        let mut all: HashSet<(i32, i32, i32)> = HALF_SHELL_OFFSETS.iter().copied().collect();
        all.extend(HALF_SHELL_OFFSETS.iter().map(|&(x, y, z)| (-x, -y, -z)));
        let full: HashSet<_> = NEIGHBOR_OFFSETS.iter().copied().collect();
        assert_eq!(all, full);
    }

    fn three_cube_system(n_per_cell: usize) -> ParticleSystem {
        let mut sys = ParticleSystem::new(SimulationSpace::cubic(3), UnitSystem::PAPER);
        let mut k = 0u32;
        for cell in sys.space.iter_cells().collect::<Vec<_>>() {
            for i in 0..n_per_cell {
                let frac = (i as f64 + 0.5) / n_per_cell as f64;
                let p = Vec3::new(
                    cell.x as f64 + frac,
                    cell.y as f64 + 0.3,
                    cell.z as f64 + 0.7,
                );
                sys.push(Element::Na, p, Vec3::ZERO);
                k += 1;
            }
        }
        assert_eq!(k as usize, sys.len());
        sys
    }

    #[test]
    fn rebuild_bins_every_particle() {
        let sys = three_cube_system(4);
        let cl = CellList::build(&sys);
        assert_eq!(cl.total(), sys.len());
        assert_eq!(cl.max_occupancy(), 4);
        for id in 0..cl.num_cells() as u32 {
            assert_eq!(cl.cell(id).len(), 4);
        }
    }

    #[test]
    fn halfshell_pairs_unique_and_complete() {
        // In a 3³ box every cell pair is adjacent, so the half-shell sweep
        // must produce every particle pair exactly once.
        let sys = three_cube_system(2);
        let cl = CellList::build(&sys);
        let mut seen = HashSet::new();
        cl.for_each_halfshell_pair(|i, j| {
            let key = (i.min(j), i.max(j));
            assert!(seen.insert(key), "pair {key:?} visited twice");
        });
        let n = sys.len();
        assert_eq!(seen.len(), n * (n - 1) / 2);
    }

    #[test]
    fn destinations_are_13_distinct_cells() {
        let sys = three_cube_system(1);
        let cl = CellList::build(&sys);
        for c in sys.space.iter_cells() {
            let d = cl.halfshell_destinations(c);
            assert_eq!(d.len(), 13);
            let mut fixed = [0; 13];
            cl.halfshell_destinations_into(c, &mut fixed);
            assert_eq!(d, fixed.to_vec(), "into-variant must agree");
            let set: HashSet<_> = d.iter().collect();
            assert_eq!(set.len(), 13, "duplicate destination for {c:?}");
            assert!(!set.contains(&sys.space.cell_id(c)));
        }
    }
}
