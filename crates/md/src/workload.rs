//! Workload generation — the paper's custom dataset (§5.1, artifact
//! appendix).
//!
//! "We used a custom dataset that involves the initialization of 64
//! randomly distributed sodium particles in each cell, while ensuring that
//! none of the particles are too close to be excluded." The artifact
//! generates these as PDB files of neutral sodium in vacuum.
//!
//! Two placement strategies are offered:
//!
//! * [`Placement::JitteredLattice`] — a 4×4×4 sub-lattice per cell (for 64
//!   per cell) with bounded random jitter. Guarantees the minimum
//!   separation by construction and is O(N); the default.
//! * [`Placement::Rejection`] — uniform random placement with
//!   minimum-separation rejection, closer to the artifact's literal
//!   "randomly distributed" but O(N·m) and unable to reach high densities.

use crate::element::Element;
use crate::space::SimulationSpace;
use crate::system::ParticleSystem;
use crate::units::UnitSystem;
use crate::vec3::Vec3;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// How particles are placed inside each cell.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum Placement {
    /// Per-cell sub-lattice with uniform jitter of ± `jitter` cells per
    /// axis. The sub-lattice pitch for `k³` particles per cell is `1/k`,
    /// so the worst-case pair separation is `1/k − 2·jitter`.
    JitteredLattice {
        /// Jitter half-width in cell units.
        jitter: f64,
    },
    /// Uniform random placement, rejecting candidates closer than
    /// `min_sep` (cell units) to any accepted particle in the same or
    /// adjacent cells.
    Rejection {
        /// Minimum pair separation in cell units.
        min_sep: f64,
    },
}

/// Specification of a generated workload.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct WorkloadSpec {
    /// Simulation space in cells.
    pub space: SimulationSpace,
    /// Particles per cell (the paper uses 64).
    pub per_cell: u32,
    /// Placement strategy.
    pub placement: Placement,
    /// Maxwell–Boltzmann initial temperature (K); 0 for a cold start.
    pub temperature_k: f64,
    /// RNG seed — identical specs generate identical systems.
    pub seed: u64,
    /// Species (the paper uses sodium).
    pub element: Element,
}

impl WorkloadSpec {
    /// The paper's configuration over a given space: 64 Na per cell.
    pub fn paper(space: SimulationSpace, seed: u64) -> Self {
        WorkloadSpec {
            space,
            per_cell: 64,
            placement: Placement::JitteredLattice { jitter: 0.04 },
            temperature_k: 300.0,
            seed,
            element: Element::Na,
        }
    }

    /// Generate the particle system.
    pub fn generate(&self) -> ParticleSystem {
        let mut sys = ParticleSystem::new(self.space, UnitSystem::PAPER);
        let mut rng = SmallRng::seed_from_u64(self.seed);
        match self.placement {
            Placement::JitteredLattice { jitter } => {
                self.place_lattice(&mut sys, &mut rng, jitter)
            }
            Placement::Rejection { min_sep } => self.place_rejection(&mut sys, &mut rng, min_sep),
        }
        if self.temperature_k > 0.0 {
            self.thermalize(&mut sys, &mut rng);
        }
        debug_assert!(sys.validate().is_ok());
        sys
    }

    fn place_lattice(&self, sys: &mut ParticleSystem, rng: &mut SmallRng, jitter: f64) {
        // smallest k with k³ >= per_cell
        let k = (self.per_cell as f64).cbrt().ceil() as u32;
        let pitch = 1.0 / k as f64;
        assert!(
            jitter * 2.0 < pitch,
            "jitter {jitter} too large for lattice pitch {pitch}"
        );
        for cell in self.space.iter_cells().collect::<Vec<_>>() {
            let base = Vec3::new(cell.x as f64, cell.y as f64, cell.z as f64);
            let mut placed = 0;
            'sites: for ix in 0..k {
                for iy in 0..k {
                    for iz in 0..k {
                        if placed == self.per_cell {
                            break 'sites;
                        }
                        let site = Vec3::new(
                            (ix as f64 + 0.5) * pitch,
                            (iy as f64 + 0.5) * pitch,
                            (iz as f64 + 0.5) * pitch,
                        );
                        let j = Vec3::new(
                            rng.gen_range(-jitter..=jitter),
                            rng.gen_range(-jitter..=jitter),
                            rng.gen_range(-jitter..=jitter),
                        );
                        sys.push(self.element, base + site + j, Vec3::ZERO);
                        placed += 1;
                    }
                }
            }
        }
    }

    fn place_rejection(&self, sys: &mut ParticleSystem, rng: &mut SmallRng, min_sep: f64) {
        let min_sep_sq = min_sep * min_sep;
        const MAX_TRIES: u32 = 10_000;
        for cell in self.space.iter_cells().collect::<Vec<_>>() {
            let base = Vec3::new(cell.x as f64, cell.y as f64, cell.z as f64);
            for _ in 0..self.per_cell {
                let mut accepted = false;
                for _ in 0..MAX_TRIES {
                    let p = base
                        + Vec3::new(rng.gen::<f64>(), rng.gen::<f64>(), rng.gen::<f64>());
                    // check against all existing (small systems only; the
                    // lattice strategy covers production sizes)
                    let ok = sys
                        .pos
                        .iter()
                        .all(|q| sys.space.min_image(p, *q).norm_sq() >= min_sep_sq);
                    if ok {
                        sys.push(self.element, p, Vec3::ZERO);
                        accepted = true;
                        break;
                    }
                }
                assert!(
                    accepted,
                    "rejection sampling failed: density too high for min_sep {min_sep}"
                );
            }
        }
    }

    fn thermalize(&self, sys: &mut ParticleSystem, rng: &mut SmallRng) {
        // Box–Muller MB velocities, then remove the centre-of-mass drift.
        for i in 0..sys.len() {
            let sigma = sys.units.mb_sigma(self.temperature_k, sys.element[i].mass());
            let mut gauss = || {
                let u1: f64 = rng.gen_range(1e-12..1.0);
                let u2: f64 = rng.gen();
                (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
            };
            sys.vel[i] = Vec3::new(gauss() * sigma, gauss() * sigma, gauss() * sigma);
        }
        let total_mass: f64 = sys.element.iter().map(|e| e.mass()).sum();
        let vcm = sys.momentum() / total_mass;
        for v in &mut sys.vel {
            *v -= vcm;
        }
    }
}

/// Minimum pair separation present in a system (cell units) — a
/// validation helper for generated workloads. O(N²); test-sized systems
/// only.
pub fn min_separation(sys: &ParticleSystem) -> f64 {
    let mut best = f64::INFINITY;
    for i in 0..sys.len() {
        for j in (i + 1)..sys.len() {
            let d = sys.space.min_image(sys.pos[i], sys.pos[j]).norm_sq();
            best = best.min(d);
        }
    }
    best.sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_spec_counts() {
        let sys = WorkloadSpec::paper(SimulationSpace::cubic(3), 1).generate();
        assert_eq!(sys.len(), 27 * 64);
        assert!(sys.validate().is_ok());
    }

    #[test]
    fn lattice_respects_min_separation() {
        let spec = WorkloadSpec {
            space: SimulationSpace::cubic(3),
            per_cell: 27,
            placement: Placement::JitteredLattice { jitter: 0.05 },
            temperature_k: 0.0,
            seed: 2,
            element: Element::Na,
        };
        let sys = spec.generate();
        // pitch 1/3, worst case 1/3 - 0.1
        assert!(min_separation(&sys) >= 1.0 / 3.0 - 0.1 - 1e-9);
    }

    #[test]
    fn rejection_respects_min_separation() {
        let spec = WorkloadSpec {
            space: SimulationSpace::cubic(3),
            per_cell: 4,
            placement: Placement::Rejection { min_sep: 0.25 },
            temperature_k: 0.0,
            seed: 3,
            element: Element::Na,
        };
        let sys = spec.generate();
        assert_eq!(sys.len(), 27 * 4);
        assert!(min_separation(&sys) >= 0.25);
    }

    #[test]
    fn deterministic_by_seed() {
        let a = WorkloadSpec::paper(SimulationSpace::cubic(3), 42).generate();
        let b = WorkloadSpec::paper(SimulationSpace::cubic(3), 42).generate();
        assert_eq!(a.pos, b.pos);
        assert_eq!(a.vel, b.vel);
        let c = WorkloadSpec::paper(SimulationSpace::cubic(3), 43).generate();
        assert_ne!(a.pos, c.pos);
    }

    #[test]
    fn thermalized_near_target_temperature() {
        let spec = WorkloadSpec::paper(SimulationSpace::cubic(4), 5);
        let sys = spec.generate();
        let t = crate::observables::temperature(&sys);
        // 4096 particles → few-% statistical spread
        assert!(
            (t - 300.0).abs() < 25.0,
            "temperature {t} K far from 300 K"
        );
        // COM momentum removed
        assert!(sys.momentum().max_abs() < 1e-9);
    }

    #[test]
    fn cold_start_zero_velocity() {
        let spec = WorkloadSpec {
            temperature_k: 0.0,
            ..WorkloadSpec::paper(SimulationSpace::cubic(3), 1)
        };
        let sys = spec.generate();
        assert!(sys.vel.iter().all(|v| *v == Vec3::ZERO));
    }
}
