//! # fasda-md
//!
//! Molecular-dynamics physics substrate for the FASDA reproduction.
//!
//! This crate is everything *below* the accelerator: the physics
//! (Lennard-Jones potential and force, paper Eqs. 1–2), the geometry
//! (periodic cell space with the paper's Eq. 7 cell indexing and the
//! half-shell neighbour mapping of Fig. 2), the integrators (Eqs. 4–6),
//! double-precision reference engines that serve as the ground truth for
//! every accelerator-correctness test and for the Fig. 19 energy-
//! conservation experiment, and the workload generator that reproduces the
//! paper's custom dataset (64 randomly-distributed sodium atoms per cell,
//! §5.1).
//!
//! Unit convention (see [`units`]): lengths in *cells* (1 cell = the cutoff
//! radius `Rc`, 8.5 Å in the paper's experiments), time in femtoseconds,
//! mass in amu, energy in kcal/mol. Velocities are cells/fs and forces
//! kcal/mol/cell.

pub mod celllist;
pub mod element;
pub mod engine;
pub mod ewald;
pub mod full;
pub mod ewald_recip;
pub mod fft;
pub mod pme;
pub mod integrator;
pub mod observables;
pub mod pdb;
pub mod space;
pub mod system;
pub mod thermostat;
pub mod trajectory;
pub mod units;
pub mod vec3;
pub mod workload;

pub use celllist::{CellList, HALF_SHELL_OFFSETS, NEIGHBOR_OFFSETS};
pub use element::{Element, PairTable};
pub use engine::{CellListEngine, DirectEngine, ForceEngine};
pub use ewald::EwaldParams;
pub use integrator::{Integrator, IntegratorKind};
pub use space::{CellCoord, CellId, SimulationSpace};
pub use system::ParticleSystem;
pub use units::UnitSystem;
pub use vec3::Vec3;
pub use workload::{Placement, WorkloadSpec};
