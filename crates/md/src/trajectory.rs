//! Trajectory recording and transport analysis.
//!
//! Long-timescale properties — the reason FASDA exists — are extracted
//! from trajectories: diffusion constants from mean-squared displacement,
//! structure from frame dumps. Positions in a periodic box wrap, so MSD
//! needs *unwrapped* coordinates: [`Unwrapper`] tracks boundary crossings
//! frame to frame (valid whenever no particle moves more than half a box
//! per sampling interval, which holds by orders of magnitude at MD
//! timesteps).

use crate::system::ParticleSystem;
use crate::vec3::Vec3;
use std::fmt::Write as _;

/// Tracks unwrapped coordinates across periodic boundaries.
#[derive(Clone, Debug)]
pub struct Unwrapper {
    origin: Vec<Vec3>,
    prev: Vec<Vec3>,
    unwrapped: Vec<Vec3>,
}

impl Unwrapper {
    /// Start tracking from the system's current positions.
    pub fn new(sys: &ParticleSystem) -> Self {
        Unwrapper {
            origin: sys.pos.clone(),
            prev: sys.pos.clone(),
            unwrapped: sys.pos.clone(),
        }
    }

    /// Particles tracked.
    pub fn len(&self) -> usize {
        self.origin.len()
    }

    /// True when tracking nothing.
    pub fn is_empty(&self) -> bool {
        self.origin.is_empty()
    }

    /// Fold in the next frame (positions must belong to the same
    /// particles in the same order).
    pub fn update(&mut self, sys: &ParticleSystem) {
        assert_eq!(sys.len(), self.prev.len(), "frame size changed");
        for i in 0..sys.len() {
            // displacement by minimum image — correct when no particle
            // travels more than half a box between frames
            let d = sys.space.min_image(sys.pos[i], self.prev[i]);
            self.unwrapped[i] += d;
            self.prev[i] = sys.pos[i];
        }
    }

    /// Mean-squared displacement from the tracking origin, cell² units.
    pub fn msd(&self) -> f64 {
        if self.is_empty() {
            return 0.0;
        }
        self.unwrapped
            .iter()
            .zip(&self.origin)
            .map(|(u, o)| (*u - *o).norm_sq())
            .sum::<f64>()
            / self.len() as f64
    }

    /// Diffusion coefficient estimate from the Einstein relation
    /// `D = MSD / (6·t)`, in cell²/fs, for elapsed time `t_fs`.
    pub fn diffusion(&self, t_fs: f64) -> f64 {
        if t_fs <= 0.0 {
            return 0.0;
        }
        self.msd() / (6.0 * t_fs)
    }
}

/// Serialize one frame in XYZ format (Å), appendable into a multi-frame
/// trajectory file readable by VMD/OVITO.
pub fn to_xyz_frame(sys: &ParticleSystem, comment: &str) -> String {
    let mut out = String::new();
    writeln!(out, "{}", sys.len()).unwrap();
    writeln!(out, "{}", comment.replace('\n', " ")).unwrap();
    let u = sys.units;
    for i in 0..sys.len() {
        let p = sys.pos[i];
        writeln!(
            out,
            "{} {:.4} {:.4} {:.4}",
            sys.element[i].symbol(),
            u.len_to_angstrom(p.x),
            u.len_to_angstrom(p.y),
            u.len_to_angstrom(p.z)
        )
        .unwrap();
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::element::Element;
    use crate::space::SimulationSpace;
    use crate::units::UnitSystem;

    fn one_particle_at(x: f64) -> ParticleSystem {
        let mut sys = ParticleSystem::new(SimulationSpace::cubic(3), UnitSystem::PAPER);
        sys.push(Element::Na, Vec3::new(x, 0.5, 0.5), Vec3::ZERO);
        sys
    }

    #[test]
    fn unwrap_through_boundary() {
        let mut sys = one_particle_at(2.9);
        let mut uw = Unwrapper::new(&sys);
        // particle drifts +0.2 per frame, wrapping at 3.0
        for k in 1..=10 {
            let x = (2.9 + 0.2 * k as f64) % 3.0;
            sys.pos[0] = Vec3::new(x, 0.5, 0.5);
            uw.update(&sys);
        }
        // net displacement = 2.0 cells, MSD = 4.0 cell²
        assert!((uw.msd() - 4.0).abs() < 1e-9, "msd = {}", uw.msd());
    }

    #[test]
    fn stationary_particle_has_zero_msd() {
        let sys = one_particle_at(1.0);
        let mut uw = Unwrapper::new(&sys);
        for _ in 0..5 {
            uw.update(&sys);
        }
        assert_eq!(uw.msd(), 0.0);
        assert_eq!(uw.diffusion(100.0), 0.0);
    }

    #[test]
    fn diffusion_einstein_relation() {
        let mut sys = one_particle_at(0.1);
        let mut uw = Unwrapper::new(&sys);
        sys.pos[0] = Vec3::new(0.4, 0.5, 0.5); // Δ = 0.3 cells
        uw.update(&sys);
        let d = uw.diffusion(10.0); // MSD 0.09 / 60
        assert!((d - 0.09 / 60.0).abs() < 1e-12);
    }

    #[test]
    fn xyz_frame_format() {
        let sys = one_particle_at(1.0);
        let frame = to_xyz_frame(&sys, "frame 0");
        let lines: Vec<&str> = frame.lines().collect();
        assert_eq!(lines[0], "1");
        assert_eq!(lines[1], "frame 0");
        assert!(lines[2].starts_with("NA "));
        // 1.0 cells = 8.5 Å
        assert!(lines[2].contains("8.5000"));
    }
}
