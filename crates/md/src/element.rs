//! Element types and Lennard-Jones parameter tables.
//!
//! The paper's force pipeline carries an element type `e` with every
//! position and uses it to index "a table-lookup to retrieve pre-calculated
//! coefficients for ε and σ" (§3.4). [`PairTable`] is that table: for each
//! ordered element pair it stores the four combined coefficients needed by
//! the force (Eq. 2) and potential (Eq. 1) kernels, with lengths already
//! converted to cell units:
//!
//! ```text
//! F(r)·r̂·r = (c14·r⁻¹⁴ − c8·r⁻⁸)·Δr   with c14 = 48·ε·σ¹²,  c8 = 24·ε·σ⁶
//! V(r)      =  c12·r⁻¹² − c6·r⁻⁶       with c12 =  4·ε·σ¹²,  c6 =  4·ε·σ⁶
//! ```

use crate::units::UnitSystem;
use serde::{Deserialize, Serialize};

/// Chemical element of a particle.
///
/// The paper's dataset is neutral sodium in vacuum (§5.1 / artifact
/// appendix); the remaining entries exercise the generality of the
/// element-indexed coefficient lookup and are used by the mixed-species
/// example.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[repr(u8)]
pub enum Element {
    /// Neutral sodium — the paper's benchmark species.
    Na = 0,
    /// Argon — the classic LJ fluid.
    Ar = 1,
    /// United-atom methane-like carbon.
    C = 2,
    /// Water-like oxygen (LJ part of TIP3P).
    O = 3,
    /// Sodium cation (+1 e) — exercises the PME short-range path.
    NaPlus = 4,
    /// Chloride anion (−1 e).
    ClMinus = 5,
}

impl Element {
    /// All supported elements, in table order.
    pub const ALL: [Element; 6] = [
        Element::Na,
        Element::Ar,
        Element::C,
        Element::O,
        Element::NaPlus,
        Element::ClMinus,
    ];

    /// Number of element kinds (table dimension).
    pub const COUNT: usize = 6;

    /// Atomic mass in amu.
    #[inline]
    pub fn mass(self) -> f64 {
        match self {
            Element::Na => 22.989_769,
            Element::Ar => 39.948,
            Element::C => 12.011,
            Element::O => 15.999,
            Element::NaPlus => 22.989_769,
            Element::ClMinus => 35.45,
        }
    }

    /// Partial charge in elementary charges (for the real-space PME
    /// term; zero for the paper's neutral-sodium dataset).
    #[inline]
    pub fn charge(self) -> f64 {
        match self {
            Element::NaPlus => 1.0,
            Element::ClMinus => -1.0,
            _ => 0.0,
        }
    }

    /// LJ well depth ε in kcal/mol.
    ///
    /// Sodium uses the CHARMM neutral-Na parameters (ε = 0.0469 kcal/mol);
    /// argon the classic Rahman values; C/O generic force-field values.
    #[inline]
    pub fn epsilon(self) -> f64 {
        match self {
            Element::Na => 0.0469,
            Element::Ar => 0.2379,
            Element::C => 0.1094,
            Element::O => 0.1521,
            Element::NaPlus => 0.0469,
            Element::ClMinus => 0.15,
        }
    }

    /// LJ diameter σ in Å (`σ = 2·R_min/2 / 2^(1/6)`).
    #[inline]
    pub fn sigma_angstrom(self) -> f64 {
        match self {
            Element::Na => 2.429_9,
            Element::Ar => 3.405,
            Element::C => 3.399_7,
            Element::O => 3.150_6,
            Element::NaPlus => 2.429_9,
            Element::ClMinus => 4.044_7,
        }
    }

    /// Table index.
    #[inline]
    pub fn index(self) -> usize {
        self as usize
    }

    /// From table index.
    #[inline]
    pub fn from_index(i: usize) -> Option<Element> {
        Element::ALL.get(i).copied()
    }

    /// One-letter-ish PDB element symbol.
    pub fn symbol(self) -> &'static str {
        match self {
            Element::Na => "NA",
            Element::Ar => "AR",
            Element::C => "C",
            Element::O => "O",
            Element::NaPlus => "NA", // charge carried separately (PDB cols 79-80)
            Element::ClMinus => "CL",
        }
    }

    /// PDB charge field (columns 79-80), e.g. `1+`.
    pub fn pdb_charge(self) -> &'static str {
        match self {
            Element::NaPlus => "1+",
            Element::ClMinus => "1-",
            _ => "  ",
        }
    }

    /// Resolve a PDB element symbol plus charge field.
    pub fn from_symbol_charge(sym: &str, charge: &str) -> Option<Element> {
        match (sym.trim().to_ascii_uppercase().as_str(), charge.trim()) {
            ("NA", "1+") => Some(Element::NaPlus),
            ("CL", "1-") | ("CL", "") => Some(Element::ClMinus),
            (s, _) => Element::from_symbol(s),
        }
    }

    /// Parse a PDB element symbol.
    pub fn from_symbol(s: &str) -> Option<Element> {
        match s.trim().to_ascii_uppercase().as_str() {
            "NA" => Some(Element::Na),
            "AR" => Some(Element::Ar),
            "C" => Some(Element::C),
            "O" => Some(Element::O),
            _ => None,
        }
    }
}

impl fasda_ckpt::Persist for Element {
    fn save(&self, w: &mut fasda_ckpt::Writer) {
        w.put_u8(self.index() as u8);
    }
    fn load(r: &mut fasda_ckpt::Reader<'_>) -> Result<Self, fasda_ckpt::CkptError> {
        let i = r.get_u8()?;
        Element::from_index(i as usize)
            .ok_or_else(|| r.malformed(format!("invalid element index {i}")))
    }
}

/// Per-element-pair combined LJ coefficients in cell units.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct PairCoeffs {
    /// `48·ε·σ¹²` — repulsive force coefficient (multiplies `r⁻¹⁴`).
    pub c14: f64,
    /// `24·ε·σ⁶` — attractive force coefficient (multiplies `r⁻⁸`).
    pub c8: f64,
    /// `4·ε·σ¹²` — repulsive potential coefficient (multiplies `r⁻¹²`).
    pub c12: f64,
    /// `4·ε·σ⁶` — attractive potential coefficient (multiplies `r⁻⁶`).
    pub c6: f64,
}

/// The element-pair coefficient lookup table (paper §3.4).
///
/// Cross-species parameters follow Lorentz–Berthelot mixing:
/// `σ_ij = (σ_i + σ_j)/2`, `ε_ij = √(ε_i ε_j)`.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct PairTable {
    units: UnitSystem,
    coeffs: [[PairCoeffs; Element::COUNT]; Element::COUNT],
}

impl PairTable {
    /// Build the table for a given unit system (σ is converted from Å to
    /// cells here, so all downstream force math is in cell units).
    pub fn new(units: UnitSystem) -> Self {
        let mut coeffs = [[PairCoeffs::default(); Element::COUNT]; Element::COUNT];
        for ei in Element::ALL {
            for ej in Element::ALL {
                let sigma = units.len_to_cells((ei.sigma_angstrom() + ej.sigma_angstrom()) / 2.0);
                let eps = (ei.epsilon() * ej.epsilon()).sqrt();
                let s6 = sigma.powi(6);
                let s12 = s6 * s6;
                coeffs[ei.index()][ej.index()] = PairCoeffs {
                    c14: 48.0 * eps * s12,
                    c8: 24.0 * eps * s6,
                    c12: 4.0 * eps * s12,
                    c6: 4.0 * eps * s6,
                };
            }
        }
        PairTable { units, coeffs }
    }

    /// The unit system the table was built for.
    #[inline]
    pub fn units(&self) -> UnitSystem {
        self.units
    }

    /// Combined coefficients for an element pair.
    #[inline]
    pub fn get(&self, a: Element, b: Element) -> PairCoeffs {
        self.coeffs[a.index()][b.index()]
    }

    /// Exact LJ potential (Eq. 1) for a pair at squared distance `r2`
    /// (cell units), kcal/mol. No cutoff applied.
    #[inline]
    pub fn potential(&self, a: Element, b: Element, r2: f64) -> f64 {
        let c = self.get(a, b);
        let inv2 = 1.0 / r2;
        let inv6 = inv2 * inv2 * inv2;
        c.c12 * inv6 * inv6 - c.c6 * inv6
    }

    /// Exact LJ force scale (Eq. 2): the scalar `s` such that the force on
    /// particle *i* from *j* is `s · (r_i − r_j)`. Positive = repulsive.
    #[inline]
    pub fn force_scale(&self, a: Element, b: Element, r2: f64) -> f64 {
        let c = self.get(a, b);
        let inv2 = 1.0 / r2;
        let inv4 = inv2 * inv2;
        let inv8 = inv4 * inv4;
        let inv14 = inv8 * inv4 * inv2;
        c.c14 * inv14 - c.c8 * inv8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> PairTable {
        PairTable::new(UnitSystem::PAPER)
    }

    #[test]
    fn symmetric_coefficients() {
        let t = table();
        for a in Element::ALL {
            for b in Element::ALL {
                assert_eq!(t.get(a, b), t.get(b, a));
            }
        }
    }

    #[test]
    fn potential_zero_at_sigma() {
        let t = table();
        let sigma = UnitSystem::PAPER.len_to_cells(Element::Na.sigma_angstrom());
        let v = t.potential(Element::Na, Element::Na, sigma * sigma);
        assert!(v.abs() < 1e-12, "V(σ) = {v}");
    }

    #[test]
    fn potential_minimum_at_rmin() {
        // minimum at r = 2^(1/6) σ with depth -ε
        let t = table();
        let sigma = UnitSystem::PAPER.len_to_cells(Element::Na.sigma_angstrom());
        let rmin = sigma * 2.0f64.powf(1.0 / 6.0);
        let v = t.potential(Element::Na, Element::Na, rmin * rmin);
        assert!((v + Element::Na.epsilon()).abs() < 1e-12, "V(rmin) = {v}");
        // force is zero at the minimum
        let f = t.force_scale(Element::Na, Element::Na, rmin * rmin);
        assert!(f.abs() < 1e-9, "F(rmin) = {f}");
    }

    #[test]
    fn force_is_negative_gradient_of_potential() {
        let t = table();
        let (a, b) = (Element::Na, Element::Ar);
        for r in [0.3f64, 0.4, 0.5, 0.8, 0.95] {
            let h = 1e-6;
            let dv = (t.potential(a, b, (r + h) * (r + h)) - t.potential(a, b, (r - h) * (r - h)))
                / (2.0 * h);
            // F(r) along r̂ = -dV/dr; force_scale s satisfies F_vec = s·Δr so
            // |F| = s·r  →  s = -dV/dr / r
            let s = t.force_scale(a, b, r * r);
            let want = -dv / r;
            assert!(
                ((s - want) / want).abs() < 1e-5,
                "r={r}: s={s} want={want}"
            );
        }
    }

    #[test]
    fn mixing_rule_midpoint_sigma() {
        let t = table();
        let c_na_ar = t.get(Element::Na, Element::Ar);
        let sigma = UnitSystem::PAPER
            .len_to_cells((Element::Na.sigma_angstrom() + Element::Ar.sigma_angstrom()) / 2.0);
        let eps = (Element::Na.epsilon() * Element::Ar.epsilon()).sqrt();
        assert!((c_na_ar.c6 - 4.0 * eps * sigma.powi(6)).abs() < 1e-12);
    }

    #[test]
    fn element_symbols_roundtrip() {
        for e in Element::ALL {
            assert_eq!(Element::from_symbol_charge(e.symbol(), e.pdb_charge()), Some(e));
            assert_eq!(Element::from_index(e.index()), Some(e));
        }
        assert_eq!(Element::from_symbol("XX"), None);
        assert_eq!(Element::from_index(99), None);
    }

    #[test]
    fn charges() {
        assert_eq!(Element::Na.charge(), 0.0);
        assert_eq!(Element::NaPlus.charge(), 1.0);
        assert_eq!(Element::ClMinus.charge(), -1.0);
        // neutral pair: charge product zero everywhere in the paper's dataset
        let q: f64 = Element::ALL.iter().take(4).map(|e| e.charge().abs()).sum();
        assert_eq!(q, 0.0);
    }
}
