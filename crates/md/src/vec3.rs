//! Double-precision 3-vectors.

use serde::{Deserialize, Serialize};

/// A 3-component `f64` vector: positions (cells), velocities (cells/fs),
/// forces (kcal/mol/cell) throughout the reference path.
#[derive(Clone, Copy, Default, Debug, PartialEq, Serialize, Deserialize)]
pub struct Vec3 {
    pub x: f64,
    pub y: f64,
    pub z: f64,
}

impl Vec3 {
    /// Zero vector.
    pub const ZERO: Vec3 = Vec3 {
        x: 0.0,
        y: 0.0,
        z: 0.0,
    };

    /// Construct from components.
    #[inline]
    pub const fn new(x: f64, y: f64, z: f64) -> Self {
        Vec3 { x, y, z }
    }

    /// All components equal.
    #[inline]
    pub const fn splat(v: f64) -> Self {
        Vec3 { x: v, y: v, z: v }
    }

    /// Dot product.
    #[inline]
    pub fn dot(self, rhs: Vec3) -> f64 {
        self.x * rhs.x + self.y * rhs.y + self.z * rhs.z
    }

    /// Squared Euclidean norm.
    #[inline]
    pub fn norm_sq(self) -> f64 {
        self.dot(self)
    }

    /// Euclidean norm.
    #[inline]
    pub fn norm(self) -> f64 {
        self.norm_sq().sqrt()
    }

    /// Component array.
    #[inline]
    pub fn to_array(self) -> [f64; 3] {
        [self.x, self.y, self.z]
    }

    /// From component array.
    #[inline]
    pub fn from_array(a: [f64; 3]) -> Self {
        Vec3::new(a[0], a[1], a[2])
    }

    /// Componentwise absolute value.
    #[inline]
    pub fn abs(self) -> Vec3 {
        Vec3::new(self.x.abs(), self.y.abs(), self.z.abs())
    }

    /// Largest component magnitude.
    #[inline]
    pub fn max_abs(self) -> f64 {
        self.x.abs().max(self.y.abs()).max(self.z.abs())
    }
}

impl core::ops::Add for Vec3 {
    type Output = Vec3;
    #[inline]
    fn add(self, rhs: Vec3) -> Vec3 {
        Vec3::new(self.x + rhs.x, self.y + rhs.y, self.z + rhs.z)
    }
}

impl core::ops::Sub for Vec3 {
    type Output = Vec3;
    #[inline]
    fn sub(self, rhs: Vec3) -> Vec3 {
        Vec3::new(self.x - rhs.x, self.y - rhs.y, self.z - rhs.z)
    }
}

impl core::ops::Mul<f64> for Vec3 {
    type Output = Vec3;
    #[inline]
    fn mul(self, s: f64) -> Vec3 {
        Vec3::new(self.x * s, self.y * s, self.z * s)
    }
}

impl core::ops::Mul<Vec3> for f64 {
    type Output = Vec3;
    #[inline]
    fn mul(self, v: Vec3) -> Vec3 {
        v * self
    }
}

impl core::ops::Div<f64> for Vec3 {
    type Output = Vec3;
    #[inline]
    fn div(self, s: f64) -> Vec3 {
        Vec3::new(self.x / s, self.y / s, self.z / s)
    }
}

impl core::ops::Neg for Vec3 {
    type Output = Vec3;
    #[inline]
    fn neg(self) -> Vec3 {
        Vec3::new(-self.x, -self.y, -self.z)
    }
}

impl core::ops::AddAssign for Vec3 {
    #[inline]
    fn add_assign(&mut self, rhs: Vec3) {
        *self = *self + rhs;
    }
}

impl core::ops::SubAssign for Vec3 {
    #[inline]
    fn sub_assign(&mut self, rhs: Vec3) {
        *self = *self - rhs;
    }
}

impl core::iter::Sum for Vec3 {
    fn sum<I: Iterator<Item = Vec3>>(iter: I) -> Vec3 {
        iter.fold(Vec3::ZERO, |a, b| a + b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_ops() {
        let a = Vec3::new(1.0, 2.0, 3.0);
        let b = Vec3::new(4.0, 5.0, 6.0);
        assert_eq!(a + b, Vec3::new(5.0, 7.0, 9.0));
        assert_eq!(b - a, Vec3::splat(3.0));
        assert_eq!(a * 2.0, Vec3::new(2.0, 4.0, 6.0));
        assert_eq!(2.0 * a, a * 2.0);
        assert_eq!(a / 2.0, Vec3::new(0.5, 1.0, 1.5));
        assert_eq!(-a, Vec3::new(-1.0, -2.0, -3.0));
        assert_eq!(a.dot(b), 32.0);
        assert_eq!(a.norm_sq(), 14.0);
        assert!((a.norm() - 14.0f64.sqrt()).abs() < 1e-15);
    }

    #[test]
    fn sum_and_max_abs() {
        let vs = [Vec3::new(1.0, 0.0, -1.0), Vec3::new(-1.0, 2.0, 1.0)];
        let s: Vec3 = vs.iter().copied().sum();
        assert_eq!(s, Vec3::new(0.0, 2.0, 0.0));
        assert_eq!(Vec3::new(-5.0, 1.0, 3.0).max_abs(), 5.0);
    }
}
