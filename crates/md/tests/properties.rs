//! Property-based tests for the MD substrate invariants.

use fasda_md::celllist::CellList;
use fasda_md::element::{Element, PairTable};
use fasda_md::engine::{CellListEngine, DirectEngine, ForceEngine};
use fasda_md::space::{CellCoord, SimulationSpace};
use fasda_md::system::ParticleSystem;
use fasda_md::units::UnitSystem;
use fasda_md::vec3::Vec3;
use fasda_md::workload::{Placement, WorkloadSpec};
use proptest::prelude::*;
use std::collections::HashSet;

fn arb_space() -> impl Strategy<Value = SimulationSpace> {
    (3u32..6, 3u32..6, 3u32..6).prop_map(|(x, y, z)| SimulationSpace::new(x, y, z))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Eq. 7 cell IDs are a bijection over any space.
    #[test]
    fn cid_bijection(space in arb_space()) {
        let mut seen = HashSet::new();
        for c in space.iter_cells() {
            let id = space.cell_id(c);
            prop_assert!(seen.insert(id));
            prop_assert_eq!(space.cell_coord(id), c);
        }
        prop_assert_eq!(seen.len(), space.num_cells());
    }

    /// Minimum-image displacement never exceeds half the box per axis.
    #[test]
    fn min_image_bounded(
        space in arb_space(),
        ax in 0.0f64..6.0, ay in 0.0f64..6.0, az in 0.0f64..6.0,
        bx in 0.0f64..6.0, by in 0.0f64..6.0, bz in 0.0f64..6.0,
    ) {
        let a = space.wrap_pos(Vec3::new(ax, ay, az));
        let b = space.wrap_pos(Vec3::new(bx, by, bz));
        let d = space.min_image(a, b);
        let e = space.edges();
        prop_assert!(d.x >= -e.x / 2.0 && d.x < e.x / 2.0 + 1e-12);
        prop_assert!(d.y >= -e.y / 2.0 && d.y < e.y / 2.0 + 1e-12);
        prop_assert!(d.z >= -e.z / 2.0 && d.z < e.z / 2.0 + 1e-12);
    }

    /// The half-shell sweep covers every within-cutoff pair exactly once
    /// and never visits a pair twice, on arbitrary particle placements.
    #[test]
    fn halfshell_covers_cutoff_pairs(space in arb_space(), seed in 0u64..1000) {
        let spec = WorkloadSpec {
            space,
            per_cell: 3,
            placement: Placement::JitteredLattice { jitter: 0.12 },
            temperature_k: 0.0,
            seed,
            element: Element::Na,
        };
        let sys = spec.generate();
        let cl = CellList::build(&sys);
        let mut seen = HashSet::new();
        let mut dup = None;
        cl.for_each_halfshell_pair(|i, j| {
            let key = (i.min(j), i.max(j));
            if !seen.insert(key) {
                dup = Some(key);
            }
        });
        prop_assert!(dup.is_none(), "pair {dup:?} visited twice");
        // every pair with r < 1 must be among the candidates
        for i in 0..sys.len() as u32 {
            for j in (i + 1)..sys.len() as u32 {
                let r2 = sys
                    .space
                    .min_image(sys.pos[i as usize], sys.pos[j as usize])
                    .norm_sq();
                if r2 < 1.0 {
                    prop_assert!(
                        seen.contains(&(i, j)),
                        "within-cutoff pair ({i},{j}) r²={r2} missed"
                    );
                }
            }
        }
    }

    /// Direct and cell-list engines agree on forces and energy for random
    /// small systems.
    #[test]
    fn engines_agree(seed in 0u64..500) {
        let spec = WorkloadSpec {
            space: SimulationSpace::cubic(3),
            per_cell: 4,
            placement: Placement::JitteredLattice { jitter: 0.1 },
            temperature_k: 0.0,
            seed,
            element: Element::Na,
        };
        let mut s1 = spec.generate();
        let mut s2 = s1.clone();
        let table = PairTable::new(UnitSystem::PAPER);
        let pe1 = DirectEngine::new(table.clone()).compute_forces(&mut s1);
        let pe2 = CellListEngine::new(table).compute_forces(&mut s2);
        prop_assert!((pe1 - pe2).abs() <= 1e-9 * pe1.abs().max(1.0));
        for i in 0..s1.len() {
            prop_assert!((s1.force[i] - s2.force[i]).max_abs() < 1e-9);
        }
    }

    /// Newton's third law: net force is zero for any configuration.
    #[test]
    fn net_force_zero(seed in 0u64..500) {
        let spec = WorkloadSpec {
            space: SimulationSpace::cubic(3),
            per_cell: 5,
            placement: Placement::JitteredLattice { jitter: 0.1 },
            temperature_k: 0.0,
            seed,
            element: Element::Na,
        };
        let mut sys = spec.generate();
        CellListEngine::new(PairTable::new(UnitSystem::PAPER)).compute_forces(&mut sys);
        prop_assert!(sys.net_force().max_abs() < 1e-8);
    }

    /// Wrapping a coordinate is idempotent and lands in range.
    #[test]
    fn wrap_coord_idempotent(space in arb_space(), x in -10i32..10, y in -10i32..10, z in -10i32..10) {
        let w = space.wrap_coord(CellCoord::new(x, y, z));
        prop_assert!(space.contains(w));
        prop_assert_eq!(space.wrap_coord(w), w);
    }
}

/// Non-proptest sanity: a 2-particle system across a periodic boundary
/// still interacts via the image.
#[test]
fn interaction_across_boundary() {
    let mut sys = ParticleSystem::new(SimulationSpace::cubic(3), UnitSystem::PAPER);
    sys.push(Element::Na, Vec3::new(0.1, 0.5, 0.5), Vec3::ZERO);
    sys.push(Element::Na, Vec3::new(2.9, 0.5, 0.5), Vec3::ZERO);
    let pe = CellListEngine::new(PairTable::new(UnitSystem::PAPER)).compute_forces(&mut sys);
    assert!(pe != 0.0, "image pair at r=0.2 must interact");
    assert!(sys.force[0].x > 0.0, "repelled away from image on the left");
}
