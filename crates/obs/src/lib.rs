//! # fasda-obs — live telemetry for the FASDA simulator
//!
//! Everything the workspace knew about a run used to be post-hoc: the
//! flight recorder and the stall ledger are folded into JSON *after*
//! the last step retires. This crate adds the in-run side:
//!
//! * [`Registry`] — a tiny metrics registry (monotonic counters,
//!   gauges, fixed-bucket histograms) with deterministic iteration
//!   order, so two runs that agree on simulated state render
//!   byte-identical snapshots. A disabled registry is a no-op: every
//!   mutator starts with one inlined `enabled` test, the same pattern
//!   as `TraceLevel::Off`.
//! * [`JsonlSink`] — append-only JSON-Lines heartbeat stream (one
//!   self-contained object per line; crash-tolerant by construction).
//! * [`prom_render`] / [`prom_write`] — Prometheus text exposition
//!   format, written atomically to a scrape file (tmp + rename) so a
//!   collector never reads a torn snapshot.
//! * [`model`] — the paper's §5 analytical performance model and the
//!   model-vs-measured divergence report.
//!
//! The registry deliberately stores *series*, not callbacks: the
//! simulator samples its own state into the registry at heartbeat
//! boundaries, and the exporters are pure functions of the registry.
//! That keeps wall-clock (gauges) cleanly separated from simulated
//! quantities (counters/histograms): identity gates compare only the
//! latter via [`Registry::totals_json`].

pub mod model;

use fasda_trace::Json;
use std::collections::BTreeMap;
use std::io::Write as _;

/// Key of one metric series: a family name plus an optional single
/// `key="value"` label (enough for every series the simulator emits;
/// multi-label series would complicate deterministic ordering for no
/// current consumer).
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct SeriesKey {
    /// Metric family name (`[a-z_][a-z0-9_]*`, enforced by debug assert).
    pub name: String,
    /// Optional label pair, e.g. `("cause", "wait-neighbor-sync")`.
    pub label: Option<(String, String)>,
}

impl SeriesKey {
    fn plain(name: &str) -> Self {
        debug_assert!(valid_metric_name(name), "bad metric name: {name}");
        SeriesKey {
            name: name.to_string(),
            label: None,
        }
    }

    fn labeled(name: &str, key: &str, value: &str) -> Self {
        debug_assert!(valid_metric_name(name), "bad metric name: {name}");
        debug_assert!(valid_metric_name(key), "bad label key: {key}");
        SeriesKey {
            name: name.to_string(),
            label: Some((key.to_string(), value.to_string())),
        }
    }
}

fn valid_metric_name(name: &str) -> bool {
    !name.is_empty()
        && name
            .chars()
            .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_')
        && !name.starts_with(|c: char| c.is_ascii_digit())
}

/// Fixed-bucket histogram. Bounds are inclusive upper edges; one
/// overflow bucket catches everything above the last bound. Buckets
/// are fixed at construction so that serial, parallel, and sharded
/// runs bin identically.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Hist {
    /// Inclusive upper bounds, strictly increasing.
    pub bounds: Vec<u64>,
    /// Observation counts; `counts[i]` pairs with `bounds[i]`, the last
    /// entry is the overflow bucket.
    pub counts: Vec<u64>,
    /// Sum of all observed values.
    pub sum: u64,
    /// Number of observations.
    pub count: u64,
}

impl Hist {
    /// New empty histogram over the given inclusive upper bounds.
    pub fn new(bounds: &[u64]) -> Self {
        debug_assert!(bounds.windows(2).all(|w| w[0] < w[1]));
        Hist {
            bounds: bounds.to_vec(),
            counts: vec![0; bounds.len() + 1],
            sum: 0,
            count: 0,
        }
    }

    /// Record one value.
    pub fn observe(&mut self, v: u64) {
        let idx = self
            .bounds
            .iter()
            .position(|&b| v <= b)
            .unwrap_or(self.bounds.len());
        self.counts[idx] += 1;
        self.sum += v;
        self.count += 1;
    }

    /// Upper-bound estimate of the `q`-quantile (`0.0 ..= 1.0`): the
    /// inclusive upper edge of the bucket holding the `ceil(q·count)`-th
    /// observation. The overflow bucket reports the largest bound (the
    /// histogram cannot see past its edges); an empty histogram reports
    /// `None`. Bucketed quantiles are coarse by construction — the point
    /// is a deterministic, mergeable percentile, not sub-bucket
    /// precision.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Some(*self.bounds.get(i).unwrap_or(self.bounds.last()?));
            }
        }
        self.bounds.last().copied()
    }

    fn to_json(&self) -> Json {
        Json::obj()
            .field(
                "bounds",
                Json::Arr(self.bounds.iter().map(|&b| Json::uint(b)).collect()),
            )
            .field(
                "counts",
                Json::Arr(self.counts.iter().map(|&c| Json::uint(c)).collect()),
            )
            .field("count", Json::uint(self.count))
            .field("sum", Json::uint(self.sum))
            .build()
    }
}

/// Metrics registry. All reads iterate in `BTreeMap` order, so the
/// rendered output is a deterministic function of the stored series.
#[derive(Clone, Debug, Default)]
pub struct Registry {
    enabled: bool,
    counters: BTreeMap<SeriesKey, u64>,
    gauges: BTreeMap<String, f64>,
    hists: BTreeMap<String, Hist>,
}

impl Registry {
    /// A registry; when `enabled` is false every mutator is a no-op
    /// behind a single branch.
    pub fn new(enabled: bool) -> Self {
        Registry {
            enabled,
            ..Registry::default()
        }
    }

    /// Whether mutators record anything.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Set a monotonic counter to an absolute value. Counters never
    /// regress: stale writes (smaller than the stored value) are
    /// ignored, which is what makes segment-scoped sources safe to
    /// re-sample after a checkpoint segment reset.
    #[inline]
    pub fn counter_set(&mut self, name: &str, v: u64) {
        if !self.enabled {
            return;
        }
        let slot = self.counters.entry(SeriesKey::plain(name)).or_insert(0);
        *slot = (*slot).max(v);
    }

    /// Set a labeled monotonic counter to an absolute value.
    #[inline]
    pub fn counter_set_labeled(&mut self, name: &str, key: &str, value: &str, v: u64) {
        if !self.enabled {
            return;
        }
        let slot = self
            .counters
            .entry(SeriesKey::labeled(name, key, value))
            .or_insert(0);
        *slot = (*slot).max(v);
    }

    /// Add to a monotonic counter.
    #[inline]
    pub fn counter_add(&mut self, name: &str, v: u64) {
        if !self.enabled {
            return;
        }
        *self.counters.entry(SeriesKey::plain(name)).or_insert(0) += v;
    }

    /// Current value of a counter (0 if never written).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .get(&SeriesKey::plain(name))
            .copied()
            .unwrap_or(0)
    }

    /// Current value of a labeled counter (0 if never written).
    pub fn counter_labeled(&self, name: &str, key: &str, value: &str) -> u64 {
        self.counters
            .get(&SeriesKey::labeled(name, key, value))
            .copied()
            .unwrap_or(0)
    }

    /// Set a gauge (instantaneous value; may move both ways).
    #[inline]
    pub fn gauge_set(&mut self, name: &str, v: f64) {
        if !self.enabled {
            return;
        }
        debug_assert!(valid_metric_name(name), "bad metric name: {name}");
        self.gauges.insert(name.to_string(), v);
    }

    /// Current value of a gauge.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// Record one histogram observation, creating the histogram with
    /// `bounds` on first touch.
    #[inline]
    pub fn hist_observe(&mut self, name: &str, bounds: &[u64], v: u64) {
        if !self.enabled {
            return;
        }
        debug_assert!(valid_metric_name(name), "bad metric name: {name}");
        self.hists
            .entry(name.to_string())
            .or_insert_with(|| Hist::new(bounds))
            .observe(v);
    }

    /// Replace a histogram wholesale (used when totals are rebuilt from
    /// a finished run's records rather than observed incrementally).
    pub fn hist_set(&mut self, name: &str, h: Hist) {
        if !self.enabled {
            return;
        }
        debug_assert!(valid_metric_name(name), "bad metric name: {name}");
        self.hists.insert(name.to_string(), h);
    }

    /// Look up a histogram.
    pub fn hist(&self, name: &str) -> Option<&Hist> {
        self.hists.get(name)
    }

    /// Drop all gauges (wall-clock state), keeping counters and
    /// histograms — applied before identity comparisons.
    pub fn clear_gauges(&mut self) {
        self.gauges.clear();
    }

    /// Deterministic totals document: counters (labeled families nest
    /// as objects) and histograms, **no gauges**. Two runs that agree
    /// on simulated state render this byte-identically, regardless of
    /// engine, shard count, or wall-clock speed.
    pub fn totals_json(&self) -> Json {
        let mut counters = Json::obj();
        let mut fam: Option<(String, Vec<(String, Json)>)> = None;
        for (k, &v) in &self.counters {
            match &k.label {
                None => {
                    if let Some((name, fields)) = fam.take() {
                        counters = counters.field(&name, Json::Obj(fields));
                    }
                    counters = counters.field(&k.name, Json::uint(v));
                }
                Some((_, lv)) => {
                    match &mut fam {
                        Some((name, fields)) if *name == k.name => {
                            fields.push((lv.clone(), Json::uint(v)));
                        }
                        _ => {
                            if let Some((name, fields)) = fam.take() {
                                counters = counters.field(&name, Json::Obj(fields));
                            }
                            fam = Some((k.name.clone(), vec![(lv.clone(), Json::uint(v))]));
                        }
                    };
                }
            }
        }
        if let Some((name, fields)) = fam.take() {
            counters = counters.field(&name, Json::Obj(fields));
        }
        let mut hists = Json::obj();
        for (name, h) in &self.hists {
            hists = hists.field(name, h.to_json());
        }
        Json::obj()
            .field("counters", counters.build())
            .field("hists", hists.build())
            .build()
    }

    /// Full snapshot: totals plus gauges, for heartbeat records.
    pub fn snapshot_json(&self) -> Json {
        let totals = self.totals_json();
        let mut gauges = Json::obj();
        for (name, &v) in &self.gauges {
            gauges = gauges.field(name, Json::fixed(v, 6));
        }
        let mut out = Json::obj();
        if let Json::Obj(fields) = totals {
            for (k, v) in fields {
                out = out.field(&k, v);
            }
        }
        out.field("gauges", gauges.build()).build()
    }
}

/// Escape a Prometheus label value: `\` → `\\`, `"` → `\"`, newline →
/// `\n` (the three escapes the exposition format defines).
pub fn prom_escape(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Render the registry in Prometheus text exposition format. Counter
/// families get a `_total` suffix and one `# TYPE` line each; gauges
/// render as-is; histograms render cumulative `_bucket` series with
/// `le` labels plus `_sum`/`_count`. `prefix` namespaces every metric
/// (the simulator uses `fasda`).
pub fn prom_render(reg: &Registry, prefix: &str) -> String {
    let mut out = String::new();
    let mut last_family: Option<&str> = None;
    for (k, v) in &reg.counters {
        if last_family != Some(k.name.as_str()) {
            out.push_str(&format!("# TYPE {prefix}_{}_total counter\n", k.name));
            last_family = Some(k.name.as_str());
        }
        match &k.label {
            None => out.push_str(&format!("{prefix}_{}_total {v}\n", k.name)),
            Some((lk, lv)) => out.push_str(&format!(
                "{prefix}_{}_total{{{lk}=\"{}\"}} {v}\n",
                k.name,
                prom_escape(lv)
            )),
        }
    }
    for (name, v) in &reg.gauges {
        out.push_str(&format!("# TYPE {prefix}_{name} gauge\n"));
        out.push_str(&format!("{prefix}_{name} {v}\n"));
    }
    for (name, h) in &reg.hists {
        out.push_str(&format!("# TYPE {prefix}_{name} histogram\n"));
        let mut cum = 0u64;
        for (i, &c) in h.counts.iter().enumerate() {
            cum += c;
            let le = match h.bounds.get(i) {
                Some(b) => b.to_string(),
                None => "+Inf".to_string(),
            };
            out.push_str(&format!(
                "{prefix}_{name}_bucket{{le=\"{le}\"}} {cum}\n"
            ));
        }
        out.push_str(&format!("{prefix}_{name}_sum {}\n", h.sum));
        out.push_str(&format!("{prefix}_{name}_count {}\n", h.count));
    }
    out
}

/// Write a Prometheus scrape file atomically: render to `<path>.tmp`,
/// then rename over `path`, so a scraper never observes a torn file.
pub fn prom_write(reg: &Registry, prefix: &str, path: &std::path::Path) -> std::io::Result<()> {
    let tmp = path.with_extension("prom.tmp");
    std::fs::write(&tmp, prom_render(reg, prefix))?;
    std::fs::rename(&tmp, path)
}

/// Append-only JSON-Lines sink: one compact object per line, flushed
/// per record so a crashed run keeps every heartbeat it emitted.
pub struct JsonlSink {
    file: std::fs::File,
}

impl JsonlSink {
    /// Create (truncate) the sink file.
    pub fn create(path: &std::path::Path) -> std::io::Result<Self> {
        Ok(JsonlSink {
            file: std::fs::File::create(path)?,
        })
    }

    /// Open an existing sink file for appending (used to add the
    /// `final` record after a run completes).
    pub fn append(path: &std::path::Path) -> std::io::Result<Self> {
        Ok(JsonlSink {
            file: std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(path)?,
        })
    }

    /// Append one record as a single line.
    pub fn emit(&mut self, record: &Json) -> std::io::Result<()> {
        writeln!(self.file, "{}", record.compact())?;
        self.file.flush()
    }
}

/// Parse a JSONL document back into records (validation helper for
/// tests and `tracecheck`). Blank lines are rejected: a heartbeat
/// stream never contains them, and tolerating them would mask
/// truncated writes.
pub fn parse_jsonl(text: &str) -> Result<Vec<Json>, String> {
    text.lines()
        .enumerate()
        .map(|(i, line)| Json::parse(line).map_err(|e| format!("line {}: {e}", i + 1)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_registry_is_inert() {
        let mut r = Registry::new(false);
        r.counter_set("steps", 5);
        r.counter_add("cycles", 10);
        r.counter_set_labeled("stall_cycles", "cause", "drained", 3);
        r.gauge_set("steps_per_s", 1.5);
        r.hist_observe("step_cycles", &[10, 100], 42);
        assert_eq!(r.counter("steps"), 0);
        assert_eq!(r.totals_json().compact(), r#"{"counters":{},"hists":{}}"#);
    }

    #[test]
    fn counters_are_monotonic_under_set() {
        let mut r = Registry::new(true);
        r.counter_set("steps", 5);
        r.counter_set("steps", 3); // stale write: ignored
        assert_eq!(r.counter("steps"), 5);
        r.counter_set("steps", 9);
        assert_eq!(r.counter("steps"), 9);
    }

    #[test]
    fn totals_json_groups_labeled_families() {
        let mut r = Registry::new(true);
        r.counter_set("cycles", 100);
        r.counter_set_labeled("stall_cycles", "cause", "drained", 7);
        r.counter_set_labeled("stall_cycles", "cause", "tx-cooldown", 2);
        r.counter_set("steps", 4);
        let doc = r.totals_json();
        let counters = doc.get("counters").unwrap();
        assert_eq!(counters.get("cycles").unwrap().as_i64(), Some(100));
        assert_eq!(counters.get("steps").unwrap().as_i64(), Some(4));
        let stalls = counters.get("stall_cycles").unwrap();
        assert_eq!(stalls.get("drained").unwrap().as_i64(), Some(7));
        assert_eq!(stalls.get("tx-cooldown").unwrap().as_i64(), Some(2));
        // Round-trips through the parser.
        let reparsed = Json::parse(&doc.pretty()).unwrap();
        assert_eq!(reparsed, doc);
    }

    #[test]
    fn hist_bins_and_overflows() {
        let mut h = Hist::new(&[10, 100]);
        h.observe(5);
        h.observe(10); // inclusive upper edge
        h.observe(50);
        h.observe(1000); // overflow
        assert_eq!(h.counts, vec![2, 1, 1]);
        assert_eq!(h.count, 4);
        assert_eq!(h.sum, 1065);
    }

    #[test]
    fn hist_quantiles() {
        let mut h = Hist::new(&[1, 2, 4, 8, 16]);
        assert_eq!(h.quantile(0.5), None);
        for v in [1, 1, 2, 3, 5, 9, 9, 9, 9, 100] {
            h.observe(v);
        }
        // Ranks: p50 → 5th obs (value 5, bucket ≤8), p95 → 10th obs
        // (overflow → last bound), p0 clamps to the first observation.
        assert_eq!(h.quantile(0.0), Some(1));
        assert_eq!(h.quantile(0.5), Some(8));
        assert_eq!(h.quantile(0.9), Some(16));
        assert_eq!(h.quantile(0.95), Some(16));
        assert_eq!(h.quantile(1.0), Some(16));
    }

    #[test]
    fn prom_escaping_round_trips() {
        assert_eq!(prom_escape(r#"a\b"c"#), r#"a\\b\"c"#);
        assert_eq!(prom_escape("x\ny"), r#"x\ny"#);
        let mut r = Registry::new(true);
        r.counter_set_labeled("odd", "cause", "quote\"back\\slash", 1);
        let text = prom_render(&r, "fasda");
        assert!(text.contains(r#"fasda_odd_total{cause="quote\"back\\slash"} 1"#));
    }

    #[test]
    fn prom_renders_all_kinds() {
        let mut r = Registry::new(true);
        r.counter_set("cycles", 42);
        r.counter_set_labeled("stall_cycles", "cause", "drained", 7);
        r.gauge_set("steps_per_s", 2.5);
        r.hist_observe("step_cycles", &[10, 100], 50);
        r.hist_observe("step_cycles", &[10, 100], 5);
        let text = prom_render(&r, "fasda");
        assert!(text.contains("# TYPE fasda_cycles_total counter\n"));
        assert!(text.contains("fasda_cycles_total 42\n"));
        assert!(text.contains("fasda_stall_cycles_total{cause=\"drained\"} 7\n"));
        assert!(text.contains("# TYPE fasda_steps_per_s gauge\n"));
        assert!(text.contains("fasda_steps_per_s 2.5\n"));
        assert!(text.contains("fasda_step_cycles_bucket{le=\"10\"} 1\n"));
        assert!(text.contains("fasda_step_cycles_bucket{le=\"100\"} 2\n"));
        assert!(text.contains("fasda_step_cycles_bucket{le=\"+Inf\"} 2\n"));
        assert!(text.contains("fasda_step_cycles_sum 55\n"));
        assert!(text.contains("fasda_step_cycles_count 2\n"));
    }

    #[test]
    fn jsonl_round_trips_and_rejects_blanks() {
        let a = Json::obj().field("type", "beat").field("step", 1i64).build();
        let b = Json::obj().field("type", "final").field("step", 2i64).build();
        let text = format!("{}\n{}\n", a.compact(), b.compact());
        let recs = parse_jsonl(text.trim_end()).unwrap();
        assert_eq!(recs, vec![a, b]);
        assert!(parse_jsonl("{}\n\n{}").is_err());
    }

    #[test]
    fn totals_exclude_gauges() {
        let mut r = Registry::new(true);
        r.counter_set("steps", 3);
        r.gauge_set("wall_s", 123.0);
        let totals = r.totals_json();
        assert!(totals.get("gauges").is_none());
        let snap = r.snapshot_json();
        assert!(snap.get("gauges").is_some());
    }
}
