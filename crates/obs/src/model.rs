//! The paper's §5 analytical performance model, and the
//! model-vs-measured divergence report.
//!
//! §5 of the paper sizes a FASDA deployment from first principles:
//! filter-bank throughput against the half-shell candidate-pair volume
//! (Eq. 3), force-pipeline throughput against the post-filter valid
//! pairs, the position-broadcast metering interval that paces a cell's
//! stream to its consumers, packetization overhead on the inter-node
//! ports, and the topology's transit latency. This module rebuilds
//! that model from a [`ModelInput`] (pure configuration — nothing
//! measured) and compares its [`Prediction`] against a [`Measured`]
//! summary distilled from a finished run's `ClusterRunReport` and
//! stall ledger. The divergence report is what keeps the model honest:
//! it lands in every metrics document and is gated in CI (see
//! `DESIGN.md` §12 for the equations and the calibration method).
//!
//! Everything here is deterministic: the pair pass-rate integral uses
//! a fixed midpoint quadrature, so the same input always produces the
//! same prediction bytes.

use fasda_trace::Json;

/// Per-axis half-shell offsets (§3.1): each unordered neighbour-cell
/// pair is covered exactly once by the 13 positive-direction offsets.
const HALF_SHELL: [(i32, i32, i32); 13] = [
    (1, 0, 0),
    (-1, 1, 0),
    (0, 1, 0),
    (1, 1, 0),
    (-1, -1, 1),
    (0, -1, 1),
    (1, -1, 1),
    (-1, 0, 1),
    (0, 0, 1),
    (1, 0, 1),
    (-1, 1, 1),
    (0, 1, 1),
    (1, 1, 1),
];

/// Number of stall causes mirrored from `fasda_trace::StallCause`.
pub const STALL_CLASSES: usize = 8;

/// Stable stall-class labels, index-aligned with
/// `fasda_trace::StallCause::ALL`.
pub const STALL_LABELS: [&str; STALL_CLASSES] = [
    "wait-neighbor-sync",
    "ring-backpressure",
    "tx-cooldown",
    "filter-starved",
    "drained",
    "injected",
    "retransmit",
    "wait-ack",
];

/// Pure-configuration input to the §5 model. Constructed from
/// `ClusterConfig` + workload geometry by the cluster crate; kept as
/// plain numbers here so the model has no dependency on the simulator.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ModelInput {
    /// Node-grid dimensions (chips per axis).
    pub grid: (u32, u32, u32),
    /// Cells per chip along each axis.
    pub block: (u32, u32, u32),
    /// Average particles per cell.
    pub per_cell: f64,
    /// Pair filters per PE.
    pub filters_per_pe: u32,
    /// PEs per SPE.
    pub pes_per_spe: u32,
    /// SPEs per CBB.
    pub spes_per_cbb: u32,
    /// Force-pipeline latency, cycles.
    pub force_pipe_latency: u32,
    /// Motion-update pipeline latency, cycles.
    pub mu_latency: u32,
    /// Broadcast-metering cooldown; 0 derives the §4.5 interval
    /// `13·(per_cell + force_pipe_latency) / filters_per_spe`.
    pub bcast_cooldown: u32,
    /// Filter cutoff radius in cell units (paper design point: 1.0).
    pub cutoff_cells: f64,
    /// Packet-departure cooldown, cycles (§5.4).
    pub packet_cooldown: u32,
    /// One-way inter-node transit latency, cycles (switch latency or
    /// mean ring path length × hop latency).
    pub path_latency: f64,
    /// Mean injected straggler stall per (node, step), cycles (0 when
    /// unset; a single-node injection divided by the node count).
    pub straggler_cycles: f64,
}

impl ModelInput {
    /// Total chips.
    pub fn nodes(&self) -> u64 {
        self.grid.0 as u64 * self.grid.1 as u64 * self.grid.2 as u64
    }

    /// Cells per chip.
    pub fn cells_per_node(&self) -> u64 {
        self.block.0 as u64 * self.block.1 as u64 * self.block.2 as u64
    }

    /// Filters per CBB.
    fn filters_per_cbb(&self) -> f64 {
        (self.filters_per_pe * self.pes_per_spe * self.spes_per_cbb) as f64
    }

    /// Force pipelines per CBB.
    fn pes_per_cbb(&self) -> f64 {
        (self.pes_per_spe * self.spes_per_cbb) as f64
    }

    /// The §4.5 broadcast-metering interval in cycles.
    pub fn bcast_interval(&self) -> f64 {
        if self.bcast_cooldown > 0 {
            return self.bcast_cooldown as f64;
        }
        let filters_per_spe = (self.filters_per_pe * self.pes_per_spe) as f64;
        13.0 * (self.per_cell + self.force_pipe_latency as f64) / filters_per_spe
    }
}

/// Probability that two uniform points in unit cells at the given
/// absolute offset are within `cutoff` of each other (Eq. 3's
/// pass-rate term), by fixed midpoint quadrature over the per-axis
/// triangular difference densities. Deterministic for a given input.
pub fn pair_pass_rate(offset: (u32, u32, u32), cutoff: f64) -> f64 {
    const M: usize = 64;
    let r2 = cutoff * cutoff;
    // Per-axis: d = (p2 + off) - p1 with p1, p2 ~ U[0,1) has the
    // triangular density f(t) = 1 - |t - off| on [off-1, off+1].
    let axis = |off: u32| -> Vec<(f64, f64)> {
        let o = off as f64;
        let step = 2.0 / M as f64;
        (0..M)
            .map(|i| {
                let t = (o - 1.0) + (i as f64 + 0.5) * step;
                (t, (1.0 - (t - o).abs()).max(0.0) * step)
            })
            .collect()
    };
    let (ax, ay, az) = (axis(offset.0), axis(offset.1), axis(offset.2));
    let mut pass = 0.0;
    for &(tx, wx) in &ax {
        if wx == 0.0 {
            continue;
        }
        for &(ty, wy) in &ay {
            if wy == 0.0 {
                continue;
            }
            let d2xy = tx * tx + ty * ty;
            if d2xy > r2 {
                continue;
            }
            for &(tz, wz) in &az {
                if d2xy + tz * tz <= r2 {
                    pass += wx * wy * wz;
                }
            }
        }
    }
    pass
}

/// The deterministic sub-lattice the workload generator places for
/// `per_cell` particles: smallest `k` with `k³ ≥ per_cell`, pitch
/// `1/k`, sites filled in x-major order. Cell-relative coordinates.
fn lattice_sites(per_cell: u32) -> Vec<(f64, f64, f64)> {
    let k = (1..=per_cell).find(|k| k * k * k >= per_cell).unwrap_or(1);
    let pitch = 1.0 / k as f64;
    let mut out = Vec::with_capacity(per_cell as usize);
    'fill: for ix in 0..k {
        for iy in 0..k {
            for iz in 0..k {
                if out.len() == per_cell as usize {
                    break 'fill;
                }
                out.push((
                    (ix as f64 + 0.5) * pitch,
                    (iy as f64 + 0.5) * pitch,
                    (iz as f64 + 0.5) * pitch,
                ));
            }
        }
    }
    out
}

/// Probability that a particle visiting a neighbour cell at `offset`
/// ejects a force return — i.e. at least one of its pairs against the
/// destination cell's particles passes the cutoff filter.
///
/// Unlike [`pair_pass_rate`] (the paper's Eq. 3 uniform-density
/// integral, kept for the filter/force throughput bounds), this term
/// is workload-aware: the repo's generator places a deterministic
/// jittered sub-lattice, so the nearest-pair distance is a lattice
/// geometry fact. Pairs at **exactly** the cutoff (lattice-aligned
/// across a face) are decided by the generator's jitter — they pass
/// with probability ½.
fn eject_rate(per_cell: f64, offset: (i32, i32, i32), cutoff: f64) -> f64 {
    const EPS: f64 = 1e-9;
    let n = per_cell.round().max(1.0) as u32;
    let sites = lattice_sites(n);
    let (ox, oy, oz) = (offset.0 as f64, offset.1 as f64, offset.2 as f64);
    let mut total = 0.0;
    for u in &sites {
        let best = sites
            .iter()
            .map(|v| {
                let d = (ox + v.0 - u.0, oy + v.1 - u.1, oz + v.2 - u.2);
                d.0 * d.0 + d.1 * d.1 + d.2 * d.2
            })
            .fold(f64::INFINITY, f64::min)
            .sqrt();
        if best < cutoff - EPS {
            total += 1.0;
        } else if (best - cutoff).abs() <= EPS {
            total += 0.5;
        }
    }
    total / sites.len() as f64
}

/// What the §5 model predicts for one configuration. All quantities
/// are per step unless noted; packet counts are cluster-global.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Prediction {
    /// Mean filter pass rate over half-shell candidates (home included).
    pub pass_rate: f64,
    /// Candidate pairs per cell per step.
    pub candidates_per_cell: f64,
    /// Valid (post-filter) pairs per cell per step.
    pub valid_per_cell: f64,
    /// Broadcast-metering interval, cycles.
    pub bcast_interval: f64,
    /// Filter-bank bound on the force phase, cycles.
    pub filter_bound: f64,
    /// Force-pipeline bound on the force phase, cycles.
    pub force_bound: f64,
    /// Broadcast-metering bound on the force phase, cycles.
    pub bcast_bound: f64,
    /// Predicted sync tail per (node, step): packetizer flush plus the
    /// marker transit (wait-neighbor-sync + drained territory), cycles.
    pub sync_tail: f64,
    /// Predicted force-phase duration per (node, step), cycles.
    pub force_cycles: f64,
    /// Predicted motion-update duration per (node, step), cycles.
    pub mu_cycles: f64,
    /// Predicted wall cycles per step.
    pub cycles_per_step: f64,
    /// Predicted force-phase occupancy (productive / attributed).
    pub occupancy: f64,
    /// Predicted position-fabric packets per step (cluster-global).
    pub pos_packets_per_step: f64,
    /// Predicted force-fabric packets per step (cluster-global).
    pub frc_packets_per_step: f64,
    /// Predicted tx-cooldown stall cycles per (node, step).
    pub tx_cooldown: f64,
    /// Predicted idle-share per stall class (fractions of total idle).
    pub stall_shares: [f64; STALL_CLASSES],
}

/// Geometry helper: per-chip packet counts on both fabrics, from the
/// half-shell destination map over the node grid.
///
/// Returns `(pos_payloads, frc_payloads)` summed over all chips:
///
/// * one **position** payload per (source cell, remote destination
///   *chip*) per particle — positions ship once per chip with a
///   destination-cell mask;
/// * one **force** return per (visiting particle, remote destination
///   *cell*) **that produced at least one passing pair** — the PE
///   array accumulates a visiting particle's partial force per scanned
///   cell and ejects a ring flit only when `had_pairs` (otherwise the
///   station discards). With per-cell count `n` and per-offset pass
///   rate `p`, the ejection probability is `1 - (1-p)^n`.
fn boundary_payloads(input: &ModelInput) -> (f64, f64) {
    let (gx, gy, gz) = input.grid;
    let (bx, by, bz) = input.block;
    let (dx, dy, dz) = (gx * bx, gy * by, gz * bz);
    let n = input.per_cell;
    // Ejection probability per half-shell offset, from the generator's
    // lattice geometry. Per actual offset, not symmetry class: the
    // x-major fill breaks reflection symmetry when `per_cell` is not a
    // perfect cube (e.g. 4 particles on a k=2 lattice all share one
    // x-plane, so +x and -x neighbours see different distances).
    let eject: Vec<f64> = HALF_SHELL
        .iter()
        .map(|&o| eject_rate(n, o, input.cutoff_cells))
        .collect();
    let mut pos = 0.0;
    let mut frc = 0.0;
    for cx in 0..dx {
        for cy in 0..dy {
            for cz in 0..dz {
                let home = (cx / bx, cy / by, cz / bz);
                // Distinct remote chips this cell sends to.
                let mut chips: Vec<(u32, u32, u32)> = Vec::new();
                for (i, &(ox, oy, oz)) in HALF_SHELL.iter().enumerate() {
                    let wrap = |v: u32, o: i32, d: u32| -> u32 {
                        (v as i64 + o as i64).rem_euclid(d as i64) as u32
                    };
                    let dest = (wrap(cx, ox, dx), wrap(cy, oy, dy), wrap(cz, oz, dz));
                    let chip = (dest.0 / bx, dest.1 / by, dest.2 / bz);
                    if chip == home {
                        continue;
                    }
                    // Each of the cell's n particles visits this remote
                    // cell; a return crosses back iff the scan had pairs.
                    frc += n * eject[i];
                    if !chips.contains(&chip) {
                        chips.push(chip);
                    }
                }
                pos += n * chips.len() as f64; // one payload per particle per remote chip
            }
        }
    }
    (pos, frc)
}

/// Evaluate the §5 model for a configuration.
pub fn predict(input: &ModelInput) -> Prediction {
    let n = input.per_cell;
    let r = input.cutoff_cells;
    // Pass rates by offset class (all 13 half-shell offsets reduce to
    // face/edge/corner under per-axis reflection symmetry).
    let p_home = pair_pass_rate((0, 0, 0), r);
    let class = |o: (i32, i32, i32)| (o.0.unsigned_abs(), o.1.unsigned_abs(), o.2.unsigned_abs());
    let p_shell: f64 = HALF_SHELL.iter().map(|&o| pair_pass_rate(class(o), r)).sum();

    let candidates_per_cell = 13.0 * n * n + n * (n - 1.0) / 2.0;
    let valid_per_cell = p_shell * n * n + p_home * n * (n - 1.0) / 2.0;
    let pass_rate = if candidates_per_cell > 0.0 {
        valid_per_cell / candidates_per_cell
    } else {
        0.0
    };

    let interval = input.bcast_interval();
    let filter_bound = candidates_per_cell / input.filters_per_cbb();
    let force_bound = valid_per_cell / input.pes_per_cbb();
    // A cell's n positions leave one per `interval` cycles; the last
    // departure still has to be scanned and drained.
    let bcast_bound = n * interval;
    let stream = filter_bound.max(force_bound).max(bcast_bound);

    // Packetization: payloads per chip-pair, four to a packet, plus the
    // end-of-phase marker packet each (kind, peer) gate flushes.
    let (pos_payloads, frc_payloads) = boundary_payloads(input);
    let nodes = input.nodes() as f64;
    let peer_links = if nodes > 1.0 {
        // Mean distinct send-peers per chip (same for recv by symmetry):
        // payload-weighted is what the marker count needs; approximate
        // with the exact count from the geometry walk below.
        peer_link_count(input) as f64
    } else {
        0.0
    };
    let pos_packets = if nodes > 1.0 {
        (pos_payloads / 4.0).floor() + peer_links
    } else {
        0.0
    };
    let frc_packets = if nodes > 1.0 {
        (frc_payloads / 4.0).floor() + peer_links
    } else {
        0.0
    };

    // Tx-cooldown per (node, step): each departed packet arms the
    // §5.4 cooldown; only the fraction of it not hidden under the
    // metered stream shows up as attributed stall.
    let packets_per_node = (pos_packets + frc_packets) / nodes.max(1.0);
    let tx_cooldown = packets_per_node * input.packet_cooldown as f64;

    // Sync tail: the final broadcast drains through the pipeline, the
    // marker crosses the fabric, and the chained handshake completes.
    let sync_tail = if nodes > 1.0 {
        input.force_pipe_latency as f64 + 2.0 * input.path_latency
    } else {
        input.force_pipe_latency as f64
    };

    let force_cycles = stream + sync_tail + input.straggler_cycles;
    // The motion update issues one particle per cell per cycle (every
    // CBB has its own MU unit), drains the pipeline, then — on a
    // multi-chip cluster — holds the phase open until every migration
    // peer's last-migrant marker has crossed the fabric.
    let mu_marker_wait = if nodes > 1.0 { input.path_latency } else { 0.0 };
    let mu_cycles = n + input.mu_latency as f64 + mu_marker_wait;
    let cycles_per_step = force_cycles + mu_cycles;

    // Occupancy is attributed chip-wide ("any PE busy"): during the
    // metered stream each CBB sees a deterministic overlap of
    // `13n/interval` in-flight scans, and the chip is productive when
    // any of its `cells` CBBs is mid-scan.
    let cells = input.cells_per_node() as f64;
    let concurrency = if interval > 0.0 {
        cells * 13.0 * n / interval
    } else {
        0.0
    };
    let busy = stream * concurrency.min(1.0);
    let occupancy = if force_cycles > 0.0 {
        (busy / force_cycles).min(1.0)
    } else {
        0.0
    };

    // Idle split across stall classes, mirroring the attribution
    // precedence in the driver: a chip that ticks with live output
    // queues (flits draining, packets crossing, remote returns in
    // flight) books ring-backpressure; the short window after
    // everything drains but before the neighbours' markers land books
    // wait-neighbor-sync. Tx-cooldown hides under ticked cycles (the
    // chip keeps ticking while a packetizer waits out a departure
    // cooldown), so its share is ~0 even though the §5.4 cooldown
    // quantity itself is predicted above.
    let idle = (force_cycles - busy).max(0.0);
    let mut stall_cycles = [0.0f64; STALL_CLASSES];
    if idle > 0.0 {
        let starved = stream * (1.0 - concurrency.min(1.0));
        stall_cycles[3] = starved.min(idle); // filter-starved
        stall_cycles[5] = input.straggler_cycles.min(idle - stall_cycles[3]); // injected
        let exchange = (idle - stall_cycles[3] - stall_cycles[5]).max(0.0);
        if nodes > 1.0 {
            // Marker skew after the pipes drain: flush latency plus the
            // last packet's departure cooldown on both fabrics.
            let wait = (input.force_pipe_latency as f64
                + 2.0 * input.packet_cooldown as f64)
                .min(exchange);
            stall_cycles[0] = wait; // wait-neighbor-sync
            stall_cycles[1] = exchange - wait; // ring-backpressure
        } else {
            stall_cycles[4] = exchange; // drained (no neighbours to wait on)
        }
    }
    let idle_sum: f64 = stall_cycles.iter().sum();
    let mut stall_shares = [0.0f64; STALL_CLASSES];
    if idle_sum > 0.0 {
        for (share, cycles) in stall_shares.iter_mut().zip(stall_cycles.iter()) {
            *share = cycles / idle_sum;
        }
    }

    Prediction {
        pass_rate,
        candidates_per_cell,
        valid_per_cell,
        bcast_interval: interval,
        filter_bound,
        force_bound,
        bcast_bound,
        sync_tail,
        force_cycles,
        mu_cycles,
        cycles_per_step,
        occupancy,
        pos_packets_per_step: pos_packets,
        frc_packets_per_step: frc_packets,
        tx_cooldown,
        stall_shares,
    }
}

/// Exact distinct (chip, send-peer) link count over the whole grid —
/// the number of end-of-phase marker packets per fabric per step.
fn peer_link_count(input: &ModelInput) -> u64 {
    let (gx, gy, gz) = input.grid;
    let (bx, by, bz) = input.block;
    let (dx, dy, dz) = (gx * bx, gy * by, gz * bz);
    let mut links = 0u64;
    for nx in 0..gx {
        for ny in 0..gy {
            for nz in 0..gz {
                let mut peers: Vec<(u32, u32, u32)> = Vec::new();
                for cx in (nx * bx)..(nx * bx + bx) {
                    for cy in (ny * by)..(ny * by + by) {
                        for cz in (nz * bz)..(nz * bz + bz) {
                            for &(ox, oy, oz) in &HALF_SHELL {
                                let wrap = |v: u32, o: i32, d: u32| -> u32 {
                                    (v as i64 + o as i64).rem_euclid(d as i64) as u32
                                };
                                let dest =
                                    (wrap(cx, ox, dx), wrap(cy, oy, dy), wrap(cz, oz, dz));
                                let chip = (dest.0 / bx, dest.1 / by, dest.2 / bz);
                                if chip != (nx, ny, nz) && !peers.contains(&chip) {
                                    peers.push(chip);
                                }
                            }
                        }
                    }
                }
                links += peers.len() as u64;
            }
        }
    }
    links
}

/// Ground truth distilled from a finished run (report + stall
/// ledger). Built by the cluster crate; plain numbers here.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Measured {
    /// Steps completed.
    pub steps: u64,
    /// Nodes simulated.
    pub nodes: u64,
    /// Wall cycles per step.
    pub cycles_per_step: f64,
    /// Mean force-phase cycles per (node, step).
    pub force_cycles: f64,
    /// Mean motion-update cycles per (node, step).
    pub mu_cycles: f64,
    /// Force-phase occupancy: ledger productive / attributed.
    pub occupancy: f64,
    /// Position-fabric packets per step (cluster-global).
    pub pos_packets_per_step: f64,
    /// Force-fabric packets per step (cluster-global).
    pub frc_packets_per_step: f64,
    /// Mean (wait-neighbor-sync + drained) cycles per (node, step).
    pub sync_tail: f64,
    /// Idle share per stall class (fractions of total idle).
    pub stall_shares: [f64; STALL_CLASSES],
}

/// Gate thresholds for the divergence report. The defaults are
/// calibrated against the dense fig16 smoke workloads (see DESIGN.md
/// §12 — "calibration method"); `enginebench` enforces them in CI.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Gate {
    /// Max |rel err| on cycles per step.
    pub cycles_rel: f64,
    /// Max |rel err| on mean force-phase cycles.
    pub force_rel: f64,
    /// Max |abs err| on occupancy (a fraction, so absolute).
    pub occupancy_abs: f64,
    /// Max |rel err| on either fabric's packets per step.
    pub packets_rel: f64,
    /// Max |abs err| on any stall class's idle share.
    pub stall_share_abs: f64,
}

impl Default for Gate {
    fn default() -> Self {
        Gate {
            cycles_rel: 0.15,
            force_rel: 0.15,
            occupancy_abs: 0.15,
            packets_rel: 0.10,
            stall_share_abs: 0.25,
        }
    }
}

fn rel_err(predicted: f64, measured: f64) -> f64 {
    if measured == 0.0 {
        if predicted == 0.0 {
            0.0
        } else {
            f64::INFINITY
        }
    } else {
        (predicted - measured) / measured
    }
}

/// The model-vs-measured divergence report.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Divergence {
    /// Relative error on cycles per step.
    pub cycles_rel: f64,
    /// Relative error on mean force-phase cycles.
    pub force_rel: f64,
    /// Relative error on mean motion-update cycles.
    pub mu_rel: f64,
    /// Absolute error on occupancy.
    pub occupancy_abs: f64,
    /// Relative error on position-fabric packets per step.
    pub pos_packets_rel: f64,
    /// Relative error on force-fabric packets per step.
    pub frc_packets_rel: f64,
    /// Relative error on the sync tail.
    pub sync_tail_rel: f64,
    /// Absolute error per stall class's idle share.
    pub stall_share_abs: [f64; STALL_CLASSES],
}

impl Divergence {
    /// Compare a prediction against ground truth.
    pub fn compare(pred: &Prediction, meas: &Measured) -> Self {
        let mut stall_share_abs = [0.0f64; STALL_CLASSES];
        for (out, (p, m)) in stall_share_abs
            .iter_mut()
            .zip(pred.stall_shares.iter().zip(meas.stall_shares.iter()))
        {
            *out = (p - m).abs();
        }
        Divergence {
            cycles_rel: rel_err(pred.cycles_per_step, meas.cycles_per_step),
            force_rel: rel_err(pred.force_cycles, meas.force_cycles),
            mu_rel: rel_err(pred.mu_cycles, meas.mu_cycles),
            occupancy_abs: (pred.occupancy - meas.occupancy).abs(),
            pos_packets_rel: rel_err(pred.pos_packets_per_step, meas.pos_packets_per_step),
            frc_packets_rel: rel_err(pred.frc_packets_per_step, meas.frc_packets_per_step),
            sync_tail_rel: rel_err(pred.sync_tail, meas.sync_tail),
            stall_share_abs,
        }
    }

    /// Worst stall-share absolute error.
    pub fn max_stall_share_abs(&self) -> f64 {
        self.stall_share_abs.iter().cloned().fold(0.0, f64::max)
    }

    /// Gate violations (empty = within thresholds). Packet errors are
    /// only gated when the run had inter-node traffic; `mu_rel` and
    /// `sync_tail_rel` are reported but not gated (see DESIGN.md §12).
    pub fn violations(&self, gate: &Gate, meas: &Measured) -> Vec<String> {
        let mut out = Vec::new();
        let mut check = |name: &str, err: f64, limit: f64| {
            if err.abs() > limit {
                out.push(format!("{name}: |{err:.4}| > {limit}"));
            }
        };
        check("cycles_rel", self.cycles_rel, gate.cycles_rel);
        check("force_rel", self.force_rel, gate.force_rel);
        check("occupancy_abs", self.occupancy_abs, gate.occupancy_abs);
        if meas.pos_packets_per_step > 0.0 {
            check("pos_packets_rel", self.pos_packets_rel, gate.packets_rel);
        }
        if meas.frc_packets_per_step > 0.0 {
            check("frc_packets_rel", self.frc_packets_rel, gate.packets_rel);
        }
        check(
            "max_stall_share_abs",
            self.max_stall_share_abs(),
            gate.stall_share_abs,
        );
        out
    }
}

fn shares_json(shares: &[f64; STALL_CLASSES]) -> Json {
    let mut obj = Json::obj();
    for (label, v) in STALL_LABELS.iter().zip(shares.iter()) {
        obj = obj.field(label, Json::fixed(*v, 6));
    }
    obj.build()
}

/// The full `modelcheck` document: prediction, measurement, and
/// divergence side by side.
pub fn modelcheck_json(pred: &Prediction, meas: &Measured, gate: &Gate) -> Json {
    let div = Divergence::compare(pred, meas);
    let violations = div.violations(gate, meas);
    Json::obj()
        .field(
            "predicted",
            Json::obj()
                .field("pass_rate", Json::fixed(pred.pass_rate, 6))
                .field("candidates_per_cell", Json::fixed(pred.candidates_per_cell, 1))
                .field("valid_per_cell", Json::fixed(pred.valid_per_cell, 1))
                .field("bcast_interval", Json::fixed(pred.bcast_interval, 3))
                .field("filter_bound", Json::fixed(pred.filter_bound, 1))
                .field("force_bound", Json::fixed(pred.force_bound, 1))
                .field("bcast_bound", Json::fixed(pred.bcast_bound, 1))
                .field("sync_tail", Json::fixed(pred.sync_tail, 1))
                .field("force_cycles", Json::fixed(pred.force_cycles, 1))
                .field("mu_cycles", Json::fixed(pred.mu_cycles, 1))
                .field("cycles_per_step", Json::fixed(pred.cycles_per_step, 1))
                .field("occupancy", Json::fixed(pred.occupancy, 6))
                .field("pos_packets_per_step", Json::fixed(pred.pos_packets_per_step, 1))
                .field("frc_packets_per_step", Json::fixed(pred.frc_packets_per_step, 1))
                .field("stall_shares", shares_json(&pred.stall_shares))
                .build(),
        )
        .field(
            "measured",
            Json::obj()
                .field("cycles_per_step", Json::fixed(meas.cycles_per_step, 3))
                .field("force_cycles", Json::fixed(meas.force_cycles, 3))
                .field("mu_cycles", Json::fixed(meas.mu_cycles, 3))
                .field("occupancy", Json::fixed(meas.occupancy, 6))
                .field("pos_packets_per_step", Json::fixed(meas.pos_packets_per_step, 3))
                .field("frc_packets_per_step", Json::fixed(meas.frc_packets_per_step, 3))
                .field("sync_tail", Json::fixed(meas.sync_tail, 3))
                .field("stall_shares", shares_json(&meas.stall_shares))
                .build(),
        )
        .field(
            "divergence",
            Json::obj()
                .field("cycles_rel", Json::fixed(div.cycles_rel, 6))
                .field("force_rel", Json::fixed(div.force_rel, 6))
                .field("mu_rel", Json::fixed(div.mu_rel, 6))
                .field("occupancy_abs", Json::fixed(div.occupancy_abs, 6))
                .field("pos_packets_rel", Json::fixed(div.pos_packets_rel, 6))
                .field("frc_packets_rel", Json::fixed(div.frc_packets_rel, 6))
                .field("sync_tail_rel", Json::fixed(div.sync_tail_rel, 6))
                .field("stall_share_abs", shares_json(&div.stall_share_abs))
                .field(
                    "max_stall_share_abs",
                    Json::fixed(div.max_stall_share_abs(), 6),
                )
                .build(),
        )
        .field(
            "gate",
            Json::obj()
                .field("cycles_rel", gate.cycles_rel)
                .field("force_rel", gate.force_rel)
                .field("occupancy_abs", gate.occupancy_abs)
                .field("packets_rel", gate.packets_rel)
                .field("stall_share_abs", gate.stall_share_abs)
                .field("pass", violations.is_empty())
                .field(
                    "violations",
                    Json::Arr(violations.into_iter().map(Json::Str).collect()),
                )
                .build(),
        )
        .build()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_input() -> ModelInput {
        ModelInput {
            grid: (2, 1, 1),
            block: (1, 1, 2),
            per_cell: 4.0,
            filters_per_pe: 6,
            pes_per_spe: 1,
            spes_per_cbb: 1,
            force_pipe_latency: 43,
            mu_latency: 24,
            bcast_cooldown: 0,
            cutoff_cells: 1.0,
            packet_cooldown: 2,
            path_latency: 200.0,
            straggler_cycles: 0.0,
        }
    }

    #[test]
    fn pass_rates_match_geometry() {
        // Same cell: mean pair distance in the unit cube is ~0.66, so
        // most pairs pass at cutoff 1.
        let home = pair_pass_rate((0, 0, 0), 1.0);
        assert!(home > 0.9 && home <= 1.0, "home pass {home}");
        // Face/edge/corner neighbours pass progressively less often.
        let face = pair_pass_rate((1, 0, 0), 1.0);
        let edge = pair_pass_rate((1, 1, 0), 1.0);
        let corner = pair_pass_rate((1, 1, 1), 1.0);
        assert!(face > edge && edge > corner, "{face} {edge} {corner}");
        assert!(corner > 0.0);
        // Shrinking the cutoff shrinks every rate.
        assert!(pair_pass_rate((1, 0, 0), 0.5) < face);
        // Quadrature is deterministic.
        assert_eq!(face, pair_pass_rate((1, 0, 0), 1.0));
    }

    #[test]
    fn lattice_ejection_tracks_site_geometry() {
        // 4 particles on a k=2 lattice (x-major fill) all share the
        // x=0.25 plane: every +x-face pair sits at exactly the cutoff
        // (jitter decides, weight ½), while a +y-face neighbour has
        // sites well inside it — the fill order breaks symmetry.
        assert_eq!(lattice_sites(4).len(), 4);
        assert!((eject_rate(4.0, (1, 0, 0), 1.0) - 0.5).abs() < 1e-12);
        assert!(eject_rate(4.0, (0, 1, 0), 1.0) > eject_rate(4.0, (1, 0, 0), 1.0));
        // Corner neighbours' nearest sites are beyond the cutoff.
        assert_eq!(eject_rate(4.0, (1, 1, 1), 1.0), 0.0);
        // A full k=4 lattice (64/cell) restores per-axis symmetry.
        assert_eq!(
            eject_rate(64.0, (1, 0, 0), 1.0),
            eject_rate(64.0, (0, 0, 1), 1.0)
        );
    }

    #[test]
    fn prediction_is_internally_consistent() {
        let p = predict(&paper_input());
        assert!(p.pass_rate > 0.0 && p.pass_rate < 1.0);
        assert!(p.valid_per_cell < p.candidates_per_cell);
        assert!(p.force_cycles >= p.filter_bound.max(p.force_bound).max(p.bcast_bound));
        assert!(p.cycles_per_step > p.force_cycles);
        assert!(p.occupancy > 0.0 && p.occupancy <= 1.0);
        let share_sum: f64 = p.stall_shares.iter().sum();
        assert!((share_sum - 1.0).abs() < 1e-9 || share_sum == 0.0, "{share_sum}");
        // Two nodes exchanging positions: traffic predicted on both
        // fabrics, but force returns are sparser than broadcasts — a
        // visiting particle ejects at most one return per scanned cell,
        // and only when a pair passed the filter.
        assert!(p.pos_packets_per_step > 0.0);
        assert!(p.frc_packets_per_step > 0.0);
        assert!(p.frc_packets_per_step <= p.pos_packets_per_step);
    }

    #[test]
    fn single_chip_predicts_no_traffic() {
        let mut input = paper_input();
        input.grid = (1, 1, 1);
        input.block = (2, 1, 1);
        let p = predict(&input);
        assert_eq!(p.pos_packets_per_step, 0.0);
        assert_eq!(p.frc_packets_per_step, 0.0);
    }

    #[test]
    fn divergence_flags_misses_and_passes_matches() {
        let pred = predict(&paper_input());
        // A "measurement" that equals the prediction has zero divergence.
        let meas = Measured {
            steps: 4,
            nodes: 2,
            cycles_per_step: pred.cycles_per_step,
            force_cycles: pred.force_cycles,
            mu_cycles: pred.mu_cycles,
            occupancy: pred.occupancy,
            pos_packets_per_step: pred.pos_packets_per_step,
            frc_packets_per_step: pred.frc_packets_per_step,
            sync_tail: pred.sync_tail,
            stall_shares: pred.stall_shares,
        };
        let div = Divergence::compare(&pred, &meas);
        assert_eq!(div.cycles_rel, 0.0);
        assert_eq!(div.max_stall_share_abs(), 0.0);
        assert!(div.violations(&Gate::default(), &meas).is_empty());
        // A 2x miss violates the default gate.
        let mut off = meas;
        off.cycles_per_step *= 2.0;
        let div = Divergence::compare(&pred, &off);
        assert!(!div.violations(&Gate::default(), &off).is_empty());
    }

    #[test]
    fn modelcheck_json_round_trips() {
        let pred = predict(&paper_input());
        let meas = Measured {
            steps: 2,
            nodes: 2,
            cycles_per_step: pred.cycles_per_step * 1.05,
            force_cycles: pred.force_cycles,
            mu_cycles: pred.mu_cycles,
            occupancy: pred.occupancy,
            pos_packets_per_step: pred.pos_packets_per_step,
            frc_packets_per_step: pred.frc_packets_per_step,
            sync_tail: pred.sync_tail,
            stall_shares: pred.stall_shares,
        };
        let doc = modelcheck_json(&pred, &meas, &Gate::default());
        let parsed = Json::parse(&doc.pretty()).unwrap();
        assert_eq!(parsed, doc);
        assert_eq!(
            doc.get("gate").unwrap().get("pass"),
            Some(&Json::Bool(true))
        );
        assert!(doc.get("divergence").unwrap().get("cycles_rel").is_some());
    }
}
