//! Reliable per-link delivery: sequence numbers, cumulative acks, and
//! timeout retransmission with capped exponential backoff.
//!
//! The artifact's UDP fabric has no delivery guarantee — §5.4's cooldown
//! counters exist precisely to keep switch buffers from overflowing,
//! because one lost `last` marker permanently deadlocks chained sync
//! (§4.4). This layer closes that hazard: each *(channel, src, dst)*
//! link runs one [`LinkSender`]/[`LinkReceiver`] pair giving
//! exactly-once, in-order delivery under any finite fault schedule.
//!
//! The protocol is deliberately simple so its timing is deterministic
//! and engine-invariant:
//!
//! * the sender assigns sequence numbers from 1 and keeps every unacked
//!   packet buffered; on timeout it retransmits the **oldest** unacked
//!   packet (head-of-line stop-and-wait recovery) and doubles the
//!   timeout, capped at [`RelConfig::backoff_cap`];
//! * acks are cumulative ("everything ≤ `seq` received"), so a single
//!   surviving ack repairs the loss of any number of earlier acks;
//! * the receiver delivers in order, buffers ahead-of-sequence arrivals
//!   in a reorder window, and counts/discards duplicates.
//!
//! Convergence: any finite fault schedule stops injecting after some
//! transmission count N; after N the first timeout-driven retransmission
//! of the head packet gets through, the cumulative ack gets through
//! (possibly via later acks), and the window drains. Progress never
//! depends on a specific packet surviving, only on *some* transmission
//! eventually surviving — which infinitely-retrying timeouts guarantee.

use std::collections::BTreeMap;

/// Retransmission tuning.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RelConfig {
    /// Initial retransmission timeout in cycles: time from a packet's
    /// (re)transmission until the sender gives up waiting for its ack.
    /// Must exceed the round-trip (fabric latency × 2 + ack processing)
    /// or every packet retransmits spuriously.
    pub timeout: u64,
    /// Backoff cap: the doubled timeout never exceeds this.
    pub backoff_cap: u64,
}

impl RelConfig {
    /// Defaults sized for the paper topologies (switch latency 200,
    /// hyper-ring hops ≤ a few hundred cycles round-trip).
    pub const DEFAULT: RelConfig = RelConfig {
        timeout: 4_096,
        backoff_cap: 65_536,
    };

    /// Validate and normalize.
    pub fn new(timeout: u64, backoff_cap: u64) -> Self {
        assert!(timeout > 0, "timeout must be positive");
        RelConfig {
            timeout,
            backoff_cap: backoff_cap.max(timeout),
        }
    }
}

impl Default for RelConfig {
    fn default() -> Self {
        Self::DEFAULT
    }
}

/// One unacked in-flight packet.
#[derive(Clone, Debug)]
struct Inflight<T> {
    seq: u32,
    payload: T,
    /// Cycle at which the current wait expires.
    deadline: u64,
    /// Current timeout length (doubles per retransmission).
    timeout: u64,
    /// Retransmissions so far.
    attempts: u32,
}

/// Sender half of one reliable link.
#[derive(Clone, Debug)]
pub struct LinkSender<T> {
    cfg: RelConfig,
    next_seq: u32,
    window: BTreeMap<u32, Inflight<T>>,
    /// Total retransmissions performed.
    pub retransmits: u64,
    /// Acks processed (including stale ones).
    pub acks_seen: u64,
}

impl<T: Clone> LinkSender<T> {
    /// New sender.
    pub fn new(cfg: RelConfig) -> Self {
        LinkSender {
            cfg,
            next_seq: 1,
            window: BTreeMap::new(),
            retransmits: 0,
            acks_seen: 0,
        }
    }

    /// Assign the next sequence number to a fresh payload and start its
    /// retransmission clock at `now`. Returns the assigned sequence.
    pub fn launch(&mut self, now: u64, payload: T) -> u32 {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.window.insert(
            seq,
            Inflight {
                seq,
                payload,
                deadline: now + self.cfg.timeout,
                timeout: self.cfg.timeout,
                attempts: 0,
            },
        );
        seq
    }

    /// Process a cumulative ack: everything ≤ `seq` is delivered.
    /// Returns the number of packets retired. Progress resets the head
    /// packet's backoff to the base timeout (the link is alive again).
    pub fn on_ack(&mut self, now: u64, seq: u32) -> usize {
        self.acks_seen += 1;
        let retired: Vec<u32> = self
            .window
            .range(..=seq)
            .map(|(s, _)| *s)
            .collect();
        for s in &retired {
            self.window.remove(s);
        }
        if !retired.is_empty() {
            if let Some(head) = self.window.values_mut().next() {
                head.timeout = self.cfg.timeout;
                head.deadline = now + self.cfg.timeout;
                head.attempts = 0;
            }
        }
        retired.len()
    }

    /// If the oldest unacked packet's timeout expired at `now`, arm its
    /// retransmission: double its timeout (capped), bump its attempt
    /// count, and return a clone of the payload plus its sequence and
    /// attempt number. Head-of-line only — one retransmission per call.
    pub fn poll_retransmit(&mut self, now: u64) -> Option<(u32, T, u32)> {
        let cap = self.cfg.backoff_cap;
        let head = self.window.values_mut().next()?;
        if now < head.deadline {
            return None;
        }
        head.attempts += 1;
        head.timeout = (head.timeout * 2).min(cap);
        head.deadline = now + head.timeout;
        self.retransmits += 1;
        Some((head.seq, head.payload.clone(), head.attempts))
    }

    /// Earliest retransmission deadline among unacked packets, if any.
    /// Fast-forward and burst windows must not jump past this.
    pub fn next_retx_due(&self) -> Option<u64> {
        self.window.values().next().map(|p| p.deadline)
    }

    /// True when at least one packet has been retransmitted and is still
    /// unacked (used for `retransmit` stall attribution).
    pub fn retransmitting(&self) -> bool {
        self.window.values().next().is_some_and(|p| p.attempts > 0)
    }

    /// Unacked packets in flight.
    pub fn inflight(&self) -> usize {
        self.window.len()
    }

    /// Current head-of-line timeout (base timeout when idle).
    pub fn current_timeout(&self) -> u64 {
        self.window
            .values()
            .next()
            .map_or(self.cfg.timeout, |p| p.timeout)
    }
}

/// What [`LinkReceiver::accept`] decided about an arrival.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Accept<T> {
    /// In-order (possibly draining the reorder buffer): deliver these
    /// payloads to the application, then ack `cumulative`.
    Deliver {
        /// Payloads now deliverable, in sequence order.
        payloads: Vec<(u32, T)>,
        /// Highest in-order sequence received (the cumulative ack).
        cumulative: u32,
    },
    /// Ahead of sequence: buffered in the reorder window; re-ack the
    /// current cumulative point so the sender retransmits the gap.
    Buffered {
        /// Current cumulative ack to (re)send.
        cumulative: u32,
    },
    /// Already delivered: discard, but re-ack (the original ack may have
    /// been lost).
    Duplicate {
        /// Current cumulative ack to (re)send.
        cumulative: u32,
    },
}

/// Receiver half of one reliable link.
#[derive(Clone, Debug)]
pub struct LinkReceiver<T> {
    /// Next sequence expected in order.
    next_seq: u32,
    /// Ahead-of-sequence arrivals awaiting the gap fill.
    reorder: BTreeMap<u32, T>,
    /// Duplicate arrivals discarded.
    pub duplicates: u64,
    /// Packets delivered to the application.
    pub delivered: u64,
}

impl<T> LinkReceiver<T> {
    /// New receiver expecting sequence 1.
    pub fn new() -> Self {
        LinkReceiver {
            next_seq: 1,
            reorder: BTreeMap::new(),
            duplicates: 0,
            delivered: 0,
        }
    }

    /// Highest in-order sequence received so far.
    pub fn cumulative(&self) -> u32 {
        self.next_seq - 1
    }

    /// Packets parked in the reorder window.
    pub fn reordered(&self) -> usize {
        self.reorder.len()
    }

    /// Classify one arrival and drain the reorder window if it fills
    /// the gap.
    pub fn accept(&mut self, seq: u32, payload: T) -> Accept<T> {
        if seq < self.next_seq {
            self.duplicates += 1;
            return Accept::Duplicate {
                cumulative: self.cumulative(),
            };
        }
        if seq > self.next_seq {
            // Ahead of sequence; a second copy of a buffered seq is also
            // a duplicate.
            if self.reorder.insert(seq, payload).is_some() {
                self.duplicates += 1;
                return Accept::Duplicate {
                    cumulative: self.cumulative(),
                };
            }
            return Accept::Buffered {
                cumulative: self.cumulative(),
            };
        }
        // Exactly the expected sequence: deliver it plus any directly
        // following buffered packets.
        let mut payloads = vec![(seq, payload)];
        self.next_seq += 1;
        while let Some(p) = self.reorder.remove(&self.next_seq) {
            payloads.push((self.next_seq, p));
            self.next_seq += 1;
        }
        self.delivered += payloads.len() as u64;
        Accept::Deliver {
            payloads,
            cumulative: self.cumulative(),
        }
    }
}

impl<T> Default for LinkReceiver<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl fasda_ckpt::Persist for RelConfig {
    fn save(&self, w: &mut fasda_ckpt::Writer) {
        w.put_u64(self.timeout);
        w.put_u64(self.backoff_cap);
    }
    fn load(r: &mut fasda_ckpt::Reader<'_>) -> Result<Self, fasda_ckpt::CkptError> {
        let timeout = r.get_u64()?;
        let backoff_cap = r.get_u64()?;
        if timeout == 0 || backoff_cap < timeout {
            return Err(r.malformed(format!(
                "invalid reliability config: timeout {timeout}, cap {backoff_cap}"
            )));
        }
        Ok(RelConfig {
            timeout,
            backoff_cap,
        })
    }
}

impl<T: fasda_ckpt::Persist> fasda_ckpt::Persist for Inflight<T> {
    fn save(&self, w: &mut fasda_ckpt::Writer) {
        w.put_u32(self.seq);
        self.payload.save(w);
        w.put_u64(self.deadline);
        w.put_u64(self.timeout);
        w.put_u32(self.attempts);
    }
    fn load(r: &mut fasda_ckpt::Reader<'_>) -> Result<Self, fasda_ckpt::CkptError> {
        Ok(Inflight {
            seq: r.get_u32()?,
            payload: T::load(r)?,
            deadline: r.get_u64()?,
            timeout: r.get_u64()?,
            attempts: r.get_u32()?,
        })
    }
}

/// Checkpointing the full sender half: the retransmission window —
/// unacked payload copies, per-packet deadlines, and backoff state —
/// must survive a restore so in-flight recovery continues exactly where
/// the crashed run left it.
impl<T: fasda_ckpt::Persist> fasda_ckpt::Persist for LinkSender<T> {
    fn save(&self, w: &mut fasda_ckpt::Writer) {
        self.cfg.save(w);
        w.put_u32(self.next_seq);
        self.window.save(w);
        w.put_u64(self.retransmits);
        w.put_u64(self.acks_seen);
    }
    fn load(r: &mut fasda_ckpt::Reader<'_>) -> Result<Self, fasda_ckpt::CkptError> {
        let cfg = RelConfig::load(r)?;
        let next_seq = r.get_u32()?;
        let window: BTreeMap<u32, Inflight<T>> = fasda_ckpt::Persist::load(r)?;
        for (key, inflight) in &window {
            if *key != inflight.seq || *key >= next_seq {
                return Err(r.malformed(format!(
                    "inconsistent sender window entry: key {key}, seq {}, next_seq {next_seq}",
                    inflight.seq
                )));
            }
        }
        Ok(LinkSender {
            cfg,
            next_seq,
            window,
            retransmits: r.get_u64()?,
            acks_seen: r.get_u64()?,
        })
    }
}

impl<T: fasda_ckpt::Persist> fasda_ckpt::Persist for LinkReceiver<T> {
    fn save(&self, w: &mut fasda_ckpt::Writer) {
        w.put_u32(self.next_seq);
        self.reorder.save(w);
        w.put_u64(self.duplicates);
        w.put_u64(self.delivered);
    }
    fn load(r: &mut fasda_ckpt::Reader<'_>) -> Result<Self, fasda_ckpt::CkptError> {
        let next_seq = r.get_u32()?;
        if next_seq == 0 {
            return Err(r.malformed("receiver next_seq must start at 1"));
        }
        let reorder: BTreeMap<u32, T> = fasda_ckpt::Persist::load(r)?;
        if reorder.keys().next().is_some_and(|&k| k <= next_seq) {
            return Err(r.malformed("reorder window overlaps delivered prefix"));
        }
        Ok(LinkReceiver {
            next_seq,
            reorder,
            duplicates: r.get_u64()?,
            delivered: r.get_u64()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const CFG: RelConfig = RelConfig {
        timeout: 100,
        backoff_cap: 400,
    };

    #[test]
    fn in_order_delivery_and_cumulative_ack() {
        let mut rx = LinkReceiver::new();
        match rx.accept(1, "a") {
            Accept::Deliver {
                payloads,
                cumulative,
            } => {
                assert_eq!(payloads, vec![(1, "a")]);
                assert_eq!(cumulative, 1);
            }
            other => panic!("{other:?}"),
        }
        assert_eq!(rx.delivered, 1);
    }

    #[test]
    fn reorder_window_drains_on_gap_fill() {
        let mut rx = LinkReceiver::new();
        assert_eq!(rx.accept(3, "c"), Accept::Buffered { cumulative: 0 });
        assert_eq!(rx.accept(2, "b"), Accept::Buffered { cumulative: 0 });
        match rx.accept(1, "a") {
            Accept::Deliver {
                payloads,
                cumulative,
            } => {
                assert_eq!(payloads, vec![(1, "a"), (2, "b"), (3, "c")]);
                assert_eq!(cumulative, 3);
            }
            other => panic!("{other:?}"),
        }
        assert_eq!(rx.reordered(), 0);
        assert_eq!(rx.delivered, 3);
    }

    #[test]
    fn duplicates_discarded_and_reacked() {
        let mut rx = LinkReceiver::new();
        rx.accept(1, "a");
        assert_eq!(rx.accept(1, "a"), Accept::Duplicate { cumulative: 1 });
        // dup of a buffered ahead-of-seq packet
        rx.accept(3, "c");
        assert_eq!(rx.accept(3, "c"), Accept::Duplicate { cumulative: 1 });
        assert_eq!(rx.duplicates, 2);
    }

    #[test]
    fn sender_retires_on_cumulative_ack() {
        let mut tx = LinkSender::new(CFG);
        assert_eq!(tx.launch(0, "a"), 1);
        assert_eq!(tx.launch(0, "b"), 2);
        assert_eq!(tx.launch(0, "c"), 3);
        assert_eq!(tx.on_ack(10, 2), 2);
        assert_eq!(tx.inflight(), 1);
        assert_eq!(tx.on_ack(11, 3), 1);
        assert_eq!(tx.inflight(), 0);
        assert_eq!(tx.next_retx_due(), None);
    }

    #[test]
    fn timeout_retransmits_head_with_backoff() {
        let mut tx = LinkSender::new(CFG);
        tx.launch(0, "a");
        tx.launch(0, "b");
        assert_eq!(tx.poll_retransmit(99), None, "not yet due");
        let (seq, payload, attempt) = tx.poll_retransmit(100).expect("due");
        assert_eq!((seq, payload, attempt), (1, "a", 1));
        assert_eq!(tx.current_timeout(), 200, "doubled");
        assert_eq!(tx.poll_retransmit(150), None, "backoff holds");
        let (_, _, attempt) = tx.poll_retransmit(300).expect("due again");
        assert_eq!(attempt, 2);
        assert_eq!(tx.current_timeout(), 400);
        // cap
        tx.poll_retransmit(700).expect("due");
        assert_eq!(tx.current_timeout(), 400, "capped");
        assert_eq!(tx.retransmits, 3);
        assert!(tx.retransmitting());
    }

    #[test]
    fn ack_progress_resets_backoff() {
        let mut tx = LinkSender::new(CFG);
        tx.launch(0, "a");
        tx.launch(0, "b");
        tx.poll_retransmit(100);
        tx.poll_retransmit(300);
        assert_eq!(tx.current_timeout(), 400);
        tx.on_ack(310, 1);
        assert_eq!(tx.current_timeout(), CFG.timeout, "head reset");
        assert!(!tx.retransmitting());
        assert_eq!(tx.next_retx_due(), Some(310 + CFG.timeout));
    }

    #[test]
    fn stale_ack_changes_nothing() {
        let mut tx = LinkSender::new(CFG);
        tx.launch(0, "a");
        tx.on_ack(5, 1);
        assert_eq!(tx.on_ack(6, 1), 0, "stale");
        assert_eq!(tx.acks_seen, 2);
    }

    /// The exactly-once property under an adversarial (finite) schedule:
    /// simulate a lossy link end-to-end and check the receiver's
    /// delivered stream.
    #[test]
    fn finite_drop_schedule_converges_to_exactly_once_in_order() {
        // Drop decisions per transmission (true = drop); finite, then
        // everything gets through.
        let schedule = [
            true, true, false, true, false, false, true, true, true, false,
        ];
        let mut tx = LinkSender::new(CFG);
        let mut rx = LinkReceiver::new();
        let mut wire: Vec<(u64, u32, &str)> = Vec::new(); // (arrival, seq, payload)
        let mut tx_count = 0usize;
        let dropped = |n: &mut usize| {
            let d = schedule.get(*n).copied().unwrap_or(false);
            *n += 1;
            d
        };
        let mut delivered: Vec<(u32, &str)> = Vec::new();
        let payloads = ["a", "b", "c", "d", "e"];
        let mut now = 0u64;
        // launch everything up front
        for p in payloads {
            let seq = tx.launch(now, p);
            if !dropped(&mut tx_count) {
                wire.push((now + 10, seq, p));
            }
        }
        // run the clock
        for _ in 0..200 {
            now += 25;
            // arrivals
            wire.retain(|&(at, seq, p)| {
                if at <= now {
                    match rx.accept(seq, p) {
                        Accept::Deliver {
                            payloads,
                            cumulative,
                        } => {
                            delivered.extend(payloads);
                            tx.on_ack(now, cumulative);
                        }
                        Accept::Buffered { cumulative } | Accept::Duplicate { cumulative } => {
                            tx.on_ack(now, cumulative);
                        }
                    }
                    false
                } else {
                    true
                }
            });
            // retransmissions (head-of-line: at most one per tick)
            if let Some((seq, p, _attempt)) = tx.poll_retransmit(now) {
                if !dropped(&mut tx_count) {
                    wire.push((now + 10, seq, p));
                }
            }
            if tx.inflight() == 0 {
                break;
            }
        }
        assert_eq!(tx.inflight(), 0, "window drained");
        assert_eq!(
            delivered,
            vec![(1, "a"), (2, "b"), (3, "c"), (4, "d"), (5, "e")],
            "exactly once, in order"
        );
    }
}
