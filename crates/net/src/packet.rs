//! The 512-bit four-payload packet (paper Fig. 10–11).
//!
//! "A 512-bit AXI-Stream position (or force) packet that contains four
//! pieces of data is received and unpacked into separate data pieces with
//! headers that contain particle identification information." Both packet
//! kinds carry an in-band `last` flag used by the chained synchronization
//! protocol (§4.4); we additionally tag packets with the timestep and
//! phase they belong to so early-arriving traffic from a neighbour that
//! has already raced ahead one phase (the whole point of chained sync) is
//! credited to the right step.

use bytes::{Buf, BufMut, BytesMut};
use serde::{Deserialize, Serialize};

/// Wire size of one packet in bits (two 256-bit beats of a 512-bit
/// AXI-Stream word in the artifact's counters; we count 512 per packet
/// exactly as `out_traffic_packets_*` does).
pub const PACKET_BITS: u64 = 512;

/// Data pieces per packet.
pub const PAYLOADS_PER_PACKET: usize = 4;

/// What a packet carries — mirrors the separate position/force QSFP
/// ports of the testbed (§5.4) plus migration traffic.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PacketKind {
    /// Particle positions (force-phase broadcast traffic).
    Position,
    /// Accumulated neighbour forces returning home.
    Force,
    /// Migrating particles (motion-update phase).
    Migration,
}

/// A payload that can be framed into the 512-bit packet format.
pub trait WirePayload: Sized {
    /// Encoded size in bytes (must be ≤ 16 so four fit in 512 bits with
    /// headroom for the header beat).
    const WIRE_BYTES: usize;
    /// Serialize into a buffer.
    fn encode(&self, buf: &mut BytesMut);
    /// Deserialize from a buffer.
    fn decode(buf: &mut &[u8]) -> Option<Self>;
}

/// One inter-FPGA packet.
#[derive(Clone, Debug, PartialEq)]
pub struct Packet<T> {
    /// Traffic class.
    pub kind: PacketKind,
    /// Up to four data pieces. A `last`-only packet may be empty.
    pub payloads: Vec<T>,
    /// In-band last-data marker for chained synchronization.
    pub last: bool,
    /// Timestep the data belongs to.
    pub step: u64,
}

impl<T> Packet<T> {
    /// A data packet.
    pub fn data(kind: PacketKind, payloads: Vec<T>, step: u64) -> Self {
        assert!(
            payloads.len() <= PAYLOADS_PER_PACKET,
            "at most {PAYLOADS_PER_PACKET} payloads per packet"
        );
        Packet {
            kind,
            payloads,
            last: false,
            step,
        }
    }

    /// A bare `last` marker (empty payload).
    pub fn last_marker(kind: PacketKind, step: u64) -> Self {
        Packet {
            kind,
            payloads: Vec::new(),
            last: true,
            step,
        }
    }

    /// Wire size in bits — one 512-bit beat per packet, as counted by the
    /// artifact's traffic registers.
    pub fn wire_bits(&self) -> u64 {
        PACKET_BITS
    }
}

impl<T: WirePayload> Packet<T> {
    /// Serialize to wire bytes: header (kind, count, last, step) then the
    /// payloads, zero-padded to 64 bytes (512 bits).
    pub fn to_bytes(&self) -> BytesMut {
        let mut buf = BytesMut::with_capacity(PACKET_BITS as usize / 8);
        buf.put_u8(match self.kind {
            PacketKind::Position => 0,
            PacketKind::Force => 1,
            PacketKind::Migration => 2,
        });
        buf.put_u8(self.payloads.len() as u8);
        buf.put_u8(u8::from(self.last));
        buf.put_u8(0); // reserved
        buf.put_u32(self.step as u32);
        for p in &self.payloads {
            p.encode(&mut buf);
        }
        buf.resize(PACKET_BITS as usize / 8, 0);
        buf
    }

    /// Parse wire bytes produced by [`Packet::to_bytes`].
    pub fn from_bytes(mut bytes: &[u8]) -> Option<Self> {
        if bytes.len() < 8 {
            return None;
        }
        let kind = match bytes.get_u8() {
            0 => PacketKind::Position,
            1 => PacketKind::Force,
            2 => PacketKind::Migration,
            _ => return None,
        };
        let count = bytes.get_u8() as usize;
        if count > PAYLOADS_PER_PACKET {
            return None;
        }
        let last = bytes.get_u8() != 0;
        let _ = bytes.get_u8();
        let step = bytes.get_u32() as u64;
        let mut payloads = Vec::with_capacity(count);
        for _ in 0..count {
            payloads.push(T::decode(&mut bytes)?);
        }
        Some(Packet {
            kind,
            payloads,
            last,
            step,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Clone, Copy, Debug, PartialEq)]
    struct P(u64, u32);

    impl WirePayload for P {
        const WIRE_BYTES: usize = 12;
        fn encode(&self, buf: &mut BytesMut) {
            buf.put_u64(self.0);
            buf.put_u32(self.1);
        }
        fn decode(buf: &mut &[u8]) -> Option<Self> {
            if buf.len() < 12 {
                return None;
            }
            Some(P(buf.get_u64(), buf.get_u32()))
        }
    }

    #[test]
    fn roundtrip_full_packet() {
        let p = Packet::data(
            PacketKind::Position,
            vec![P(1, 2), P(3, 4), P(5, 6), P(7, 8)],
            42,
        );
        let bytes = p.to_bytes();
        assert_eq!(bytes.len() as u64 * 8, PACKET_BITS);
        let q: Packet<P> = Packet::from_bytes(&bytes).expect("parse");
        assert_eq!(p, q);
    }

    #[test]
    fn roundtrip_last_marker() {
        let p: Packet<P> = Packet::last_marker(PacketKind::Force, 7);
        let q: Packet<P> = Packet::from_bytes(&p.to_bytes()).expect("parse");
        assert!(q.last);
        assert!(q.payloads.is_empty());
        assert_eq!(q.step, 7);
        assert_eq!(q.kind, PacketKind::Force);
    }

    #[test]
    #[should_panic(expected = "at most 4 payloads")]
    fn overfull_packet_rejected() {
        let _ = Packet::data(PacketKind::Position, vec![P(0, 0); 5], 0);
    }

    #[test]
    fn garbage_rejected() {
        assert!(Packet::<P>::from_bytes(&[9u8; 64]).is_none());
        assert!(Packet::<P>::from_bytes(&[0u8; 3]).is_none());
        // count beyond payload bytes available
        let mut b = BytesMut::new();
        b.put_u8(0);
        b.put_u8(4);
        b.put_u8(0);
        b.put_u8(0);
        b.put_u32(0);
        b.resize(10, 0); // truncated
        assert!(Packet::<P>::from_bytes(&b).is_none());
    }
}
