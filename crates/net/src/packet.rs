//! The 512-bit four-payload packet (paper Fig. 10–11).
//!
//! "A 512-bit AXI-Stream position (or force) packet that contains four
//! pieces of data is received and unpacked into separate data pieces with
//! headers that contain particle identification information." Both packet
//! kinds carry an in-band `last` flag used by the chained synchronization
//! protocol (§4.4); we additionally tag packets with the timestep and
//! phase they belong to so early-arriving traffic from a neighbour that
//! has already raced ahead one phase (the whole point of chained sync) is
//! credited to the right step.
//!
//! The wire format carries a per-link sequence number and a CRC32
//! checksum for the reliable-delivery layer: the sequence number feeds
//! the receiver's dedup/reorder window, and [`Packet::from_bytes`]
//! rejects any frame whose checksum does not verify (a corrupted frame
//! is indistinguishable from a dropped one and is recovered by
//! retransmission).

use bytes::{Buf, BufMut, BytesMut};
use serde::{Deserialize, Serialize};

/// Wire size of one packet in bits (two 256-bit beats of a 512-bit
/// AXI-Stream word in the artifact's counters; we count 512 per packet
/// exactly as `out_traffic_packets_*` does).
pub const PACKET_BITS: u64 = 512;

/// Data pieces per packet.
pub const PAYLOADS_PER_PACKET: usize = 4;

/// Wire header size in bytes: kind(1) + count(1) + flags(1) +
/// reserved(1) + step(4) + seq(4) + crc32(4).
pub const HEADER_BYTES: usize = 16;

/// Byte offset of the CRC32 field inside the header.
const CRC_OFFSET: usize = 12;

/// CRC32 (IEEE 802.3 polynomial, reflected) over a byte slice chain.
/// Dependency-free: the 256-entry table is built in a `const` context.
const CRC_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
};

/// Incremental CRC32 update (`state` starts at `0xFFFF_FFFF`).
fn crc32_update(mut state: u32, bytes: &[u8]) -> u32 {
    for &b in bytes {
        state = CRC_TABLE[((state ^ b as u32) & 0xFF) as usize] ^ (state >> 8);
    }
    state
}

/// CRC32 of a full buffer.
pub fn crc32(bytes: &[u8]) -> u32 {
    !crc32_update(0xFFFF_FFFF, bytes)
}

/// What a packet carries — mirrors the separate position/force QSFP
/// ports of the testbed (§5.4) plus migration traffic.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PacketKind {
    /// Particle positions (force-phase broadcast traffic).
    Position,
    /// Accumulated neighbour forces returning home.
    Force,
    /// Migrating particles (motion-update phase).
    Migration,
}

/// A payload that can be framed into the 512-bit packet format.
pub trait WirePayload: Sized {
    /// Encoded size in bytes (must be ≤ 16 so four fit in 512 bits with
    /// headroom for the header beat).
    const WIRE_BYTES: usize;
    /// Serialize into a buffer.
    fn encode(&self, buf: &mut BytesMut);
    /// Deserialize from a buffer.
    fn decode(buf: &mut &[u8]) -> Option<Self>;
}

/// One inter-FPGA packet.
#[derive(Clone, Debug, PartialEq)]
pub struct Packet<T> {
    /// Traffic class.
    pub kind: PacketKind,
    /// Up to four data pieces. A `last`-only packet may be empty.
    pub payloads: Vec<T>,
    /// In-band last-data marker for chained synchronization.
    pub last: bool,
    /// Timestep the data belongs to.
    pub step: u64,
    /// Per-link sequence number assigned by the reliable-delivery
    /// layer (0 when reliability is off).
    pub seq: u32,
}

impl<T> Packet<T> {
    /// A data packet.
    pub fn data(kind: PacketKind, payloads: Vec<T>, step: u64) -> Self {
        assert!(
            payloads.len() <= PAYLOADS_PER_PACKET,
            "at most {PAYLOADS_PER_PACKET} payloads per packet"
        );
        Packet {
            kind,
            payloads,
            last: false,
            step,
            seq: 0,
        }
    }

    /// A bare `last` marker (empty payload).
    pub fn last_marker(kind: PacketKind, step: u64) -> Self {
        Packet {
            kind,
            payloads: Vec::new(),
            last: true,
            step,
            seq: 0,
        }
    }

    /// Tag the packet with a per-link sequence number.
    pub fn with_seq(mut self, seq: u32) -> Self {
        self.seq = seq;
        self
    }

    /// Wire size in bits — one 512-bit beat per packet, as counted by the
    /// artifact's traffic registers.
    pub fn wire_bits(&self) -> u64 {
        PACKET_BITS
    }
}

impl<T: WirePayload> Packet<T> {
    /// Serialize to wire bytes: 16-byte header (kind, count, flags, step,
    /// seq, crc32) then the payloads, zero-padded to at least 64 bytes
    /// (one 512-bit beat; four byte-aligned position payloads spill into
    /// a second beat and are kept whole). The CRC covers the entire frame
    /// with the CRC field itself zeroed.
    pub fn to_bytes(&self) -> BytesMut {
        let mut buf = BytesMut::with_capacity(PACKET_BITS as usize / 8);
        buf.put_u8(match self.kind {
            PacketKind::Position => 0,
            PacketKind::Force => 1,
            PacketKind::Migration => 2,
        });
        buf.put_u8(self.payloads.len() as u8);
        buf.put_u8(u8::from(self.last));
        buf.put_u8(0); // reserved
        buf.put_u32(self.step as u32);
        buf.put_u32(self.seq);
        buf.put_u32(0); // crc placeholder
        for p in &self.payloads {
            p.encode(&mut buf);
        }
        let min = PACKET_BITS as usize / 8;
        if buf.len() < min {
            buf.resize(min, 0);
        }
        let crc = crc32(&buf);
        buf[CRC_OFFSET..CRC_OFFSET + 4].copy_from_slice(&crc.to_be_bytes());
        buf
    }

    /// Parse wire bytes produced by [`Packet::to_bytes`]. Returns `None`
    /// (never panics) on truncated frames, unknown kinds, impossible
    /// payload counts, or any checksum mismatch — including single-bit
    /// flips anywhere in the frame.
    pub fn from_bytes(mut bytes: &[u8]) -> Option<Self> {
        if bytes.len() < HEADER_BYTES {
            return None;
        }
        // Verify the checksum over the frame with the CRC field zeroed.
        let mut state = crc32_update(0xFFFF_FFFF, &bytes[..CRC_OFFSET]);
        state = crc32_update(state, &[0, 0, 0, 0]);
        state = crc32_update(state, &bytes[CRC_OFFSET + 4..]);
        let want = u32::from_be_bytes([
            bytes[CRC_OFFSET],
            bytes[CRC_OFFSET + 1],
            bytes[CRC_OFFSET + 2],
            bytes[CRC_OFFSET + 3],
        ]);
        if !state != want {
            return None;
        }
        let kind = match bytes.get_u8() {
            0 => PacketKind::Position,
            1 => PacketKind::Force,
            2 => PacketKind::Migration,
            _ => return None,
        };
        let count = bytes.get_u8() as usize;
        if count > PAYLOADS_PER_PACKET {
            return None;
        }
        let last = bytes.get_u8() != 0;
        let _ = bytes.get_u8();
        let step = bytes.get_u32() as u64;
        let seq = bytes.get_u32();
        let _crc = bytes.get_u32();
        let mut payloads = Vec::with_capacity(count);
        for _ in 0..count {
            payloads.push(T::decode(&mut bytes)?);
        }
        Some(Packet {
            kind,
            payloads,
            last,
            step,
            seq,
        })
    }
}

impl fasda_ckpt::Persist for PacketKind {
    fn save(&self, w: &mut fasda_ckpt::Writer) {
        w.put_u8(match self {
            PacketKind::Position => 0,
            PacketKind::Force => 1,
            PacketKind::Migration => 2,
        });
    }
    fn load(r: &mut fasda_ckpt::Reader<'_>) -> Result<Self, fasda_ckpt::CkptError> {
        match r.get_u8()? {
            0 => Ok(PacketKind::Position),
            1 => Ok(PacketKind::Force),
            2 => Ok(PacketKind::Migration),
            b => Err(r.malformed(format!("invalid packet kind {b}"))),
        }
    }
}

impl<T: fasda_ckpt::Persist> fasda_ckpt::Persist for Packet<T> {
    fn save(&self, w: &mut fasda_ckpt::Writer) {
        self.kind.save(w);
        self.payloads.save(w);
        w.put_bool(self.last);
        w.put_u64(self.step);
        w.put_u32(self.seq);
    }
    fn load(r: &mut fasda_ckpt::Reader<'_>) -> Result<Self, fasda_ckpt::CkptError> {
        let kind = PacketKind::load(r)?;
        let payloads: Vec<T> = fasda_ckpt::Persist::load(r)?;
        if payloads.len() > PAYLOADS_PER_PACKET {
            return Err(r.malformed(format!("{} payloads in one packet", payloads.len())));
        }
        Ok(Packet {
            kind,
            payloads,
            last: r.get_bool()?,
            step: r.get_u64()?,
            seq: r.get_u32()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Clone, Copy, Debug, PartialEq)]
    struct P(u64, u32);

    impl WirePayload for P {
        const WIRE_BYTES: usize = 12;
        fn encode(&self, buf: &mut BytesMut) {
            buf.put_u64(self.0);
            buf.put_u32(self.1);
        }
        fn decode(buf: &mut &[u8]) -> Option<Self> {
            if buf.len() < 12 {
                return None;
            }
            Some(P(buf.get_u64(), buf.get_u32()))
        }
    }

    #[test]
    fn roundtrip_full_packet() {
        let p = Packet::data(
            PacketKind::Position,
            vec![P(1, 2), P(3, 4), P(5, 6), P(7, 8)],
            42,
        )
        .with_seq(1234);
        let bytes = p.to_bytes();
        assert_eq!(bytes.len() as u64 * 8, PACKET_BITS);
        let q: Packet<P> = Packet::from_bytes(&bytes).expect("parse");
        assert_eq!(p, q);
    }

    #[test]
    fn roundtrip_last_marker() {
        let p: Packet<P> = Packet::last_marker(PacketKind::Force, 7);
        let q: Packet<P> = Packet::from_bytes(&p.to_bytes()).expect("parse");
        assert!(q.last);
        assert!(q.payloads.is_empty());
        assert_eq!(q.step, 7);
        assert_eq!(q.kind, PacketKind::Force);
        assert_eq!(q.seq, 0);
    }

    #[test]
    fn oversize_payloads_survive_whole() {
        // 4 × 15-byte payloads + 16-byte header = 76 bytes > one beat;
        // the frame must not be truncated to 64 bytes (it still counts
        // as one 512-bit packet in the traffic registers).
        #[derive(Clone, Copy, Debug, PartialEq)]
        struct Wide([u8; 15]);
        impl WirePayload for Wide {
            const WIRE_BYTES: usize = 15;
            fn encode(&self, buf: &mut BytesMut) {
                buf.extend_from_slice(&self.0);
            }
            fn decode(buf: &mut &[u8]) -> Option<Self> {
                if buf.len() < 15 {
                    return None;
                }
                let mut v = [0u8; 15];
                v.copy_from_slice(&buf[..15]);
                *buf = &buf[15..];
                Some(Wide(v))
            }
        }
        let p = Packet::data(PacketKind::Position, vec![Wide([7; 15]); 4], 3);
        let bytes = p.to_bytes();
        assert!(bytes.len() > 64, "two-beat frame kept whole");
        let q: Packet<Wide> = Packet::from_bytes(&bytes).expect("parse");
        assert_eq!(p, q);
    }

    #[test]
    #[should_panic(expected = "at most 4 payloads")]
    fn overfull_packet_rejected() {
        let _ = Packet::data(PacketKind::Position, vec![P(0, 0); 5], 0);
    }

    #[test]
    fn garbage_rejected() {
        assert!(Packet::<P>::from_bytes(&[9u8; 64]).is_none());
        assert!(Packet::<P>::from_bytes(&[0u8; 3]).is_none());
    }

    #[test]
    fn bit_flip_rejected() {
        let p = Packet::data(PacketKind::Force, vec![P(11, 22)], 5).with_seq(9);
        let bytes = p.to_bytes();
        for i in 0..bytes.len() {
            for bit in 0..8 {
                let mut mutated = bytes.to_vec();
                mutated[i] ^= 1 << bit;
                assert!(
                    Packet::<P>::from_bytes(&mutated).is_none(),
                    "flip at byte {i} bit {bit} survived the checksum"
                );
            }
        }
    }

    #[test]
    fn truncation_rejected() {
        let p = Packet::data(PacketKind::Migration, vec![P(1, 2), P(3, 4)], 0);
        let bytes = p.to_bytes();
        for len in 0..bytes.len() {
            assert!(
                Packet::<P>::from_bytes(&bytes[..len]).is_none(),
                "truncated frame of {len} bytes parsed"
            );
        }
    }

    #[test]
    fn crc32_known_vector() {
        // IEEE CRC32 of "123456789" is 0xCBF43926.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }
}
