//! Inter-node topologies: switch star and hyper-rings (paper §4.1,
//! Fig. 8).
//!
//! The testbed connects every FPGA's QSFP28 ports to one 100 GbE switch;
//! logically the nodes form a 3-D torus. The paper also describes direct
//! FPGA-to-FPGA rings ("a hyper-ring of 2nd order", and 3rd order via
//! FMC), where latency grows with ring distance. [`Topology`] abstracts
//! both: it maps a `(src, dst)` node pair to a path latency in cycles.

use serde::{Deserialize, Serialize};

/// Node index in the cluster (dense, `0..n`).
pub type NodeId = usize;

/// Inter-node connection structure.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum Topology {
    /// All nodes attached to one store-and-forward switch: constant
    /// latency between any pair (plus serialization, handled by
    /// [`crate::switch::SwitchFabric`]).
    Switch {
        /// One-way switch traversal latency in cycles.
        latency: u64,
    },
    /// Nodes on a single ring with direct links; packets hop the shorter
    /// way around.
    HyperRing {
        /// Nodes on the ring.
        nodes: usize,
        /// Per-hop link latency in cycles.
        hop_latency: u64,
    },
    /// A 2nd-order hyper-ring: rings of rings. `inner` nodes per inner
    /// ring; hops within an inner ring cost `hop_latency`, moving between
    /// adjacent inner rings costs `bridge_latency`.
    HyperRing2 {
        /// Nodes per inner ring.
        inner: usize,
        /// Number of inner rings.
        rings: usize,
        /// Per-hop latency inside a ring.
        hop_latency: u64,
        /// Latency of a bridge hop between adjacent rings.
        bridge_latency: u64,
    },
}

impl Topology {
    /// The paper's testbed: Dell Z9100-ON switch, ~1 µs one-way at
    /// 200 MHz ≈ 200 cycles.
    pub const PAPER_SWITCH: Topology = Topology::Switch { latency: 200 };

    /// Total nodes the topology supports (`None` = unbounded).
    pub fn capacity(&self) -> Option<usize> {
        match self {
            Topology::Switch { .. } => None,
            Topology::HyperRing { nodes, .. } => Some(*nodes),
            Topology::HyperRing2 { inner, rings, .. } => Some(inner * rings),
        }
    }

    /// Ring distance (shorter way around) between positions on a ring of
    /// `n` nodes.
    fn ring_dist(a: usize, b: usize, n: usize) -> u64 {
        let d = (a as i64 - b as i64).rem_euclid(n as i64) as u64;
        d.min(n as u64 - d)
    }

    /// One-way path latency in cycles from `src` to `dst`.
    pub fn path_latency(&self, src: NodeId, dst: NodeId) -> u64 {
        if src == dst {
            return 0;
        }
        match *self {
            Topology::Switch { latency } => latency,
            Topology::HyperRing { nodes, hop_latency } => {
                Self::ring_dist(src, dst, nodes) * hop_latency
            }
            Topology::HyperRing2 {
                inner,
                rings,
                hop_latency,
                bridge_latency,
            } => {
                let (ra, pa) = (src / inner, src % inner);
                let (rb, pb) = (dst / inner, dst % inner);
                Self::ring_dist(ra, rb, rings) * bridge_latency
                    + Self::ring_dist(pa, pb, inner) * hop_latency
            }
        }
    }

    /// Minimum nonzero pair latency — the conservative lookahead window
    /// for parallel multi-chip simulation.
    pub fn min_latency(&self) -> u64 {
        match *self {
            Topology::Switch { latency } => latency,
            Topology::HyperRing { hop_latency, .. } => hop_latency,
            Topology::HyperRing2 {
                hop_latency,
                bridge_latency,
                ..
            } => hop_latency.min(bridge_latency),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn switch_is_uniform() {
        let t = Topology::Switch { latency: 200 };
        assert_eq!(t.path_latency(0, 5), 200);
        assert_eq!(t.path_latency(5, 0), 200);
        assert_eq!(t.path_latency(3, 3), 0);
        assert_eq!(t.min_latency(), 200);
        assert_eq!(t.capacity(), None);
    }

    #[test]
    fn ring_takes_shorter_way() {
        let t = Topology::HyperRing {
            nodes: 8,
            hop_latency: 10,
        };
        assert_eq!(t.path_latency(0, 1), 10);
        assert_eq!(t.path_latency(0, 7), 10, "wraps the short way");
        assert_eq!(t.path_latency(0, 4), 40, "diameter");
        assert_eq!(t.path_latency(2, 6), 40);
        assert_eq!(t.capacity(), Some(8));
    }

    #[test]
    fn ring_symmetric() {
        let t = Topology::HyperRing {
            nodes: 5,
            hop_latency: 7,
        };
        for a in 0..5 {
            for b in 0..5 {
                assert_eq!(t.path_latency(a, b), t.path_latency(b, a));
            }
        }
    }

    #[test]
    fn second_order_combines_components() {
        let t = Topology::HyperRing2 {
            inner: 4,
            rings: 3,
            hop_latency: 5,
            bridge_latency: 20,
        };
        // node 1 (ring 0, pos 1) → node 6 (ring 1, pos 2)
        assert_eq!(t.path_latency(1, 6), 20 + 5);
        // same ring
        assert_eq!(t.path_latency(0, 2), 10);
        // opposite rings, opposite positions: 1 bridge (3 rings → dist 1) + 2 hops
        assert_eq!(t.path_latency(0, 10), 20 + 10);
        assert_eq!(t.capacity(), Some(12));
        assert_eq!(t.min_latency(), 5);
    }
}
