//! Link bandwidth and delivery-time model.
//!
//! The testbed gives each FPGA two QSFP28 100 GbE ports — one for
//! positions, one for forces (§5.4) — through a Dell Z9100-ON switch.
//! [`SwitchFabric`] computes when a packet sent at some cycle arrives at
//! its destination: serialization on the source port (bandwidth), path
//! latency (topology), and destination-port contention, with per-port
//! next-free bookkeeping.

use crate::packet::PACKET_BITS;
use crate::topology::{NodeId, Topology};
use fasda_sim::rng;
use fasda_sim::Cycle;

/// Per-traffic-class link fabric.
#[derive(Clone, Debug)]
pub struct SwitchFabric {
    topology: Topology,
    /// Port bandwidth in bits per cycle. 100 Gb/s at 200 MHz = 500
    /// bits/cycle.
    bits_per_cycle: f64,
    tx_free: Vec<Cycle>,
    rx_free: Vec<Cycle>,
    /// Packet-loss probability per packet (UDP has no retransmission —
    /// §5.4's cooldown counters exist to keep this at zero by avoiding
    /// switch-buffer overruns). Default 0.
    loss_probability: f64,
    /// Deterministic xorshift state for loss decisions.
    loss_rng: u64,
    /// Packets dropped by injected loss.
    pub packets_lost: u64,
    /// Total bits offered (bandwidth accounting).
    pub bits_sent: u64,
    /// Total packets carried.
    pub packets: u64,
}

impl SwitchFabric {
    /// The paper's testbed rate: 100 Gbps ports at a 200 MHz fabric
    /// clock.
    pub const PAPER_BITS_PER_CYCLE: f64 = 100.0e9 / 200.0e6;

    /// New fabric over `nodes` endpoints.
    pub fn new(topology: Topology, nodes: usize, bits_per_cycle: f64) -> Self {
        if let Some(cap) = topology.capacity() {
            assert!(nodes <= cap, "topology capacity exceeded");
        }
        assert!(bits_per_cycle > 0.0);
        SwitchFabric {
            topology,
            bits_per_cycle,
            tx_free: vec![0; nodes],
            rx_free: vec![0; nodes],
            loss_probability: 0.0,
            loss_rng: rng::GOLDEN_GAMMA,
            packets_lost: 0,
            bits_sent: 0,
            packets: 0,
        }
    }

    /// Inject packet loss with the given per-packet probability
    /// (deterministic given `seed`). Models a switch dropping frames
    /// under buffer pressure — the failure mode the paper's transmission
    /// cooldown is designed to prevent.
    pub fn with_loss(mut self, probability: f64, seed: u64) -> Self {
        assert!((0.0..1.0).contains(&probability));
        self.loss_probability = probability;
        self.loss_rng = seed | 1;
        self
    }

    /// Paper-testbed fabric: switch star, 100 Gbps ports.
    pub fn paper(nodes: usize) -> Self {
        SwitchFabric::new(Topology::PAPER_SWITCH, nodes, Self::PAPER_BITS_PER_CYCLE)
    }

    /// The underlying topology.
    pub fn topology(&self) -> Topology {
        self.topology
    }

    /// Send one 512-bit packet at `cycle`; returns its delivery cycle,
    /// or `None` if the fabric dropped it (injected loss).
    pub fn send_lossy(&mut self, cycle: Cycle, src: NodeId, dst: NodeId) -> Option<Cycle> {
        if self.loss_probability > 0.0 {
            let u = rng::xorshift64star_unit(&mut self.loss_rng);
            if u < self.loss_probability {
                self.packets_lost += 1;
                // the sender's port time is still consumed
                let ser = (PACKET_BITS as f64 / self.bits_per_cycle).ceil() as u64;
                let tx_start = cycle.max(self.tx_free[src]);
                self.tx_free[src] = tx_start + ser;
                return None;
            }
        }
        Some(self.send(cycle, src, dst))
    }

    /// Account a packet the fault layer dropped (or killed) in flight:
    /// the source port still serializes the frame, but it never arrives.
    pub fn drop_at_tx(&mut self, cycle: Cycle, src: NodeId) {
        let ser = (PACKET_BITS as f64 / self.bits_per_cycle).ceil() as u64;
        let tx_start = cycle.max(self.tx_free[src]);
        self.tx_free[src] = tx_start + ser;
        self.packets_lost += 1;
    }

    /// Send one 512-bit packet at `cycle`; returns its delivery cycle.
    ///
    /// Equivalent to [`SwitchFabric::tx_serialize`] followed by
    /// [`SwitchFabric::rx_admit`] — the sharded engine performs the two
    /// halves on different processes (the source shard serializes, the
    /// destination shard admits) and this in-process composition is the
    /// oracle they must reproduce bit for bit.
    pub fn send(&mut self, cycle: Cycle, src: NodeId, dst: NodeId) -> Cycle {
        let arrive = self.tx_serialize(cycle, src, dst);
        self.rx_admit(arrive, dst)
    }

    /// Source-side half of a send: serialize on the source port and fly
    /// to `dst`. Returns the arrival cycle at the destination port, the
    /// input to [`SwitchFabric::rx_admit`]. Mutates only source-port
    /// state, so a shard owning `src` can run it without seeing `dst`'s
    /// port.
    pub fn tx_serialize(&mut self, cycle: Cycle, src: NodeId, dst: NodeId) -> Cycle {
        let ser = (PACKET_BITS as f64 / self.bits_per_cycle).ceil() as u64;
        let tx_start = cycle.max(self.tx_free[src]);
        let tx_done = tx_start + ser;
        self.tx_free[src] = tx_done;
        tx_done + self.topology.path_latency(src, dst)
    }

    /// Destination-side half of a send: contend for the destination port
    /// from `arrive` onward. Returns the delivery cycle. Counts the
    /// packet (traffic accounting lives on the admitting side, so shard
    /// tallies sum to the oracle's counters).
    pub fn rx_admit(&mut self, arrive: Cycle, dst: NodeId) -> Cycle {
        let ser = (PACKET_BITS as f64 / self.bits_per_cycle).ceil() as u64;
        let rx_start = arrive.max(self.rx_free[dst]);
        let rx_done = rx_start + ser;
        self.rx_free[dst] = rx_done;
        self.bits_sent += PACKET_BITS;
        self.packets += 1;
        rx_done
    }

    /// One node's (tx_free, rx_free) port clocks — the per-node slice of
    /// fabric state a shard owns.
    pub fn port_state(&self, node: NodeId) -> (Cycle, Cycle) {
        (self.tx_free[node], self.rx_free[node])
    }

    /// Overwrite one node's port clocks (checkpoint splicing: the
    /// coordinator adopts each node's ports from the owning shard).
    pub fn set_port_state(&mut self, node: NodeId, tx_free: Cycle, rx_free: Cycle) {
        self.tx_free[node] = tx_free;
        self.rx_free[node] = rx_free;
    }

    /// Average offered bandwidth in bits/cycle over a window.
    pub fn avg_bits_per_cycle(&self, window_cycles: u64) -> f64 {
        if window_cycles == 0 {
            0.0
        } else {
            self.bits_sent as f64 / window_cycles as f64
        }
    }

    /// Convert bits/cycle to Gbps for a given clock.
    pub fn to_gbps(bits_per_cycle: f64, clock_hz: f64) -> f64 {
        bits_per_cycle * clock_hz / 1.0e9
    }
}

/// Checkpointing: topology, bandwidth, and loss probability are
/// configuration; per-port next-free times, the loss RNG state, and the
/// traffic counters are state.
impl fasda_ckpt::Snapshot for SwitchFabric {
    fn snapshot(&self, w: &mut fasda_ckpt::Writer) {
        use fasda_ckpt::Persist;
        self.tx_free.save(w);
        self.rx_free.save(w);
        w.put_u64(self.loss_rng);
        w.put_u64(self.packets_lost);
        w.put_u64(self.bits_sent);
        w.put_u64(self.packets);
    }

    fn restore(&mut self, r: &mut fasda_ckpt::Reader<'_>) -> Result<(), fasda_ckpt::CkptError> {
        use fasda_ckpt::Persist;
        let tx_free: Vec<Cycle> = Persist::load(r)?;
        let rx_free: Vec<Cycle> = Persist::load(r)?;
        if tx_free.len() != self.tx_free.len() || rx_free.len() != self.rx_free.len() {
            return Err(r.malformed(format!(
                "fabric port count mismatch: snapshot has {}/{}, fabric has {}",
                tx_free.len(),
                rx_free.len(),
                self.tx_free.len()
            )));
        }
        let loss_rng = r.get_u64()?;
        if loss_rng == 0 {
            return Err(r.malformed("zero xorshift64* loss-RNG state"));
        }
        self.tx_free = tx_free;
        self.rx_free = rx_free;
        self.loss_rng = loss_rng;
        self.packets_lost = r.get_u64()?;
        self.bits_sent = r.get_u64()?;
        self.packets = r.get_u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fabric() -> SwitchFabric {
        SwitchFabric::new(Topology::Switch { latency: 200 }, 4, 512.0)
    }

    #[test]
    fn single_packet_latency() {
        let mut f = fabric();
        // ser = 1 cycle at 512 b/cyc; 1 (tx) + 200 (flight) + 1 (rx)
        assert_eq!(f.send(0, 0, 1), 202);
        assert_eq!(f.packets, 1);
        assert_eq!(f.bits_sent, 512);
    }

    #[test]
    fn source_port_serializes_back_to_back() {
        let mut f = fabric();
        let d1 = f.send(0, 0, 1);
        let d2 = f.send(0, 0, 2);
        assert_eq!(d1, 202);
        assert_eq!(d2, 203, "second packet waits one serialization slot");
    }

    #[test]
    fn destination_port_contends() {
        let mut f = fabric();
        let d1 = f.send(0, 0, 3);
        let d2 = f.send(0, 1, 3);
        assert_eq!(d1, 202);
        assert!(d2 > d1, "same rx port serializes: {d2}");
    }

    #[test]
    fn paper_rate_is_500_bits_per_cycle() {
        assert_eq!(SwitchFabric::PAPER_BITS_PER_CYCLE, 500.0);
        assert_eq!(SwitchFabric::to_gbps(125.0, 200.0e6), 25.0);
    }

    #[test]
    fn bandwidth_accounting() {
        let mut f = fabric();
        for _ in 0..10 {
            f.send(0, 0, 1);
        }
        assert_eq!(f.avg_bits_per_cycle(100), 51.2);
    }

    #[test]
    fn lossless_by_default() {
        let mut f = fabric();
        for _ in 0..100 {
            assert!(f.send_lossy(0, 0, 1).is_some());
        }
        assert_eq!(f.packets_lost, 0);
    }

    #[test]
    fn injected_loss_drops_expected_fraction() {
        let mut f = fabric().with_loss(0.25, 42);
        let mut dropped = 0;
        for _ in 0..10_000 {
            if f.send_lossy(0, 0, 1).is_none() {
                dropped += 1;
            }
        }
        assert_eq!(f.packets_lost, dropped);
        let rate = dropped as f64 / 10_000.0;
        assert!((rate - 0.25).abs() < 0.03, "loss rate {rate}");
    }

    #[test]
    #[should_panic(expected = "capacity exceeded")]
    fn ring_capacity_enforced() {
        SwitchFabric::new(
            Topology::HyperRing {
                nodes: 2,
                hop_latency: 1,
            },
            3,
            500.0,
        );
    }
}
