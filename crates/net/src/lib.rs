//! # fasda-net
//!
//! Inter-FPGA communication substrate (paper §4.1, §4.3–4.4).
//!
//! FASDA chips exchange 512-bit AXI-Stream packets, each carrying four
//! data pieces plus identification headers (Fig. 10–11), over a
//! switch-based or hyper-ring topology (Fig. 8) with UDP framing. This
//! crate models that stack:
//!
//! * [`packet::Packet`] — the 512-bit four-payload packet with its
//!   in-band `last` synchronization flag and step tag;
//! * [`encap::Packetizer`] — the P2R/F2R encapsulation chains of Fig. 11:
//!   per-peer staging registers, departure arbitration, and the
//!   transmission **cooldown counters** that spread communication peaks
//!   (§5.4);
//! * [`topology::Topology`] — switch-star and hyper-ring inter-node
//!   latency models;
//! * [`switch::SwitchFabric`] — per-port bandwidth and store-and-forward
//!   latency, yielding packet delivery times;
//! * [`sync::ChainedSync`] — the chained synchronization state machine of
//!   §4.4 (last-position / last-force / last-migration handshakes with
//!   immediate neighbours only), plus a bulk-synchronous baseline for the
//!   ablation study;
//! * [`fault::FaultPlan`] — seeded, deterministic link-fault schedules
//!   (drop / corrupt / duplicate / delay, plus targeted marker kills)
//!   modelling the UDP fabric misbehaving;
//! * [`reliable`] — per-link sequence numbers, cumulative acks, and
//!   timeout retransmission with capped exponential backoff, giving
//!   exactly-once in-order delivery under any finite fault schedule (the
//!   fix for the §4.4 lost-marker deadlock hazard).

pub mod encap;
pub mod fault;
pub mod packet;
pub mod reliable;
pub mod switch;
pub mod sync;
pub mod topology;
pub mod transport;

pub use encap::Packetizer;
pub use fault::{FaultChannel, FaultOutcome, FaultPlan, FaultState, LinkFaults, MarkerKill};
pub use packet::{Packet, PACKET_BITS, PAYLOADS_PER_PACKET};
pub use reliable::{Accept, LinkReceiver, LinkSender, RelConfig};
pub use switch::SwitchFabric;
pub use sync::{BulkBarrier, ChainedSync, SyncMode};
pub use topology::Topology;
pub use transport::{FrameLink, LinkError, MemLink, SocketLink};
