//! Chained synchronization (paper §4.4, Figs. 12–13) and the
//! bulk-synchronous baseline it replaces.
//!
//! Each node synchronizes **only with its immediate neighbours**, through
//! in-band `last` markers:
//!
//! 1. after routing all of its positions, a node sends *last-position* to
//!    every peer it broadcasts to;
//! 2. after processing all positions received from a peer (and returning
//!    the resulting forces), it answers that peer with *last-force*;
//! 3. a node may enter motion update once four criteria hold: last-pos
//!    sent to all send-peers, last-pos received from all recv-peers,
//!    last-force sent to all recv-peers, last-force received from all
//!    send-peers;
//! 4. motion update uses a single *last-migration* handshake per
//!    neighbour.
//!
//! Because a finished node proceeds immediately, a straggler delays only
//! the nodes that transitively depend on it — markers can therefore
//! arrive for a *future* step and are buffered per step.

use crate::packet::PacketKind;
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};
use std::hash::Hash;

/// Synchronization strategy for the cluster driver.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum SyncMode {
    /// The paper's chained synchronization.
    Chained,
    /// Bulk-synchronous baseline: a central barrier (host or central
    /// FPGA) with the given one-way latency in cycles.
    Bulk {
        /// One-way coordinator latency (cycles). A host round trip is
        /// "milliseconds for a single MD iteration" (§4.4) — 200k cycles
        /// per ms at 200 MHz; a central FPGA is cheaper but still far
        /// from free.
        latency: u64,
    },
}

#[derive(Clone, Debug)]
struct StepMarkers<P> {
    pos: HashSet<P>,
    frc: HashSet<P>,
    mig: HashSet<P>,
}

impl<P> Default for StepMarkers<P> {
    fn default() -> Self {
        StepMarkers {
            pos: HashSet::new(),
            frc: HashSet::new(),
            mig: HashSet::new(),
        }
    }
}

/// Per-node chained synchronization state machine.
#[derive(Clone, Debug)]
pub struct ChainedSync<P: Eq + Hash + Clone> {
    /// Peers this node sends positions to (and receives forces from).
    pub send_peers: Vec<P>,
    /// Peers this node receives positions from (and sends forces to).
    pub recv_peers: Vec<P>,
    /// Peers exchanged with during motion update (migration can cross
    /// any face: the union of the two sets).
    pub mig_peers: Vec<P>,
    step: u64,
    sent_pos: HashSet<P>,
    sent_frc: HashSet<P>,
    sent_mig: HashSet<P>,
    received: HashMap<u64, StepMarkers<P>>,
}

impl<P: Eq + Hash + Clone> ChainedSync<P> {
    /// Build the state machine for a node's neighbourhood.
    pub fn new(send_peers: Vec<P>, recv_peers: Vec<P>) -> Self {
        let mut mig_peers = send_peers.clone();
        for p in &recv_peers {
            if !mig_peers.contains(p) {
                mig_peers.push(p.clone());
            }
        }
        ChainedSync {
            send_peers,
            recv_peers,
            mig_peers,
            step: 0,
            sent_pos: HashSet::new(),
            sent_frc: HashSet::new(),
            sent_mig: HashSet::new(),
            received: HashMap::new(),
        }
    }

    /// Current step.
    pub fn step(&self) -> u64 {
        self.step
    }

    /// Arm the state machine for a new step. Markers already received for
    /// this step (from fast neighbours) remain credited.
    pub fn begin_step(&mut self, step: u64) {
        assert!(step >= self.step, "steps are monotonic");
        // Drop buffered markers for completed steps.
        self.received.retain(|&s, _| s >= step);
        self.step = step;
        self.sent_pos.clear();
        self.sent_frc.clear();
        self.sent_mig.clear();
    }

    /// Record an incoming `last` marker.
    pub fn on_marker(&mut self, kind: PacketKind, peer: P, step: u64) {
        debug_assert!(
            step >= self.step,
            "marker for an already-completed step"
        );
        let m = self.received.entry(step).or_default();
        match kind {
            PacketKind::Position => m.pos.insert(peer),
            PacketKind::Force => m.frc.insert(peer),
            PacketKind::Migration => m.mig.insert(peer),
        };
    }

    fn current(&self) -> Option<&StepMarkers<P>> {
        self.received.get(&self.step)
    }

    /// Note that *last-position* departed to `peer`.
    pub fn mark_last_pos_sent(&mut self, peer: P) {
        self.sent_pos.insert(peer);
    }

    /// Note that *last-force* departed to `peer`.
    pub fn mark_last_frc_sent(&mut self, peer: P) {
        self.sent_frc.insert(peer);
    }

    /// Note that *last-migration* departed to `peer`.
    pub fn mark_last_mig_sent(&mut self, peer: P) {
        self.sent_mig.insert(peer);
    }

    /// True if last-position has been sent to every send-peer.
    pub fn last_pos_sent_all(&self) -> bool {
        self.send_peers.iter().all(|p| self.sent_pos.contains(p))
    }

    /// True if last-position was received from `peer` for the current
    /// step.
    pub fn last_pos_received(&self, peer: &P) -> bool {
        self.current().is_some_and(|m| m.pos.contains(peer))
    }

    /// True if this node still owes `peer` a last-force marker.
    pub fn owes_last_frc(&self, peer: &P) -> bool {
        self.last_pos_received(peer) && !self.sent_frc.contains(peer)
    }

    /// The four force-phase criteria of §4.4 (Fig. 13): a node "can
    /// independently proceed to the motion update phase" when all hold.
    pub fn force_phase_complete(&self) -> bool {
        let Some(m) = self.current() else {
            return self.send_peers.is_empty() && self.recv_peers.is_empty();
        };
        self.last_pos_sent_all()
            && self.recv_peers.iter().all(|p| m.pos.contains(p))
            && self.recv_peers.iter().all(|p| self.sent_frc.contains(p))
            && self.send_peers.iter().all(|p| m.frc.contains(p))
    }

    /// The simplified single-handshake MU criterion (§4.4).
    pub fn mu_phase_complete(&self) -> bool {
        let sent_all = self.mig_peers.iter().all(|p| self.sent_mig.contains(p));
        if self.mig_peers.is_empty() {
            return true;
        }
        let Some(m) = self.current() else {
            return false;
        };
        sent_all && self.mig_peers.iter().all(|p| m.mig.contains(p))
    }
}

/// Bulk-synchronous baseline: every node reports to a coordinator, which
/// releases them all once the slowest has arrived.
#[derive(Clone, Debug)]
pub struct BulkBarrier {
    n: usize,
    latency: u64,
    arrived: HashSet<usize>,
    slowest: u64,
}

impl BulkBarrier {
    /// Barrier over `n` nodes with one-way coordinator latency.
    pub fn new(n: usize, latency: u64) -> Self {
        BulkBarrier {
            n,
            latency,
            arrived: HashSet::new(),
            slowest: 0,
        }
    }

    /// Node `id` reaches the barrier at `cycle`. Returns the global
    /// release cycle once every node has arrived.
    pub fn arrive(&mut self, id: usize, cycle: u64) -> Option<u64> {
        assert!(id < self.n);
        self.arrived.insert(id);
        self.slowest = self.slowest.max(cycle);
        if self.arrived.len() == self.n {
            // arrival message + release broadcast
            Some(self.slowest + 2 * self.latency)
        } else {
            None
        }
    }

    /// Reset for the next phase.
    pub fn reset(&mut self) {
        self.arrived.clear();
        self.slowest = 0;
    }
}

impl<P: fasda_ckpt::Persist + Ord + Hash + Eq> fasda_ckpt::Persist for StepMarkers<P> {
    fn save(&self, w: &mut fasda_ckpt::Writer) {
        self.pos.save(w);
        self.frc.save(w);
        self.mig.save(w);
    }
    fn load(r: &mut fasda_ckpt::Reader<'_>) -> Result<Self, fasda_ckpt::CkptError> {
        Ok(StepMarkers {
            pos: fasda_ckpt::Persist::load(r)?,
            frc: fasda_ckpt::Persist::load(r)?,
            mig: fasda_ckpt::Persist::load(r)?,
        })
    }
}

/// Checkpointing: the peer lists are configuration (rebuilt from the
/// topology); the step counter, sent-marker sets, and buffered received
/// markers — including markers already credited to *future* steps by
/// fast neighbours — are state.
impl<P: fasda_ckpt::Persist + Ord + Eq + Hash + Clone> fasda_ckpt::Snapshot for ChainedSync<P> {
    fn snapshot(&self, w: &mut fasda_ckpt::Writer) {
        use fasda_ckpt::Persist;
        w.put_u64(self.step);
        self.sent_pos.save(w);
        self.sent_frc.save(w);
        self.sent_mig.save(w);
        self.received.save(w);
    }

    fn restore(&mut self, r: &mut fasda_ckpt::Reader<'_>) -> Result<(), fasda_ckpt::CkptError> {
        use fasda_ckpt::Persist;
        self.step = r.get_u64()?;
        self.sent_pos = Persist::load(r)?;
        self.sent_frc = Persist::load(r)?;
        self.sent_mig = Persist::load(r)?;
        self.received = Persist::load(r)?;
        Ok(())
    }
}

/// Checkpointing: node count and latency are configuration; the arrival
/// set and slowest-arrival clock are state.
impl fasda_ckpt::Snapshot for BulkBarrier {
    fn snapshot(&self, w: &mut fasda_ckpt::Writer) {
        use fasda_ckpt::Persist;
        self.arrived.save(w);
        w.put_u64(self.slowest);
    }

    fn restore(&mut self, r: &mut fasda_ckpt::Reader<'_>) -> Result<(), fasda_ckpt::CkptError> {
        use fasda_ckpt::Persist;
        let arrived: HashSet<usize> = Persist::load(r)?;
        if arrived.iter().any(|&id| id >= self.n) {
            return Err(r.malformed("barrier arrival id out of range"));
        }
        self.arrived = arrived;
        self.slowest = r.get_u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sync2() -> ChainedSync<u8> {
        ChainedSync::new(vec![1, 2], vec![1, 2])
    }

    #[test]
    fn four_criteria_required() {
        let mut s = sync2();
        s.begin_step(0);
        assert!(!s.force_phase_complete());
        s.mark_last_pos_sent(1);
        s.mark_last_pos_sent(2);
        assert!(!s.force_phase_complete());
        s.on_marker(PacketKind::Position, 1, 0);
        s.on_marker(PacketKind::Position, 2, 0);
        assert!(s.owes_last_frc(&1));
        s.mark_last_frc_sent(1);
        s.mark_last_frc_sent(2);
        assert!(!s.force_phase_complete(), "still missing last-force in");
        s.on_marker(PacketKind::Force, 1, 0);
        assert!(!s.force_phase_complete());
        s.on_marker(PacketKind::Force, 2, 0);
        assert!(s.force_phase_complete());
    }

    #[test]
    fn early_markers_buffer_for_future_steps() {
        let mut s = sync2();
        s.begin_step(0);
        // fast neighbour already racing ahead: sends step-1 markers
        s.on_marker(PacketKind::Position, 1, 1);
        assert!(!s.last_pos_received(&1), "step-1 marker must not credit step 0");
        s.on_marker(PacketKind::Position, 1, 0);
        assert!(s.last_pos_received(&1));
        s.begin_step(1);
        assert!(s.last_pos_received(&1), "buffered step-1 marker now visible");
    }

    #[test]
    fn mu_single_handshake() {
        let mut s = sync2();
        s.begin_step(0);
        assert!(!s.mu_phase_complete());
        s.mark_last_mig_sent(1);
        s.mark_last_mig_sent(2);
        assert!(!s.mu_phase_complete());
        s.on_marker(PacketKind::Migration, 1, 0);
        s.on_marker(PacketKind::Migration, 2, 0);
        assert!(s.mu_phase_complete());
    }

    #[test]
    fn isolated_node_always_complete() {
        let mut s: ChainedSync<u8> = ChainedSync::new(vec![], vec![]);
        s.begin_step(0);
        assert!(s.force_phase_complete());
        assert!(s.mu_phase_complete());
    }

    #[test]
    fn bulk_barrier_waits_for_slowest() {
        let mut b = BulkBarrier::new(3, 100);
        assert_eq!(b.arrive(0, 1_000), None);
        assert_eq!(b.arrive(2, 5_000), None);
        assert_eq!(b.arrive(1, 2_000), Some(5_200));
        b.reset();
        assert_eq!(b.arrive(0, 10), None);
    }

    #[test]
    fn asymmetric_peer_sets() {
        // sends to {1}, receives from {2}
        let mut s = ChainedSync::new(vec![1], vec![2]);
        s.begin_step(3);
        s.mark_last_pos_sent(1);
        s.on_marker(PacketKind::Position, 2, 3);
        s.mark_last_frc_sent(2);
        s.on_marker(PacketKind::Force, 1, 3);
        assert!(s.force_phase_complete());
        assert_eq!(s.mig_peers.len(), 2);
    }
}
