//! Shard exchange transport: one trait, two carriers.
//!
//! The sharded cluster engine exchanges per-cycle event frames between
//! worker processes. Every frame travels as a length- and CRC-framed
//! blob (the same `len u64 | crc32 u32 | payload` framing as the
//! checkpoint container's sections — see `fasda_ckpt::frame`), so a torn
//! or corrupted stream is detected at the transport boundary instead of
//! surfacing as a garbled simulation state.
//!
//! [`FrameLink`] abstracts the carrier:
//!
//! * [`SocketLink`] — a Unix-domain stream socket, the same-host
//!   inter-process transport;
//! * [`TcpLink`] — a TCP stream (Nagle off: frames are latency-bound
//!   barrier traffic), the cross-host transport;
//! * [`MemLink`] — an in-process channel pair for hermetic tests and the
//!   thread-backed shard harness.
//!
//! All carriers move identical bytes; which one a run uses cannot
//! affect simulation results, only wall-clock time.

use fasda_ckpt::{frame, CkptError};
use std::io::{BufReader, BufWriter, Write};
use std::net::TcpStream;
use std::os::unix::net::UnixStream;
use std::sync::mpsc::{Receiver, Sender};

/// Transport failure: an I/O error, a failed CRC, or a peer that went
/// away mid-exchange.
#[derive(Debug)]
pub enum LinkError {
    /// The underlying carrier failed (closed socket, dead peer, …).
    Io(String),
    /// The frame arrived but failed validation (CRC, length bound).
    Frame(CkptError),
}

impl std::fmt::Display for LinkError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LinkError::Io(e) => write!(f, "shard link I/O error: {e}"),
            LinkError::Frame(e) => write!(f, "shard link frame error: {e}"),
        }
    }
}

impl std::error::Error for LinkError {}

impl From<std::io::Error> for LinkError {
    fn from(e: std::io::Error) -> Self {
        LinkError::Io(e.to_string())
    }
}

impl From<CkptError> for LinkError {
    fn from(e: CkptError) -> Self {
        match e {
            CkptError::Io(io) => LinkError::Io(io),
            other => LinkError::Frame(other),
        }
    }
}

/// A bidirectional, ordered, reliable frame pipe between two shard
/// endpoints. Sends are buffered and flushed per frame so a worker can
/// push its exchange frame and return to draining local compute while
/// the peer's frame is still in flight.
pub trait FrameLink: Send {
    /// Send one frame (length + CRC framing added by the link).
    fn send_frame(&mut self, payload: &[u8]) -> Result<(), LinkError>;
    /// Block until one frame arrives; validates framing before returning.
    fn recv_frame(&mut self) -> Result<Vec<u8>, LinkError>;
}

/// [`FrameLink`] over a Unix-domain stream socket.
pub struct SocketLink {
    reader: BufReader<UnixStream>,
    writer: BufWriter<UnixStream>,
}

impl SocketLink {
    /// Wrap a connected stream. The stream is cloned internally so reads
    /// and writes buffer independently.
    pub fn new(stream: UnixStream) -> std::io::Result<Self> {
        let writer = BufWriter::new(stream.try_clone()?);
        Ok(SocketLink {
            reader: BufReader::new(stream),
            writer,
        })
    }

    /// A connected in-process socket pair (loopback testing).
    pub fn pair() -> std::io::Result<(Self, Self)> {
        let (a, b) = UnixStream::pair()?;
        Ok((SocketLink::new(a)?, SocketLink::new(b)?))
    }
}

impl FrameLink for SocketLink {
    fn send_frame(&mut self, payload: &[u8]) -> Result<(), LinkError> {
        frame::write_frame_to(&mut self.writer, payload)?;
        self.writer.flush()?;
        Ok(())
    }

    fn recv_frame(&mut self) -> Result<Vec<u8>, LinkError> {
        Ok(frame::read_frame_from(&mut self.reader, "shard-link")?)
    }
}

/// [`FrameLink`] over a TCP stream — byte-for-byte the same framing as
/// [`SocketLink`], so swapping the carrier cannot change what a run
/// computes, only where its processes live.
pub struct TcpLink {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

impl TcpLink {
    /// Wrap a connected stream. Disables Nagle's algorithm — exchange
    /// frames are small and on the critical path of every simulated
    /// cycle, so coalescing them for bandwidth costs exactly the wrong
    /// thing.
    pub fn new(stream: TcpStream) -> std::io::Result<Self> {
        stream.set_nodelay(true)?;
        let writer = BufWriter::new(stream.try_clone()?);
        Ok(TcpLink {
            reader: BufReader::new(stream),
            writer,
        })
    }

    /// Connect to `addr` (e.g. `127.0.0.1:7700` or `host:port`).
    pub fn connect(addr: &str) -> std::io::Result<Self> {
        TcpLink::new(TcpStream::connect(addr)?)
    }
}

impl FrameLink for TcpLink {
    fn send_frame(&mut self, payload: &[u8]) -> Result<(), LinkError> {
        frame::write_frame_to(&mut self.writer, payload)?;
        self.writer.flush()?;
        Ok(())
    }

    fn recv_frame(&mut self) -> Result<Vec<u8>, LinkError> {
        Ok(frame::read_frame_from(&mut self.reader, "shard-link")?)
    }
}

/// [`FrameLink`] over in-process channels. Frames still round-trip
/// through the CRC framing so the validation path matches the socket
/// carrier byte for byte.
pub struct MemLink {
    tx: Sender<Vec<u8>>,
    rx: Receiver<Vec<u8>>,
}

impl MemLink {
    /// A connected pair of in-memory links.
    pub fn pair() -> (Self, Self) {
        let (atx, brx) = std::sync::mpsc::channel();
        let (btx, arx) = std::sync::mpsc::channel();
        (MemLink { tx: atx, rx: arx }, MemLink { tx: btx, rx: brx })
    }
}

impl FrameLink for MemLink {
    fn send_frame(&mut self, payload: &[u8]) -> Result<(), LinkError> {
        let mut framed = Vec::with_capacity(payload.len() + frame::HEADER_BYTES);
        frame::write_frame(&mut framed, payload);
        self.tx
            .send(framed)
            .map_err(|_| LinkError::Io("peer hung up".to_string()))
    }

    fn recv_frame(&mut self) -> Result<Vec<u8>, LinkError> {
        let framed = self
            .rx
            .recv()
            .map_err(|_| LinkError::Io("peer hung up".to_string()))?;
        let mut rd = &framed[..];
        Ok(frame::read_frame_from(&mut rd, "shard-link")?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(mut a: impl FrameLink, mut b: impl FrameLink) {
        a.send_frame(b"hello").expect("send");
        a.send_frame(&[]).expect("send empty");
        assert_eq!(b.recv_frame().expect("recv"), b"hello");
        assert_eq!(b.recv_frame().expect("recv"), Vec::<u8>::new());
        b.send_frame(&vec![0xAB; 100_000]).expect("send big");
        assert_eq!(a.recv_frame().expect("recv big").len(), 100_000);
    }

    #[test]
    fn socket_link_roundtrip() {
        let (a, b) = SocketLink::pair().expect("pair");
        roundtrip(a, b);
    }

    #[test]
    fn mem_link_roundtrip() {
        let (a, b) = MemLink::pair();
        roundtrip(a, b);
    }

    #[test]
    fn tcp_link_roundtrip() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let dial = std::thread::spawn(move || TcpLink::connect(&addr.to_string()).expect("dial"));
        let (stream, _) = listener.accept().expect("accept");
        let a = TcpLink::new(stream).expect("link");
        let b = dial.join().expect("join");
        roundtrip(a, b);
    }

    #[test]
    fn corrupt_frame_is_rejected() {
        let (a, b) = UnixStream::pair().expect("pair");
        let mut rx = SocketLink::new(b).expect("link");
        // A valid frame, then one whose payload was flipped in flight.
        let mut raw = BufWriter::new(a);
        let mut framed = Vec::new();
        fasda_ckpt::frame::write_frame(&mut framed, b"payload");
        raw.write_all(&framed).expect("raw write");
        let last = framed.len() - 1;
        framed[last] ^= 0xFF;
        raw.write_all(&framed).expect("raw write");
        raw.flush().expect("flush");
        assert_eq!(rx.recv_frame().expect("good frame"), b"payload");
        assert!(matches!(rx.recv_frame(), Err(LinkError::Frame(_))));
    }

    #[test]
    fn allocation_bomb_length_is_rejected() {
        let (a, b) = UnixStream::pair().expect("pair");
        let mut rx = SocketLink::new(b).expect("link");
        let mut raw = BufWriter::new(a);
        raw.write_all(&u64::MAX.to_le_bytes()).expect("len");
        raw.write_all(&0u32.to_le_bytes()).expect("crc");
        raw.flush().expect("flush");
        assert!(matches!(rx.recv_frame(), Err(LinkError::Frame(_))));
    }
}
