//! Deterministic link-fault injection.
//!
//! A [`FaultPlan`] describes, per traffic class, what a flaky fabric
//! does to packets: probabilistic drop / corrupt / duplicate / delay
//! schedules plus targeted *kill directives* ("drop the Nth marker
//! transmitted on link L"), the latter reproducing the exact failure
//! mode that deadlocks chained synchronization (§4.4) — a lost in-band
//! `last` marker.
//!
//! On top of the independent per-packet hazards the plan also models
//! *correlated* failures, the kind fleet-scale deployments actually see:
//!
//! * **burst losses** — a per-link Gilbert–Elliott good/bad chain
//!   (`burst=P_ENTER:P_EXIT:P_DROP`) whose bad state drops packets in
//!   runs rather than coin flips;
//! * **link flaps** — one link goes fully dark for a bounded window
//!   (`flap=CHAN:SRC->DST:@STEP+DURATION`);
//! * **partitions with heal** — two node sets lose every crossing link
//!   in both directions for a window
//!   (`partition=NODESET|NODESET:@STEP+DURATION`);
//! * **staggered crashes** — any number of `crash=NODE@STEP`
//!   directives, fired by the cluster driver, exercised by rolling
//!   recovery.
//!
//! Everything is deterministic: [`FaultState`] derives an independent
//! splitmix/xorshift stream per *(channel, src, dst)* link from the plan
//! seed (a second, differently-salted stream drives the burst chain so
//! burst plans never perturb the hazard draws), and decisions are taken
//! at transmit time in the serial network phase of the cluster driver.
//! Flap/partition windows consume no randomness at all: each directive
//! latches per link at the first transmission at-or-after its trigger
//! step and stays down for a fixed number of *cycles*, so the same plan
//! produces the same fault sequence on every engine (serial oracle,
//! parallel tick, burst stepping, sharded workers) and across any
//! checkpoint/resume split point.

use fasda_sim::rng;
use std::collections::{BTreeSet, HashMap};

/// Traffic classes a fault schedule can target, mirroring the cluster's
/// three packetizer channels.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum FaultChannel {
    /// Position broadcast traffic.
    Pos,
    /// Returned neighbour forces.
    Frc,
    /// Motion-update migration traffic.
    Mig,
}

impl FaultChannel {
    /// All channels, in index order.
    pub const ALL: [FaultChannel; 3] = [FaultChannel::Pos, FaultChannel::Frc, FaultChannel::Mig];

    /// Stable label (matches the CLI grammar and trace channel labels).
    pub fn label(self) -> &'static str {
        match self {
            FaultChannel::Pos => "pos",
            FaultChannel::Frc => "frc",
            FaultChannel::Mig => "mig",
        }
    }

    fn parse(s: &str) -> Option<Self> {
        match s {
            "pos" => Some(FaultChannel::Pos),
            "frc" => Some(FaultChannel::Frc),
            "mig" => Some(FaultChannel::Mig),
            _ => None,
        }
    }
}

/// Probabilistic per-link fault rates. All probabilities are per-packet
/// and independent; `delay_max` bounds the uniform extra-latency draw.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LinkFaults {
    /// Probability a transmitted packet is silently dropped.
    pub drop: f64,
    /// Probability a transmitted packet arrives with a corrupted frame
    /// (the receiver discards it on checksum failure).
    pub corrupt: f64,
    /// Probability a transmitted packet is duplicated in flight.
    pub duplicate: f64,
    /// Probability a transmitted packet is delayed by extra cycles.
    pub delay: f64,
    /// Maximum extra delay in cycles (uniform in `1..=delay_max`).
    pub delay_max: u64,
}

impl LinkFaults {
    /// No faults.
    pub const NONE: LinkFaults = LinkFaults {
        drop: 0.0,
        corrupt: 0.0,
        duplicate: 0.0,
        delay: 0.0,
        delay_max: 0,
    };

    /// True when every rate is zero.
    pub fn is_none(&self) -> bool {
        self.drop == 0.0 && self.corrupt == 0.0 && self.duplicate == 0.0 && self.delay == 0.0
    }

    fn validate(&self) {
        for p in [self.drop, self.corrupt, self.duplicate, self.delay] {
            assert!((0.0..1.0).contains(&p), "fault probability {p} out of [0,1)");
        }
        if self.delay > 0.0 {
            assert!(self.delay_max > 0, "delay faults need delay_max >= 1");
        }
    }
}

/// A targeted directive: drop the `nth` (1-based) *marker* packet
/// transmitted on one specific link. This is the §4.4 nightmare case —
/// without reliable delivery the receiver waits forever for a `last`
/// flag that never arrives.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct MarkerKill {
    /// Traffic class of the marker.
    pub channel: FaultChannel,
    /// Sending node.
    pub src: u32,
    /// Receiving node.
    pub dst: u32,
    /// Which marker transmission to kill (1 = first marker sent on the
    /// link, counting retransmissions).
    pub nth: u32,
}

/// A crash directive: kill node `node` mid-step at timestep `step`
/// (after its force phase has begun but before it completes). Models a
/// board dying mid-run; recovery restores from the latest checkpoint.
/// A plan may carry several, staggered across steps, to exercise
/// rolling recovery.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct CrashPoint {
    /// Node index to kill.
    pub node: u32,
    /// Timestep during which the crash fires.
    pub step: u64,
}

/// Gilbert–Elliott burst-loss parameters: a two-state (good/bad) chain
/// per link. Each transmission first draws a state transition
/// (`good → bad` with `p_enter`, `bad → good` with `p_exit`), then —
/// while in the bad state — drops the packet with `p_drop`. Mean burst
/// length is `1/p_exit` transmissions.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BurstModel {
    /// Probability of entering the bad state per transmission.
    pub p_enter: f64,
    /// Probability of leaving the bad state per transmission.
    pub p_exit: f64,
    /// Drop probability while the link is in the bad state.
    pub p_drop: f64,
}

impl BurstModel {
    fn validate(&self) {
        for p in [self.p_enter, self.p_exit, self.p_drop] {
            assert!((0.0..=1.0).contains(&p), "burst probability {p} out of [0,1]");
        }
    }
}

/// A link flap: one directed link on one channel goes fully dark for a
/// bounded window. The window *latches per link*: it opens at the first
/// transmission on the link whose source node has reached `step`, and
/// stays down for `duration` network cycles from that point — cycle
/// units, because a cut link freezes step progress and a step-bounded
/// window would never heal.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct LinkFlap {
    /// Traffic class cut by the flap.
    pub channel: FaultChannel,
    /// Sending node.
    pub src: u32,
    /// Receiving node.
    pub dst: u32,
    /// Timestep at which the window arms.
    pub step: u64,
    /// Window length in network cycles (>= 1).
    pub duration: u64,
}

/// A network partition with heal: every link crossing between node set
/// `a` and node set `b`, on every channel and in both directions, goes
/// dark for a bounded window. Same per-link latch-and-heal semantics as
/// [`LinkFlap`].
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct Partition {
    /// One side of the cut (sorted, deduplicated).
    pub a: Vec<u32>,
    /// The other side (sorted, deduplicated, disjoint from `a`).
    pub b: Vec<u32>,
    /// Timestep at which the window arms.
    pub step: u64,
    /// Window length in network cycles (>= 1).
    pub duration: u64,
}

impl Partition {
    /// True when a `src -> dst` transmission crosses the cut.
    pub fn cuts(&self, src: u32, dst: u32) -> bool {
        (self.a.binary_search(&src).is_ok() && self.b.binary_search(&dst).is_ok())
            || (self.b.binary_search(&src).is_ok() && self.a.binary_search(&dst).is_ok())
    }

    fn validate(&self) {
        assert!(!self.a.is_empty() && !self.b.is_empty(), "empty partition side");
        assert!(self.duration >= 1, "partition window needs duration >= 1");
        assert!(
            self.a.iter().all(|n| self.b.binary_search(n).is_err()),
            "partition sides overlap"
        );
    }
}

/// Format a node set the way the grammar spells it (`/`-joined items).
fn fmt_nodeset(set: &[u32]) -> String {
    set.iter().map(|n| n.to_string()).collect::<Vec<_>>().join("/")
}

/// Parse a grammar node set: `/`-joined items, each `N` or a half-open
/// range `N..M`.
fn parse_nodeset(s: &str, clause: &str) -> Result<Vec<u32>, String> {
    let mut out = Vec::new();
    for item in s.split('/').map(str::trim) {
        if item.is_empty() {
            return Err(format!("empty node-set item in `{clause}`"));
        }
        if let Some((lo, hi)) = item.split_once("..") {
            let lo: u32 = lo.parse().map_err(|_| format!("bad range start in `{clause}`"))?;
            let hi: u32 = hi.parse().map_err(|_| format!("bad range end in `{clause}`"))?;
            if hi <= lo {
                return Err(format!("empty range {lo}..{hi} in `{clause}`"));
            }
            out.extend(lo..hi);
        } else {
            out.push(item.parse().map_err(|_| format!("bad node in `{clause}`"))?);
        }
    }
    out.sort_unstable();
    out.dedup();
    Ok(out)
}

/// Parse an `@STEP+DURATION` window suffix.
fn parse_window(s: &str, clause: &str) -> Result<(u64, u64), String> {
    let body = s
        .strip_prefix('@')
        .ok_or_else(|| format!("`{clause}` needs an @STEP+DURATION window"))?;
    let (step, dur) = body
        .split_once('+')
        .ok_or_else(|| format!("`{clause}` needs @STEP+DURATION"))?;
    let step: u64 = step.parse().map_err(|_| format!("bad step in `{clause}`"))?;
    let dur: u64 = dur.parse().map_err(|_| format!("bad duration in `{clause}`"))?;
    if dur == 0 {
        return Err(format!("zero-length window in `{clause}`"));
    }
    Ok((step, dur))
}

/// A complete, seeded fault schedule for a run.
#[derive(Clone, Debug, PartialEq)]
pub struct FaultPlan {
    /// Base seed; each link derives an independent stream from it.
    pub seed: u64,
    /// Probabilistic rates per channel.
    pub rates: [LinkFaults; 3],
    /// Targeted marker kills.
    pub kills: Vec<MarkerKill>,
    /// Crash directives, possibly staggered across several steps.
    /// Handled by the cluster driver, not by [`FaultState`]: a crash
    /// aborts the run rather than perturbing traffic, so crashes do not
    /// count toward [`FaultPlan::is_none`].
    pub crashes: Vec<CrashPoint>,
    /// Optional Gilbert–Elliott burst-loss chain, all links.
    pub burst: Option<BurstModel>,
    /// Link-flap windows.
    pub flaps: Vec<LinkFlap>,
    /// Partition-with-heal windows.
    pub partitions: Vec<Partition>,
}

impl FaultPlan {
    /// A plan with no faults at all (useful as a parse identity).
    pub fn none() -> Self {
        FaultPlan {
            seed: 1,
            rates: [LinkFaults::NONE; 3],
            kills: Vec::new(),
            crashes: Vec::new(),
            burst: None,
            flaps: Vec::new(),
            partitions: Vec::new(),
        }
    }

    /// Uniform drop-only plan across all channels.
    pub fn drop_only(p: f64, seed: u64) -> Self {
        FaultPlan::none().with_seed(seed).with_rate(|r| r.drop = p)
    }

    /// Override the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed | 1;
        self
    }

    /// Mutate every channel's rates through a closure.
    pub fn with_rate(mut self, f: impl Fn(&mut LinkFaults)) -> Self {
        for r in &mut self.rates {
            f(r);
        }
        self.validate();
        self
    }

    /// Add a targeted marker kill.
    pub fn with_kill(mut self, kill: MarkerKill) -> Self {
        self.kills.push(kill);
        self
    }

    /// Add a crash directive.
    pub fn with_crash(mut self, node: u32, step: u64) -> Self {
        self.crashes.push(CrashPoint { node, step });
        self
    }

    /// Install a Gilbert–Elliott burst-loss chain on every link.
    pub fn with_burst(mut self, p_enter: f64, p_exit: f64, p_drop: f64) -> Self {
        self.burst = Some(BurstModel { p_enter, p_exit, p_drop });
        self.validate();
        self
    }

    /// Add a link-flap window.
    pub fn with_flap(mut self, flap: LinkFlap) -> Self {
        self.flaps.push(flap);
        self.validate();
        self
    }

    /// Add a partition-with-heal window between two node sets.
    pub fn with_partition(mut self, a: Vec<u32>, b: Vec<u32>, step: u64, duration: u64) -> Self {
        let (mut a, mut b) = (a, b);
        a.sort_unstable();
        a.dedup();
        b.sort_unstable();
        b.dedup();
        self.partitions.push(Partition { a, b, step, duration });
        self.validate();
        self
    }

    /// The same plan with every crash directive removed — what a resumed
    /// run executes so it does not crash again at the same step.
    pub fn without_crash(&self) -> Self {
        let mut plan = self.clone();
        plan.crashes.clear();
        plan
    }

    /// The same plan minus one specific crash directive — rolling
    /// recovery strips exactly the crash that fired and keeps any later
    /// staggered crashes armed.
    pub fn without_crash_at(&self, node: u32, step: u64) -> Self {
        let mut plan = self.clone();
        if let Some(i) = plan
            .crashes
            .iter()
            .position(|c| c.node == node && c.step == step)
        {
            plan.crashes.remove(i);
        }
        plan
    }

    /// The same plan with flap and partition windows removed — what a
    /// recovery pass executes after diagnosing a partition-induced
    /// deadlock.
    pub fn without_windows(&self) -> Self {
        let mut plan = self.clone();
        plan.flaps.clear();
        plan.partitions.clear();
        plan
    }

    /// The same plan minus every outage directive (crashes, flaps,
    /// partitions). This is the *recovery-invariant core* of a plan:
    /// resumed runs may strip any outage, so configuration fingerprints
    /// must hash this form to stay stable across recovery.
    pub fn without_outages(&self) -> Self {
        self.without_crash().without_windows()
    }

    /// True when the plan injects no *traffic* faults. Crash directives
    /// do not count: they are driver-level, need no per-link fault
    /// state, and must not force the fault layer on.
    pub fn is_none(&self) -> bool {
        self.kills.is_empty()
            && self.rates.iter().all(LinkFaults::is_none)
            && self.burst.is_none()
            && self.flaps.is_empty()
            && self.partitions.is_empty()
    }

    /// Number of window directives (flaps then partitions, in the index
    /// order used by [`FaultState`] latches and
    /// [`FaultPlan::outage_desc`]).
    pub fn num_windows(&self) -> usize {
        self.flaps.len() + self.partitions.len()
    }

    /// Human-readable description of window directive `idx` (flaps
    /// first, then partitions), spelled like the CLI grammar.
    pub fn outage_desc(&self, idx: usize) -> String {
        if idx < self.flaps.len() {
            let f = self.flaps[idx];
            format!(
                "flap {}:{}->{}:@{}+{}",
                f.channel.label(),
                f.src,
                f.dst,
                f.step,
                f.duration
            )
        } else {
            let p = &self.partitions[idx - self.flaps.len()];
            format!(
                "partition {}|{}:@{}+{}",
                fmt_nodeset(&p.a),
                fmt_nodeset(&p.b),
                p.step,
                p.duration
            )
        }
    }

    fn validate(&self) {
        for r in &self.rates {
            r.validate();
        }
        if let Some(b) = &self.burst {
            b.validate();
        }
        for f in &self.flaps {
            assert!(f.duration >= 1, "flap window needs duration >= 1");
        }
        for p in &self.partitions {
            p.validate();
        }
    }

    /// Parse the CLI grammar: comma-separated `key=value` clauses.
    ///
    /// ```text
    /// drop=0.05,corrupt=0.01,dup=0.01,delay=0.02:400,seed=7,
    /// kill=frc:3->4:1,burst=0.05:0.2:0.9,flap=pos:0->1:@3+500,
    /// partition=0/1|2..8:@3+4000,crash=1@5,crash=6@9
    /// ```
    ///
    /// * `drop|corrupt|dup` — per-packet probability, all channels;
    /// * `delay=P:MAX` — delay probability and max extra cycles;
    /// * `seed=N` — RNG seed;
    /// * `kill=CHAN:SRC->DST:N` — drop the Nth marker on that link
    ///   (`CHAN` ∈ `pos|frc|mig`);
    /// * `burst=P_ENTER:P_EXIT:P_DROP` — Gilbert–Elliott burst chain;
    /// * `flap=CHAN:SRC->DST:@STEP+DUR` — one link dark for DUR cycles
    ///   from its first transmission at-or-after STEP;
    /// * `partition=SET|SET:@STEP+DUR` — cut every crossing link both
    ///   ways; SET is `/`-joined items, each `N` or half-open `N..M`
    ///   (e.g. `0/1|2..8`);
    /// * `crash=NODE@STEP` — kill node NODE mid-step at timestep STEP;
    ///   may repeat for staggered crashes.
    pub fn parse(spec: &str) -> Result<Self, String> {
        let mut plan = FaultPlan::none();
        for clause in spec.split(',').map(str::trim).filter(|c| !c.is_empty()) {
            let (key, value) = clause
                .split_once('=')
                .ok_or_else(|| format!("fault clause `{clause}` is not key=value"))?;
            match key {
                "drop" | "corrupt" | "dup" => {
                    let p: f64 = value
                        .parse()
                        .map_err(|_| format!("bad probability in `{clause}`"))?;
                    if !(0.0..1.0).contains(&p) {
                        return Err(format!("probability {p} out of [0,1) in `{clause}`"));
                    }
                    plan = plan.with_rate(|r| match key {
                        "drop" => r.drop = p,
                        "corrupt" => r.corrupt = p,
                        _ => r.duplicate = p,
                    });
                }
                "delay" => {
                    let (p, max) = value
                        .split_once(':')
                        .ok_or_else(|| format!("`{clause}` needs delay=P:MAX"))?;
                    let p: f64 = p.parse().map_err(|_| format!("bad probability in `{clause}`"))?;
                    let max: u64 = max.parse().map_err(|_| format!("bad max delay in `{clause}`"))?;
                    if !(0.0..1.0).contains(&p) || max == 0 {
                        return Err(format!("bad delay spec `{clause}`"));
                    }
                    plan = plan.with_rate(|r| {
                        r.delay = p;
                        r.delay_max = max;
                    });
                }
                "seed" => {
                    let s: u64 = value.parse().map_err(|_| format!("bad seed in `{clause}`"))?;
                    plan = plan.with_seed(s);
                }
                "kill" => {
                    // CHAN:SRC->DST:N
                    let mut it = value.splitn(3, ':');
                    let chan = it
                        .next()
                        .and_then(FaultChannel::parse)
                        .ok_or_else(|| format!("bad channel in `{clause}`"))?;
                    let link = it.next().ok_or_else(|| format!("bad kill spec `{clause}`"))?;
                    let (src, dst) = link
                        .split_once("->")
                        .ok_or_else(|| format!("`{clause}` needs SRC->DST"))?;
                    let nth: u32 = it
                        .next()
                        .and_then(|n| n.parse().ok())
                        .filter(|&n| n >= 1)
                        .ok_or_else(|| format!("bad marker index in `{clause}`"))?;
                    let src: u32 = src.parse().map_err(|_| format!("bad src in `{clause}`"))?;
                    let dst: u32 = dst.parse().map_err(|_| format!("bad dst in `{clause}`"))?;
                    plan = plan.with_kill(MarkerKill {
                        channel: chan,
                        src,
                        dst,
                        nth,
                    });
                }
                "burst" => {
                    // P_ENTER:P_EXIT:P_DROP
                    let mut it = value.splitn(3, ':');
                    let mut next = || -> Result<f64, String> {
                        it.next()
                            .and_then(|p| p.parse().ok())
                            .filter(|p| (0.0..=1.0).contains(p))
                            .ok_or_else(|| format!("`{clause}` needs burst=P_ENTER:P_EXIT:P_DROP"))
                    };
                    let (p_enter, p_exit, p_drop) = (next()?, next()?, next()?);
                    if p_exit == 0.0 {
                        return Err(format!("burst never heals (p_exit=0) in `{clause}`"));
                    }
                    plan = plan.with_burst(p_enter, p_exit, p_drop);
                }
                "flap" => {
                    // CHAN:SRC->DST:@STEP+DUR
                    let mut it = value.splitn(3, ':');
                    let chan = it
                        .next()
                        .and_then(FaultChannel::parse)
                        .ok_or_else(|| format!("bad channel in `{clause}`"))?;
                    let link = it.next().ok_or_else(|| format!("bad flap spec `{clause}`"))?;
                    let (src, dst) = link
                        .split_once("->")
                        .ok_or_else(|| format!("`{clause}` needs SRC->DST"))?;
                    let src: u32 = src.parse().map_err(|_| format!("bad src in `{clause}`"))?;
                    let dst: u32 = dst.parse().map_err(|_| format!("bad dst in `{clause}`"))?;
                    let window = it.next().ok_or_else(|| format!("bad flap spec `{clause}`"))?;
                    let (step, duration) = parse_window(window, clause)?;
                    plan = plan.with_flap(LinkFlap {
                        channel: chan,
                        src,
                        dst,
                        step,
                        duration,
                    });
                }
                "partition" => {
                    // SET|SET:@STEP+DUR  (sets cannot contain ',' — the
                    // clause splitter owns that — so items join on '/').
                    let (sets, window) = value
                        .rsplit_once(':')
                        .ok_or_else(|| format!("`{clause}` needs SET|SET:@STEP+DUR"))?;
                    let (a, b) = sets
                        .split_once('|')
                        .ok_or_else(|| format!("`{clause}` needs two |-separated node sets"))?;
                    let a = parse_nodeset(a, clause)?;
                    let b = parse_nodeset(b, clause)?;
                    if a.is_empty() || b.is_empty() {
                        return Err(format!("empty partition side in `{clause}`"));
                    }
                    if a.iter().any(|n| b.binary_search(n).is_ok()) {
                        return Err(format!("partition sides overlap in `{clause}`"));
                    }
                    let (step, duration) = parse_window(window, clause)?;
                    plan = plan.with_partition(a, b, step, duration);
                }
                "crash" => {
                    let (node, step) = value
                        .split_once('@')
                        .ok_or_else(|| format!("`{clause}` needs crash=NODE@STEP"))?;
                    let node: u32 = node.parse().map_err(|_| format!("bad node in `{clause}`"))?;
                    let step: u64 = step.parse().map_err(|_| format!("bad step in `{clause}`"))?;
                    plan = plan.with_crash(node, step);
                }
                other => return Err(format!("unknown fault key `{other}`")),
            }
        }
        Ok(plan)
    }
}

/// What the fault layer decided for one transmission.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultOutcome {
    /// Deliver normally.
    Deliver,
    /// Silently drop (probabilistic schedule, burst chain, or an active
    /// flap/partition window).
    Drop,
    /// Drop via a targeted marker-kill directive.
    Kill,
    /// Deliver a corrupted frame (receiver discards on checksum).
    Corrupt,
    /// Deliver the packet *and* a duplicate copy.
    Duplicate,
    /// Deliver with extra latency.
    Delay(u64),
}

/// RNG lane for the independent per-packet hazard draws (the original
/// stream — lane 0 keeps existing schedules bit-identical).
const LANE_HAZARD: u64 = 0;
/// RNG lane for the Gilbert–Elliott burst chain.
const LANE_BURST: u64 = 1;

/// Per-link deterministic RNG and marker counters driving a
/// [`FaultPlan`] at runtime.
#[derive(Clone, Debug)]
pub struct FaultState {
    plan: FaultPlan,
    /// xorshift64* stream per (channel, src, dst), lazily derived.
    streams: HashMap<(FaultChannel, u32, u32), u64>,
    /// Marker transmissions seen per link (for kill directives).
    markers_sent: HashMap<(FaultChannel, u32, u32), u32>,
    /// Gilbert–Elliott chain per link: (burst-lane stream, in-bad-state),
    /// lazily derived. A separate stream so burst plans never perturb
    /// the hazard draws.
    burst_links: HashMap<(FaultChannel, u32, u32), (u64, bool)>,
    /// Latched flap/partition windows: (directive index, channel, src,
    /// dst) -> cycle the link heals at. A latch persists after healing
    /// so a directive fires at most once per link.
    windows: HashMap<(u32, FaultChannel, u32, u32), u64>,
    /// Window directives that have latched on at least one link —
    /// feeds partition-vs-deadlock diagnosis.
    fired: BTreeSet<u32>,
    /// Faults injected, by kind (drop, kill, corrupt, duplicate, delay).
    pub injected: [u64; 5],
}

impl FaultState {
    /// Runtime state for a plan.
    pub fn new(plan: FaultPlan) -> Self {
        plan.validate();
        FaultState {
            plan,
            streams: HashMap::new(),
            markers_sent: HashMap::new(),
            burst_links: HashMap::new(),
            windows: HashMap::new(),
            fired: BTreeSet::new(),
            injected: [0; 5],
        }
    }

    /// The plan being executed.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Total faults injected so far.
    pub fn total_injected(&self) -> u64 {
        self.injected.iter().sum()
    }

    /// Grammar-spelled descriptions of every flap/partition directive
    /// that has latched on at least one link so far — the raw material
    /// for naming the partition when a deadlock is diagnosed. A healed
    /// window still counts: its damage may be what starved the cluster.
    /// Sorted lexicographically — the canonical order the sharded merge
    /// also produces, so diagnoses are engine-invariant.
    pub fn fired_outages(&self) -> Vec<String> {
        let mut out: Vec<String> = self
            .fired
            .iter()
            .map(|&i| self.plan.outage_desc(i as usize))
            .collect();
        out.sort();
        out
    }

    /// Adopt the per-link RNG streams, marker counters, burst chains,
    /// and window latches of every link whose **source** node satisfies
    /// `owns` from `other`, leaving other links untouched. Fault
    /// decisions are taken at transmit time by the shard owning the
    /// source node, so the source-sliced link state is exactly what a
    /// checkpoint splice must take from each worker. The `injected`
    /// tallies are cross-link sums and are reconciled separately by the
    /// caller; the `fired` directive set is a monotone union across all
    /// links, so it is merged wholesale.
    pub fn adopt_links_from(&mut self, other: &FaultState, owns: impl Fn(u32) -> bool) {
        self.streams.retain(|&(_, src, _), _| !owns(src));
        self.markers_sent.retain(|&(_, src, _), _| !owns(src));
        self.burst_links.retain(|&(_, src, _), _| !owns(src));
        self.windows.retain(|&(_, _, src, _), _| !owns(src));
        for (&k, &v) in other.streams.iter().filter(|(&(_, src, _), _)| owns(src)) {
            self.streams.insert(k, v);
        }
        for (&k, &v) in other.markers_sent.iter().filter(|(&(_, src, _), _)| owns(src)) {
            self.markers_sent.insert(k, v);
        }
        for (&k, &v) in other.burst_links.iter().filter(|(&(_, src, _), _)| owns(src)) {
            self.burst_links.insert(k, v);
        }
        for (&k, &v) in other.windows.iter().filter(|(&(_, _, src, _), _)| owns(src)) {
            self.windows.insert(k, v);
        }
        self.fired.extend(other.fired.iter().copied());
    }

    /// Derive a well-mixed per-link seed from the plan seed, link
    /// identity, and RNG lane (splitmix64 over a golden-ratio sequence
    /// position). Lane 0 reproduces the pre-burst derivation exactly.
    fn derive_seed(&self, channel: FaultChannel, src: u32, dst: u32, lane: u64) -> u64 {
        let z = self.plan.seed.wrapping_add(rng::GOLDEN_GAMMA.wrapping_mul(
            1 + (channel as u64) + ((src as u64) << 8) + ((dst as u64) << 24) + (lane << 48),
        ));
        rng::splitmix64(z) | 1
    }

    /// Next uniform draw in [0,1) from the link's hazard stream.
    fn draw(&mut self, channel: FaultChannel, src: u32, dst: u32) -> f64 {
        let seed = self.derive_seed(channel, src, dst, LANE_HAZARD);
        let state = self.streams.entry((channel, src, dst)).or_insert(seed);
        rng::xorshift64star_unit(state)
    }

    /// Advance the link's Gilbert–Elliott chain by one transmission and
    /// report whether the packet is lost to the burst. Always exactly
    /// two draws (transition, loss) in fixed order, so the burst
    /// schedule is a pure function of the transmission count per link.
    fn burst_cut(&mut self, burst: BurstModel, channel: FaultChannel, src: u32, dst: u32) -> bool {
        let seed = self.derive_seed(channel, src, dst, LANE_BURST);
        let (stream, bad) = self
            .burst_links
            .entry((channel, src, dst))
            .or_insert((seed, false));
        let transition = rng::xorshift64star_unit(stream);
        if *bad {
            if transition < burst.p_exit {
                *bad = false;
            }
        } else if transition < burst.p_enter {
            *bad = true;
        }
        let loss = rng::xorshift64star_unit(stream);
        *bad && loss < burst.p_drop
    }

    /// Check one window directive against one link: an active latch cuts
    /// the packet; a missing latch arms when the source node's step has
    /// reached the directive's trigger. Consumes no randomness.
    #[allow(clippy::too_many_arguments)]
    fn window_check(
        &mut self,
        idx: u32,
        channel: FaultChannel,
        src: u32,
        dst: u32,
        step: u64,
        cycle: u64,
        at_step: u64,
        duration: u64,
    ) -> bool {
        let key = (idx, channel, src, dst);
        if let Some(&heal_at) = self.windows.get(&key) {
            return cycle < heal_at;
        }
        if step >= at_step {
            self.windows.insert(key, cycle + duration);
            self.fired.insert(idx);
            return true;
        }
        false
    }

    /// Evaluate every flap/partition window against this transmission.
    /// All applicable directives are checked (no short-circuit) so their
    /// latches arm independently of one another.
    fn window_cut(
        &mut self,
        channel: FaultChannel,
        src: u32,
        dst: u32,
        step: u64,
        cycle: u64,
    ) -> bool {
        let mut cut = false;
        for i in 0..self.plan.flaps.len() {
            let f = self.plan.flaps[i];
            if f.channel == channel && f.src == src && f.dst == dst {
                cut |= self.window_check(i as u32, channel, src, dst, step, cycle, f.step, f.duration);
            }
        }
        let base = self.plan.flaps.len();
        for i in 0..self.plan.partitions.len() {
            let window = {
                let p = &self.plan.partitions[i];
                p.cuts(src, dst).then_some((p.step, p.duration))
            };
            if let Some((at, dur)) = window {
                cut |= self.window_check((base + i) as u32, channel, src, dst, step, cycle, at, dur);
            }
        }
        cut
    }

    /// Decide the fate of one transmission on a link. `step` is the
    /// source node's current timestep and `cycle` the network cycle
    /// (both drive the deterministic flap/partition windows); `marker`
    /// flags a packet carrying a `last` sync marker (kill directives
    /// count and target only those). Deterministic: the nth call for a
    /// given link always returns the same outcome for the same plan and
    /// the same (step, cycle) trajectory.
    pub fn on_transmit(
        &mut self,
        channel: FaultChannel,
        src: u32,
        dst: u32,
        step: u64,
        cycle: u64,
        marker: bool,
    ) -> FaultOutcome {
        if marker {
            let n = self.markers_sent.entry((channel, src, dst)).or_insert(0);
            *n += 1;
            let nth = *n;
            if self
                .plan
                .kills
                .iter()
                .any(|k| k.channel == channel && k.src == src && k.dst == dst && k.nth == nth)
            {
                self.injected[1] += 1;
                return FaultOutcome::Kill;
            }
        }
        // Deterministic window cuts first: flaps and partitions consume
        // no randomness, and a link inside an outage window is down
        // outright — nothing else gets a say.
        if self.window_cut(channel, src, dst, step, cycle) {
            self.injected[0] += 1;
            return FaultOutcome::Drop;
        }
        // The burst chain draws from its own lane, and the hazard
        // decision tree below runs — draws included — even when the
        // chain cuts, so adding a burst model to a plan never perturbs
        // (or shifts) the per-link hazard stream.
        let burst_cut = match self.plan.burst {
            Some(burst) => self.burst_cut(burst, channel, src, dst),
            None => false,
        };
        let rates = self.plan.rates[channel as usize];
        let hazard = if rates.is_none() {
            FaultOutcome::Deliver
        } else {
            // One draw per independent hazard, in fixed order, so adding
            // a hazard to a plan never perturbs the draws of the others.
            let drop = self.draw(channel, src, dst);
            let corrupt = self.draw(channel, src, dst);
            let dup = self.draw(channel, src, dst);
            let delay = self.draw(channel, src, dst);
            if drop < rates.drop {
                FaultOutcome::Drop
            } else if corrupt < rates.corrupt {
                FaultOutcome::Corrupt
            } else if dup < rates.duplicate {
                FaultOutcome::Duplicate
            } else if delay < rates.delay {
                let extra = 1 + (self.draw(channel, src, dst) * rates.delay_max as f64) as u64;
                FaultOutcome::Delay(extra.min(rates.delay_max))
            } else {
                FaultOutcome::Deliver
            }
        };
        if burst_cut {
            self.injected[0] += 1;
            return FaultOutcome::Drop;
        }
        match hazard {
            FaultOutcome::Drop => self.injected[0] += 1,
            FaultOutcome::Corrupt => self.injected[2] += 1,
            FaultOutcome::Duplicate => self.injected[3] += 1,
            FaultOutcome::Delay(_) => self.injected[4] += 1,
            FaultOutcome::Deliver | FaultOutcome::Kill => {}
        }
        hazard
    }
}

impl fasda_ckpt::Persist for FaultChannel {
    fn save(&self, w: &mut fasda_ckpt::Writer) {
        w.put_u8(*self as u8);
    }
    fn load(r: &mut fasda_ckpt::Reader<'_>) -> Result<Self, fasda_ckpt::CkptError> {
        let i = r.get_u8()?;
        FaultChannel::ALL
            .get(i as usize)
            .copied()
            .ok_or_else(|| r.malformed(format!("invalid fault channel {i}")))
    }
}

/// Checkpointing: the plan is configuration (the resumed run is built
/// with the same plan, minus any outage directives that already fired);
/// the per-link RNG states, marker counters, burst chains, window
/// latches, and injection tallies are state — persisting them is what
/// makes the resumed fault schedule continue mid-sequence exactly where
/// the interrupted run left off.
impl fasda_ckpt::Snapshot for FaultState {
    fn snapshot(&self, w: &mut fasda_ckpt::Writer) {
        use fasda_ckpt::Persist;
        self.streams.save(w);
        self.markers_sent.save(w);
        self.injected.save(w);
        self.burst_links.save(w);
        self.windows.save(w);
        self.fired.save(w);
    }

    fn restore(&mut self, r: &mut fasda_ckpt::Reader<'_>) -> Result<(), fasda_ckpt::CkptError> {
        use fasda_ckpt::Persist;
        self.streams = Persist::load(r)?;
        self.markers_sent = Persist::load(r)?;
        self.injected = Persist::load(r)?;
        self.burst_links = Persist::load(r)?;
        self.windows = Persist::load(r)?;
        self.fired = Persist::load(r)?;
        if self.streams.values().any(|&s| s == 0) {
            return Err(r.malformed("zero xorshift64* stream state"));
        }
        if self.burst_links.values().any(|&(s, _)| s == 0) {
            return Err(r.malformed("zero burst stream state"));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_full_grammar() {
        let plan = FaultPlan::parse(
            "drop=0.05,corrupt=0.01,dup=0.02,delay=0.1:400,seed=7,kill=frc:3->4:1,kill=pos:0->1:2",
        )
        .expect("parse");
        assert_eq!(plan.seed, 7);
        for r in &plan.rates {
            assert_eq!(r.drop, 0.05);
            assert_eq!(r.corrupt, 0.01);
            assert_eq!(r.duplicate, 0.02);
            assert_eq!(r.delay, 0.1);
            assert_eq!(r.delay_max, 400);
        }
        assert_eq!(plan.kills.len(), 2);
        assert_eq!(
            plan.kills[0],
            MarkerKill {
                channel: FaultChannel::Frc,
                src: 3,
                dst: 4,
                nth: 1
            }
        );
    }

    #[test]
    fn parse_correlated_grammar() {
        let plan = FaultPlan::parse(
            "burst=0.05:0.2:0.9,flap=pos:0->1:@3+500,partition=0/1|2..8:@4+4000,crash=1@5,crash=6@9,seed=11",
        )
        .expect("parse");
        assert_eq!(
            plan.burst,
            Some(BurstModel { p_enter: 0.05, p_exit: 0.2, p_drop: 0.9 })
        );
        assert_eq!(
            plan.flaps,
            vec![LinkFlap {
                channel: FaultChannel::Pos,
                src: 0,
                dst: 1,
                step: 3,
                duration: 500
            }]
        );
        assert_eq!(plan.partitions.len(), 1);
        assert_eq!(plan.partitions[0].a, vec![0, 1]);
        assert_eq!(plan.partitions[0].b, vec![2, 3, 4, 5, 6, 7]);
        assert_eq!(plan.partitions[0].step, 4);
        assert_eq!(plan.partitions[0].duration, 4000);
        assert_eq!(
            plan.crashes,
            vec![CrashPoint { node: 1, step: 5 }, CrashPoint { node: 6, step: 9 }]
        );
        assert!(!plan.is_none(), "correlated directives are traffic faults");
        let core = plan.without_outages();
        assert!(core.crashes.is_empty() && core.flaps.is_empty() && core.partitions.is_empty());
        assert!(core.burst.is_some(), "burst survives outage stripping");
        assert_eq!(plan.outage_desc(0), "flap pos:0->1:@3+500");
        assert_eq!(plan.outage_desc(1), "partition 0/1|2/3/4/5/6/7:@4+4000");
    }

    #[test]
    fn parse_rejects_bad_specs() {
        assert!(FaultPlan::parse("drop").is_err());
        assert!(FaultPlan::parse("drop=2.0").is_err());
        assert!(FaultPlan::parse("delay=0.5").is_err());
        assert!(FaultPlan::parse("delay=0.5:0").is_err());
        assert!(FaultPlan::parse("kill=xyz:0->1:1").is_err());
        assert!(FaultPlan::parse("kill=pos:0-1:1").is_err());
        assert!(FaultPlan::parse("kill=pos:0->1:0").is_err());
        assert!(FaultPlan::parse("burst=0.5:0.5").is_err());
        assert!(FaultPlan::parse("burst=0.5:0:0.9").is_err(), "p_exit=0 never heals");
        assert!(FaultPlan::parse("burst=1.5:0.5:0.5").is_err());
        assert!(FaultPlan::parse("flap=pos:0->1:3+500").is_err(), "missing @");
        assert!(FaultPlan::parse("flap=pos:0->1:@3+0").is_err(), "zero window");
        assert!(FaultPlan::parse("partition=0|0:@1+10").is_err(), "overlap");
        assert!(FaultPlan::parse("partition=0/1:@1+10").is_err(), "one side");
        assert!(FaultPlan::parse("partition=0|1..1:@1+10").is_err(), "empty range");
        assert!(FaultPlan::parse("crash=1").is_err());
        assert!(FaultPlan::parse("wat=1").is_err());
        assert!(FaultPlan::parse("").map(|p| p.is_none()).unwrap_or(false));
    }

    #[test]
    fn decisions_are_deterministic_per_link() {
        let plan = FaultPlan::drop_only(0.3, 99);
        let run = |mut st: FaultState| {
            (0..200)
                .map(|_| st.on_transmit(FaultChannel::Pos, 0, 1, 0, 0, false))
                .collect::<Vec<_>>()
        };
        let a = run(FaultState::new(plan.clone()));
        let b = run(FaultState::new(plan));
        assert_eq!(a, b);
        assert!(a.contains(&FaultOutcome::Drop));
        assert!(a.contains(&FaultOutcome::Deliver));
    }

    #[test]
    fn links_get_independent_streams() {
        let plan = FaultPlan::drop_only(0.5, 5);
        let mut st = FaultState::new(plan);
        let a: Vec<_> = (0..64)
            .map(|_| st.on_transmit(FaultChannel::Pos, 0, 1, 0, 0, false))
            .collect();
        let b: Vec<_> = (0..64)
            .map(|_| st.on_transmit(FaultChannel::Pos, 1, 0, 0, 0, false))
            .collect();
        let c: Vec<_> = (0..64)
            .map(|_| st.on_transmit(FaultChannel::Frc, 0, 1, 0, 0, false))
            .collect();
        assert_ne!(a, b, "direction matters");
        assert_ne!(a, c, "channel matters");
    }

    #[test]
    fn kill_targets_exact_marker_transmission() {
        let plan = FaultPlan::none().with_kill(MarkerKill {
            channel: FaultChannel::Frc,
            src: 2,
            dst: 3,
            nth: 2,
        });
        let mut st = FaultState::new(plan);
        assert_eq!(
            st.on_transmit(FaultChannel::Frc, 2, 3, 0, 0, true),
            FaultOutcome::Deliver
        );
        assert_eq!(
            st.on_transmit(FaultChannel::Frc, 2, 3, 0, 0, true),
            FaultOutcome::Kill
        );
        assert_eq!(
            st.on_transmit(FaultChannel::Frc, 2, 3, 0, 0, true),
            FaultOutcome::Deliver
        );
        // other links untouched
        assert_eq!(
            st.on_transmit(FaultChannel::Frc, 3, 2, 0, 0, true),
            FaultOutcome::Deliver
        );
        assert_eq!(st.injected[1], 1);
    }

    #[test]
    fn drop_rate_is_calibrated() {
        let mut st = FaultState::new(FaultPlan::drop_only(0.2, 1234));
        let mut dropped = 0;
        for _ in 0..10_000 {
            if st.on_transmit(FaultChannel::Pos, 0, 1, 0, 0, false) == FaultOutcome::Drop {
                dropped += 1;
            }
        }
        let rate = dropped as f64 / 10_000.0;
        assert!((rate - 0.2).abs() < 0.03, "drop rate {rate}");
        assert_eq!(st.injected[0], dropped);
    }

    #[test]
    fn delay_bounded_by_max() {
        let plan = FaultPlan::none().with_seed(3).with_rate(|r| {
            r.delay = 0.9;
            r.delay_max = 10;
        });
        let mut st = FaultState::new(plan);
        for _ in 0..1000 {
            if let FaultOutcome::Delay(extra) = st.on_transmit(FaultChannel::Mig, 1, 2, 0, 0, false) {
                assert!((1..=10).contains(&extra), "delay {extra}");
            }
        }
    }

    #[test]
    fn burst_drops_in_runs_and_never_perturbs_hazard_stream() {
        // Same seed, same link: a plan with drop rates alone and a plan
        // with drop rates *plus* a burst chain must take identical
        // hazard draws — the burst lane is independent.
        let base = FaultPlan::drop_only(0.1, 42);
        let bursty = base.clone().with_burst(0.05, 0.25, 1.0);
        let mut a = FaultState::new(base);
        let mut b = FaultState::new(bursty);
        let mut burst_extra = 0u64;
        for i in 0..20_000u64 {
            let oa = a.on_transmit(FaultChannel::Pos, 0, 1, i, i, false);
            let ob = b.on_transmit(FaultChannel::Pos, 0, 1, i, i, false);
            if oa != ob {
                // The only divergence a burst may introduce is an extra
                // drop where the base plan delivered/delayed/etc.
                assert_eq!(ob, FaultOutcome::Drop, "burst changed a non-drop outcome");
                burst_extra += 1;
            }
        }
        assert!(burst_extra > 0, "burst chain never fired");
        // Burst losses are correlated: with p_drop=1, consecutive drops
        // come in runs whose mean length ~ 1/p_exit = 4 — count runs of
        // length >= 3, which a 10% independent chance almost never makes.
        let mut st = FaultState::new(FaultPlan::none().with_seed(42).with_burst(0.05, 0.25, 1.0));
        let outcomes: Vec<_> = (0..20_000u64)
            .map(|i| st.on_transmit(FaultChannel::Pos, 0, 1, i, i, false))
            .collect();
        let mut runs3 = 0;
        let mut run = 0;
        for o in &outcomes {
            if *o == FaultOutcome::Drop {
                run += 1;
                if run == 3 {
                    runs3 += 1;
                }
            } else {
                run = 0;
            }
        }
        assert!(runs3 > 10, "bursts should produce many length>=3 drop runs, got {runs3}");
    }

    #[test]
    fn flap_latches_then_heals_per_link() {
        let plan = FaultPlan::none().with_flap(LinkFlap {
            channel: FaultChannel::Pos,
            src: 0,
            dst: 1,
            step: 2,
            duration: 100,
        });
        let mut st = FaultState::new(plan);
        // Before the trigger step: untouched.
        assert_eq!(
            st.on_transmit(FaultChannel::Pos, 0, 1, 1, 50, false),
            FaultOutcome::Deliver
        );
        // First transmission at step >= 2 latches the window.
        assert_eq!(
            st.on_transmit(FaultChannel::Pos, 0, 1, 2, 60, false),
            FaultOutcome::Drop
        );
        // Down for the whole window...
        assert_eq!(
            st.on_transmit(FaultChannel::Pos, 0, 1, 2, 159, false),
            FaultOutcome::Drop
        );
        // ...heals exactly at latch_cycle + duration...
        assert_eq!(
            st.on_transmit(FaultChannel::Pos, 0, 1, 2, 160, false),
            FaultOutcome::Deliver
        );
        // ...and never re-latches.
        assert_eq!(
            st.on_transmit(FaultChannel::Pos, 0, 1, 9, 10_000, false),
            FaultOutcome::Deliver
        );
        // Other links and channels unaffected throughout.
        assert_eq!(
            st.on_transmit(FaultChannel::Pos, 1, 0, 2, 100, false),
            FaultOutcome::Deliver
        );
        assert_eq!(
            st.on_transmit(FaultChannel::Frc, 0, 1, 2, 100, false),
            FaultOutcome::Deliver
        );
        assert_eq!(st.fired_outages(), vec!["flap pos:0->1:@2+100".to_string()]);
        assert_eq!(st.injected[0], 2);
    }

    #[test]
    fn partition_cuts_every_crossing_link_both_ways() {
        let plan = FaultPlan::parse("partition=0/1|2/3:@1+1000").expect("parse");
        let mut st = FaultState::new(plan);
        for ch in FaultChannel::ALL {
            assert_eq!(st.on_transmit(ch, 0, 2, 1, 10, false), FaultOutcome::Drop);
            assert_eq!(st.on_transmit(ch, 3, 1, 1, 10, true), FaultOutcome::Drop);
        }
        // Intra-side traffic flows.
        assert_eq!(
            st.on_transmit(FaultChannel::Pos, 0, 1, 1, 10, false),
            FaultOutcome::Deliver
        );
        assert_eq!(
            st.on_transmit(FaultChannel::Pos, 2, 3, 1, 10, false),
            FaultOutcome::Deliver
        );
        // Each link heals off its own latch cycle.
        assert_eq!(
            st.on_transmit(FaultChannel::Pos, 0, 2, 1, 1010, false),
            FaultOutcome::Deliver
        );
        assert_eq!(st.fired_outages(), vec!["partition 0/1|2/3:@1+1000".to_string()]);
    }

    #[test]
    fn without_crash_at_strips_exactly_one_directive() {
        let plan = FaultPlan::none().with_crash(2, 3).with_crash(5, 7);
        let stripped = plan.without_crash_at(2, 3);
        assert_eq!(stripped.crashes, vec![CrashPoint { node: 5, step: 7 }]);
        assert!(plan.without_crash().crashes.is_empty());
        // Stripping an absent directive is a no-op.
        assert_eq!(plan.without_crash_at(9, 9).crashes, plan.crashes);
    }
}
