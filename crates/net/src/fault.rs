//! Deterministic link-fault injection.
//!
//! A [`FaultPlan`] describes, per traffic class, what a flaky fabric
//! does to packets: probabilistic drop / corrupt / duplicate / delay
//! schedules plus targeted *kill directives* ("drop the Nth marker
//! transmitted on link L"), the latter reproducing the exact failure
//! mode that deadlocks chained synchronization (§4.4) — a lost in-band
//! `last` marker.
//!
//! Everything is deterministic: [`FaultState`] derives an independent
//! splitmix/xorshift stream per *(channel, src, dst)* link from the plan
//! seed, and decisions are taken at transmit time in the serial network
//! phase of the cluster driver. The same plan therefore produces the
//! same fault sequence on every engine (serial oracle, parallel tick,
//! burst stepping), which is what lets the chaos harness demand
//! byte-identical traces across engines.

use fasda_sim::rng;
use std::collections::HashMap;

/// Traffic classes a fault schedule can target, mirroring the cluster's
/// three packetizer channels.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum FaultChannel {
    /// Position broadcast traffic.
    Pos,
    /// Returned neighbour forces.
    Frc,
    /// Motion-update migration traffic.
    Mig,
}

impl FaultChannel {
    /// All channels, in index order.
    pub const ALL: [FaultChannel; 3] = [FaultChannel::Pos, FaultChannel::Frc, FaultChannel::Mig];

    /// Stable label (matches the CLI grammar and trace channel labels).
    pub fn label(self) -> &'static str {
        match self {
            FaultChannel::Pos => "pos",
            FaultChannel::Frc => "frc",
            FaultChannel::Mig => "mig",
        }
    }

    fn parse(s: &str) -> Option<Self> {
        match s {
            "pos" => Some(FaultChannel::Pos),
            "frc" => Some(FaultChannel::Frc),
            "mig" => Some(FaultChannel::Mig),
            _ => None,
        }
    }
}

/// Probabilistic per-link fault rates. All probabilities are per-packet
/// and independent; `delay_max` bounds the uniform extra-latency draw.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LinkFaults {
    /// Probability a transmitted packet is silently dropped.
    pub drop: f64,
    /// Probability a transmitted packet arrives with a corrupted frame
    /// (the receiver discards it on checksum failure).
    pub corrupt: f64,
    /// Probability a transmitted packet is duplicated in flight.
    pub duplicate: f64,
    /// Probability a transmitted packet is delayed by extra cycles.
    pub delay: f64,
    /// Maximum extra delay in cycles (uniform in `1..=delay_max`).
    pub delay_max: u64,
}

impl LinkFaults {
    /// No faults.
    pub const NONE: LinkFaults = LinkFaults {
        drop: 0.0,
        corrupt: 0.0,
        duplicate: 0.0,
        delay: 0.0,
        delay_max: 0,
    };

    /// True when every rate is zero.
    pub fn is_none(&self) -> bool {
        self.drop == 0.0 && self.corrupt == 0.0 && self.duplicate == 0.0 && self.delay == 0.0
    }

    fn validate(&self) {
        for p in [self.drop, self.corrupt, self.duplicate, self.delay] {
            assert!((0.0..1.0).contains(&p), "fault probability {p} out of [0,1)");
        }
        if self.delay > 0.0 {
            assert!(self.delay_max > 0, "delay faults need delay_max >= 1");
        }
    }
}

/// A targeted directive: drop the `nth` (1-based) *marker* packet
/// transmitted on one specific link. This is the §4.4 nightmare case —
/// without reliable delivery the receiver waits forever for a `last`
/// flag that never arrives.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct MarkerKill {
    /// Traffic class of the marker.
    pub channel: FaultChannel,
    /// Sending node.
    pub src: u32,
    /// Receiving node.
    pub dst: u32,
    /// Which marker transmission to kill (1 = first marker sent on the
    /// link, counting retransmissions).
    pub nth: u32,
}

/// A crash directive: kill node `node` mid-step at timestep `step`
/// (after its force phase has begun but before it completes). Models a
/// board dying mid-run; recovery restores from the latest checkpoint.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct CrashPoint {
    /// Node index to kill.
    pub node: u32,
    /// Timestep during which the crash fires.
    pub step: u64,
}

/// A complete, seeded fault schedule for a run.
#[derive(Clone, Debug, PartialEq)]
pub struct FaultPlan {
    /// Base seed; each link derives an independent stream from it.
    pub seed: u64,
    /// Probabilistic rates per channel.
    pub rates: [LinkFaults; 3],
    /// Targeted marker kills.
    pub kills: Vec<MarkerKill>,
    /// Optional crash directive. Handled by the cluster driver, not by
    /// [`FaultState`]: a crash aborts the run rather than perturbing
    /// traffic, so it does not count toward [`FaultPlan::is_none`].
    pub crash: Option<CrashPoint>,
}

impl FaultPlan {
    /// A plan with no faults at all (useful as a parse identity).
    pub fn none() -> Self {
        FaultPlan {
            seed: 1,
            rates: [LinkFaults::NONE; 3],
            kills: Vec::new(),
            crash: None,
        }
    }

    /// Uniform drop-only plan across all channels.
    pub fn drop_only(p: f64, seed: u64) -> Self {
        FaultPlan::none().with_seed(seed).with_rate(|r| r.drop = p)
    }

    /// Override the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed | 1;
        self
    }

    /// Mutate every channel's rates through a closure.
    pub fn with_rate(mut self, f: impl Fn(&mut LinkFaults)) -> Self {
        for r in &mut self.rates {
            f(r);
        }
        self.validate();
        self
    }

    /// Add a targeted marker kill.
    pub fn with_kill(mut self, kill: MarkerKill) -> Self {
        self.kills.push(kill);
        self
    }

    /// Add a crash directive.
    pub fn with_crash(mut self, node: u32, step: u64) -> Self {
        self.crash = Some(CrashPoint { node, step });
        self
    }

    /// The same plan with the crash directive removed — what a resumed
    /// run executes so it does not crash again at the same step.
    pub fn without_crash(&self) -> Self {
        let mut plan = self.clone();
        plan.crash = None;
        plan
    }

    /// True when the plan injects no *traffic* faults. A crash directive
    /// does not count: it is driver-level, needs no per-link fault
    /// state, and must not force the fault layer on.
    pub fn is_none(&self) -> bool {
        self.kills.is_empty() && self.rates.iter().all(LinkFaults::is_none)
    }

    fn validate(&self) {
        for r in &self.rates {
            r.validate();
        }
    }

    /// Parse the CLI grammar: comma-separated `key=value` clauses.
    ///
    /// ```text
    /// drop=0.05,corrupt=0.01,dup=0.01,delay=0.02:400,seed=7,
    /// kill=frc:3->4:1,kill=pos:0->1:2
    /// ```
    ///
    /// * `drop|corrupt|dup` — per-packet probability, all channels;
    /// * `delay=P:MAX` — delay probability and max extra cycles;
    /// * `seed=N` — RNG seed;
    /// * `kill=CHAN:SRC->DST:N` — drop the Nth marker on that link
    ///   (`CHAN` ∈ `pos|frc|mig`);
    /// * `crash=NODE@STEP` — kill node NODE mid-step at timestep STEP
    ///   (checkpoint/recovery testing).
    pub fn parse(spec: &str) -> Result<Self, String> {
        let mut plan = FaultPlan::none();
        for clause in spec.split(',').map(str::trim).filter(|c| !c.is_empty()) {
            let (key, value) = clause
                .split_once('=')
                .ok_or_else(|| format!("fault clause `{clause}` is not key=value"))?;
            match key {
                "drop" | "corrupt" | "dup" => {
                    let p: f64 = value
                        .parse()
                        .map_err(|_| format!("bad probability in `{clause}`"))?;
                    if !(0.0..1.0).contains(&p) {
                        return Err(format!("probability {p} out of [0,1) in `{clause}`"));
                    }
                    plan = plan.with_rate(|r| match key {
                        "drop" => r.drop = p,
                        "corrupt" => r.corrupt = p,
                        _ => r.duplicate = p,
                    });
                }
                "delay" => {
                    let (p, max) = value
                        .split_once(':')
                        .ok_or_else(|| format!("`{clause}` needs delay=P:MAX"))?;
                    let p: f64 = p.parse().map_err(|_| format!("bad probability in `{clause}`"))?;
                    let max: u64 = max.parse().map_err(|_| format!("bad max delay in `{clause}`"))?;
                    if !(0.0..1.0).contains(&p) || max == 0 {
                        return Err(format!("bad delay spec `{clause}`"));
                    }
                    plan = plan.with_rate(|r| {
                        r.delay = p;
                        r.delay_max = max;
                    });
                }
                "seed" => {
                    let s: u64 = value.parse().map_err(|_| format!("bad seed in `{clause}`"))?;
                    plan = plan.with_seed(s);
                }
                "kill" => {
                    // CHAN:SRC->DST:N
                    let mut it = value.splitn(3, ':');
                    let chan = it
                        .next()
                        .and_then(FaultChannel::parse)
                        .ok_or_else(|| format!("bad channel in `{clause}`"))?;
                    let link = it.next().ok_or_else(|| format!("bad kill spec `{clause}`"))?;
                    let (src, dst) = link
                        .split_once("->")
                        .ok_or_else(|| format!("`{clause}` needs SRC->DST"))?;
                    let nth: u32 = it
                        .next()
                        .and_then(|n| n.parse().ok())
                        .filter(|&n| n >= 1)
                        .ok_or_else(|| format!("bad marker index in `{clause}`"))?;
                    let src: u32 = src.parse().map_err(|_| format!("bad src in `{clause}`"))?;
                    let dst: u32 = dst.parse().map_err(|_| format!("bad dst in `{clause}`"))?;
                    plan = plan.with_kill(MarkerKill {
                        channel: chan,
                        src,
                        dst,
                        nth,
                    });
                }
                "crash" => {
                    let (node, step) = value
                        .split_once('@')
                        .ok_or_else(|| format!("`{clause}` needs crash=NODE@STEP"))?;
                    let node: u32 = node.parse().map_err(|_| format!("bad node in `{clause}`"))?;
                    let step: u64 = step.parse().map_err(|_| format!("bad step in `{clause}`"))?;
                    plan = plan.with_crash(node, step);
                }
                other => return Err(format!("unknown fault key `{other}`")),
            }
        }
        Ok(plan)
    }
}

/// What the fault layer decided for one transmission.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultOutcome {
    /// Deliver normally.
    Deliver,
    /// Silently drop (probabilistic schedule).
    Drop,
    /// Drop via a targeted marker-kill directive.
    Kill,
    /// Deliver a corrupted frame (receiver discards on checksum).
    Corrupt,
    /// Deliver the packet *and* a duplicate copy.
    Duplicate,
    /// Deliver with extra latency.
    Delay(u64),
}

/// Per-link deterministic RNG and marker counters driving a
/// [`FaultPlan`] at runtime.
#[derive(Clone, Debug)]
pub struct FaultState {
    plan: FaultPlan,
    /// xorshift64* stream per (channel, src, dst), lazily derived.
    streams: HashMap<(FaultChannel, u32, u32), u64>,
    /// Marker transmissions seen per link (for kill directives).
    markers_sent: HashMap<(FaultChannel, u32, u32), u32>,
    /// Faults injected, by kind (drop, kill, corrupt, duplicate, delay).
    pub injected: [u64; 5],
}

impl FaultState {
    /// Runtime state for a plan.
    pub fn new(plan: FaultPlan) -> Self {
        plan.validate();
        FaultState {
            plan,
            streams: HashMap::new(),
            markers_sent: HashMap::new(),
            injected: [0; 5],
        }
    }

    /// The plan being executed.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Total faults injected so far.
    pub fn total_injected(&self) -> u64 {
        self.injected.iter().sum()
    }

    /// Adopt the per-link RNG streams and marker counters of every link
    /// whose **source** node satisfies `owns` from `other`, leaving other
    /// links untouched. Fault decisions are taken at transmit time by the
    /// shard owning the source node, so the source-sliced link state is
    /// exactly what a checkpoint splice must take from each worker. The
    /// `injected` tallies are cross-link sums and are reconciled
    /// separately by the caller.
    pub fn adopt_links_from(&mut self, other: &FaultState, owns: impl Fn(u32) -> bool) {
        self.streams.retain(|&(_, src, _), _| !owns(src));
        self.markers_sent.retain(|&(_, src, _), _| !owns(src));
        for (&k, &v) in other.streams.iter().filter(|(&(_, src, _), _)| owns(src)) {
            self.streams.insert(k, v);
        }
        for (&k, &v) in other.markers_sent.iter().filter(|(&(_, src, _), _)| owns(src)) {
            self.markers_sent.insert(k, v);
        }
    }

    /// Derive a well-mixed per-link seed from the plan seed and link
    /// identity (splitmix64 over a golden-ratio sequence position).
    fn derive_seed(&self, channel: FaultChannel, src: u32, dst: u32) -> u64 {
        let z = self.plan.seed.wrapping_add(rng::GOLDEN_GAMMA.wrapping_mul(
            1 + (channel as u64) + ((src as u64) << 8) + ((dst as u64) << 24),
        ));
        rng::splitmix64(z) | 1
    }

    /// Next uniform draw in [0,1) from the link's stream.
    fn draw(&mut self, channel: FaultChannel, src: u32, dst: u32) -> f64 {
        let seed = self.derive_seed(channel, src, dst);
        let state = self.streams.entry((channel, src, dst)).or_insert(seed);
        rng::xorshift64star_unit(state)
    }

    /// Decide the fate of one transmission on a link. `marker` flags a
    /// packet carrying a `last` sync marker (kill directives count and
    /// target only those). Deterministic: the nth call for a given link
    /// always returns the same outcome for the same plan.
    pub fn on_transmit(
        &mut self,
        channel: FaultChannel,
        src: u32,
        dst: u32,
        marker: bool,
    ) -> FaultOutcome {
        if marker {
            let n = self.markers_sent.entry((channel, src, dst)).or_insert(0);
            *n += 1;
            let nth = *n;
            if self
                .plan
                .kills
                .iter()
                .any(|k| k.channel == channel && k.src == src && k.dst == dst && k.nth == nth)
            {
                self.injected[1] += 1;
                return FaultOutcome::Kill;
            }
        }
        let rates = self.plan.rates[channel as usize];
        if rates.is_none() {
            return FaultOutcome::Deliver;
        }
        // One draw per independent hazard, in fixed order, so adding a
        // hazard to a plan never perturbs the draws of the others.
        let drop = self.draw(channel, src, dst);
        let corrupt = self.draw(channel, src, dst);
        let dup = self.draw(channel, src, dst);
        let delay = self.draw(channel, src, dst);
        if drop < rates.drop {
            self.injected[0] += 1;
            return FaultOutcome::Drop;
        }
        if corrupt < rates.corrupt {
            self.injected[2] += 1;
            return FaultOutcome::Corrupt;
        }
        if dup < rates.duplicate {
            self.injected[3] += 1;
            return FaultOutcome::Duplicate;
        }
        if delay < rates.delay {
            let extra = 1 + (self.draw(channel, src, dst) * rates.delay_max as f64) as u64;
            let extra = extra.min(rates.delay_max);
            self.injected[4] += 1;
            return FaultOutcome::Delay(extra);
        }
        FaultOutcome::Deliver
    }
}

impl fasda_ckpt::Persist for FaultChannel {
    fn save(&self, w: &mut fasda_ckpt::Writer) {
        w.put_u8(*self as u8);
    }
    fn load(r: &mut fasda_ckpt::Reader<'_>) -> Result<Self, fasda_ckpt::CkptError> {
        let i = r.get_u8()?;
        FaultChannel::ALL
            .get(i as usize)
            .copied()
            .ok_or_else(|| r.malformed(format!("invalid fault channel {i}")))
    }
}

/// Checkpointing: the plan is configuration (the resumed run is built
/// with the same plan, minus any crash directive); the per-link RNG
/// states, marker counters, and injection tallies are state — persisting
/// them is what makes the resumed fault schedule continue mid-sequence
/// exactly where the crashed run left off.
impl fasda_ckpt::Snapshot for FaultState {
    fn snapshot(&self, w: &mut fasda_ckpt::Writer) {
        use fasda_ckpt::Persist;
        self.streams.save(w);
        self.markers_sent.save(w);
        self.injected.save(w);
    }

    fn restore(&mut self, r: &mut fasda_ckpt::Reader<'_>) -> Result<(), fasda_ckpt::CkptError> {
        use fasda_ckpt::Persist;
        self.streams = Persist::load(r)?;
        self.markers_sent = Persist::load(r)?;
        self.injected = Persist::load(r)?;
        if self.streams.values().any(|&s| s == 0) {
            return Err(r.malformed("zero xorshift64* stream state"));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_full_grammar() {
        let plan = FaultPlan::parse(
            "drop=0.05,corrupt=0.01,dup=0.02,delay=0.1:400,seed=7,kill=frc:3->4:1,kill=pos:0->1:2",
        )
        .expect("parse");
        assert_eq!(plan.seed, 7);
        for r in &plan.rates {
            assert_eq!(r.drop, 0.05);
            assert_eq!(r.corrupt, 0.01);
            assert_eq!(r.duplicate, 0.02);
            assert_eq!(r.delay, 0.1);
            assert_eq!(r.delay_max, 400);
        }
        assert_eq!(plan.kills.len(), 2);
        assert_eq!(
            plan.kills[0],
            MarkerKill {
                channel: FaultChannel::Frc,
                src: 3,
                dst: 4,
                nth: 1
            }
        );
    }

    #[test]
    fn parse_rejects_bad_specs() {
        assert!(FaultPlan::parse("drop").is_err());
        assert!(FaultPlan::parse("drop=2.0").is_err());
        assert!(FaultPlan::parse("delay=0.5").is_err());
        assert!(FaultPlan::parse("delay=0.5:0").is_err());
        assert!(FaultPlan::parse("kill=xyz:0->1:1").is_err());
        assert!(FaultPlan::parse("kill=pos:0-1:1").is_err());
        assert!(FaultPlan::parse("kill=pos:0->1:0").is_err());
        assert!(FaultPlan::parse("wat=1").is_err());
        assert!(FaultPlan::parse("").map(|p| p.is_none()).unwrap_or(false));
    }

    #[test]
    fn decisions_are_deterministic_per_link() {
        let plan = FaultPlan::drop_only(0.3, 99);
        let run = |mut st: FaultState| {
            (0..200)
                .map(|_| st.on_transmit(FaultChannel::Pos, 0, 1, false))
                .collect::<Vec<_>>()
        };
        let a = run(FaultState::new(plan.clone()));
        let b = run(FaultState::new(plan));
        assert_eq!(a, b);
        assert!(a.contains(&FaultOutcome::Drop));
        assert!(a.contains(&FaultOutcome::Deliver));
    }

    #[test]
    fn links_get_independent_streams() {
        let plan = FaultPlan::drop_only(0.5, 5);
        let mut st = FaultState::new(plan);
        let a: Vec<_> = (0..64)
            .map(|_| st.on_transmit(FaultChannel::Pos, 0, 1, false))
            .collect();
        let b: Vec<_> = (0..64)
            .map(|_| st.on_transmit(FaultChannel::Pos, 1, 0, false))
            .collect();
        let c: Vec<_> = (0..64)
            .map(|_| st.on_transmit(FaultChannel::Frc, 0, 1, false))
            .collect();
        assert_ne!(a, b, "direction matters");
        assert_ne!(a, c, "channel matters");
    }

    #[test]
    fn kill_targets_exact_marker_transmission() {
        let plan = FaultPlan::none().with_kill(MarkerKill {
            channel: FaultChannel::Frc,
            src: 2,
            dst: 3,
            nth: 2,
        });
        let mut st = FaultState::new(plan);
        assert_eq!(
            st.on_transmit(FaultChannel::Frc, 2, 3, true),
            FaultOutcome::Deliver
        );
        assert_eq!(
            st.on_transmit(FaultChannel::Frc, 2, 3, true),
            FaultOutcome::Kill
        );
        assert_eq!(
            st.on_transmit(FaultChannel::Frc, 2, 3, true),
            FaultOutcome::Deliver
        );
        // other links untouched
        assert_eq!(
            st.on_transmit(FaultChannel::Frc, 3, 2, true),
            FaultOutcome::Deliver
        );
        assert_eq!(st.injected[1], 1);
    }

    #[test]
    fn drop_rate_is_calibrated() {
        let mut st = FaultState::new(FaultPlan::drop_only(0.2, 1234));
        let mut dropped = 0;
        for _ in 0..10_000 {
            if st.on_transmit(FaultChannel::Pos, 0, 1, false) == FaultOutcome::Drop {
                dropped += 1;
            }
        }
        let rate = dropped as f64 / 10_000.0;
        assert!((rate - 0.2).abs() < 0.03, "drop rate {rate}");
        assert_eq!(st.injected[0], dropped);
    }

    #[test]
    fn delay_bounded_by_max() {
        let plan = FaultPlan::none().with_seed(3).with_rate(|r| {
            r.delay = 0.9;
            r.delay_max = 10;
        });
        let mut st = FaultState::new(plan);
        for _ in 0..1000 {
            if let FaultOutcome::Delay(extra) = st.on_transmit(FaultChannel::Mig, 1, 2, false) {
                assert!((1..=10).contains(&extra), "delay {extra}");
            }
        }
    }
}
