//! P2R/F2R encapsulation chains with departure cooldown
//! (paper §4.3 Fig. 11, §5.4).
//!
//! Departing flits pass through a chain of per-peer encapsulators
//! ("departure gates"). Each gate stages up to four payloads; once its
//! four registers fill — or the phase ends and the gate is flushed with a
//! `last` marker — a packet is formed and arbitrated for departure.
//! "We limit the transmission of each board to once per several cycles
//! using cooldown counters, effectively spreading out a peak over a
//! period of time" (§5.4): the packetizer releases at most one packet per
//! `cooldown` cycles, round-robin across gates.

use crate::packet::{Packet, PacketKind, PAYLOADS_PER_PACKET};
use fasda_sim::Cycle;
use std::collections::VecDeque;

/// A set of per-peer encapsulation gates for one traffic class.
#[derive(Clone, Debug)]
pub struct Packetizer<P, T> {
    kind: PacketKind,
    peers: Vec<P>,
    staging: Vec<Vec<T>>,
    ready: VecDeque<(usize, Packet<T>)>,
    cooldown: u32,
    next_allowed: Cycle,
    rr: usize,
    /// Packets emitted (for bandwidth accounting).
    pub packets_sent: u64,
}

impl<P: PartialEq + Clone, T> Packetizer<P, T> {
    /// A packetizer with one gate per peer.
    pub fn new(kind: PacketKind, peers: Vec<P>, cooldown: u32) -> Self {
        let n = peers.len();
        Packetizer {
            kind,
            peers,
            staging: (0..n).map(|_| Vec::with_capacity(PAYLOADS_PER_PACKET)).collect(),
            ready: VecDeque::new(),
            cooldown,
            next_allowed: 0,
            rr: 0,
            packets_sent: 0,
        }
    }

    fn gate(&self, peer: &P) -> usize {
        self.peers
            .iter()
            .position(|p| p == peer)
            .expect("unknown peer")
    }

    /// Stage one payload for a peer; forms a packet when the gate's four
    /// registers fill.
    pub fn offer(&mut self, peer: &P, item: T, step: u64) {
        let g = self.gate(peer);
        self.staging[g].push(item);
        if self.staging[g].len() == PAYLOADS_PER_PACKET {
            let payloads = std::mem::replace(
                &mut self.staging[g],
                Vec::with_capacity(PAYLOADS_PER_PACKET),
            );
            self.ready
                .push_back((g, Packet::data(self.kind, payloads, step)));
        }
    }

    /// Flush a peer's gate with the in-band `last` marker: any staged
    /// payloads depart in a final (possibly short or empty) packet whose
    /// `last` flag is set.
    pub fn flush_last(&mut self, peer: &P, step: u64) {
        let g = self.gate(peer);
        let payloads = std::mem::take(&mut self.staging[g]);
        let mut pkt = Packet::data(self.kind, payloads, step);
        pkt.last = true;
        self.ready.push_back((g, pkt));
    }

    /// Flush a peer's staged payloads without a marker (end of burst).
    pub fn flush(&mut self, peer: &P, step: u64) {
        let g = self.gate(peer);
        if !self.staging[g].is_empty() {
            let payloads = std::mem::take(&mut self.staging[g]);
            self.ready.push_back((g, Packet::data(self.kind, payloads, step)));
        }
    }

    /// Release at most one packet this cycle, respecting the cooldown.
    pub fn tick(&mut self, cycle: Cycle) -> Option<(P, Packet<T>)> {
        if cycle < self.next_allowed {
            return None;
        }
        let (g, pkt) = self.ready.pop_front()?;
        self.next_allowed = cycle + self.cooldown as u64;
        self.rr = (g + 1) % self.peers.len().max(1);
        self.packets_sent += 1;
        Some((self.peers[g].clone(), pkt))
    }

    /// True when nothing is staged or awaiting departure.
    pub fn is_empty(&self) -> bool {
        self.ready.is_empty() && self.staging.iter().all(Vec::is_empty)
    }

    /// Earliest cycle `>= now` at which [`Packetizer::tick`] can release a
    /// packet, or `None` when nothing is queued for departure. Staged
    /// payloads that have not yet formed a packet do not count: they only
    /// become releasable through a further `offer`/`flush` call.
    pub fn next_departure(&self, now: Cycle) -> Option<Cycle> {
        if self.ready.is_empty() {
            None
        } else {
            Some(now.max(self.next_allowed))
        }
    }

    /// Packets queued for departure.
    pub fn pending(&self) -> usize {
        self.ready.len()
    }

    /// Staged payloads for one peer (not yet packetized).
    pub fn staged(&self, peer: &P) -> usize {
        self.staging[self.gate(peer)].len()
    }
}

/// Checkpointing: the kind, peer list, and cooldown are configuration;
/// staged payloads, formed-but-undeparted packets, the cooldown clock,
/// and the round-robin cursor are state.
impl<P, T: fasda_ckpt::Persist> fasda_ckpt::Snapshot for Packetizer<P, T> {
    fn snapshot(&self, w: &mut fasda_ckpt::Writer) {
        use fasda_ckpt::Persist;
        self.staging.save(w);
        w.put_usize(self.ready.len());
        for (gate, pkt) in &self.ready {
            w.put_usize(*gate);
            pkt.save(w);
        }
        w.put_u64(self.next_allowed);
        w.put_usize(self.rr);
        w.put_u64(self.packets_sent);
    }

    fn restore(&mut self, r: &mut fasda_ckpt::Reader<'_>) -> Result<(), fasda_ckpt::CkptError> {
        use fasda_ckpt::Persist;
        let staging: Vec<Vec<T>> = Persist::load(r)?;
        if staging.len() != self.peers.len() {
            return Err(r.malformed(format!(
                "gate count mismatch: snapshot has {}, packetizer has {}",
                staging.len(),
                self.peers.len()
            )));
        }
        let n = r.get_len()?;
        let mut ready = std::collections::VecDeque::with_capacity(n);
        for _ in 0..n {
            let gate = r.get_usize()?;
            if gate >= self.peers.len() {
                return Err(r.malformed(format!("gate index {gate} out of range")));
            }
            let pkt: Packet<T> = Persist::load(r)?;
            if pkt.kind != self.kind {
                return Err(r.malformed("ready packet kind disagrees with packetizer"));
            }
            ready.push_back((gate, pkt));
        }
        self.staging = staging;
        self.ready = ready;
        self.next_allowed = r.get_u64()?;
        self.rr = r.get_usize()?;
        self.packets_sent = r.get_u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pz() -> Packetizer<u8, u32> {
        Packetizer::new(PacketKind::Position, vec![10, 20], 4)
    }

    #[test]
    fn four_payloads_form_a_packet() {
        let mut p = pz();
        for i in 0..3 {
            p.offer(&10, i, 0);
        }
        assert_eq!(p.pending(), 0);
        assert_eq!(p.staged(&10), 3);
        p.offer(&10, 3, 0);
        assert_eq!(p.pending(), 1);
        assert_eq!(p.staged(&10), 0);
        let (peer, pkt) = p.tick(0).expect("packet ready");
        assert_eq!(peer, 10);
        assert_eq!(pkt.payloads, vec![0, 1, 2, 3]);
        assert!(!pkt.last);
    }

    #[test]
    fn cooldown_spreads_departures() {
        let mut p = pz();
        for i in 0..8 {
            p.offer(&10, i, 0);
        }
        assert_eq!(p.pending(), 2);
        assert!(p.tick(0).is_some());
        assert!(p.tick(1).is_none(), "cooldown blocks");
        assert!(p.tick(3).is_none());
        assert!(p.tick(4).is_some(), "cooldown expired");
        assert_eq!(p.packets_sent, 2);
    }

    #[test]
    fn flush_last_emits_short_marked_packet() {
        let mut p = pz();
        p.offer(&20, 9, 5);
        p.flush_last(&20, 5);
        let (peer, pkt) = p.tick(0).unwrap();
        assert_eq!(peer, 20);
        assert!(pkt.last);
        assert_eq!(pkt.payloads, vec![9]);
        assert_eq!(pkt.step, 5);
        assert!(p.is_empty());
    }

    #[test]
    fn flush_last_on_empty_gate_is_bare_marker() {
        let mut p = pz();
        p.flush_last(&10, 2);
        let (_, pkt) = p.tick(0).unwrap();
        assert!(pkt.last && pkt.payloads.is_empty());
    }

    #[test]
    fn flush_without_marker() {
        let mut p = pz();
        p.offer(&10, 1, 0);
        p.flush(&10, 0);
        let (_, pkt) = p.tick(0).unwrap();
        assert!(!pkt.last);
        assert_eq!(pkt.payloads, vec![1]);
        // flushing an empty gate does nothing
        p.flush(&10, 0);
        assert!(p.is_empty());
    }

    #[test]
    #[should_panic(expected = "unknown peer")]
    fn unknown_peer_panics() {
        pz().offer(&99, 0, 0);
    }

    #[test]
    fn next_departure_tracks_cooldown() {
        let mut p = pz();
        assert_eq!(p.next_departure(0), None, "nothing queued");
        for i in 0..3 {
            p.offer(&10, i, 0);
        }
        assert_eq!(p.next_departure(0), None, "staged only, no packet yet");
        p.offer(&10, 3, 0);
        assert_eq!(p.next_departure(7), Some(7), "ready and past cooldown");
        p.offer(&20, 0, 0);
        p.flush(&20, 0);
        assert!(p.tick(10).is_some());
        assert_eq!(p.next_departure(11), Some(14), "cooldown gates the next one");
        assert_eq!(p.next_departure(20), Some(20));
    }
}
