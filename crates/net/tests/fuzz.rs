//! Fuzz-grade property tests for the v2 wire format and the
//! retransmission state machine.
//!
//! Wire format: `Packet::to_bytes`/`from_bytes` must round-trip every
//! kind / payload count / flag / seq combination, and `from_bytes` must
//! return `None` — never panic — on truncated, bit-flipped, or
//! length-field-corrupted frames, including corruption that lands in the
//! new seq/checksum header fields (and even when the attacker fixes the
//! checksum up afterwards).
//!
//! Reliability: for any *finite* drop schedule on both the data and the
//! ack direction, the sender/receiver pair must converge to exactly-once
//! in-order delivery, with the head-of-line backoff never exceeding the
//! configured cap.

use fasda_net::packet::{
    crc32, Packet, PacketKind, WirePayload, HEADER_BYTES, PAYLOADS_PER_PACKET,
};
use fasda_net::reliable::{Accept, LinkReceiver, LinkSender, RelConfig};
use proptest::prelude::*;

#[derive(Clone, Copy, Debug, PartialEq)]
struct P(u64, u32);

impl WirePayload for P {
    const WIRE_BYTES: usize = 12;
    fn encode(&self, buf: &mut bytes::BytesMut) {
        use bytes::BufMut;
        buf.put_u64(self.0);
        buf.put_u32(self.1);
    }
    fn decode(buf: &mut &[u8]) -> Option<Self> {
        use bytes::Buf;
        if buf.len() < 12 {
            return None;
        }
        Some(P(buf.get_u64(), buf.get_u32()))
    }
}

fn kind_of(k: u8) -> PacketKind {
    match k % 3 {
        0 => PacketKind::Position,
        1 => PacketKind::Force,
        _ => PacketKind::Migration,
    }
}

/// Build an arbitrary valid frame from sampled fields.
fn frame(k: u8, vals: &[(u64, u32)], last: bool, step: u64, seq: u32) -> Packet<P> {
    let payloads: Vec<P> = vals
        .iter()
        .take(PAYLOADS_PER_PACKET)
        .map(|&(a, b)| P(a, b))
        .collect();
    let mut pkt = Packet::data(kind_of(k), payloads, step).with_seq(seq);
    pkt.last = last;
    pkt
}

/// Re-stamp a mutated frame with a *valid* checksum, simulating an
/// attacker (or a very unlucky burst error) that preserves CRC validity.
fn fix_crc(bytes: &mut [u8]) {
    bytes[12..16].copy_from_slice(&[0; 4]);
    let crc = crc32(bytes);
    bytes[12..16].copy_from_slice(&crc.to_be_bytes());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Round-trip across all kinds, counts 0..=4, both flag values, and
    /// arbitrary step/seq — including the new header fields.
    #[test]
    fn roundtrip_all_kinds_counts_flags_seqs(
        k in 0u8..3,
        vals in proptest::collection::vec((any::<u64>(), any::<u32>()), 0..5),
        last in any::<bool>(),
        step in 0u64..u32::MAX as u64,
        seq in any::<u32>(),
    ) {
        let pkt = frame(k, &vals, last, step, seq);
        let bytes = pkt.to_bytes();
        prop_assert!(bytes.len() >= 64, "at least one 512-bit beat");
        let back: Packet<P> = Packet::from_bytes(&bytes).expect("valid frame parses");
        prop_assert_eq!(back, pkt);
    }

    /// Any combination of bit flips is rejected by the checksum (and
    /// never panics) unless the flips cancel out to the original frame.
    #[test]
    fn bit_flips_rejected(
        k in 0u8..3,
        vals in proptest::collection::vec((any::<u64>(), any::<u32>()), 0..5),
        seq in any::<u32>(),
        flips in proptest::collection::vec((any::<u64>(), 0u8..8), 1..4),
    ) {
        let pkt = frame(k, &vals, false, 7, seq);
        let bytes = pkt.to_bytes();
        let mut mutated = bytes.to_vec();
        for &(pos, bit) in &flips {
            let i = (pos % mutated.len() as u64) as usize;
            mutated[i] ^= 1 << bit;
        }
        if mutated != bytes.to_vec() {
            prop_assert!(
                Packet::<P>::from_bytes(&mutated).is_none(),
                "corrupted frame parsed"
            );
        }
    }

    /// Every truncation of a valid frame is rejected without panicking.
    #[test]
    fn truncations_rejected(
        k in 0u8..3,
        vals in proptest::collection::vec((any::<u64>(), any::<u32>()), 0..5),
        cut in any::<u64>(),
    ) {
        let bytes = frame(k, &vals, true, 3, 99).to_bytes();
        let len = (cut % bytes.len() as u64) as usize;
        prop_assert!(
            Packet::<P>::from_bytes(&bytes[..len]).is_none(),
            "truncated frame of {} bytes parsed",
            len
        );
    }

    /// Corrupting the length (count) or kind field is rejected even when
    /// the checksum is fixed up to match the mutated frame: the decoder's
    /// own bounds checks are the second line of defence.
    #[test]
    fn length_and_kind_corruption_rejected_even_with_valid_crc(
        vals in proptest::collection::vec((any::<u64>(), any::<u32>()), 0..5),
        count_raw in any::<u8>(),
        kind_raw in any::<u8>(),
    ) {
        // Map the raw draws onto the invalid domains (the shim has no
        // RangeInclusive strategy): count ∈ 5..=255, kind ∈ 3..=255.
        let bad_count = 5 + count_raw % 251;
        let bad_kind = 3 + kind_raw % 253;
        let bytes = frame(0, &vals, false, 1, 5).to_bytes();
        let mut bad = bytes.to_vec();
        bad[1] = bad_count;
        fix_crc(&mut bad);
        prop_assert!(
            Packet::<P>::from_bytes(&bad).is_none(),
            "impossible payload count {} parsed",
            bad_count
        );
        let mut bad = bytes.to_vec();
        bad[0] = bad_kind;
        fix_crc(&mut bad);
        prop_assert!(
            Packet::<P>::from_bytes(&bad).is_none(),
            "unknown kind {} parsed",
            bad_kind
        );
        // Claiming more payloads than the frame can hold must be caught
        // by the payload decoder's length guard. 15-byte payloads: a
        // count of 4 needs 16 + 60 = 76 bytes, but an empty frame is
        // only one 64-byte beat.
        #[derive(Clone, Copy, Debug, PartialEq)]
        struct Wide([u8; 15]);
        impl WirePayload for Wide {
            const WIRE_BYTES: usize = 15;
            fn encode(&self, buf: &mut bytes::BytesMut) {
                buf.extend_from_slice(&self.0);
            }
            fn decode(buf: &mut &[u8]) -> Option<Self> {
                if buf.len() < 15 {
                    return None;
                }
                let mut v = [0u8; 15];
                v.copy_from_slice(&buf[..15]);
                *buf = &buf[15..];
                Some(Wide(v))
            }
        }
        let empty: Packet<Wide> = Packet::data(PacketKind::Position, Vec::new(), 1);
        let mut bad = empty.to_bytes().to_vec();
        bad[1] = 4;
        fix_crc(&mut bad);
        prop_assert!(
            Packet::<Wide>::from_bytes(&bad).is_none(),
            "count lying beyond the frame length parsed"
        );
    }

    /// Arbitrary garbage never panics the parser.
    #[test]
    fn arbitrary_bytes_never_panic(
        junk in proptest::collection::vec(any::<u8>(), 0..200),
    ) {
        let _ = Packet::<P>::from_bytes(&junk);
        prop_assert!(junk.len() >= HEADER_BYTES || Packet::<P>::from_bytes(&junk).is_none());
    }

    /// Backoff doubles per head-of-line retransmission and never exceeds
    /// the cap, for arbitrary (timeout, cap) configurations.
    #[test]
    fn backoff_doubles_and_never_exceeds_cap(
        timeout in 1u64..100,
        cap in 1u64..1_000,
        kicks in 2u32..12,
    ) {
        let cfg = RelConfig::new(timeout, cap);
        let mut tx = LinkSender::new(cfg);
        tx.launch(0, 0u8);
        let mut prev = timeout;
        for k in 0..kicks {
            let due = tx.next_retx_due().expect("unacked packet has a deadline");
            let (_, _, attempt) = tx.poll_retransmit(due).expect("due at its deadline");
            prop_assert_eq!(attempt, k + 1);
            let t = tx.current_timeout();
            prop_assert!(t <= cfg.backoff_cap, "timeout {} above cap {}", t, cfg.backoff_cap);
            prop_assert_eq!(t, (prev * 2).min(cfg.backoff_cap));
            prev = t;
        }
    }

    /// The receiver delivers exactly 1..=n in order for any arrival
    /// permutation with any duplication pattern.
    #[test]
    fn receiver_exactly_once_under_permutation_and_duplication(
        n in 1usize..40,
        shuffle_seed in any::<u64>(),
        dup_mask in proptest::collection::vec(any::<bool>(), 1..40),
    ) {
        let mut arrivals: Vec<u32> = (1..=n as u32).collect();
        for (i, dup) in dup_mask.iter().enumerate() {
            if *dup {
                arrivals.push((i % n) as u32 + 1);
            }
        }
        let mut rng = shuffle_seed | 1;
        for i in (1..arrivals.len()).rev() {
            rng ^= rng << 13;
            rng ^= rng >> 7;
            rng ^= rng << 17;
            let j = (rng as usize) % (i + 1);
            arrivals.swap(i, j);
        }
        let mut rx = LinkReceiver::new();
        let mut delivered: Vec<u32> = Vec::new();
        for seq in arrivals {
            if let Accept::Deliver { payloads, .. } = rx.accept(seq, seq) {
                delivered.extend(payloads.into_iter().map(|(s, _)| s));
            }
        }
        let want: Vec<u32> = (1..=n as u32).collect();
        prop_assert_eq!(delivered, want, "not exactly-once in-order");
        prop_assert_eq!(rx.delivered, n as u64);
    }

    /// End-to-end convergence: any finite drop schedule on the data
    /// direction *and* the ack direction yields exactly-once in-order
    /// delivery, event-driven so large backoffs cost nothing.
    #[test]
    fn finite_fault_schedules_converge_exactly_once(
        n in 1usize..25,
        timeout in 5u64..60,
        cap_mult in 1u64..8,
        data_drops in proptest::collection::vec(any::<bool>(), 1..100),
        ack_drops in proptest::collection::vec(any::<bool>(), 1..100),
        latency in 1u64..15,
    ) {
        let cfg = RelConfig::new(timeout, timeout * cap_mult);
        let mut tx = LinkSender::new(cfg);
        let mut rx = LinkReceiver::new();
        // (arrival_cycle, seq) wires; drop schedules are consumed one
        // entry per transmission and deliver everything once exhausted —
        // the "finite schedule" convergence precondition.
        let mut data_wire: Vec<(u64, u32)> = Vec::new();
        let mut ack_wire: Vec<(u64, u32)> = Vec::new();
        let (mut dn, mut an) = (0usize, 0usize);
        let dropped = |sched: &[bool], i: &mut usize| {
            let d = sched.get(*i).copied().unwrap_or(false);
            *i += 1;
            d
        };
        let mut delivered: Vec<u32> = Vec::new();
        for i in 0..n {
            let seq = tx.launch(i as u64, seq_payload(i));
            if !dropped(&data_drops, &mut dn) {
                data_wire.push((i as u64 + latency, seq));
            }
        }
        let mut now = 0u64;
        let mut iterations = 0u32;
        while tx.inflight() > 0 {
            iterations += 1;
            prop_assert!(iterations < 5_000, "no convergence after 5000 events");
            // Jump to the next event: a wire arrival or a retx deadline.
            let mut next = u64::MAX;
            for &(at, _) in data_wire.iter().chain(ack_wire.iter()) {
                next = next.min(at);
            }
            if let Some(d) = tx.next_retx_due() {
                next = next.min(d);
            }
            prop_assert!(next != u64::MAX, "inflight but no pending event");
            now = now.max(next);
            let arrivals: Vec<(u64, u32)> =
                data_wire.iter().copied().filter(|&(at, _)| at <= now).collect();
            data_wire.retain(|&(at, _)| at > now);
            for (_, seq) in arrivals {
                let cumulative = match rx.accept(seq, seq) {
                    Accept::Deliver { payloads, cumulative } => {
                        delivered.extend(payloads.into_iter().map(|(s, _)| s));
                        cumulative
                    }
                    Accept::Buffered { cumulative } | Accept::Duplicate { cumulative } => {
                        cumulative
                    }
                };
                if !dropped(&ack_drops, &mut an) {
                    ack_wire.push((now + latency, cumulative));
                }
            }
            let acks: Vec<(u64, u32)> =
                ack_wire.iter().copied().filter(|&(at, _)| at <= now).collect();
            ack_wire.retain(|&(at, _)| at > now);
            for (_, seq) in acks {
                tx.on_ack(now, seq);
            }
            if let Some((seq, _, _)) = tx.poll_retransmit(now) {
                prop_assert!(tx.current_timeout() <= cfg.backoff_cap);
                if !dropped(&data_drops, &mut dn) {
                    data_wire.push((now + latency, seq));
                }
            }
        }
        let want: Vec<u32> = (1..=n as u32).collect();
        prop_assert_eq!(delivered, want, "not exactly-once in-order");
        prop_assert_eq!(rx.delivered, n as u64);
        prop_assert_eq!(tx.next_retx_due(), None, "window drained");
    }
}

/// Payload stand-in keyed by launch index (content equality is checked
/// through the sequence numbers).
fn seq_payload(i: usize) -> u32 {
    i as u32 + 1
}

/// Snapshot/persist round-trips for the net-layer checkpoint surface.
///
/// Every stateful unit that `fasda-ckpt` serializes must satisfy
/// `state → bytes → state' → bytes'` with `bytes == bytes'` (canonical
/// encoding), and the restored unit must *behave* identically — same
/// retransmission deadlines, same fault-stream draws — because resume
/// bit-identity of the whole cluster rests on each unit continuing
/// exactly where the snapshot left it.
mod snapshot_roundtrips {
    use super::*;
    use fasda_net::encap::Packetizer;
    use fasda_net::fault::{FaultChannel, FaultPlan, FaultState};
    use fasda_ckpt::{Persist, Snapshot};

    fn persist_bytes<T: Persist>(v: &T) -> Vec<u8> {
        let mut w = fasda_ckpt::Writer::new();
        v.save(&mut w);
        w.into_bytes()
    }

    fn snapshot_bytes<S: Snapshot>(v: &S) -> Vec<u8> {
        let mut w = fasda_ckpt::Writer::new();
        v.snapshot(&mut w);
        w.into_bytes()
    }

    proptest! {
        /// Sender windows — in-flight payloads, deadlines, backoff —
        /// survive save/load byte-identically after any op sequence,
        /// and the reloaded sender schedules the same next deadline.
        #[test]
        fn link_sender_roundtrips(
            timeout in 1u64..80,
            cap_mult in 1u64..8,
            ops in proptest::collection::vec((any::<u8>(), any::<u64>()), 0..60),
        ) {
            let cfg = RelConfig::new(timeout, timeout * cap_mult);
            let mut tx = LinkSender::new(cfg);
            let mut now = 0u64;
            for &(op, arg) in &ops {
                now += arg % 7 + 1;
                match op % 3 {
                    0 => { tx.launch(now, arg); }
                    1 => { tx.on_ack(now, (arg % 64) as u32); }
                    _ => { tx.poll_retransmit(now); }
                }
            }
            let bytes = persist_bytes(&tx);
            let mut r = fasda_ckpt::Reader::new(&bytes, "rel.tx");
            let restored: LinkSender<u64> = Persist::load(&mut r).expect("load");
            prop_assert_eq!(persist_bytes(&restored), bytes, "re-save differs");
            prop_assert_eq!(restored.inflight(), tx.inflight());
            prop_assert_eq!(restored.next_retx_due(), tx.next_retx_due());
            prop_assert_eq!(restored.current_timeout(), tx.current_timeout());
        }

        /// Receiver reorder windows and delivery counters round-trip,
        /// and the restored receiver accepts the next sequence
        /// identically.
        #[test]
        fn link_receiver_roundtrips(
            arrivals in proptest::collection::vec((1u32..70, any::<u64>()), 0..80),
        ) {
            let mut rx: LinkReceiver<u64> = LinkReceiver::new();
            for &(seq, payload) in &arrivals {
                rx.accept(seq, payload);
            }
            let bytes = persist_bytes(&rx);
            let mut r = fasda_ckpt::Reader::new(&bytes, "rel.rx");
            let mut restored: LinkReceiver<u64> = Persist::load(&mut r).expect("load");
            prop_assert_eq!(persist_bytes(&restored), bytes, "re-save differs");
            prop_assert_eq!(restored.delivered, rx.delivered);
            prop_assert_eq!(restored.duplicates, rx.duplicates);
            // Both must judge a fresh arrival the same way.
            for seq in 1u32..72 {
                prop_assert_eq!(rx.accept(seq, 0xAB), restored.accept(seq, 0xAB));
            }
        }

        /// Departure gates: staged payloads, formed-but-undeparted
        /// packets, cooldown deadline, and round-robin cursor restore
        /// into a config-shaped packetizer and re-snapshot identically.
        #[test]
        fn packetizer_roundtrips(
            n_peers in 1usize..6,
            cooldown in 0u32..12,
            kind in any::<u8>(),
            offers in proptest::collection::vec((0u16..4096, any::<u64>()), 0..60),
            ticks in 0u64..20,
        ) {
            let peers: Vec<u32> = (0..n_peers as u32).collect();
            let mut pz: Packetizer<u32, u64> =
                Packetizer::new(kind_of(kind), peers.clone(), cooldown);
            for &(peer, item) in &offers {
                pz.offer(&(peer as u32 % n_peers as u32), item, 3);
            }
            for cycle in 0..ticks {
                pz.tick(cycle);
            }
            let bytes = snapshot_bytes(&pz);
            let mut fresh: Packetizer<u32, u64> =
                Packetizer::new(kind_of(kind), peers, cooldown);
            let mut r = fasda_ckpt::Reader::new(&bytes, "net.packetizer");
            fresh.restore(&mut r).expect("restore");
            prop_assert_eq!(snapshot_bytes(&fresh), bytes, "re-snapshot differs");
            prop_assert_eq!(fresh.pending(), pz.pending());
            // Identical continuation: same departures from here on.
            for cycle in ticks..ticks + 8 {
                prop_assert_eq!(pz.tick(cycle), fresh.tick(cycle));
            }
        }

        /// Fault-injection streams resume mid-sequence: a restored
        /// `FaultState` re-snapshots byte-identically and draws the
        /// same outcomes as the original continuing uninterrupted.
        #[test]
        fn fault_state_roundtrips_and_continues(
            drop_p in 0.0f64..0.9,
            seed in any::<u64>(),
            warmup in proptest::collection::vec((any::<u8>(), 0u32..3, 0u32..3), 0..60),
        ) {
            let plan = FaultPlan::drop_only(drop_p, seed);
            let mut fs = FaultState::new(plan.clone());
            for (i, &(ch, src, dst)) in warmup.iter().enumerate() {
                let channel = FaultChannel::ALL[ch as usize % FaultChannel::ALL.len()];
                fs.on_transmit(channel, src, dst, i as u64, i as u64, ch % 5 == 0);
            }
            let bytes = snapshot_bytes(&fs);
            let mut restored = FaultState::new(plan);
            let mut r = fasda_ckpt::Reader::new(&bytes, "net.faults");
            restored.restore(&mut r).expect("restore");
            prop_assert_eq!(snapshot_bytes(&restored), bytes, "re-snapshot differs");
            prop_assert_eq!(restored.injected, fs.injected);
            // The resumed schedule must continue exactly where the
            // original left off, on every link.
            for src in 0..3u32 {
                for dst in 0..3u32 {
                    for i in 0..10u8 {
                        let channel = FaultChannel::ALL[i as usize % FaultChannel::ALL.len()];
                        prop_assert_eq!(
                            fs.on_transmit(channel, src, dst, 9, 9, false),
                            restored.on_transmit(channel, src, dst, 9, 9, false)
                        );
                    }
                }
            }
        }

        /// Correlated schedules (burst chains, flaps, partitions) are a
        /// pure function of the per-link transmission history: the same
        /// seed and plan produce the byte-identical fault event sequence
        /// no matter where a checkpoint/resume split lands.
        #[test]
        fn correlated_schedule_invariant_across_resume_split(
            seed in any::<u64>(),
            drop_p in 0.0f64..0.4,
            p_enter in 0.0f64..0.5,
            p_exit in 0.05f64..1.0,
            flap_step in 0u64..5,
            flap_dur in 1u64..60,
            part_step in 0u64..5,
            part_dur in 1u64..60,
            ops in proptest::collection::vec((0u8..3, 0u32..4, 0u32..4, any::<bool>()), 1..120),
            split in any::<u64>(),
        ) {
            let plan = FaultPlan::drop_only(drop_p, seed)
                .with_burst(p_enter, p_exit, 0.9)
                .with_flap(fasda_net::fault::LinkFlap {
                    channel: FaultChannel::Pos,
                    src: 0,
                    dst: 1,
                    step: flap_step,
                    duration: flap_dur,
                })
                .with_partition(vec![0, 1], vec![2, 3], part_step, part_dur);
            // Step/cycle trajectories are deterministic functions of the
            // op index, shared by every replay below.
            let transmit = |st: &mut FaultState, i: usize, op: (u8, u32, u32, bool)| {
                let (ch, src, dst, marker) = op;
                let channel = FaultChannel::ALL[ch as usize % FaultChannel::ALL.len()];
                st.on_transmit(channel, src, dst, i as u64 / 7, i as u64 * 3, marker)
            };

            // Oracle: the uninterrupted schedule.
            let mut oracle = FaultState::new(plan.clone());
            let want: Vec<_> =
                ops.iter().enumerate().map(|(i, &op)| transmit(&mut oracle, i, op)).collect();

            // Split at an arbitrary point, snapshot, restore, continue.
            let k = split as usize % (ops.len() + 1);
            let mut first = FaultState::new(plan.clone());
            let mut got: Vec<_> = ops[..k]
                .iter()
                .enumerate()
                .map(|(i, &op)| transmit(&mut first, i, op))
                .collect();
            let bytes = snapshot_bytes(&first);
            let mut resumed = FaultState::new(plan);
            let mut r = fasda_ckpt::Reader::new(&bytes, "net.faults");
            resumed.restore(&mut r).expect("restore");
            got.extend(
                ops[k..]
                    .iter()
                    .enumerate()
                    .map(|(j, &op)| transmit(&mut resumed, k + j, op)),
            );
            prop_assert_eq!(got, want, "resume split at {} diverged", k);
            prop_assert_eq!(resumed.injected, oracle.injected);
            prop_assert_eq!(snapshot_bytes(&resumed), snapshot_bytes(&oracle));
        }

        /// The same schedule is invariant to sharding: two workers, each
        /// deciding only the transmissions whose source node it owns,
        /// produce exactly the oracle's per-transmission outcomes, and
        /// the source-sliced splice (`adopt_links_from`) rebuilds a
        /// state that continues identically to the oracle.
        #[test]
        fn correlated_schedule_invariant_across_sharding(
            seed in any::<u64>(),
            drop_p in 0.0f64..0.4,
            p_enter in 0.0f64..0.5,
            p_exit in 0.05f64..1.0,
            part_step in 0u64..4,
            part_dur in 1u64..60,
            ops in proptest::collection::vec((0u8..3, 0u32..4, 0u32..4, any::<bool>()), 1..120),
            tail in proptest::collection::vec((0u8..3, 0u32..4, 0u32..4, any::<bool>()), 1..40),
        ) {
            let plan = FaultPlan::drop_only(drop_p, seed)
                .with_burst(p_enter, p_exit, 0.9)
                .with_partition(vec![0, 1], vec![2, 3], part_step, part_dur);
            let transmit = |st: &mut FaultState, i: usize, op: (u8, u32, u32, bool)| {
                let (ch, src, dst, marker) = op;
                let channel = FaultChannel::ALL[ch as usize % FaultChannel::ALL.len()];
                st.on_transmit(channel, src, dst, i as u64 / 7, i as u64 * 3, marker)
            };

            let mut oracle = FaultState::new(plan.clone());
            let want: Vec<_> =
                ops.iter().enumerate().map(|(i, &op)| transmit(&mut oracle, i, op)).collect();

            // Workers own srcs {0,1} and {2,3}; each sees only its half
            // of the global transmit order, exactly like the sharded
            // network phase.
            let mut w_lo = FaultState::new(plan.clone());
            let mut w_hi = FaultState::new(plan.clone());
            for (i, &op) in ops.iter().enumerate() {
                let st = if op.1 < 2 { &mut w_lo } else { &mut w_hi };
                prop_assert_eq!(transmit(st, i, op), want[i], "worker diverged at op {}", i);
            }
            // Per-transmission attribution is disjoint, so worker tallies
            // reconcile to the oracle's by summation.
            for k in 0..5 {
                prop_assert_eq!(w_lo.injected[k] + w_hi.injected[k], oracle.injected[k]);
            }

            // Splice both workers' link state into a fresh replica and
            // continue: the replica must match the oracle continuing.
            let mut replica = FaultState::new(plan);
            replica.adopt_links_from(&w_lo, |src| src < 2);
            replica.adopt_links_from(&w_hi, |src| src >= 2);
            for (j, &op) in tail.iter().enumerate() {
                let i = ops.len() + j;
                prop_assert_eq!(
                    transmit(&mut replica, i, op),
                    transmit(&mut oracle, i, op),
                    "spliced replica diverged at tail op {}",
                    j
                );
            }
        }

        /// Bit-flipped persisted state must load as a typed error or a
        /// (possibly different) valid value — never panic, never hang,
        /// never allocate absurdly.
        #[test]
        fn corrupted_state_never_panics(
            timeout in 1u64..50,
            launches in 1usize..20,
            flips in proptest::collection::vec((0u16..4096, 0u8..8), 1..4),
        ) {
            let mut tx = LinkSender::new(RelConfig::new(timeout, timeout * 4));
            for i in 0..launches {
                tx.launch(i as u64, i as u64);
            }
            let mut bytes = persist_bytes(&tx);
            for &(pos, bit) in &flips {
                let idx = pos as usize % bytes.len();
                bytes[idx] ^= 1 << bit;
            }
            let mut r = fasda_ckpt::Reader::new(&bytes, "rel.tx");
            let _ = <LinkSender<u64> as Persist>::load(&mut r);
        }
    }
}
