//! Property-based tests for the network substrate: packet framing,
//! encapsulation conservation, topology metrics, and the sync state
//! machine.

use fasda_net::encap::Packetizer;
use fasda_net::packet::{Packet, PacketKind, PAYLOADS_PER_PACKET};
use fasda_net::sync::ChainedSync;
use fasda_net::topology::Topology;
use proptest::prelude::*;

proptest! {
    /// Everything offered to a packetizer departs exactly once, in order
    /// per peer, regardless of offer pattern and cooldown.
    #[test]
    fn packetizer_conserves_payloads(
        items in proptest::collection::vec((0u8..3, 0u64..1000), 1..200),
        cooldown in 1u32..8,
    ) {
        let mut pz = Packetizer::new(PacketKind::Position, vec![0u8, 1, 2], cooldown);
        for (peer, item) in &items {
            pz.offer(peer, *item, 0);
        }
        for peer in [0u8, 1, 2] {
            pz.flush(&peer, 0);
        }
        let mut received: Vec<Vec<u64>> = vec![Vec::new(); 3];
        let mut cycle = 0u64;
        while !pz.is_empty() {
            if let Some((peer, pkt)) = pz.tick(cycle) {
                prop_assert!(pkt.payloads.len() <= PAYLOADS_PER_PACKET);
                received[peer as usize].extend(pkt.payloads);
            }
            cycle += 1;
            prop_assert!(cycle < 100_000, "packetizer failed to drain");
        }
        let mut expected: Vec<Vec<u64>> = vec![Vec::new(); 3];
        for (peer, item) in &items {
            expected[*peer as usize].push(*item);
        }
        prop_assert_eq!(received, expected);
    }

    /// Cooldown is respected: consecutive departures are at least
    /// `cooldown` cycles apart.
    #[test]
    fn packetizer_respects_cooldown(
        n in 1usize..50,
        cooldown in 1u32..10,
    ) {
        let mut pz = Packetizer::new(PacketKind::Force, vec![0u8], cooldown);
        for i in 0..n as u64 * 4 {
            pz.offer(&0, i, 0);
        }
        let mut last: Option<u64> = None;
        for cycle in 0..(n as u64 * 4 * cooldown as u64 + 100) {
            if pz.tick(cycle).is_some() {
                if let Some(prev) = last {
                    prop_assert!(cycle - prev >= cooldown as u64);
                }
                last = Some(cycle);
            }
        }
        prop_assert!(pz.is_empty());
    }

    /// Packet wire serialization round-trips arbitrary u64-pair payloads.
    #[test]
    fn packet_bytes_roundtrip(
        vals in proptest::collection::vec((any::<u64>(), any::<u32>()), 0..5),
        last in any::<bool>(),
        step in 0u64..u32::MAX as u64,
    ) {
        #[derive(Clone, Copy, Debug, PartialEq)]
        struct P(u64, u32);
        impl fasda_net::packet::WirePayload for P {
            const WIRE_BYTES: usize = 12;
            fn encode(&self, buf: &mut bytes::BytesMut) {
                use bytes::BufMut;
                buf.put_u64(self.0);
                buf.put_u32(self.1);
            }
            fn decode(buf: &mut &[u8]) -> Option<Self> {
                use bytes::Buf;
                if buf.len() < 12 {
                    return None;
                }
                Some(P(buf.get_u64(), buf.get_u32()))
            }
        }
        let payloads: Vec<P> = vals.iter().map(|(a, b)| P(*a, *b)).collect();
        let count = payloads.len().min(PAYLOADS_PER_PACKET);
        let mut pkt = Packet::data(PacketKind::Migration, payloads[..count].to_vec(), step);
        pkt.last = last;
        let back: Packet<P> = Packet::from_bytes(&pkt.to_bytes()).expect("parse");
        prop_assert_eq!(back, pkt);
    }

    /// Ring topologies are symmetric and satisfy the triangle
    /// inequality through any relay node.
    #[test]
    fn ring_metric_properties(nodes in 3usize..16, hop in 1u64..100) {
        let t = Topology::HyperRing { nodes, hop_latency: hop };
        for a in 0..nodes {
            for b in 0..nodes {
                prop_assert_eq!(t.path_latency(a, b), t.path_latency(b, a));
                for c in 0..nodes {
                    prop_assert!(
                        t.path_latency(a, b) <= t.path_latency(a, c) + t.path_latency(c, b)
                    );
                }
            }
        }
    }

    /// Chained sync completes iff all four marker sets are complete, for
    /// arbitrary neighbourhood sizes and arrival orders.
    #[test]
    fn chained_sync_completion_exact(
        n_send in 1usize..6,
        n_recv in 1usize..6,
        order_seed in 0u64..1000,
    ) {
        let send: Vec<u8> = (0..n_send as u8).collect();
        let recv: Vec<u8> = (10..10 + n_recv as u8).collect();
        let mut s = ChainedSync::new(send.clone(), recv.clone());
        s.begin_step(0);
        // event list: (kind, peer)
        let mut events: Vec<(u8, u8)> = Vec::new();
        for p in &send {
            events.push((0, *p)); // mark last_pos sent
            events.push((3, *p)); // recv last_frc from send peer
        }
        for p in &recv {
            events.push((1, *p)); // recv last_pos
            events.push((2, *p)); // mark last_frc sent
        }
        // deterministic shuffle
        let mut rng = order_seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        for i in (1..events.len()).rev() {
            rng ^= rng << 13;
            rng ^= rng >> 7;
            rng ^= rng << 17;
            let j = (rng as usize) % (i + 1);
            events.swap(i, j);
        }
        for (k, (kind, peer)) in events.iter().enumerate() {
            prop_assert!(
                !s.force_phase_complete() || k == events.len(),
                "complete before all events applied"
            );
            match kind {
                0 => s.mark_last_pos_sent(*peer),
                1 => s.on_marker(fasda_net::packet::PacketKind::Position, *peer, 0),
                2 => s.mark_last_frc_sent(*peer),
                3 => s.on_marker(fasda_net::packet::PacketKind::Force, *peer, 0),
                _ => unreachable!(),
            }
        }
        prop_assert!(s.force_phase_complete());
    }
}
