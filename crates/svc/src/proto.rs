//! The versioned client/server control protocol.
//!
//! Messages are compact JSON documents carried as CRC-framed,
//! length-prefixed payloads over any [`FrameLink`] — the exact framing
//! the shard mesh and the checkpoint container use (`payload_len u64 |
//! crc32 u32 | payload`, little-endian), so Unix-domain and TCP carriers
//! are interchangeable and a corrupted frame is rejected before parsing.
//!
//! Every request and response carries `"v": 1`; a version mismatch is an
//! immediate error on both sides, which is what makes the protocol
//! safely evolvable: an old client talking to a new server (or vice
//! versa) fails loudly at the first frame instead of misinterpreting
//! fields.
//!
//! Requests (`"op"` selects the verb):
//!
//! ```text
//! {"v":1,"op":"submit","spec":{...}}      -> {"v":1,"ok":true,"id":N}
//! {"v":1,"op":"status"}                   -> {"v":1,"ok":true,"jobs":[...]}
//! {"v":1,"op":"status","id":N}            -> {"v":1,"ok":true,"job":{...}}
//! {"v":1,"op":"cancel","id":N}            -> {"v":1,"ok":true}
//! {"v":1,"op":"logs","id":N}              -> {"v":1,"ok":true,"lines":[...]}
//! {"v":1,"op":"migrate","id":N}           -> {"v":1,"ok":true}
//! {"v":1,"op":"metrics"}                  -> {"v":1,"ok":true,"metrics":{...}}
//! {"v":1,"op":"shutdown"}                 -> {"v":1,"ok":true}
//! ```
//!
//! Failures come back as `{"v":1,"ok":false,"error":"..."}`.

use fasda_net::transport::{FrameLink, LinkError};
use fasda_trace::json::ObjBuilder;
use fasda_trace::Json;

/// Control-protocol version; bumped on any wire-visible change.
pub const PROTO_VERSION: i64 = 1;

/// Protocol-layer errors.
#[derive(Debug)]
pub enum ProtoError {
    /// The carrier failed (closed socket, bad CRC, …).
    Link(LinkError),
    /// The frame arrived but is not a valid protocol document.
    Malformed(String),
    /// The peer speaks a different protocol version.
    Version(i64),
    /// The server answered `ok: false`.
    Rejected(String),
}

impl std::fmt::Display for ProtoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtoError::Link(e) => write!(f, "control link: {e}"),
            ProtoError::Malformed(e) => write!(f, "malformed control message: {e}"),
            ProtoError::Version(v) => write!(
                f,
                "protocol version mismatch: peer speaks v{v}, this build speaks v{PROTO_VERSION}"
            ),
            ProtoError::Rejected(e) => write!(f, "server rejected request: {e}"),
        }
    }
}

impl std::error::Error for ProtoError {}

impl From<LinkError> for ProtoError {
    fn from(e: LinkError) -> Self {
        ProtoError::Link(e)
    }
}

/// Start a versioned message document.
pub fn msg() -> ObjBuilder {
    Json::obj().field("v", PROTO_VERSION)
}

/// Send one protocol document over the link.
pub fn write_msg(link: &mut dyn FrameLink, doc: &Json) -> Result<(), ProtoError> {
    Ok(link.send_frame(doc.compact().as_bytes())?)
}

/// Receive one protocol document, validating framing, JSON shape, and
/// the version field.
pub fn read_msg(link: &mut dyn FrameLink) -> Result<Json, ProtoError> {
    let bytes = link.recv_frame()?;
    let text = std::str::from_utf8(&bytes)
        .map_err(|e| ProtoError::Malformed(format!("not UTF-8: {e}")))?;
    let doc = Json::parse(text).map_err(ProtoError::Malformed)?;
    match doc.get("v").and_then(Json::as_i64) {
        Some(PROTO_VERSION) => Ok(doc),
        Some(v) => Err(ProtoError::Version(v)),
        None => Err(ProtoError::Malformed("message has no version field".into())),
    }
}

/// An `ok: true` response skeleton.
pub fn ok() -> ObjBuilder {
    msg().field("ok", true)
}

/// An `ok: false` response with the error message.
pub fn err(error: &str) -> Json {
    msg().field("ok", false).field("error", error).build()
}

/// Unwrap a response: `Ok(doc)` for `ok: true`, the server's error
/// otherwise.
pub fn expect_ok(doc: Json) -> Result<Json, ProtoError> {
    match doc.get("ok") {
        Some(&Json::Bool(true)) => Ok(doc),
        Some(&Json::Bool(false)) => Err(ProtoError::Rejected(
            doc.get("error")
                .and_then(Json::as_str)
                .unwrap_or("unknown error")
                .to_string(),
        )),
        _ => Err(ProtoError::Malformed("response has no ok field".into())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fasda_net::transport::MemLink;

    #[test]
    fn round_trip_over_memlink() {
        let (mut a, mut b) = MemLink::pair();
        let req = msg().field("op", "status").field("id", Json::uint(7)).build();
        write_msg(&mut a, &req).unwrap();
        let got = read_msg(&mut b).unwrap();
        assert_eq!(got, req);
    }

    #[test]
    fn version_mismatch_is_loud() {
        let (mut a, mut b) = MemLink::pair();
        let bad = Json::obj().field("v", 99i64).field("op", "status").build();
        a.send_frame(bad.compact().as_bytes()).unwrap();
        match read_msg(&mut b) {
            Err(ProtoError::Version(99)) => {}
            other => panic!("wanted version error, got {other:?}"),
        }
    }

    #[test]
    fn garbage_frames_are_rejected() {
        let (mut a, mut b) = MemLink::pair();
        a.send_frame(b"not json").unwrap();
        assert!(matches!(read_msg(&mut b), Err(ProtoError::Malformed(_))));
        a.send_frame(br#"{"op":"status"}"#).unwrap();
        assert!(matches!(read_msg(&mut b), Err(ProtoError::Malformed(_))));
    }

    #[test]
    fn ok_and_err_shapes() {
        let good = ok().field("id", Json::uint(3)).build();
        assert_eq!(
            expect_ok(good).unwrap().get("id").and_then(Json::as_i64),
            Some(3)
        );
        match expect_ok(err("nope")) {
            Err(ProtoError::Rejected(e)) => assert_eq!(e, "nope"),
            other => panic!("wanted rejection, got {other:?}"),
        }
    }
}
