//! # fasda-svc
//!
//! The multi-tenant job service layered over the cycle-level simulator:
//! a daemon owning a **persistent, crash-safe job queue** (priorities +
//! per-tenant fair-share quotas, journaled with the same atomic
//! write-rename and CRC-framing idioms as the checkpoint store), a
//! **worker pool** executing jobs through the segment-controlled
//! checkpoint runner, and a versioned, length-prefixed JSON **control
//! protocol** spoken over Unix-domain or TCP sockets.
//!
//! The headline capability is **checkpoint-backed live migration**: a
//! running job is drained at a quiescent segment boundary on worker A
//! (the drain *is* a checkpoint, held as in-memory container bytes) and
//! resumed on worker B; because decisions are only taken between
//! segments, the migrated run's final particle state, velocities, and
//! raw force-accumulator bank bits are **bit-identical** to an
//! unmigrated run with the same segmentation. The same mechanism
//! recovers worker crashes: the job is requeued from its newest on-disk
//! checkpoint with the fired fault directive stripped, exactly like the
//! single-process rolling-recovery loop. See `DESIGN.md` §14.
//!
//! Module map:
//! * [`job`] — job specifications and lifecycle states;
//! * [`queue`] — the journaled queue and the fair-share scheduler;
//! * [`proto`] — the versioned client/server control protocol;
//! * [`server`] — the daemon: listener, worker pool, migration;
//! * [`client`] — the blocking client used by the CLI and benches.

pub mod client;
pub mod job;
pub mod proto;
pub mod queue;
pub mod server;

pub use client::Client;
pub use job::{JobSpec, JobState};
pub use proto::PROTO_VERSION;
pub use queue::{SchedJob, TenantQuota, TenantTable};
pub use server::{Listen, Server, ServerConfig, ServerHandle};
