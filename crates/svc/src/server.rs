//! The job-service daemon: journal-backed queue, worker pool, control
//! listener, and checkpoint-backed live migration.
//!
//! ## Architecture
//!
//! One shared [`State`] (mutex + condvar) holds every job record, the
//! open queue journal, and the metrics registry. `workers` threads loop:
//! pick the next runnable job by fair share ([`crate::queue::pick`]),
//! journal the pickup, and drive the cluster through
//! [`run_with_checkpoints_ctl`] — the control callback re-locks the
//! state at each segment boundary to publish progress and read the
//! job's *wanted* verb (continue / drain / cancel). A listener thread
//! accepts control connections (Unix or TCP) and answers the
//! [`crate::proto`] verbs against the same shared state.
//!
//! ## Migration and recovery
//!
//! `migrate` sets the job's wanted verb to drain. At the next segment
//! boundary the running worker receives the quiescent state as
//! in-memory checkpoint-container bytes, requeues the job with
//! anti-affinity against itself, and another worker resumes it via
//! [`resume_from_container`]. Because both halves are the checkpoint
//! path, the migrated run is bit-identical to an unmigrated run with
//! the same segmentation (DESIGN.md §9 and §14).
//!
//! A worker *crash* (the fault plan's `crash=NODE@STEP`, the service's
//! stand-in for a dying worker process) requeues the job from its
//! newest on-disk checkpoint with exactly the fired directive stripped
//! — the rolling-recovery contract, applied across the pool. Server
//! death loses only in-memory drain containers: the journal replays
//! every non-terminal job back to *queued*, and each resumes from its
//! newest on-disk checkpoint.

use crate::job::{JobSpec, JobState};
use crate::proto::{self, ProtoError};
use crate::queue::{self, QueueJournal, ReplayedState, SchedJob, TenantTable};
use fasda_cluster::ckpt::{
    resume_latest, run_with_checkpoints_ctl, CheckpointConfig, CkptRunError, CkptRunOutcome,
    RunAccumulator, SegmentControl,
};
use fasda_cluster::{state_dump, Cluster, ClusterError, EngineConfig};
use fasda_net::transport::{FrameLink, SocketLink, TcpLink};
use fasda_obs::Registry;
use fasda_trace::Json;
use std::collections::HashMap;
use std::net::TcpListener;
use std::os::unix::net::UnixListener;
use std::path::PathBuf;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Latency histogram bounds (milliseconds, log-spaced).
const LATENCY_MS_BOUNDS: &[u64] = &[
    1, 2, 5, 10, 20, 50, 100, 200, 500, 1_000, 2_000, 5_000, 10_000, 30_000, 120_000,
];

/// Where the control listener lives.
#[derive(Clone, Debug)]
pub enum Listen {
    /// Unix-domain socket at this path (default; single host).
    Unix(PathBuf),
    /// TCP address (`host:port`; port 0 picks an ephemeral port).
    Tcp(String),
}

/// Daemon configuration.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Control-socket carrier.
    pub listen: Listen,
    /// Worker threads (migration needs at least 2).
    pub workers: usize,
    /// Queue journal path (created if missing, replayed if present).
    pub journal: PathBuf,
    /// Per-job checkpoint directories live under `ckpt_root/job-N`.
    pub ckpt_root: PathBuf,
    /// Default checkpoint cadence in steps for jobs that don't set
    /// their own — ideally the Young–Daly optimum from
    /// `fasda ckpt policy` (see [`crate::server::policy_interval`]).
    pub default_ckpt_every: u64,
    /// Fair-share weights and quotas.
    pub tenants: TenantTable,
    /// Per-job bound on automatic crash/deadlock restarts.
    pub max_restarts: u32,
}

impl ServerConfig {
    /// A two-worker server rooted at `dir` (journal, checkpoints, and —
    /// for the Unix default — the control socket all live under it).
    pub fn at(dir: &std::path::Path) -> Self {
        ServerConfig {
            listen: Listen::Unix(dir.join("ctl.sock")),
            workers: 2,
            journal: dir.join("queue.journal"),
            ckpt_root: dir.join("ckpt"),
            default_ckpt_every: 2,
            tenants: TenantTable::new(),
            max_restarts: 4,
        }
    }
}

/// What the scheduler wants a running job to do at its next segment
/// boundary.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Wanted {
    Run,
    Drain,
    Cancel,
}

/// Where a (re)starting job resumes from.
enum Resume {
    /// Step 0.
    Fresh,
    /// In-memory drain container (live migration).
    Container(Vec<u8>),
    /// Newest on-disk checkpoint in the job's directory (crash requeue
    /// and post-restart recovery); falls back to fresh when none exists.
    Disk,
}

/// One job's full server-side record.
struct JobRec {
    id: u64,
    spec: JobSpec,
    state: JobState,
    steps_done: u64,
    wanted: Wanted,
    resume: Resume,
    avoid: Option<usize>,
    /// Crash directives already fired and stripped (node, step).
    stripped_crashes: Vec<(u32, u64)>,
    /// Whether outage windows were stripped after a fault-induced
    /// deadlock.
    stripped_windows: bool,
    restarts: u32,
    migrations: u32,
    submitted: Instant,
    logs: Vec<String>,
}

impl JobRec {
    fn status_json(&self) -> Json {
        let mut o = Json::obj()
            .field("id", Json::uint(self.id))
            .field("name", self.spec.name.as_str())
            .field("tenant", self.spec.tenant.as_str())
            .field("priority", self.spec.priority)
            .field("state", self.state.as_str())
            .field("steps_done", Json::uint(self.steps_done))
            .field("steps_total", Json::uint(self.spec.steps))
            .field("restarts", self.restarts as i64)
            .field("migrations", self.migrations as i64);
        if let JobState::Running(w) = self.state {
            o = o.field("worker", w);
        }
        if let JobState::Failed(e) = &self.state {
            o = o.field("error", e.as_str());
        }
        o.build()
    }
}

struct State {
    jobs: Vec<JobRec>,
    journal: QueueJournal,
    running_by_tenant: HashMap<String, usize>,
    registry: Registry,
    shutdown: bool,
}

impl State {
    fn job_mut(&mut self, id: u64) -> Option<&mut JobRec> {
        self.jobs.iter_mut().find(|j| j.id == id)
    }

    fn queue_depth(&self) -> usize {
        self.jobs.iter().filter(|j| j.state == JobState::Queued).count()
    }

    fn running(&self) -> usize {
        self.jobs
            .iter()
            .filter(|j| matches!(j.state, JobState::Running(_)))
            .count()
    }

    fn refresh_gauges(&mut self) {
        let depth = self.queue_depth() as f64;
        let running = self.running() as f64;
        self.registry.gauge_set("queue_depth", depth);
        self.registry.gauge_set("jobs_running", running);
        // Peak depth as a counter so the totals document keeps it.
        self.registry.counter_set("queue_depth_peak", depth as u64);
    }
}

struct Shared {
    cfg: ServerConfig,
    state: Mutex<State>,
    wake: Condvar,
}

/// A running daemon. Dropping the handle does *not* stop the server;
/// call [`ServerHandle::shutdown`] (or send the protocol `shutdown`
/// verb) and then [`ServerHandle::join`].
pub struct ServerHandle {
    shared: Arc<Shared>,
    threads: Vec<std::thread::JoinHandle<()>>,
    addr: Listen,
}

impl ServerHandle {
    /// Where clients should connect (TCP port resolved if 0 was asked).
    pub fn addr(&self) -> &Listen {
        &self.addr
    }

    /// Ask every thread to stop: running jobs drain at their next
    /// segment boundary and are journaled as requeued (they resume from
    /// their newest on-disk checkpoint at the next start).
    pub fn shutdown(&self) {
        let mut st = self.shared.state.lock().expect("state lock");
        st.shutdown = true;
        for job in &mut st.jobs {
            if matches!(job.state, JobState::Running(_)) && job.wanted == Wanted::Run {
                job.wanted = Wanted::Drain;
            }
        }
        drop(st);
        self.shared.wake.notify_all();
    }

    /// Wait for the worker pool and listener to exit.
    pub fn join(self) {
        for t in self.threads {
            let _ = t.join();
        }
    }

    /// Has shutdown been requested (by handle or protocol verb)?
    pub fn is_shutting_down(&self) -> bool {
        self.shared.state.lock().expect("state lock").shutdown
    }
}

/// The daemon entry point.
pub struct Server;

impl Server {
    /// Replay the journal, bind the control socket, and start the
    /// worker pool. Returns a handle with the resolved listen address.
    pub fn start(cfg: ServerConfig) -> Result<ServerHandle, String> {
        if cfg.workers == 0 {
            return Err("server needs at least one worker".into());
        }
        if let Some(parent) = cfg.journal.parent() {
            std::fs::create_dir_all(parent).map_err(|e| e.to_string())?;
        }
        std::fs::create_dir_all(&cfg.ckpt_root).map_err(|e| e.to_string())?;

        // Rebuild the queue from the journal: every non-terminal job is
        // owed a run and resumes from its newest on-disk checkpoint.
        let recovered = queue::replay(&cfg.journal).map_err(|e| e.to_string())?;
        let mut journal = QueueJournal::open(&cfg.journal).map_err(|e| e.to_string())?;
        let live: Vec<(u64, &JobSpec)> = recovered
            .jobs
            .iter()
            .filter(|j| j.state == ReplayedState::Queued)
            .map(|j| (j.id, &j.spec))
            .collect();
        journal.compact_to(&live).map_err(|e| e.to_string())?;
        let mut registry = Registry::new(true);
        registry.counter_set("jobs_replayed", live.len() as u64);
        if recovered.torn_bytes > 0 {
            registry.counter_set("journal_torn_bytes", recovered.torn_bytes);
        }
        let now = Instant::now();
        let jobs: Vec<JobRec> = recovered
            .jobs
            .into_iter()
            .filter(|j| j.state == ReplayedState::Queued)
            .map(|j| JobRec {
                id: j.id,
                spec: j.spec,
                state: JobState::Queued,
                steps_done: 0,
                wanted: Wanted::Run,
                resume: Resume::Disk,
                avoid: None,
                stripped_crashes: Vec::new(),
                stripped_windows: false,
                restarts: 0,
                migrations: 0,
                submitted: now,
                logs: vec!["replayed from journal after server restart".to_string()],
            })
            .collect();
        let next_id = recovered.next_id;

        // Bind the control listener before spawning anything so a
        // bad address fails the whole start.
        enum Bound {
            Unix(UnixListener),
            Tcp(TcpListener),
        }
        let (bound, addr) = match &cfg.listen {
            Listen::Unix(path) => {
                let _ = std::fs::remove_file(path);
                if let Some(parent) = path.parent() {
                    std::fs::create_dir_all(parent).map_err(|e| e.to_string())?;
                }
                let l = UnixListener::bind(path).map_err(|e| format!("{}: {e}", path.display()))?;
                (Bound::Unix(l), Listen::Unix(path.clone()))
            }
            Listen::Tcp(spec) => {
                let l = TcpListener::bind(spec.as_str()).map_err(|e| format!("{spec}: {e}"))?;
                let resolved = l.local_addr().map_err(|e| e.to_string())?.to_string();
                (Bound::Tcp(l), Listen::Tcp(resolved))
            }
        };

        let mut state = State {
            jobs,
            journal,
            running_by_tenant: HashMap::new(),
            registry,
            shutdown: false,
        };
        state.refresh_gauges();
        let shared = Arc::new(Shared {
            cfg: cfg.clone(),
            state: Mutex::new(state),
            wake: Condvar::new(),
        });
        let next_id = Arc::new(Mutex::new(next_id));

        let mut threads = Vec::new();
        for w in 0..cfg.workers {
            let sh = Arc::clone(&shared);
            threads.push(
                std::thread::Builder::new()
                    .name(format!("fasda-worker-{w}"))
                    .spawn(move || worker_loop(&sh, w))
                    .map_err(|e| e.to_string())?,
            );
        }
        {
            let sh = Arc::clone(&shared);
            let nid = Arc::clone(&next_id);
            threads.push(
                std::thread::Builder::new()
                    .name("fasda-listener".to_string())
                    .spawn(move || match bound {
                        Bound::Unix(l) => listener_loop(&sh, &nid, l),
                        Bound::Tcp(l) => tcp_listener_loop(&sh, &nid, l),
                    })
                    .map_err(|e| e.to_string())?,
            );
        }
        Ok(ServerHandle { shared, threads, addr })
    }
}

// -----------------------------------------------------------------------
// Worker pool
// -----------------------------------------------------------------------

/// How one execution attempt ended.
enum Attempt {
    Completed { cluster: Box<Cluster>, sys: fasda_md::system::ParticleSystem },
    Drained(Vec<u8>),
    Cancelled,
    Crashed { node: u32, step: u64 },
    OutageDeadlock { outages: Vec<String> },
    Error(String),
}

fn worker_loop(sh: &Shared, worker: usize) {
    loop {
        // Pick the next runnable job by fair share, or sleep.
        let picked = {
            let mut st = sh.state.lock().expect("state lock");
            loop {
                if st.shutdown {
                    return;
                }
                let queued: Vec<SchedJob> = st
                    .jobs
                    .iter()
                    .filter(|j| j.state == JobState::Queued)
                    .map(|j| SchedJob {
                        id: j.id,
                        tenant: j.spec.tenant.clone(),
                        priority: j.spec.priority,
                        avoid: j.avoid,
                    })
                    .collect();
                if let Some(id) =
                    queue::pick(&queued, &st.running_by_tenant, &sh.cfg.tenants, worker)
                {
                    let job = st.job_mut(id).expect("picked job exists");
                    job.state = JobState::Running(worker);
                    job.logs.push(format!("started on worker {worker}"));
                    let tenant = job.spec.tenant.clone();
                    let spec = job.spec.clone();
                    let resume = std::mem::replace(&mut job.resume, Resume::Fresh);
                    let stripped_crashes = job.stripped_crashes.clone();
                    let stripped_windows = job.stripped_windows;
                    let _ = st.journal.start(id, worker);
                    *st.running_by_tenant.entry(tenant).or_insert(0) += 1;
                    st.refresh_gauges();
                    break Some((id, spec, resume, stripped_crashes, stripped_windows));
                }
                let (guard, _) = sh
                    .wake
                    .wait_timeout(st, Duration::from_millis(100))
                    .expect("condvar wait");
                st = guard;
            }
        };
        let Some((id, spec, resume, stripped_crashes, stripped_windows)) = picked else {
            return;
        };
        // A panic anywhere in the simulator must fail the job, not
        // silently kill the worker thread and strand the pool.
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            execute(sh, worker, id, &spec, resume, &stripped_crashes, stripped_windows)
        }))
        .unwrap_or_else(|p| {
            let what = p
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| p.downcast_ref::<&str>().copied())
                .unwrap_or("panic");
            Attempt::Error(format!("worker panicked: {what}"))
        });
        settle(sh, worker, id, &spec, outcome);
    }
}

/// Build the cluster for `spec` (with recovered-against directives
/// stripped), resume it, and drive it segment by segment under the
/// job's control verb.
fn execute(
    sh: &Shared,
    worker: usize,
    id: u64,
    spec: &JobSpec,
    resume: Resume,
    stripped_crashes: &[(u32, u64)],
    stripped_windows: bool,
) -> Attempt {
    let (mut cfg, sys) = match spec.build() {
        Ok(v) => v,
        Err(e) => return Attempt::Error(e),
    };
    // Strip the directives previous attempts already absorbed — the
    // rolling-recovery contract (each failure teaches the next attempt).
    let mut plan = cfg.faults.clone();
    for (node, step) in stripped_crashes {
        plan = plan.map(|p| p.without_crash_at(*node, *step));
    }
    if stripped_windows {
        plan = plan.map(|p| p.without_windows());
    }
    cfg.faults = plan.filter(|p| !p.is_none() || !p.crashes.is_empty());

    let every = if spec.ckpt_every > 0 { spec.ckpt_every } else { sh.cfg.default_ckpt_every };
    let ckpt = CheckpointConfig::new(every, sh.cfg.ckpt_root.join(format!("job-{id}")));

    let mut cluster = Box::new(Cluster::new(cfg, &sys));
    let acc = match resume {
        Resume::Fresh => RunAccumulator::new(),
        Resume::Container(bytes) => {
            match fasda_cluster::resume_from_container(&mut cluster, &bytes) {
                Ok(acc) => {
                    log_to(sh, id, format!(
                        "resumed on worker {worker} from in-memory container at step {}",
                        acc.steps_done
                    ));
                    acc
                }
                Err(e) => return Attempt::Error(format!("container resume: {e}")),
            }
        }
        Resume::Disk => match resume_latest(&mut cluster, &ckpt.dir) {
            Ok(Some((path, acc))) => {
                log_to(sh, id, format!(
                    "resumed on worker {worker} from {} at step {}",
                    path.display(),
                    acc.steps_done
                ));
                acc
            }
            Ok(None) => RunAccumulator::new(),
            Err(e) => return Attempt::Error(format!("checkpoint resume: {e}")),
        },
    };

    let engine = EngineConfig::serial();
    let mut ctl = |status: &fasda_cluster::SegmentStatus| -> SegmentControl {
        let mut st = sh.state.lock().expect("state lock");
        let Some(job) = st.job_mut(id) else { return SegmentControl::Cancel };
        job.steps_done = status.steps_done;
        if let Some(path) = &status.checkpoint {
            job.logs
                .push(format!("checkpoint at step {} -> {}", status.steps_done, path.display()));
        }
        match job.wanted {
            Wanted::Run => SegmentControl::Continue,
            Wanted::Drain => SegmentControl::Drain,
            Wanted::Cancel => SegmentControl::Cancel,
        }
    };
    match run_with_checkpoints_ctl(
        &mut cluster,
        spec.steps,
        2_000_000_000,
        &engine,
        Some(&ckpt),
        acc,
        &mut ctl,
    ) {
        Ok(CkptRunOutcome::Completed(_run)) => Attempt::Completed { cluster, sys },
        Ok(CkptRunOutcome::Drained { run, container }) => {
            log_to(sh, id, format!(
                "drained on worker {worker} at step {} ({} checkpoint(s) on disk)",
                run.report.steps,
                run.checkpoints.len()
            ));
            Attempt::Drained(container)
        }
        Ok(CkptRunOutcome::Cancelled(_)) => Attempt::Cancelled,
        Err(CkptRunError::Run(ClusterError::Crashed(c))) => {
            Attempt::Crashed { node: c.node as u32, step: c.step }
        }
        Err(CkptRunError::Run(ClusterError::Deadlock(d))) if !d.outages.is_empty() => {
            Attempt::OutageDeadlock { outages: d.outages.clone() }
        }
        Err(e) => Attempt::Error(e.to_string()),
    }
}

/// Apply an attempt's outcome to the shared state and the journal.
fn settle(sh: &Shared, worker: usize, id: u64, spec: &JobSpec, outcome: Attempt) {
    // The completion dump happens outside the lock (it walks the whole
    // cluster), before the state transition is published.
    let dump = match &outcome {
        Attempt::Completed { cluster, sys } => {
            spec.dump_state.as_ref().map(|path| (path.clone(), state_dump(cluster, sys)))
        }
        _ => None,
    };
    let mut st = sh.state.lock().expect("state lock");
    if let Some(n) = st.running_by_tenant.get_mut(&spec.tenant) {
        *n = n.saturating_sub(1);
    }
    let shutdown = st.shutdown;
    let Some(job) = st.job_mut(id) else { return };
    let elapsed_ms = job.submitted.elapsed().as_millis() as u64;
    match outcome {
        Attempt::Completed { .. } => {
            job.state = JobState::Completed;
            job.steps_done = spec.steps;
            job.logs.push(format!("completed on worker {worker}"));
            let mut dump_err = None;
            if let Some((path, text)) = dump {
                match std::fs::write(&path, text) {
                    Ok(()) => job.logs.push(format!("wrote state dump to {path}")),
                    Err(e) => dump_err = Some(format!("state dump {path}: {e}")),
                }
            }
            if let Some(e) = dump_err {
                job.logs.push(e);
            }
            let _ = st.journal.done(id);
            st.registry.counter_add("jobs_completed", 1);
            st.registry
                .hist_observe("job_latency_ms", LATENCY_MS_BOUNDS, elapsed_ms);
        }
        Attempt::Drained(container) => {
            job.state = JobState::Queued;
            job.wanted = Wanted::Run;
            job.migrations += 1;
            if shutdown {
                // The container dies with the process; the journal entry
                // sends the job back through its on-disk checkpoints.
                job.resume = Resume::Disk;
                job.avoid = None;
                job.logs.push("drained for shutdown; will resume from disk".to_string());
                let _ = st.journal.requeue(id, "shutdown");
            } else {
                job.resume = Resume::Container(container);
                job.avoid = Some(worker);
                job.logs.push(format!("requeued for migration away from worker {worker}"));
                let _ = st.journal.requeue(id, "migrate");
                st.registry.counter_add("jobs_migrated", 1);
            }
        }
        Attempt::Cancelled => {
            job.state = JobState::Cancelled;
            job.logs.push("cancelled at segment boundary".to_string());
            let _ = st.journal.cancel(id);
            st.registry.counter_add("jobs_cancelled", 1);
        }
        Attempt::Crashed { node, step } => {
            if job.restarts < sh.cfg.max_restarts {
                job.restarts += 1;
                job.stripped_crashes.push((node, step));
                job.state = JobState::Queued;
                job.resume = Resume::Disk;
                job.avoid = None;
                job.logs.push(format!(
                    "worker {worker} crashed (node {node} at step {step}); requeued from newest checkpoint"
                ));
                let _ = st.journal.requeue(id, "crash");
                st.registry.counter_add("jobs_requeued_crash", 1);
            } else {
                job.state = JobState::Failed(format!(
                    "crash of node {node} at step {step} exceeded {} restarts",
                    sh.cfg.max_restarts
                ));
                let _ = st.journal.fail(id, "restart budget exhausted");
                st.registry.counter_add("jobs_failed", 1);
            }
        }
        Attempt::OutageDeadlock { outages } => {
            if job.restarts < sh.cfg.max_restarts {
                job.restarts += 1;
                job.stripped_windows = true;
                job.state = JobState::Queued;
                job.resume = Resume::Disk;
                job.avoid = None;
                job.logs.push(format!(
                    "outage deadlock [{}]; windows lifted, requeued from newest checkpoint",
                    outages.join(", ")
                ));
                let _ = st.journal.requeue(id, "crash");
                st.registry.counter_add("jobs_requeued_crash", 1);
            } else {
                job.state = JobState::Failed("outage deadlock exceeded restart budget".into());
                let _ = st.journal.fail(id, "restart budget exhausted");
                st.registry.counter_add("jobs_failed", 1);
            }
        }
        Attempt::Error(e) => {
            job.state = JobState::Failed(e.clone());
            job.logs.push(format!("failed: {e}"));
            let _ = st.journal.fail(id, &e);
            st.registry.counter_add("jobs_failed", 1);
        }
    }
    st.refresh_gauges();
    drop(st);
    sh.wake.notify_all();
}

fn log_to(sh: &Shared, id: u64, line: String) {
    let mut st = sh.state.lock().expect("state lock");
    if let Some(job) = st.job_mut(id) {
        job.logs.push(line);
    }
}

// -----------------------------------------------------------------------
// Control listener
// -----------------------------------------------------------------------

fn listener_loop(sh: &Arc<Shared>, next_id: &Arc<Mutex<u64>>, listener: UnixListener) {
    listener.set_nonblocking(true).expect("nonblocking listener");
    loop {
        if sh.state.lock().expect("state lock").shutdown {
            return;
        }
        match listener.accept() {
            Ok((stream, _)) => {
                let _ = stream.set_nonblocking(false);
                if let Ok(link) = SocketLink::new(stream) {
                    spawn_handler(sh, next_id, Box::new(link));
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(20));
            }
            Err(_) => return,
        }
    }
}

fn tcp_listener_loop(sh: &Arc<Shared>, next_id: &Arc<Mutex<u64>>, listener: TcpListener) {
    listener.set_nonblocking(true).expect("nonblocking listener");
    loop {
        if sh.state.lock().expect("state lock").shutdown {
            return;
        }
        match listener.accept() {
            Ok((stream, _)) => {
                let _ = stream.set_nonblocking(false);
                if let Ok(link) = TcpLink::new(stream) {
                    spawn_handler(sh, next_id, Box::new(link));
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(20));
            }
            Err(_) => return,
        }
    }
}

/// Handler threads are detached: each exits when its client hangs up
/// (`recv_frame` errors) or after serving a `shutdown` verb.
fn spawn_handler(sh: &Arc<Shared>, next_id: &Arc<Mutex<u64>>, mut link: Box<dyn FrameLink>) {
    let sh = Arc::clone(sh);
    let next_id = Arc::clone(next_id);
    let _ = std::thread::Builder::new()
        .name("fasda-ctl".to_string())
        .spawn(move || {
            let _ = connection_loop(&sh, &next_id, &mut *link);
        });
}

// -----------------------------------------------------------------------
// Request handling
// -----------------------------------------------------------------------

fn handle_request(
    sh: &Shared,
    next_id: &Mutex<u64>,
    doc: &Json,
) -> (Json, bool) {
    let op = doc.get("op").and_then(Json::as_str).unwrap_or("");
    let id_of = |doc: &Json| doc.get("id").and_then(Json::as_i64).map(|v| v as u64);
    match op {
        "submit" => {
            let spec = match doc.get("spec").ok_or("submit needs a spec".to_string()).and_then(
                JobSpec::from_json,
            ) {
                Ok(s) => s,
                Err(e) => return (proto::err(&e), false),
            };
            let mut nid = next_id.lock().expect("id lock");
            let id = *nid;
            *nid += 1;
            drop(nid);
            let mut st = sh.state.lock().expect("state lock");
            if st.shutdown {
                return (proto::err("server is shutting down"), false);
            }
            if let Err(e) = st.journal.submit(id, &spec) {
                return (proto::err(&format!("journal: {e}")), false);
            }
            st.jobs.push(JobRec {
                id,
                spec,
                state: JobState::Queued,
                steps_done: 0,
                wanted: Wanted::Run,
                resume: Resume::Fresh,
                avoid: None,
                stripped_crashes: Vec::new(),
                stripped_windows: false,
                restarts: 0,
                migrations: 0,
                submitted: Instant::now(),
                logs: vec!["submitted".to_string()],
            });
            st.registry.counter_add("jobs_submitted", 1);
            st.refresh_gauges();
            drop(st);
            sh.wake.notify_all();
            (proto::ok().field("id", Json::uint(id)).build(), false)
        }
        "status" => {
            let st = sh.state.lock().expect("state lock");
            match id_of(doc) {
                Some(id) => match st.jobs.iter().find(|j| j.id == id) {
                    Some(job) => (proto::ok().field("job", job.status_json()).build(), false),
                    None => (proto::err(&format!("no job {id}")), false),
                },
                None => {
                    let jobs: Vec<Json> = st.jobs.iter().map(|j| j.status_json()).collect();
                    (proto::ok().field("jobs", Json::Arr(jobs)).build(), false)
                }
            }
        }
        "cancel" => {
            let Some(id) = id_of(doc) else {
                return (proto::err("cancel needs an id"), false);
            };
            let mut st = sh.state.lock().expect("state lock");
            let Some(job) = st.job_mut(id) else {
                return (proto::err(&format!("no job {id}")), false);
            };
            match &job.state {
                JobState::Queued => {
                    job.state = JobState::Cancelled;
                    job.logs.push("cancelled while queued".to_string());
                    let _ = st.journal.cancel(id);
                    st.registry.counter_add("jobs_cancelled", 1);
                    st.refresh_gauges();
                    (proto::ok().build(), false)
                }
                JobState::Running(_) => {
                    job.wanted = Wanted::Cancel;
                    job.logs.push("cancel requested".to_string());
                    (proto::ok().build(), false)
                }
                s => (proto::err(&format!("job {id} is already {}", s.as_str())), false),
            }
        }
        "logs" => {
            let Some(id) = id_of(doc) else {
                return (proto::err("logs needs an id"), false);
            };
            let st = sh.state.lock().expect("state lock");
            match st.jobs.iter().find(|j| j.id == id) {
                Some(job) => {
                    let lines: Vec<Json> =
                        job.logs.iter().map(|l| Json::Str(l.clone())).collect();
                    (proto::ok().field("lines", Json::Arr(lines)).build(), false)
                }
                None => (proto::err(&format!("no job {id}")), false),
            }
        }
        "migrate" => {
            let Some(id) = id_of(doc) else {
                return (proto::err("migrate needs an id"), false);
            };
            if sh.cfg.workers < 2 {
                return (proto::err("migration needs at least 2 workers"), false);
            }
            let mut st = sh.state.lock().expect("state lock");
            let Some(job) = st.job_mut(id) else {
                return (proto::err(&format!("no job {id}")), false);
            };
            match &job.state {
                JobState::Queued | JobState::Running(_) => {
                    job.wanted = Wanted::Drain;
                    job.logs.push("migration requested (drain at next segment boundary)".to_string());
                    (proto::ok().build(), false)
                }
                s => (proto::err(&format!("job {id} is already {}", s.as_str())), false),
            }
        }
        "metrics" => {
            let st = sh.state.lock().expect("state lock");
            (proto::ok().field("metrics", st.registry.snapshot_json()).build(), false)
        }
        "shutdown" => {
            let mut st = sh.state.lock().expect("state lock");
            st.shutdown = true;
            for job in &mut st.jobs {
                if matches!(job.state, JobState::Running(_)) && job.wanted == Wanted::Run {
                    job.wanted = Wanted::Drain;
                }
            }
            drop(st);
            sh.wake.notify_all();
            (proto::ok().build(), true)
        }
        other => (proto::err(&format!("unknown op '{other}'")), false),
    }
}

fn connection_loop(
    sh: &Shared,
    next_id: &Mutex<u64>,
    link: &mut dyn FrameLink,
) -> Result<(), ProtoError> {
    loop {
        let doc = proto::read_msg(link)?;
        let (resp, stop) = handle_request(sh, next_id, &doc);
        proto::write_msg(link, &resp)?;
        if stop {
            return Ok(());
        }
    }
}

// -----------------------------------------------------------------------
// Policy-fed default cadence
// -----------------------------------------------------------------------

/// Mean `serialize_ms` / `restore_ms` over the `recovery.sweep` rows of
/// a benchmark document (`chaosbench --recovery` output) — the measured
/// costs `fasda ckpt policy --bench` uses. Returns the two means and
/// the row count.
pub fn bench_recovery_costs(path: &str) -> Result<(Option<f64>, Option<f64>, usize), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let doc = Json::parse(&text).map_err(|e| format!("{path}: {e}"))?;
    let rows: Vec<Json> = doc
        .get("recovery")
        .and_then(|r| r.get("sweep"))
        .map(|s| s.items().to_vec())
        .unwrap_or_default();
    if rows.is_empty() {
        return Err(format!(
            "{path} has no recovery.sweep rows — run `chaosbench --recovery` first"
        ));
    }
    let mean = |field: &str| -> Option<f64> {
        let vals: Vec<f64> = rows.iter().filter_map(|r| r.get(field)?.as_f64()).collect();
        (!vals.is_empty()).then(|| vals.iter().sum::<f64>() / vals.len() as f64)
    };
    Ok((mean("serialize_ms"), mean("restore_ms"), rows.len()))
}

/// The Young–Daly-optimal checkpoint interval (in steps) for the given
/// costs — what `fasda serve` feeds into
/// [`ServerConfig::default_ckpt_every`] so the server's default cadence
/// is the policy calculator's output instead of a hardcoded number.
pub fn policy_interval(
    step_ms: f64,
    failure_rate: f64,
    save_ms: f64,
    restore_ms: f64,
) -> Result<u64, String> {
    use fasda_cluster::ckpt::policy::PolicyInput;
    if !step_ms.is_finite() || step_ms <= 0.0 || failure_rate < 0.0 || save_ms < 0.0 || restore_ms < 0.0 {
        return Err("policy costs must be non-negative, with step cost > 0".into());
    }
    if failure_rate == 0.0 {
        return Err("failure rate 0 means never checkpoint — give the server an explicit --default-ckpt-every instead".into());
    }
    let input = PolicyInput {
        save_cost: save_ms,
        restore_cost: restore_ms,
        step_cost: step_ms,
        failure_rate,
    };
    Ok(input.optimize().interval_steps.max(1))
}
