//! Job specifications and lifecycle states.
//!
//! A [`JobSpec`] is the client-side description of one simulation run —
//! the same knobs the `fasda run` command exposes, made serializable so
//! they survive the queue journal and the wire. [`JobSpec::build`]
//! materializes the cluster configuration and particle system from the
//! spec with exactly the CLI's defaults, so a job submitted to the
//! service and a direct `fasda run` with the same flags simulate the
//! same machine (which is what lets CI `cmp` a migrated job's state
//! dump against a direct run's).

use fasda_cluster::{ClusterConfig, FaultPlan, RelConfig};
use fasda_core::config::{ChipConfig, DesignVariant};
use fasda_md::space::SimulationSpace;
use fasda_md::system::ParticleSystem;
use fasda_md::workload::WorkloadSpec;
use fasda_trace::Json;

/// Parse the artifact's `222`-style dimension triple.
pub fn parse_dims(s: &str) -> Result<(u32, u32, u32), String> {
    let digits: Vec<u32> = s
        .chars()
        .map(|c| c.to_digit(10).ok_or_else(|| format!("bad dims '{s}'")))
        .collect::<Result<_, _>>()?;
    match digits.as_slice() {
        [x, y, z] => Ok((*x, *y, *z)),
        _ => Err(format!(
            "dims must be three digits like the artifact's '222'/'444', got '{s}'"
        )),
    }
}

/// Validate a spec's geometry without building it — everything
/// [`SimulationSpace`] and the cluster constructor would otherwise
/// panic on, turned into errors the server can reject at submit time.
fn check_geometry(total: (u32, u32, u32), per_fpga: (u32, u32, u32)) -> Result<(), String> {
    let (tx, ty, tz) = total;
    let (px, py, pz) = per_fpga;
    if tx < 3 || ty < 3 || tz < 3 {
        return Err(format!(
            "total space must be at least 3 cells per axis (got {tx}{ty}{tz})"
        ));
    }
    if px == 0 || py == 0 || pz == 0 {
        return Err("per-FPGA dims must be at least 1 cell per axis".into());
    }
    if tx % px != 0 || ty % py != 0 || tz % pz != 0 {
        return Err(format!(
            "per-FPGA dims {px}{py}{pz} must divide the total space {tx}{ty}{tz}"
        ));
    }
    if (tx / px) * (ty / py) * (tz / pz) < 2 {
        return Err(format!(
            "space {tx}{ty}{tz} over per-FPGA {px}{py}{pz} is a single chip; \
             the cluster driver needs at least 2"
        ));
    }
    Ok(())
}

/// Everything needed to run one simulation job. Field defaults match
/// the `fasda run` CLI so service jobs and direct runs are comparable.
#[derive(Clone, Debug, PartialEq)]
pub struct JobSpec {
    /// Human-readable label (free-form; shows up in status and logs).
    pub name: String,
    /// Tenant for fair-share scheduling and quotas.
    pub tenant: String,
    /// Higher runs first within a tenant's share.
    pub priority: i64,
    /// Total simulation-space cells, `444` style.
    pub total: String,
    /// Cells per FPGA, `222` style.
    pub per_fpga: String,
    /// Particles per cell.
    pub per_cell: u32,
    /// Workload seed.
    pub seed: u64,
    /// Timesteps to run.
    pub steps: u64,
    /// Optional fault-plan grammar string (see `fasda run --fault-plan`).
    pub fault_plan: Option<String>,
    /// Opt out of the reliable-delivery layer faults normally enable.
    pub unreliable: bool,
    /// Checkpoint every N steps; `0` takes the server's default cadence
    /// (which may come from the Young–Daly policy calculator).
    pub ckpt_every: u64,
    /// Write the deterministic final-state dump here on completion.
    pub dump_state: Option<String>,
}

impl Default for JobSpec {
    fn default() -> Self {
        JobSpec {
            name: String::new(),
            tenant: "default".to_string(),
            priority: 0,
            total: "633".to_string(),
            per_fpga: "333".to_string(),
            per_cell: 64,
            seed: 64205,
            steps: 5,
            fault_plan: None,
            unreliable: false,
            ckpt_every: 0,
            dump_state: None,
        }
    }
}

impl JobSpec {
    /// Serialize for the wire and the queue journal.
    pub fn to_json(&self) -> Json {
        let mut o = Json::obj()
            .field("name", self.name.as_str())
            .field("tenant", self.tenant.as_str())
            .field("priority", self.priority)
            .field("total", self.total.as_str())
            .field("per_fpga", self.per_fpga.as_str())
            .field("per_cell", self.per_cell)
            .field("seed", Json::uint(self.seed))
            .field("steps", Json::uint(self.steps))
            .field("unreliable", self.unreliable)
            .field("ckpt_every", Json::uint(self.ckpt_every));
        if let Some(fp) = &self.fault_plan {
            o = o.field("fault_plan", fp.as_str());
        }
        if let Some(p) = &self.dump_state {
            o = o.field("dump_state", p.as_str());
        }
        o.build()
    }

    /// Parse a spec; missing optional fields take the CLI defaults.
    pub fn from_json(doc: &Json) -> Result<JobSpec, String> {
        let s = |key: &str| doc.get(key).and_then(Json::as_str).map(String::from);
        let n = |key: &str| doc.get(key).and_then(Json::as_i64);
        let d = JobSpec::default();
        let spec = JobSpec {
            name: s("name").unwrap_or_default(),
            tenant: s("tenant").unwrap_or(d.tenant),
            priority: n("priority").unwrap_or(0),
            total: s("total").ok_or("job spec needs 'total'")?,
            per_fpga: s("per_fpga").ok_or("job spec needs 'per_fpga'")?,
            per_cell: n("per_cell").unwrap_or(d.per_cell as i64) as u32,
            seed: n("seed").unwrap_or(d.seed as i64) as u64,
            steps: n("steps").ok_or("job spec needs 'steps'")? as u64,
            fault_plan: s("fault_plan"),
            unreliable: doc.get("unreliable") == Some(&Json::Bool(true)),
            ckpt_every: n("ckpt_every").unwrap_or(0) as u64,
            dump_state: s("dump_state"),
        };
        check_geometry(parse_dims(&spec.total)?, parse_dims(&spec.per_fpga)?)?;
        if spec.steps == 0 {
            return Err("job spec needs steps >= 1".into());
        }
        if let Some(fp) = &spec.fault_plan {
            FaultPlan::parse(fp)?;
        }
        Ok(spec)
    }

    /// Materialize the cluster configuration and particle system — the
    /// exact construction `fasda run` performs, so service jobs and
    /// direct runs are bit-comparable. Faults enable the reliability
    /// layer unless the spec opts out, matching the CLI.
    pub fn build(&self) -> Result<(ClusterConfig, ParticleSystem), String> {
        let total = parse_dims(&self.total)?;
        let per_fpga = parse_dims(&self.per_fpga)?;
        check_geometry(total, per_fpga)?;
        let space = SimulationSpace::new(total.0, total.1, total.2);
        let spec = WorkloadSpec {
            per_cell: self.per_cell,
            ..WorkloadSpec::paper(space, self.seed)
        };
        let sys = spec.generate();
        let mut cfg = ClusterConfig::paper(ChipConfig::variant(DesignVariant::A), per_fpga);
        if let Some(fp) = &self.fault_plan {
            cfg = cfg.with_faults(FaultPlan::parse(fp)?);
            if !self.unreliable {
                cfg = cfg.with_reliability(RelConfig::DEFAULT);
            }
        }
        Ok((cfg, sys))
    }
}

/// Where a job is in its lifecycle. Terminal states are `Completed`,
/// `Cancelled`, and `Failed`.
#[derive(Clone, Debug, PartialEq)]
pub enum JobState {
    /// Waiting for a worker (also the post-drain / post-crash state
    /// while the job waits to resume elsewhere).
    Queued,
    /// Executing on the given worker.
    Running(usize),
    /// Ran to its step target.
    Completed,
    /// Cancelled at a segment boundary (or straight out of the queue).
    Cancelled,
    /// Died with an error the recovery ladder could not absorb.
    Failed(String),
}

impl JobState {
    /// Status-document spelling.
    pub fn as_str(&self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running(_) => "running",
            JobState::Completed => "completed",
            JobState::Cancelled => "cancelled",
            JobState::Failed(_) => "failed",
        }
    }

    /// Whether the job can never run again.
    pub fn is_terminal(&self) -> bool {
        matches!(
            self,
            JobState::Completed | JobState::Cancelled | JobState::Failed(_)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_round_trips_through_json() {
        let spec = JobSpec {
            name: "smoke".into(),
            tenant: "alice".into(),
            priority: 3,
            total: "444".into(),
            per_fpga: "222".into(),
            per_cell: 7,
            seed: 99,
            steps: 6,
            fault_plan: Some("drop=0.05,seed=7".into()),
            unreliable: false,
            ckpt_every: 2,
            dump_state: Some("/tmp/x".into()),
        };
        let back = JobSpec::from_json(&spec.to_json()).expect("round trip");
        assert_eq!(back, spec);
    }

    #[test]
    fn defaults_fill_missing_fields() {
        let doc = Json::parse(r#"{"total":"633","per_fpga":"333","steps":3}"#).unwrap();
        let spec = JobSpec::from_json(&doc).expect("minimal spec");
        assert_eq!(spec.tenant, "default");
        assert_eq!(spec.per_cell, 64);
        assert_eq!(spec.seed, 64205);
        assert_eq!(spec.ckpt_every, 0);
        assert!(spec.build().is_ok());
    }

    #[test]
    fn bad_specs_are_rejected() {
        for bad in [
            r#"{"per_fpga":"333","steps":3}"#,
            r#"{"total":"33","per_fpga":"333","steps":3}"#,
            r#"{"total":"222","per_fpga":"222","steps":3}"#, // space below 3 cells/axis
            r#"{"total":"444","per_fpga":"333","steps":3}"#, // non-dividing per-FPGA dims
            r#"{"total":"333","per_fpga":"333","steps":3}"#, // single chip
            r#"{"total":"633","per_fpga":"333","steps":0}"#,
            r#"{"total":"633","per_fpga":"333","steps":3,"fault_plan":"nonsense=1"}"#,
        ] {
            let doc = Json::parse(bad).unwrap();
            assert!(JobSpec::from_json(&doc).is_err(), "accepted: {bad}");
        }
    }
}
